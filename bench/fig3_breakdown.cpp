// Regenerates **Figure 3** — PageRank per-task execution-time ratios
// (computation / communication / idle, each min/avg/max over tasks) as the
// rank count grows, for all three WC partitionings.
//
// Measurement model (single-core host; see bench_common.hpp): per-rank
//   comp_r = measured thread-CPU seconds of the PageRank region,
//   comm_r = bytes_remote_r / (--gbps, default 4 GB/s),
//   T      = max_r (comp_r + comm_r)            (BSP critical path),
//   idle_r = T - comp_r - comm_r                (waiting at the barrier).
// Ratios are each component over T — the same three-way decomposition the
// paper instruments directly on Blue Waters.
//
// Claims under test: WC-rand has the highest *average* computation ratio
// (ghost-heavy: more id lookups, no cache locality => more absolute work)
// but the lowest max idle (best balance); the block strategies show large
// idle spreads from load imbalance; communication share grows with ranks.

#include <iostream>

#include "analytics/pagerank.hpp"
#include "bench_common.hpp"
#include "gen/webgraph.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 16));
  const std::vector<int> ranks = hb::parse_ranks(cli, "ranks", {2, 4, 8, 16});
  const double gbps = cli.get_double("gbps", 4.0);
  const int iters = static_cast<int>(cli.get_int("iters", 10));

  gen::WebGraphParams wp;
  wp.n = gvid_t{1} << scale;
  wp.avg_degree = 16;
  const gen::WebGraph wc = gen::webgraph(wp);

  hb::print_banner("Figure 3: PageRank comp/comm/idle ratios",
                   "webgraph n=2^" + std::to_string(scale) + ", PR x" +
                       std::to_string(iters) + ", link model " +
                       TablePrinter::fmt(gbps, 1) + " GB/s");

  const auto body = [iters](const dgraph::DistGraph& g,
                            parcomm::Communicator& comm) {
    analytics::PageRankOptions o;
    o.max_iterations = iters;
    (void)analytics::pagerank(g, comm, o);
  };

  TablePrinter table({"Partition", "Ranks", "Comp min/avg/max",
                      "Comm min/avg/max", "Idle min/avg/max", "AvgComp(s)"});

  for (const auto kind : {dgraph::PartitionKind::kVertexBlock,
                          dgraph::PartitionKind::kEdgeBlock,
                          dgraph::PartitionKind::kRandom}) {
    for (const int p : ranks) {
      std::vector<hb::RankMetrics> per_rank;
      (void)hb::run_region(wc.graph, p, kind, body, 0, &per_rank);

      // BSP critical-path model over the measured per-rank quantities.
      double t_max = 0;
      std::vector<double> comp(p), comm_t(p);
      for (int r = 0; r < p; ++r) {
        comp[r] = per_rank[r].cpu;
        comm_t[r] = static_cast<double>(per_rank[r].bytes_remote) /
                    (gbps * 1e9);
        t_max = std::max(t_max, comp[r] + comm_t[r]);
      }
      MinMaxMean comp_ratio, comm_ratio, idle_ratio, comp_abs;
      for (int r = 0; r < p; ++r) {
        comp_ratio.add(comp[r] / t_max);
        comm_ratio.add(comm_t[r] / t_max);
        idle_ratio.add(std::max(0.0, (t_max - comp[r] - comm_t[r]) / t_max));
        comp_abs.add(comp[r]);
      }
      const auto fmt3 = [](const MinMaxMean& m) {
        return TablePrinter::fmt(m.min(), 2) + "/" +
               TablePrinter::fmt(m.mean(), 2) + "/" +
               TablePrinter::fmt(m.max(), 2);
      };
      table.add_row({dgraph::partition_label(kind), TablePrinter::fmt_int(p),
                     fmt3(comp_ratio), fmt3(comm_ratio), fmt3(idle_ratio),
                     TablePrinter::fmt(comp_abs.mean(), 3)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nPaper reference: average computation time is much higher for\n"
         "WC-rand than the block strategies (native-order cache locality +\n"
         "fewer ghosts for blocks); maximum computation ratios are similar\n"
         "across partitionings (high-degree vertices); communication share\n"
         "rises with node count; random partitioning shows the lowest\n"
         "average and maximum idle; minimum idle near zero everywhere.\n"
         "Check: AvgComp(s) highest for `rand`; Idle max lowest for `rand`;\n"
         "Comm mean grows with Ranks.\n";
  return 0;
}
