// Micro-benchmarks (google-benchmark) for the primitives behind the
// paper's §III optimizations:
//
//   * linear-probing hash map vs std::unordered_map (the Table II `map`);
//   * ghost relabeling: flat-array access vs per-access hash lookup;
//   * LabelCounter (the Algorithm-1 `lmap`) vs std::unordered_map counting;
//   * Algorithm-3 thread-local queues vs one-atomic-per-item pushes;
//   * retained vs rebuilt ghost-exchange queues (§III-D1);
//   * Alltoallv payload throughput of the simulated runtime.

#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "dgraph/builder.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "gen/rmat.hpp"
#include "parcomm/comm.hpp"
#include "util/label_counter.hpp"
#include "util/lp_hash_map.hpp"
#include "util/rng.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph {
namespace {

// ---------- hash maps ----------

constexpr std::size_t kKeys = 1 << 16;

std::vector<std::uint64_t> make_keys() {
  std::vector<std::uint64_t> keys(kKeys);
  Rng rng(7);
  for (auto& k : keys) k = rng();
  return keys;
}

void BM_LpHashMapFind(benchmark::State& state) {
  const auto keys = make_keys();
  LpHashMap map(kKeys);
  for (std::size_t i = 0; i < keys.size(); ++i)
    map.insert(keys[i], static_cast<std::uint32_t>(i));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i]));
    i = (i + 1) & (kKeys - 1);
  }
}
BENCHMARK(BM_LpHashMapFind);

void BM_StdUnorderedMapFind(benchmark::State& state) {
  const auto keys = make_keys();
  std::unordered_map<std::uint64_t, std::uint32_t> map;
  map.reserve(kKeys);
  for (std::size_t i = 0; i < keys.size(); ++i)
    map[keys[i]] = static_cast<std::uint32_t>(i);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i])->second);
    i = (i + 1) & (kKeys - 1);
  }
}
BENCHMARK(BM_StdUnorderedMapFind);

// The paper's central representation decision: per-vertex state in a flat
// relabeled array vs "accessing a slow hash map" per touch.
void BM_FlatArrayAccess(benchmark::State& state) {
  std::vector<std::uint32_t> vals(kKeys);
  Rng rng(9);
  std::vector<std::uint32_t> idx(kKeys);
  for (auto& i : idx) i = static_cast<std::uint32_t>(rng.below(kKeys));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vals[idx[i]]);
    i = (i + 1) & (kKeys - 1);
  }
}
BENCHMARK(BM_FlatArrayAccess);

// ---------- label counting ----------

void BM_LabelCounterRound(benchmark::State& state) {
  // One LP vertex update: count ~32 neighbour labels, take the argmax.
  Rng rng(11);
  std::vector<std::uint64_t> labels(32);
  for (auto& l : labels) l = rng.below(8);
  LabelCounter lmap;
  for (auto _ : state) {
    lmap.clear();
    for (const auto l : labels) lmap.add(l);
    benchmark::DoNotOptimize(lmap.argmax(1, 0));
  }
}
BENCHMARK(BM_LabelCounterRound);

void BM_StdMapCounterRound(benchmark::State& state) {
  Rng rng(11);
  std::vector<std::uint64_t> labels(32);
  for (auto& l : labels) l = rng.below(8);
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint64_t> lmap;
    for (const auto l : labels) ++lmap[l];
    std::uint64_t best = 0, best_count = 0;
    for (const auto& [l, c] : lmap)
      if (c > best_count) {
        best = l;
        best_count = c;
      }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_StdMapCounterRound);

// ---------- Algorithm-3 thread queues ----------

void BM_MultiQueueSinkPush(benchmark::State& state) {
  constexpr std::uint32_t kTasks = 16;
  constexpr std::uint64_t kItems = 1 << 16;
  std::vector<std::uint64_t> counts(kTasks, kItems / kTasks);
  for (auto _ : state) {
    MultiQueue<std::uint64_t> q(counts);
    MultiQueue<std::uint64_t>::Sink sink(q, kDefaultQSize);
    for (std::uint64_t i = 0; i < kItems; ++i)
      sink.push(static_cast<std::uint32_t>(i % kTasks), i);
    sink.flush();
    benchmark::DoNotOptimize(q.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kItems);
}
BENCHMARK(BM_MultiQueueSinkPush);

void BM_MultiQueueSharedAtomicPush(benchmark::State& state) {
  // Ablation: the naive one-atomic-RMW-per-item scheme Algorithm 3 avoids.
  constexpr std::uint32_t kTasks = 16;
  constexpr std::uint64_t kItems = 1 << 16;
  std::vector<std::uint64_t> counts(kTasks, kItems / kTasks);
  for (auto _ : state) {
    MultiQueue<std::uint64_t> q(counts);
    for (std::uint64_t i = 0; i < kItems; ++i)
      q.push_shared(static_cast<std::uint32_t>(i % kTasks), i);
    benchmark::DoNotOptimize(q.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kItems);
}
BENCHMARK(BM_MultiQueueSharedAtomicPush);

// ---------- ghost exchange: retained vs rebuilt (§III-D1) ----------

struct GhostFixture {
  GhostFixture() {
    gen::RmatParams rp;
    rp.scale = 12;
    rp.avg_degree = 8;
    graph = gen::rmat(rp);
  }
  gen::EdgeList graph;
};

void BM_GhostExchangeRetained(benchmark::State& state) {
  static GhostFixture fx;
  parcomm::CommWorld world(4);
  for (auto _ : state) {
    world.run([&](parcomm::Communicator& comm) {
      const dgraph::DistGraph g = dgraph::Builder::from_edge_list(
          comm, fx.graph, dgraph::PartitionKind::kRandom);
      dgraph::GhostExchange gx(g, comm, dgraph::Adjacency::kBoth);
      std::vector<std::uint64_t> vals(g.n_total(), 1);
      for (int it = 0; it < 10; ++it)
        gx.exchange<std::uint64_t>(vals, comm);  // queues retained
    });
  }
}
BENCHMARK(BM_GhostExchangeRetained)->Unit(benchmark::kMillisecond);

void BM_GhostExchangeRebuilt(benchmark::State& state) {
  static GhostFixture fx;
  parcomm::CommWorld world(4);
  for (auto _ : state) {
    world.run([&](parcomm::Communicator& comm) {
      const dgraph::DistGraph g = dgraph::Builder::from_edge_list(
          comm, fx.graph, dgraph::PartitionKind::kRandom);
      std::vector<std::uint64_t> vals(g.n_total(), 1);
      for (int it = 0; it < 10; ++it) {
        dgraph::GhostExchange gx(g, comm, dgraph::Adjacency::kBoth);
        gx.exchange<std::uint64_t>(vals, comm);  // queues rebuilt each time
      }
    });
  }
}
BENCHMARK(BM_GhostExchangeRebuilt)->Unit(benchmark::kMillisecond);

// ---------- Alltoallv throughput ----------

void BM_Alltoallv(benchmark::State& state) {
  const int p = 4;
  const std::uint64_t per_dest = static_cast<std::uint64_t>(state.range(0));
  parcomm::CommWorld world(p);
  for (auto _ : state) {
    world.run([&](parcomm::Communicator& comm) {
      std::vector<std::uint64_t> counts(p, per_dest);
      std::vector<std::uint64_t> send(per_dest * p, comm.rank());
      benchmark::DoNotOptimize(
          comm.alltoallv<std::uint64_t>(send, counts));
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(per_dest) * p * p * 8);
}
BENCHMARK(BM_Alltoallv)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace
}  // namespace hpcgraph

BENCHMARK_MAIN();
