// Regenerates **Table IV** — "Execution times on 256 nodes of Blue Waters":
// all six analytics on the web crawl under the three partitioning
// strategies (WC-np / WC-mp / WC-rand) plus same-size R-MAT and Rand-ER.
//
// Paper setup: 3.56B-vertex graphs, 256 nodes.  Reproduction: --scale
// (default 2^16) vertices, --ranks (default 8) simulated ranks.  Iteration
// counts follow the paper: PageRank 10, Label Propagation 10, k-core 2^i
// sweep, Harmonic Centrality one vertex.  The claims under test: all six
// complete; k-core and LP are the long poles; synthetic graphs pay more for
// LP (no locality); R-MAT suffers load imbalance (see the imbalance
// column).

#include <iostream>

#include "analytics/analytics.hpp"
#include "bench_common.hpp"
#include "engine/frontier.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

namespace {

struct Workload {
  std::string label;
  const gen::EdgeList* graph;
  dgraph::PartitionKind kind;
};

struct AnalyticRow {
  std::string name;
  std::function<void(const dgraph::DistGraph&, parcomm::Communicator&)> body;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 16));
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));
  const double d_avg = cli.get_double("avg-degree", 16);
  const unsigned kcore_max_i = static_cast<unsigned>(cli.get_int("kcore-i", 16));
  const std::string trace_json = cli.get("trace-json", "");
  const bool overlap = cli.get_bool("overlap", false);
  Schedule sched = Schedule::kStatic;
  if (!parse_schedule(cli.get("schedule", "static"), &sched)) {
    std::cerr << "unknown --schedule (static|dynamic|edge)\n";
    return 2;
  }
  engine::FrontierMode fmode = engine::FrontierMode::kHybrid;
  if (!engine::parse_frontier_mode(cli.get("frontier", "hybrid"), &fmode)) {
    std::cerr << "unknown --frontier (queue|bitmap|hybrid)\n";
    return 2;
  }

  // Per-superstep telemetry: the engine-driven analytics append to one
  // shared trace (rank 0 pushes; runs are sequential, so appends are too).
  engine::SuperstepTrace trace;
  engine::SuperstepTrace* const trace_ptr =
      trace_json.empty() ? nullptr : &trace;

  const gvid_t n = gvid_t{1} << scale;

  gen::WebGraphParams wp;
  wp.n = n;
  wp.avg_degree = d_avg;
  const gen::WebGraph wc = gen::webgraph(wp);

  gen::RmatParams rp;
  rp.scale = scale;
  rp.avg_degree = d_avg;
  const gen::EdgeList rmat_g = gen::rmat(rp);

  gen::ErParams ep;
  ep.n = n;
  ep.m = static_cast<std::uint64_t>(d_avg * static_cast<double>(n));
  const gen::EdgeList er_g = gen::erdos_renyi(ep);

  hb::print_banner(
      "Table IV: six-analytic execution times",
      "n=2^" + std::to_string(scale) + ", d_avg=" +
          TablePrinter::fmt(d_avg, 0) + ", " + std::to_string(nranks) +
          " ranks");

  const std::vector<Workload> workloads = {
      {"WC-np", &wc.graph, dgraph::PartitionKind::kVertexBlock},
      {"WC-mp", &wc.graph, dgraph::PartitionKind::kEdgeBlock},
      {"WC-rand", &wc.graph, dgraph::PartitionKind::kRandom},
      {"R-MAT", &rmat_g, dgraph::PartitionKind::kVertexBlock},
      {"Rand-ER", &er_g, dgraph::PartitionKind::kVertexBlock},
  };

  const std::vector<AnalyticRow> rows = {
      {"PageRank (10 it)",
       [trace_ptr, overlap, sched](const dgraph::DistGraph& g,
                                   parcomm::Communicator& comm) {
         analytics::PageRankOptions o;
         o.max_iterations = 10;
         o.common.trace = trace_ptr;
         o.common.overlap = overlap;
         o.common.schedule = sched;
         (void)analytics::pagerank(g, comm, o);
       }},
      {"Label Prop (10 it)",
       [trace_ptr, overlap, sched](const dgraph::DistGraph& g,
                                   parcomm::Communicator& comm) {
         analytics::LabelPropOptions o;
         o.iterations = 10;
         o.common.trace = trace_ptr;
         o.common.overlap = overlap;
         o.common.schedule = sched;
         (void)analytics::label_propagation(g, comm, o);
       }},
      {"WCC (Multistep)",
       [trace_ptr, overlap, sched](const dgraph::DistGraph& g,
                                   parcomm::Communicator& comm) {
         analytics::WccOptions o;
         o.common.trace = trace_ptr;
         o.common.overlap = overlap;
         o.common.schedule = sched;
         (void)analytics::wcc(g, comm, o);
       }},
      {"Harmonic Cent. (1 vtx)",
       [trace_ptr, sched, fmode](const dgraph::DistGraph& g,
                                 parcomm::Communicator& comm) {
         const gvid_t hot = analytics::max_degree_vertex(g, comm);
         analytics::HarmonicOptions o;
         o.common.trace = trace_ptr;
         o.common.schedule = sched;
         o.common.frontier = fmode;
         (void)analytics::harmonic_centrality(g, comm, hot, o);
       }},
      {"k-core (2^i sweep)",
       [kcore_max_i, trace_ptr, sched](const dgraph::DistGraph& g,
                                       parcomm::Communicator& comm) {
         analytics::KCoreOptions o;
         o.max_i = kcore_max_i;
         o.common.trace = trace_ptr;
         o.common.schedule = sched;
         (void)analytics::kcore_approx(g, comm, o);
       }},
      {"SCC (FW-BW)",
       [trace_ptr, sched, fmode](const dgraph::DistGraph& g,
                                 parcomm::Communicator& comm) {
         analytics::SccOptions o;
         o.common.trace = trace_ptr;
         o.common.schedule = sched;
         o.common.frontier = fmode;
         (void)analytics::largest_scc(g, comm, o);
       }},
  };

  std::vector<std::string> header{"Analytic"};
  for (const Workload& w : workloads) header.push_back(w.label + " Tpar(s)");
  header.push_back("R-MAT imbal");
  TablePrinter table(header);

  for (const AnalyticRow& row : rows) {
    std::vector<std::string> cells{row.name};
    double rmat_imbalance = 0;
    for (const Workload& w : workloads) {
      const hb::RegionReport rep =
          hb::run_region(*w.graph, nranks, w.kind, row.body);
      cells.push_back(TablePrinter::fmt(rep.tpar, 3));
      if (w.label == "R-MAT") rmat_imbalance = rep.cpu.imbalance();
    }
    cells.push_back(TablePrinter::fmt(rmat_imbalance, 2));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  if (trace_ptr) {
    trace.write_json(trace_json);
    std::cout << "\nwrote " << trace_json << " (" << trace.size()
              << " supersteps)\n";
  }

  std::cout
      << "\nPaper reference (256 nodes, 3.56B vertices): PageRank and SCC\n"
         "fastest; k-core (27 BFS stages) and Label Propagation (hash-map-\n"
         "heavy inner loop) the long poles yet under 10 minutes; synthetic\n"
         "graphs slower on LP for lack of locality; R-MAT load-imbalanced.\n"
         "End-to-end for all six, including I/O: ~20 minutes.\n";
  return 0;
}
