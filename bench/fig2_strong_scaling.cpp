// Regenerates **Figure 2** — Label Propagation strong scaling (speedup
// relative to the smallest configuration) on WC with all three partitioning
// strategies plus same-size R-MAT and Rand-ER.
//
// Paper setup: 256 -> 1024 Blue Waters nodes, speedup vs the 256-node run.
// Reproduction: fixed graphs at --scale (default 2^16), ranks 2..16,
// speedup of Tpar vs the 2-rank run.  Claims under test: synthetic graphs
// scale well; WC-rand scales best among the WC partitionings at high rank
// counts (block strategies hit load imbalance).

#include <iostream>
#include <map>

#include "analytics/label_prop.hpp"
#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 16));
  const std::vector<int> ranks = hb::parse_ranks(cli, "ranks", {2, 4, 8, 16});
  const double d_avg = cli.get_double("avg-degree", 16);
  const int iters = static_cast<int>(cli.get_int("iters", 5));

  const gvid_t n = gvid_t{1} << scale;

  gen::WebGraphParams wp;
  wp.n = n;
  wp.avg_degree = d_avg;
  const gen::WebGraph wc = gen::webgraph(wp);

  gen::RmatParams rp;
  rp.scale = scale;
  rp.avg_degree = d_avg;
  const gen::EdgeList rmat_g = gen::rmat(rp);

  gen::ErParams ep;
  ep.n = n;
  ep.m = static_cast<std::uint64_t>(d_avg * static_cast<double>(n));
  const gen::EdgeList er_g = gen::erdos_renyi(ep);

  hb::print_banner("Figure 2: Label Propagation strong scaling",
                   "n=2^" + std::to_string(scale) + ", " +
                       std::to_string(iters) + " LP iterations");

  struct Series {
    std::string label;
    const gen::EdgeList* graph;
    dgraph::PartitionKind kind;
  };
  const std::vector<Series> series = {
      {"WC-np", &wc.graph, dgraph::PartitionKind::kVertexBlock},
      {"WC-mp", &wc.graph, dgraph::PartitionKind::kEdgeBlock},
      {"WC-rand", &wc.graph, dgraph::PartitionKind::kRandom},
      {"R-MAT", &rmat_g, dgraph::PartitionKind::kVertexBlock},
      {"Rand-ER", &er_g, dgraph::PartitionKind::kVertexBlock},
  };

  const auto body = [iters](const dgraph::DistGraph& g,
                            parcomm::Communicator& comm) {
    analytics::LabelPropOptions o;
    o.iterations = iters;
    (void)analytics::label_propagation(g, comm, o);
  };

  TablePrinter table({"Input", "Ranks", "Tpar(s)", "Speedup", "CPU imbal"});
  for (const Series& s : series) {
    double base = 0;
    for (const int p : ranks) {
      const hb::RegionReport rep = hb::run_region(*s.graph, p, s.kind, body);
      if (base == 0) base = rep.tpar;
      table.add_row({s.label, TablePrinter::fmt_int(p),
                     TablePrinter::fmt(rep.tpar, 3),
                     TablePrinter::fmt(base / rep.tpar, 2),
                     TablePrinter::fmt(rep.cpu.imbalance(), 2)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nPaper reference: LP scales well on the synthetic graphs; the\n"
         "best WC performance/scaling comes from random partitioning — the\n"
         "block strategies lose performance at high node counts to load\n"
         "imbalance.  Expected shape here: WC-rand's speedup curve tops the\n"
         "WC partitionings at 16 ranks, and its CPU-imbalance factor stays\n"
         "lowest.\n";
  return 0;
}
