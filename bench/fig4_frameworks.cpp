// Regenerates **Figure 4** — PageRank and WCC execution times: the tuned
// implementations ("SRM") vs graph-processing frameworks, on the five
// smaller comparison graphs (Google, LiveJournal, Twitter, Pay, Host).
//
// Framework substitutions (DESIGN.md §1):
//   GX/PG/PL (GraphX / PowerGraph / PowerLyra)  ->  miniGAS, a synchronous
//       gather-apply-scatter engine paying the same generality costs
//       (per-edge messages, per-superstep hash decode, rebuilt buffers);
//   FG / FG-SA (FlashGraph external / standalone) -> the edge-streaming
//       engine reading from disk / from memory.
//
// Rows: SRM-1 (1 rank), SRM-16 (16 ranks, Tpar), GAS-16, FG, FG-SA.
// Also prints the geometric-mean speedups the paper headline-reports and
// the Multistep-vs-single-stage WCC ablation behind them, plus the §V
// Trinity-style comparison (8-rank R-MAT PageRank + BFS).

#include <atomic>
#include <filesystem>
#include <iostream>

#include "analytics/analytics.hpp"
#include "baselines/edgestream.hpp"
#include "baselines/gas_engine.hpp"
#include "baselines/gas_programs.hpp"
#include "baselines/pregel_engine.hpp"
#include "baselines/pregel_programs.hpp"
#include "baselines/singlestage_wcc.hpp"
#include "bench_common.hpp"
#include "gen/rmat.hpp"
#include "gen/social.hpp"
#include "gen/webgraph.hpp"
#include "io/binary_edge_io.hpp"
#include "util/timer.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

namespace {

double stream_time(const std::function<void()>& fn) {
  const double c0 = thread_cpu_seconds();
  fn();
  return thread_cpu_seconds() - c0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale_div =
      static_cast<unsigned>(cli.get_int("scale-div", 512));
  const int big = static_cast<int>(cli.get_int("ranks", 16));
  const int pr_iters = static_cast<int>(cli.get_int("pr-iters", 10));

  hb::print_banner(
      "Figure 4: framework comparison (PageRank + WCC)",
      "Table I graphs at 1/" + std::to_string(scale_div) +
          " scale; SRM vs miniGAS (PowerGraph-style) vs edge-stream "
          "(FlashGraph-style)");

  const auto dir = std::filesystem::temp_directory_path() / "hpcgraph_fig4";
  std::filesystem::create_directories(dir);

  struct Dataset {
    std::string name;
    gen::EdgeList graph;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"Google", gen::google_like(scale_div)});
  datasets.push_back({"LiveJournal", gen::livejournal_like(scale_div)});
  datasets.push_back({"Twitter", gen::twitter_like(scale_div)});
  datasets.push_back({"Pay", gen::pay_like(scale_div)});
  datasets.push_back({"Host", gen::host_like(scale_div)});

  TablePrinter pr_table({"Graph", "n", "m", "SRM-1", "SRM-16", "GAS-16",
                         "Pregel-16", "FG", "FG-SA"});
  TablePrinter cc_table({"Graph", "SRM-1", "SRM-16", "GAS-16", "FG", "FG-SA",
                         "1-stage-16", "Rounds MS/1-stage"});

  std::vector<double> pr_speedup_gas, cc_speedup_gas;
  std::vector<double> pr_speedup_pregel;
  std::vector<double> pr_speedup_fg, cc_speedup_fg;
  std::vector<double> pr_speedup_fgsa, cc_speedup_fgsa;

  for (const Dataset& d : datasets) {
    const std::string path = (dir / (d.name + ".bin")).string();
    io::write_edge_file(path, d.graph);

    // ---- PageRank. ----
    const auto pr_body = [pr_iters](const dgraph::DistGraph& g,
                                    parcomm::Communicator& comm) {
      analytics::PageRankOptions o;
      o.max_iterations = pr_iters;
      (void)analytics::pagerank(g, comm, o);
    };
    const double srm1_pr =
        hb::run_region(d.graph, 1, dgraph::PartitionKind::kRandom, pr_body)
            .tpar;
    const double srm16_pr =
        hb::run_region(d.graph, big, dgraph::PartitionKind::kRandom, pr_body)
            .tpar;
    const double gas16_pr =
        hb::run_region(d.graph, big, dgraph::PartitionKind::kRandom,
                       [pr_iters](const dgraph::DistGraph& g,
                                  parcomm::Communicator& comm) {
                         const baselines::GasPageRank program(g.n_global());
                         baselines::GasOptions o;
                         o.max_supersteps = pr_iters;
                         (void)baselines::gas_run(g, comm, program, o);
                       })
            .tpar;
    const double pregel16_pr =
        hb::run_region(d.graph, big, dgraph::PartitionKind::kRandom,
                       [pr_iters](const dgraph::DistGraph& g,
                                  parcomm::Communicator& comm) {
                         const baselines::PregelPageRank program(
                             g.n_global(), pr_iters);
                         baselines::PregelOptions o;
                         o.max_supersteps = pr_iters + 2;
                         (void)baselines::pregel_run(g, comm, program, o);
                       })
            .tpar;
    const baselines::EdgeStream fg_disk(path, io::EdgeFormat::kU32, d.graph.n);
    const baselines::EdgeStream fg_mem(d.graph);
    const double fg_pr = stream_time(
        [&] { (void)baselines::stream_pagerank(fg_disk, pr_iters); });
    const double fgsa_pr = stream_time(
        [&] { (void)baselines::stream_pagerank(fg_mem, pr_iters); });

    pr_table.add_row(
        {d.name, TablePrinter::fmt_si(static_cast<double>(d.graph.n), 1),
         TablePrinter::fmt_si(static_cast<double>(d.graph.m()), 1),
         TablePrinter::fmt(srm1_pr, 3), TablePrinter::fmt(srm16_pr, 3),
         TablePrinter::fmt(gas16_pr, 3), TablePrinter::fmt(pregel16_pr, 3),
         TablePrinter::fmt(fg_pr, 3), TablePrinter::fmt(fgsa_pr, 3)});
    pr_speedup_pregel.push_back(pregel16_pr / srm16_pr);
    pr_speedup_gas.push_back(gas16_pr / srm16_pr);
    pr_speedup_fg.push_back(fg_pr / srm1_pr);
    pr_speedup_fgsa.push_back(fgsa_pr / srm1_pr);

    // ---- WCC. ----
    std::atomic<int> ms_rounds{0}, ss_rounds{0};
    const auto cc_body = [&ms_rounds](const dgraph::DistGraph& g,
                                      parcomm::Communicator& comm) {
      const auto res = analytics::wcc(g, comm);
      if (comm.rank() == 0)
        ms_rounds = res.bfs_levels + res.coloring_iters;
    };
    const double srm1_cc =
        hb::run_region(d.graph, 1, dgraph::PartitionKind::kRandom, cc_body)
            .tpar;
    const double srm16_cc =
        hb::run_region(d.graph, big, dgraph::PartitionKind::kRandom, cc_body)
            .tpar;
    const double gas16_cc =
        hb::run_region(d.graph, big, dgraph::PartitionKind::kRandom,
                       [](const dgraph::DistGraph& g,
                          parcomm::Communicator& comm) {
                         const baselines::GasConnectedComponents program;
                         baselines::GasOptions o;
                         o.max_supersteps = 10000;
                         o.direction = baselines::GasDirection::kUndirected;
                         o.run_to_convergence = true;
                         (void)baselines::gas_run(g, comm, program, o);
                       })
            .tpar;
    const double ss16_cc =
        hb::run_region(d.graph, big, dgraph::PartitionKind::kRandom,
                       [&ss_rounds](const dgraph::DistGraph& g,
                                    parcomm::Communicator& comm) {
                         const auto res = baselines::wcc_singlestage(g, comm);
                         if (comm.rank() == 0) ss_rounds = res.iterations;
                       })
            .tpar;
    const double fg_cc =
        stream_time([&] { (void)baselines::stream_wcc(fg_disk); });
    const double fgsa_cc =
        stream_time([&] { (void)baselines::stream_wcc(fg_mem); });

    cc_table.add_row({d.name, TablePrinter::fmt(srm1_cc, 3),
                      TablePrinter::fmt(srm16_cc, 3),
                      TablePrinter::fmt(gas16_cc, 3),
                      TablePrinter::fmt(fg_cc, 3),
                      TablePrinter::fmt(fgsa_cc, 3),
                      TablePrinter::fmt(ss16_cc, 3),
                      std::to_string(ms_rounds.load()) + "/" +
                          std::to_string(ss_rounds.load())});
    cc_speedup_gas.push_back(gas16_cc / srm16_cc);
    cc_speedup_fg.push_back(fg_cc / srm1_cc);
    cc_speedup_fgsa.push_back(fgsa_cc / srm1_cc);
  }

  std::cout << "\nPageRank times (seconds, " << pr_iters << " iterations):\n";
  pr_table.print(std::cout);
  std::cout << "\nWCC times (seconds):\n";
  cc_table.print(std::cout);

  std::cout << "\nGeometric-mean speedups (ours vs framework):\n"
            << "  PageRank: vs GAS-16 "
            << TablePrinter::fmt(geometric_mean(pr_speedup_gas), 1)
            << "x, vs Pregel-16 "
            << TablePrinter::fmt(geometric_mean(pr_speedup_pregel), 1)
            << "x, vs FG " << TablePrinter::fmt(geometric_mean(pr_speedup_fg), 1)
            << "x, vs FG-SA "
            << TablePrinter::fmt(geometric_mean(pr_speedup_fgsa), 1) << "x\n"
            << "  WCC:      vs GAS-16 "
            << TablePrinter::fmt(geometric_mean(cc_speedup_gas), 1)
            << "x, vs FG " << TablePrinter::fmt(geometric_mean(cc_speedup_fg), 1)
            << "x, vs FG-SA "
            << TablePrinter::fmt(geometric_mean(cc_speedup_fgsa), 1) << "x\n";

  // ---- §V further comparison: Giraph-style per-iteration LP + PR. ----
  {
    gen::WebGraphParams wp;
    wp.n = gvid_t{1} << static_cast<unsigned>(cli.get_int("giraph-scale", 15));
    wp.avg_degree = 16;
    const gen::WebGraph wg = gen::webgraph(wp);
    const int lp_iters = 5;

    const double srm_lp =
        hb::run_region(wg.graph, big, dgraph::PartitionKind::kRandom,
                       [lp_iters](const dgraph::DistGraph& g,
                                  parcomm::Communicator& comm) {
                         analytics::LabelPropOptions o;
                         o.iterations = lp_iters;
                         (void)analytics::label_propagation(g, comm, o);
                       })
            .tpar /
        lp_iters;
    const double pregel_lp =
        hb::run_region(wg.graph, big, dgraph::PartitionKind::kRandom,
                       [lp_iters](const dgraph::DistGraph& g,
                                  parcomm::Communicator& comm) {
                         const baselines::PregelLabelProp program(lp_iters);
                         baselines::PregelOptions o;
                         o.max_supersteps = lp_iters + 2;
                         (void)baselines::pregel_run(g, comm, program, o);
                       })
            .tpar /
        lp_iters;
    const double srm_pr =
        hb::run_region(wg.graph, big, dgraph::PartitionKind::kRandom,
                       [pr_iters](const dgraph::DistGraph& g,
                                  parcomm::Communicator& comm) {
                         analytics::PageRankOptions o;
                         o.max_iterations = pr_iters;
                         (void)analytics::pagerank(g, comm, o);
                       })
            .tpar /
        pr_iters;
    const double pregel_pr =
        hb::run_region(wg.graph, big, dgraph::PartitionKind::kRandom,
                       [pr_iters](const dgraph::DistGraph& g,
                                  parcomm::Communicator& comm) {
                         const baselines::PregelPageRank program(
                             g.n_global(), pr_iters);
                         baselines::PregelOptions o;
                         o.max_supersteps = pr_iters + 2;
                         (void)baselines::pregel_run(g, comm, program, o);
                       })
            .tpar /
        pr_iters;

    std::cout << "\n§V Giraph-style comparison (web crawl n=" << wg.graph.n
              << ", " << big << " ranks, per-iteration Tpar):\n"
              << "  Label Propagation: ours "
              << TablePrinter::fmt(srm_lp * 1e3, 2) << " ms vs miniPregel "
              << TablePrinter::fmt(pregel_lp * 1e3, 2) << " ms ("
              << TablePrinter::fmt(pregel_lp / srm_lp, 1) << "x)\n"
              << "  PageRank:          ours "
              << TablePrinter::fmt(srm_pr * 1e3, 2) << " ms vs miniPregel "
              << TablePrinter::fmt(pregel_pr * 1e3, 2) << " ms ("
              << TablePrinter::fmt(pregel_pr / srm_pr, 1) << "x)\n"
              << "  (Paper: Giraph on Facebook-scale graphs took 9.5 min/it\n"
              << "  for LP and 5 min/it for PageRank on 200 nodes, vs the\n"
              << "  paper's 40 s and 4.4 s on 256 nodes — ~14x and ~68x.)\n";
  }

  // ---- §V further comparison: Trinity-style 8-node R-MAT PR + BFS. ----
  {
    gen::RmatParams rp;
    rp.scale = static_cast<unsigned>(cli.get_int("trinity-scale", 16));
    rp.avg_degree = 13;  // the paper's SCALE-28, d_avg 13 input, scaled
    const gen::EdgeList g = gen::rmat(rp);
    const double pr8 =
        hb::run_region(g, 8, dgraph::PartitionKind::kVertexBlock,
                       [](const dgraph::DistGraph& dg,
                          parcomm::Communicator& comm) {
                         analytics::PageRankOptions o;
                         o.max_iterations = 1;
                         (void)analytics::pagerank(dg, comm, o);
                       })
            .tpar;
    const double bfs8 =
        hb::run_region(g, 8, dgraph::PartitionKind::kVertexBlock,
                       [](const dgraph::DistGraph& dg,
                          parcomm::Communicator& comm) {
                         (void)analytics::bfs(dg, comm, 0);
                       })
            .tpar;
    std::cout << "\n§V Trinity-style comparison (R-MAT scale "
              << rp.scale << ", d_avg 13, 8 ranks):\n"
              << "  PageRank/iter " << TablePrinter::fmt(pr8, 3)
              << " s, BFS " << TablePrinter::fmt(bfs8, 3) << " s\n"
              << "  (Paper, 8 Compton nodes at SCALE-28: 1.5 s/iter and "
                 "~32 s — 10x faster than Trinity's published numbers.)\n";
  }

  std::cout
      << "\nPaper reference (16-node Compton): 38x geometric-mean PageRank\n"
         "and 201x WCC speedup vs GraphX/PowerGraph/PowerLyra; 2.4x/2.6x\n"
         "(PR/WCC) vs FlashGraph-SA and 12x/19x vs external FlashGraph on\n"
         "one node; WCC speedups exceed PageRank's thanks to Multistep (see\n"
         "the 1-stage-16 column).  Expected shape here: SRM fastest, GAS\n"
         "slowest per superstep budget, FG > FG-SA > SRM-1, and Multistep\n"
         "beating single-stage WCC.\n";

  std::filesystem::remove_all(dir);
  return 0;
}
