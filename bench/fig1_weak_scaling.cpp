// Regenerates **Figure 1** — weak scaling of Harmonic Centrality and
// PageRank on R-MAT and Rand-ER, 2^22 vertices *per node* in the paper
// (8..1024 nodes); here --verts-per-rank (default 2^13) per simulated rank,
// ranks 1..16, vertex-block partitioning as in the paper.
//
// Claims under test (read the Tpar column — constant per-rank work means a
// flat curve is ideal): Rand-ER scales almost perfectly until communication
// grows; R-MAT scales worse because high-degree vertices skew both work and
// communication (imbalance column).

#include <iostream>

#include "analytics/harmonic.hpp"
#include "analytics/pagerank.hpp"
#include "analytics/wcc.hpp"
#include "bench_common.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned per_rank_log2 =
      static_cast<unsigned>(cli.get_int("verts-per-rank", 13));
  const std::vector<int> ranks = hb::parse_ranks(cli, "ranks", {1, 2, 4, 8, 16});
  const double d_avg = cli.get_double("avg-degree", 16);

  hb::print_banner("Figure 1: weak scaling, Harmonic Centrality + PageRank",
                   "2^" + std::to_string(per_rank_log2) +
                       " vertices/rank, R-MAT & Rand-ER, vertex-block");

  TablePrinter table({"Graph", "Analytic", "Ranks", "n", "Tpar(s)",
                      "CPU imbal", "MB remote/rank"});

  for (const int p : ranks) {
    // Total size grows with the rank count: weak scaling.
    std::uint64_t total_log2 = per_rank_log2;
    int pp = p;
    while (pp > 1) {
      ++total_log2;
      pp >>= 1;
    }
    const gvid_t n = gvid_t{1} << total_log2;

    gen::RmatParams rp;
    rp.scale = static_cast<unsigned>(total_log2);
    rp.avg_degree = d_avg;
    const gen::EdgeList rmat_g = gen::rmat(rp);

    gen::ErParams ep;
    ep.n = n;
    ep.m = static_cast<std::uint64_t>(d_avg * static_cast<double>(n));
    const gen::EdgeList er_g = gen::erdos_renyi(ep);

    for (const auto& [label, graph] :
         {std::pair<const char*, const gen::EdgeList*>{"R-MAT", &rmat_g},
          {"Rand-ER", &er_g}}) {
      // Harmonic centrality of the max-degree vertex (one BFS).
      const hb::RegionReport hc = hb::run_region(
          *graph, p, dgraph::PartitionKind::kVertexBlock,
          [](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
            const gvid_t hot = analytics::max_degree_vertex(g, comm);
            (void)analytics::harmonic_centrality(g, comm, hot);
          });
      table.add_row({label, "HarmonicCentrality", TablePrinter::fmt_int(p),
                     TablePrinter::fmt_si(static_cast<double>(n), 0),
                     TablePrinter::fmt(hc.tpar, 3),
                     TablePrinter::fmt(hc.cpu.imbalance(), 2),
                     TablePrinter::fmt(
                         static_cast<double>(hc.bytes_remote_max) / 1e6, 2)});

      // PageRank, per-iteration cost (10 iterations / 10).
      const hb::RegionReport pr = hb::run_region(
          *graph, p, dgraph::PartitionKind::kVertexBlock,
          [](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
            analytics::PageRankOptions o;
            o.max_iterations = 10;
            (void)analytics::pagerank(g, comm, o);
          });
      table.add_row({label, "PageRank (10 it)", TablePrinter::fmt_int(p),
                     TablePrinter::fmt_si(static_cast<double>(n), 0),
                     TablePrinter::fmt(pr.tpar, 3),
                     TablePrinter::fmt(pr.cpu.imbalance(), 2),
                     TablePrinter::fmt(
                         static_cast<double>(pr.bytes_remote_max) / 1e6, 2)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nPaper reference: harmonic centrality scales extremely well on\n"
         "Rand-ER until 512+ nodes (collectives begin to dominate); R-MAT\n"
         "scales worse due to high-degree-vertex work/communication\n"
         "imbalance; PageRank scales moderately well on both.\n"
         "Expected shape here: Tpar roughly flat with ranks for Rand-ER,\n"
         "rising for R-MAT along with its CPU imbalance factor.\n";
  return 0;
}
