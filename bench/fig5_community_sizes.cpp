// Regenerates **Figure 5** — the frequency plot of community sizes after 30
// Label Propagation iterations on the web crawl (log-log).
//
// Claims under test: a heavy-tailed size distribution with a very large
// number of size-1 and size-2 communities — "striking similarity to the
// frequency plots of in-degree, out-degree, WCC, and SCC given in Meusel
// et al."

#include <iostream>

#include "analytics/community_stats.hpp"
#include "analytics/label_prop.hpp"
#include "bench_common.hpp"
#include "gen/webgraph.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 16));
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));
  const int iters = static_cast<int>(cli.get_int("iters", 30));

  gen::WebGraphParams wp;
  wp.n = gvid_t{1} << scale;
  wp.avg_degree = 16;
  const gen::WebGraph wc = gen::webgraph(wp);

  hb::print_banner("Figure 5: community size frequency (log-log)",
                   "webgraph n=2^" + std::to_string(scale) + ", LP x" +
                       std::to_string(iters));

  Log2Histogram hist;
  std::uint64_t num_communities = 0;
  hb::run_region(
      wc.graph, nranks, dgraph::PartitionKind::kVertexBlock,
      [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
        analytics::LabelPropOptions lp;
        lp.iterations = iters;
        const auto labels = analytics::label_propagation(g, comm, lp);
        const auto cs = analytics::community_stats(g, comm, labels.labels, {});
        if (comm.rank() == 0) {
          hist = cs.size_histogram;
          num_communities = cs.num_communities;
        }
      });

  TablePrinter table({"Community size", "Frequency", "Cum. fraction"});
  for (unsigned b = 0; b < hist.num_buckets(); ++b) {
    if (hist.count(b) == 0) continue;
    const std::uint64_t lo = Log2Histogram::bucket_lo(b);
    const std::uint64_t hi = (std::uint64_t{1} << (b + 1)) - 1;
    table.add_row({"[" + std::to_string(lo) + ", " + std::to_string(hi) + "]",
                   TablePrinter::fmt_int(static_cast<long long>(hist.count(b))),
                   TablePrinter::fmt(hist.cdf(b), 4)});
  }
  table.print(std::cout);
  std::cout << "\nCommunities total: " << num_communities << "\n";

  std::cout
      << "\nPaper reference: heavy-tailed, with very many size-1/2\n"
         "communities and a handful of giant ones.  Expected shape here:\n"
         "frequency decreasing roughly geometrically with the size bucket,\n"
         "mass concentrated in the first buckets.\n";
  return 0;
}
