// Regenerates **Table V** — the top-10 communities by vertex count after 10
// and 30 Label Propagation iterations: members (n_in), intra-community
// edges (m_in), cut edges (m_cut), and a representative vertex.
//
// Paper setup: WC, 3.56B vertices; representative vertices were recognizable
// hub pages (creativecommons.org, wordpress.org, ...).  The synthetic web
// crawl carries the same named hubs, so representatives resolve to the same
// kind of labels.  Claims under test: large communities stable between 10
// and 30 iterations; more iterations -> denser communities (m_in/m_cut up);
// some communities merge.

#include <iostream>

#include "analytics/community_stats.hpp"
#include "analytics/label_prop.hpp"
#include "bench_common.hpp"
#include "gen/webgraph.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 16));
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));

  gen::WebGraphParams wp;
  wp.n = gvid_t{1} << scale;
  wp.avg_degree = 16;
  const gen::WebGraph wc = gen::webgraph(wp);

  hb::print_banner("Table V: top-10 communities from Label Propagation",
                   "webgraph n=2^" + std::to_string(scale) + ", " +
                       std::to_string(nranks) + " ranks");

  double ratio_10 = 0, ratio_30 = 0;
  for (const int iters : {10, 30}) {
    TablePrinter table({"n_in", "m_in", "m_cut", "Representative vertex"});
    double intra = 0, cut = 0;
    hb::run_region(
        wc.graph, nranks, dgraph::PartitionKind::kVertexBlock,
        [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
          analytics::LabelPropOptions lp;
          lp.iterations = iters;
          const auto labels = analytics::label_propagation(g, comm, lp);
          analytics::CommunityStatsOptions cso;
          cso.top_k = 10;
          const auto cs = analytics::community_stats(g, comm, labels.labels, cso);
          if (comm.rank() == 0) {
            for (const auto& rec : cs.top) {
              table.add_row(
                  {TablePrinter::fmt_si(static_cast<double>(rec.n_in), 2),
                   TablePrinter::fmt_si(static_cast<double>(rec.m_in), 2),
                   TablePrinter::fmt_si(static_cast<double>(rec.m_cut), 2),
                   gen::webgraph_vertex_name(wc, rec.representative)});
              intra += static_cast<double>(rec.m_in);
              cut += static_cast<double>(rec.m_cut);
            }
          }
        });
    std::cout << "\nResults after " << iters << " Label Prop. iterations:\n";
    table.print(std::cout);
    (iters == 10 ? ratio_10 : ratio_30) = cut > 0 ? intra / cut : 0;
  }

  std::cout << "\nIntra/cut edge ratio of the top communities: 10 it -> "
            << TablePrinter::fmt(ratio_10, 2) << ", 30 it -> "
            << TablePrinter::fmt(ratio_30, 2) << "\n";
  std::cout
      << "\nPaper reference: the same large-scale communities appear in the\n"
         "10- and 30-iteration lists; with more iterations communities get\n"
         "denser (intra-to-inter edge ratio increases) and smaller ones can\n"
         "merge; representatives are recognizable hub sites.\n";
  return 0;
}
