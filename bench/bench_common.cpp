#include "bench_common.hpp"

#include <iostream>
#include <sstream>

#include "util/timer.hpp"

namespace hpcgraph::bench {

RegionReport run_region(
    const gen::EdgeList& el, int nranks, dgraph::PartitionKind kind,
    const std::function<void(const dgraph::DistGraph&,
                             parcomm::Communicator&)>& body,
    std::uint64_t part_seed, std::vector<RankMetrics>* per_rank) {
  parcomm::CommWorld world(nranks);
  std::vector<RankMetrics> metrics(nranks);
  Timer wall;
  double region_wall = 0;

  world.run([&](parcomm::Communicator& comm) {
    const dgraph::DistGraph g =
        dgraph::Builder::from_edge_list(comm, el, kind, nullptr, part_seed);
    comm.barrier();
    comm.stats().reset();
    const double cpu0 = thread_cpu_seconds();
    if (comm.rank() == 0) wall.restart();

    body(g, comm);

    comm.barrier();
    RankMetrics& m = metrics[comm.rank()];
    m.cpu = thread_cpu_seconds() - cpu0;
    m.bytes_remote = comm.stats().bytes_remote;
    m.collectives = comm.stats().collective_calls;
    m.ghost_rounds_dense = comm.stats().ghost_rounds_dense;
    m.ghost_rounds_sparse = comm.stats().ghost_rounds_sparse;
    m.ghost_rounds_reduce = comm.stats().ghost_rounds_reduce;
    m.ghost_bytes_saved = comm.stats().ghost_bytes_saved;
    if (comm.rank() == 0) region_wall = wall.elapsed();
  });

  RegionReport rep;
  rep.wall = region_wall;
  MinMaxMean cpu;
  for (const RankMetrics& m : metrics) {
    cpu.add(m.cpu);
    rep.cpu_total += m.cpu;
    rep.bytes_remote_total += m.bytes_remote;
    rep.bytes_remote_max = std::max(rep.bytes_remote_max, m.bytes_remote);
  }
  rep.tpar = cpu.max();
  rep.cpu = {cpu.min(), cpu.mean(), cpu.max()};
  if (per_rank) *per_rank = std::move(metrics);
  return rep;
}

void print_banner(const std::string& artifact, const std::string& workload) {
  std::cout << "==================================================================\n"
            << "hpcgraph reproduction — " << artifact << "\n"
            << "Workload: " << workload << "\n"
            << "Ranks are simulated as threads on this host; `Tpar` = max\n"
            << "per-rank CPU time (the parallel wall-time proxy), `wall` is\n"
            << "this host's timesliced wall time. See DESIGN.md / EXPERIMENTS.md.\n"
            << "==================================================================\n";
}

std::vector<int> parse_ranks(const Cli& cli, const std::string& flag,
                             std::vector<int> dflt) {
  if (!cli.has(flag)) return dflt;
  std::vector<int> out;
  std::stringstream ss(cli.get(flag, ""));
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(std::stoi(tok));
  return out.empty() ? dflt : out;
}

}  // namespace hpcgraph::bench
