#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include <thread>

#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/parallel_for.hpp"
#include "util/timer.hpp"

// Stamped by bench/CMakeLists.txt; fall back for non-CMake builds.
#ifndef HPCGRAPH_BUILD_TYPE
#define HPCGRAPH_BUILD_TYPE "unknown"
#endif
#ifndef HPCGRAPH_GIT_SHA
#define HPCGRAPH_GIT_SHA "unknown"
#endif

namespace hpcgraph::bench {

RegionReport run_region(
    const gen::EdgeList& el, int nranks, dgraph::PartitionKind kind,
    const std::function<void(const dgraph::DistGraph&,
                             parcomm::Communicator&)>& body,
    std::uint64_t part_seed, std::vector<RankMetrics>* per_rank) {
  parcomm::CommWorld world(nranks);
  std::vector<RankMetrics> metrics(nranks);
  Timer wall;
  double region_wall = 0;

  world.run([&](parcomm::Communicator& comm) {
    obs::RankGuard obs_guard(comm.rank());
    const dgraph::DistGraph g =
        dgraph::Builder::from_edge_list(comm, el, kind, nullptr, part_seed);
    comm.barrier();
    comm.stats().reset();
    const double cpu0 = thread_cpu_seconds();
    if (comm.rank() == 0) wall.restart();

    {
      obs::Span region_span(obs::span_name::kBenchRegion);
      body(g, comm);
    }

    comm.barrier();
    RankMetrics& m = metrics[comm.rank()];
    m.cpu = thread_cpu_seconds() - cpu0;
    m.bytes_remote = comm.stats().bytes_remote;
    m.collectives = comm.stats().collective_calls;
    m.ghost_rounds_dense = comm.stats().ghost_rounds_dense;
    m.ghost_rounds_sparse = comm.stats().ghost_rounds_sparse;
    m.ghost_rounds_reduce = comm.stats().ghost_rounds_reduce;
    m.ghost_bytes_saved = comm.stats().ghost_bytes_saved;
    if (comm.rank() == 0) region_wall = wall.elapsed();
  });

  RegionReport rep;
  rep.wall = region_wall;
  MinMaxMean cpu;
  for (const RankMetrics& m : metrics) {
    cpu.add(m.cpu);
    rep.cpu_total += m.cpu;
    rep.bytes_remote_total += m.bytes_remote;
    rep.bytes_remote_max = std::max(rep.bytes_remote_max, m.bytes_remote);
  }
  rep.tpar = cpu.max();
  rep.cpu = {cpu.min(), cpu.mean(), cpu.max()};
  if (per_rank) *per_rank = std::move(metrics);
  return rep;
}

std::string BenchJson::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("schema", "hpcgraph-bench-v1");
  w.key("environment");
  w.begin_object();
  w.kv("host_threads",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.kv("pool_threads", static_cast<std::uint64_t>(default_pool_threads()));
  w.kv("ranks", env_ranks_);
  w.kv("build_type", HPCGRAPH_BUILD_TYPE);
  w.kv("git_sha", HPCGRAPH_GIT_SHA);
  w.end_object();
  w.kv("results_total", static_cast<std::uint64_t>(records_.size()));
  w.key("results");
  w.begin_array();
  for (const BenchRecord& r : records_) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("ranks", r.ranks);
    w.kv("threads", r.threads);
    w.kv("median_s", r.median_s);
    w.kv("stddev_s", r.stddev_s);
    for (const auto& [k, v] : r.extra) w.kv(k, v);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void BenchJson::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  HG_CHECK_MSG(f != nullptr, "cannot open bench output file " << path);
  const std::string body = to_json();
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && std::fclose(f) == 0;
  HG_CHECK_MSG(ok, "short write to bench output file " << path);
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  return std::sqrt(var / static_cast<double>(xs.size()));
}

void print_banner(const std::string& artifact, const std::string& workload) {
  std::cout << "==================================================================\n"
            << "hpcgraph reproduction — " << artifact << "\n"
            << "Workload: " << workload << "\n"
            << "Ranks are simulated as threads on this host; `Tpar` = max\n"
            << "per-rank CPU time (the parallel wall-time proxy), `wall` is\n"
            << "this host's timesliced wall time. See DESIGN.md / EXPERIMENTS.md.\n"
            << "==================================================================\n";
}

std::vector<int> parse_ranks(const Cli& cli, const std::string& flag,
                             std::vector<int> dflt) {
  if (!cli.has(flag)) return dflt;
  std::vector<int> out;
  std::stringstream ss(cli.get(flag, ""));
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(std::stoi(tok));
  return out.empty() ? dflt : out;
}

}  // namespace hpcgraph::bench
