// Regenerates **Figure 6** — the cumulative distribution of vertex coreness
// upper bounds from the approximate k-core analytic.
//
// Claims under test: "at least 75% of the vertices have coreness value less
// than 32"; only a tiny dense core survives the deepest thresholds (the
// paper: removing low-degree vertices leaves ~0.5% of the vertex count
// connected at the top).

#include <iostream>

#include "analytics/kcore.hpp"
#include "bench_common.hpp"
#include "gen/webgraph.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 16));
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));
  const unsigned max_i = static_cast<unsigned>(cli.get_int("max-i", 20));

  gen::WebGraphParams wp;
  wp.n = gvid_t{1} << scale;
  wp.avg_degree = 16;
  const gen::WebGraph wc = gen::webgraph(wp);

  hb::print_banner("Figure 6: vertex coreness upper-bound CDF",
                   "webgraph n=2^" + std::to_string(scale) +
                       ", thresholds 2^1..2^" + std::to_string(max_i));

  std::vector<analytics::KCoreStage> stages;
  hb::run_region(
      wc.graph, nranks, dgraph::PartitionKind::kVertexBlock,
      [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
        analytics::KCoreOptions o;
        o.max_i = max_i;
        const auto res = analytics::kcore_approx(g, comm, o);
        if (comm.rank() == 0) stages = res.stages;
      });

  const double n = static_cast<double>(wc.graph.n);
  TablePrinter table({"Coreness bound <=", "Removed @ stage", "Cum. fraction",
                      "Alive after", "Largest CC"});
  std::uint64_t cum = 0;
  for (const auto& s : stages) {
    cum += s.removed;
    table.add_row({TablePrinter::fmt_int(static_cast<long long>(s.threshold)),
                   TablePrinter::fmt_int(static_cast<long long>(s.removed)),
                   TablePrinter::fmt(static_cast<double>(cum) / n, 4),
                   TablePrinter::fmt_int(static_cast<long long>(s.alive_after)),
                   TablePrinter::fmt_int(static_cast<long long>(s.largest_cc))});
  }
  table.print(std::cout);

  // The paper's two headline observations, checked directly.
  double frac_below_32 = 0;
  for (const auto& s : stages)
    if (s.threshold <= 32)
      frac_below_32 = std::max(
          frac_below_32,
          static_cast<double>(wc.graph.n - s.alive_after) / n);
  std::cout << "\nFraction of vertices with coreness bound < 32: "
            << TablePrinter::fmt(frac_below_32, 3) << "\n";
  std::cout
      << "\nPaper reference: at least 75% of WC vertices have coreness\n"
         "< 32; at the deepest threshold only ~0.5% of the vertices remain\n"
         "connected.  Expected shape here: CDF rising steeply over the\n"
         "first few thresholds, with a small dense core surviving longest.\n";
  return 0;
}
