// Regenerates **Table III** — "Parallel performance of graph construction
// stages": Read / Exchange / LConv times, aggregate processing rate, and
// speedup, as the task count grows.
//
// Paper setup: the 1 TB WC edge file on Blue Waters' Lustre, 64..1024 nodes.
// Reproduction: the synthetic web crawl written to a local binary file
// (--scale, default 2^18 vertices), ranks 1..16.  Rates are far below the
// paper's (one SSD vs 960 GB/s Lustre); the claims under test are the stage
// structure, strong scaling of Exchange+LConv (Tpar column), and the rate
// formula (2m edges processed end-to-end).

#include <filesystem>
#include <iostream>

#include "bench_common.hpp"
#include "dgraph/snapshot.hpp"
#include "gen/webgraph.hpp"
#include "io/binary_edge_io.hpp"
#include "util/timer.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 18));
  const double avg_degree = cli.get_double("avg-degree", 16);
  const std::vector<int> ranks = hb::parse_ranks(cli, "ranks", {1, 2, 4, 8, 16});
  const std::uint64_t seed = cli.get_int("seed", 1);

  gen::WebGraphParams wp;
  wp.n = gvid_t{1} << scale;
  wp.avg_degree = avg_degree;
  wp.seed = seed;
  const gen::WebGraph wg = gen::webgraph(wp);

  hb::print_banner("Table III: graph construction stages",
                   "webgraph n=2^" + std::to_string(scale) + ", m=" +
                       TablePrinter::fmt_si(static_cast<double>(wg.graph.m())));

  const auto dir = std::filesystem::temp_directory_path() / "hpcgraph_bench";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "table3_wc.bin").string();
  io::write_edge_file(path, wg.graph);

  TablePrinter table({"#Ranks", "Read(s)", "Excg(s)", "LConv(s)", "Total(s)",
                      "Tpar(s)", "Rate(GE/s)", "Speedup", "Reload(s)"});
  double base_total = 0;

  for (const int p : ranks) {
    parcomm::CommWorld world(p);
    std::vector<dgraph::BuildTiming> timing(p);
    std::vector<double> cpu(p);
    std::vector<double> reload(p);
    const std::string snap = (dir / "table3_snap").string();
    world.run([&](parcomm::Communicator& comm) {
      const double cpu0 = thread_cpu_seconds();
      const dgraph::DistGraph g = dgraph::Builder::from_file(
          comm, path, io::EdgeFormat::kU32,
          dgraph::PartitionKind::kVertexBlock, wg.graph.n,
          &timing[comm.rank()]);
      cpu[comm.rank()] = thread_cpu_seconds() - cpu0;
      // Snapshot reuse: reloading skips the whole pipeline.
      dgraph::save_snapshot(g, comm, snap);
      Timer t;
      const dgraph::DistGraph again = dgraph::load_snapshot(comm, snap);
      (void)again;
      comm.barrier();
      reload[comm.rank()] = t.elapsed();
    });

    // The paper reports per-stage maxima across tasks.
    double read = 0, excg = 0, lconv = 0, tpar = 0, reload_max = 0;
    for (int r = 0; r < p; ++r) {
      read = std::max(read, timing[r].read);
      excg = std::max(excg, timing[r].exchange);
      lconv = std::max(lconv, timing[r].lconv);
      tpar = std::max(tpar, cpu[r]);
      reload_max = std::max(reload_max, reload[r]);
    }
    const double total = read + excg + lconv;
    if (base_total == 0) base_total = tpar;  // speedup on the compute proxy
    // 2m edge instances processed (in- and out-edge exchanges), as in the
    // paper's GE/s definition.
    const double rate =
        2.0 * static_cast<double>(wg.graph.m()) / total / 1e9;
    table.add_row({TablePrinter::fmt_int(p), TablePrinter::fmt(read, 3),
                   TablePrinter::fmt(excg, 3), TablePrinter::fmt(lconv, 3),
                   TablePrinter::fmt(total, 3), TablePrinter::fmt(tpar, 3),
                   TablePrinter::fmt(rate, 3),
                   TablePrinter::fmt(base_total / tpar, 2),
                   TablePrinter::fmt(reload_max, 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nPaper reference (WC, 3.56B vertices / 128.7B edges on Blue\n"
         "Waters): read time under a minute at every node count, faster\n"
         "reads with more tasks, and \"a degree of strong scaling\" for\n"
         "Exch+LConv with increasing task count.\n"
         "Expected shape here: Read roughly flat (one local disk), and\n"
         "Exchange+LConv strong-scaling visible in the Tpar column.\n";

  std::filesystem::remove_all(dir);
  return 0;
}
