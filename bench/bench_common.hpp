#pragma once
/// \file bench_common.hpp
/// Shared machinery for the table/figure harnesses.
///
/// Every bench binary regenerates one table or figure of the paper at a
/// reproduction scale chosen to finish in seconds on a laptop; flags
/// (--scale, --ranks, --iters, ...) widen the sweep toward paper scale.
///
/// **Timing on a single-core simulation host.**  Ranks are threads, so a
/// 16-rank run's wall time is roughly the *sum* of per-rank work, not the
/// max.  Each harness therefore reports, alongside wall time:
///
///   * `Tpar` — the maximum per-rank thread-CPU time: the wall time a
///     machine with one core per rank would see for the compute portion;
///   * measured communication volume (bytes crossing rank boundaries),
///     convertible to transfer time under a reference bandwidth
///     (`--gbps`, default 4 GB/s per the Gemini-era interconnects);
///   * the machine-independent balance counters (per-rank edges, ghosts).
///
/// Scaling *shapes* (who wins, where curves bend) come from Tpar + model;
/// wall time is printed for completeness.

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dgraph/builder.hpp"
#include "gen/edge_list.hpp"
#include "parcomm/comm.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hpcgraph::bench {

/// Per-rank measurements of one timed region.
struct RankMetrics {
  double cpu = 0;            ///< thread-CPU seconds in the region
  double wall = 0;           ///< wall seconds (same for all ranks, roughly)
  std::uint64_t bytes_remote = 0;  ///< payload bytes sent to other ranks
  std::uint64_t collectives = 0;
  std::uint64_t ghost_rounds_dense = 0;   ///< ghost exchanges on dense wire
  std::uint64_t ghost_rounds_sparse = 0;  ///< ghost exchanges on sparse wire
  std::uint64_t ghost_rounds_reduce = 0;  ///< reverse (ghost->owner) rounds
  std::int64_t ghost_bytes_saved = 0;     ///< dense-equivalent minus actual
};

/// Aggregate view of a distributed region.
struct RegionReport {
  double wall = 0;           ///< wall time of the whole region
  double tpar = 0;           ///< max per-rank CPU time ("parallel time")
  double cpu_total = 0;      ///< sum of per-rank CPU times
  Summary cpu;               ///< min/mean/max per-rank CPU
  std::uint64_t bytes_remote_total = 0;
  std::uint64_t bytes_remote_max = 0;

  /// Modelled parallel time: Tpar + max-rank transfer time at `gbps`.
  double modelled(double gbps) const {
    return tpar + static_cast<double>(bytes_remote_max) / (gbps * 1e9);
  }
};

/// Run `body(graph, comm)` on a fresh world over `el` and measure the body
/// as one region (construction excluded).  `body` runs on every rank.
RegionReport run_region(
    const gen::EdgeList& el, int nranks, dgraph::PartitionKind kind,
    const std::function<void(const dgraph::DistGraph&,
                             parcomm::Communicator&)>& body,
    std::uint64_t part_seed = 0,
    std::vector<RankMetrics>* per_rank = nullptr);

/// One machine-readable benchmark sample for `--json <path>` output: the
/// configuration, the primary metric's median/stddev across repetitions,
/// and any number of named secondary metrics.
struct BenchRecord {
  std::string name;     ///< measurement id, e.g. "H.pagerank.dense"
  int ranks = 0;        ///< simulated rank count
  int threads = 1;      ///< intra-rank worker threads
  double median_s = 0;  ///< median of the repetitions' primary metric
  double stddev_s = 0;  ///< population stddev across the repetitions
  std::vector<std::pair<std::string, double>> extra;  ///< metric -> value
};

/// Collects BenchRecords and writes them as one JSON document
/// (schema "hpcgraph-bench-v1") — the machine-readable counterpart to the
/// harnesses' printed tables, for CI smoke checks and committed baselines.
/// The document carries an `environment` block (host/pool threads, rank
/// count, build type, git sha) so a committed baseline records what machine
/// and build produced it.
class BenchJson {
 public:
  void add(BenchRecord r) { records_.push_back(std::move(r)); }
  bool empty() const { return records_.empty(); }
  /// Simulated rank count recorded in the environment block (0 = unset;
  /// harnesses sweeping several counts record the largest).
  void set_ranks(int nranks) { env_ranks_ = std::max(env_ranks_, nranks); }
  std::string to_json() const;
  void write(const std::string& path) const;

 private:
  std::vector<BenchRecord> records_;
  int env_ranks_ = 0;
};

/// Median of a sample set (0 if empty; argument by value, it is sorted).
double median_of(std::vector<double> xs);

/// Population standard deviation of a sample set (0 if fewer than 2).
double stddev_of(std::span<const double> xs);

/// Standard bench banner: what paper artifact this regenerates plus the
/// machine caveat.
void print_banner(const std::string& artifact, const std::string& workload);

/// Parse a comma-separated rank list flag ("1,2,4,8,16").
std::vector<int> parse_ranks(const Cli& cli, const std::string& flag,
                             std::vector<int> dflt);

}  // namespace hpcgraph::bench
