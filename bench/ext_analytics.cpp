// Extended-analytics harness — the §VII "extend this collection of
// analytics" deliverables measured in the Table-IV format: SSSP, triangle
// counting, betweenness (k sources), full SCC decomposition, exact k-core,
// and the Graph500-style BFS tree, across the three partitionings.

#include <iostream>

#include "analytics/analytics.hpp"
#include "bench_common.hpp"
#include "gen/webgraph.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 15));
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));
  const std::size_t bc_sources =
      static_cast<std::size_t>(cli.get_int("bc-sources", 4));

  gen::WebGraphParams wp;
  wp.n = gvid_t{1} << scale;
  wp.avg_degree = 16;
  const gen::WebGraph wc = gen::webgraph(wp);

  hb::print_banner("Extended analytics (paper §VII: \"extend this "
                   "collection\")",
                   "webgraph n=2^" + std::to_string(scale) + ", " +
                       std::to_string(nranks) + " ranks");

  struct Row {
    std::string name;
    std::function<void(const dgraph::DistGraph&, parcomm::Communicator&)> body;
  };
  const gvid_t root = wc.core.begin;
  const std::vector<Row> rows = {
      {"BFS tree (Graph500-style)",
       [root](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
         (void)analytics::bfs_tree(g, comm, root);
       }},
      {"SSSP (Bellman-Ford)",
       [root](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
         (void)analytics::sssp(g, comm, root);
       }},
      {"Triangle count",
       [](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
         (void)analytics::triangle_count(g, comm);
       }},
      {"Betweenness (" + std::to_string(bc_sources) + " src)",
       [bc_sources](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
         analytics::BetweennessOptions o;
         o.num_sources = bc_sources;
         (void)analytics::betweenness(g, comm, o);
       }},
      {"SCC decomposition (Multistep)",
       [](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
         (void)analytics::scc_decompose(g, comm);
       }},
      {"k-core exact",
       [](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
         (void)analytics::kcore_exact(g, comm);
       }},
  };

  TablePrinter table({"Analytic", "np Tpar(s)", "mp Tpar(s)", "rand Tpar(s)",
                      "rand imbal"});
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    double imbal = 0;
    for (const auto kind : {dgraph::PartitionKind::kVertexBlock,
                            dgraph::PartitionKind::kEdgeBlock,
                            dgraph::PartitionKind::kRandom}) {
      const hb::RegionReport rep =
          hb::run_region(wc.graph, nranks, kind, row.body);
      cells.push_back(TablePrinter::fmt(rep.tpar, 3));
      if (kind == dgraph::PartitionKind::kRandom)
        imbal = rep.cpu.imbalance();
    }
    cells.push_back(TablePrinter::fmt(imbal, 2));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  // Structural summary from one run, for the record.
  hb::run_region(
      wc.graph, nranks, dgraph::PartitionKind::kVertexBlock,
      [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
        const auto tri = analytics::triangle_count(g, comm);
        const auto scc = analytics::scc_decompose(g, comm);
        const auto core = analytics::kcore_exact(g, comm);
        if (comm.rank() == 0)
          std::cout << "\nStructure: " << tri.triangles << " triangles, "
                    << scc.num_sccs << " SCCs (largest " << scc.largest_size
                    << "), degeneracy " << core.max_core << "\n";
      });

  std::cout << "\nThese analytics are extensions beyond the paper's six; "
               "no paper reference\nexists. Expected: every analytic "
               "completes under all partitionings with\nmoderate imbalance; "
               "SCC decomposition's largest component equals the\nplanted "
               "core size.\n";
  return 0;
}
