// Ablation harness for the design decisions DESIGN.md §4 calls out — each
// optimization the paper describes (or points at as future work) measured
// against its naive alternative on the same workload:
//
//   A. retained vs rebuilt send queues (§III-D1) on PageRank and LP;
//   B. partitioning quality: np / mp / rand / PuLP (§III-B + §VII) — edge
//      cut, ghost count, and PageRank time;
//   C. compressed vs plain CSR (§VII): bytes per edge and traversal speed;
//   D. top-down vs direction-optimizing BFS (the omitted BFS-specific
//      optimization): parallel time and communication volume.
//   E. delta ghost exchange: dense vs sparse vs adaptive wire format on the
//      convergent analytics (LP, WCC), with bytes-on-wire and a result
//      checksum proving the formats are interchangeable.
//   F. bit-parallel multi-source BFS: harmonic top-64 batched into one
//      64-root MS-BFS sweep vs the paper's one-BFS-per-candidate loop —
//      wall/Tpar, communication rounds, and bytes on the wire.
//   G. superstep-engine overhead: PageRank through the SuperstepEngine
//      (trace off / trace on) vs the pre-engine hand-rolled BSP loop,
//      frozen here verbatim since the bespoke loops were deleted from
//      src/analytics.  Pass --trace-json FILE to dump the traced run.
//   H. overlapped ghost exchange: the blocking superstep schedule vs the
//      interior/boundary split with the split-phase exchange in flight
//      during the interior sweep, across rank counts and wire formats,
//      with a checksum proving the schedules produce identical results.
//   I. intra-rank sweep schedule (DESIGN.md §10): static vs dynamic vs
//      edge-balanced PageRank sweeps at 1/2/4/8 pool threads on a skewed
//      R-MAT, with per-thread busy time and max/mean edges-per-thread
//      imbalance from the scheduler telemetry, a bit-pattern checksum
//      proving all schedules produce identical scores, and a hub-split
//      micro-demo of the ChunkGrid::edges splitter.
//   J. frontier representation (DESIGN.md §11): forced queue vs bitmap vs
//      hybrid DistFrontier modes on SSSP and direction-optimizing BFS over
//      the web crawl and R-MAT, with per-mode round telemetry (bitmap/pull
//      rounds, crossovers) and a checksum proving the representations
//      compute identical results.
//
// `--sections LETTERS` restricts the run (e.g. --sections EH); `--json FILE`
// writes section H, I and J measurements as machine-readable
// hpcgraph-bench-v1.

#include <atomic>
#include <bit>
#include <cctype>
#include <cmath>
#include <iostream>
#include <memory>

#include "analytics/analytics.hpp"
#include "bench_common.hpp"
#include "dgraph/compressed_csr.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "dgraph/pulp_partition.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "obs/tracer.hpp"
#include "gen/webgraph.hpp"
#include "util/parallel_for.hpp"
#include "util/timer.hpp"

namespace hb = hpcgraph::bench;
using namespace hpcgraph;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const unsigned scale = static_cast<unsigned>(cli.get_int("scale", 16));
  const int nranks = static_cast<int>(cli.get_int("ranks", 8));
  std::string sections = cli.get("sections", "ABCDEFGHIJK");
  for (char& c : sections) c = static_cast<char>(std::toupper(c));
  const auto want = [&](char s) {
    return sections.find(s) != std::string::npos;
  };
  const std::string json_path = cli.get("json", "");
  hb::BenchJson bench_json;

  gen::WebGraphParams wp;
  wp.n = gvid_t{1} << scale;
  wp.avg_degree = 16;
  const gen::WebGraph wc = gen::webgraph(wp);

  hb::print_banner("Ablations: the paper's optimizations vs naive variants",
                   "webgraph n=2^" + std::to_string(scale) + ", " +
                       std::to_string(nranks) + " ranks");

  // ---- A. Retained vs rebuilt queues. ----
  if (want('A')) {
    TablePrinter t({"Analytic", "Retained Tpar(s)", "Rebuilt Tpar(s)",
                    "Speedup"});
    const auto pr_run = [&](bool retain) {
      return hb::run_region(
                 wc.graph, nranks, dgraph::PartitionKind::kRandom,
                 [retain](const dgraph::DistGraph& g,
                          parcomm::Communicator& comm) {
                   analytics::PageRankOptions o;
                   o.max_iterations = 10;
                   o.retain_queues = retain;
                   (void)analytics::pagerank(g, comm, o);
                 })
          .tpar;
    };
    const auto lp_run = [&](bool retain) {
      return hb::run_region(
                 wc.graph, nranks, dgraph::PartitionKind::kRandom,
                 [retain](const dgraph::DistGraph& g,
                          parcomm::Communicator& comm) {
                   analytics::LabelPropOptions o;
                   o.iterations = 10;
                   o.retain_queues = retain;
                   (void)analytics::label_propagation(g, comm, o);
                 })
          .tpar;
    };
    const double pr_keep = pr_run(true), pr_rebuild = pr_run(false);
    const double lp_keep = lp_run(true), lp_rebuild = lp_run(false);
    t.add_row({"PageRank x10", TablePrinter::fmt(pr_keep, 3),
               TablePrinter::fmt(pr_rebuild, 3),
               TablePrinter::fmt(pr_rebuild / pr_keep, 2)});
    t.add_row({"LabelProp x10", TablePrinter::fmt(lp_keep, 3),
               TablePrinter::fmt(lp_rebuild, 3),
               TablePrinter::fmt(lp_rebuild / lp_keep, 2)});
    std::cout << "\nA. Retained send queues (paper §III-D1):\n";
    t.print(std::cout);
  }

  // ---- B. Partition quality. ----
  if (want('B')) {
    TablePrinter t({"Partition", "Edge cut", "Cut %", "Ghosts total",
                    "PR Tpar(s)", "CPU imbal"});
    const auto owner = std::make_shared<std::vector<std::int32_t>>(
        dgraph::pulp_partition(wc.graph, nranks));
    const dgraph::Partition pulp =
        dgraph::Partition::explicit_map(wc.graph.n, nranks, owner);

    struct Entry {
      std::string label;
      std::function<int(gvid_t)> owner_of;
      bool is_pulp;
    };
    const dgraph::Partition np =
        dgraph::Partition::vertex_block(wc.graph.n, nranks);
    const dgraph::Partition rnd =
        dgraph::Partition::random(wc.graph.n, nranks);

    const auto measure = [&](const std::string& label,
                             dgraph::PartitionKind kind,
                             const dgraph::Partition* explicit_part) {
      // Edge cut from the raw list.
      std::uint64_t cut = 0;
      const auto owner_fn = [&](gvid_t v) {
        return explicit_part ? explicit_part->owner(v)
                             : (kind == dgraph::PartitionKind::kVertexBlock
                                    ? np.owner(v)
                                    : rnd.owner(v));
      };
      for (const gen::Edge& e : wc.graph.edges)
        if (owner_fn(e.src) != owner_fn(e.dst)) ++cut;

      // Ghosts + PageRank timing on the built graph.
      std::vector<std::uint64_t> ghosts(nranks, 0);
      const auto body = [&](const dgraph::DistGraph& g,
                            parcomm::Communicator& comm) {
        ghosts[comm.rank()] = g.n_gst();
        analytics::PageRankOptions o;
        o.max_iterations = 10;
        (void)analytics::pagerank(g, comm, o);
      };
      hb::RegionReport rep;
      if (explicit_part) {
        parcomm::CommWorld world(nranks);
        std::vector<double> cpu(nranks);
        world.run([&](parcomm::Communicator& comm) {
          const dgraph::DistGraph g =
              dgraph::Builder::from_edge_list(comm, wc.graph, *explicit_part);
          comm.barrier();
          const double c0 = thread_cpu_seconds();
          body(g, comm);
          comm.barrier();
          cpu[comm.rank()] = thread_cpu_seconds() - c0;
        });
        MinMaxMean m;
        for (const double c : cpu) m.add(c);
        rep.tpar = m.max();
        rep.cpu = {m.min(), m.mean(), m.max()};
      } else {
        rep = hb::run_region(wc.graph, nranks, kind, body);
      }
      std::uint64_t ghost_total = 0;
      for (const auto gh : ghosts) ghost_total += gh;
      t.add_row({label, TablePrinter::fmt_si(static_cast<double>(cut), 2),
                 TablePrinter::fmt(100.0 * static_cast<double>(cut) /
                                       static_cast<double>(wc.graph.m()),
                                   1),
                 TablePrinter::fmt_si(static_cast<double>(ghost_total), 2),
                 TablePrinter::fmt(rep.tpar, 3),
                 TablePrinter::fmt(rep.cpu.imbalance(), 2)});
    };

    measure("np", dgraph::PartitionKind::kVertexBlock, nullptr);
    measure("rand", dgraph::PartitionKind::kRandom, nullptr);
    measure("PuLP", dgraph::PartitionKind::kExplicit, &pulp);
    std::cout << "\nB. Partitioning quality (§III-B; PuLP = §VII future "
                 "work):\n";
    t.print(std::cout);
  }

  // ---- C. Compressed CSR. ----
  if (want('C')) {
    TablePrinter t({"Representation", "Bytes/edge", "Total MB",
                    "Scan time (s)"});
    parcomm::CommWorld world(1);
    world.run([&](parcomm::Communicator& comm) {
      const dgraph::DistGraph g = dgraph::Builder::from_edge_list(
          comm, wc.graph, dgraph::PartitionKind::kVertexBlock);
      const dgraph::CompressedAdjacency c =
          dgraph::CompressedAdjacency::encode(g.out_index(),
                                              g.out_edges_raw());

      // Full adjacency scan: sum of neighbour ids (plain vs compressed).
      volatile std::uint64_t sink = 0;
      Timer plain_t;
      std::uint64_t acc = 0;
      for (lvid_t v = 0; v < g.n_loc(); ++v)
        for (const lvid_t u : g.out_neighbors(v)) acc += u;
      sink = acc;
      const double plain_s = plain_t.elapsed();

      Timer comp_t;
      acc = 0;
      for (lvid_t v = 0; v < g.n_loc(); ++v)
        c.for_each_neighbor(v, [&](lvid_t u) { acc += u; });
      sink = acc;
      (void)sink;
      const double comp_s = comp_t.elapsed();

      const double m_edges = static_cast<double>(g.m_out());
      t.add_row({"plain CSR (4 B ids)",
                 TablePrinter::fmt(static_cast<double>(c.plain_bytes()) /
                                       m_edges, 2),
                 TablePrinter::fmt(static_cast<double>(c.plain_bytes()) / 1e6,
                                   1),
                 TablePrinter::fmt(plain_s, 4)});
      t.add_row({"varint-delta CSR",
                 TablePrinter::fmt(static_cast<double>(c.total_bytes()) /
                                       m_edges, 2),
                 TablePrinter::fmt(static_cast<double>(c.total_bytes()) / 1e6,
                                   1),
                 TablePrinter::fmt(comp_s, 4)});
    });
    std::cout << "\nC. Graph compression (§VII future work #1), out-CSR of "
                 "rank 0 of 1:\n";
    t.print(std::cout);
  }

  // ---- D. Direction-optimizing BFS. ----
  if (want('D')) {
    TablePrinter t({"Traversal", "Tpar(s)", "MB remote total", "Levels"});
    const gvid_t root = wc.core.begin;
    for (const bool dopt : {false, true}) {
      std::atomic<int> levels{0};
      const hb::RegionReport rep = hb::run_region(
          wc.graph, nranks, dgraph::PartitionKind::kVertexBlock,
          [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
            analytics::BfsOptions o;
            o.dir = analytics::Dir::kOut;
            o.direction_optimizing = dopt;
            const auto res = analytics::bfs(g, comm, root, o);
            if (comm.rank() == 0) levels = res.num_levels;
          });
      t.add_row({dopt ? "direction-optimizing" : "top-down (paper)",
                 TablePrinter::fmt(rep.tpar, 4),
                 TablePrinter::fmt(
                     static_cast<double>(rep.bytes_remote_total) / 1e6, 2),
                 TablePrinter::fmt_int(levels.load())});
    }
    std::cout << "\nD. BFS schedule (the paper omits BFS-specific "
                 "optimizations; this is the one it cites):\n";
    t.print(std::cout);
  }

  // ---- E. Delta ghost exchange: dense vs sparse vs adaptive. ----
  if (want('E')) {
    gen::RmatParams rp;
    rp.scale = scale >= 2 ? scale - 2 : scale;  // convergence takes many
    rp.avg_degree = 8;                          // rounds; keep E quick
    const gen::EdgeList rmat = gen::rmat(rp);
    gen::ErParams ep;
    ep.n = gvid_t{1} << (scale >= 2 ? scale - 2 : scale);
    ep.m = static_cast<std::uint64_t>(ep.n) * 8;
    const gen::EdgeList er = gen::erdos_renyi(ep);

    TablePrinter t({"Workload", "Mode", "Tpar(s)", "MB remote", "Rounds D/S",
                    "MB saved", "Checksum"});
    const auto run_one = [&](const std::string& label,
                             const gen::EdgeList& el, bool lp,
                             dgraph::GhostMode mode) {
      std::atomic<std::uint64_t> checksum{0};
      std::vector<hb::RankMetrics> per_rank;
      const hb::RegionReport rep = hb::run_region(
          el, nranks, dgraph::PartitionKind::kRandom,
          [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
            std::uint64_t local = 0;
            if (lp) {
              analytics::LabelPropOptions o;
              o.iterations = 10;
              o.common.ghost_mode = mode;
              const auto res = analytics::label_propagation(g, comm, o);
              for (const auto lab : res.labels) local += lab;
            } else {
              analytics::WccOptions o;
              o.common.ghost_mode = mode;
              const auto res = analytics::wcc(g, comm, o);
              for (const auto c : res.comp) local += c;
            }
            const std::uint64_t sum = comm.allreduce_sum(local);
            if (comm.rank() == 0) checksum = sum;
          },
          0, &per_rank);
      // The sparse/dense decision is global, so per-rank round counts agree;
      // bytes saved accumulate across ranks.
      std::uint64_t rd = 0, rs = 0;
      std::int64_t saved = 0;
      for (const auto& m : per_rank) {
        rd = std::max(rd, m.ghost_rounds_dense);
        rs = std::max(rs, m.ghost_rounds_sparse);
        saved += m.ghost_bytes_saved;
      }
      t.add_row({label, dgraph::ghost_mode_label(mode),
                 TablePrinter::fmt(rep.tpar, 3),
                 TablePrinter::fmt(
                     static_cast<double>(rep.bytes_remote_total) / 1e6, 2),
                 TablePrinter::fmt_int(static_cast<long long>(rd)) + "/" +
                     TablePrinter::fmt_int(static_cast<long long>(rs)),
                 TablePrinter::fmt(static_cast<double>(saved) / 1e6, 2),
                 std::to_string(checksum.load())});
    };

    for (const auto mode :
         {dgraph::GhostMode::kDense, dgraph::GhostMode::kSparse,
          dgraph::GhostMode::kAdaptive}) {
      run_one("LP x10, RMAT", rmat, true, mode);
      run_one("WCC, RMAT", rmat, false, mode);
      run_one("WCC, Rand-ER", er, false, mode);
    }
    std::cout << "\nE. Delta ghost exchange (change-tracked sparse wire "
                 "format):\n";
    t.print(std::cout);
  }

  // ---- F. Batched (MS-BFS) vs per-source harmonic top-k. ----
  if (want('F')) {
    TablePrinter t({"Engine", "Tpar(s)", "Wall(s)", "Comm rounds",
                    "GX fwd/rev", "MB remote", "Top-1 HC"});
    for (const bool batched : {false, true}) {
      std::atomic<double> top_score{0.0};
      std::vector<hb::RankMetrics> per_rank;
      const hb::RegionReport rep = hb::run_region(
          wc.graph, nranks, dgraph::PartitionKind::kRandom,
          [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
            analytics::HarmonicOptions o;
            o.batched = batched;
            const auto scored = analytics::harmonic_top_k(g, comm, 64, o);
            if (comm.rank() == 0 && !scored.empty())
              top_score = scored.front().score;
          },
          0, &per_rank);
      // Collectives are lockstep, so every rank counts the same rounds.
      std::uint64_t rounds = 0, fwd = 0, rev = 0;
      for (const auto& m : per_rank) {
        rounds = std::max(rounds, m.collectives);
        fwd = std::max(fwd, m.ghost_rounds_dense + m.ghost_rounds_sparse);
        rev = std::max(rev, m.ghost_rounds_reduce);
      }
      t.add_row({batched ? "MS-BFS batch=64" : "per-source (paper)",
                 TablePrinter::fmt(rep.tpar, 3),
                 TablePrinter::fmt(rep.wall, 3),
                 TablePrinter::fmt_int(static_cast<long long>(rounds)),
                 TablePrinter::fmt_int(static_cast<long long>(fwd)) + "/" +
                     TablePrinter::fmt_int(static_cast<long long>(rev)),
                 TablePrinter::fmt(
                     static_cast<double>(rep.bytes_remote_total) / 1e6, 2),
                 TablePrinter::fmt(top_score.load(), 4)});
    }
    std::cout << "\nF. Multi-source BFS batching (harmonic top-64, one\n"
                 "64-root bit-parallel sweep vs 64 separate traversals):\n";
    t.print(std::cout);
  }

  // ---- G. Superstep-engine overhead vs hand-rolled BSP loop. ----
  if (want('G')) {
    const std::string trace_json = cli.get("trace-json", "");
    const int pr_iters = 10;

    // Frozen pre-engine PageRank: the exact bespoke loop the engine
    // replaced (same collective schedule, same FP order), kept here as the
    // ablation baseline.
    const auto handrolled = [&](const dgraph::DistGraph& g,
                                parcomm::Communicator& comm) {
      PoolFallback pf(nullptr);
      ThreadPool& tp = pf.get();
      const double n = static_cast<double>(g.n_global());
      dgraph::GhostExchange gx(g, comm, dgraph::Adjacency::kOut, nullptr);
      std::vector<double> rank(g.n_loc(), 1.0 / n);
      std::vector<double> next(g.n_loc());
      std::vector<double> contrib(g.n_total(), 0.0);
      constexpr double damping = 0.85;
      for (int it = 0; it < pr_iters; ++it) {
        double dangling_local = 0;
        for (lvid_t v = 0; v < g.n_loc(); ++v)
          if (g.out_degree(v) == 0) dangling_local += rank[v];
        const double dangling = comm.allreduce_sum(dangling_local);
        const double base = (1.0 - damping) / n + damping * dangling / n;
        tp.for_range(0, g.n_loc(), [&](unsigned, std::uint64_t lo,
                                       std::uint64_t hi) {
          for (std::uint64_t v = lo; v < hi; ++v) {
            const std::uint64_t d = g.out_degree(static_cast<lvid_t>(v));
            contrib[v] = d ? damping * rank[v] / static_cast<double>(d) : 0.0;
          }
        });
        gx.exchange<double>(contrib, comm);
        double delta_local = 0;
        tp.for_range(0, g.n_loc(), [&](unsigned, std::uint64_t lo,
                                       std::uint64_t hi) {
          double delta_chunk = 0;
          for (std::uint64_t v = lo; v < hi; ++v) {
            double sum = base;
            for (const lvid_t u : g.in_neighbors(static_cast<lvid_t>(v)))
              sum += contrib[u];
            next[v] = sum;
            delta_chunk += std::fabs(sum - rank[v]);
          }
          std::atomic_ref<double>(delta_local)
              .fetch_add(delta_chunk, std::memory_order_relaxed);
        });
        rank.swap(next);
        (void)comm.allreduce_sum(delta_local);
      }
    };

    engine::SuperstepTrace trace;
    const auto engine_run = [&](engine::SuperstepTrace* tr) {
      return [&, tr](const dgraph::DistGraph& g,
                     parcomm::Communicator& comm) {
        analytics::PageRankOptions o;
        o.max_iterations = pr_iters;
        o.common.trace = tr;
        (void)analytics::pagerank(g, comm, o);
      };
    };

    TablePrinter t({"Driver", "Tpar(s)", "Wall(s)"});
    const auto add = [&](const std::string& label, const auto& body) {
      const hb::RegionReport rep = hb::run_region(
          wc.graph, nranks, dgraph::PartitionKind::kRandom, body);
      t.add_row({label, TablePrinter::fmt(rep.tpar, 3),
                 TablePrinter::fmt(rep.wall, 3)});
    };
    add("hand-rolled loop (frozen)", handrolled);
    add("engine, trace off", engine_run(nullptr));
    add("engine, trace on", engine_run(&trace));
    std::cout << "\nG. Superstep-engine overhead (PageRank x" << pr_iters
              << "):\n";
    t.print(std::cout);
    if (!trace_json.empty()) {
      trace.write_json(trace_json);
      std::cout << "wrote " << trace_json << " (" << trace.size()
                << " supersteps)\n";
    }
  }

  // ---- H. Overlapped ghost exchange (blocking vs split-phase). ----
  if (want('H')) {
    gen::RmatParams rp;
    rp.scale = scale >= 2 ? scale - 2 : scale;  // LP runs many rounds;
    rp.avg_degree = 8;                          // keep H quick
    const gen::EdgeList rmat = gen::rmat(rp);

    const std::vector<int> hranks =
        hb::parse_ranks(cli, "overlap-ranks", {1, nranks});
    const int reps = static_cast<int>(cli.get_int("reps", 3));

    TablePrinter t({"Analytic", "Mode", "Ranks", "Schedule", "Tpar med(s)",
                    "stddev", "Exch(ms)", "Ovl(ms)", "Hidden", "Checksum"});
    const auto run_one = [&](const std::string& analytic, bool lp,
                             dgraph::GhostMode mode, int p, bool overlap) {
      std::vector<double> tpars;
      double wall = 0;
      std::uint64_t exch_us = 0, ovl_us = 0, checksum = 0;
      for (int rep = 0; rep < reps; ++rep) {
        engine::SuperstepTrace trace;
        std::atomic<std::uint64_t> sum{0};
        const hb::RegionReport r = hb::run_region(
            rmat, p, dgraph::PartitionKind::kRandom,
            [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
              std::uint64_t local = 0;
              if (lp) {
                analytics::LabelPropOptions o;
                o.iterations = 10;
                o.common.ghost_mode = mode;
                o.common.overlap = overlap;
                o.common.trace = &trace;
                const auto res = analytics::label_propagation(g, comm, o);
                for (const auto lab : res.labels) local += lab;
              } else {
                analytics::PageRankOptions o;
                o.max_iterations = 10;
                o.common.overlap = overlap;
                o.common.trace = &trace;
                const auto res = analytics::pagerank(g, comm, o);
                // Bit-pattern sum: overlap must be bit-identical, not just
                // close, so the checksum hashes the exact double bits.
                for (const double s : res.scores)
                  local += std::bit_cast<std::uint64_t>(s);
              }
              const std::uint64_t total = comm.allreduce_sum(local);
              if (comm.rank() == 0) sum = total;
            });
        tpars.push_back(r.tpar);
        wall = r.wall;
        checksum = sum.load();
        exch_us = ovl_us = 0;  // keep the last rep's per-superstep telemetry
        for (const engine::SuperstepRecord& sr : trace.records()) {
          exch_us += sr.exchange_us;
          ovl_us += sr.overlap_us;
        }
      }
      const double hidden =
          exch_us + ovl_us > 0
              ? static_cast<double>(ovl_us) /
                    static_cast<double>(exch_us + ovl_us)
              : 0.0;
      const double med = hb::median_of(tpars);
      const double sd = hb::stddev_of(tpars);
      t.add_row({analytic, dgraph::ghost_mode_label(mode),
                 TablePrinter::fmt_int(p), overlap ? "overlapped" : "blocking",
                 TablePrinter::fmt(med, 3), TablePrinter::fmt(sd, 3),
                 TablePrinter::fmt(static_cast<double>(exch_us) / 1e3, 2),
                 TablePrinter::fmt(static_cast<double>(ovl_us) / 1e3, 2),
                 TablePrinter::fmt(hidden, 2), std::to_string(checksum)});
      hb::BenchRecord br;
      br.name = std::string("H.") + (lp ? "label_prop" : "pagerank") + "." +
                dgraph::ghost_mode_label(mode) + "." +
                (overlap ? "overlapped" : "blocking");
      br.ranks = p;
      br.threads = 1;
      br.median_s = med;
      br.stddev_s = sd;
      br.extra = {{"wall_s", wall},
                  {"exchange_us", static_cast<double>(exch_us)},
                  {"overlap_us", static_cast<double>(ovl_us)},
                  {"comm_hidden", hidden},
                  {"checksum", static_cast<double>(checksum)}};
      bench_json.add(std::move(br));
    };

    for (const int p : hranks)
      for (const bool overlap : {false, true}) {
        run_one("PageRank x10", false, dgraph::GhostMode::kDense, p, overlap);
        run_one("LP x10", true, dgraph::GhostMode::kDense, p, overlap);
        run_one("LP x10", true, dgraph::GhostMode::kSparse, p, overlap);
        run_one("LP x10", true, dgraph::GhostMode::kAdaptive, p, overlap);
      }
    std::cout << "\nH. Overlapped ghost exchange (boundary sweep, exchange\n"
                 "in flight during the interior sweep; DESIGN.md §9):\n";
    t.print(std::cout);
  }

  // ---- I. Intra-rank sweep schedule: static vs dynamic vs edge-balanced.
  // ---- (DESIGN.md §10) ----
  if (want('I')) {
    // Degree-skewed workload: R-MAT hubs make equal-count static spans pay
    // wildly different edge costs; the edge-balanced grid equalizes them.
    // Ids stay unscrambled so vertex order correlates with degree (hubs at
    // low ids), the same order/degree correlation real crawl-ordered graphs
    // carry — scrambling would launder the hub mass evenly across the
    // static spans and hide exactly the skew this section measures.
    gen::RmatParams rp;
    rp.scale = scale;
    rp.avg_degree = 16;
    rp.scramble_ids = false;
    const gen::EdgeList rmat = gen::rmat(rp);
    const int reps = static_cast<int>(cli.get_int("reps", 3));
    const int iranks = static_cast<int>(cli.get_int("sched-ranks", 2));

    TablePrinter t({"Schedule", "Threads", "Tpar med(s)", "stddev",
                    "Edge imbal", "Meas imbal", "Checksum"});
    for (const Schedule sched :
         {Schedule::kStatic, Schedule::kDynamic, Schedule::kEdgeBalanced}) {
      for (const unsigned nt : {1u, 2u, 4u, 8u}) {
        std::vector<double> tpars;
        std::uint64_t checksum = 0;
        // Per-rank scheduler telemetry from the last rep (the grids don't
        // change between reps, so neither do the work_* columns), plus the
        // host-independent model of the PageRank gather grid — the loop
        // that dominates the sweep and carries the degree skew.
        std::vector<SweepStats> stats(static_cast<std::size_t>(iranks));
        std::vector<double> gimb(static_cast<std::size_t>(iranks), 1.0);
        for (int rep = 0; rep < reps; ++rep) {
          std::atomic<std::uint64_t> sum{0};
          const hb::RegionReport r = hb::run_region(
              rmat, iranks, dgraph::PartitionKind::kVertexBlock,
              [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
                ThreadPool pool(nt);
                analytics::PageRankOptions o;
                o.max_iterations = 10;
                o.common.pool = &pool;
                o.common.schedule = sched;
                const auto res = analytics::pagerank(g, comm, o);
                // Bit-pattern sum: the schedules must agree bit-for-bit,
                // not just to tolerance.
                std::uint64_t local = 0;
                for (const double s : res.scores)
                  local += std::bit_cast<std::uint64_t>(s);
                const std::uint64_t total = comm.allreduce_sum(local);
                if (comm.rank() == 0) sum = total;
                const std::size_t me =
                    static_cast<std::size_t>(comm.rank());
                stats[me] = pool.sweep_stats();
                gimb[me] = grid_imbalance(
                    make_grid(sched, g.n_loc(), g.in_index(), nt), sched,
                    nt);
              });
          tpars.push_back(r.tpar);
          checksum = sum.load();
        }
        // Edge imbal: max/mean edges-per-thread from the deterministic
        // chunk->thread model (see grid_imbalance) — host-independent.
        // Meas imbal: the pool's realized per-thread weight split, which
        // collapses to ~nthreads on machines with fewer cores than pool
        // threads (one core drains the shared chunk counter).
        double edge_imbal = 1.0, meas_imbal = 1.0;
        for (std::size_t rk = 0; rk < stats.size(); ++rk) {
          edge_imbal = std::max(edge_imbal, gimb[rk]);
          meas_imbal = std::max(meas_imbal, stats[rk].imbalance(nt));
        }
        const double med = hb::median_of(tpars);
        const double sd = hb::stddev_of(tpars);
        t.add_row({schedule_label(sched), TablePrinter::fmt_int(nt),
                   TablePrinter::fmt(med, 3), TablePrinter::fmt(sd, 3),
                   TablePrinter::fmt(edge_imbal, 2),
                   TablePrinter::fmt(meas_imbal, 2),
                   std::to_string(checksum)});
        hb::BenchRecord br;
        br.name = std::string("I.pagerank.") + schedule_label(sched);
        br.ranks = iranks;
        br.threads = static_cast<int>(nt);
        br.median_s = med;
        br.stddev_s = sd;
        br.extra = {{"edge_imbalance", edge_imbal},
                    {"measured_imbalance", meas_imbal},
                    {"checksum", static_cast<double>(checksum)}};
        bench_json.add(std::move(br));
      }
    }
    std::cout << "\nI. Intra-rank sweep schedule (PageRank x10 on R-MAT, "
              << iranks << " ranks):\n";
    t.print(std::cout);

    // Hub-split micro-demo: the same skewed degree prefix chunked with and
    // without hub splitting — splitting caps the heaviest chunk near the
    // grain even when one hub owns a large share of all edges.
    std::vector<std::uint64_t> prefix(rmat.n + 1, 0);
    for (const gen::Edge& e : rmat.edges) ++prefix[e.src + 1];
    for (std::size_t v = 1; v <= rmat.n; ++v) prefix[v] += prefix[v - 1];
    const ChunkGrid whole = ChunkGrid::edges(prefix);
    const ChunkGrid split = ChunkGrid::edges(prefix, 0, /*split_hubs=*/true);
    TablePrinter h({"Hub handling", "Chunks", "Max chunk edges",
                    "Max/grain"});
    const double grain = static_cast<double>(whole.weight_total()) /
                         static_cast<double>(ChunkGrid::kTargetChunks);
    for (const auto* g2 : {&whole, &split})
      h.add_row({g2 == &whole ? "whole hubs" : "split hubs",
                 TablePrinter::fmt_int(static_cast<long long>(g2->size())),
                 TablePrinter::fmt_int(
                     static_cast<long long>(g2->max_chunk_weight())),
                 TablePrinter::fmt(
                     static_cast<double>(g2->max_chunk_weight()) / grain,
                     2)});
    std::cout << "\nHub splitting (ChunkGrid::edges over the same R-MAT "
                 "out-degree prefix):\n";
    h.print(std::cout);
  }

  // ---- J. Frontier representation: queue vs bitmap vs hybrid. ----
  if (want('J')) {
    gen::RmatParams rp;
    rp.scale = scale >= 2 ? scale - 2 : scale;  // SSSP runs many rounds;
    rp.avg_degree = 8;                          // keep J quick
    const gen::EdgeList rmat = gen::rmat(rp);
    const int reps = static_cast<int>(cli.get_int("reps", 3));

    // R-MAT ids are scrambled, so pick the heaviest hub as the root —
    // vertex 0 may be isolated.
    std::vector<std::uint32_t> odeg(rmat.n, 0);
    for (const gen::Edge& e : rmat.edges) ++odeg[e.src];
    const gvid_t rmat_root = static_cast<gvid_t>(
        std::max_element(odeg.begin(), odeg.end()) - odeg.begin());

    struct JWorkload {
      std::string label;
      const gen::EdgeList* graph;
      gvid_t root;
    };
    const std::vector<JWorkload> jwork = {
        {"WC", &wc.graph, wc.core.begin},
        {"RMAT", &rmat, rmat_root},
    };

    TablePrinter t({"Analytic", "Graph", "Mode", "Tpar med(s)", "stddev",
                    "Rounds", "Bitmap/Pull/Xover", "Checksum"});
    const auto run_one = [&](const JWorkload& w, bool is_sssp,
                             engine::FrontierMode mode) {
      std::vector<double> tpars;
      std::uint64_t checksum = 0, rounds = 0;
      std::uint64_t bitmap_rounds = 0, pull_rounds = 0, crossovers = 0;
      for (int rep = 0; rep < reps; ++rep) {
        engine::SuperstepTrace trace;
        std::atomic<std::uint64_t> sum{0};
        const hb::RegionReport r = hb::run_region(
            *w.graph, nranks, dgraph::PartitionKind::kVertexBlock,
            [&](const dgraph::DistGraph& g, parcomm::Communicator& comm) {
              std::uint64_t local = 0;
              if (is_sssp) {
                analytics::SsspOptions o;
                o.common.frontier = mode;
                o.common.trace = &trace;
                const auto res = analytics::sssp(g, comm, w.root, o);
                // The distances are exact min-plus integers: every mode
                // must produce the identical array.
                for (const std::uint64_t d : res.dist)
                  local += d == analytics::kInfDistance ? 1 : d;
              } else {
                analytics::BfsOptions o;
                o.direction_optimizing = true;
                o.common.frontier = mode;
                o.common.trace = &trace;
                const auto res = analytics::bfs(g, comm, w.root, o);
                for (const std::int64_t lv : res.level)
                  local += lv < 0 ? 1 : static_cast<std::uint64_t>(lv);
              }
              const std::uint64_t total = comm.allreduce_sum(local);
              if (comm.rank() == 0) sum = total;
            });
        tpars.push_back(r.tpar);
        checksum = sum.load();
        rounds = bitmap_rounds = pull_rounds = crossovers = 0;
        for (const engine::SuperstepRecord& sr : trace.records()) {
          ++rounds;
          if (sr.frontier_rep == "bitmap") ++bitmap_rounds;
          if (sr.frontier_dir == "pull") ++pull_rounds;
          if (sr.crossover) ++crossovers;
        }
      }
      const double med = hb::median_of(tpars);
      const double sd = hb::stddev_of(tpars);
      const char* analytic = is_sssp ? "SSSP" : "BFS diropt";
      t.add_row({analytic, w.label, engine::frontier_mode_label(mode),
                 TablePrinter::fmt(med, 3), TablePrinter::fmt(sd, 3),
                 TablePrinter::fmt_int(static_cast<long long>(rounds)),
                 TablePrinter::fmt_int(static_cast<long long>(bitmap_rounds)) +
                     "/" +
                     TablePrinter::fmt_int(
                         static_cast<long long>(pull_rounds)) +
                     "/" +
                     TablePrinter::fmt_int(static_cast<long long>(crossovers)),
                 std::to_string(checksum)});
      hb::BenchRecord br;
      br.name = std::string("J.") + (is_sssp ? "sssp" : "bfs_diropt") + "." +
                w.label + "." + engine::frontier_mode_label(mode);
      br.ranks = nranks;
      br.threads = 1;
      br.median_s = med;
      br.stddev_s = sd;
      br.extra = {{"rounds", static_cast<double>(rounds)},
                  {"bitmap_rounds", static_cast<double>(bitmap_rounds)},
                  {"pull_rounds", static_cast<double>(pull_rounds)},
                  {"crossovers", static_cast<double>(crossovers)},
                  {"checksum", static_cast<double>(checksum)}};
      bench_json.add(std::move(br));
    };

    for (const JWorkload& w : jwork)
      for (const bool is_sssp : {true, false})
        for (const engine::FrontierMode mode :
             {engine::FrontierMode::kQueue, engine::FrontierMode::kBitmap,
              engine::FrontierMode::kHybrid})
          run_one(w, is_sssp, mode);
    std::cout << "\nJ. Frontier representation (DistFrontier queue vs bitmap\n"
                 "vs hybrid; DESIGN.md §11):\n";
    t.print(std::cout);
  }

  // ---- K. Tracing overhead (EXPERIMENTS.md §K). ----
  // The obs layer is always compiled and runtime-gated: with no tracer
  // installed every Span is a thread-local load, a branch, and two clock
  // reads.  Measure the same PageRank region with tracing off (no tracer
  // installed) and on (tracer installed, every rank + pool thread recording
  // into its lane) — the off/on gap should be within run-to-run noise.
  if (want('K')) {
    const int reps = static_cast<int>(cli.get_int("reps", 3));
    const auto pr_body = [](const dgraph::DistGraph& g,
                            parcomm::Communicator& comm) {
      analytics::PageRankOptions o;
      o.max_iterations = 10;
      o.common.overlap = true;
      (void)analytics::pagerank(g, comm, o);
    };
    const auto measure = [&](bool traced) {
      std::vector<double> tpars;
      for (int rep = 0; rep < reps; ++rep) {
        std::unique_ptr<obs::Tracer> tracer;
        if (traced) {
          tracer = std::make_unique<obs::Tracer>();
          tracer->install();  // before run_region spawns rank threads
        }
        tpars.push_back(hb::run_region(wc.graph, nranks,
                                       dgraph::PartitionKind::kRandom, pr_body)
                            .tpar);
      }
      return tpars;
    };
    const std::vector<double> off = measure(false);
    const std::vector<double> on = measure(true);
    const double off_med = hb::median_of(off), on_med = hb::median_of(on);
    const double overhead =
        off_med > 0 ? 100.0 * (on_med - off_med) / off_med : 0.0;

    TablePrinter t({"Tracing", "Tpar med(s)", "stddev", "Overhead"});
    t.add_row({"off", TablePrinter::fmt(off_med, 3),
               TablePrinter::fmt(hb::stddev_of(off), 3), "-"});
    t.add_row({"on", TablePrinter::fmt(on_med, 3),
               TablePrinter::fmt(hb::stddev_of(on), 3),
               TablePrinter::fmt(overhead, 1) + "%"});
    std::cout << "\nK. Runtime tracing overhead (PageRank, overlap, "
              << nranks << " ranks; obs spans + counters, DESIGN.md §13):\n";
    t.print(std::cout);

    hb::BenchRecord br;
    br.name = "K.pagerank.tracing_overhead";
    br.ranks = nranks;
    br.threads = 1;
    br.median_s = on_med;
    br.stddev_s = hb::stddev_of(on);
    br.extra = {{"baseline_median_s", off_med},
                {"baseline_stddev_s", hb::stddev_of(off)},
                {"overhead_pct", overhead}};
    bench_json.add(std::move(br));
  }

  bench_json.set_ranks(nranks);
  if (!json_path.empty()) {
    bench_json.write(json_path);
    std::cout << "\nwrote " << json_path << "\n";
  }

  std::cout
      << "\nExpected: retained queues beat rebuilt ones (A); PuLP cuts far\n"
         "fewer edges than random hashing, approaching the natural-order\n"
         "block cut (the crawl-order locality the paper credits) (B);\n"
         "compression roughly halves bytes/edge at a modest scan cost (C).\n"
         "(D) is a negative result at this scale: bottom-up levels ship a\n"
         "flag for every boundary vertex, which only pays off once frontier\n"
         "discovery messages dominate — consistent with the paper's choice\n"
         "to omit BFS-specific optimizations from its general framework.\n"
         "(E) checksums must match within each workload across all three\n"
         "modes; adaptive should match the lower MB-remote of the two fixed\n"
         "formats (within one allreduce per round) because late LP/WCC\n"
         "rounds change few vertices.  (F) the 64-way bit-parallel batch\n"
         "must cut communication rounds by >= 4x (one sweep's collectives\n"
         "serve all 64 roots) and win on wall/Tpar; the top-1 score must\n"
         "agree between engines up to FP summation order.  (G) the engine\n"
         "reproduces the hand-rolled schedule, so all three rows should\n"
         "land within run-to-run noise of each other.  (H) checksums must\n"
         "match exactly between schedules (the overlapped rounds are\n"
         "bit-identical); at 1 rank overlapped is parity within noise, and\n"
         "at >= 4 ranks the time spent inside exchange calls (Exch) drops\n"
         "because the wait for the slowest rank is hidden behind each\n"
         "rank's own interior sweep (Ovl / Hidden columns).  (I) checksums\n"
         "must match across all schedules and thread counts; on the\n"
         "unscrambled R-MAT (hubs at low ids) the static spans exceed 2x\n"
         "max/mean edges-per-thread at >= 4 threads while the dynamic and\n"
         "edge-balanced grids stay near 1 (Edge imbal, the deterministic\n"
         "chunk->thread model); Meas imbal is the realized split and only\n"
         "tracks the model when the host has >= `threads` cores.  Hub\n"
         "splitting caps the heaviest chunk near the grain.  (J) checksums\n"
         "must match across all three modes within each (analytic, graph)\n"
         "row — the representations are interchangeable; forced queue pins\n"
         "push (0 pull rounds) while bitmap/hybrid let the diropt BFS cross\n"
         "over, and SSSP under hybrid stays on the queue (order-sensitive).\n";
  return 0;
}
