#include "engine/trace.hpp"

#include "obs/emit.hpp"
#include "util/json.hpp"

namespace hpcgraph::engine {

std::string SuperstepTrace::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("schema", "hpcgraph-superstep-trace-v1");
  w.kv("supersteps_total", static_cast<std::uint64_t>(records_.size()));
  w.key("supersteps");
  w.begin_array();
  for (const SuperstepRecord& r : records_) {
    w.begin_object();
    w.kv("index", r.index);
    w.kv("analytic", r.analytic);
    w.kv("superstep", r.superstep);
    w.kv("active", r.active);
    w.kv("touched", r.touched);
    w.kv("residual", r.residual);
    w.kv("converged", r.converged);
    w.kv("wire", r.wire);
    w.kv("exchange_us", r.exchange_us);
    w.kv("overlap_us", r.overlap_us);
    w.kv("comm_hidden", r.comm_hidden());
    if (!r.frontier_rep.empty()) {
      w.key("frontier");
      w.begin_object();
      w.kv("rep", r.frontier_rep);
      w.kv("dir", r.frontier_dir);
      w.kv("density", r.density);
      w.kv("degree", r.degree);
      w.kv("crossover", r.crossover);
      w.end_object();
    }
    w.key("sweep");
    w.begin_object();
    w.kv("schedule", r.schedule);
    w.kv("threads", static_cast<std::uint64_t>(r.sweep_threads));
    w.kv("busy_max_us", r.sweep_busy_max_us);
    w.kv("busy_total_us", r.sweep_busy_total_us);
    w.kv("edges_max", r.sweep_edges_max);
    w.kv("edges_total", r.sweep_edges_total);
    w.kv("imbalance", r.sweep_imbalance());
    w.end_object();
    // CommStats / PhaseBreakdown field emission is shared with the obs
    // metrics dump (obs/emit.hpp): one spelling per field, defined next to
    // the structs.
    w.key("comm");
    w.begin_object();
    obs::write_comm_stats(w, r.comm);
    w.end_object();
    w.key("phase");
    w.begin_object();
    obs::write_phase(w, r.phase);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void SuperstepTrace::write_json(const std::string& path) const {
  obs::write_text_file(path, to_json());
}

}  // namespace hpcgraph::engine
