#include "engine/trace.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/json.hpp"

namespace hpcgraph::engine {

std::string SuperstepTrace::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("schema", "hpcgraph-superstep-trace-v1");
  w.kv("supersteps_total", static_cast<std::uint64_t>(records_.size()));
  w.key("supersteps");
  w.begin_array();
  for (const SuperstepRecord& r : records_) {
    w.begin_object();
    w.kv("index", r.index);
    w.kv("analytic", r.analytic);
    w.kv("superstep", r.superstep);
    w.kv("active", r.active);
    w.kv("touched", r.touched);
    w.kv("residual", r.residual);
    w.kv("converged", r.converged);
    w.kv("wire", r.wire);
    w.kv("exchange_us", r.exchange_us);
    w.kv("overlap_us", r.overlap_us);
    w.kv("comm_hidden", r.comm_hidden());
    if (!r.frontier_rep.empty()) {
      w.key("frontier");
      w.begin_object();
      w.kv("rep", r.frontier_rep);
      w.kv("dir", r.frontier_dir);
      w.kv("density", r.density);
      w.kv("degree", r.degree);
      w.kv("crossover", r.crossover);
      w.end_object();
    }
    w.key("sweep");
    w.begin_object();
    w.kv("schedule", r.schedule);
    w.kv("threads", static_cast<std::uint64_t>(r.sweep_threads));
    w.kv("busy_max_us", r.sweep_busy_max_us);
    w.kv("busy_total_us", r.sweep_busy_total_us);
    w.kv("edges_max", r.sweep_edges_max);
    w.kv("edges_total", r.sweep_edges_total);
    w.kv("imbalance", r.sweep_imbalance());
    w.end_object();
    w.key("comm");
    w.begin_object();
    w.kv("bytes_sent", r.comm.bytes_sent);
    w.kv("bytes_remote", r.comm.bytes_remote);
    w.kv("bytes_self", r.comm.bytes_self);
    w.kv("bytes_received", r.comm.bytes_received);
    w.kv("collective_calls", r.comm.collective_calls);
    w.kv("barrier_calls", r.comm.barrier_calls);
    w.kv("ghost_rounds_dense", r.comm.ghost_rounds_dense);
    w.kv("ghost_rounds_sparse", r.comm.ghost_rounds_sparse);
    w.kv("ghost_rounds_reduce", r.comm.ghost_rounds_reduce);
    w.kv("ghost_rounds_async", r.comm.ghost_rounds_async);
    w.kv("ghost_bytes_saved",
         static_cast<std::int64_t>(r.comm.ghost_bytes_saved));
    w.end_object();
    w.key("phase");
    w.begin_object();
    w.kv("comp_s", r.phase.comp);
    w.kv("comm_s", r.phase.comm);
    w.kv("idle_s", r.phase.idle);
    w.kv("pack_s", r.phase.pack);
    w.kv("route_s", r.phase.route);
    w.kv("wait_s", r.phase.wait);
    w.kv("sweep_busy_max_s", r.phase.sweep_busy_max);
    w.kv("sweep_busy_total_s", r.phase.sweep_busy_total);
    w.kv("total_s", r.phase.total);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void SuperstepTrace::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  HG_CHECK_MSG(f != nullptr, "cannot open trace output file " << path);
  const std::string body = to_json();
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && std::fclose(f) == 0;
  HG_CHECK_MSG(ok, "short write to trace output file " << path);
}

}  // namespace hpcgraph::engine
