#pragma once
/// \file superstep.hpp
/// The bulk-synchronous superstep engine — one outer loop for every
/// analytic.
///
/// The paper's central observation is that its six analytics fall into two
/// computational classes: *PageRank-like* dense value propagation over
/// boundary exchanges, and *BFS-like* frontier expansion over per-owner
/// queues.  Before this engine existed, each analytic hand-rolled the same
/// iterate → mark-changed → ghost-exchange → allreduce-convergence skeleton;
/// now a kernel supplies only the per-round computation and the engine owns
/// the loop: pool fallback, GhostExchange lifecycle, the `retain_queues`
/// ablation fallback, the fused convergence allreduce, the iteration cutoff
/// and per-superstep telemetry.  Any loop-level optimization lands here
/// once and every analytic inherits it — the overlapped (split-phase)
/// exchange schedule below is the first: boundary sweep → exchange_start →
/// interior sweep → exchange_finish, opt-in per kernel via `kOverlapSafe`
/// (DESIGN.md §9).
///
/// ## ValueKernel (PageRank-like)
///
/// Required members:
///   * `using Value = T;`                    exchanged per-vertex value type
///   * `std::span<Value> values()`           length >= g.n_total(); ghost
///                                           slots are refreshed by the
///                                           engine's exchange each round
///   * `dgraph::Adjacency adjacency()`       boundary rule for the engine's
///                                           own GhostExchange (not needed if
///                                           `ghosts()` is provided)
///   * `void compute(StepContext&)`          local sweep; mark changed
///                                           vertices on ctx.gx and report
///                                           ctx.active/touched/residual
///   * `bool converged(uint64 active_global, double residual_global)`
///                                           stop decision from the fused
///                                           allreduce (same inputs on every
///                                           rank -> same decision)
/// Optional members (detected with `if constexpr (requires ...)`):
///   * `dgraph::GhostExchange* ghosts()`     reuse a caller-owned plan (built
///                                           once across k-core stages)
///   * `dgraph::GhostMode ghost_mode()`      wire policy (default kDense)
///   * `bool retain_queues()`                false = rebuild-ablation: each
///                                           round exchanges through a fresh
///                                           dense queue (exchange_fresh)
///   * `std::vector<lvid_t>* changed_ghosts()`  receive ghost slots whose
///                                           value flipped (k-core)
///   * `void init(StepContext&)`             pre-loop seeding; if the kernel
///                                           also defines
///                                           `static constexpr bool kSeedExchange = true`
///                                           the engine runs one exchange
///                                           after it (WCC pushes re-colored
///                                           giant members before round 0)
///   * `void apply(StepContext&)`            post-exchange step (PageRank's
///                                           gather+delta, k-core's ghost
///                                           decrement application)
///
/// Round structure (collective order is part of the engine's contract —
/// ported analytics reproduce their pre-engine exchange/allreduce sequence
/// exactly, which is what keeps outputs bit-for-bit identical):
///
///     compute -> exchange -> [apply] -> fused allreduce -> record -> stop?
///
/// ## FrontierKernel (BFS-like)
///
/// Required members:
///   * `std::uint64_t active_local()`        current frontier size
///   * `void step(FrontierStepContext&)`     expand + route (through the
///                                           frontier layer's
///                                           route_to_owners) + apply +
///                                           swap; report ctx.touched/
///                                           residual/degree_local
/// Optional members:
///   * `engine::FrontierPolicy frontier_policy()`  crossover rules (order
///                                           sensitivity, pull support,
///                                           alpha/beta/density thresholds);
///                                           default: push-only hybrid
///   * `engine::DistFrontier* frontier()`    expose the active set so the
///                                           engine converts its
///                                           representation to each round's
///                                           decision before step()
///   * `std::uint64_t degree_local()`        pre-loop local frontier-degree
///                                           sum (round 0's crossover input)
///   * `dgraph::GhostExchange* ghosts()`     caller-owned plan for kernels
///                                           that publish dense frontiers
///
/// The engine sizes the frontier globally before round 0 (empty frontier =>
/// zero supersteps) and after every step; it stops when the global frontier
/// drains or the superstep cutoff hits.  Each round it resolves the
/// frontier representation and push/pull direction through
/// `frontier_decide` — a pure function of the globally-allreduced frontier
/// size and degree sum, evaluated identically on every rank — and hands the
/// decision to the kernel in the FrontierStepContext.
///
/// ## Convergence
///
/// One fused allreduce per round carries {active, touched, degree,
/// residual}: the convergence signal, the crossover input, and the
/// telemetry in a single collective.  The combiner adds element-wise in
/// rank order — the same FP addition order as a scalar allreduce_sum — so
/// PageRank's L1 residual is bitwise the value the old hand-rolled
/// `allreduce_sum(delta_local)` produced, and the frontier-degree sum that
/// drives the crossover is bit-identical across runs and rank counts.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dgraph/dist_graph.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"
#include "engine/trace.hpp"
#include "obs/tracer.hpp"
#include "parcomm/comm.hpp"
#include "util/parallel_for.hpp"
#include "util/timer.hpp"

namespace hpcgraph::engine {

/// Which slice of the local vertex set a compute() call covers.  Blocking
/// rounds sweep everything in one kFull call; overlapped rounds split the
/// sweep into kBoundary (before the exchange launches) and kInterior (while
/// the payload is in flight), with `StepContext::sweep_vertices` carrying
/// the exact id list for the partial phases.
enum class SweepPhase : std::uint8_t {
  kFull,      ///< one call covering all of [0, n_loc)
  kBoundary,  ///< boundary vertices only (their values go on the wire)
  kInterior,  ///< interior vertices only (exchange already in flight —
              ///< compute() must not issue collectives in this phase)
};

/// Per-round view the engine hands to kernel hooks.
struct StepContext {
  const dgraph::DistGraph& g;
  parcomm::Communicator& comm;
  ThreadPool& pool;                    ///< resolved pool (never null)
  dgraph::GhostExchange* gx = nullptr; ///< exchange plan (null for frontier
                                       ///< kernels that route their own)
  std::uint64_t superstep = 0;         ///< 0-based round within this run

  /// Sweep slice of this compute() call.  kFull unless the engine runs the
  /// overlapped schedule; then `sweep_vertices` lists the local ids to
  /// process (ascending; the two phases partition [0, n_loc)).
  SweepPhase sweep = SweepPhase::kFull;
  std::span<const lvid_t> sweep_vertices = {};

  /// Loop-scheduling strategy resolved by the engine for this run (the
  /// config's schedule when the kernel declares `kScheduleAware`, else
  /// kStatic).  Kernels pass it to the pool's scheduled loops.
  Schedule schedule = Schedule::kStatic;

  // Kernel -> engine outputs, reset before each round and folded into the
  // fused allreduce after it.  Overlap-safe kernels must *accumulate* (+=)
  // so the two partial sweeps of an overlapped round add up.
  std::uint64_t active_local = 0;   ///< changed / newly-frontier vertices
  std::uint64_t touched_local = 0;  ///< vertices this rank processed
  double residual_local = 0.0;      ///< kernel-defined residual contribution
};

/// StepContext plus the frontier layer's per-round view: the engine's
/// representation/direction decision (in), the allreduced globals it was
/// made from (in), and the next frontier's degree sum (out — fused into
/// the convergence allreduce to drive the *next* round's decision).
struct FrontierStepContext : StepContext {
  FrontierRep rep = FrontierRep::kQueue;  ///< representation this round
  FrontierDir dir = FrontierDir::kPush;   ///< expansion direction
  bool crossover = false;  ///< rep or dir changed entering this round
  std::uint64_t active_global = 0;  ///< global size of the frontier expanded
  std::uint64_t degree_global = 0;  ///< its global frontier-degree sum
  std::uint64_t degree_local = 0;   ///< OUT: next frontier's local degree sum
};

/// What a finished engine run reports back to the analytic.
struct EngineResult {
  std::uint64_t supersteps = 0;   ///< rounds executed (== old loop counters)
  bool converged = false;         ///< kernel stop (vs. superstep cutoff)
  std::uint64_t last_active = 0;  ///< global active count of the final round
  double last_residual = 0.0;     ///< global residual of the final round
};

/// Engine-level knobs; analytics fill this from their CommonOptions.
struct EngineConfig {
  ThreadPool* pool = nullptr;     ///< worker pool (null = inline 1-thread)
  std::uint64_t max_supersteps = UINT64_MAX;  ///< iteration cutoff
  SuperstepTrace* trace = nullptr;  ///< telemetry sink (rank 0 pushes)
  const char* name = "";            ///< analytic label in trace records
  /// Opt into the overlapped round schedule (compute boundary →
  /// exchange_start → compute interior → exchange_finish).  Takes effect
  /// only for kernels that declare `static constexpr bool kOverlapSafe =
  /// true` (and whose optional runtime `overlap_ok()` agrees) with retained
  /// queues; everything else keeps the blocking schedule.  Must be set
  /// identically on every rank.
  bool overlap = false;
  /// Loop schedule for the kernel's parallel sweeps and the exchange's
  /// pack/scatter loops.  Takes effect only for kernels that declare
  /// `static constexpr bool kScheduleAware = true`; everything else keeps
  /// kStatic.  Must be set identically on every rank (like `overlap`): the
  /// schedule can change which sweep variant a kernel runs, and mismatched
  /// variants would diverge the collective sequence.
  Schedule schedule = Schedule::kStatic;
  /// Frontier representation override for run_frontier kernels
  /// (`--frontier`): kQueue/kBitmap force one representation, kHybrid
  /// (default) lets the engine cross over on the global frontier-degree
  /// sum.  Must be set identically on every rank.
  FrontierMode frontier = FrontierMode::kHybrid;
};

template <class K>
concept ValueKernel =
    requires(K k, StepContext& ctx, std::uint64_t a, double r) {
      typename K::Value;
      { k.values() } -> std::convertible_to<std::span<typename K::Value>>;
      k.compute(ctx);
      { k.converged(a, r) } -> std::convertible_to<bool>;
    } &&
    (requires(K k) {
      { k.adjacency() } -> std::same_as<dgraph::Adjacency>;
    } || requires(K k) {
      { k.ghosts() } -> std::convertible_to<dgraph::GhostExchange*>;
    });

template <class K>
concept FrontierKernel = requires(K k, FrontierStepContext& ctx) {
  { k.active_local() } -> std::convertible_to<std::uint64_t>;
  k.step(ctx);
};

/// Runs kernels over one distributed graph.  Collective: every rank must
/// construct the engine and call the same run_* methods in the same order.
class SuperstepEngine {
 public:
  SuperstepEngine(const dgraph::DistGraph& g, parcomm::Communicator& comm,
                  EngineConfig cfg = {})
      : g_(g), comm_(comm), cfg_(cfg), pf_(cfg.pool) {}

  /// PageRank-like run: dense sweeps + ghost exchanges to a fixpoint.
  template <ValueKernel K>
  EngineResult run_value(K& kernel) {
    using T = typename K::Value;
    ThreadPool& tp = pf_.get();

    // Exchange plan: borrow the kernel's retained plan if it has one, else
    // build (collectively) from the kernel's adjacency rule.
    dgraph::GhostExchange* gx = nullptr;
    std::optional<dgraph::GhostExchange> owned;
    if constexpr (requires { kernel.ghosts(); }) {
      gx = kernel.ghosts();
    } else {
      owned.emplace(g_, comm_, kernel.adjacency(), cfg_.pool);
      gx = &*owned;
    }

    dgraph::GhostMode mode = dgraph::GhostMode::kDense;
    if constexpr (requires { kernel.ghost_mode(); }) mode = kernel.ghost_mode();

    bool retain = true;
    if constexpr (requires { kernel.retain_queues(); })
      retain = kernel.retain_queues();

    std::vector<lvid_t>* changed_ghosts = nullptr;
    if constexpr (requires { kernel.changed_ghosts(); })
      changed_ghosts = kernel.changed_ghosts();

    const auto do_exchange = [&] {
      std::span<T> vals = kernel.values();
      if (retain) {
        gx->exchange<T>(vals, comm_, mode, changed_ghosts);
      } else {
        // Rebuild ablation: no change history on a fresh queue, so the
        // round goes through the always-dense exchange_fresh helper.
        dgraph::exchange_fresh<T>(g_, comm_, gx->adjacency(), cfg_.pool, vals,
                                  changed_ghosts);
      }
    };

    // Overlapped schedule eligibility.  Static opt-in (`kOverlapSafe`: the
    // kernel's local sweep reads no ghost slot it also writes mid-round and
    // tolerates the split boundary/interior call pair), optional runtime
    // veto (`overlap_ok()`: e.g. LP's in-place Gauss-Seidel sweep is
    // order-dependent), and retained queues (a fresh queue has no split
    // path).  All three are rank-uniform, so the schedule is collective.
    bool overlap = false;
    if constexpr (requires { K::kOverlapSafe; }) {
      if constexpr (K::kOverlapSafe) {
        overlap = cfg_.overlap && retain;
        if constexpr (requires { kernel.overlap_ok(); })
          overlap = overlap && kernel.overlap_ok();
      }
    }

    // Schedule opt-in mirrors kOverlapSafe: kernels whose sweeps are written
    // against the deterministic chunk-grid contract declare kScheduleAware
    // (with an optional runtime veto `schedule_ok()` — e.g. LP's in-place
    // Gauss-Seidel sweep is order-dependent); everything else keeps the
    // legacy static split.
    Schedule sched = Schedule::kStatic;
    if constexpr (requires { K::kScheduleAware; }) {
      if constexpr (K::kScheduleAware) {
        sched = cfg_.schedule;
        if constexpr (requires { kernel.schedule_ok(); })
          if (!kernel.schedule_ok()) sched = Schedule::kStatic;
      }
    }
    gx->set_schedule(sched);

    StepContext ctx{g_, comm_, tp, gx};
    ctx.schedule = sched;
    if constexpr (requires { kernel.init(ctx); }) {
      kernel.init(ctx);
      if constexpr (requires { K::kSeedExchange; }) {
        if constexpr (K::kSeedExchange) do_exchange();
      }
    }

    EngineResult res;
    for (std::uint64_t step = 0; step < cfg_.max_supersteps; ++step) {
      const auto rec0 = begin_record();
      const SweepStats sweep0 = tp.sweep_stats();
      ctx.superstep = step;
      ctx.active_local = 0;
      ctx.touched_local = 0;
      ctx.residual_local = 0.0;

      obs::Span round_span(obs::span_name::kSuperstep);
      double exchange_s = 0;  // wall inside this round's exchange calls
      double overlap_s = 0;   // interior-compute wall hidden behind the wire
      if (overlap) {
        // compute(boundary) -> exchange_start -> compute(interior) ->
        // exchange_finish.  Ordering invariant: boundary values are final
        // before the pack reads them, and interior values never go on the
        // wire, so the payload equals the blocking schedule's bit-for-bit.
        ctx.sweep = SweepPhase::kBoundary;
        ctx.sweep_vertices = g_.boundary_locals();
        {
          obs::Span sp(obs::span_name::kComputeBoundary);
          kernel.compute(ctx);
        }
        {
          obs::Span sp(obs::span_name::kExchangeStart);
          gx->exchange_start<T>(kernel.values(), comm_, mode);
          exchange_s += sp.close();
        }
        ctx.sweep = SweepPhase::kInterior;
        ctx.sweep_vertices = g_.interior_locals();
        {
          obs::Span sp(obs::span_name::kComputeInterior);
          // Interior-phase compute never issues collectives; kernels that
          // allreduce (PageRank dangling mass) gate it on sweep !=
          // kInterior, a phase correlation the flow analysis cannot see.
          // lint:allow(flow-collective-in-overlap-window: interior compute is collective-free by kernel contract)
          kernel.compute(ctx);
          overlap_s = sp.close();
        }
        {
          obs::Span sp(obs::span_name::kExchangeFinish);
          gx->exchange_finish<T>(kernel.values(), comm_, changed_ghosts);
          exchange_s += sp.close();
        }
        ctx.sweep = SweepPhase::kFull;
        ctx.sweep_vertices = {};
      } else {
        {
          obs::Span sp(obs::span_name::kCompute);
          kernel.compute(ctx);
        }
        obs::Span sp(obs::span_name::kExchange);
        do_exchange();
        exchange_s = sp.close();
      }
      if constexpr (requires { kernel.apply(ctx); }) kernel.apply(ctx);

      const Signal sig = fused_allreduce(
          {ctx.active_local, ctx.touched_local, 0, ctx.residual_local});
      ++res.supersteps;
      res.last_active = sig.active;
      res.last_residual = sig.residual;
      res.converged = kernel.converged(sig.active, sig.residual);
      obs::counter(obs::counter_name::kFrontierActive,
                   static_cast<double>(sig.active));

      // Fold this round's intra-rank sweep imbalance into the phase timer
      // *before* the recorder snapshots its delta, then attach the raw
      // numbers to the record.
      const SweepStats sweep_d = tp.sweep_stats() - sweep0;
      comm_.phase_timer().add_sweep(sweep_d.busy_max, sweep_d.busy_total);
      if (sweep_d.busy_max > 0)
        obs::counter(obs::counter_name::kPoolOccupancy,
                     sweep_d.busy_total /
                         (sweep_d.busy_max *
                          static_cast<double>(tp.num_threads())));
      end_record(rec0, step, sig, res.converged,
                 retain ? dgraph::ghost_mode_label(gx->last_round_mode())
                        : "dense",
                 exchange_s, overlap_s, sweep_d, tp.num_threads(), sched);
      if (res.converged) break;
    }
    return res;
  }

  /// BFS-like run: expand the frontier until it drains globally.  Each
  /// round the engine resolves the frontier representation and push/pull
  /// direction (frontier_decide on the fused allreduce's globals — the
  /// same pure function of the same values on every rank), converts the
  /// kernel's DistFrontier if it exposes one, and records per-superstep
  /// density/representation/direction telemetry.
  template <FrontierKernel K>
  EngineResult run_frontier(K& kernel) {
    ThreadPool& tp = pf_.get();

    dgraph::GhostExchange* gx = nullptr;
    if constexpr (requires { kernel.ghosts(); }) gx = kernel.ghosts();

    Schedule sched = Schedule::kStatic;
    if constexpr (requires { K::kScheduleAware; }) {
      if constexpr (K::kScheduleAware) sched = cfg_.schedule;
    }
    if (gx) gx->set_schedule(sched);

    // Crossover policy: the kernel's pins + thresholds, the config's
    // user-facing mode override.
    FrontierPolicy policy;
    if constexpr (requires { kernel.frontier_policy(); })
      policy = kernel.frontier_policy();
    policy.mode = cfg_.frontier;

    FrontierStepContext ctx{{g_, comm_, tp, gx}};
    ctx.schedule = sched;
    if constexpr (requires { kernel.init(ctx); }) kernel.init(ctx);

    EngineResult res;
    // Pre-loop sizing: fuse the initial frontier size with its degree sum
    // (round 0's crossover input) in one collective.
    std::uint64_t degree_local0 = 0;
    if constexpr (requires { kernel.degree_local(); })
      degree_local0 = kernel.degree_local();
    {
      const Signal sz =
          fused_allreduce({kernel.active_local(), 0, degree_local0, 0.0});
      ctx.active_global = sz.active;
      ctx.degree_global = sz.degree;
    }
    res.converged = (ctx.active_global == 0);  // empty frontier: done

    FrontierDir dir = FrontierDir::kPush;
    FrontierRep rep = FrontierRep::kQueue;
    while (ctx.active_global != 0 && res.supersteps < cfg_.max_supersteps) {
      const auto rec0 = begin_record();
      obs::Span round_span(obs::span_name::kSuperstep);
      const SweepStats sweep0 = tp.sweep_stats();
      ctx.superstep = res.supersteps;
      ctx.touched_local = 0;
      ctx.residual_local = 0.0;
      ctx.degree_local = 0;

      const FrontierDecision dec =
          frontier_decide(policy, dir, ctx.active_global, ctx.degree_global,
                          g_.n_global(), g_.m_global());
      ctx.crossover =
          res.supersteps > 0 && (dec.rep != rep || dec.dir != dir);
      rep = dec.rep;
      dir = dec.dir;
      ctx.rep = rep;
      ctx.dir = dir;
      if constexpr (requires { kernel.frontier(); }) {
        if (DistFrontier* f = kernel.frontier()) f->set_rep(rep);
      }

      {
        obs::Span sp(obs::span_name::kFrontierStep);
        kernel.step(ctx);
      }

      const Signal sig =
          fused_allreduce({kernel.active_local(), ctx.touched_local,
                           ctx.degree_local, ctx.residual_local});
      ++res.supersteps;
      res.last_active = sig.active;
      res.last_residual = sig.residual;
      res.converged = (sig.active == 0);
      obs::counter(obs::counter_name::kFrontierActive,
                   static_cast<double>(sig.active));

      const SweepStats sweep_d = tp.sweep_stats() - sweep0;
      comm_.phase_timer().add_sweep(sweep_d.busy_max, sweep_d.busy_total);
      if (sweep_d.busy_max > 0)
        obs::counter(obs::counter_name::kPoolOccupancy,
                     sweep_d.busy_total /
                         (sweep_d.busy_max *
                          static_cast<double>(tp.num_threads())));
      FrontierRoundInfo finfo;
      finfo.rep = frontier_rep_label(rep);
      finfo.dir = frontier_dir_label(dir);
      finfo.density = g_.n_global() > 0
                          ? static_cast<double>(ctx.active_global) /
                                static_cast<double>(g_.n_global())
                          : 0.0;
      finfo.degree = ctx.degree_global;
      finfo.crossover = ctx.crossover;
      end_record(rec0, res.supersteps - 1, sig, res.converged,
                 dir == FrontierDir::kPull ? "dense" : "queue", 0, 0,
                 sweep_d, tp.num_threads(), sched, finfo);

      ctx.active_global = sig.active;
      ctx.degree_global = sig.degree;
    }
    return res;
  }

 private:
  /// The fused per-round collective: convergence signal + telemetry in one
  /// allreduce.  Element-wise sums combined in rank order (bitwise-equal to
  /// the scalar allreduce_sum each field replaced).  `degree` is the
  /// frontier-degree sum run_frontier's crossover decision consumes (0 for
  /// value kernels and kernels that report none).
  struct Signal {
    std::uint64_t active;
    std::uint64_t touched;
    std::uint64_t degree;
    double residual;
  };
  Signal fused_allreduce(Signal s) {
    return comm_.allreduce(s, [](Signal a, Signal b) {
      return Signal{a.active + b.active, a.touched + b.touched,
                    a.degree + b.degree, a.residual + b.residual};
    });
  }

  bool recording() const { return cfg_.trace && comm_.rank() == 0; }
  std::optional<StepRecorder> begin_record() {
    if (!recording()) return std::nullopt;
    return std::make_optional<StepRecorder>(comm_);
  }
  void end_record(const std::optional<StepRecorder>& rec0, std::uint64_t step,
                  const Signal& sig, bool converged, const char* wire,
                  double exchange_s, double overlap_s,
                  const SweepStats& sweep_d, unsigned nthreads,
                  Schedule sched, const FrontierRoundInfo& finfo = {}) {
    if (!rec0) return;
    SuperstepRecord rec;
    rec.analytic = cfg_.name;
    rec.superstep = step;
    rec.active = sig.active;
    rec.touched = sig.touched;
    rec.residual = sig.residual;
    rec.converged = converged;
    rec.wire = wire;
    rec.exchange_us = static_cast<std::uint64_t>(exchange_s * 1e6);
    rec.overlap_us = static_cast<std::uint64_t>(overlap_s * 1e6);
    rec.set_sweep(sweep_d, nthreads, sched);
    rec.set_frontier(finfo);
    rec0->finish(rec);
    cfg_.trace->push(std::move(rec));
  }

  const dgraph::DistGraph& g_;
  parcomm::Communicator& comm_;
  EngineConfig cfg_;
  PoolFallback pf_;
};

}  // namespace hpcgraph::engine
