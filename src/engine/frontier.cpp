#include "engine/frontier.hpp"

#include <string>

namespace hpcgraph::engine {

bool parse_frontier_mode(const std::string& s, FrontierMode* out) {
  if (s == "queue") {
    *out = FrontierMode::kQueue;
  } else if (s == "bitmap") {
    *out = FrontierMode::kBitmap;
  } else if (s == "hybrid") {
    *out = FrontierMode::kHybrid;
  } else {
    return false;
  }
  return true;
}

FrontierDecision frontier_decide(const FrontierPolicy& policy,
                                 FrontierDir prev_dir,
                                 std::uint64_t active_global,
                                 std::uint64_t degree_global,
                                 std::uint64_t n_global,
                                 std::uint64_t m_global) {
  FrontierDecision d;

  // ---- Direction.  A pull round needs the dense flag publication, so a
  // forced queue mode pins push; otherwise the rules are the pre-refactor
  // direction-optimizing BFS formulas verbatim (enter pull on `>`, stay on
  // `>=` — the asymmetry is Beamer's hysteresis). ----
  if (policy.allow_pull && policy.mode != FrontierMode::kQueue) {
    if (policy.pull_density >= 0.0) {
      d.dir = static_cast<double>(active_global) >
                      policy.pull_density * static_cast<double>(n_global)
                  ? FrontierDir::kPull
                  : FrontierDir::kPush;
    } else if (prev_dir == FrontierDir::kPush) {
      d.dir = static_cast<double>(degree_global) >
                      static_cast<double>(m_global) / policy.alpha
                  ? FrontierDir::kPull
                  : FrontierDir::kPush;
    } else {
      d.dir = static_cast<double>(active_global) >=
                      static_cast<double>(n_global) / policy.beta
                  ? FrontierDir::kPull
                  : FrontierDir::kPush;
    }
  }

  // ---- Representation.  Pull implies dense; push follows the mode, with
  // hybrid crossing over on the global frontier-degree sum (kernels that
  // report no degree sum stay sparse).  Order-sensitive analytics pin the
  // hybrid default to the queue so their insertion-order tie-breaks — and
  // hence their outputs — match the pre-refactor loops bit-for-bit. ----
  if (d.dir == FrontierDir::kPull) {
    d.rep = FrontierRep::kBitmap;
  } else {
    switch (policy.mode) {
      case FrontierMode::kQueue: d.rep = FrontierRep::kQueue; break;
      case FrontierMode::kBitmap: d.rep = FrontierRep::kBitmap; break;
      case FrontierMode::kHybrid:
        d.rep = !policy.order_sensitive &&
                        static_cast<double>(degree_global) >
                            static_cast<double>(m_global) /
                                policy.rep_fraction
                    ? FrontierRep::kBitmap
                    : FrontierRep::kQueue;
        break;
    }
  }
  return d;
}

void DistFrontier::set_rep(FrontierRep r) {
  if (r == rep_) return;
  if (r == FrontierRep::kBitmap) {
    // Queue → bitmap: duplicates collapse, insertion order is dropped.
    words_.assign(word_count(), 0);
    count_ = 0;
    for (const lvid_t v : list_) {
      std::uint64_t& w = words_[v >> 6];
      const std::uint64_t b = bits::bit(v & 63);
      if (!(w & b)) {
        w |= b;
        ++count_;
      }
    }
    list_.clear();
    list_valid_ = false;
  } else {
    // Bitmap → queue: the canonical ascending member list.
    materialize_list();
    words_.clear();
    count_ = 0;
    list_valid_ = true;
  }
  rep_ = r;
}

void DistFrontier::materialize_list() const {
  list_.clear();
  list_.reserve(count_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    bits::for_each_set_bit(words_[w], [&](std::size_t j) {
      list_.push_back(static_cast<lvid_t>((w << 6) + j));
    });
  list_valid_ = true;
}

}  // namespace hpcgraph::engine
