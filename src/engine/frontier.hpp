#pragma once
/// \file frontier.hpp
/// The unified distributed frontier layer — one owner for the paper's
/// Algorithm-2/3 queue → Alltoallv → scatter cycle.
///
/// Before this layer existed every BFS-like analytic hand-rolled the same
/// three pieces: a per-destination owner-count pass, a `MultiQueue`/`Sink`
/// send-queue build, and the Alltoallv + receive-scatter that completes the
/// cycle.  `route_to_owners` is now the single sanctioned implementation
/// (the `raw-frontier-exchange` lint rule rejects bespoke copies), and
/// `DistFrontier` owns the per-superstep active set itself, in one of two
/// interchangeable representations:
///
///   * **queue** — a sparse vertex list in insertion order: the paper's
///     Algorithm 2 frontier.  Callers dedup (claim flags / status arrays),
///     exactly as the seed loops did.
///   * **bitmap** — a packed `bitmask64` over locals + ghosts: the dense
///     representation direction-optimizing traversals publish over the
///     ghost-exchange wire.  Membership-deduped; iteration is ascending.
///
/// Conversions are explicit and canonical: queue → bitmap drops insertion
/// order (and collapses duplicates); bitmap → queue yields the ascending
/// vertex list.  Analytics whose outputs depend on frontier order (BFS
/// parent trees, SSSP round counts) declare `order_sensitive` in their
/// `FrontierPolicy`, which pins the hybrid mode to the queue representation;
/// an explicit `--frontier bitmap` override still forces the dense path
/// (outputs stay correct, order-derived tie-breaks may differ).
///
/// The representation / direction crossover (`frontier_decide`) is a pure
/// function of globally-allreduced values — the frontier size and
/// frontier-degree sum the engine fuses into its convergence allreduce — so
/// every rank takes the same branch and the decision is bit-identical
/// across runs, rank counts and thread counts (DESIGN.md §11).

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "dgraph/dist_graph.hpp"
#include "obs/tracer.hpp"
#include "parcomm/comm.hpp"
#include "util/bitmask64.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::engine {

/// Physical representation of a DistFrontier.
enum class FrontierRep : std::uint8_t {
  kQueue,   ///< sparse vertex list, insertion order (Algorithm 2)
  kBitmap,  ///< packed bit per vertex over locals+ghosts, ascending order
};

/// User-facing representation policy (`--frontier` flag).
enum class FrontierMode : std::uint8_t {
  kQueue,   ///< force the sparse queue representation (and push direction)
  kBitmap,  ///< force the dense bitmap representation
  kHybrid,  ///< crossover on the global frontier-degree sum (default)
};

/// Traversal direction of one frontier expansion round.
enum class FrontierDir : std::uint8_t {
  kPush,  ///< top-down: frontier scatters to neighbours
  kPull,  ///< bottom-up: unvisited vertices scan for flagged parents
};

inline const char* frontier_rep_label(FrontierRep r) {
  return r == FrontierRep::kQueue ? "queue" : "bitmap";
}
inline const char* frontier_mode_label(FrontierMode m) {
  switch (m) {
    case FrontierMode::kQueue: return "queue";
    case FrontierMode::kBitmap: return "bitmap";
    case FrontierMode::kHybrid: return "hybrid";
  }
  return "?";
}
inline const char* frontier_dir_label(FrontierDir d) {
  return d == FrontierDir::kPush ? "push" : "pull";
}

/// Parse a `--frontier` flag value.  Returns false on unknown input.
bool parse_frontier_mode(const std::string& s, FrontierMode* out);

/// Per-kernel crossover policy.  Defaults describe a push-only analytic
/// that tolerates either representation.
struct FrontierPolicy {
  FrontierMode mode = FrontierMode::kHybrid;
  /// Outputs depend on frontier iteration order (BFS-tree parents, SSSP
  /// round counts): hybrid resolves to the queue representation so default
  /// runs reproduce the pre-refactor loops bit-for-bit.  An explicit
  /// kQueue/kBitmap mode still wins.
  bool order_sensitive = false;
  /// The analytic implements a pull (bottom-up) expansion.  Off for
  /// kernels with push-only semantics.
  bool allow_pull = false;
  /// Beamer direction thresholds (only read when allow_pull): switch to
  /// pull when the frontier-degree sum exceeds m/alpha; back to push when
  /// the frontier shrinks below n/beta.
  double alpha = 15.0;
  double beta = 20.0;
  /// Alternative pull rule (MS-BFS): pull when the global frontier is
  /// denser than this fraction of n.  Negative = use alpha/beta instead.
  double pull_density = -1.0;
  /// Hybrid representation crossover: go dense when the global
  /// frontier-degree sum exceeds m / rep_fraction.
  double rep_fraction = 64.0;
};

/// One round's representation + direction decision.
struct FrontierDecision {
  FrontierRep rep = FrontierRep::kQueue;
  FrontierDir dir = FrontierDir::kPush;
};

/// Pure crossover function: same (policy, previous direction, allreduced
/// globals) → same decision on every rank, every run.  The direction rules
/// replicate the pre-refactor direction-optimizing BFS exactly: from push,
/// switch to pull when degree_global > m/alpha; once pulling, keep pulling
/// while active_global >= n/beta.  `pull_density >= 0` swaps in the MS-BFS
/// density rule (pull iff active_global > pull_density * n).
FrontierDecision frontier_decide(const FrontierPolicy& policy,
                                 FrontierDir prev_dir,
                                 std::uint64_t active_global,
                                 std::uint64_t degree_global,
                                 std::uint64_t n_global,
                                 std::uint64_t m_global);

/// The per-superstep active set of one rank: a sparse queue or a dense
/// bitmap over [0, n_total), switchable in place.  Not thread-safe for
/// concurrent push; parallel producers emit per-chunk lists and append
/// them in chunk order (append_chunks).
class DistFrontier {
 public:
  /// \param n_total  locals + ghosts of the rank's graph slice.
  explicit DistFrontier(std::size_t n_total,
                        FrontierRep rep = FrontierRep::kQueue)
      : n_total_(n_total), rep_(rep) {
    if (rep_ == FrontierRep::kBitmap) words_.assign(word_count(), 0);
  }

  FrontierRep rep() const { return rep_; }
  std::size_t n_total() const { return n_total_; }

  /// Local active count.  Queue: list length (duplicates count, as in the
  /// seed loops).  Bitmap: population count (membership-deduped).
  std::uint64_t size() const {
    return rep_ == FrontierRep::kQueue ? list_.size() : count_;
  }
  bool empty() const { return size() == 0; }

  /// Insert one vertex.  Bitmap inserts are idempotent.
  void push(lvid_t v) {
    HG_DCHECK(v < n_total_);
    if (rep_ == FrontierRep::kQueue) {
      list_.push_back(v);
    } else {
      std::uint64_t& w = words_[v >> 6];
      const std::uint64_t b = bits::bit(v & 63);
      if (!(w & b)) {
        w |= b;
        ++count_;
        list_valid_ = false;
      }
    }
  }

  /// Append per-chunk emission lists in chunk order — the deterministic
  /// assembly for parallel producers (same list for every thread count).
  void append_chunks(std::span<const std::vector<lvid_t>> chunk_lists) {
    for (const std::vector<lvid_t>& cl : chunk_lists)
      for (const lvid_t v : cl) push(v);
  }

  /// Bitmap membership test (bitmap representation only).
  bool test(lvid_t v) const {
    HG_DCHECK(rep_ == FrontierRep::kBitmap);
    return (words_[v >> 6] & bits::bit(v & 63)) != 0;
  }

  /// The frontier as a vertex list: queue order for the queue
  /// representation, ascending for the bitmap (materialized lazily).
  std::span<const lvid_t> as_list() const {
    if (rep_ == FrontierRep::kBitmap && !list_valid_) materialize_list();
    return list_;
  }

  /// Visit every member; queue order / ascending per representation.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (rep_ == FrontierRep::kQueue) {
      for (const lvid_t v : list_) fn(v);
    } else {
      for (std::size_t w = 0; w < words_.size(); ++w)
        bits::for_each_set_bit(words_[w], [&](std::size_t j) {
          fn(static_cast<lvid_t>((w << 6) + j));
        });
    }
  }

  /// Σ weight(v) over members — the local contribution to the global
  /// frontier-degree sum the crossover decision runs on.
  template <typename WeightFn>
  std::uint64_t weight_sum(WeightFn&& weight) const {
    std::uint64_t s = 0;
    for_each([&](lvid_t v) { s += weight(v); });
    return s;
  }

  /// Mark members as 1 in a caller-zeroed byte array (the dense frontier
  /// publication format ghost exchanges move for pull rounds).
  void mark_bytes(std::span<std::uint8_t> flags) const {
    HG_DCHECK(flags.size() >= n_total_);
    for_each([&](lvid_t v) { flags[v] = 1; });
  }

  void clear() {
    list_.clear();
    if (rep_ == FrontierRep::kBitmap && count_ != 0)
      std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
    list_valid_ = true;
  }

  /// Convert in place.  Queue→bitmap collapses duplicates and drops
  /// insertion order; bitmap→queue yields the canonical ascending list.
  void set_rep(FrontierRep r);

  void swap(DistFrontier& o) {
    std::swap(n_total_, o.n_total_);
    std::swap(rep_, o.rep_);
    list_.swap(o.list_);
    words_.swap(o.words_);
    std::swap(count_, o.count_);
    std::swap(list_valid_, o.list_valid_);
  }

 private:
  std::size_t word_count() const { return (n_total_ + 63) / 64; }
  void materialize_list() const;

  std::size_t n_total_;
  FrontierRep rep_;
  mutable std::vector<lvid_t> list_;  // queue storage / bitmap scratch list
  std::vector<std::uint64_t> words_;  // bitmap storage
  std::uint64_t count_ = 0;           // bitmap population
  mutable bool list_valid_ = true;    // bitmap: list_ mirrors words_?
};

/// The owner-count pass + Algorithm-3 send-queue build + Alltoallv, fused:
/// routes `records` to the rank `dest(record)` returns — `wire` projects
/// each record onto the type that goes on the wire — and hands back
/// everything addressed to this rank.  Single-producer: records are pushed
/// in order through one Sink, so the wire payload is a deterministic
/// function of `records` (order-sensitive receivers stay reproducible).
///
/// \param recv_counts  Optional per-source receive counts (request/reply
///                     patterns answer through the mirrored layout).
template <typename S, typename DestFn, typename WireFn,
          typename T = std::decay_t<std::invoke_result_t<WireFn, const S&>>>
std::vector<T> route_to_owners(parcomm::Communicator& comm,
                               std::span<const S> records, DestFn&& dest,
                               WireFn&& wire,
                               std::size_t qsize = kDefaultQSize,
                               std::vector<std::uint64_t>* recv_counts =
                                   nullptr) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire records must be trivially copyable");
  const int p = comm.size();
  obs::Span sp(obs::span_name::kRoute);
  std::vector<std::uint64_t> counts(p, 0);
  for (const S& r : records) ++counts[dest(r)];
  MultiQueue<T> q(counts);
  {
    typename MultiQueue<T>::Sink sink(q, qsize);
    for (const S& r : records)
      sink.push(static_cast<std::uint32_t>(dest(r)), wire(r));
  }
  comm.phase_timer().add_route(sp.close());
  obs::counter(obs::counter_name::kWireBytes,
               static_cast<double>(q.buffer().size() * sizeof(T)));
  return comm.alltoallv<T>(q.buffer(), counts, recv_counts);
}

/// Identity-wire convenience: the record type is the wire type.
template <typename T, typename DestFn>
std::vector<T> route_to_owners(parcomm::Communicator& comm,
                               std::span<const T> records, DestFn&& dest,
                               std::size_t qsize = kDefaultQSize,
                               std::vector<std::uint64_t>* recv_counts =
                                   nullptr) {
  return route_to_owners(
      comm, records, std::forward<DestFn>(dest),
      [](const T& r) { return r; }, qsize, recv_counts);
}

/// Thread-sharded variant: each pool thread drains its own shard through a
/// private Sink (concurrent Algorithm-3 production; one atomic capture per
/// destination per flush).  `wire` projects a shard record onto the wire
/// type.  Per-destination counts are exact, so segment contents are a
/// permutation fixed by flush interleaving — callers must be
/// receive-order-independent (claim/min/OR scatters).
template <typename T, typename S, typename DestFn, typename WireFn>
std::vector<T> route_to_owners_sharded(
    parcomm::Communicator& comm, ThreadPool& pool,
    std::span<const std::vector<S>> shards, DestFn&& dest, WireFn&& wire,
    std::size_t qsize = kDefaultQSize,
    std::vector<std::uint64_t>* recv_counts = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire records must be trivially copyable");
  const int p = comm.size();
  obs::Span sp(obs::span_name::kRoute);
  std::vector<std::uint64_t> counts(p, 0);
  for (const std::vector<S>& shard : shards)
    for (const S& s : shard) ++counts[dest(s)];
  MultiQueue<T> q(counts);
  pool.run([&](unsigned tid) {
    if (tid >= shards.size()) return;
    typename MultiQueue<T>::Sink sink(q, qsize);
    for (const S& s : shards[tid])
      sink.push(static_cast<std::uint32_t>(dest(s)), wire(s));
  });
  HG_DCHECK(q.complete());
  comm.phase_timer().add_route(sp.close());
  obs::counter(obs::counter_name::kWireBytes,
               static_cast<double>(q.buffer().size() * sizeof(T)));
  return comm.alltoallv<T>(q.buffer(), counts, recv_counts);
}

}  // namespace hpcgraph::engine
