#pragma once
/// \file trace.hpp
/// Per-superstep telemetry: the structured record the SuperstepEngine emits
/// each round, the in-memory trace collecting them, and the snapshot helper
/// that measures one superstep without disturbing enclosing instrumentation.
///
/// Cross-system graph-processing studies compare *per-superstep* metrics —
/// frontier size, bytes on wire, phase decomposition per round — not just
/// end-to-end walls.  The trace makes every engine-driven analytic emit that
/// unit of comparison for free.
///
/// Aggregation model: records are pushed by **rank 0 only**.  The
/// `active`/`touched`/`residual` fields are global (every rank computes the
/// same value from the engine's fused allreduce); the CommStats and
/// PhaseBreakdown deltas are rank 0's local view of the round.  On this
/// simulated-MPI runtime ranks run symmetric collective schedules, so rank
/// 0's counters are representative; a real-MPI port would gather all ranks.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "parcomm/comm.hpp"
#include "parcomm/comm_stats.hpp"
#include "parcomm/phase_timer.hpp"

namespace hpcgraph::engine {

/// One bulk-synchronous round of one engine run.
struct SuperstepRecord {
  std::uint64_t index = 0;      ///< trace-global, monotone (assigned by push)
  std::string analytic;         ///< engine run label ("pagerank", "sssp", ...)
  std::uint64_t superstep = 0;  ///< 0-based round within the run
  std::uint64_t active = 0;     ///< global frontier size / changed vertices
  std::uint64_t touched = 0;    ///< global vertices processed this round
  double residual = 0.0;        ///< global residual (kernel-defined, e.g. L1)
  bool converged = false;       ///< this round triggered the stop condition
  std::string wire;             ///< ghost wire format used ("dense"/"sparse"/
                                ///< "queue" for alltoallv frontier kernels)
  std::uint64_t exchange_us = 0;  ///< rank-0 wall µs inside the round's
                                  ///< exchange calls (blocking: the single
                                  ///< call; overlapped: start + finish)
  std::uint64_t overlap_us = 0;   ///< rank-0 wall µs of interior compute run
                                  ///< while the exchange was in flight (0 on
                                  ///< the blocking schedule)
  parcomm::CommStats comm;      ///< rank-0 counter delta over the round
  parcomm::PhaseBreakdown phase;  ///< rank-0 comp/comm/idle/pack delta

  /// Fraction of the round's communication window hidden behind interior
  /// compute: overlap / (overlap + exchange).  0 for blocking rounds.
  double comm_hidden() const {
    const double denom =
        static_cast<double>(overlap_us) + static_cast<double>(exchange_us);
    return denom > 0 ? static_cast<double>(overlap_us) / denom : 0.0;
  }
};

/// Append-only in-memory trace; serializable to JSON.  Not thread-safe by
/// design: the engine pushes from rank 0 only.
class SuperstepTrace {
 public:
  /// Appends `rec`, overwriting rec.index with the trace-global counter so
  /// indices stay monotone across multiple engine runs (k-core stages, a
  /// WCC seed run + coloring run, back-to-back analytics in one session).
  void push(SuperstepRecord rec) {
    rec.index = records_.size();
    records_.push_back(std::move(rec));
  }

  const std::vector<SuperstepRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Serialize the whole trace as a single JSON object
  /// `{"schema": ..., "supersteps": [...]}`.
  std::string to_json() const;

  /// Write to_json() to `path`; throws via HG_CHECK on I/O failure.
  void write_json(const std::string& path) const;

 private:
  std::vector<SuperstepRecord> records_;
};

/// Captures CommStats + PhaseTimer at construction and fills a record with
/// the deltas at finish().  Snapshot-based, so an enclosing measurement
/// (bench region, another recorder) keeps seeing the full run.
class StepRecorder {
 public:
  explicit StepRecorder(parcomm::Communicator& comm)
      : comm_(comm),
        stats0_(comm.stats()),
        phase0_(comm.phase_timer().snapshot()) {}

  /// Fill the comm/phase delta fields of `rec` for the region since
  /// construction.
  void finish(SuperstepRecord& rec) const {
    rec.comm = comm_.stats() - stats0_;
    rec.phase = comm_.phase_timer().snapshot() - phase0_;
  }

 private:
  parcomm::Communicator& comm_;
  parcomm::CommStats stats0_;
  parcomm::PhaseBreakdown phase0_;
};

/// Telemetry-only engine adoption for analytics that keep bespoke loops
/// (the BFS variants, whose Algorithm-2 structure is its own reference):
/// bundles the rank-0 gate, the per-round StepRecorder and the record
/// assembly so a hand-rolled loop emits the same SuperstepRecord stream as
/// an engine-driven one.  Call begin() at the top of each round and end()
/// after the round's terminating allreduce.
class RoundTrace {
 public:
  RoundTrace(SuperstepTrace* trace, parcomm::Communicator& comm,
             std::string analytic)
      : trace_(trace && comm.rank() == 0 ? trace : nullptr),
        comm_(comm),
        analytic_(std::move(analytic)) {}

  void begin() {
    if (trace_) rec0_.emplace(comm_);
  }

  /// \param superstep     0-based round index within the run
  /// \param processed     global vertices processed this round (touched)
  /// \param next_active   global frontier/changed count after the round;
  ///                      zero marks the run converged
  /// \param wire          wire-format label for the round
  void end(std::uint64_t superstep, std::uint64_t processed,
           std::uint64_t next_active, const char* wire) {
    if (!trace_) return;
    SuperstepRecord rec;
    rec.analytic = analytic_;
    rec.superstep = superstep;
    rec.active = next_active;
    rec.touched = processed;
    rec.converged = next_active == 0;
    rec.wire = wire;
    rec0_->finish(rec);
    trace_->push(std::move(rec));
    rec0_.reset();
  }

 private:
  SuperstepTrace* trace_;
  parcomm::Communicator& comm_;
  std::string analytic_;
  std::optional<StepRecorder> rec0_;
};

}  // namespace hpcgraph::engine
