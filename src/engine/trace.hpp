#pragma once
/// \file trace.hpp
/// Per-superstep telemetry: the structured record the SuperstepEngine emits
/// each round, the in-memory trace collecting them, and the snapshot helper
/// that measures one superstep without disturbing enclosing instrumentation.
///
/// Cross-system graph-processing studies compare *per-superstep* metrics —
/// frontier size, bytes on wire, phase decomposition per round — not just
/// end-to-end walls.  The trace makes every engine-driven analytic emit that
/// unit of comparison for free.
///
/// Aggregation model: records are pushed by **rank 0 only**.  The
/// `active`/`touched`/`residual` fields are global (every rank computes the
/// same value from the engine's fused allreduce); the CommStats and
/// PhaseBreakdown deltas are rank 0's local view of the round.  On this
/// simulated-MPI runtime ranks run symmetric collective schedules, so rank
/// 0's counters are representative; a real-MPI port would gather all ranks.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "parcomm/comm.hpp"
#include "parcomm/comm_stats.hpp"
#include "parcomm/phase_timer.hpp"
#include "util/parallel_for.hpp"

namespace hpcgraph::engine {

/// Per-round frontier-layer telemetry: what run_frontier (or a bespoke
/// loop adopting RoundTrace) decided and why.  Empty rep = the round ran
/// no frontier machinery (value kernels).
struct FrontierRoundInfo {
  const char* rep = "";   ///< representation ("queue"/"bitmap"; "" = n/a)
  const char* dir = "";   ///< expansion direction ("push"/"pull")
  double density = 0.0;   ///< active_global / n_global of the expanded set
  std::uint64_t degree = 0;  ///< global frontier-degree sum (crossover input)
  bool crossover = false;    ///< rep or dir changed entering this round
};

/// One bulk-synchronous round of one engine run.
struct SuperstepRecord {
  std::uint64_t index = 0;      ///< trace-global, monotone (assigned by push)
  std::string analytic;         ///< engine run label ("pagerank", "sssp", ...)
  std::uint64_t superstep = 0;  ///< 0-based round within the run
  std::uint64_t active = 0;     ///< global frontier size / changed vertices
  std::uint64_t touched = 0;    ///< global vertices processed this round
  double residual = 0.0;        ///< global residual (kernel-defined, e.g. L1)
  bool converged = false;       ///< this round triggered the stop condition
  std::string wire;             ///< ghost wire format used ("dense"/"sparse"/
                                ///< "queue" for alltoallv frontier kernels)
  std::uint64_t exchange_us = 0;  ///< rank-0 wall µs inside the round's
                                  ///< exchange calls (blocking: the single
                                  ///< call; overlapped: start + finish)
  std::uint64_t overlap_us = 0;   ///< rank-0 wall µs of interior compute run
                                  ///< while the exchange was in flight (0 on
                                  ///< the blocking schedule)
  parcomm::CommStats comm;      ///< rank-0 counter delta over the round
  parcomm::PhaseBreakdown phase;  ///< rank-0 comp/comm/idle/pack delta

  // Frontier-layer telemetry (run_frontier rounds and bespoke loops that
  // report it; empty frontier_rep marks a round without one).
  std::string frontier_rep;       ///< "queue" / "bitmap"; "" when n/a
  std::string frontier_dir;       ///< "push" / "pull"
  double density = 0.0;           ///< global frontier density this round
  std::uint64_t degree = 0;       ///< global frontier-degree sum
  bool crossover = false;         ///< representation/direction flip

  // Intra-rank sweep-imbalance telemetry (rank-0 pool, delta over the
  // round's scheduled loops).  Zero when the round ran no scheduled loops.
  std::string schedule;               ///< loop schedule ("static"/...; ""
                                      ///< when the round had none)
  std::uint32_t sweep_threads = 0;    ///< pool width behind the sweeps
  std::uint64_t sweep_busy_max_us = 0;    ///< Σ per-loop max thread busy µs
  std::uint64_t sweep_busy_total_us = 0;  ///< Σ per-loop total busy µs
  std::uint64_t sweep_edges_max = 0;      ///< Σ per-loop max thread weight
  std::uint64_t sweep_edges_total = 0;    ///< Σ per-loop total weight

  /// Max/mean work per thread across the round's scheduled sweeps
  /// (1.0 == perfectly balanced; 0 when no weighted sweeps ran).
  double sweep_imbalance() const {
    if (sweep_edges_total == 0 || sweep_threads == 0) return 0.0;
    const double mean = static_cast<double>(sweep_edges_total) /
                        static_cast<double>(sweep_threads);
    return static_cast<double>(sweep_edges_max) / mean;
  }

  /// Fraction of the round's communication window hidden behind interior
  /// compute: overlap / (overlap + exchange).  0 for blocking rounds.
  double comm_hidden() const {
    const double denom =
        static_cast<double>(overlap_us) + static_cast<double>(exchange_us);
    return denom > 0 ? static_cast<double>(overlap_us) / denom : 0.0;
  }

  /// Copies a round's frontier-layer decision into the frontier_* fields.
  /// Shared by the engine and RoundTrace; a default-constructed info (empty
  /// rep) leaves the record marked frontier-less.
  void set_frontier(const FrontierRoundInfo& f) {
    frontier_rep = f.rep;
    frontier_dir = f.dir;
    density = f.density;
    degree = f.degree;
    crossover = f.crossover;
  }

  /// Folds a pool's SweepStats delta (plus the schedule it ran under) into
  /// the sweep_* fields.  Shared by the engine and RoundTrace.
  void set_sweep(const SweepStats& d, unsigned nthreads, Schedule sched) {
    if (d.loops == 0) return;
    schedule = schedule_label(sched);
    sweep_threads = nthreads;
    sweep_busy_max_us = static_cast<std::uint64_t>(d.busy_max * 1e6);
    sweep_busy_total_us = static_cast<std::uint64_t>(d.busy_total * 1e6);
    sweep_edges_max = d.work_max;
    sweep_edges_total = d.work_total;
  }
};

/// Append-only in-memory trace; serializable to JSON.  Not thread-safe by
/// design: the engine pushes from rank 0 only.
class SuperstepTrace {
 public:
  /// Appends `rec`, overwriting rec.index with the trace-global counter so
  /// indices stay monotone across multiple engine runs (k-core stages, a
  /// WCC seed run + coloring run, back-to-back analytics in one session).
  void push(SuperstepRecord rec) {
    rec.index = records_.size();
    records_.push_back(std::move(rec));
  }

  const std::vector<SuperstepRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Serialize the whole trace as a single JSON object
  /// `{"schema": ..., "supersteps": [...]}`.
  std::string to_json() const;

  /// Write to_json() to `path`; throws via HG_CHECK on I/O failure.
  void write_json(const std::string& path) const;

 private:
  std::vector<SuperstepRecord> records_;
};

/// Captures CommStats + PhaseTimer at construction and fills a record with
/// the deltas at finish().  Snapshot-based, so an enclosing measurement
/// (bench region, another recorder) keeps seeing the full run.
class StepRecorder {
 public:
  explicit StepRecorder(parcomm::Communicator& comm)
      : comm_(comm),
        stats0_(comm.stats()),
        phase0_(comm.phase_timer().snapshot()) {}

  /// Fill the comm/phase delta fields of `rec` for the region since
  /// construction.
  void finish(SuperstepRecord& rec) const {
    rec.comm = comm_.stats() - stats0_;
    rec.phase = comm_.phase_timer().snapshot() - phase0_;
  }

 private:
  parcomm::Communicator& comm_;
  parcomm::CommStats stats0_;
  parcomm::PhaseBreakdown phase0_;
};

/// Telemetry-only engine adoption for analytics that keep bespoke loops
/// (the BFS variants, whose Algorithm-2 structure is its own reference):
/// bundles the rank-0 gate, the per-round StepRecorder and the record
/// assembly so a hand-rolled loop emits the same SuperstepRecord stream as
/// an engine-driven one.  Call begin() at the top of each round and end()
/// after the round's terminating allreduce.
class RoundTrace {
 public:
  /// \param pool   Optional: the rank's thread pool, for per-round sweep
  ///               imbalance deltas.  \param sched labels those sweeps.
  RoundTrace(SuperstepTrace* trace, parcomm::Communicator& comm,
             std::string analytic, ThreadPool* pool = nullptr,
             Schedule sched = Schedule::kStatic)
      : trace_(trace && comm.rank() == 0 ? trace : nullptr),
        comm_(comm),
        analytic_(std::move(analytic)),
        pool_(pool),
        sched_(sched) {}

  void begin() {
    if (!trace_) return;
    rec0_.emplace(comm_);
    if (pool_) sweep0_ = pool_->sweep_stats();
  }

  /// \param superstep     0-based round index within the run
  /// \param processed     global vertices processed this round (touched)
  /// \param next_active   global frontier/changed count after the round;
  ///                      zero marks the run converged
  /// \param wire          wire-format label for the round
  /// \param finfo         optional frontier-layer decision for the round
  void end(std::uint64_t superstep, std::uint64_t processed,
           std::uint64_t next_active, const char* wire,
           const FrontierRoundInfo& finfo = {}) {
    if (!trace_) return;
    SuperstepRecord rec;
    rec.analytic = analytic_;
    rec.superstep = superstep;
    rec.active = next_active;
    rec.touched = processed;
    rec.converged = next_active == 0;
    rec.wire = wire;
    rec.set_frontier(finfo);
    rec0_->finish(rec);
    if (pool_)
      rec.set_sweep(pool_->sweep_stats() - sweep0_, pool_->num_threads(),
                    sched_);
    trace_->push(std::move(rec));
    rec0_.reset();
  }

 private:
  SuperstepTrace* trace_;
  parcomm::Communicator& comm_;
  std::string analytic_;
  ThreadPool* pool_;
  Schedule sched_;
  SweepStats sweep0_;
  std::optional<StepRecorder> rec0_;
};

}  // namespace hpcgraph::engine
