#pragma once
/// \file pulp_partition.hpp
/// PuLP-style label-propagation partitioning — the paper's second §VII
/// future-work direction ("We are exploring better partitioning strategies
/// to improve load balance and overall scalability") and the authors' own
/// follow-up work, cited as [30] (Slota, Madduri, Rajamanickam, "PuLP:
/// Scalable multi-objective multi-constraint partitioning for small-world
/// networks").
///
/// Simplified single-constraint variant: start from a balanced random
/// assignment; for a fixed number of sweeps, move each vertex to the part
/// that the plurality of its (in+out) neighbours occupy, subject to vertex-
/// and edge-balance caps.  Runs as an offline preprocessing step over the
/// raw edge list (like running (Par)METIS before ingestion would);
/// feed the result to Partition::explicit_map / Builder overloads.

#include <cstdint>
#include <span>
#include <vector>

#include "gen/edge_list.hpp"

namespace hpcgraph::dgraph {

struct PulpParams {
  int sweeps = 8;              ///< label-propagation refinement passes
  double vertex_balance = 1.10;  ///< cap: max part verts / (n/p)
  double edge_balance = 1.50;    ///< cap: max part degree-sum / (2m/p)
  std::uint64_t seed = 1;
};

/// Per-vertex owner map in [0, nparts).  Deterministic in all params.
std::vector<std::int32_t> pulp_partition(const gen::EdgeList& graph,
                                         int nparts,
                                         const PulpParams& params = {});

/// Quality metric: number of directed edges whose endpoints live in
/// different parts (the paper's "edge cut").
std::uint64_t edge_cut(const gen::EdgeList& graph,
                       std::span<const std::int32_t> owner);

}  // namespace hpcgraph::dgraph
