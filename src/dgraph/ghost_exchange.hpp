#pragma once
/// \file ghost_exchange.hpp
/// Boundary-vertex value exchange with retained queues — the communication
/// pattern shared by all "PageRank-like" analytics (§III-D1).
///
/// Setup (once): each rank scans the adjacency of every local vertex v and
/// marks, per Algorithm 1 lines 5–11, the set of tasks that hold v as a
/// ghost; it then builds a *retained* send queue of those (task, vertex)
/// pairs.  The initial exchange ships global vertex ids; receivers convert
/// them to local ghost ids through the hash map once and keep them
/// (`recv_local_`), so later iterations never touch the hash map.
///
/// Per iteration: only the value payload is refreshed and exchanged — the
/// paper's two optimizations verbatim ("we first cut the size of data being
/// sent in half ... by retaining the vertex queue and only updating and
/// sending the label queues"; "By retaining queues, we also avoid having to
/// completely rebuild them on each iteration").
///
/// An ablation flag rebuilds queues every iteration instead, so the benefit
/// is measurable (bench/micro_primitives).

#include <cstdint>
#include <span>
#include <vector>

#include "dgraph/dist_graph.hpp"
#include "parcomm/comm.hpp"
#include "util/parallel_for.hpp"

namespace hpcgraph::dgraph {

/// Which adjacency directions determine "task t needs vertex v".
enum class Adjacency {
  kOut,     ///< ghosts of out-edges only (directed value flow, e.g. PageRank)
  kIn,      ///< ghosts of in-edges only
  kBoth,    ///< undirected flow (Label Propagation, WCC coloring)
};

/// Retained-queue ghost exchange for per-vertex values of type T.
class GhostExchange {
 public:
  /// Collective.  Builds retained queues and performs the id exchange.
  /// \param adj  Which neighbours of a local vertex make it a boundary
  ///             vertex w.r.t. a given task.
  GhostExchange(const DistGraph& g, parcomm::Communicator& comm,
                Adjacency adj = Adjacency::kBoth, ThreadPool* pool = nullptr);

  /// Collective.  Push current values of boundary local vertices to the
  /// ranks holding them as ghosts: vals[ghost] is overwritten with the
  /// owner's vals[vertex].  `vals` must have length >= g.n_total().
  template <typename T>
  void exchange(std::span<T> vals, parcomm::Communicator& comm) {
    HG_CHECK_MSG(vals.size() >= n_total_,
                 "value array must cover locals + ghosts");
    // Refresh the payload queue only (ids are retained).
    payload_bytes_.resize(send_local_.size() * sizeof(T));
    T* send = reinterpret_cast<T*>(payload_bytes_.data());
    for (std::size_t i = 0; i < send_local_.size(); ++i)
      send[i] = vals[send_local_[i]];
    const std::vector<T> recv = comm.alltoallv<T>(
        {send, send_local_.size()}, send_counts_);
    for (std::size_t i = 0; i < recv.size(); ++i)
      vals[recv_local_[i]] = recv[i];
  }

  /// Number of (vertex, task) pairs sent each iteration.
  std::uint64_t send_entries() const { return send_local_.size(); }
  /// Number of ghost updates received each iteration.
  std::uint64_t recv_entries() const { return recv_local_.size(); }

  /// Local ids (owner side) of each retained queue slot, grouped by
  /// destination task.  Exposed for the rebuild-ablation and tests.
  std::span<const lvid_t> send_local() const { return send_local_; }
  std::span<const std::uint64_t> send_counts() const { return send_counts_; }

 private:
  std::vector<lvid_t> send_local_;          // retained vertex queue (local ids)
  std::vector<std::uint64_t> send_counts_;  // per-task counts
  std::vector<lvid_t> recv_local_;          // retained receive targets
  std::vector<std::uint8_t> payload_bytes_; // reused per-iteration buffer
  std::size_t n_total_ = 0;                 // locals + ghosts, for checking
};

}  // namespace hpcgraph::dgraph
