#pragma once
/// \file ghost_exchange.hpp
/// Boundary-vertex value exchange with retained queues — the communication
/// pattern shared by all "PageRank-like" analytics (§III-D1) — extended with
/// a change-tracked adaptive sparse/dense wire format.
///
/// Setup (once): each rank scans the adjacency of every local vertex v and
/// marks, per Algorithm 1 lines 5–11, the set of tasks that hold v as a
/// ghost; it then builds a *retained* send queue of those (task, vertex)
/// pairs.  The initial exchange ships global vertex ids; receivers convert
/// them to local ghost ids through the hash map once and keep them
/// (`recv_local_`), so later iterations never touch the hash map.
///
/// Per iteration: only the value payload is refreshed and exchanged — the
/// paper's two optimizations verbatim ("we first cut the size of data being
/// sent in half ... by retaining the vertex queue and only updating and
/// sending the label queues"; "By retaining queues, we also avoid having to
/// completely rebuild them on each iteration").
///
/// ## Delta exchange (change tracking)
///
/// Convergent analytics (Label Propagation, WCC coloring, k-core peeling)
/// stop changing most vertices after a handful of rounds, yet the dense
/// exchange keeps shipping every boundary vertex every iteration.  The
/// delta protocol extends the retained-queue idea:
///
///   * The owner side keeps a **dirty flag per local vertex**
///     (`mark_changed` / `mark_changed_range` / `mark_all_changed`), set by
///     the analytic as it writes vertices.  Flags are one byte each so
///     worker threads updating disjoint vertices can mark without atomics.
///   * A **sparse round** ships `(uint32 slot, T value)` pairs for marked
///     slots only, where `slot` is the index of the vertex inside the dense
///     (source→destination) retained segment.  Receivers resolve the pair
///     against the retained `recv_local_` map via the per-source segment
///     offsets captured at setup, so the hash map stays cold.
///   * A **dense round** ships the full payload exactly as before.
///   * `GhostMode::kAdaptive` picks the cheaper format **globally** each
///     call: one `allreduce` sums the per-rank changed-slot counts and every
///     rank evaluates the same byte-cost predicate
///
///         changed_global * sizeof(SlotVal<T>)  <  c * entries_global * sizeof(T)
///
///     with crossover factor `c` (default 1.0 — the exact byte model; the
///     effective changed-fraction crossover is then derived from sizeof(T):
///     sparse wins below sizeof(T)/sizeof(SlotVal<T>) changed).  Because the
///     decision is a pure function of allreduced values, all ranks take the
///     same branch and collective lockstep is preserved.
///
/// Sparse correctness contract: a receiver applies only the transmitted
/// pairs, so every *unmarked* vertex's ghost replica must already mirror the
/// owner's value.  That holds whenever (a) ghost slots are initialised to
/// the same pure function of the global id as owner slots (all our analytics
/// do this), and (b) every subsequent write to a local vertex is marked
/// before the next exchange.  Every exchange() call — any mode — clears the
/// dirty set on return.
///
/// ## Combine hook and reverse (reduce) exchange
///
/// The classic apply step *overwrites* each ghost slot with the owner's
/// value.  `exchange_combining` generalizes it (dense and sparse wire alike)
/// to `vals[ghost] = combine(vals[ghost], incoming)` — the hook the
/// bit-parallel multi-source BFS engine needs so partial visit masks merge
/// instead of clobbering each other.  `reduce` runs the retained queues
/// *backwards*: every rank ships its ghost slots' values to the owners,
/// and each owner folds the (possibly many, one per holding rank) incoming
/// values into its own slot with `combine`.  Because the reverse payload per
/// source rank is exactly what that rank originally received at setup, the
/// receive side aligns 1:1 with the retained send queue — no extra plan
/// state, no hash map.
///
/// Both wire formats pack, unpack and scatter in parallel on the pool passed
/// at construction (pass deterministically: the sparse payload is ordered by
/// slot regardless of thread count).  Per-rank observability lands in
/// CommStats (`ghost_rounds_dense/sparse/reduce`, `ghost_bytes_saved`) and
/// PhaseTimer (`pack` staging time).
///
/// An ablation flag rebuilds queues every iteration instead, so the benefit
/// is measurable (bench/micro_primitives); bench/ablation_optimizations
/// section E measures dense-always vs sparse-always vs adaptive.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "dgraph/dist_graph.hpp"
#include "obs/tracer.hpp"
#include "parcomm/comm.hpp"
#include "util/parallel_for.hpp"
#include "util/prefix_sum.hpp"

namespace hpcgraph::dgraph {

/// Which adjacency directions determine "task t needs vertex v".
enum class Adjacency {
  kOut,     ///< ghosts of out-edges only (directed value flow, e.g. PageRank)
  kIn,      ///< ghosts of in-edges only
  kBoth,    ///< undirected flow (Label Propagation, WCC coloring)
};

/// Wire-format policy for one exchange round.  Collective-uniform: every
/// rank must pass the same mode to the same exchange call.
enum class GhostMode : std::uint8_t {
  kDense,     ///< full payload for every retained slot (the classic format)
  kSparse,    ///< (slot, value) pairs for change-marked slots only
  kAdaptive,  ///< per-round global byte-cost choice between the two
};

inline const char* ghost_mode_label(GhostMode m) {
  switch (m) {
    case GhostMode::kDense: return "dense";
    case GhostMode::kSparse: return "sparse";
    default: return "adaptive";
  }
}

/// Sparse wire record: index within the dense (source -> destination)
/// retained segment, plus the new value.
template <typename T>
struct SlotVal {
  std::uint32_t slot;
  T value;
};

/// Default apply policy: the incoming value replaces the stored one.
struct OverwriteCombine {
  template <typename T>
  T operator()(const T&, const T& incoming) const {
    return incoming;
  }
};

/// Retained-queue ghost exchange for per-vertex values of type T.
class GhostExchange {
 public:
  /// Collective.  Builds retained queues and performs the id exchange.
  /// \param adj   Which neighbours of a local vertex make it a boundary
  ///              vertex w.r.t. a given task.
  /// \param pool  Worker pool for setup *and* per-iteration pack/unpack
  ///              (null = inline single-thread execution).
  GhostExchange(const DistGraph& g, parcomm::Communicator& comm,
                Adjacency adj = Adjacency::kBoth, ThreadPool* pool = nullptr);

  // ---- Change tracking (owner side). ----

  /// Record that local vertex v's value changed since the last exchange.
  /// Safe to call concurrently for distinct vertices (one byte per vertex).
  void mark_changed(lvid_t v) {
    HG_DCHECK(v < dirty_.size());
    dirty_[v] = 1;
  }
  /// Mark every local vertex in [lo, hi) changed.
  void mark_changed_range(lvid_t lo, lvid_t hi) {
    HG_DCHECK(lo <= hi && hi <= dirty_.size());
    std::fill(dirty_.begin() + lo, dirty_.begin() + hi, std::uint8_t{1});
  }
  void mark_all_changed() {
    std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{1});
  }
  /// Number of currently-marked local vertices (testing/diagnostics).
  std::uint64_t marked_count() const {
    std::uint64_t n = 0;
    for (const std::uint8_t d : dirty_) n += d;
    return n;
  }

  /// Loop schedule for the pack/scatter staging loops (see Schedule).  The
  /// sparse count/pack passes run over a fixed slot chunk grid built at
  /// setup, so the wire payload stays slot-ordered — bit-identical — under
  /// every schedule and thread count.  kEdgeBalanced degrades to kDynamic
  /// here (retained slots are uniform-weight; there is no CSR prefix to
  /// balance against).  Set by the superstep engine alongside the kernel's
  /// schedule; harmless to leave at the kStatic default.
  void set_schedule(Schedule s) { sched_ = s; }
  Schedule schedule() const { return sched_; }

  /// Crossover factor `c` of the adaptive byte-cost model: a round goes
  /// sparse iff changed_global * sizeof(SlotVal<T>) < c * dense_bytes.
  /// 1.0 (default) = exact byte model; lower biases toward dense (e.g. to
  /// price in the scatter's random-access cost).  Must be in (0, 1].
  void set_sparse_crossover(double c) {
    HG_CHECK_MSG(c > 0.0 && c <= 1.0,
                 "sparse crossover must be in (0, 1], got " << c);
    sparse_crossover_ = c;
  }
  double sparse_crossover() const { return sparse_crossover_; }

  // ---- Per-iteration exchange. ----

  /// Collective.  Push current values of boundary local vertices to the
  /// ranks holding them as ghosts: vals[ghost] is overwritten with the
  /// owner's vals[vertex].  `vals` must have length >= g.n_total().
  ///
  /// `mode` selects the wire format (see GhostMode; sparse/adaptive consume
  /// the dirty set, and every call clears it).  If `changed_ghosts` is
  /// non-null it receives the local ids of ghost slots whose stored value
  /// actually differed from the incoming one (compared with operator!=) —
  /// the same *set* in every mode, in unspecified order.
  template <typename T>
  void exchange(std::span<T> vals, parcomm::Communicator& comm,
                GhostMode mode = GhostMode::kDense,
                std::vector<lvid_t>* changed_ghosts = nullptr) {
    exchange_impl(vals, comm, mode, changed_ghosts, OverwriteCombine{});
  }

  /// Collective.  As exchange(), but each incoming update is *merged* into
  /// the ghost slot: vals[ghost] = combine(vals[ghost], owner_value).  The
  /// combine must be the same pure function on every rank.  Works on every
  /// wire format — a sparse round simply merges the changed slots only.
  template <typename T, typename F>
  void exchange_combining(std::span<T> vals, parcomm::Communicator& comm,
                          F&& combine, GhostMode mode = GhostMode::kDense) {
    exchange_impl(vals, comm, mode, nullptr, std::forward<F>(combine));
  }

  // ---- Split-phase exchange (overlapped schedules). ----
  //
  // exchange_start() packs and launches the wire round (same formats and
  // the same adaptive byte-cost allreduce as exchange()), then returns with
  // the payload in flight; exchange_finish() completes the round and
  // scatters into the ghost slots.  Between the two the caller may run any
  // *local* computation — the superstep engine computes interior vertices
  // there — but no collectives (enforced by the communicator).
  //
  // Double-buffer contract: the split-phase pack stages into its own buffer
  // (`async_bytes_`, distinct from the blocking path's `payload_bytes_`)
  // and the dirty set is cleared at *start*, immediately after the pack
  // consumed it.  `mark_changed` calls made between start and finish are
  // therefore recorded for the *next* round and cannot race the in-flight
  // payload; writes to `vals` between start and finish are likewise
  // invisible to the current round (the pack already copied them out).

  /// Collective.  Pack current boundary values and launch the wire round.
  /// `mode` resolves exactly as in exchange() (adaptive runs its allreduce
  /// here).  The round stays in flight until exchange_finish(); starting a
  /// second round or issuing any collective before that is a hard error.
  template <typename T>
  void exchange_start(std::span<const T> vals, parcomm::Communicator& comm,
                      GhostMode mode = GhostMode::kDense) {
    static_assert(std::is_trivially_copyable_v<T>);
    using Pair = SlotVal<T>;
    HG_CHECK_MSG(vals.size() >= n_total_,
                 "value array must cover locals + ghosts");
    HG_CHECK_MSG(!async_.valid(),
                 "exchange_start with a split-phase round already in flight");
    ThreadPool& tp = pf_.get();

    bool sparse = false;
    std::uint64_t changed_local = 0;
    if (mode != GhostMode::kDense) {
      changed_local = count_changed(tp);
      if (mode == GhostMode::kSparse) {
        sparse = true;
      } else {
        const std::uint64_t changed_global = comm.allreduce_sum(changed_local);
        sparse = static_cast<double>(changed_global * sizeof(Pair)) <
                 sparse_crossover_ *
                     static_cast<double>(entries_global_ * sizeof(T));
      }
    }

    // The wire round ships bytes (counts scaled by the record size) so the
    // in-flight handle is type-erased; receivers reassemble whole records.
    const std::size_t p = send_counts_.size();
    std::vector<std::uint64_t> bcounts(p);
    if (sparse) {
      async_bytes_.resize(changed_local * sizeof(Pair));
      Pair* pairs = reinterpret_cast<Pair*>(async_bytes_.data());
      {
        obs::Span sp(obs::span_name::kGhostPack);
        pack_sparse(vals.data(), pairs, tp);
        comm.phase_timer().add_pack(sp.close());
      }
      for (std::size_t d = 0; d < p; ++d)
        bcounts[d] = chg_counts_[d] * sizeof(Pair);
    } else {
      async_bytes_.resize(send_local_.size() * sizeof(T));
      T* send = reinterpret_cast<T*>(async_bytes_.data());
      {
        obs::Span sp(obs::span_name::kGhostPack);
        tp.for_range(0, send_local_.size(), sched_,
                     [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                       for (std::uint64_t i = lo; i < hi; ++i)
                         send[i] = vals[send_local_[i]];
                     });
        comm.phase_timer().add_pack(sp.close());
      }
      for (std::size_t d = 0; d < p; ++d)
        bcounts[d] = send_counts_[d] * sizeof(T);
    }

    obs::counter(obs::counter_name::kWireBytes,
                 static_cast<double>(async_bytes_.size()));
    async_ = comm.ialltoallv<std::uint8_t>(
        {async_bytes_.data(), async_bytes_.size()}, bcounts, pool_);
    async_wire_ = sparse ? GhostMode::kSparse : GhostMode::kDense;
    async_elem_ = sizeof(T);
    async_changed_ = changed_local;
    last_round_mode_ = async_wire_;
    // Clear at start: the pack above consumed the dirty set, so marks made
    // from here on belong to the next round (double-buffer contract).
    clear_dirty(tp);
  }

  /// Collective.  Complete the in-flight round: wait for the payload and
  /// scatter into ghost slots (overwrite semantics, like exchange()).  The
  /// optional `changed_ghosts` matches exchange()'s contract.  T must be
  /// the same type the round was started with.
  template <typename T>
  void exchange_finish(std::span<T> vals, parcomm::Communicator& comm,
                       std::vector<lvid_t>* changed_ghosts = nullptr) {
    exchange_finish_combining(vals, comm, OverwriteCombine{}, changed_ghosts);
  }

  /// Collective.  As exchange_finish(), with a combine hook (the split-phase
  /// analogue of exchange_combining).
  template <typename T, typename F>
  void exchange_finish_combining(std::span<T> vals,
                                 parcomm::Communicator& comm, F&& combine,
                                 std::vector<lvid_t>* changed_ghosts =
                                     nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    using Pair = SlotVal<T>;
    HG_CHECK_MSG(async_.valid(),
                 "exchange_finish without a round in flight");
    HG_CHECK_MSG(async_elem_ == sizeof(T),
                 "exchange_finish element type differs from exchange_start");
    ThreadPool& tp = pf_.get();
    if (changed_ghosts) changed_ghosts->clear();

    std::vector<std::uint64_t> rbytes;
    const std::vector<std::uint8_t> recv = async_.wait(&rbytes);

    auto& st = comm.stats();
    if (async_wire_ == GhostMode::kSparse) {
      std::vector<std::uint64_t> rcounts(rbytes.size());
      for (std::size_t s = 0; s < rbytes.size(); ++s) {
        HG_DCHECK(rbytes[s] % sizeof(Pair) == 0);
        rcounts[s] = rbytes[s] / sizeof(Pair);
      }
      obs::Span sp(obs::span_name::kGhostScatter);
      scatter_sparse(vals, reinterpret_cast<const Pair*>(recv.data()),
                     recv.size() / sizeof(Pair), rcounts, tp, changed_ghosts,
                     combine);
      comm.phase_timer().add_pack(sp.close());
      ++st.ghost_rounds_sparse;
      st.ghost_bytes_saved +=
          static_cast<std::int64_t>(send_local_.size() * sizeof(T)) -
          static_cast<std::int64_t>(async_changed_ * sizeof(Pair));
    } else {
      HG_DCHECK(recv.size() == recv_local_.size() * sizeof(T));
      obs::Span sp(obs::span_name::kGhostScatter);
      scatter_dense(vals, reinterpret_cast<const T*>(recv.data()),
                    recv.size() / sizeof(T), tp, changed_ghosts, combine);
      comm.phase_timer().add_pack(sp.close());
      ++st.ghost_rounds_dense;
    }
    ++st.ghost_rounds_async;
  }

  /// True while a split-phase round is in flight (between start and finish).
  bool exchange_pending() const { return async_.valid(); }

  /// Collective.  Reverse flow: every rank sends the current value of each
  /// of its *ghost* slots back to the vertex's owner; the owner folds all
  /// incoming replica values into its own slot,
  ///
  ///     vals[v] = combine(vals[v], replica_value)   (once per holding rank)
  ///
  /// in source-rank order.  This is the OR-aggregation step of the
  /// bit-parallel MS-BFS frontier push (ghost-accumulated visit masks merge
  /// at the owner); with `plus` it is a ghost-side partial-sum reduction.
  template <typename T, typename F>
  void reduce(std::span<T> vals, parcomm::Communicator& comm, F&& combine) {
    static_assert(std::is_trivially_copyable_v<T>);
    HG_CHECK_MSG(vals.size() >= n_total_,
                 "value array must cover locals + ghosts");
    ThreadPool& tp = pf_.get();

    payload_bytes_.resize(recv_local_.size() * sizeof(T));
    T* send = reinterpret_cast<T*>(payload_bytes_.data());
    {
      obs::Span sp(obs::span_name::kGhostPack);
      tp.for_range(0, recv_local_.size(), sched_,
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     for (std::uint64_t i = lo; i < hi; ++i)
                       send[i] = vals[recv_local_[i]];
                   });
      comm.phase_timer().add_pack(sp.close());
    }
    obs::counter(obs::counter_name::kWireBytes,
                 static_cast<double>(payload_bytes_.size()));
    const std::vector<T> back = comm.alltoallv<T>(
        {send, recv_local_.size()}, recv_counts_, nullptr, pool_);
    // Each source rank returns exactly the segment this rank sent it at
    // setup, so `back` aligns 1:1 with the retained send queue.
    HG_DCHECK(back.size() == send_local_.size());
    {
      obs::Span sp(obs::span_name::kGhostReduce);
      // Serial fold: a boundary vertex retained for several destination
      // tasks occupies one slot per task, so parallel segment processing
      // would race on vals[v].
      for (std::size_t i = 0; i < back.size(); ++i) {
        T& dst = vals[send_local_[i]];
        dst = combine(dst, back[i]);
      }
      comm.phase_timer().add_pack(sp.close());
    }
    ++comm.stats().ghost_rounds_reduce;
  }

  /// Adjacency rule this plan was built with (callers sharing one plan
  /// across analytics check compatibility against it).
  Adjacency adjacency() const { return adj_; }

  /// Number of (vertex, task) pairs sent each dense iteration.
  std::uint64_t send_entries() const { return send_local_.size(); }
  /// Number of ghost updates received each dense iteration.
  std::uint64_t recv_entries() const { return recv_local_.size(); }
  /// Global number of retained queue entries (allreduced at setup).
  std::uint64_t entries_global() const { return entries_global_; }

  /// Local ids (owner side) of each retained queue slot, grouped by
  /// destination task.  Exposed for the rebuild-ablation and tests.
  std::span<const lvid_t> send_local() const { return send_local_; }
  std::span<const std::uint64_t> send_counts() const { return send_counts_; }

  /// Wire format the most recent exchange() round actually used — for
  /// kAdaptive this is the *resolved* choice (kDense or kSparse), so
  /// per-superstep telemetry can record what went on the wire without
  /// diffing CommStats counters.  kAdaptive until the first exchange.
  GhostMode last_round_mode() const { return last_round_mode_; }

 private:
  template <typename T, typename F>
  void exchange_impl(std::span<T> vals, parcomm::Communicator& comm,
                     GhostMode mode, std::vector<lvid_t>* changed_ghosts,
                     F&& combine) {
    static_assert(std::is_trivially_copyable_v<T>);
    HG_CHECK_MSG(vals.size() >= n_total_,
                 "value array must cover locals + ghosts");
    ThreadPool& tp = pf_.get();
    if (changed_ghosts) changed_ghosts->clear();

    bool sparse = false;
    std::uint64_t changed_local = 0;
    if (mode != GhostMode::kDense) {
      changed_local = count_changed(tp);
      if (mode == GhostMode::kSparse) {
        sparse = true;
      } else {
        const std::uint64_t changed_global = comm.allreduce_sum(changed_local);
        sparse = static_cast<double>(changed_global * sizeof(SlotVal<T>)) <
                 sparse_crossover_ *
                     static_cast<double>(entries_global_ * sizeof(T));
      }
    }

    if (sparse) {
      exchange_sparse(vals, comm, tp, changed_local, changed_ghosts, combine);
    } else {
      exchange_dense(vals, comm, tp, changed_ghosts, combine);
    }
    last_round_mode_ = sparse ? GhostMode::kSparse : GhostMode::kDense;
    clear_dirty(tp);
  }

  // Dense round: refresh the full payload queue (ids are retained).
  template <typename T, typename F>
  void exchange_dense(std::span<T> vals, parcomm::Communicator& comm,
                      ThreadPool& tp, std::vector<lvid_t>* changed_ghosts,
                      F&& combine) {
    static_assert(std::is_trivially_copyable_v<T>);
    payload_bytes_.resize(send_local_.size() * sizeof(T));
    T* send = reinterpret_cast<T*>(payload_bytes_.data());
    {
      obs::Span sp(obs::span_name::kGhostPack);
      tp.for_range(0, send_local_.size(), sched_,
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     for (std::uint64_t i = lo; i < hi; ++i)
                       send[i] = vals[send_local_[i]];
                   });
      comm.phase_timer().add_pack(sp.close());
    }
    obs::counter(obs::counter_name::kWireBytes,
                 static_cast<double>(payload_bytes_.size()));
    const std::vector<T> recv = comm.alltoallv<T>(
        {send, send_local_.size()}, send_counts_, nullptr, pool_);
    {
      obs::Span sp(obs::span_name::kGhostScatter);
      scatter_dense(vals, recv.data(), recv.size(), tp, changed_ghosts,
                    combine);
      comm.phase_timer().add_pack(sp.close());
    }
    ++comm.stats().ghost_rounds_dense;
  }

  // Dense scatter back-half, shared by the blocking and split-phase paths.
  // Race-free under combine: each ghost slot has exactly one owner, so it
  // appears at most once in recv_local_.
  template <typename T, typename F>
  void scatter_dense(std::span<T> vals, const T* recv, std::uint64_t n,
                     ThreadPool& tp, std::vector<lvid_t>* changed_ghosts,
                     F&& combine) {
    if (!changed_ghosts) {
      tp.for_range(0, n, sched_,
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     for (std::uint64_t i = lo; i < hi; ++i) {
                       T& dst = vals[recv_local_[i]];
                       dst = combine(dst, recv[i]);
                     }
                   });
    } else {
      // Per-chunk changed lists concatenated in chunk order: the reported
      // list is deterministic under every schedule and thread count.
      const ChunkGrid grid = make_grid(sched_, n, {}, tp.num_threads());
      std::vector<std::vector<lvid_t>> cchg(grid.size());
      tp.for_chunks(grid, sched_,
                    [&](unsigned, std::uint64_t c, const Chunk& ck) {
                      auto& out = cchg[c];
                      for (std::uint64_t i = ck.begin; i < ck.end; ++i) {
                        const lvid_t l = recv_local_[i];
                        const T nv = combine(vals[l], recv[i]);
                        if (vals[l] != nv) out.push_back(l);
                        vals[l] = nv;
                      }
                    });
      for (const auto& c : cchg)
        changed_ghosts->insert(changed_ghosts->end(), c.begin(), c.end());
    }
  }

  // Sparse pack: pass 2 of the count/fill scheme over the fixed slot grid.
  // Chunk c's write cursor in destination d starts at chg_chunk_base_[c*p+d]
  // (sdispl[d] plus every lower chunk's count, precomputed serially by
  // count_changed), so pairs land slot-ordered per destination regardless
  // of which thread runs which chunk — the wire payload is bit-identical
  // under every schedule and thread count.
  template <typename T>
  void pack_sparse(const T* vals, SlotVal<T>* pairs, ThreadPool& tp) {
    const std::size_t p = send_counts_.size();
    tp.for_chunks(slot_grid_, sched_,
                  [&](unsigned, std::uint64_t c, const Chunk& ck) {
                    std::vector<std::uint64_t> cur(
                        chg_chunk_base_.begin() +
                            static_cast<std::ptrdiff_t>(c * p),
                        chg_chunk_base_.begin() +
                            static_cast<std::ptrdiff_t>((c + 1) * p));
                    std::size_t d = dest_of_slot(ck.begin);
                    for (std::uint64_t i = ck.begin; i < ck.end; ++i) {
                      while (i >= send_displs_[d + 1]) ++d;
                      const lvid_t v = send_local_[i];
                      if (!dirty_[v]) continue;
                      pairs[cur[d]++] = SlotVal<T>{
                          static_cast<std::uint32_t>(i - send_displs_[d]),
                          vals[v]};
                    }
                  });
  }

  // Sparse round: ship (slot, value) pairs for the `changed_local` marked
  // slots counted by count_changed() (which also filled the per-chunk
  // counts and cursor bases over the fixed slot grid).
  template <typename T, typename F>
  void exchange_sparse(std::span<T> vals, parcomm::Communicator& comm,
                       ThreadPool& tp, std::uint64_t changed_local,
                       std::vector<lvid_t>* changed_ghosts, F&& combine) {
    using Pair = SlotVal<T>;
    static_assert(std::is_trivially_copyable_v<Pair>);
    payload_bytes_.resize(changed_local * sizeof(Pair));
    Pair* pairs = reinterpret_cast<Pair*>(payload_bytes_.data());
    {
      obs::Span sp(obs::span_name::kGhostPack);
      pack_sparse(vals.data(), pairs, tp);
      comm.phase_timer().add_pack(sp.close());
    }

    obs::counter(obs::counter_name::kWireBytes,
                 static_cast<double>(payload_bytes_.size()));
    std::vector<std::uint64_t> rcounts;
    const std::vector<Pair> recv = comm.alltoallv<Pair>(
        {pairs, changed_local}, chg_counts_, &rcounts, pool_);

    {
      obs::Span sp(obs::span_name::kGhostScatter);
      scatter_sparse(vals, recv.data(), recv.size(), rcounts, tp,
                     changed_ghosts, combine);
      comm.phase_timer().add_pack(sp.close());
    }

    auto& st = comm.stats();
    ++st.ghost_rounds_sparse;
    st.ghost_bytes_saved +=
        static_cast<std::int64_t>(send_local_.size() * sizeof(T)) -
        static_cast<std::int64_t>(changed_local * sizeof(Pair));
  }

  // Sparse scatter back-half, shared by the blocking and split-phase paths:
  // the pair from source s updates recv_local_[recv_displs_[s] + slot].
  template <typename T, typename F>
  void scatter_sparse(std::span<T> vals, const SlotVal<T>* recv,
                      std::uint64_t n, std::span<const std::uint64_t> rcounts,
                      ThreadPool& tp, std::vector<lvid_t>* changed_ghosts,
                      F&& combine) {
    using Pair = SlotVal<T>;
    const std::vector<std::uint64_t> rdispl = csr_offsets(rcounts);
    const ChunkGrid grid = make_grid(sched_, n, {}, tp.num_threads());
    std::vector<std::vector<lvid_t>> cchg(changed_ghosts ? grid.size() : 0);
    tp.for_chunks(grid, sched_,
                  [&](unsigned, std::uint64_t c, const Chunk& ck) {
      std::size_t s =
          static_cast<std::size_t>(
              std::upper_bound(rdispl.begin(), rdispl.end(), ck.begin) -
              rdispl.begin()) -
          1;
      for (std::uint64_t j = ck.begin; j < ck.end; ++j) {
        while (j >= rdispl[s + 1]) ++s;
        const Pair& pr = recv[j];
        const std::uint64_t pos = recv_displs_[s] + pr.slot;
        HG_DCHECK(pos < recv_displs_[s + 1]);
        const lvid_t l = recv_local_[pos];
        const T nv = combine(vals[l], pr.value);
        if (changed_ghosts && vals[l] != nv) cchg[c].push_back(l);
        vals[l] = nv;
      }
    });
    // Chunk-order concatenation keeps the reported list deterministic.
    if (changed_ghosts)
      for (const auto& c : cchg)
        changed_ghosts->insert(changed_ghosts->end(), c.begin(), c.end());
  }

  /// Destination task owning retained slot i (segments are contiguous).
  std::size_t dest_of_slot(std::uint64_t i) const {
    return static_cast<std::size_t>(
               std::upper_bound(send_displs_.begin(), send_displs_.end(), i) -
               send_displs_.begin()) -
           1;
  }

  /// Count dirty slots per destination, per chunk of the fixed slot grid
  /// (chg_chunk_counts_), fold into chg_counts_ and precompute the pack
  /// cursor bases (chg_chunk_base_); returns the total.  Non-template,
  /// lives in the .cpp.
  std::uint64_t count_changed(ThreadPool& tp);
  void clear_dirty(ThreadPool& tp);

  std::vector<lvid_t> send_local_;          // retained vertex queue (local ids)
  std::vector<std::uint64_t> send_counts_;  // per-task counts
  std::vector<std::uint64_t> send_displs_;  // CSR offsets of send segments
  std::vector<lvid_t> recv_local_;          // retained receive targets
  std::vector<std::uint64_t> recv_displs_;  // CSR offsets per source task
  std::vector<std::uint64_t> recv_counts_;  // per-source counts (reduce path)
  std::vector<std::uint8_t> payload_bytes_; // reused per-iteration buffer
  std::vector<std::uint8_t> async_bytes_;   // split-phase pack staging
                                            // (double buffer: must outlive
                                            // the in-flight round)
  parcomm::PendingExchange<std::uint8_t> async_;  // in-flight wire round
  GhostMode async_wire_ = GhostMode::kDense;  // resolved wire of the round
  std::uint32_t async_elem_ = 0;            // sizeof(T) of the round
  std::uint64_t async_changed_ = 0;         // changed slots shipped (sparse)
  std::vector<std::uint8_t> dirty_;         // per local vertex changed flag
  ChunkGrid slot_grid_;                     // fixed grid over retained slots
  std::vector<std::uint64_t> chg_chunk_counts_;  // [chunk*p + dest] changed
  std::vector<std::uint64_t> chg_chunk_base_;    // [chunk*p + dest] cursors
  std::vector<std::uint64_t> chg_counts_;        // per-dest changed
  ThreadPool* pool_ = nullptr;
  PoolFallback pf_{nullptr};                // persistent pool-or-inline
  Adjacency adj_ = Adjacency::kBoth;        // rule the plan was built with
  Schedule sched_ = Schedule::kStatic;      // pack/scatter loop schedule
  std::uint64_t entries_global_ = 0;        // allreduced send entries
  double sparse_crossover_ = 1.0;           // adaptive byte-cost factor
  std::size_t n_total_ = 0;                 // locals + ghosts, for checking
  GhostMode last_round_mode_ = GhostMode::kAdaptive;  // resolved last round
};

/// Collective.  One-shot ghost refresh through a *freshly built* queue —
/// the `retain_queues == false` ablation path shared by the engine-ported
/// analytics.  A fresh queue has no change history, so the sparse contract
/// ("every unmarked ghost already mirrors its owner") cannot be certified;
/// the round therefore always goes dense regardless of what mode the caller
/// runs retained exchanges with.  `changed_ghosts`, if non-null, still
/// receives the ghost slots whose value actually changed (dense rounds
/// compute it by comparison), so flip-driven analytics (k-core) stay correct
/// under the ablation.
template <typename T>
void exchange_fresh(const DistGraph& g, parcomm::Communicator& comm,
                    Adjacency adj, ThreadPool* pool, std::span<T> vals,
                    std::vector<lvid_t>* changed_ghosts = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  GhostExchange fresh(g, comm, adj, pool);
  fresh.exchange<T>(vals, comm, GhostMode::kDense, changed_ghosts);
}

}  // namespace hpcgraph::dgraph
