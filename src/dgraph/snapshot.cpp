#include "dgraph/snapshot.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace hpcgraph::dgraph {

namespace {

constexpr std::uint64_t kMagic = 0x48504752'534e4150ULL;  // "HPGRSNAP"
constexpr std::uint64_t kVersion = 1;

/// RAII stdio handle (buffered sequential I/O fits snapshots well).
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {
    HG_CHECK_MSG(f_ != nullptr, "cannot open snapshot file " << path);
  }
  ~File() {
    if (f_) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

void put_u64(std::FILE* f, std::uint64_t v) {
  HG_CHECK(std::fwrite(&v, sizeof v, 1, f) == 1);
}

std::uint64_t get_u64(std::FILE* f) {
  std::uint64_t v = 0;
  HG_CHECK_MSG(std::fread(&v, sizeof v, 1, f) == 1,
               "snapshot truncated (scalar)");
  return v;
}

template <typename T>
void put_vec(std::FILE* f, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_u64(f, v.size());
  if (!v.empty())
    HG_CHECK(std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size());
}

template <typename T>
std::vector<T> get_vec(std::FILE* f) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t size = get_u64(f);
  std::vector<T> v(size);
  if (size)
    HG_CHECK_MSG(std::fread(v.data(), sizeof(T), size, f) == size,
                 "snapshot truncated (array)");
  return v;
}

std::string rank_path(const std::string& prefix, int rank) {
  return prefix + "." + std::to_string(rank);
}

}  // namespace

void save_snapshot(const DistGraph& g, parcomm::Communicator& comm,
                   const std::string& path_prefix) {
  File f(rank_path(path_prefix, g.rank()), "wb");
  std::FILE* fp = f.get();
  put_u64(fp, kMagic);
  put_u64(fp, kVersion);
  put_u64(fp, static_cast<std::uint64_t>(g.rank()));
  put_u64(fp, static_cast<std::uint64_t>(g.nranks()));
  put_vec(fp, g.part_.serialize());
  put_u64(fp, g.n_global_);
  put_u64(fp, g.m_global_);
  put_u64(fp, g.n_loc_);
  put_u64(fp, g.n_gst_);
  put_vec(fp, g.out_index_);
  put_vec(fp, g.out_edges_);
  put_vec(fp, g.in_index_);
  put_vec(fp, g.in_edges_);
  put_vec(fp, g.unmap_);
  put_vec(fp, g.ghost_task_);
  comm.barrier();  // snapshot complete on every rank before returning
}

DistGraph load_snapshot(parcomm::Communicator& comm,
                        const std::string& path_prefix) {
  File f(rank_path(path_prefix, comm.rank()), "rb");
  std::FILE* fp = f.get();
  HG_CHECK_MSG(get_u64(fp) == kMagic, "not an hpcgraph snapshot");
  HG_CHECK_MSG(get_u64(fp) == kVersion, "unsupported snapshot version");
  HG_CHECK_MSG(get_u64(fp) == static_cast<std::uint64_t>(comm.rank()),
               "snapshot written by a different rank");
  HG_CHECK_MSG(get_u64(fp) == static_cast<std::uint64_t>(comm.size()),
               "snapshot written with a different rank count");

  const std::vector<std::uint64_t> part_blob = get_vec<std::uint64_t>(fp);
  DistGraph g(Partition::deserialize(part_blob), comm.rank());
  g.n_global_ = get_u64(fp);
  g.m_global_ = get_u64(fp);
  g.n_loc_ = static_cast<lvid_t>(get_u64(fp));
  g.n_gst_ = static_cast<lvid_t>(get_u64(fp));
  g.out_index_ = get_vec<ecnt_t>(fp);
  g.out_edges_ = get_vec<lvid_t>(fp);
  g.in_index_ = get_vec<ecnt_t>(fp);
  g.in_edges_ = get_vec<lvid_t>(fp);
  g.unmap_ = get_vec<gvid_t>(fp);
  g.ghost_task_ = get_vec<std::int32_t>(fp);

  // Sanity: array sizes must cohere before rebuilding the hash map.
  HG_CHECK(g.out_index_.size() == static_cast<std::size_t>(g.n_loc_) + 1);
  HG_CHECK(g.in_index_.size() == static_cast<std::size_t>(g.n_loc_) + 1);
  HG_CHECK(g.unmap_.size() ==
           static_cast<std::size_t>(g.n_loc_) + g.n_gst_);
  HG_CHECK(g.ghost_task_.size() == g.n_gst_);
  HG_CHECK(g.out_index_.back() == g.out_edges_.size());
  HG_CHECK(g.in_index_.back() == g.in_edges_.size());

  // The global->local hash map is cheaper to rebuild than to store.
  g.map_.reserve(g.unmap_.size() * 2);
  for (lvid_t l = 0; l < g.n_total(); ++l) g.map_.insert(g.unmap_[l], l);

  g.build_vertex_classes();

  comm.barrier();
  return g;
}

}  // namespace hpcgraph::dgraph
