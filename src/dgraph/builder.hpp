#pragma once
/// \file builder.hpp
/// Distributed graph construction — §III-A of the paper.
///
/// Three stages, individually timed (Table III):
///   * **Read**: every rank reads a contiguous ~m/p chunk of the binary edge
///     file (io::read_edge_chunk).
///   * **Exchange**: edges are redistributed with Alltoallv so each rank
///     holds all out-edges of its owned vertices; then the edge list is
///     reversed and exchanged again for in-edges.
///   * **LConv**: per-rank conversion to the CSR representation of Table II
///     with ghost relabeling.
///
/// No preprocessing: vertex ids are used as given, duplicate edges and
/// self-loops are preserved.

#include <string>

#include "dgraph/dist_graph.hpp"
#include "gen/edge_list.hpp"
#include "io/binary_edge_io.hpp"
#include "parcomm/comm.hpp"

namespace hpcgraph::dgraph {

/// Per-stage wall times of one rank's construction (seconds).
struct BuildTiming {
  double read = 0;
  double exchange = 0;
  double lconv = 0;
  double total() const { return read + exchange + lconv; }
};

/// Builds DistGraph instances; all methods are collective (every rank of the
/// communicator must call with consistent arguments).
class Builder {
 public:
  /// End-to-end pipeline from a binary edge file.
  /// \param n_global  Vertex-id space; pass 0 to derive max_id+1 globally.
  static DistGraph from_file(parcomm::Communicator& comm,
                             const std::string& path, io::EdgeFormat format,
                             PartitionKind kind, gvid_t n_global = 0,
                             BuildTiming* timing = nullptr,
                             std::uint64_t part_seed = 0);

  /// Test/bench convenience: every rank slices its chunk from a shared
  /// in-memory edge list (skips the Read stage).
  static DistGraph from_edge_list(parcomm::Communicator& comm,
                                  const gen::EdgeList& graph,
                                  PartitionKind kind,
                                  BuildTiming* timing = nullptr,
                                  std::uint64_t part_seed = 0);

  /// Same, with a caller-supplied partition (e.g. an explicit PuLP map).
  static DistGraph from_edge_list(parcomm::Communicator& comm,
                                  const gen::EdgeList& graph,
                                  const Partition& part,
                                  BuildTiming* timing = nullptr);

  /// Core pipeline given this rank's edge chunk and a ready partition.
  static DistGraph from_chunk(parcomm::Communicator& comm, gvid_t n_global,
                              std::vector<gen::Edge> chunk,
                              const Partition& part,
                              BuildTiming* timing = nullptr);

  /// Collective partition construction (edge-block needs a globally reduced
  /// degree histogram of the chunks).
  static Partition make_partition(parcomm::Communicator& comm,
                                  PartitionKind kind, gvid_t n_global,
                                  std::span<const gen::Edge> chunk,
                                  std::uint64_t seed = 0);
};

}  // namespace hpcgraph::dgraph
