#pragma once
/// \file partition.hpp
/// One-dimensional vertex partitioning — §III-B of the paper.
///
/// Three strategies:
///   * vertex block ("np"): each task owns ~n/p consecutive vertex ids.
///   * edge block ("mp"): consecutive id ranges cut so each task owns ~m/p
///     out-edges (computed from a bucketed degree histogram, so the cut scales
///     to graphs whose full degree array would not fit one task).
///   * random ("rand"): owner(v) = hash(v) mod p.
///
/// Block strategies preserve the natural vertex ordering (better locality,
/// fewer ghosts on graphs whose ids encode crawl order); random gives the
/// best balance.  Figure 3 and Table IV quantify the trade-off.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace hpcgraph::dgraph {

enum class PartitionKind {
  kVertexBlock,
  kEdgeBlock,
  kRandom,
  kExplicit,  ///< arbitrary per-vertex owner map (e.g. from pulp_partition)
};

/// Short label used in bench tables ("np" / "mp" / "rand"), matching the
/// paper's WC-np / WC-mp / WC-rand naming.
inline const char* partition_label(PartitionKind k) {
  switch (k) {
    case PartitionKind::kVertexBlock: return "np";
    case PartitionKind::kEdgeBlock: return "mp";
    case PartitionKind::kRandom: return "rand";
    case PartitionKind::kExplicit: return "expl";
  }
  return "?";
}

/// Maps every global vertex id to its owning task.  Cheap to copy; each rank
/// keeps its own instance (no shared state, as in a real MPI program).
class Partition {
 public:
  /// ~n/p consecutive vertices per task.
  static Partition vertex_block(gvid_t n, int nranks) {
    Partition part(PartitionKind::kVertexBlock, n, nranks);
    part.bounds_.resize(nranks + 1);
    const gvid_t base = n / nranks, extra = n % nranks;
    gvid_t at = 0;
    for (int r = 0; r <= nranks; ++r) {
      part.bounds_[r] = at;
      if (r < nranks) at += base + (static_cast<gvid_t>(r) < extra ? 1 : 0);
    }
    part.bounds_[nranks] = n;
    return part;
  }

  /// Consecutive ranges cut at ~m/p cumulative out-edges.
  /// \param bucket_degrees  Out-edge counts for `buckets` equal-width vertex
  ///                        ranges (globally reduced); the cut is made at
  ///                        bucket granularity.
  static Partition edge_block(gvid_t n, int nranks,
                              std::span<const std::uint64_t> bucket_degrees) {
    Partition part(PartitionKind::kEdgeBlock, n, nranks);
    HG_CHECK(!bucket_degrees.empty());
    const std::size_t buckets = bucket_degrees.size();
    std::uint64_t m_total = 0;
    for (const auto d : bucket_degrees) m_total += d;

    part.bounds_.assign(nranks + 1, n);
    part.bounds_[0] = 0;
    std::uint64_t run = 0;
    int next_cut = 1;
    for (std::size_t b = 0; b < buckets && next_cut < nranks; ++b) {
      run += bucket_degrees[b];
      // Cut after bucket b once we pass the next 1/p share of edges.
      while (next_cut < nranks &&
             run * nranks >= static_cast<std::uint64_t>(next_cut) * m_total) {
        const gvid_t edge_at = bucket_end(n, buckets, b);
        part.bounds_[next_cut] = edge_at;
        ++next_cut;
      }
    }
    // Monotonicity guard for degenerate histograms.
    for (int r = 1; r <= nranks; ++r)
      part.bounds_[r] = std::max(part.bounds_[r], part.bounds_[r - 1]);
    part.bounds_[nranks] = n;
    return part;
  }

  /// owner(v) = hash(v ^ seed) mod p.
  static Partition random(gvid_t n, int nranks, std::uint64_t seed = 0) {
    Partition part(PartitionKind::kRandom, n, nranks);
    part.seed_ = seed;
    return part;
  }

  /// Arbitrary per-vertex owner map, shared (read-only) between the rank
  /// copies.  This is the "more complex partitioning or reordering
  /// scenarios" case of §III-C, for which the ghost `tasks` array is held
  /// explicitly.  Produced e.g. by pulp_partition (§VII future work).
  static Partition explicit_map(
      gvid_t n, int nranks,
      std::shared_ptr<const std::vector<std::int32_t>> owner) {
    Partition part(PartitionKind::kExplicit, n, nranks);
    HG_CHECK(owner && owner->size() == n);
    for (const std::int32_t o : *owner)
      HG_CHECK_MSG(o >= 0 && o < nranks, "owner map entry out of range");
    part.owner_map_ = std::move(owner);
    return part;
  }

  PartitionKind kind() const { return kind_; }
  gvid_t n_global() const { return n_; }
  int nranks() const { return nranks_; }

  /// Owning task of a global vertex id.  Hot path: O(1) for random, O(log p)
  /// for the block strategies.
  int owner(gvid_t v) const {
    HG_DCHECK(v < n_);
    if (kind_ == PartitionKind::kRandom) {
      return static_cast<int>(splitmix64(v ^ seed_) %
                              static_cast<std::uint64_t>(nranks_));
    }
    if (kind_ == PartitionKind::kExplicit) return (*owner_map_)[v];
    const auto it =
        std::upper_bound(bounds_.begin(), bounds_.end(), v);
    return static_cast<int>(it - bounds_.begin()) - 1;
  }

  bool is_block() const {
    return kind_ == PartitionKind::kVertexBlock ||
           kind_ == PartitionKind::kEdgeBlock;
  }

  /// Number of vertices owned by `rank`.
  gvid_t num_owned(int rank) const {
    if (is_block()) return bounds_[rank + 1] - bounds_[rank];
    // Random/explicit: count by scanning the id space.
    gvid_t count = 0;
    for (gvid_t v = 0; v < n_; ++v)
      if (owner(v) == rank) ++count;
    return count;
  }

  /// All vertices owned by `rank`, in increasing global-id order.  This
  /// ordering defines the local-id assignment of DistGraph.
  std::vector<gvid_t> owned_vertices(int rank) const {
    std::vector<gvid_t> out;
    if (is_block()) {
      out.reserve(bounds_[rank + 1] - bounds_[rank]);
      for (gvid_t v = bounds_[rank]; v < bounds_[rank + 1]; ++v)
        out.push_back(v);
    } else {
      out.reserve(n_ / nranks_ + 16);
      for (gvid_t v = 0; v < n_; ++v)
        if (owner(v) == rank) out.push_back(v);
    }
    return out;
  }

  /// Block range of `rank` (block strategies only).
  std::pair<gvid_t, gvid_t> block_range(int rank) const {
    HG_CHECK(is_block());
    return {bounds_[rank], bounds_[rank + 1]};
  }

  /// Serialize to a flat word vector (snapshot files).  Layout:
  /// [kind, n, nranks, payload...] where payload is the bounds (block),
  /// the seed (random), or the full owner map (explicit).
  std::vector<std::uint64_t> serialize() const {
    std::vector<std::uint64_t> out{static_cast<std::uint64_t>(kind_), n_,
                                   static_cast<std::uint64_t>(nranks_)};
    switch (kind_) {
      case PartitionKind::kVertexBlock:
      case PartitionKind::kEdgeBlock:
        out.insert(out.end(), bounds_.begin(), bounds_.end());
        break;
      case PartitionKind::kRandom:
        out.push_back(seed_);
        break;
      case PartitionKind::kExplicit:
        for (const std::int32_t o : *owner_map_)
          out.push_back(static_cast<std::uint64_t>(o));
        break;
    }
    return out;
  }

  /// Inverse of serialize().
  static Partition deserialize(std::span<const std::uint64_t> words) {
    HG_CHECK(words.size() >= 3);
    const auto kind = static_cast<PartitionKind>(words[0]);
    const gvid_t n = words[1];
    const int nranks = static_cast<int>(words[2]);
    Partition part(kind, n, nranks);
    const auto payload = words.subspan(3);
    switch (kind) {
      case PartitionKind::kVertexBlock:
      case PartitionKind::kEdgeBlock:
        HG_CHECK(payload.size() == static_cast<std::size_t>(nranks) + 1);
        part.bounds_.assign(payload.begin(), payload.end());
        break;
      case PartitionKind::kRandom:
        HG_CHECK(payload.size() == 1);
        part.seed_ = payload[0];
        break;
      case PartitionKind::kExplicit: {
        HG_CHECK(payload.size() == n);
        auto owner = std::make_shared<std::vector<std::int32_t>>(n);
        for (gvid_t v = 0; v < n; ++v)
          (*owner)[v] = static_cast<std::int32_t>(payload[v]);
        part.owner_map_ = std::move(owner);
        break;
      }
    }
    return part;
  }

 private:
  Partition(PartitionKind kind, gvid_t n, int nranks)
      : kind_(kind), n_(n), nranks_(nranks) {
    HG_CHECK(nranks >= 1);
    HG_CHECK(n >= 1);
  }

  static gvid_t bucket_end(gvid_t n, std::size_t buckets, std::size_t b) {
    return static_cast<gvid_t>(
        (static_cast<unsigned __int128>(n) * (b + 1)) / buckets);
  }

  PartitionKind kind_;
  gvid_t n_;
  int nranks_;
  std::vector<gvid_t> bounds_;  // block strategies: nranks+1 boundaries
  std::uint64_t seed_ = 0;      // random strategy
  std::shared_ptr<const std::vector<std::int32_t>> owner_map_;  // explicit
};

/// Histogram of out-degrees over `buckets` equal-width vertex ranges,
/// computed from one rank's edge chunk; allreduce-sum the result across
/// ranks, then feed Partition::edge_block.
template <typename EdgeRange>
std::vector<std::uint64_t> degree_buckets(const EdgeRange& edges, gvid_t n,
                                          std::size_t buckets) {
  std::vector<std::uint64_t> h(buckets, 0);
  for (const auto& e : edges) {
    const std::size_t b = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(e.src) * buckets) / n);
    ++h[b];
  }
  return h;
}

}  // namespace hpcgraph::dgraph
