#include "dgraph/compressed_csr.hpp"

#include <algorithm>

namespace hpcgraph::dgraph {

namespace {

void encode_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

CompressedAdjacency CompressedAdjacency::encode(
    std::span<const ecnt_t> index, std::span<const lvid_t> edges) {
  HG_CHECK(!index.empty());
  const lvid_t n = static_cast<lvid_t>(index.size() - 1);

  CompressedAdjacency c;
  c.num_edges_ = edges.size();
  c.offsets_.reserve(n + 1);
  c.degrees_.reserve(n);
  // Typical web graphs compress to ~1.5-2 bytes/edge; reserve optimistically.
  c.bytes_.reserve(edges.size() * 2);

  std::vector<lvid_t> sorted;
  for (lvid_t v = 0; v < n; ++v) {
    c.offsets_.push_back(c.bytes_.size());
    sorted.assign(edges.begin() + index[v], edges.begin() + index[v + 1]);
    std::sort(sorted.begin(), sorted.end());
    c.degrees_.push_back(static_cast<std::uint32_t>(sorted.size()));
    lvid_t prev = 0;
    for (const lvid_t u : sorted) {
      encode_varint(c.bytes_, u - prev);  // first gap is from 0
      prev = u;
    }
  }
  c.offsets_.push_back(c.bytes_.size());
  c.bytes_.shrink_to_fit();
  return c;
}

}  // namespace hpcgraph::dgraph
