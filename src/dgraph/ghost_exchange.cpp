#include "dgraph/ghost_exchange.hpp"

#include <limits>

#include "util/prefix_sum.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::dgraph {

using parcomm::Communicator;

GhostExchange::GhostExchange(const DistGraph& g, Communicator& comm,
                             Adjacency adj, ThreadPool* pool)
    : pool_(pool), adj_(adj) {
  const int p = comm.size();
  const int me = comm.rank();
  PoolFallback pf(pool);
  ThreadPool& tp = pf.get();
  const unsigned nt = tp.num_threads();

  // Whether u (a local-or-ghost id adjacent to v) marks v as needed by u's
  // owner, per the requested direction.
  const auto scan_vertex = [&](lvid_t v, auto&& mark) {
    if (adj == Adjacency::kOut || adj == Adjacency::kBoth)
      for (const lvid_t u : g.out_neighbors(v))
        if (g.is_ghost(u)) mark(g.owner_of(u));
    if (adj == Adjacency::kIn || adj == Adjacency::kBoth)
      for (const lvid_t u : g.in_neighbors(v))
        if (g.is_ghost(u)) mark(g.owner_of(u));
  };

  // ---- Pass 1: count (v, task) pairs (Algorithm 1 lines 4-11). ----
  std::vector<std::vector<std::uint64_t>> tcounts(
      nt, std::vector<std::uint64_t>(p, 0));
  std::vector<std::vector<std::uint32_t>> tmarked(
      nt, std::vector<std::uint32_t>(p, 0));
  tp.for_range(0, g.n_loc(), [&](unsigned tid, std::uint64_t lo,
                                 std::uint64_t hi) {
    auto& counts = tcounts[tid];
    auto& marked = tmarked[tid];
    for (std::uint64_t v = lo; v < hi; ++v) {
      const std::uint32_t epoch = static_cast<std::uint32_t>(v) + 1;
      scan_vertex(static_cast<lvid_t>(v), [&](int t) {
        if (t == me || marked[t] == epoch) return;
        marked[t] = epoch;
        ++counts[t];
      });
    }
  });

  send_counts_.assign(p, 0);
  for (unsigned t = 0; t < nt; ++t)
    for (int r = 0; r < p; ++r) send_counts_[r] += tcounts[t][r];

  // ---- Pass 2: fill the retained queue (Algorithm 3 thread queuing). ----
  struct Slot {
    gvid_t gid;
    lvid_t lid;
  };
  MultiQueue<Slot> q(send_counts_);
  tp.for_range(0, g.n_loc(), [&](unsigned tid, std::uint64_t lo,
                                 std::uint64_t hi) {
    MultiQueue<Slot>::Sink sink(q);
    auto& marked = tmarked[tid];
    std::fill(marked.begin(), marked.end(), 0);
    for (std::uint64_t v = lo; v < hi; ++v) {
      const std::uint32_t epoch = static_cast<std::uint32_t>(v) + 1;
      const lvid_t lv = static_cast<lvid_t>(v);
      scan_vertex(lv, [&](int t) {
        if (t == me || marked[t] == epoch) return;
        marked[t] = epoch;
        sink.push(static_cast<std::uint32_t>(t),
                  Slot{g.global_id(lv), lv});
      });
    }
  });
  HG_CHECK(q.complete());

  // Split the queue into the retained local-id array and the one-shot
  // global-id payload for the initial exchange.
  send_local_.resize(q.total());
  std::vector<gvid_t> send_gids(q.total());
  {
    const auto& buf = q.buffer();
    for (std::size_t i = 0; i < buf.size(); ++i) {
      send_local_[i] = buf[i].lid;
      send_gids[i] = buf[i].gid;
    }
  }
  send_displs_ = csr_offsets(std::span<const std::uint64_t>(send_counts_));
  HG_CHECK_MSG(send_counts_[me] == 0, "retained queue must skip self");

  // Sparse rounds address slots with a uint32; a per-destination segment
  // larger than that cannot happen with lvid_t local ids, but keep the
  // invariant explicit.
  for (int r = 0; r < p; ++r)
    HG_CHECK(send_counts_[r] <= std::numeric_limits<std::uint32_t>::max());

  // ---- Initial id exchange; receivers decode to ghost ids once. ----
  std::vector<std::uint64_t> rcounts;
  const std::vector<gvid_t> recv_gids =
      comm.alltoallv<gvid_t>(send_gids, send_counts_, &rcounts);
  recv_displs_ = csr_offsets(std::span<const std::uint64_t>(rcounts));
  recv_counts_ = std::move(rcounts);
  recv_local_.resize(recv_gids.size());
  for (std::size_t i = 0; i < recv_gids.size(); ++i) {
    const lvid_t l = g.local_id_checked(recv_gids[i]);
    HG_CHECK_MSG(g.is_ghost(l), "ghost exchange received a non-ghost vertex");
    recv_local_[i] = l;
  }

  dirty_.assign(g.n_loc(), 0);
  chg_counts_.assign(p, 0);
  entries_global_ =
      comm.allreduce_sum(static_cast<std::uint64_t>(send_local_.size()));
  n_total_ = g.n_total();
}

std::uint64_t GhostExchange::count_changed(ThreadPool& tp) {
  const std::size_t p = send_counts_.size();
  const unsigned nt = tp.num_threads();
  if (chg_tcounts_.size() != nt)
    chg_tcounts_.resize(nt, std::vector<std::uint64_t>(p, 0));
  // Zero serially first: a thread whose chunk is empty never runs the lambda,
  // and stale counts from a previous round would corrupt the cursors.
  for (auto& counts : chg_tcounts_) counts.assign(p, 0);
  tp.for_range(0, send_local_.size(),
               [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
                 if (lo >= hi) return;
                 auto& counts = chg_tcounts_[tid];
                 std::size_t d = dest_of_slot(lo);
                 for (std::uint64_t i = lo; i < hi; ++i) {
                   while (i >= send_displs_[d + 1]) ++d;
                   counts[d] += dirty_[send_local_[i]];
                 }
               });
  std::uint64_t total = 0;
  std::fill(chg_counts_.begin(), chg_counts_.end(), 0);
  for (unsigned t = 0; t < nt; ++t)
    for (std::size_t d = 0; d < p; ++d) {
      chg_counts_[d] += chg_tcounts_[t][d];
      total += chg_tcounts_[t][d];
    }
  return total;
}

void GhostExchange::clear_dirty(ThreadPool& tp) {
  tp.for_range(0, dirty_.size(),
               [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                 std::fill(dirty_.begin() + static_cast<std::ptrdiff_t>(lo),
                           dirty_.begin() + static_cast<std::ptrdiff_t>(hi),
                           std::uint8_t{0});
               });
}

}  // namespace hpcgraph::dgraph
