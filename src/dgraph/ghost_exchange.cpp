#include "dgraph/ghost_exchange.hpp"

#include <limits>

#include "util/prefix_sum.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::dgraph {

using parcomm::Communicator;

GhostExchange::GhostExchange(const DistGraph& g, Communicator& comm,
                             Adjacency adj, ThreadPool* pool)
    : pool_(pool), pf_(pool), adj_(adj) {
  const int p = comm.size();
  const int me = comm.rank();
  ThreadPool& tp = pf_.get();
  const unsigned nt = tp.num_threads();

  // Whether u (a local-or-ghost id adjacent to v) marks v as needed by u's
  // owner, per the requested direction.
  const auto scan_vertex = [&](lvid_t v, auto&& mark) {
    if (adj == Adjacency::kOut || adj == Adjacency::kBoth)
      for (const lvid_t u : g.out_neighbors(v))
        if (g.is_ghost(u)) mark(g.owner_of(u));
    if (adj == Adjacency::kIn || adj == Adjacency::kBoth)
      for (const lvid_t u : g.in_neighbors(v))
        if (g.is_ghost(u)) mark(g.owner_of(u));
  };

  // ---- Pass 1: count (v, task) pairs (Algorithm 1 lines 4-11). ----
  std::vector<std::vector<std::uint64_t>> tcounts(
      nt, std::vector<std::uint64_t>(p, 0));
  std::vector<std::vector<std::uint32_t>> tmarked(
      nt, std::vector<std::uint32_t>(p, 0));
  tp.for_range(0, g.n_loc(), [&](unsigned tid, std::uint64_t lo,
                                 std::uint64_t hi) {
    auto& counts = tcounts[tid];
    auto& marked = tmarked[tid];
    for (std::uint64_t v = lo; v < hi; ++v) {
      const std::uint32_t epoch = static_cast<std::uint32_t>(v) + 1;
      scan_vertex(static_cast<lvid_t>(v), [&](int t) {
        if (t == me || marked[t] == epoch) return;
        marked[t] = epoch;
        ++counts[t];
      });
    }
  });

  send_counts_.assign(p, 0);
  for (unsigned t = 0; t < nt; ++t)
    for (int r = 0; r < p; ++r) send_counts_[r] += tcounts[t][r];

  // ---- Pass 2: fill the retained queue (Algorithm 3 thread queuing). ----
  struct Slot {
    gvid_t gid;
    lvid_t lid;
  };
  MultiQueue<Slot> q(send_counts_);
  tp.for_range(0, g.n_loc(), [&](unsigned tid, std::uint64_t lo,
                                 std::uint64_t hi) {
    MultiQueue<Slot>::Sink sink(q);
    auto& marked = tmarked[tid];
    std::fill(marked.begin(), marked.end(), 0);
    for (std::uint64_t v = lo; v < hi; ++v) {
      const std::uint32_t epoch = static_cast<std::uint32_t>(v) + 1;
      const lvid_t lv = static_cast<lvid_t>(v);
      scan_vertex(lv, [&](int t) {
        if (t == me || marked[t] == epoch) return;
        marked[t] = epoch;
        sink.push(static_cast<std::uint32_t>(t),
                  Slot{g.global_id(lv), lv});
      });
    }
  });
  HG_CHECK(q.complete());

  // Split the queue into the retained local-id array and the one-shot
  // global-id payload for the initial exchange.
  send_local_.resize(q.total());
  std::vector<gvid_t> send_gids(q.total());
  {
    const auto& buf = q.buffer();
    for (std::size_t i = 0; i < buf.size(); ++i) {
      send_local_[i] = buf[i].lid;
      send_gids[i] = buf[i].gid;
    }
  }
  send_displs_ = csr_offsets(std::span<const std::uint64_t>(send_counts_));
  HG_CHECK_MSG(send_counts_[me] == 0, "retained queue must skip self");

  // Sparse rounds address slots with a uint32; a per-destination segment
  // larger than that cannot happen with lvid_t local ids, but keep the
  // invariant explicit.
  for (int r = 0; r < p; ++r)
    HG_CHECK(send_counts_[r] <= std::numeric_limits<std::uint32_t>::max());

  // ---- Initial id exchange; receivers decode to ghost ids once. ----
  std::vector<std::uint64_t> rcounts;
  const std::vector<gvid_t> recv_gids =
      comm.alltoallv<gvid_t>(send_gids, send_counts_, &rcounts);
  recv_displs_ = csr_offsets(std::span<const std::uint64_t>(rcounts));
  recv_counts_ = std::move(rcounts);
  recv_local_.resize(recv_gids.size());
  for (std::size_t i = 0; i < recv_gids.size(); ++i) {
    const lvid_t l = g.local_id_checked(recv_gids[i]);
    HG_CHECK_MSG(g.is_ghost(l), "ghost exchange received a non-ghost vertex");
    recv_local_[i] = l;
  }

  dirty_.assign(g.n_loc(), 0);
  chg_counts_.assign(p, 0);
  // Fixed chunk grid over the retained slots: the sparse count/pack passes
  // key their cursors by chunk id, so the wire payload is independent of
  // schedule and thread count (see pack_sparse).
  slot_grid_ = ChunkGrid::items(send_local_.size());
  chg_chunk_counts_.assign(slot_grid_.size() * static_cast<std::size_t>(p), 0);
  chg_chunk_base_.assign(slot_grid_.size() * static_cast<std::size_t>(p), 0);
  entries_global_ =
      comm.allreduce_sum(static_cast<std::uint64_t>(send_local_.size()));
  n_total_ = g.n_total();
}

std::uint64_t GhostExchange::count_changed(ThreadPool& tp) {
  const std::size_t p = send_counts_.size();
  const std::size_t nc = slot_grid_.size();
  // Pass 1 of the count/fill scheme: per-chunk per-destination dirty counts
  // over the fixed slot grid.  Each chunk writes only its own row, so any
  // thread may run any chunk.
  tp.for_chunks(slot_grid_, sched_,
                [&](unsigned, std::uint64_t c, const Chunk& ck) {
                  std::uint64_t* counts = &chg_chunk_counts_[c * p];
                  std::fill(counts, counts + p, 0);
                  std::size_t d = dest_of_slot(ck.begin);
                  for (std::uint64_t i = ck.begin; i < ck.end; ++i) {
                    while (i >= send_displs_[d + 1]) ++d;
                    counts[d] += dirty_[send_local_[i]];
                  }
                });
  // Serial fold in chunk order: per-destination totals, then each chunk's
  // pack cursor base (sdispl[d] + all lower chunks' counts in d).
  std::uint64_t total = 0;
  std::fill(chg_counts_.begin(), chg_counts_.end(), 0);
  for (std::size_t c = 0; c < nc; ++c)
    for (std::size_t d = 0; d < p; ++d) {
      chg_chunk_base_[c * p + d] = chg_counts_[d];
      chg_counts_[d] += chg_chunk_counts_[c * p + d];
      total += chg_chunk_counts_[c * p + d];
    }
  const std::vector<std::uint64_t> sdispl =
      csr_offsets(std::span<const std::uint64_t>(chg_counts_));
  for (std::size_t c = 0; c < nc; ++c)
    for (std::size_t d = 0; d < p; ++d) chg_chunk_base_[c * p + d] += sdispl[d];
  return total;
}

void GhostExchange::clear_dirty(ThreadPool& tp) {
  tp.for_range(0, dirty_.size(), sched_,
               [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                 std::fill(dirty_.begin() + static_cast<std::ptrdiff_t>(lo),
                           dirty_.begin() + static_cast<std::ptrdiff_t>(hi),
                           std::uint8_t{0});
               });
}

}  // namespace hpcgraph::dgraph
