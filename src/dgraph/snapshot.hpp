#pragma once
/// \file snapshot.hpp
/// Distributed graph snapshots: persist the *built* Table-II representation
/// (CSR + ghost relabeling + partition) to one binary file per rank, and
/// reload it without repeating the Read/Exchange/LConv pipeline.
///
/// Motivation straight from the paper's end-to-end accounting: ingestion is
/// "the most memory-intensive part" and a large share of the 20-minute
/// budget (reading 1 TB + two Alltoallv exchanges of 24m bytes aggregate).
/// A workflow that analyzes the same graph repeatedly pays that once.
///
/// Format (per rank, little-endian u64 words unless noted): magic, version,
/// rank, nranks, partition blob, Table-II scalars, then the raw arrays.
/// Loading requires the same rank count; everything else (partition kind,
/// ghost layout) is restored from the file.

#include <string>

#include "dgraph/dist_graph.hpp"
#include "parcomm/comm.hpp"

namespace hpcgraph::dgraph {

/// Collective.  Writes "<path_prefix>.<rank>" for every rank.
void save_snapshot(const DistGraph& g, parcomm::Communicator& comm,
                   const std::string& path_prefix);

/// Collective.  Reloads a snapshot written by save_snapshot with the same
/// communicator size.  Throws CheckError on format/size mismatch.
DistGraph load_snapshot(parcomm::Communicator& comm,
                        const std::string& path_prefix);

}  // namespace hpcgraph::dgraph
