#include "dgraph/pulp_partition.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/label_counter.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"

namespace hpcgraph::dgraph {

std::vector<std::int32_t> pulp_partition(const gen::EdgeList& graph,
                                         int nparts,
                                         const PulpParams& params) {
  HG_CHECK(nparts >= 1);
  const gvid_t n = graph.n;
  std::vector<std::int32_t> owner(n);
  if (nparts == 1) return owner;

  // ---- Undirected CSR (in+out) for neighbour scans. ----
  std::vector<std::uint64_t> deg(n, 0);
  for (const gen::Edge& e : graph.edges) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  const std::vector<std::uint64_t> index =
      csr_offsets(std::span<const std::uint64_t>(deg));
  std::vector<gvid_t> adj(index.back());
  {
    std::vector<std::uint64_t> cur(index.begin(), index.end() - 1);
    for (const gen::Edge& e : graph.edges) {
      adj[cur[e.src]++] = e.dst;
      adj[cur[e.dst]++] = e.src;
    }
  }

  // ---- Balanced random initialization (hash-based, like kRandom). ----
  std::vector<std::uint64_t> part_verts(nparts, 0), part_edges(nparts, 0);
  for (gvid_t v = 0; v < n; ++v) {
    owner[v] = static_cast<std::int32_t>(
        splitmix64(v ^ params.seed) % static_cast<std::uint64_t>(nparts));
    ++part_verts[owner[v]];
    part_edges[owner[v]] += deg[v];
  }

  const double np = static_cast<double>(nparts);
  const std::uint64_t max_verts = static_cast<std::uint64_t>(
      params.vertex_balance * static_cast<double>(n) / np + 1);
  const std::uint64_t max_edges = static_cast<std::uint64_t>(
      params.edge_balance * static_cast<double>(index.back()) / np + 1);

  // ---- Constrained label-propagation refinement. ----
  LabelCounter affinity;
  for (int sweep = 0; sweep < params.sweeps; ++sweep) {
    bool moved = false;
    for (gvid_t v = 0; v < n; ++v) {
      if (deg[v] == 0) continue;
      affinity.clear();
      for (std::uint64_t i = index[v]; i < index[v + 1]; ++i)
        affinity.add(static_cast<std::uint64_t>(owner[adj[i]]));

      // Pick the most attractive *admissible* part: count descending, then
      // deterministic tie-hash.  We trial the best candidate only (moving
      // past it rarely pays and keeps the sweep O(deg)).
      const std::int32_t cur = owner[v];
      const std::int32_t best = static_cast<std::int32_t>(affinity.argmax(
          params.seed + static_cast<std::uint64_t>(sweep),
          static_cast<std::uint64_t>(cur)));
      if (best == cur) continue;
      if (part_verts[best] + 1 > max_verts) continue;
      if (part_edges[best] + deg[v] > max_edges) continue;

      --part_verts[cur];
      part_edges[cur] -= deg[v];
      ++part_verts[best];
      part_edges[best] += deg[v];
      owner[v] = best;
      moved = true;
    }
    if (!moved) break;
  }
  return owner;
}

std::uint64_t edge_cut(const gen::EdgeList& graph,
                       std::span<const std::int32_t> owner) {
  HG_CHECK(owner.size() == graph.n);
  std::uint64_t cut = 0;
  for (const gen::Edge& e : graph.edges)
    if (owner[e.src] != owner[e.dst]) ++cut;
  return cut;
}

}  // namespace hpcgraph::dgraph
