#pragma once
/// \file dist_graph.hpp
/// The distributed graph representation — Table II of the paper, verbatim:
///
///   n_global, m_global, n_loc, n_gst, m_out, m_in,
///   out_edges / out_indexes (CSR), in_edges / in_indexes (CSR),
///   map   (global -> local id, linear-probing hash),
///   unmap (local -> global id array),
///   tasks (owner of each ghost vertex).
///
/// Locally owned vertices are relabeled to [0, n_loc); ghost vertices
/// (remote vertices adjacent to a local one) to [n_loc, n_loc + n_gst).
/// All per-vertex analytic state is then stored in flat
/// (n_loc + n_gst)-length arrays — the paper's key representation decision
/// ("To avoid accessing a slow hash map and using arrays instead, we relabel
/// all locally owned and ghost vertices").
///
/// Local ids are deterministic: owned vertices in increasing global-id
/// order, then ghosts in increasing global-id order.  Determinism makes
/// distributed results reproducible and directly comparable with the
/// sequential reference implementations in tests.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dgraph/partition.hpp"
#include "util/error.hpp"
#include "util/lp_hash_map.hpp"
#include "util/types.hpp"

namespace hpcgraph::parcomm {
class Communicator;
}  // namespace hpcgraph::parcomm

namespace hpcgraph::dgraph {

/// One rank's share of the distributed graph.  Built by builder.hpp.
class DistGraph {
 public:
  // ---- Global / local counts (Table II scalars). ----
  gvid_t n_global() const { return n_global_; }
  ecnt_t m_global() const { return m_global_; }
  lvid_t n_loc() const { return n_loc_; }
  lvid_t n_gst() const { return n_gst_; }
  lvid_t n_total() const { return n_loc_ + n_gst_; }
  ecnt_t m_out() const { return out_edges_.size(); }
  ecnt_t m_in() const { return in_edges_.size(); }

  int rank() const { return rank_; }
  int nranks() const { return part_.nranks(); }
  const Partition& partition() const { return part_; }

  // ---- Adjacency (local ids; valid vertex arg: [0, n_loc)). ----
  std::span<const lvid_t> out_neighbors(lvid_t v) const {
    HG_DCHECK(v < n_loc_);
    return {out_edges_.data() + out_index_[v],
            out_index_[v + 1] - out_index_[v]};
  }

  std::span<const lvid_t> in_neighbors(lvid_t v) const {
    HG_DCHECK(v < n_loc_);
    return {in_edges_.data() + in_index_[v], in_index_[v + 1] - in_index_[v]};
  }

  std::uint64_t out_degree(lvid_t v) const {
    HG_DCHECK(v < n_loc_);
    return out_index_[v + 1] - out_index_[v];
  }

  std::uint64_t in_degree(lvid_t v) const {
    HG_DCHECK(v < n_loc_);
    return in_index_[v + 1] - in_index_[v];
  }

  // ---- Id translation. ----
  /// Local id of a global id (local vertex or ghost); kNullLvid if this rank
  /// has never seen the vertex.
  lvid_t local_id(gvid_t g) const {
    const std::uint32_t v = map_.find(g);
    return v == LpHashMap::kNotFound ? kNullLvid : static_cast<lvid_t>(v);
  }

  /// Local id that must exist (checked).
  lvid_t local_id_checked(gvid_t g) const {
    return static_cast<lvid_t>(map_.at(g));
  }

  /// Global id of a local id (local vertex or ghost).
  gvid_t global_id(lvid_t l) const {
    HG_DCHECK(l < n_total());
    return unmap_[l];
  }

  bool is_ghost(lvid_t l) const { return l >= n_loc_; }

  /// Owning task of a local-or-ghost id.  O(1): ghosts have their owner
  /// cached in the `tasks` array (Table II), locals are this rank.
  int owner_of(lvid_t l) const {
    HG_DCHECK(l < n_total());
    return l < n_loc_ ? rank_ : ghost_task_[l - n_loc_];
  }

  /// Owning task of a *global* id (partition lookup; works for any vertex).
  int owner_of_global(gvid_t g) const { return part_.owner(g); }

  /// Global ids of all ghosts, indexed by (local id - n_loc).
  std::span<const gvid_t> ghost_globals() const {
    return {unmap_.data() + n_loc_, n_gst_};
  }

  // ---- Boundary / interior vertex classes (overlap schedules). ----
  //
  // A local vertex is *boundary* when any of its out- or in-neighbors is a
  // ghost: some other rank holds it as a ghost replica, so it appears in a
  // retained send queue of every adjacency sense that touches the shared
  // edge.  The kBoth sense used here is a superset of any single-direction
  // plan's queue membership, so "compute boundary first, then ship" is safe
  // for every GhostExchange plan.  Interior vertices are everyone else —
  // their values never go on the wire, so an overlapped schedule computes
  // them while the boundary payload is in flight.  Both lists are ascending
  // local ids and partition [0, n_loc).

  /// Local ids whose value some other rank ghosts (ascending).
  std::span<const lvid_t> boundary_locals() const { return boundary_; }
  /// Local ids no other rank ever reads (ascending).
  std::span<const lvid_t> interior_locals() const { return interior_; }

  // ---- Raw CSR views (compression, serialization, custom kernels). ----
  std::span<const ecnt_t> out_index() const { return out_index_; }
  std::span<const lvid_t> out_edges_raw() const { return out_edges_; }
  std::span<const ecnt_t> in_index() const { return in_index_; }
  std::span<const lvid_t> in_edges_raw() const { return in_edges_; }

  /// Approximate resident bytes of the structure (compactness reporting).
  std::uint64_t memory_bytes() const {
    return out_edges_.size() * sizeof(lvid_t) +
           in_edges_.size() * sizeof(lvid_t) +
           out_index_.size() * sizeof(ecnt_t) +
           in_index_.size() * sizeof(ecnt_t) +
           unmap_.size() * sizeof(gvid_t) +
           ghost_task_.size() * sizeof(std::int32_t) +
           map_.capacity() * (sizeof(gvid_t) + sizeof(std::uint32_t));
  }

 private:
  friend class Builder;
  friend void save_snapshot(const DistGraph&, parcomm::Communicator&,
                            const std::string&);
  friend DistGraph load_snapshot(parcomm::Communicator&, const std::string&);

  DistGraph(const Partition& part, int rank) : part_(part), rank_(rank) {}

  /// Classify local vertices into boundary_/interior_ from the finished
  /// CSR.  Called once by the builder and the snapshot loader.
  void build_vertex_classes() {
    boundary_.clear();
    interior_.clear();
    for (lvid_t v = 0; v < n_loc_; ++v) {
      bool bnd = false;
      for (ecnt_t e = out_index_[v]; e < out_index_[v + 1] && !bnd; ++e)
        bnd = out_edges_[e] >= n_loc_;
      for (ecnt_t e = in_index_[v]; e < in_index_[v + 1] && !bnd; ++e)
        bnd = in_edges_[e] >= n_loc_;
      (bnd ? boundary_ : interior_).push_back(v);
    }
  }

  Partition part_;
  int rank_;

  gvid_t n_global_ = 0;
  ecnt_t m_global_ = 0;
  lvid_t n_loc_ = 0;
  lvid_t n_gst_ = 0;

  std::vector<ecnt_t> out_index_;       // n_loc + 1
  std::vector<lvid_t> out_edges_;       // m_out, local ids
  std::vector<ecnt_t> in_index_;        // n_loc + 1
  std::vector<lvid_t> in_edges_;        // m_in, local ids
  LpHashMap map_;                       // global -> local
  std::vector<gvid_t> unmap_;           // local -> global, n_loc + n_gst
  std::vector<std::int32_t> ghost_task_;  // owner of each ghost, n_gst
  std::vector<lvid_t> boundary_;        // locals with a ghost neighbor
  std::vector<lvid_t> interior_;        // locals with none
};

}  // namespace hpcgraph::dgraph
