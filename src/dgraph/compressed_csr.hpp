#pragma once
/// \file compressed_csr.hpp
/// Compressed adjacency storage — the first of the paper's §VII future-work
/// directions: "a performance-portable graph compression method that will
/// allow us to execute graph analytics with an even smaller memory
/// footprint."
///
/// Per-vertex adjacency lists are sorted and stored as varint (LEB128)
/// encoded gaps: the first neighbour id directly, each subsequent one as a
/// delta from its predecessor.  Local ids are dense (ghost relabeling), so
/// gaps are small and most neighbours cost 1-2 bytes instead of 4.
///
/// Decoding is branch-light streaming; bench/ablation_optimizations measures
/// the bytes saved and the traversal-speed cost against the plain CSR.
///
/// Note: sorting the adjacency changes the (semantically irrelevant)
/// neighbour visit order; all discrete analytics are order-independent and
/// floating-point ones change only in summation order.

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace hpcgraph::dgraph {

/// Varint/delta compressed out- or in-adjacency of one rank's vertices.
class CompressedAdjacency {
 public:
  /// Build from a plain CSR (index of n_loc+1 entries over `edges`).
  /// Neighbour lists are sorted during encoding; duplicates are preserved.
  static CompressedAdjacency encode(std::span<const ecnt_t> index,
                                    std::span<const lvid_t> edges);

  lvid_t num_vertices() const {
    return static_cast<lvid_t>(offsets_.size() - 1);
  }
  std::uint64_t num_edges() const { return num_edges_; }

  std::uint64_t degree(lvid_t v) const {
    HG_DCHECK(v < num_vertices());
    return degrees_[v];
  }

  /// Invoke fn(u) for each neighbour of v, in increasing id order.
  template <typename F>
  void for_each_neighbor(lvid_t v, F&& fn) const {
    HG_DCHECK(v < num_vertices());
    const std::uint8_t* p = bytes_.data() + offsets_[v];
    lvid_t current = 0;
    for (std::uint64_t i = 0, d = degrees_[v]; i < d; ++i) {
      current += decode_varint(p);
      fn(current);
    }
  }

  /// Decode one vertex's neighbour list into a vector (test convenience).
  std::vector<lvid_t> neighbors(lvid_t v) const {
    std::vector<lvid_t> out;
    out.reserve(degrees_[v]);
    for_each_neighbor(v, [&](lvid_t u) { out.push_back(u); });
    return out;
  }

  /// Payload bytes of the compressed structure (edge bytes only).
  std::uint64_t edge_bytes() const { return bytes_.size(); }

  /// Total resident bytes including offsets and degree arrays.
  std::uint64_t total_bytes() const {
    return bytes_.size() + offsets_.size() * sizeof(std::uint64_t) +
           degrees_.size() * sizeof(std::uint32_t);
  }

  /// Bytes the plain CSR equivalent would use for the same edges.
  std::uint64_t plain_bytes() const {
    return num_edges_ * sizeof(lvid_t) +
           offsets_.size() * sizeof(ecnt_t);
  }

 private:
  static std::uint32_t decode_varint(const std::uint8_t*& p) {
    std::uint32_t v = 0;
    unsigned shift = 0;
    for (;;) {
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) return v;
      shift += 7;
    }
  }

  std::vector<std::uint8_t> bytes_;     // varint gap streams
  std::vector<std::uint64_t> offsets_;  // per-vertex byte offsets (n+1)
  std::vector<std::uint32_t> degrees_;  // per-vertex neighbour counts
  std::uint64_t num_edges_ = 0;
};

}  // namespace hpcgraph::dgraph
