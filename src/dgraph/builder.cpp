#include "dgraph/builder.hpp"

#include <algorithm>

#include "util/prefix_sum.hpp"
#include "util/thread_queue.hpp"
#include "util/timer.hpp"

namespace hpcgraph::dgraph {

using gen::Edge;
using parcomm::Communicator;

namespace {

/// Element-wise allreduce-sum of equal-length vectors (degree histograms).
std::vector<std::uint64_t> allreduce_sum_vec(Communicator& comm,
                                             std::span<const std::uint64_t> v) {
  std::vector<std::uint64_t> counts;
  std::vector<std::uint64_t> all = comm.allgatherv(v, &counts);
  std::vector<std::uint64_t> out(v.size(), 0);
  for (int r = 0; r < comm.size(); ++r)
    for (std::size_t i = 0; i < v.size(); ++i)
      out[i] += all[static_cast<std::size_t>(r) * v.size() + i];
  return out;
}

/// Redistribute `edges` so each lands on part.owner(key(e)).
/// Returned edges are grouped by source rank (deterministic order).
template <typename KeyFn>
std::vector<Edge> exchange_edges(Communicator& comm, const Partition& part,
                                 std::span<const Edge> edges, KeyFn key) {
  const int p = comm.size();
  std::vector<std::uint64_t> counts(p, 0);
  for (const Edge& e : edges) ++counts[part.owner(key(e))];

  MultiQueue<Edge> q(counts);
  {
    MultiQueue<Edge>::Sink sink(q);
    for (const Edge& e : edges)
      sink.push(static_cast<std::uint32_t>(part.owner(key(e))), e);
  }
  HG_DCHECK(q.complete());
  return comm.alltoallv<Edge>(q.buffer(), counts);
}

}  // namespace

Partition Builder::make_partition(Communicator& comm, PartitionKind kind,
                                  gvid_t n_global,
                                  std::span<const Edge> chunk,
                                  std::uint64_t seed) {
  switch (kind) {
    case PartitionKind::kVertexBlock:
      return Partition::vertex_block(n_global, comm.size());
    case PartitionKind::kRandom:
      return Partition::random(n_global, comm.size(), seed);
    case PartitionKind::kExplicit:
      detail::check_failed(
          "kind != kExplicit", __FILE__, __LINE__,
          "explicit partitions carry an owner map; build one with "
          "Partition::explicit_map and use the Partition overload");
    case PartitionKind::kEdgeBlock: {
      // Bucketed out-degree histogram, globally reduced; 64 buckets per rank
      // gives the cut enough resolution without shipping an n-length array.
      const std::size_t buckets =
          std::min<std::size_t>(static_cast<std::size_t>(comm.size()) * 64,
                                static_cast<std::size_t>(n_global));
      std::vector<std::uint64_t> local = degree_buckets(chunk, n_global, buckets);
      std::vector<std::uint64_t> global = allreduce_sum_vec(comm, local);
      return Partition::edge_block(n_global, comm.size(), global);
    }
  }
  HG_CHECK_MSG(false, "unreachable partition kind");
}

DistGraph Builder::from_chunk(Communicator& comm, gvid_t n_global,
                              std::vector<Edge> chunk, const Partition& part,
                              BuildTiming* timing) {
  Timer stage;

  // ---- Exchange stage: out-edges to owner(src), in-edges to owner(dst). --
  std::vector<Edge> out_recv =
      exchange_edges(comm, part, chunk, [](const Edge& e) { return e.src; });
  std::vector<Edge> in_recv =
      exchange_edges(comm, part, chunk, [](const Edge& e) { return e.dst; });
  chunk.clear();
  chunk.shrink_to_fit();
  comm.barrier();
  const double t_exchange = stage.restart();

  // ---- LConv stage: CSR + ghost relabeling (Table II). ----
  DistGraph g(part, comm.rank());
  g.n_global_ = n_global;
  g.m_global_ = comm.allreduce_sum<ecnt_t>(out_recv.size());

  const std::vector<gvid_t> owned = part.owned_vertices(comm.rank());
  g.n_loc_ = static_cast<lvid_t>(owned.size());

  g.map_.reserve(owned.size() * 2);
  for (lvid_t i = 0; i < g.n_loc_; ++i)
    g.map_.insert(owned[i], i);

  // Ghosts: remote endpoints of local edges, deduplicated, relabeled in
  // increasing global-id order (determinism).
  std::vector<gvid_t> ghosts;
  ghosts.reserve(out_recv.size() / 4 + 16);
  const auto note_ghost = [&](gvid_t u) {
    if (g.map_.find(u) == LpHashMap::kNotFound) ghosts.push_back(u);
  };
  for (const Edge& e : out_recv) note_ghost(e.dst);
  for (const Edge& e : in_recv) note_ghost(e.src);
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  g.n_gst_ = static_cast<lvid_t>(ghosts.size());

  g.unmap_.reserve(owned.size() + ghosts.size());
  g.unmap_ = owned;
  g.unmap_.insert(g.unmap_.end(), ghosts.begin(), ghosts.end());
  g.ghost_task_.resize(ghosts.size());
  for (lvid_t k = 0; k < g.n_gst_; ++k) {
    g.map_.insert(ghosts[k], g.n_loc_ + k);
    g.ghost_task_[k] = part.owner(ghosts[k]);
  }

  // Out-CSR: count, prefix, fill (received order preserved per vertex).
  {
    std::vector<ecnt_t> deg(g.n_loc_, 0);
    for (const Edge& e : out_recv) ++deg[g.map_.at(e.src)];
    g.out_index_ = csr_offsets(std::span<const ecnt_t>(deg));
    g.out_edges_.resize(out_recv.size());
    std::vector<ecnt_t> cursor(g.out_index_.begin(), g.out_index_.end() - 1);
    for (const Edge& e : out_recv) {
      const lvid_t s = static_cast<lvid_t>(g.map_.at(e.src));
      g.out_edges_[cursor[s]++] = static_cast<lvid_t>(g.map_.at(e.dst));
    }
  }
  out_recv.clear();
  out_recv.shrink_to_fit();

  // In-CSR.
  {
    std::vector<ecnt_t> deg(g.n_loc_, 0);
    for (const Edge& e : in_recv) ++deg[g.map_.at(e.dst)];
    g.in_index_ = csr_offsets(std::span<const ecnt_t>(deg));
    g.in_edges_.resize(in_recv.size());
    std::vector<ecnt_t> cursor(g.in_index_.begin(), g.in_index_.end() - 1);
    for (const Edge& e : in_recv) {
      const lvid_t d = static_cast<lvid_t>(g.map_.at(e.dst));
      g.in_edges_[cursor[d]++] = static_cast<lvid_t>(g.map_.at(e.src));
    }
  }

  g.build_vertex_classes();

  comm.barrier();
  const double t_lconv = stage.restart();

  if (timing) {
    timing->exchange = t_exchange;
    timing->lconv = t_lconv;
  }
  return g;
}

DistGraph Builder::from_file(Communicator& comm, const std::string& path,
                             io::EdgeFormat format, PartitionKind kind,
                             gvid_t n_global, BuildTiming* timing,
                             std::uint64_t part_seed) {
  Timer stage;
  const std::uint64_t m = io::edge_count(path, format);
  const auto [first, count] = io::chunk_for_rank(m, comm.rank(), comm.size());
  std::vector<Edge> chunk = io::read_edge_chunk(path, format, first, count);
  comm.barrier();
  const double t_read = stage.restart();

  if (n_global == 0) {
    gvid_t local_max = 0;
    for (const Edge& e : chunk)
      local_max = std::max({local_max, e.src, e.dst});
    n_global = comm.allreduce_max(local_max) + 1;
  }

  const Partition part =
      make_partition(comm, kind, n_global, chunk, part_seed);
  DistGraph g = from_chunk(comm, n_global, std::move(chunk), part, timing);
  if (timing) timing->read = t_read;
  return g;
}

DistGraph Builder::from_edge_list(Communicator& comm,
                                  const gen::EdgeList& graph,
                                  PartitionKind kind, BuildTiming* timing,
                                  std::uint64_t part_seed) {
  const auto [first, count] =
      io::chunk_for_rank(graph.edges.size(), comm.rank(), comm.size());
  std::vector<Edge> chunk(graph.edges.begin() + first,
                          graph.edges.begin() + first + count);
  const Partition part =
      make_partition(comm, kind, graph.n, chunk, part_seed);
  return from_chunk(comm, graph.n, std::move(chunk), part, timing);
}

DistGraph Builder::from_edge_list(Communicator& comm,
                                  const gen::EdgeList& graph,
                                  const Partition& part,
                                  BuildTiming* timing) {
  HG_CHECK(part.n_global() == graph.n);
  HG_CHECK(part.nranks() == comm.size());
  const auto [first, count] =
      io::chunk_for_rank(graph.edges.size(), comm.rank(), comm.size());
  std::vector<Edge> chunk(graph.edges.begin() + first,
                          graph.edges.begin() + first + count);
  return from_chunk(comm, graph.n, std::move(chunk), part, timing);
}

}  // namespace hpcgraph::dgraph
