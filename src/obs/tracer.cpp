#include "obs/tracer.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

#include "obs/emit.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/parallel_for.hpp"

namespace hpcgraph::obs {

namespace detail {
ThreadBinding& tls_binding() {
  static thread_local ThreadBinding b;
  return b;
}
}  // namespace detail

namespace {

// The installed tracer.  Written by the host thread before rank threads are
// spawned and cleared after they join (CommWorld::run creates the
// happens-before edges), so rank/worker threads only ever read it.
Tracer* g_current = nullptr;

// Pool-observer trampoline: runs on the thread constructing a ThreadPool and
// hands its rank context to the pool, so worker threads can attribute their
// sweep samples to the right (rank, tid) lane without any binding of their
// own.
const void* pool_capture_cb(unsigned nthreads) {
  detail::ThreadBinding& b = detail::tls_binding();
  if (b.tracer == nullptr || b.rank_ctx == nullptr) return nullptr;
  b.tracer->ensure_pool_lanes(b.rank_ctx, nthreads);
  return b.rank_ctx;
}

// Little-endian POD append/read helpers for the gather wire format.
template <typename T>
void put_pod(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t n = out.size();
  out.resize(n + sizeof(T));
  std::memcpy(out.data() + n, &v, sizeof(T));
}

template <typename T>
T get_pod(const std::uint8_t* data, std::size_t len, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  HG_CHECK_MSG(off + sizeof(T) <= len, "truncated obs trace blob");
  T v;
  std::memcpy(&v, data + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace

struct Tracer::RankCtx {
  Tracer* tracer = nullptr;
  int rank = 0;
  // index = pool tid; [0] aliases the rank's main lane.  Mutated only by the
  // owning rank thread (pool construction); read by that rank's workers after
  // the pool-run happens-before edge.
  std::vector<Lane*> pool_lanes;
};

Tracer::Tracer(TracerOptions opts) : opts_(opts) {
  HG_CHECK_MSG(opts_.ring_capacity > 0, "obs ring capacity must be positive");
}

Tracer::~Tracer() {
  if (g_current == this) uninstall();
}

void Tracer::install() {
  g_current = this;
  PoolObserver& o = pool_observer();
  o.capture = &pool_capture_cb;
  o.sweep = &Tracer::pool_sweep_cb;
}

void Tracer::uninstall() {
  g_current = nullptr;
  pool_observer() = PoolObserver{};
}

Tracer* Tracer::current() { return g_current; }

Lane* Tracer::lane(int rank_id, unsigned tid) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& l : lanes_)
    if (l->rank() == rank_id && l->tid() == tid) return l.get();
  lanes_.push_back(std::make_unique<Lane>(rank_id, tid, opts_.ring_capacity));
  return lanes_.back().get();
}

std::vector<const Lane*> Tracer::rank_lanes(int rank_id) const {
  std::vector<const Lane*> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& l : lanes_)
      if (l->rank() == rank_id) out.push_back(l.get());
  }
  std::sort(out.begin(), out.end(), [](const Lane* a, const Lane* b) {
    return a->tid() < b->tid();
  });
  return out;
}

std::vector<Event> Tracer::rank_events(int rank_id) const {
  std::vector<Event> out;
  for (const Lane* l : rank_lanes(rank_id)) {
    std::vector<Event> evs = l->snapshot();
    out.insert(out.end(), evs.begin(), evs.end());
  }
  return out;
}

void* Tracer::make_rank_ctx(int rank_id, Lane* lane0) {
  std::lock_guard<std::mutex> lock(mu_);
  ctxs_.push_back(std::make_unique<RankCtx>());
  RankCtx* ctx = ctxs_.back().get();
  ctx->tracer = this;
  ctx->rank = rank_id;
  ctx->pool_lanes.assign(1, lane0);
  return ctx;
}

void Tracer::ensure_pool_lanes(void* rank_ctx, unsigned nthreads) {
  auto* ctx = static_cast<RankCtx*>(rank_ctx);
  // lane() locks internally; the pool_lanes vector itself is only mutated by
  // the owning rank thread (pool constructors run there).
  while (ctx->pool_lanes.size() < nthreads)
    ctx->pool_lanes.push_back(
        lane(ctx->rank, static_cast<unsigned>(ctx->pool_lanes.size())));
}

void Tracer::pool_sweep_cb(const void* ctx, unsigned tid, std::uint64_t chunks,
                           std::uint64_t weight, double busy_s) {
  const auto* rc = static_cast<const RankCtx*>(ctx);
  if (rc == nullptr || tid >= rc->pool_lanes.size()) return;
  Lane* lane = rc->pool_lanes[tid];
  if (lane == nullptr || chunks == 0) return;
  const std::int64_t now = monotonic_ns();
  const auto dur = static_cast<std::int64_t>(busy_s * 1e9);
  lane->push({span_name::kPoolSweep, now - dur, dur,
              static_cast<double>(weight), EventKind::kSpan});
}

std::vector<std::uint8_t> Tracer::serialize_rank(
    int rank_id, std::int64_t clock_offset_ns) const {
  const std::vector<const Lane*> lanes = rank_lanes(rank_id);

  // Intern names: the hot path stored literal pointers; resolve them to a
  // per-blob string table here, off the traced path.
  std::vector<const char*> table;
  std::unordered_map<const char*, std::uint32_t> ids;
  std::vector<std::vector<Event>> snaps;
  std::uint64_t dropped_total = 0;
  snaps.reserve(lanes.size());
  for (const Lane* l : lanes) {
    snaps.push_back(l->snapshot());
    dropped_total += l->dropped();
    for (const Event& e : snaps.back())
      if (ids.emplace(e.name, static_cast<std::uint32_t>(table.size())).second)
        table.push_back(e.name);
  }

  std::vector<std::uint8_t> out;
  put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(rank_id));
  put_pod<std::int64_t>(out, clock_offset_ns);
  put_pod<std::uint64_t>(out, dropped_total);
  put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(lanes.size()));
  put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(table.size()));
  for (const char* name : table) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(std::strlen(name));
    put_pod<std::uint32_t>(out, len);
    const std::size_t n = out.size();
    out.resize(n + len);
    std::memcpy(out.data() + n, name, len);
  }
  for (std::size_t li = 0; li < lanes.size(); ++li) {
    put_pod<std::uint32_t>(out, lanes[li]->tid());
    put_pod<std::uint64_t>(out, lanes[li]->dropped());
    put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(snaps[li].size()));
    for (const Event& e : snaps[li]) {
      put_pod<std::uint32_t>(out, ids[e.name]);
      put_pod<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
      put_pod<std::int64_t>(out, e.ts_ns);
      put_pod<std::int64_t>(out, e.dur_ns);
      put_pod<double>(out, e.value);
    }
  }
  return out;
}

void Tracer::merge_serialized(const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  const int rank_id = static_cast<int>(get_pod<std::uint32_t>(data, len, off));
  const std::int64_t clock_off = get_pod<std::int64_t>(data, len, off);
  const std::uint64_t dropped = get_pod<std::uint64_t>(data, len, off);
  const std::uint32_t nlanes = get_pod<std::uint32_t>(data, len, off);
  const std::uint32_t nnames = get_pod<std::uint32_t>(data, len, off);

  offsets_.emplace_back(rank_id, clock_off);
  drop_totals_.emplace_back(rank_id, dropped);

  // Remap the blob's string table into the global one.
  std::vector<std::uint32_t> remap(nnames);
  for (std::uint32_t i = 0; i < nnames; ++i) {
    const std::uint32_t slen = get_pod<std::uint32_t>(data, len, off);
    HG_CHECK_MSG(off + slen <= len, "truncated obs trace blob");
    std::string name(reinterpret_cast<const char*>(data + off), slen);
    off += slen;
    auto it = std::find(names_.begin(), names_.end(), name);
    if (it == names_.end()) {
      remap[i] = static_cast<std::uint32_t>(names_.size());
      names_.push_back(std::move(name));
    } else {
      remap[i] = static_cast<std::uint32_t>(it - names_.begin());
    }
  }

  for (std::uint32_t li = 0; li < nlanes; ++li) {
    const std::uint32_t tid = get_pod<std::uint32_t>(data, len, off);
    (void)get_pod<std::uint64_t>(data, len, off);  // per-lane drops (in total)
    const std::uint32_t nevents = get_pod<std::uint32_t>(data, len, off);
    for (std::uint32_t i = 0; i < nevents; ++i) {
      MergedEvent m;
      m.name_id = remap[get_pod<std::uint32_t>(data, len, off)];
      m.kind = static_cast<EventKind>(get_pod<std::uint8_t>(data, len, off));
      m.ts_ns = get_pod<std::int64_t>(data, len, off) - clock_off;
      m.dur_ns = get_pod<std::int64_t>(data, len, off);
      m.value = get_pod<double>(data, len, off);
      m.rank = rank_id;
      m.tid = tid;
      merged_.push_back(m);
    }
  }
  HG_CHECK_MSG(off == len, "trailing bytes in obs trace blob");
}

std::int64_t Tracer::merged_clock_offset(int rank_id) const {
  for (const auto& [r, o] : offsets_)
    if (r == rank_id) return o;
  return 0;
}

std::string Tracer::chrome_json() const {
  // Deterministic output: order events by (rank, tid, ts).
  std::vector<const MergedEvent*> order;
  order.reserve(merged_.size());
  for (const MergedEvent& m : merged_) order.push_back(&m);
  std::stable_sort(order.begin(), order.end(),
                   [](const MergedEvent* a, const MergedEvent* b) {
                     if (a->rank != b->rank) return a->rank < b->rank;
                     if (a->tid != b->tid) return a->tid < b->tid;
                     return a->ts_ns < b->ts_ns;
                   });

  std::int64_t origin = 0;
  for (const MergedEvent& m : merged_)
    if (origin == 0 || m.ts_ns < origin) origin = m.ts_ns;

  // Lane inventory for the metadata records.
  std::map<int, std::vector<unsigned>> lanes_by_rank;
  for (const MergedEvent& m : merged_) {
    auto& tids = lanes_by_rank[m.rank];
    if (std::find(tids.begin(), tids.end(), m.tid) == tids.end())
      tids.push_back(m.tid);
  }
  for (const auto& [r, o] : offsets_)
    if (lanes_by_rank.find(r) == lanes_by_rank.end())
      lanes_by_rank[r].push_back(0);
  for (auto& [r, tids] : lanes_by_rank) std::sort(tids.begin(), tids.end());

  std::uint64_t dropped_total = 0;
  for (const auto& [r, d] : drop_totals_) dropped_total += d;

  util::JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("schema", "hpcgraph-trace-events-v1");
  w.kv("ranks", static_cast<std::uint64_t>(offsets_.size()));
  w.kv("dropped_events", dropped_total);
  w.end_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [r, tids] : lanes_by_rank) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", r);
    w.kv("tid", 0);
    w.key("args");
    w.begin_object();
    w.kv("name", "rank " + std::to_string(r));
    w.end_object();
    w.end_object();
    for (unsigned tid : tids) {
      w.begin_object();
      w.kv("name", "thread_name");
      w.kv("ph", "M");
      w.kv("pid", r);
      w.kv("tid", static_cast<std::uint64_t>(tid));
      w.key("args");
      w.begin_object();
      w.kv("name", tid == 0 ? std::string("main")
                            : "pool-" + std::to_string(tid));
      w.end_object();
      w.end_object();
    }
  }
  for (const MergedEvent* m : order) {
    w.begin_object();
    w.kv("name", names_[m->name_id]);
    if (m->kind == EventKind::kSpan) {
      w.kv("cat", "obs");
      w.kv("ph", "X");
      w.kv("pid", m->rank);
      w.kv("tid", static_cast<std::uint64_t>(m->tid));
      w.kv("ts", static_cast<double>(m->ts_ns - origin) / 1000.0);
      w.kv("dur", static_cast<double>(m->dur_ns) / 1000.0);
      if (m->value != 0.0) {
        w.key("args");
        w.begin_object();
        w.kv("value", m->value);
        w.end_object();
      }
    } else {
      w.kv("ph", "C");
      w.kv("pid", m->rank);
      w.kv("tid", static_cast<std::uint64_t>(m->tid));
      w.kv("ts", static_cast<double>(m->ts_ns - origin) / 1000.0);
      w.key("args");
      w.begin_object();
      w.kv("value", m->value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void Tracer::write_chrome_json(const std::string& path) const {
  write_text_file(path, chrome_json());
}

RankGuard::RankGuard(int rank_id) : saved_(detail::tls_binding()) {
  Tracer* t = Tracer::current();
  if (t == nullptr) return;
  detail::ThreadBinding& b = detail::tls_binding();
  b.tracer = t;
  b.lane = t->lane(rank_id, 0);
  b.rank_ctx = t->make_rank_ctx(rank_id, b.lane);
}

RankGuard::~RankGuard() { detail::tls_binding() = saved_; }

}  // namespace hpcgraph::obs
