#pragma once
/// \file emit.hpp
/// Shared JSON emitters for the telemetry structs.
///
/// engine/trace.cpp used to spell every CommStats / PhaseBreakdown field name
/// inline, and the obs metrics registry would have needed a second copy; both
/// now route through these writers, with the spellings themselves defined
/// next to the structs (parcomm::comm_field / parcomm::phase_field), so the
/// superstep trace, the metrics dump, and trace_report.py agree by
/// construction.

#include <cstdio>
#include <string>
#include <string_view>

#include "parcomm/comm_stats.hpp"
#include "parcomm/phase_timer.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace hpcgraph::obs {

/// Emit the fields of one CommStats as key/value pairs into the writer's
/// current object (the caller brackets begin_object/end_object).
inline void write_comm_stats(util::JsonWriter& w,
                             const parcomm::CommStats& s) {
  namespace f = parcomm::comm_field;
  w.kv(f::kBytesSent, s.bytes_sent);
  w.kv(f::kBytesRemote, s.bytes_remote);
  w.kv(f::kBytesSelf, s.bytes_self);
  w.kv(f::kBytesReceived, s.bytes_received);
  w.kv(f::kCollectiveCalls, s.collective_calls);
  w.kv(f::kBarrierCalls, s.barrier_calls);
  w.kv(f::kGhostRoundsDense, s.ghost_rounds_dense);
  w.kv(f::kGhostRoundsSparse, s.ghost_rounds_sparse);
  w.kv(f::kGhostRoundsReduce, s.ghost_rounds_reduce);
  w.kv(f::kGhostRoundsAsync, s.ghost_rounds_async);
  w.kv(f::kGhostBytesSaved, static_cast<std::int64_t>(s.ghost_bytes_saved));
}

/// Emit the fields of one PhaseBreakdown as key/value pairs into the
/// writer's current object.
inline void write_phase(util::JsonWriter& w,
                        const parcomm::PhaseBreakdown& p) {
  namespace f = parcomm::phase_field;
  w.kv(f::kComp, p.comp);
  w.kv(f::kComm, p.comm);
  w.kv(f::kIdle, p.idle);
  w.kv(f::kPack, p.pack);
  w.kv(f::kRoute, p.route);
  w.kv(f::kCommWait, p.wait);
  w.kv(f::kSweepBusyMax, p.sweep_busy_max);
  w.kv(f::kSweepBusyTotal, p.sweep_busy_total);
  w.kv(f::kTotal, p.total);
}

/// Write a whole text artifact (trace, metrics, bench JSON) with the same
/// open/short-write checks every emitter used to duplicate.
inline void write_text_file(const std::string& path, std::string_view body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  HG_CHECK_MSG(f != nullptr, "cannot open output file " << path);
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && std::fclose(f) == 0;
  HG_CHECK_MSG(ok, "short write to output file " << path);
}

}  // namespace hpcgraph::obs
