#pragma once
/// \file export.hpp
/// Collective finalize paths for the tracer and the metrics registry.
///
/// Both exports run *inside* the ranks (every rank must call them — they are
/// ordinary lockstep collectives built on parcomm::Communicator, so the
/// PARCOMM_VERIFY fingerprints and the no-pending-exchange checks apply).
///
/// Clock-sync handshake: in this simulation every rank shares one process
/// clock, but the export rebases timestamps exactly the way a real MPI build
/// must — all ranks exit a barrier together, sample their monotonic clock,
/// and learn rank 0's sample via broadcast; the difference is that rank's
/// offset, and rank 0 subtracts it from every gathered timestamp.  The
/// residual error is the barrier exit skew (microseconds here), which is the
/// standard MPI_Wtime-sync bound.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "parcomm/comm.hpp"
#include "util/json.hpp"

namespace hpcgraph::obs {

/// Collective.  Runs the clock-sync handshake, serializes the calling rank's
/// lanes, and gathers every rank's blob onto rank 0, which merges them into
/// `tracer`'s rebased timeline (read back with `chrome_json()` /
/// `write_chrome_json()` after the ranks join).
inline void finalize_trace(Tracer& tracer, parcomm::Communicator& comm) {
  comm.barrier();
  const std::int64_t local_ns = monotonic_ns();
  const std::int64_t root_ns = comm.broadcast(local_ns, 0);
  const std::int64_t offset_ns = local_ns - root_ns;

  const std::vector<std::uint8_t> blob =
      tracer.serialize_rank(comm.rank(), offset_ns);
  std::vector<std::uint64_t> counts;
  const std::vector<std::uint8_t> all =
      comm.gatherv<std::uint8_t>(blob, 0, &counts);
  if (comm.rank() == 0) {
    std::size_t off = 0;
    for (const std::uint64_t c : counts) {
      tracer.merge_serialized(all.data() + off, static_cast<std::size_t>(c));
      off += static_cast<std::size_t>(c);
    }
  }
}

/// Collective.  Gathers every rank's registry onto rank 0 and returns the
/// metrics document (empty string on other ranks): per-rank dumps plus
/// cross-rank aggregates (counters: sum/max; gauges: min/mean/max;
/// histograms: bucket-wise merge).
inline std::string export_metrics(const Registry& local,
                                  parcomm::Communicator& comm) {
  const std::vector<std::uint8_t> blob = local.serialize();
  std::vector<std::uint64_t> counts;
  const std::vector<std::uint8_t> all =
      comm.gatherv<std::uint8_t>(blob, 0, &counts);
  if (comm.rank() != 0) return {};

  std::vector<Registry> regs;
  std::size_t off = 0;
  for (const std::uint64_t c : counts) {
    regs.push_back(
        Registry::deserialize(all.data() + off, static_cast<std::size_t>(c)));
    off += static_cast<std::size_t>(c);
  }

  // Union of metric names across ranks, name-sorted for determinism.
  std::vector<std::pair<std::string, MetricKind>> names;
  for (const Registry& r : regs)
    for (const Metric& m : r.metrics()) {
      bool seen = false;
      for (const auto& [n, k] : names) seen = seen || n == m.name;
      if (!seen) names.emplace_back(m.name, m.kind);
    }
  std::sort(names.begin(), names.end());

  util::JsonWriter w;
  w.begin_object();
  w.kv("schema", "hpcgraph-metrics-v1");
  w.kv("ranks", static_cast<std::uint64_t>(regs.size()));
  w.key("per_rank");
  w.begin_array();
  for (const Registry& r : regs) r.to_json(w);
  w.end_array();
  w.key("aggregate");
  w.begin_object();
  for (const auto& [name, kind] : names) {
    w.key(name);
    w.begin_object();
    switch (kind) {
      case MetricKind::kCounter: {
        std::uint64_t sum = 0, mx = 0;
        for (const Registry& r : regs)
          if (const Metric* m = r.find(name)) {
            sum += m->count;
            mx = m->count > mx ? m->count : mx;
          }
        w.kv("sum", sum);
        w.kv("max", mx);
        break;
      }
      case MetricKind::kGauge: {
        double mn = 0, mx = 0, sum = 0;
        std::uint64_t n = 0;
        for (const Registry& r : regs)
          if (const Metric* m = r.find(name)) {
            if (n == 0 || m->gauge < mn) mn = m->gauge;
            if (n == 0 || m->gauge > mx) mx = m->gauge;
            sum += m->gauge;
            ++n;
          }
        w.kv("min", mn);
        w.kv("mean", n > 0 ? sum / static_cast<double>(n) : 0.0);
        w.kv("max", mx);
        break;
      }
      case MetricKind::kHist: {
        Log2Histogram merged;
        for (const Registry& r : regs)
          if (const Metric* m = r.find(name))
            for (unsigned b = 0; b < m->hist.num_buckets(); ++b)
              if (m->hist.count(b) != 0)
                merged.add(Log2Histogram::bucket_lo(b), m->hist.count(b));
        w.kv("total", merged.total());
        w.key("buckets");
        w.begin_array();
        for (unsigned b = 0; b < merged.num_buckets(); ++b)
          w.value(merged.count(b));
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace hpcgraph::obs
