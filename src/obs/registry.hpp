#pragma once
/// \file registry.hpp
/// Metrics registry: counters, gauges, and log2 histograms under stable
/// dotted names (DESIGN.md §13).
///
/// The registry is the machine-readable complement to the span tracer: one
/// flat namespace per rank, absorbed from the existing telemetry structs
/// (`CommStats` -> comm.*, `PhaseBreakdown` -> phase.*, `SweepStats` ->
/// sweep.*) plus whatever a caller registers directly.  `--metrics-json`
/// serializes every rank's registry, gathers them on rank 0 through the
/// ordinary collectives (obs/export.hpp), and dumps per-rank values plus
/// cross-rank aggregates.  Names are pinned by tests/test_obs.cpp: renaming a
/// metric is a schema change, not a refactor.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "parcomm/comm_stats.hpp"
#include "parcomm/phase_timer.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/parallel_for.hpp"

namespace hpcgraph::obs {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHist = 2 };

struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;   ///< counter value
  double gauge = 0.0;        ///< gauge value
  Log2Histogram hist;        ///< histogram buckets
};

class Registry {
 public:
  /// Set (overwrite) a monotone counter.
  void set_counter(std::string_view name, std::uint64_t v);
  /// Add to a counter, creating it at zero.
  void add_counter(std::string_view name, std::uint64_t v);
  /// Set a point-in-time gauge.
  void set_gauge(std::string_view name, double v);
  /// Find-or-create a histogram to add samples into.
  Log2Histogram& histogram(std::string_view name);

  /// Absorb the existing telemetry structs under their stable prefixes.
  void absorb(const parcomm::CommStats& s);      ///< comm.<comm_field>
  void absorb(const parcomm::PhaseBreakdown& p); ///< phase.<phase_field>
  void absorb(const SweepStats& s);              ///< sweep.*

  std::size_t size() const { return metrics_.size(); }
  const std::vector<Metric>& metrics() const { return metrics_; }
  const Metric* find(std::string_view name) const;

  /// One rank's registry as a JSON object (name-sorted, deterministic).
  void to_json(util::JsonWriter& w) const;
  std::string to_json() const;

  /// Wire form for the rank-0 gather.
  std::vector<std::uint8_t> serialize() const;
  static Registry deserialize(const std::uint8_t* data, std::size_t len);

 private:
  Metric& find_or_create(std::string_view name, MetricKind kind);

  std::vector<Metric> metrics_;  // insertion order; sorted at emit time
};

}  // namespace hpcgraph::obs
