#include "obs/registry.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace hpcgraph::obs {

namespace {

template <typename T>
void put_pod(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t n = out.size();
  out.resize(n + sizeof(T));
  std::memcpy(out.data() + n, &v, sizeof(T));
}

template <typename T>
T get_pod(const std::uint8_t* data, std::size_t len, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  HG_CHECK_MSG(off + sizeof(T) <= len, "truncated obs metrics blob");
  T v;
  std::memcpy(&v, data + off, sizeof(T));
  off += sizeof(T);
  return v;
}

std::string dotted(std::string_view prefix, const char* field) {
  std::string out(prefix);
  out += '.';
  out += field;
  return out;
}

}  // namespace

Metric& Registry::find_or_create(std::string_view name, MetricKind kind) {
  for (Metric& m : metrics_)
    if (m.name == name) {
      HG_CHECK_MSG(m.kind == kind, "obs metric " << m.name
                                                 << " re-registered with a "
                                                    "different kind");
      return m;
    }
  metrics_.push_back(Metric{});
  metrics_.back().name = std::string(name);
  metrics_.back().kind = kind;
  return metrics_.back();
}

const Metric* Registry::find(std::string_view name) const {
  for (const Metric& m : metrics_)
    if (m.name == name) return &m;
  return nullptr;
}

void Registry::set_counter(std::string_view name, std::uint64_t v) {
  find_or_create(name, MetricKind::kCounter).count = v;
}

void Registry::add_counter(std::string_view name, std::uint64_t v) {
  find_or_create(name, MetricKind::kCounter).count += v;
}

void Registry::set_gauge(std::string_view name, double v) {
  find_or_create(name, MetricKind::kGauge).gauge = v;
}

Log2Histogram& Registry::histogram(std::string_view name) {
  return find_or_create(name, MetricKind::kHist).hist;
}

void Registry::absorb(const parcomm::CommStats& s) {
  namespace f = parcomm::comm_field;
  set_counter(dotted("comm", f::kBytesSent), s.bytes_sent);
  set_counter(dotted("comm", f::kBytesRemote), s.bytes_remote);
  set_counter(dotted("comm", f::kBytesSelf), s.bytes_self);
  set_counter(dotted("comm", f::kBytesReceived), s.bytes_received);
  set_counter(dotted("comm", f::kCollectiveCalls), s.collective_calls);
  set_counter(dotted("comm", f::kBarrierCalls), s.barrier_calls);
  set_counter(dotted("comm", f::kGhostRoundsDense), s.ghost_rounds_dense);
  set_counter(dotted("comm", f::kGhostRoundsSparse), s.ghost_rounds_sparse);
  set_counter(dotted("comm", f::kGhostRoundsReduce), s.ghost_rounds_reduce);
  set_counter(dotted("comm", f::kGhostRoundsAsync), s.ghost_rounds_async);
  // Signed (a forced-sparse round can cost more than dense): gauge, not
  // counter.
  set_gauge(dotted("comm", f::kGhostBytesSaved),
            static_cast<double>(s.ghost_bytes_saved));
}

void Registry::absorb(const parcomm::PhaseBreakdown& p) {
  namespace f = parcomm::phase_field;
  set_gauge(dotted("phase", f::kComp), p.comp);
  set_gauge(dotted("phase", f::kComm), p.comm);
  set_gauge(dotted("phase", f::kIdle), p.idle);
  set_gauge(dotted("phase", f::kPack), p.pack);
  set_gauge(dotted("phase", f::kRoute), p.route);
  set_gauge(dotted("phase", f::kCommWait), p.wait);
  set_gauge(dotted("phase", f::kSweepBusyMax), p.sweep_busy_max);
  set_gauge(dotted("phase", f::kSweepBusyTotal), p.sweep_busy_total);
  set_gauge(dotted("phase", f::kTotal), p.total);
}

void Registry::absorb(const SweepStats& s) {
  set_gauge("sweep.busy_max_s", s.busy_max);
  set_gauge("sweep.busy_total_s", s.busy_total);
  set_counter("sweep.work_max", s.work_max);
  set_counter("sweep.work_total", s.work_total);
  set_counter("sweep.loops", s.loops);
}

void Registry::to_json(util::JsonWriter& w) const {
  std::vector<const Metric*> order;
  order.reserve(metrics_.size());
  for (const Metric& m : metrics_) order.push_back(&m);
  std::sort(order.begin(), order.end(),
            [](const Metric* a, const Metric* b) { return a->name < b->name; });
  w.begin_object();
  for (const Metric* m : order) {
    switch (m->kind) {
      case MetricKind::kCounter:
        w.kv(m->name, m->count);
        break;
      case MetricKind::kGauge:
        w.kv(m->name, m->gauge);
        break;
      case MetricKind::kHist: {
        w.key(m->name);
        w.begin_object();
        w.kv("total", m->hist.total());
        w.key("buckets");
        w.begin_array();
        for (unsigned b = 0; b < m->hist.num_buckets(); ++b)
          w.value(m->hist.count(b));
        w.end_array();
        w.end_object();
        break;
      }
    }
  }
  w.end_object();
}

std::string Registry::to_json() const {
  util::JsonWriter w;
  to_json(w);
  return w.str();
}

std::vector<std::uint8_t> Registry::serialize() const {
  std::vector<std::uint8_t> out;
  put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(metrics_.size()));
  for (const Metric& m : metrics_) {
    put_pod<std::uint8_t>(out, static_cast<std::uint8_t>(m.kind));
    put_pod<std::uint32_t>(out, static_cast<std::uint32_t>(m.name.size()));
    const std::size_t n = out.size();
    out.resize(n + m.name.size());
    std::memcpy(out.data() + n, m.name.data(), m.name.size());
    switch (m.kind) {
      case MetricKind::kCounter:
        put_pod<std::uint64_t>(out, m.count);
        break;
      case MetricKind::kGauge:
        put_pod<double>(out, m.gauge);
        break;
      case MetricKind::kHist: {
        put_pod<std::uint32_t>(out,
                               static_cast<std::uint32_t>(m.hist.num_buckets()));
        for (unsigned b = 0; b < m.hist.num_buckets(); ++b)
          put_pod<std::uint64_t>(out, m.hist.count(b));
        break;
      }
    }
  }
  return out;
}

Registry Registry::deserialize(const std::uint8_t* data, std::size_t len) {
  Registry r;
  std::size_t off = 0;
  const std::uint32_t n = get_pod<std::uint32_t>(data, len, off);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto kind =
        static_cast<MetricKind>(get_pod<std::uint8_t>(data, len, off));
    const std::uint32_t slen = get_pod<std::uint32_t>(data, len, off);
    HG_CHECK_MSG(off + slen <= len, "truncated obs metrics blob");
    std::string name(reinterpret_cast<const char*>(data + off), slen);
    off += slen;
    switch (kind) {
      case MetricKind::kCounter:
        r.set_counter(name, get_pod<std::uint64_t>(data, len, off));
        break;
      case MetricKind::kGauge:
        r.set_gauge(name, get_pod<double>(data, len, off));
        break;
      case MetricKind::kHist: {
        Log2Histogram& h = r.histogram(name);
        const std::uint32_t nb = get_pod<std::uint32_t>(data, len, off);
        for (std::uint32_t b = 0; b < nb; ++b) {
          const std::uint64_t c = get_pod<std::uint64_t>(data, len, off);
          if (c != 0) h.add(Log2Histogram::bucket_lo(b), c);
        }
        break;
      }
    }
  }
  HG_CHECK_MSG(off == len, "trailing bytes in obs metrics blob");
  return r;
}

}  // namespace hpcgraph::obs
