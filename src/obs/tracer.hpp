#pragma once
/// \file tracer.hpp
/// Per-thread span tracer with cross-rank timeline export (DESIGN.md §13).
///
/// The paper's optimization story is told in per-rank phase breakdowns; this
/// layer records the *timeline* those breakdowns summarize.  Each traced
/// thread owns a lock-free single-writer ring buffer (a Lane) of fixed-size
/// events; RAII `Span`s stamp monotonic begin/duration pairs into the lane of
/// the calling thread, `counter()` stamps sampled values (frontier size,
/// bytes on wire, pool occupancy).  At finalize every rank serializes its
/// lanes, a clock-sync handshake measures each rank's offset against rank 0,
/// and rank 0 gathers the blobs through the ordinary `parcomm::Communicator`
/// collectives (see obs/export.hpp) and writes one Chrome-trace-event /
/// Perfetto-loadable JSON file with a pid per rank and a tid per thread.
///
/// Cost model: tracing is always compiled, runtime-gated.  With no tracer
/// installed a Span is one thread-local load, one branch, and two monotonic
/// clock reads — the clock reads are kept unconditionally so `Span::close()`
/// can replace `util::Timer` at call sites that feed PhaseTimer either way
/// (EXPERIMENTS.md §K measures the end-to-end overhead as within noise).
/// Span/counter names must be string literals (or otherwise outlive the
/// tracer): lanes store the pointer and intern at serialization time.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hpcgraph::obs {

/// Canonical span names.  trace_report.py keys its analyses on these
/// spellings; change them only together with the analyzer and DESIGN.md §13.
namespace span_name {
inline constexpr const char* kSuperstep = "engine.superstep";
inline constexpr const char* kCompute = "engine.compute";
inline constexpr const char* kComputeBoundary = "engine.compute_boundary";
inline constexpr const char* kComputeInterior = "engine.compute_interior";
inline constexpr const char* kExchange = "engine.exchange";
inline constexpr const char* kExchangeStart = "engine.exchange_start";
inline constexpr const char* kExchangeFinish = "engine.exchange_finish";
inline constexpr const char* kFrontierStep = "engine.frontier_step";
inline constexpr const char* kGhostPack = "ghost.pack";
inline constexpr const char* kGhostScatter = "ghost.scatter";
inline constexpr const char* kGhostReduce = "ghost.reduce";
inline constexpr const char* kRoute = "frontier.route";
inline constexpr const char* kPoolSweep = "pool.sweep";
inline constexpr const char* kCliRun = "cli.run";
inline constexpr const char* kBenchRegion = "bench.region";
}  // namespace span_name

/// Canonical counter-track names.
namespace counter_name {
inline constexpr const char* kFrontierActive = "frontier.active";
inline constexpr const char* kWireBytes = "wire.bytes";
inline constexpr const char* kPoolOccupancy = "pool.occupancy";
}  // namespace counter_name

/// Monotonic nanoseconds (steady clock).  All ranks share a process in this
/// simulation, but the export path still runs the clock-sync handshake and
/// rebases per-rank timestamps as a real MPI build would.
inline std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class EventKind : std::uint8_t { kSpan = 0, kCounter = 1 };

/// One recorded event.  `name` is an interned pointer (string literal).
struct Event {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;   ///< begin (span) or sample time (counter)
  std::int64_t dur_ns = 0;  ///< span duration; 0 for counters
  double value = 0.0;       ///< counter value / optional span annotation
  EventKind kind = EventKind::kSpan;
};

/// Single-writer ring buffer for one (rank, thread) timeline.  Exactly one
/// thread pushes at any time (the owning rank thread, or the pool worker the
/// lane was created for — pool loops on a rank never run concurrently with
/// each other); readers only look after a happens-before edge (pool join,
/// then the finalize barrier), so plain writes suffice: no locks, no atomics
/// on the hot path.  On overflow the oldest events are overwritten and
/// counted as dropped — tracing never stalls the traced code.
class Lane {
 public:
  Lane(int rank_id, unsigned tid, std::size_t capacity)
      : buf_(capacity), rank_(rank_id), tid_(tid) {}

  void push(const Event& e) {
    buf_[static_cast<std::size_t>(head_ % buf_.size())] = e;
    ++head_;
  }

  int rank() const { return rank_; }
  unsigned tid() const { return tid_; }
  std::uint64_t recorded() const { return head_; }
  std::uint64_t dropped() const {
    return head_ > buf_.size() ? head_ - buf_.size() : 0;
  }
  std::size_t size() const {
    return head_ < buf_.size() ? static_cast<std::size_t>(head_) : buf_.size();
  }

  /// Retained events, oldest first.
  std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(size());
    const std::uint64_t first = dropped();
    for (std::uint64_t i = first; i < head_; ++i)
      out.push_back(buf_[static_cast<std::size_t>(i % buf_.size())]);
    return out;
  }

 private:
  std::vector<Event> buf_;
  std::uint64_t head_ = 0;
  int rank_;
  unsigned tid_;
};

class Tracer;

namespace detail {
/// The calling thread's active lane.  Set by RankGuard (rank threads) or by
/// the pool-observer hook (worker threads); null means tracing is off for
/// this thread and spans degrade to plain timers.
struct ThreadBinding {
  Tracer* tracer = nullptr;
  Lane* lane = nullptr;
  void* rank_ctx = nullptr;  ///< obs-internal per-rank pool-lane table
};
ThreadBinding& tls_binding();
}  // namespace detail

struct TracerOptions {
  std::size_t ring_capacity = 1 << 16;  ///< events per lane (~2.6 MiB/lane)
};

/// A merged, clock-rebased event on rank 0 after the gather.
struct MergedEvent {
  std::uint32_t name_id = 0;
  int rank = 0;
  unsigned tid = 0;
  EventKind kind = EventKind::kSpan;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  double value = 0.0;
};

/// Process-wide tracer.  Construct, `install()`, run the traced region with
/// every rank thread holding a `RankGuard`, then call
/// `obs::finalize_trace(tracer, comm)` inside the ranks (collective) and
/// `write_chrome_json(path)` from the host thread afterwards.
class Tracer {
 public:
  explicit Tracer(TracerOptions opts = {});
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Make this the process-wide tracer and hook the thread-pool observer.
  /// Install before spawning rank threads; uninstall after they join.
  void install();
  static void uninstall();
  static Tracer* current();

  const TracerOptions& options() const { return opts_; }

  /// Find-or-create the lane for (rank, tid).  Thread-safe; rare path.
  Lane* lane(int rank_id, unsigned tid);

  /// All lanes created so far for one rank, tid-sorted.  Call only after the
  /// threads that feed them have quiesced (post pool join / finalize).
  std::vector<const Lane*> rank_lanes(int rank_id) const;

  /// Retained events of one rank across its lanes (unsorted across lanes).
  std::vector<Event> rank_events(int rank_id) const;

  // -- finalize plumbing (driven by obs/export.hpp) -------------------------
  /// Serialize one rank's lanes (names interned into a string table) plus its
  /// measured clock offset against rank 0.
  std::vector<std::uint8_t> serialize_rank(int rank_id,
                                           std::int64_t clock_offset_ns) const;
  /// Rank 0: absorb one serialized rank blob, rebasing timestamps by the
  /// offset recorded inside it.
  void merge_serialized(const std::uint8_t* data, std::size_t len);

  /// Rank 0 after finalize: merged events + name table.
  const std::vector<MergedEvent>& merged_events() const { return merged_; }
  const std::vector<std::string>& merged_names() const { return names_; }
  std::int64_t merged_clock_offset(int rank_id) const;

  /// Chrome trace-event JSON of the merged timeline (rank 0 after finalize).
  std::string chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  // -- internal: pool-observer support --------------------------------------
  void* make_rank_ctx(int rank_id, Lane* lane0);
  void ensure_pool_lanes(void* rank_ctx, unsigned nthreads);
  static void pool_sweep_cb(const void* ctx, unsigned tid, std::uint64_t chunks,
                            std::uint64_t weight, double busy_s);

 private:
  struct RankCtx;

  TracerOptions opts_;
  mutable std::mutex mu_;  ///< guards lanes_/ctxs_ registration (rare path)
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<RankCtx>> ctxs_;

  // rank 0 merge state (written only during finalize, single-threaded)
  std::vector<MergedEvent> merged_;
  std::vector<std::string> names_;
  std::vector<std::pair<int, std::int64_t>> offsets_;       // (rank, offset)
  std::vector<std::pair<int, std::uint64_t>> drop_totals_;  // (rank, dropped)
};

/// RAII: bind the calling thread to lane (rank, 0) of the installed tracer.
/// No-op when no tracer is installed.  Nest-safe: restores the previous
/// binding on destruction.
class RankGuard {
 public:
  explicit RankGuard(int rank_id);
  ~RankGuard();
  RankGuard(const RankGuard&) = delete;
  RankGuard& operator=(const RankGuard&) = delete;

 private:
  detail::ThreadBinding saved_;
};

/// RAII span.  Records into the calling thread's bound lane; always measures
/// so `close()` can replace `util::Timer` at sites that feed PhaseTimer.
class Span {
 public:
  explicit Span(const char* name)
      : name_(name), lane_(detail::tls_binding().lane), t0_(monotonic_ns()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (!closed_) record(monotonic_ns());
  }

  /// End the span now; returns its duration in seconds.  Idempotent — later
  /// calls keep returning elapsed time without re-recording.
  double close() {
    const std::int64_t t1 = monotonic_ns();
    if (!closed_) record(t1);
    return static_cast<double>(t1 - t0_) * 1e-9;
  }

  /// Attach a numeric annotation (serialized as args.value).
  void set_value(double v) { value_ = v; }

 private:
  void record(std::int64_t t1) {
    closed_ = true;
    if (lane_ != nullptr)
      lane_->push({name_, t0_, t1 - t0_, value_, EventKind::kSpan});
  }

  const char* name_;
  Lane* lane_;
  std::int64_t t0_;
  double value_ = 0.0;
  bool closed_ = false;
};

/// Stamp a counter sample onto the calling thread's lane (no-op when the
/// thread is unbound): one thread-local load and a branch when tracing is off.
inline void counter(const char* name, double value) {
  Lane* lane = detail::tls_binding().lane;
  if (lane != nullptr)
    lane->push({name, monotonic_ns(), 0, value, EventKind::kCounter});
}

}  // namespace hpcgraph::obs
