#pragma once
/// \file verify.hpp
/// Debug-mode collective-matching verifier (DESIGN.md §8).
///
/// The runtime's correctness rests on MPI collective discipline: every rank
/// calls the *same* collective, in the *same* order, with agreeing
/// signatures.  A violation in real MPI is a deadlock or silent corruption;
/// in this simulated runtime it is silent board corruption (most collectives
/// use the same two-barrier skeleton, so mismatched calls still "complete" —
/// reading each other's unrelated buffers).
///
/// When compiled with `PARCOMM_VERIFY` (CMake `HPCGRAPH_PARCOMM_VERIFY`,
/// AUTO-on in Debug and sanitizer builds), every collective first performs a
/// *fingerprint rendezvous*: each rank posts
///
///     { seq, op kind, element size, root, counts-checksum, call site }
///
/// to a shared slot, barriers, and cross-checks all ranks' fingerprints with
/// the same pure function.  On divergence every rank throws
/// CollectiveMismatch naming the diverging rank and *both* call sites
/// (std::source_location captured at the user's call) instead of hanging or
/// corrupting.  The `seq` field (a per-rank collective counter) additionally
/// catches ranks that skipped or double-issued an earlier collective even if
/// the op kinds happen to line up now.
///
/// Two data-level checks ride on the same machinery:
///   * Alltoallv count symmetry: the sender's counts row is checksummed at
///     the rendezvous and re-verified by every receiver at copy time, so a
///     rank that mutates its counts buffer mid-collective (a retained-buffer
///     reuse bug) is caught at the exact round it happens.
///   * Allreduce NaN poisoning: floating-point allreduce inputs are checked
///     before they can contaminate the global fold; the poisoning rank and
///     call site are reported.
///
/// Everything in this header is plain inline code with no dependency on the
/// communicator, so the pure checks are unit-testable in any build; the
/// *hooks* in comm.hpp compile away entirely when PARCOMM_VERIFY is off
/// (signatures carry no extra arguments, no fingerprint state is touched).

#include <cmath>
#include <cstdint>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#if defined(PARCOMM_VERIFY) && PARCOMM_VERIFY
#define HPCGRAPH_VERIFY_ENABLED 1
#else
#define HPCGRAPH_VERIFY_ENABLED 0
#endif

namespace hpcgraph::parcomm::verify {

/// Collective kinds fingerprinted by the verifier.
enum class Op : std::uint8_t {
  kBarrier,
  kAlltoallv,
  kAllreduce,
  kAllgather,
  kAllgatherv,
  kBroadcast,
  kBroadcastVec,
  kGatherv,
  kIalltoallv,    ///< split-phase alltoallv initiation
  kWaitExchange,  ///< split-phase completion (PendingExchange::wait)
};

inline const char* op_name(Op op) {
  switch (op) {
    case Op::kBarrier: return "barrier";
    case Op::kAlltoallv: return "alltoallv";
    case Op::kAllreduce: return "allreduce";
    case Op::kAllgather: return "allgather";
    case Op::kAllgatherv: return "allgatherv";
    case Op::kBroadcast: return "broadcast";
    case Op::kBroadcastVec: return "broadcast_vec";
    case Op::kGatherv: return "gatherv";
    case Op::kIalltoallv: return "ialltoallv";
    case Op::kWaitExchange: return "wait_exchange";
  }
  return "?";
}

/// What one rank claims it is about to do.  `seq`, `op`, `elem_size` and
/// `root` must agree across ranks; `aux` is per-rank data (the Alltoallv
/// counts checksum) consumed by pairwise checks, and the call-site fields
/// are for reporting only (ranks may legitimately reach the same collective
/// from different source lines, e.g. a root-only branch).
struct Fingerprint {
  std::uint64_t seq = 0;          ///< per-rank collective counter
  Op op = Op::kBarrier;           ///< collective kind
  std::uint32_t elem_size = 0;    ///< sizeof(T); 0 for barrier
  std::int32_t root = -1;         ///< rooted collectives; -1 otherwise
  std::uint64_t aux = 0;          ///< counts checksum (not cross-checked)
  const char* file = "";          ///< call-site file (string literal)
  std::uint32_t line = 0;         ///< call-site line
  const char* func = "";          ///< call-site enclosing function
};

/// Fields MPI requires to agree at a matched collective.
inline bool agree(const Fingerprint& a, const Fingerprint& b) {
  return a.seq == b.seq && a.op == b.op && a.elem_size == b.elem_size &&
         a.root == b.root;
}

/// A collective-discipline violation detected by the verifier.  Thrown by
/// every rank that observes the divergence, so CommWorld::run surfaces it
/// (never WorldAborted) with the full report in what().
class CollectiveMismatch : public std::runtime_error {
 public:
  explicit CollectiveMismatch(const std::string& what)
      : std::runtime_error(what) {}
};

/// A NaN fed into a floating-point Allreduce (poisons every rank's result).
class CollectivePoisoned : public std::runtime_error {
 public:
  explicit CollectivePoisoned(const std::string& what)
      : std::runtime_error(what) {}
};

inline void format_one(std::ostringstream& os, int rank,
                       const Fingerprint& f) {
  os << "  rank " << rank << ": seq=" << f.seq << " " << op_name(f.op)
     << " elem=" << f.elem_size << "B";
  if (f.root >= 0) os << " root=" << f.root;
  os << " at " << f.file << ":" << f.line;
  if (f.func && f.func[0] != '\0') os << " [" << f.func << "]";
  os << "\n";
}

/// Pure cross-rank agreement check: fps[r] is rank r's fingerprint for the
/// collective all ranks just rendezvoused at.  Returns "" when all agree,
/// otherwise a report naming the diverging rank and both call sites.  Every
/// rank evaluates this on identical data, so all ranks reach the same
/// verdict (no rank is left waiting in a barrier).
inline std::string check_fingerprints(std::span<const Fingerprint> fps) {
  if (fps.size() <= 1) return {};
  for (std::size_t r = 1; r < fps.size(); ++r) {
    if (agree(fps[0], fps[r])) continue;
    std::ostringstream os;
    os << "parcomm verify: collective mismatch (diverging rank " << r
       << "):\n";
    format_one(os, 0, fps[0]);
    format_one(os, static_cast<int>(r), fps[r]);
    if (fps[0].seq != fps[r].seq)
      os << "  (seq differs: a rank skipped or double-issued an earlier "
            "collective)";
    return os.str();
  }
  return {};
}

/// FNV-1a over a counts row — the Alltoallv count signature posted at the
/// rendezvous and re-verified by receivers at copy time.
inline std::uint64_t counts_checksum(std::span<const std::uint64_t> counts) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t c : counts) {
    const auto* p = reinterpret_cast<const unsigned char*>(&c);
    for (std::size_t i = 0; i < sizeof(c); ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Pure Alltoallv count-matrix validation: rows[i] is rank i's sendcounts.
/// MPI symmetry requires rank j to receive exactly rows[i][j] items from
/// rank i, which is only well-defined when every rank posts one count per
/// peer.  Returns "" when the matrix is well-formed, else a diagnostic
/// naming the offending rank (used by tests to inject asymmetric counts
/// and by alternative backends that carry explicit recvcounts).
inline std::string check_alltoallv_matrix(
    const std::vector<std::vector<std::uint64_t>>& rows) {
  const std::size_t n = rows.size();
  for (std::size_t r = 0; r < n; ++r) {
    if (rows[r].size() != n) {
      std::ostringstream os;
      os << "parcomm verify: asymmetric alltoallv counts: rank " << r
         << " posted " << rows[r].size() << " counts for a " << n
         << "-rank world";
      return os.str();
    }
  }
  return {};
}

/// Report for a counts row that changed between the rendezvous and the
/// receivers' copy phase (sender reused its counts buffer mid-collective).
inline std::string mutation_report(int source_rank, const Fingerprint& f) {
  std::ostringstream os;
  os << "parcomm verify: alltoallv counts of rank " << source_rank
     << " changed mid-collective (posted checksum does not match the row "
        "read at copy time)\n";
  format_one(os, source_rank, f);
  return os.str();
}

/// Allreduce input poisoning check: NaN in any rank's contribution makes
/// every rank's result NaN, usually far from the root cause.  Only
/// floating-point payloads are inspected; aggregate T is left alone.
template <typename T>
inline void check_allreduce_input(const T& value, int rank, const char* file,
                                  std::uint32_t line) {
  if constexpr (std::is_floating_point_v<T>) {
    if (std::isnan(value)) {
      std::ostringstream os;
      os << "parcomm verify: NaN fed into allreduce by rank " << rank
         << " at " << file << ":" << line;
      throw CollectivePoisoned(os.str());
    }
  } else {
    (void)value;
    (void)rank;
    (void)file;
    (void)line;
  }
}

}  // namespace hpcgraph::parcomm::verify
