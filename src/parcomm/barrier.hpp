#pragma once
/// \file barrier.hpp
/// Sense-reversing barrier used by every collective in the simulated
/// message-passing runtime.
///
/// Blocking (condition-variable based) rather than spinning: ranks are
/// threads and on an oversubscribed machine a spinning barrier would
/// serialize horribly.  Supports abort propagation so one failing rank
/// releases the others instead of deadlocking the world.

#include <condition_variable>
#include <mutex>
#include <stdexcept>

namespace hpcgraph::parcomm {

/// Thrown out of a barrier when another rank aborted the world.
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("parcomm: world aborted by a rank") {}
};

/// Reusable N-party barrier with abort support.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}

  /// Block until all parties arrive.  Throws WorldAborted if abort() was
  /// called by any rank (after releasing all waiters).
  void wait() {
    std::unique_lock lk(mu_);
    if (aborted_) throw WorldAborted();
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const unsigned long my_gen = generation_;
    cv_.wait(lk, [&] { return generation_ != my_gen || aborted_; });
    if (aborted_ && generation_ == my_gen) throw WorldAborted();
  }

  /// Release all current and future waiters with WorldAborted.
  void abort() {
    std::lock_guard lk(mu_);
    aborted_ = true;
    cv_.notify_all();
  }

  bool aborted() const {
    std::lock_guard lk(mu_);
    return aborted_;
  }

 private:
  const int parties_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  unsigned long generation_ = 0;
  bool aborted_ = false;
};

}  // namespace hpcgraph::parcomm
