#pragma once
/// \file phase_timer.hpp
/// Per-rank computation / communication / idle time accounting — the
/// instrument behind Figure 3 of the paper.
///
/// The communicator attributes time inside collectives as follows:
///   * waiting at a barrier for other ranks  -> idle
///   * copying payload between rank buffers  -> comm
/// Everything else between reset() and snapshot() is computation.  This
/// matches the paper's decomposition: "the time that each task spends in
/// computation, the time that a task is idle waiting for updates from other
/// tasks, and the total time spent in communication."

#include "util/timer.hpp"

namespace hpcgraph::parcomm {

/// Canonical serialized field names for PhaseBreakdown, shared by every
/// emitter (SuperstepTrace JSON, the obs metrics registry, trace_report.py).
/// These used to be ad-hoc string literals at each call site, which let the
/// split-phase wait bucket ship as "wait_s" in one place while the docs and
/// PhaseTimer API called it comm_wait.  One spelling, defined once:
namespace phase_field {
inline constexpr const char* kComp = "comp_s";
inline constexpr const char* kComm = "comm_s";
inline constexpr const char* kIdle = "idle_s";
inline constexpr const char* kPack = "pack_s";
inline constexpr const char* kRoute = "route_s";
inline constexpr const char* kCommWait = "comm_wait_s";
inline constexpr const char* kSweepBusyMax = "sweep_busy_max_s";
inline constexpr const char* kSweepBusyTotal = "sweep_busy_total_s";
inline constexpr const char* kTotal = "total_s";
}  // namespace phase_field

/// One rank's measured breakdown over a region.
struct PhaseBreakdown {
  double comp = 0;   ///< seconds in local computation
  double comm = 0;   ///< seconds moving payload
  double idle = 0;   ///< seconds waiting for other ranks
  double pack = 0;   ///< subset of comp: ghost-exchange pack/scatter staging
  double route = 0;  ///< subset of comp: frontier-layer send-queue builds
                     ///< (owner counts + Algorithm-3 sink pushes)
  double wait = 0;   ///< overlay: seconds completing split-phase exchanges
  double sweep_busy_max = 0;    ///< overlay: Σ per-loop max thread busy time
  double sweep_busy_total = 0;  ///< overlay: Σ per-loop total thread busy time
  double total = 0;  ///< wall seconds of the region

  double comp_ratio() const { return total > 0 ? comp / total : 0; }
  double comm_ratio() const { return total > 0 ? comm / total : 0; }
  double idle_ratio() const { return total > 0 ? idle / total : 0; }

  /// Difference of two snapshots of the *same running region*: the breakdown
  /// of what happened between them.  Lets per-superstep telemetry measure each
  /// round without reset()ing the timer out from under an enclosing
  /// measurement (bench regions snapshot the whole run).
  PhaseBreakdown operator-(const PhaseBreakdown& o) const {
    PhaseBreakdown d;
    d.comp = comp - o.comp;
    d.comm = comm - o.comm;
    d.idle = idle - o.idle;
    d.pack = pack - o.pack;
    d.route = route - o.route;
    d.wait = wait - o.wait;
    d.sweep_busy_max = sweep_busy_max - o.sweep_busy_max;
    d.sweep_busy_total = sweep_busy_total - o.sweep_busy_total;
    d.total = total - o.total;
    if (d.comp < 0) d.comp = 0;  // clock noise at microsecond scale
    return d;
  }
};

/// Accumulates comm/idle inside the communicator; comp is derived.
class PhaseTimer {
 public:
  /// Start (or restart) a measured region.
  void reset() {
    comm_.reset();
    idle_.reset();
    pack_.reset();
    route_.reset();
    wait_.reset();
    sweep_busy_max_.reset();
    sweep_busy_total_.reset();
    region_ = Timer{};
  }

  void add_comm(double s) { comm_.add(s); }
  void add_idle(double s) { idle_.add(s); }
  /// Ghost-exchange payload staging (pack/scatter).  Reported separately but
  /// still attributed to comp in the comp/comm/idle decomposition, since it
  /// is rank-local work that overlaps nothing.
  void add_pack(double s) { pack_.add(s); }
  /// Frontier-layer routing (owner-count pass + send-queue build inside
  /// engine::route_to_owners).  Like pack: rank-local work attributed to
  /// comp, reported separately so traces show what the queue cycle costs.
  void add_route(double s) { route_.add(s); }
  /// Time blocked completing a split-phase exchange (PendingExchange::wait).
  /// An overlay like pack: the barrier/copy inside the wait still lands in
  /// idle/comm as usual, this just attributes the same wall span to a
  /// distinct `comm_wait` bucket so overlapped schedules can show how much
  /// completion cost remains after hiding.
  void add_wait(double s) { wait_.add(s); }
  /// Intra-rank sweep imbalance overlay from the thread pool's SweepStats:
  /// busy_max is the sum over scheduled loops of the slowest thread's busy
  /// time (the critical path), busy_total the aggregate across threads.
  /// busy_max / (busy_total / nthreads) is the time-imbalance factor; the
  /// time already lands in comp, this just attributes its skew.
  void add_sweep(double busy_max, double busy_total) {
    sweep_busy_max_.add(busy_max);
    sweep_busy_total_.add(busy_total);
  }

  /// Breakdown of the region so far.
  PhaseBreakdown snapshot() const {
    PhaseBreakdown b;
    b.total = region_.elapsed();
    b.comm = comm_.total();
    b.idle = idle_.total();
    b.pack = pack_.total();
    b.route = route_.total();
    b.wait = wait_.total();
    b.sweep_busy_max = sweep_busy_max_.total();
    b.sweep_busy_total = sweep_busy_total_.total();
    b.comp = b.total - b.comm - b.idle;
    if (b.comp < 0) b.comp = 0;  // clock noise at microsecond scale
    return b;
  }

 private:
  AccumTimer comm_;
  AccumTimer idle_;
  AccumTimer pack_;
  AccumTimer route_;
  AccumTimer wait_;
  AccumTimer sweep_busy_max_;
  AccumTimer sweep_busy_total_;
  Timer region_;
};

}  // namespace hpcgraph::parcomm
