#include "parcomm/comm.hpp"

namespace hpcgraph::parcomm {

CommWorld::CommWorld(int nranks) : nranks_(nranks) {
  HG_CHECK_MSG(nranks >= 1, "CommWorld needs at least one rank");
}

void CommWorld::run(const std::function<void(Communicator&)>& fn) {
  barrier_ = std::make_unique<Barrier>(nranks_);
  board_.ptr.assign(nranks_, nullptr);
  board_.cnt.assign(nranks_, nullptr);
  board_.displ.assign(nranks_, nullptr);
  board_.scalar.assign(nranks_, 0);
#if HPCGRAPH_VERIFY_ENABLED
  board_.fp.assign(nranks_, verify::Fingerprint{});
#endif
  last_stats_.assign(nranks_, CommStats{});

  std::vector<std::exception_ptr> errors(nranks_);
  std::vector<std::thread> threads;
  threads.reserve(nranks_);

  const auto rank_main = [&](int r) {
    Communicator comm(*this, r);
    try {
      fn(comm);
    } catch (...) {
      errors[r] = std::current_exception();
      barrier_->abort();  // release peers stuck in collectives
    }
    last_stats_[r] = comm.stats();
  };

  for (int r = 1; r < nranks_; ++r) threads.emplace_back(rank_main, r);
  rank_main(0);
  for (auto& t : threads) t.join();

  for (int r = 0; r < nranks_; ++r) {
    if (!errors[r]) continue;
    try {
      std::rethrow_exception(errors[r]);
    } catch (const WorldAborted&) {
      continue;  // secondary casualty; keep looking for the root cause
    } catch (...) {
      throw;
    }
  }
  // Only WorldAborted exceptions found (can happen if a rank aborted after
  // recording its real error elsewhere): surface the first one.
  for (int r = 0; r < nranks_; ++r)
    if (errors[r]) std::rethrow_exception(errors[r]);
}

}  // namespace hpcgraph::parcomm
