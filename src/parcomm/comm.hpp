#pragma once
/// \file comm.hpp
/// The simulated message-passing runtime: CommWorld spawns N ranks (threads)
/// and Communicator gives each rank the MPI collective subset the paper's
/// algorithms use (Barrier, Alltoall(v), Allreduce, Allgather(v), Bcast,
/// Gatherv, Reduce).
///
/// Substitution note (see DESIGN.md §1): the paper runs MPI across Blue
/// Waters nodes.  Here each rank is an OS thread; ranks share no data except
/// through these collectives, so algorithm code is structured exactly as an
/// MPI program (task-local arrays, explicit send-queue construction, ghost
/// exchange).  All collectives are bulk-synchronous board exchanges:
///
///     post local buffer pointer -> barrier -> copy peers' payload -> barrier
///
/// The second barrier guarantees a sender's buffer is not reused before all
/// receivers have copied, mirroring MPI collective completion semantics.
///
/// Usage pattern:
///
///     CommWorld world(16);
///     std::vector<double> result(world.size());
///     world.run([&](Communicator& comm) {
///       ... comm.alltoallv(...) ...
///       result[comm.rank()] = local_answer;   // distinct slot per rank
///     });
///
/// Every collective is *lockstep*: all ranks must call the same collectives
/// in the same order (standard MPI discipline; violations deadlock real MPI
/// and abort this runtime via the barrier).

#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "parcomm/barrier.hpp"
#include "parcomm/comm_stats.hpp"
#include "parcomm/phase_timer.hpp"
#include "parcomm/verify.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/prefix_sum.hpp"
#include "util/timer.hpp"

// Collective-matching verifier hooks (see verify.hpp / DESIGN.md §8).  With
// PARCOMM_VERIFY on, every public collective gains a defaulted
// std::source_location argument so mismatch reports can name the user's
// call site; with it off the extra parameter and every hook below compile
// away and the signatures are exactly the historical ones.
#if HPCGRAPH_VERIFY_ENABLED
#include <source_location>
#define HPCGRAPH_COLLECTIVE_SITE \
  , std::source_location hg_call_site = std::source_location::current()
#define HPCGRAPH_BARRIER_SITE \
  std::source_location hg_call_site = std::source_location::current()
#define HPCGRAPH_SITE_FWD , hg_call_site
#else
#define HPCGRAPH_COLLECTIVE_SITE
#define HPCGRAPH_BARRIER_SITE
#define HPCGRAPH_SITE_FWD
#endif

namespace hpcgraph::parcomm {

class Communicator;

/// Owns the shared state for one group of ranks and runs SPMD regions.
class CommWorld {
 public:
  /// \param nranks  Number of simulated MPI tasks (>= 1).
  explicit CommWorld(int nranks);

  int size() const { return nranks_; }

  /// Execute fn(comm) on every rank concurrently; blocks until all ranks
  /// return.  If any rank throws, the world is aborted (other ranks are
  /// released from barriers) and the lowest-rank exception is rethrown.
  void run(const std::function<void(Communicator&)>& fn);

  /// Communication counters of each rank, captured at the end of the last
  /// run().
  const std::vector<CommStats>& last_stats() const { return last_stats_; }

 private:
  friend class Communicator;

  // Exchange board: per-rank posted pointers, read between two barriers.
  struct Board {
    std::vector<const void*> ptr;
    std::vector<const std::uint64_t*> cnt;
    std::vector<const std::uint64_t*> displ;
    std::vector<std::uint64_t> scalar;
    std::vector<verify::Fingerprint> fp;  // populated only under PARCOMM_VERIFY
  };

  const int nranks_;
  std::unique_ptr<Barrier> barrier_;
  Board board_;
  std::vector<CommStats> last_stats_;
};

/// One rank's handle to the world: rank id + collectives + instrumentation.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return world_.nranks_; }

  /// Synchronize all ranks. Wait time is accounted as idle.
  void barrier(HPCGRAPH_BARRIER_SITE) {
    ++stats_.barrier_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kBarrier, 0, -1, 0, hg_call_site);
#endif
    timed_barrier();
  }

  /// Personalized all-to-all exchange (MPI_Alltoallv).
  ///
  /// \param send        Concatenated per-destination segments.
  /// \param sendcounts  Items destined to each rank; segments are laid out
  ///                    in rank order (displs are derived internally).
  /// \param recvcounts  Optional out-param: items received from each rank.
  /// \param pool        Optional thread pool: the per-source memcpy fan-in
  ///                    copies source segments in parallel (they target
  ///                    disjoint ranges of the receive buffer).
  /// \returns items received, concatenated in source-rank order.
  template <typename T>
  std::vector<T> alltoallv(std::span<const T> send,
                           std::span<const std::uint64_t> sendcounts,
                           std::vector<std::uint64_t>* recvcounts = nullptr,
                           ThreadPool* pool = nullptr HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    HG_CHECK(static_cast<int>(sendcounts.size()) == size());
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAlltoallv, sizeof(T), -1,
                      verify::counts_checksum(sendcounts), hg_call_site);
#endif

    std::vector<std::uint64_t> displs(size());
    const std::uint64_t total =
        exclusive_prefix_sum(sendcounts, std::span<std::uint64_t>(displs));
    HG_CHECK_MSG(total == send.size(),
                 "alltoallv: counts sum " << total << " != payload "
                                          << send.size());

    stats_.bytes_sent += total * sizeof(T);
    stats_.bytes_remote += (total - sendcounts[rank_]) * sizeof(T);
    stats_.bytes_self += sendcounts[rank_] * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = send.data();
    b.cnt[rank_] = sendcounts.data();
    b.displ[rank_] = displs.data();
    timed_barrier();

    // Gather per-source counts, then copy payload segments in rank order.
    std::vector<std::uint64_t> rcounts(size());
    std::vector<std::uint64_t> roffs(size());
    std::uint64_t rtotal = 0;
    for (int s = 0; s < size(); ++s) {
      roffs[s] = rtotal;
      rtotal += (rcounts[s] = b.cnt[s][rank_]);
    }
#if HPCGRAPH_VERIFY_ENABLED
    // Send/recv count symmetry: what this receiver consumes from rank s must
    // be exactly what s declared at the rendezvous; a differing checksum
    // means s reused its counts buffer mid-collective.
    for (int s = 0; s < size(); ++s) {
      const std::uint64_t h = verify::counts_checksum(
          {b.cnt[s], static_cast<std::size_t>(size())});
      if (h != b.fp[static_cast<std::size_t>(s)].aux)
        throw verify::CollectiveMismatch(
            verify::mutation_report(s, b.fp[static_cast<std::size_t>(s)]));
    }
#endif

    std::vector<T> recv(rtotal);
    {
      Timer t;
      const auto copy_from = [&](int s) {
        if (rcounts[s] == 0) return;
        const auto* src = static_cast<const T*>(b.ptr[s]);
        std::memcpy(recv.data() + roffs[s], src + b.displ[s][rank_],
                    rcounts[s] * sizeof(T));
      };
      if (pool && pool->num_threads() > 1) {
        pool->for_each(0, static_cast<std::uint64_t>(size()),
                       [&](unsigned, std::uint64_t s) {
                         copy_from(static_cast<int>(s));
                       });
      } else {
        for (int s = 0; s < size(); ++s) copy_from(s);
      }
      phase_.add_comm(t.elapsed());
    }
    stats_.bytes_received += rtotal * sizeof(T);
    timed_barrier();  // senders may now reuse their buffers

    if (recvcounts) *recvcounts = std::move(rcounts);
    return recv;
  }

  /// Fixed-size all-to-all: rank r's send[d] lands in rank d's result[r].
  template <typename T>
  std::vector<T> alltoall(std::span<const T> send HPCGRAPH_COLLECTIVE_SITE) {
    HG_CHECK(static_cast<int>(send.size()) == size());
    std::vector<std::uint64_t> counts(size(), 1);
    return alltoallv<T>(send, counts, nullptr, nullptr HPCGRAPH_SITE_FWD);
  }

  /// All-reduce with a caller-supplied combiner, applied in rank order
  /// (deterministic floating-point results).
  template <typename T, typename F>
  T allreduce(const T& value, F&& combine HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAllreduce, sizeof(T), -1, 0, hg_call_site);
    verify::check_allreduce_input(value, rank_, hg_call_site.file_name(),
                                  hg_call_site.line());
#endif
    stats_.bytes_sent += sizeof(T);
    stats_.bytes_remote += static_cast<std::uint64_t>(size() - 1) * sizeof(T);
    stats_.bytes_self += sizeof(T);
    stats_.bytes_received += static_cast<std::uint64_t>(size()) * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = &value;
    timed_barrier();
    T acc = *static_cast<const T*>(b.ptr[0]);
    for (int s = 1; s < size(); ++s)
      acc = combine(acc, *static_cast<const T*>(b.ptr[s]));
    timed_barrier();
    return acc;
  }

  template <typename T>
  T allreduce_sum(const T& v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(v, [](T a, T b) { return a + b; } HPCGRAPH_SITE_FWD);
  }
  template <typename T>
  T allreduce_max(const T& v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(v, [](T a, T b) { return a > b ? a : b; }
                     HPCGRAPH_SITE_FWD);
  }
  template <typename T>
  T allreduce_min(const T& v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(v, [](T a, T b) { return a < b ? a : b; }
                     HPCGRAPH_SITE_FWD);
  }
  bool allreduce_lor(bool v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(static_cast<int>(v),
                     [](int a, int b) { return a | b; } HPCGRAPH_SITE_FWD) !=
           0;
  }

  /// Gather one item from every rank, at every rank.
  template <typename T>
  std::vector<T> allgather(const T& value HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAllgather, sizeof(T), -1, 0, hg_call_site);
#endif
    stats_.bytes_sent += sizeof(T);
    stats_.bytes_remote += static_cast<std::uint64_t>(size() - 1) * sizeof(T);
    stats_.bytes_self += sizeof(T);
    stats_.bytes_received += static_cast<std::uint64_t>(size()) * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = &value;
    timed_barrier();
    std::vector<T> out(size());
    for (int s = 0; s < size(); ++s)
      out[s] = *static_cast<const T*>(b.ptr[s]);
    timed_barrier();
    return out;
  }

  /// Gather variable-length vectors from every rank, at every rank;
  /// concatenated in rank order.  Optional out-param: per-source counts.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::uint64_t>* counts =
                                nullptr HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAllgatherv, sizeof(T), -1, 0, hg_call_site);
#endif
    stats_.bytes_sent += local.size() * sizeof(T);
    stats_.bytes_remote +=
        local.size() * sizeof(T) * static_cast<std::uint64_t>(size() - 1);
    stats_.bytes_self += local.size() * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = local.data();
    b.scalar[rank_] = local.size();
    timed_barrier();
    std::vector<std::uint64_t> cnts(size());
    std::uint64_t total = 0;
    for (int s = 0; s < size(); ++s) total += (cnts[s] = b.scalar[s]);
    std::vector<T> out(total);
    {
      Timer t;
      std::uint64_t off = 0;
      for (int s = 0; s < size(); ++s) {
        if (cnts[s] == 0) continue;
        std::memcpy(out.data() + off, b.ptr[s], cnts[s] * sizeof(T));
        off += cnts[s];
      }
      phase_.add_comm(t.elapsed());
    }
    stats_.bytes_received += total * sizeof(T);
    timed_barrier();
    if (counts) *counts = std::move(cnts);
    return out;
  }

  /// Broadcast `value` from `root` to all ranks.
  template <typename T>
  T broadcast(const T& value, int root HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kBroadcast, sizeof(T), root, 0,
                      hg_call_site);
#endif
    CommWorld::Board& b = world_.board_;
    if (rank_ == root) {
      b.ptr[root] = &value;
      stats_.bytes_sent += sizeof(T);
      stats_.bytes_remote += sizeof(T) * (size() - 1);
      stats_.bytes_self += sizeof(T);
    }
    timed_barrier();
    T out = *static_cast<const T*>(b.ptr[root]);
    stats_.bytes_received += sizeof(T);
    timed_barrier();
    return out;
  }

  /// Broadcast a vector from `root`; all ranks return the root's vector.
  template <typename T>
  std::vector<T> broadcast_vec(std::span<const T> local,
                               int root HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kBroadcastVec, sizeof(T), root, 0,
                      hg_call_site);
#endif
    CommWorld::Board& b = world_.board_;
    if (rank_ == root) {
      b.ptr[root] = local.data();
      b.scalar[root] = local.size();
      stats_.bytes_sent += local.size() * sizeof(T);
      stats_.bytes_remote += local.size() * sizeof(T) * (size() - 1);
      stats_.bytes_self += local.size() * sizeof(T);
    }
    timed_barrier();
    std::vector<T> out(b.scalar[root]);
    {
      Timer t;
      if (!out.empty())
        std::memcpy(out.data(), b.ptr[root], out.size() * sizeof(T));
      phase_.add_comm(t.elapsed());
    }
    stats_.bytes_received += out.size() * sizeof(T);
    timed_barrier();
    return out;
  }

  /// Gather variable-length vectors at `root` (others receive empty).
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, int root,
                         std::vector<std::uint64_t>* counts =
                             nullptr HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kGatherv, sizeof(T), root, 0, hg_call_site);
#endif
    stats_.bytes_sent += local.size() * sizeof(T);
    if (rank_ != root) {
      stats_.bytes_remote += local.size() * sizeof(T);
    } else {
      stats_.bytes_self += local.size() * sizeof(T);
    }

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = local.data();
    b.scalar[rank_] = local.size();
    timed_barrier();
    std::vector<T> out;
    if (rank_ == root) {
      std::vector<std::uint64_t> cnts(size());
      std::uint64_t total = 0;
      for (int s = 0; s < size(); ++s) total += (cnts[s] = b.scalar[s]);
      out.resize(total);
      Timer t;
      std::uint64_t off = 0;
      for (int s = 0; s < size(); ++s) {
        if (cnts[s] == 0) continue;
        std::memcpy(out.data() + off, b.ptr[s], cnts[s] * sizeof(T));
        off += cnts[s];
      }
      phase_.add_comm(t.elapsed());
      stats_.bytes_received += total * sizeof(T);
      if (counts) *counts = std::move(cnts);
    }
    timed_barrier();
    return out;
  }

  /// Communication counters for this rank (reset with stats().reset()).
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Per-rank comp/comm/idle instrumentation (Figure 3).
  PhaseTimer& phase_timer() { return phase_; }

 private:
  friend class CommWorld;
  Communicator(CommWorld& world, int rank) : world_(world), rank_(rank) {}

  void timed_barrier() {
    Timer t;
    world_.barrier_->wait();
    phase_.add_idle(t.elapsed());
  }

#if HPCGRAPH_VERIFY_ENABLED
  /// Fingerprint rendezvous executed at the head of every collective: post
  /// this rank's fingerprint, synchronize, and cross-check all ranks with
  /// the same pure predicate.  On divergence *every* rank throws the same
  /// CollectiveMismatch between barriers, so no rank is left waiting and
  /// CommWorld::run surfaces the report instead of a hang or silent board
  /// corruption.  Slots stay readable until each rank's next rendezvous,
  /// which is gated behind the current collective's own barriers.
  void verify_rendezvous(verify::Op op, std::uint32_t elem_size,
                         std::int32_t root, std::uint64_t aux,
                         const std::source_location& loc) {
    world_.board_.fp[static_cast<std::size_t>(rank_)] = verify::Fingerprint{
        verify_seq_++, op,       elem_size,
        root,          aux,      loc.file_name(),
        loc.line(),    loc.function_name()};
    timed_barrier();
    const std::string err = verify::check_fingerprints(world_.board_.fp);
    if (!err.empty()) throw verify::CollectiveMismatch(err);
  }
#endif

  CommWorld& world_;
  const int rank_;
  CommStats stats_;
  PhaseTimer phase_;
#if HPCGRAPH_VERIFY_ENABLED
  std::uint64_t verify_seq_ = 0;  // per-rank collective counter
#endif
};

}  // namespace hpcgraph::parcomm
