#pragma once
/// \file comm.hpp
/// The simulated message-passing runtime: CommWorld spawns N ranks (threads)
/// and Communicator gives each rank the MPI collective subset the paper's
/// algorithms use (Barrier, Alltoall(v), Allreduce, Allgather(v), Bcast,
/// Gatherv, Reduce).
///
/// Substitution note (see DESIGN.md §1): the paper runs MPI across Blue
/// Waters nodes.  Here each rank is an OS thread; ranks share no data except
/// through these collectives, so algorithm code is structured exactly as an
/// MPI program (task-local arrays, explicit send-queue construction, ghost
/// exchange).  All collectives are bulk-synchronous board exchanges:
///
///     post local buffer pointer -> barrier -> copy peers' payload -> barrier
///
/// The second barrier guarantees a sender's buffer is not reused before all
/// receivers have copied, mirroring MPI collective completion semantics.
///
/// Usage pattern:
///
///     CommWorld world(16);
///     std::vector<double> result(world.size());
///     world.run([&](Communicator& comm) {
///       ... comm.alltoallv(...) ...
///       result[comm.rank()] = local_answer;   // distinct slot per rank
///     });
///
/// Every collective is *lockstep*: all ranks must call the same collectives
/// in the same order (standard MPI discipline; violations deadlock real MPI
/// and abort this runtime via the barrier).

#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "parcomm/barrier.hpp"
#include "parcomm/comm_stats.hpp"
#include "parcomm/phase_timer.hpp"
#include "parcomm/verify.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/prefix_sum.hpp"
#include "util/timer.hpp"

// Collective-matching verifier hooks (see verify.hpp / DESIGN.md §8).  With
// PARCOMM_VERIFY on, every public collective gains a defaulted
// std::source_location argument so mismatch reports can name the user's
// call site; with it off the extra parameter and every hook below compile
// away and the signatures are exactly the historical ones.
#if HPCGRAPH_VERIFY_ENABLED
#include <source_location>
#define HPCGRAPH_COLLECTIVE_SITE \
  , std::source_location hg_call_site = std::source_location::current()
#define HPCGRAPH_BARRIER_SITE \
  std::source_location hg_call_site = std::source_location::current()
// Out-of-class definition counterpart: same parameter, no re-stated default.
#define HPCGRAPH_COLLECTIVE_SITE_DEF , std::source_location hg_call_site
#define HPCGRAPH_SITE_FWD , hg_call_site
#else
#define HPCGRAPH_COLLECTIVE_SITE
#define HPCGRAPH_BARRIER_SITE
#define HPCGRAPH_COLLECTIVE_SITE_DEF
#define HPCGRAPH_SITE_FWD
#endif

namespace hpcgraph::parcomm {

class Communicator;

template <typename T>
class PendingExchange;

/// Type-erased in-flight state of one split-phase alltoallv (ialltoallv).
///
/// The counts/displs rows posted to the exchange board are *copies* held
/// here — not the caller's buffers — so the caller may free or reuse its
/// count arrays the moment initiation returns, even while a slower peer is
/// still reading the board.  The per-source receive snapshot (peer payload
/// pointer + the offset of this rank's segment) is taken between the
/// initiation barriers; peers' send buffers stay valid until the completion
/// barrier inside wait(), which every rank reaches.  States are pooled per
/// Communicator so steady-state split-phase rounds allocate nothing.
struct PendingState {
  std::vector<std::uint64_t> sendcounts;  ///< board counts row (stable copy)
  std::vector<std::uint64_t> displs;      ///< board displs row (stable copy)
  std::vector<const void*> src;           ///< peer payload base pointers
  std::vector<std::uint64_t> src_off;     ///< element offset of my segment
  std::vector<std::uint64_t> rcounts;     ///< items inbound per source
  std::vector<std::uint64_t> roffs;       ///< receive-buffer offsets
  std::uint64_t rtotal = 0;               ///< total items inbound
  std::uint32_t elem_size = 0;            ///< sizeof(T) of the live round
  bool active = false;                    ///< pool slot in use
};

/// Owns the shared state for one group of ranks and runs SPMD regions.
class CommWorld {
 public:
  /// \param nranks  Number of simulated MPI tasks (>= 1).
  explicit CommWorld(int nranks);

  int size() const { return nranks_; }

  /// Execute fn(comm) on every rank concurrently; blocks until all ranks
  /// return.  If any rank throws, the world is aborted (other ranks are
  /// released from barriers) and the lowest-rank exception is rethrown.
  void run(const std::function<void(Communicator&)>& fn);

  /// Communication counters of each rank, captured at the end of the last
  /// run().
  const std::vector<CommStats>& last_stats() const { return last_stats_; }

 private:
  friend class Communicator;

  // Exchange board: per-rank posted pointers, read between two barriers.
  struct Board {
    std::vector<const void*> ptr;
    std::vector<const std::uint64_t*> cnt;
    std::vector<const std::uint64_t*> displ;
    std::vector<std::uint64_t> scalar;
    std::vector<verify::Fingerprint> fp;  // populated only under PARCOMM_VERIFY
  };

  const int nranks_;
  std::unique_ptr<Barrier> barrier_;
  Board board_;
  std::vector<CommStats> last_stats_;
};

/// One rank's handle to the world: rank id + collectives + instrumentation.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return world_.nranks_; }

  /// Synchronize all ranks. Wait time is accounted as idle.
  void barrier(HPCGRAPH_BARRIER_SITE) {
    check_no_pending();
    ++stats_.barrier_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kBarrier, 0, -1, 0, hg_call_site);
#endif
    timed_barrier();
  }

  /// Personalized all-to-all exchange (MPI_Alltoallv).
  ///
  /// \param send        Concatenated per-destination segments.
  /// \param sendcounts  Items destined to each rank; segments are laid out
  ///                    in rank order (displs are derived internally).
  /// \param recvcounts  Optional out-param: items received from each rank.
  /// \param pool        Optional thread pool: the per-source memcpy fan-in
  ///                    copies source segments in parallel (they target
  ///                    disjoint ranges of the receive buffer).
  /// \returns items received, concatenated in source-rank order.
  template <typename T>
  std::vector<T> alltoallv(std::span<const T> send,
                           std::span<const std::uint64_t> sendcounts,
                           std::vector<std::uint64_t>* recvcounts = nullptr,
                           ThreadPool* pool = nullptr HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    HG_CHECK(static_cast<int>(sendcounts.size()) == size());
    check_no_pending();
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAlltoallv, sizeof(T), -1,
                      verify::counts_checksum(sendcounts), hg_call_site);
#endif

    std::vector<std::uint64_t> displs(size());
    const std::uint64_t total =
        exclusive_prefix_sum(sendcounts, std::span<std::uint64_t>(displs));
    HG_CHECK_MSG(total == send.size(),
                 "alltoallv: counts sum " << total << " != payload "
                                          << send.size());

    stats_.bytes_sent += total * sizeof(T);
    stats_.bytes_remote += (total - sendcounts[rank_]) * sizeof(T);
    stats_.bytes_self += sendcounts[rank_] * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = send.data();
    b.cnt[rank_] = sendcounts.data();
    b.displ[rank_] = displs.data();
    timed_barrier();

    // Gather per-source counts, then copy payload segments in rank order.
    std::vector<std::uint64_t> rcounts(size());
    std::vector<std::uint64_t> roffs(size());
    std::uint64_t rtotal = 0;
    for (int s = 0; s < size(); ++s) {
      roffs[s] = rtotal;
      rtotal += (rcounts[s] = b.cnt[s][rank_]);
    }
#if HPCGRAPH_VERIFY_ENABLED
    // Send/recv count symmetry: what this receiver consumes from rank s must
    // be exactly what s declared at the rendezvous; a differing checksum
    // means s reused its counts buffer mid-collective.
    for (int s = 0; s < size(); ++s) {
      const std::uint64_t h = verify::counts_checksum(
          {b.cnt[s], static_cast<std::size_t>(size())});
      if (h != b.fp[static_cast<std::size_t>(s)].aux)
        throw verify::CollectiveMismatch(
            verify::mutation_report(s, b.fp[static_cast<std::size_t>(s)]));
    }
#endif

    std::vector<T> recv(rtotal);
    {
      Timer t;
      const auto copy_from = [&](int s) {
        if (rcounts[s] == 0) return;
        const auto* src = static_cast<const T*>(b.ptr[s]);
        std::memcpy(recv.data() + roffs[s], src + b.displ[s][rank_],
                    rcounts[s] * sizeof(T));
      };
      if (pool && pool->num_threads() > 1) {
        pool->for_each(0, static_cast<std::uint64_t>(size()),
                       [&](unsigned, std::uint64_t s) {
                         copy_from(static_cast<int>(s));
                       });
      } else {
        for (int s = 0; s < size(); ++s) copy_from(s);
      }
      phase_.add_comm(t.elapsed());
    }
    stats_.bytes_received += rtotal * sizeof(T);
    timed_barrier();  // senders may now reuse their buffers

    if (recvcounts) *recvcounts = std::move(rcounts);
    return recv;
  }

  /// Fixed-size all-to-all: rank r's send[d] lands in rank d's result[r].
  template <typename T>
  std::vector<T> alltoall(std::span<const T> send HPCGRAPH_COLLECTIVE_SITE) {
    HG_CHECK(static_cast<int>(send.size()) == size());
    std::vector<std::uint64_t> counts(size(), 1);
    return alltoallv<T>(send, counts, nullptr, nullptr HPCGRAPH_SITE_FWD);
  }

  /// Split-phase personalized all-to-all (MPI_Ialltoallv analogue).
  ///
  /// Initiation posts the payload and launches the wire round, then returns
  /// a PendingExchange handle; the receive-side copy and the completion
  /// barrier are deferred to `handle.wait()`.  Between initiation and wait
  /// the rank may run arbitrary *local* computation — issuing any other
  /// collective while an exchange is pending is a hard error (HG_CHECK), the
  /// split-phase analogue of MPI's matched-request discipline.
  ///
  /// Lifetime contract: `sendcounts` may be reused immediately (initiation
  /// copies it into pooled storage that backs the board row), but `send`
  /// must stay valid and unmodified until wait() returns — identical to
  /// MPI_Ialltoallv's send-buffer rule.
  ///
  /// Under PARCOMM_VERIFY the initiation fingerprints as `ialltoallv` and
  /// the wait as `wait_exchange`, so a rank pairing ialltoallv with a
  /// blocking collective — or skipping the wait — aborts with both call
  /// sites instead of corrupting the board.
  template <typename T>
  PendingExchange<T> ialltoallv(std::span<const T> send,
                                std::span<const std::uint64_t> sendcounts,
                                ThreadPool* pool =
                                    nullptr HPCGRAPH_COLLECTIVE_SITE);

  /// All-reduce with a caller-supplied combiner, applied in rank order
  /// (deterministic floating-point results).
  template <typename T, typename F>
  T allreduce(const T& value, F&& combine HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_no_pending();
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAllreduce, sizeof(T), -1, 0, hg_call_site);
    verify::check_allreduce_input(value, rank_, hg_call_site.file_name(),
                                  hg_call_site.line());
#endif
    stats_.bytes_sent += sizeof(T);
    stats_.bytes_remote += static_cast<std::uint64_t>(size() - 1) * sizeof(T);
    stats_.bytes_self += sizeof(T);
    stats_.bytes_received += static_cast<std::uint64_t>(size()) * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = &value;
    timed_barrier();
    T acc = *static_cast<const T*>(b.ptr[0]);
    for (int s = 1; s < size(); ++s)
      acc = combine(acc, *static_cast<const T*>(b.ptr[s]));
    timed_barrier();
    return acc;
  }

  template <typename T>
  T allreduce_sum(const T& v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(v, [](T a, T b) { return a + b; } HPCGRAPH_SITE_FWD);
  }
  template <typename T>
  T allreduce_max(const T& v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(v, [](T a, T b) { return a > b ? a : b; }
                     HPCGRAPH_SITE_FWD);
  }
  template <typename T>
  T allreduce_min(const T& v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(v, [](T a, T b) { return a < b ? a : b; }
                     HPCGRAPH_SITE_FWD);
  }
  bool allreduce_lor(bool v HPCGRAPH_COLLECTIVE_SITE) {
    return allreduce(static_cast<int>(v),
                     [](int a, int b) { return a | b; } HPCGRAPH_SITE_FWD) !=
           0;
  }

  /// Gather one item from every rank, at every rank.
  template <typename T>
  std::vector<T> allgather(const T& value HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_no_pending();
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAllgather, sizeof(T), -1, 0, hg_call_site);
#endif
    stats_.bytes_sent += sizeof(T);
    stats_.bytes_remote += static_cast<std::uint64_t>(size() - 1) * sizeof(T);
    stats_.bytes_self += sizeof(T);
    stats_.bytes_received += static_cast<std::uint64_t>(size()) * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = &value;
    timed_barrier();
    std::vector<T> out(size());
    for (int s = 0; s < size(); ++s)
      out[s] = *static_cast<const T*>(b.ptr[s]);
    timed_barrier();
    return out;
  }

  /// Gather variable-length vectors from every rank, at every rank;
  /// concatenated in rank order.  Optional out-param: per-source counts.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::uint64_t>* counts =
                                nullptr HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_no_pending();
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kAllgatherv, sizeof(T), -1, 0, hg_call_site);
#endif
    stats_.bytes_sent += local.size() * sizeof(T);
    stats_.bytes_remote +=
        local.size() * sizeof(T) * static_cast<std::uint64_t>(size() - 1);
    stats_.bytes_self += local.size() * sizeof(T);

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = local.data();
    b.scalar[rank_] = local.size();
    timed_barrier();
    std::vector<std::uint64_t> cnts(size());
    std::uint64_t total = 0;
    for (int s = 0; s < size(); ++s) total += (cnts[s] = b.scalar[s]);
    std::vector<T> out(total);
    {
      Timer t;
      std::uint64_t off = 0;
      for (int s = 0; s < size(); ++s) {
        if (cnts[s] == 0) continue;
        std::memcpy(out.data() + off, b.ptr[s], cnts[s] * sizeof(T));
        off += cnts[s];
      }
      phase_.add_comm(t.elapsed());
    }
    stats_.bytes_received += total * sizeof(T);
    timed_barrier();
    if (counts) *counts = std::move(cnts);
    return out;
  }

  /// Broadcast `value` from `root` to all ranks.
  template <typename T>
  T broadcast(const T& value, int root HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_no_pending();
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kBroadcast, sizeof(T), root, 0,
                      hg_call_site);
#endif
    CommWorld::Board& b = world_.board_;
    if (rank_ == root) {
      b.ptr[root] = &value;
      stats_.bytes_sent += sizeof(T);
      stats_.bytes_remote += sizeof(T) * (size() - 1);
      stats_.bytes_self += sizeof(T);
    }
    timed_barrier();
    T out = *static_cast<const T*>(b.ptr[root]);
    stats_.bytes_received += sizeof(T);
    timed_barrier();
    return out;
  }

  /// Broadcast a vector from `root`; all ranks return the root's vector.
  template <typename T>
  std::vector<T> broadcast_vec(std::span<const T> local,
                               int root HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_no_pending();
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kBroadcastVec, sizeof(T), root, 0,
                      hg_call_site);
#endif
    CommWorld::Board& b = world_.board_;
    if (rank_ == root) {
      b.ptr[root] = local.data();
      b.scalar[root] = local.size();
      stats_.bytes_sent += local.size() * sizeof(T);
      stats_.bytes_remote += local.size() * sizeof(T) * (size() - 1);
      stats_.bytes_self += local.size() * sizeof(T);
    }
    timed_barrier();
    std::vector<T> out(b.scalar[root]);
    {
      Timer t;
      if (!out.empty())
        std::memcpy(out.data(), b.ptr[root], out.size() * sizeof(T));
      phase_.add_comm(t.elapsed());
    }
    stats_.bytes_received += out.size() * sizeof(T);
    timed_barrier();
    return out;
  }

  /// Gather variable-length vectors at `root` (others receive empty).
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, int root,
                         std::vector<std::uint64_t>* counts =
                             nullptr HPCGRAPH_COLLECTIVE_SITE) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_no_pending();
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kGatherv, sizeof(T), root, 0, hg_call_site);
#endif
    stats_.bytes_sent += local.size() * sizeof(T);
    if (rank_ != root) {
      stats_.bytes_remote += local.size() * sizeof(T);
    } else {
      stats_.bytes_self += local.size() * sizeof(T);
    }

    CommWorld::Board& b = world_.board_;
    b.ptr[rank_] = local.data();
    b.scalar[rank_] = local.size();
    timed_barrier();
    std::vector<T> out;
    if (rank_ == root) {
      std::vector<std::uint64_t> cnts(size());
      std::uint64_t total = 0;
      for (int s = 0; s < size(); ++s) total += (cnts[s] = b.scalar[s]);
      out.resize(total);
      Timer t;
      std::uint64_t off = 0;
      for (int s = 0; s < size(); ++s) {
        if (cnts[s] == 0) continue;
        std::memcpy(out.data() + off, b.ptr[s], cnts[s] * sizeof(T));
        off += cnts[s];
      }
      phase_.add_comm(t.elapsed());
      stats_.bytes_received += total * sizeof(T);
      if (counts) *counts = std::move(cnts);
    }
    timed_barrier();
    return out;
  }

  /// Communication counters for this rank (reset with stats().reset()).
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Per-rank comp/comm/idle instrumentation (Figure 3).
  PhaseTimer& phase_timer() { return phase_; }

 private:
  friend class CommWorld;
  template <typename T>
  friend class PendingExchange;
  Communicator(CommWorld& world, int rank) : world_(world), rank_(rank) {}

  void timed_barrier() {
    Timer t;
    world_.barrier_->wait();
    phase_.add_idle(t.elapsed());
  }

  /// Split-phase discipline: no collective may start while an exchange is
  /// in flight (its board row is still live and peers have not passed the
  /// completion barrier).  This also catches a PendingExchange that was
  /// destroyed without wait() — the depth stays elevated, so the *next*
  /// collective on this rank reports the skipped completion.
  void check_no_pending() const {
    HG_CHECK_MSG(pending_depth_ == 0,
                 "collective issued while a split-phase exchange is pending "
                 "(missing PendingExchange::wait()?)");
  }

  /// Pool a PendingState (request pooling): steady-state split-phase rounds
  /// reuse the same storage and allocate nothing.
  PendingState* acquire_pending() {
    for (auto& st : pending_pool_)
      if (!st->active) {
        st->active = true;
        return st.get();
      }
    pending_pool_.push_back(std::make_unique<PendingState>());
    pending_pool_.back()->active = true;
    return pending_pool_.back().get();
  }

  /// Completion half of ialltoallv, invoked by PendingExchange::wait().
  /// Copies each source's segment from the snapshot taken at initiation,
  /// then passes the completion barrier that releases every sender's
  /// payload buffer.  The whole call is additionally accounted to the
  /// `wait` phase overlay (distinct from pack; see PhaseTimer).
  template <typename T>
  std::vector<T> ialltoallv_wait(PendingState* st, ThreadPool* pool,
                                 std::vector<std::uint64_t>* recvcounts
                                     HPCGRAPH_COLLECTIVE_SITE) {
    Timer wait_timer;
    HG_CHECK(st->active && st->elem_size == sizeof(T));
    ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
    verify_rendezvous(verify::Op::kWaitExchange, sizeof(T), -1, 0,
                      hg_call_site);
#endif
    std::vector<T> recv(st->rtotal);
    {
      Timer t;
      const auto copy_from = [&](int s) {
        if (st->rcounts[s] == 0) return;
        const auto* src = static_cast<const T*>(st->src[s]);
        std::memcpy(recv.data() + st->roffs[s], src + st->src_off[s],
                    st->rcounts[s] * sizeof(T));
      };
      if (pool && pool->num_threads() > 1) {
        pool->for_each(0, static_cast<std::uint64_t>(size()),
                       [&](unsigned, std::uint64_t s) {
                         copy_from(static_cast<int>(s));
                       });
      } else {
        for (int s = 0; s < size(); ++s) copy_from(s);
      }
      phase_.add_comm(t.elapsed());
    }
    stats_.bytes_received += st->rtotal * sizeof(T);
    if (recvcounts) *recvcounts = st->rcounts;
    timed_barrier();  // senders may now reuse their payload buffers
    --pending_depth_;
    st->active = false;
    phase_.add_wait(wait_timer.elapsed());
    return recv;
  }

#if HPCGRAPH_VERIFY_ENABLED
  /// Fingerprint rendezvous executed at the head of every collective: post
  /// this rank's fingerprint, synchronize, and cross-check all ranks with
  /// the same pure predicate.  On divergence *every* rank throws the same
  /// CollectiveMismatch between barriers, so no rank is left waiting and
  /// CommWorld::run surfaces the report instead of a hang or silent board
  /// corruption.  Slots stay readable until each rank's next rendezvous,
  /// which is gated behind the current collective's own barriers.
  void verify_rendezvous(verify::Op op, std::uint32_t elem_size,
                         std::int32_t root, std::uint64_t aux,
                         const std::source_location& loc) {
    world_.board_.fp[static_cast<std::size_t>(rank_)] = verify::Fingerprint{
        verify_seq_++, op,       elem_size,
        root,          aux,      loc.file_name(),
        loc.line(),    loc.function_name()};
    timed_barrier();
    const std::string err = verify::check_fingerprints(world_.board_.fp);
    if (!err.empty()) throw verify::CollectiveMismatch(err);
  }
#endif

  CommWorld& world_;
  const int rank_;
  CommStats stats_;
  PhaseTimer phase_;
  std::vector<std::unique_ptr<PendingState>> pending_pool_;
  int pending_depth_ = 0;  // outstanding split-phase exchanges (0 or 1)
#if HPCGRAPH_VERIFY_ENABLED
  std::uint64_t verify_seq_ = 0;  // per-rank collective counter
#endif
};

/// Move-only handle for one in-flight split-phase alltoallv.
///
/// wait() completes the exchange and returns the received items in
/// source-rank order (plus optional per-source counts).  The destructor
/// never barriers — it only releases the pooled state — so unwinding
/// through an in-flight exchange (e.g. a thrown HG_CHECK) cannot deadlock;
/// an exchange abandoned without wait() is reported at this rank's next
/// collective via the pending-depth check.
template <typename T>
class PendingExchange {
 public:
  PendingExchange() = default;
  PendingExchange(const PendingExchange&) = delete;
  PendingExchange& operator=(const PendingExchange&) = delete;
  PendingExchange(PendingExchange&& o) noexcept
      : comm_(o.comm_), st_(o.st_), pool_(o.pool_) {
    o.comm_ = nullptr;
    o.st_ = nullptr;
  }
  PendingExchange& operator=(PendingExchange&& o) noexcept {
    if (this != &o) {
      release();
      comm_ = o.comm_;
      st_ = o.st_;
      pool_ = o.pool_;
      o.comm_ = nullptr;
      o.st_ = nullptr;
    }
    return *this;
  }
  ~PendingExchange() { release(); }

  /// True while the exchange is in flight (wait() not yet called).
  bool valid() const { return st_ != nullptr; }

  /// Complete the exchange: copy every source's segment, publish the
  /// completion barrier, and return the items received (concatenated in
  /// source-rank order).  Must be called exactly once, by the initiating
  /// rank, in the same collective order on all ranks.
  std::vector<T> wait(std::vector<std::uint64_t>* recvcounts =
                          nullptr HPCGRAPH_COLLECTIVE_SITE) {
    HG_CHECK_MSG(st_ != nullptr, "PendingExchange::wait() called twice "
                                 "(or on a moved-from/default handle)");
    PendingState* st = st_;
    st_ = nullptr;  // wait() releases the slot even if the copy throws
    return comm_->ialltoallv_wait<T>(st, pool_, recvcounts HPCGRAPH_SITE_FWD);
  }

 private:
  friend class Communicator;
  PendingExchange(Communicator* comm, PendingState* st, ThreadPool* pool)
      : comm_(comm), st_(st), pool_(pool) {}

  void release() {
    if (st_) st_->active = false;  // depth stays: next collective reports it
    st_ = nullptr;
  }

  Communicator* comm_ = nullptr;
  PendingState* st_ = nullptr;
  ThreadPool* pool_ = nullptr;
};

template <typename T>
PendingExchange<T> Communicator::ialltoallv(
    std::span<const T> send, std::span<const std::uint64_t> sendcounts,
    ThreadPool* pool HPCGRAPH_COLLECTIVE_SITE_DEF) {
  static_assert(std::is_trivially_copyable_v<T>);
  HG_CHECK(static_cast<int>(sendcounts.size()) == size());
  check_no_pending();
  ++stats_.collective_calls;
#if HPCGRAPH_VERIFY_ENABLED
  verify_rendezvous(verify::Op::kIalltoallv, sizeof(T), -1,
                    verify::counts_checksum(sendcounts), hg_call_site);
#endif

  PendingState* st = acquire_pending();
  st->elem_size = sizeof(T);
  st->sendcounts.assign(sendcounts.begin(), sendcounts.end());
  st->displs.resize(static_cast<std::size_t>(size()));
  const std::uint64_t total = exclusive_prefix_sum(
      std::span<const std::uint64_t>(st->sendcounts),
      std::span<std::uint64_t>(st->displs));
  HG_CHECK_MSG(total == send.size(),
               "ialltoallv: counts sum " << total << " != payload "
                                         << send.size());

  stats_.bytes_sent += total * sizeof(T);
  stats_.bytes_remote += (total - sendcounts[rank_]) * sizeof(T);
  stats_.bytes_self += sendcounts[rank_] * sizeof(T);

  // Post the board row from the pooled copies, not the caller's buffers:
  // the caller may reuse its counts the moment we return, while a slower
  // peer is still snapshot-reading this row.  PendingState outlives every
  // peer's snapshot (all are gated by the completion barrier in wait()).
  CommWorld::Board& b = world_.board_;
  b.ptr[rank_] = send.data();
  b.cnt[rank_] = st->sendcounts.data();
  b.displ[rank_] = st->displs.data();
  timed_barrier();

  // Snapshot each source's payload pointer and this rank's segment offset
  // now, so wait() touches no board state (peers may already be posting
  // their *next* collective's fingerprints by then).
  st->src.resize(static_cast<std::size_t>(size()));
  st->src_off.resize(static_cast<std::size_t>(size()));
  st->rcounts.resize(static_cast<std::size_t>(size()));
  st->roffs.resize(static_cast<std::size_t>(size()));
  std::uint64_t rtotal = 0;
  for (int s = 0; s < size(); ++s) {
    st->roffs[s] = rtotal;
    rtotal += (st->rcounts[s] = b.cnt[s][rank_]);
    st->src[s] = b.ptr[s];
    st->src_off[s] = b.displ[s][rank_];
  }
  st->rtotal = rtotal;
#if HPCGRAPH_VERIFY_ENABLED
  // Same mid-collective counts-mutation check as the blocking path, run at
  // initiation (the snapshot is what wait() will trust).
  for (int s = 0; s < size(); ++s) {
    const std::uint64_t h = verify::counts_checksum(
        {b.cnt[s], static_cast<std::size_t>(size())});
    if (h != b.fp[static_cast<std::size_t>(s)].aux)
      throw verify::CollectiveMismatch(
          verify::mutation_report(s, b.fp[static_cast<std::size_t>(s)]));
  }
  // Verify-only: hold every rank here until all aux checks are done.  A
  // fast rank entering wait()'s rendezvous would overwrite its fingerprint
  // slot while a slow peer is still reading it above.  (Without verify the
  // board rows are only rewritten after wait()'s completion barrier, so no
  // extra barrier is needed.)
  timed_barrier();
#endif
  ++pending_depth_;
  return PendingExchange<T>(this, st, pool);
}

}  // namespace hpcgraph::parcomm
