#pragma once
/// \file comm_stats.hpp
/// Per-rank communication counters.
///
/// Wall-clock times on a 1-core simulation machine are only part of the
/// story; bytes and message counts are machine-independent, so the scaling
/// benches report both.  `bytes_remote` excludes the rank's self-segment in
/// collectives — that is the quantity a real network would carry.

#include <cstdint>

namespace hpcgraph::parcomm {

struct CommStats {
  std::uint64_t bytes_sent = 0;         ///< all payload bytes posted
  std::uint64_t bytes_remote = 0;       ///< payload bytes to *other* ranks
  std::uint64_t bytes_received = 0;     ///< all payload bytes copied in
  std::uint64_t collective_calls = 0;   ///< alltoallv/allreduce/... count
  std::uint64_t barrier_calls = 0;      ///< explicit + internal barriers

  void reset() { *this = CommStats{}; }

  CommStats& operator+=(const CommStats& o) {
    bytes_sent += o.bytes_sent;
    bytes_remote += o.bytes_remote;
    bytes_received += o.bytes_received;
    collective_calls += o.collective_calls;
    barrier_calls += o.barrier_calls;
    return *this;
  }
};

}  // namespace hpcgraph::parcomm
