#pragma once
/// \file comm_stats.hpp
/// Per-rank communication counters.
///
/// Wall-clock times on a 1-core simulation machine are only part of the
/// story; bytes and message counts are machine-independent, so the scaling
/// benches report both.
///
/// Accounting rules (uniform across every collective):
///   * `bytes_sent`     — payload bytes this rank contributes to the
///                        collective, counted once regardless of how many
///                        ranks receive a copy.
///   * `bytes_remote`   — bytes a real network would have to carry from this
///                        rank: the sum over *remote* receivers of the bytes
///                        delivered to them.  Self-delivery is never remote.
///   * `bytes_self`     — bytes this rank delivered to itself (the self
///                        segment of alltoallv, a root reading its own
///                        broadcast, every rank's own allgather slot, ...).
///   * `bytes_received` — all payload bytes copied into this rank's result,
///                        self segments included.  Every receiver counts.
///
/// These imply the global conservation law asserted by test_parcomm:
///   sum over ranks of bytes_received ==
///   sum over ranks of (bytes_remote + bytes_self).
///
/// The ghost_* counters are fed by dgraph::GhostExchange and make the
/// sparse/dense delta-exchange protocol observable per rank: how many
/// exchange rounds used each wire format, and how many send-side remote
/// bytes the sparse format saved relative to a dense round (negative if a
/// forced-sparse round cost more than dense would have).

#include <cstdint>

namespace hpcgraph::parcomm {

/// Canonical serialized field names for CommStats, shared by every emitter
/// (SuperstepTrace JSON via obs::write_comm_stats, the obs metrics registry).
namespace comm_field {
inline constexpr const char* kBytesSent = "bytes_sent";
inline constexpr const char* kBytesRemote = "bytes_remote";
inline constexpr const char* kBytesSelf = "bytes_self";
inline constexpr const char* kBytesReceived = "bytes_received";
inline constexpr const char* kCollectiveCalls = "collective_calls";
inline constexpr const char* kBarrierCalls = "barrier_calls";
inline constexpr const char* kGhostRoundsDense = "ghost_rounds_dense";
inline constexpr const char* kGhostRoundsSparse = "ghost_rounds_sparse";
inline constexpr const char* kGhostRoundsReduce = "ghost_rounds_reduce";
inline constexpr const char* kGhostRoundsAsync = "ghost_rounds_async";
inline constexpr const char* kGhostBytesSaved = "ghost_bytes_saved";
}  // namespace comm_field

struct CommStats {
  std::uint64_t bytes_sent = 0;         ///< payload bytes posted (once)
  std::uint64_t bytes_remote = 0;       ///< payload bytes to *other* ranks
  std::uint64_t bytes_self = 0;         ///< payload bytes delivered to self
  std::uint64_t bytes_received = 0;     ///< all payload bytes copied in
  std::uint64_t collective_calls = 0;   ///< alltoallv/allreduce/... count
  std::uint64_t barrier_calls = 0;      ///< explicit + internal barriers

  std::uint64_t ghost_rounds_dense = 0;   ///< ghost exchanges on dense wire
  std::uint64_t ghost_rounds_sparse = 0;  ///< ghost exchanges on sparse wire
  std::uint64_t ghost_rounds_reduce = 0;  ///< reverse (ghost->owner) rounds
  std::uint64_t ghost_rounds_async = 0;   ///< split-phase (start/finish) rounds
  std::int64_t ghost_bytes_saved = 0;     ///< dense-equivalent minus actual

  void reset() { *this = CommStats{}; }

  CommStats& operator+=(const CommStats& o) {
    bytes_sent += o.bytes_sent;
    bytes_remote += o.bytes_remote;
    bytes_self += o.bytes_self;
    bytes_received += o.bytes_received;
    collective_calls += o.collective_calls;
    barrier_calls += o.barrier_calls;
    ghost_rounds_dense += o.ghost_rounds_dense;
    ghost_rounds_sparse += o.ghost_rounds_sparse;
    ghost_rounds_reduce += o.ghost_rounds_reduce;
    ghost_rounds_async += o.ghost_rounds_async;
    ghost_bytes_saved += o.ghost_bytes_saved;
    return *this;
  }

  /// Counter-wise difference: what happened between an earlier snapshot `o`
  /// and this one.  Counters are monotone within a run (ghost_bytes_saved is
  /// signed and may go either way), so telemetry code takes a snapshot before
  /// a region and calls `now.delta(before)` after instead of hand-subtracting
  /// ten fields.  The conservation law (sum received == sum remote + self)
  /// holds for deltas of a common region because subtraction is linear.
  CommStats operator-(const CommStats& o) const {
    CommStats d;
    d.bytes_sent = bytes_sent - o.bytes_sent;
    d.bytes_remote = bytes_remote - o.bytes_remote;
    d.bytes_self = bytes_self - o.bytes_self;
    d.bytes_received = bytes_received - o.bytes_received;
    d.collective_calls = collective_calls - o.collective_calls;
    d.barrier_calls = barrier_calls - o.barrier_calls;
    d.ghost_rounds_dense = ghost_rounds_dense - o.ghost_rounds_dense;
    d.ghost_rounds_sparse = ghost_rounds_sparse - o.ghost_rounds_sparse;
    d.ghost_rounds_reduce = ghost_rounds_reduce - o.ghost_rounds_reduce;
    d.ghost_rounds_async = ghost_rounds_async - o.ghost_rounds_async;
    d.ghost_bytes_saved = ghost_bytes_saved - o.ghost_bytes_saved;
    return d;
  }

  /// `now.delta(before)` == `now - before`; named form for call sites where
  /// the subtraction order would otherwise need a comment.
  CommStats delta(const CommStats& before) const { return *this - before; }
};

}  // namespace hpcgraph::parcomm
