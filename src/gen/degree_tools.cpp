#include "gen/degree_tools.hpp"

#include <algorithm>

namespace hpcgraph::gen {

std::vector<std::uint32_t> out_degrees(const EdgeList& g) {
  std::vector<std::uint32_t> deg(g.n, 0);
  for (const Edge& e : g.edges) ++deg[e.src];
  return deg;
}

std::vector<std::uint32_t> in_degrees(const EdgeList& g) {
  std::vector<std::uint32_t> deg(g.n, 0);
  for (const Edge& e : g.edges) ++deg[e.dst];
  return deg;
}

std::vector<std::uint32_t> total_degrees(const EdgeList& g) {
  std::vector<std::uint32_t> deg(g.n, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  return deg;
}

std::vector<gvid_t> top_k_by_degree(const EdgeList& g, std::size_t k) {
  const std::vector<std::uint32_t> deg = total_degrees(g);
  std::vector<gvid_t> ids(g.n);
  for (gvid_t v = 0; v < g.n; ++v) ids[v] = v;
  k = std::min<std::size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](gvid_t a, gvid_t b) {
                      if (deg[a] != deg[b]) return deg[a] > deg[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

}  // namespace hpcgraph::gen
