#include "gen/reorder.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "gen/degree_tools.hpp"
#include "util/error.hpp"
#include "util/prefix_sum.hpp"

namespace hpcgraph::gen {

namespace {

std::vector<gvid_t> bfs_order(const EdgeList& graph) {
  const gvid_t n = graph.n;
  // Undirected CSR.
  std::vector<std::uint64_t> deg(n, 0);
  for (const Edge& e : graph.edges) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  const auto index = csr_offsets(std::span<const std::uint64_t>(deg));
  std::vector<gvid_t> adj(index.back());
  {
    std::vector<std::uint64_t> cur(index.begin(), index.end() - 1);
    for (const Edge& e : graph.edges) {
      adj[cur[e.src]++] = e.dst;
      adj[cur[e.dst]++] = e.src;
    }
  }

  // Roots in decreasing degree (ties: lower old id), restarting per
  // component so isolated regions still get compact id ranges.
  std::vector<gvid_t> roots(n);
  std::iota(roots.begin(), roots.end(), 0);
  std::sort(roots.begin(), roots.end(), [&](gvid_t a, gvid_t b) {
    if (deg[a] != deg[b]) return deg[a] > deg[b];
    return a < b;
  });

  std::vector<gvid_t> new_id(n, kNullGvid);
  gvid_t next = 0;
  std::deque<gvid_t> q;
  for (const gvid_t root : roots) {
    if (new_id[root] != kNullGvid) continue;
    new_id[root] = next++;
    q.push_back(root);
    while (!q.empty()) {
      const gvid_t v = q.front();
      q.pop_front();
      for (std::uint64_t i = index[v]; i < index[v + 1]; ++i) {
        const gvid_t u = adj[i];
        if (new_id[u] == kNullGvid) {
          new_id[u] = next++;
          q.push_back(u);
        }
      }
    }
  }
  HG_CHECK(next == n);
  return new_id;
}

std::vector<gvid_t> degree_order(const EdgeList& graph) {
  const auto deg = total_degrees(graph);
  std::vector<gvid_t> by_degree(graph.n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(), [&](gvid_t a, gvid_t b) {
    if (deg[a] != deg[b]) return deg[a] > deg[b];
    return a < b;
  });
  std::vector<gvid_t> new_id(graph.n);
  for (gvid_t pos = 0; pos < graph.n; ++pos) new_id[by_degree[pos]] = pos;
  return new_id;
}

}  // namespace

std::vector<gvid_t> reorder_permutation(const EdgeList& graph,
                                        ReorderKind kind) {
  switch (kind) {
    case ReorderKind::kBfs: return bfs_order(graph);
    case ReorderKind::kDegree: return degree_order(graph);
  }
  HG_CHECK_MSG(false, "unreachable reorder kind");
}

EdgeList apply_permutation(const EdgeList& graph,
                           std::span<const gvid_t> new_id) {
  HG_CHECK(new_id.size() == graph.n);
  EdgeList out;
  out.n = graph.n;
  out.name = graph.name;
  out.edges.reserve(graph.edges.size());
  for (const Edge& e : graph.edges)
    out.edges.push_back({new_id[e.src], new_id[e.dst]});
  return out;
}

EdgeList reorder(const EdgeList& graph, ReorderKind kind) {
  return apply_permutation(graph, reorder_permutation(graph, kind));
}

}  // namespace hpcgraph::gen
