#include "gen/erdos_renyi.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hpcgraph::gen {

EdgeList erdos_renyi(const ErParams& p) {
  HG_CHECK(p.n >= 1);
  EdgeList out;
  out.n = p.n;
  out.name = "Rand-ER";
  out.edges.reserve(p.m);
  Rng rng(p.seed ^ 0x4552ULL /* "ER" */);
  for (std::uint64_t e = 0; e < p.m; ++e)
    out.edges.push_back({rng.below(p.n), rng.below(p.n)});
  return out;
}

}  // namespace hpcgraph::gen
