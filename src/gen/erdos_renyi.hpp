#pragma once
/// \file erdos_renyi.hpp
/// Erdős–Rényi G(n, m) random digraph ("Rand-ER" in the paper): m directed
/// edges with independently uniform endpoints.  The paper's best-case input:
/// no skew, no locality.

#include <cstdint>

#include "gen/edge_list.hpp"

namespace hpcgraph::gen {

struct ErParams {
  gvid_t n = 1 << 16;
  std::uint64_t m = 1 << 20;
  std::uint64_t seed = 1;
};

/// Generate a Rand-ER edge list.  Deterministic in all params.
EdgeList erdos_renyi(const ErParams& params);

}  // namespace hpcgraph::gen
