#include "gen/aggregate.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace hpcgraph::gen {

AggregatedGraph aggregate_graph(const EdgeList& graph,
                                std::span<const std::uint64_t> labels,
                                const AggregateOptions& opts) {
  HG_CHECK(labels.size() == graph.n);
  AggregatedGraph out;

  // Dense supernode ids in ascending label order (deterministic).
  out.group_label.assign(labels.begin(), labels.end());
  std::sort(out.group_label.begin(), out.group_label.end());
  out.group_label.erase(
      std::unique(out.group_label.begin(), out.group_label.end()),
      out.group_label.end());
  std::unordered_map<std::uint64_t, gvid_t> id_of;
  id_of.reserve(out.group_label.size());
  for (gvid_t i = 0; i < out.group_label.size(); ++i)
    id_of[out.group_label[i]] = i;

  out.group_of.resize(graph.n);
  out.group_size.assign(out.group_label.size(), 0);
  for (gvid_t v = 0; v < graph.n; ++v) {
    out.group_of[v] = id_of.at(labels[v]);
    ++out.group_size[out.group_of[v]];
  }

  out.graph.n = static_cast<gvid_t>(out.group_label.size());
  out.graph.name = graph.name + "-aggregated";
  out.graph.edges.reserve(graph.edges.size() / 4 + 16);
  for (const Edge& e : graph.edges) {
    const gvid_t s = out.group_of[e.src], d = out.group_of[e.dst];
    if (s == d && !opts.keep_self_loops) continue;
    out.graph.edges.push_back({s, d});
  }
  if (opts.dedup_edges) {
    auto& es = out.graph.edges;
    std::sort(es.begin(), es.end(), [](const Edge& a, const Edge& b) {
      if (a.src != b.src) return a.src < b.src;
      return a.dst < b.dst;
    });
    es.erase(std::unique(es.begin(), es.end()), es.end());
  }
  return out;
}

}  // namespace hpcgraph::gen
