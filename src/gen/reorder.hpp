#pragma once
/// \file reorder.hpp
/// Vertex reordering — §III-B's "each task gets n/p vertices distributed in
/// natural (or some computed) ordering".  The WDC crawl's natural order is
/// crawl order, which is why block partitioning enjoys locality there; a
/// scrambled graph (R-MAT with id scrambling, uploads with hashed ids) has
/// none, and a *computed* ordering restores it before block partitioning.
///
/// Two classic computed orderings:
///   * BFS order: vertices labeled by undirected BFS discovery (restarted
///     per component, in decreasing-degree root order) — neighbours get
///     nearby ids, cutting ghost counts under block partitioning;
///   * degree order: hubs first — clusters the heavy rows together so edge-
///     block partitioning isolates them.
///
/// Applied as an offline preprocessing step over the raw edge list.

#include <cstdint>
#include <span>
#include <vector>

#include "gen/edge_list.hpp"

namespace hpcgraph::gen {

enum class ReorderKind {
  kBfs,     ///< undirected BFS discovery order
  kDegree,  ///< decreasing total degree
};

/// Permutation: new_id[old_id].  Deterministic.
std::vector<gvid_t> reorder_permutation(const EdgeList& graph,
                                        ReorderKind kind);

/// Apply a permutation (new_id[old_id]) to every endpoint.
EdgeList apply_permutation(const EdgeList& graph,
                           std::span<const gvid_t> new_id);

/// Convenience: permute the graph by the computed ordering.
EdgeList reorder(const EdgeList& graph, ReorderKind kind);

}  // namespace hpcgraph::gen
