#pragma once
/// \file edge_list.hpp
/// In-memory directed edge list — the generator output and ingestion input.
/// Matches the paper's data model: "the input data is available as an
/// unsorted list of edges", each edge a pair of unsigned integers.

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace hpcgraph::gen {

/// One directed edge src -> dst (global ids).
struct Edge {
  gvid_t src = 0;
  gvid_t dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A generated graph: vertex-id space [0, n) plus an unsorted directed edge
/// list.  Vertex ids are used exactly as generated — the paper does not
/// preprocess, prune, or relabel its inputs.
struct EdgeList {
  gvid_t n = 0;
  std::vector<Edge> edges;
  std::string name;  ///< dataset label, e.g. "WC" / "R-MAT" / "Rand-ER"

  std::uint64_t m() const { return edges.size(); }
  double avg_degree() const {
    return n ? static_cast<double>(edges.size()) / static_cast<double>(n) : 0;
  }
};

}  // namespace hpcgraph::gen
