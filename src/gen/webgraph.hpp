#pragma once
/// \file webgraph.hpp
/// Synthetic stand-in for the 2012 Web Data Commons page-level hyperlink
/// graph ("WC" in the paper).
///
/// The real WC graph (3.56 B vertices, 128.7 B edges) is not available here;
/// this generator reproduces, at configurable scale, the structural features
/// the paper's analytics exercise and Section VI measures:
///
///   * **Bow-tie macro structure** (Meusel et al., the paper's [19]/[20]):
///     a giant strongly connected CORE, an IN set that reaches the core, an
///     OUT set reached from it, TENDRILs, and small DISConnected islands.
///     A deterministic ring through CORE guarantees it forms one SCC, and the
///     segment linking rules guarantee the largest SCC is *exactly* CORE —
///     giving tests a ground truth.
///   * **Power-law in/out degrees** with a handful of global hub pages
///     (creativecommons.org-style) that receive a constant fraction of all
///     links — the source of the load imbalance the paper studies.
///   * **Planted communities**: contiguous vertex blocks with power-law
///     sizes (down to size 1 and 2, matching Figure 5's head) and a tunable
///     intra-community link fraction, so Label Propagation has real
///     structure to find (Table V, Figure 5).
///   * **Locality in the natural vertex order** (communities are contiguous
///     id blocks), which is what makes vertex/edge-block partitioning
///     cache-friendlier than random partitioning in Figure 3.

#include <cstdint>
#include <string>
#include <vector>

#include "gen/edge_list.hpp"

namespace hpcgraph::gen {

struct WebGraphParams {
  gvid_t n = gvid_t{1} << 18;
  double avg_degree = 16;
  std::uint64_t seed = 1;

  // Bow-tie segment fractions (tendril = remainder).
  double frac_disc = 0.08;
  double frac_in = 0.15;
  double frac_core = 0.52;
  double frac_out = 0.18;

  // Edge routing.
  double p_intra = 0.62;  ///< fraction of links staying in own community
  double p_hub = 0.08;    ///< fraction of links going to global hubs
  unsigned num_hubs = 16;

  // Degree / community-size distributions.
  double degree_alpha = 2.1;  ///< out-degree power-law exponent
  double comm_alpha = 2.0;    ///< community-size power-law exponent
  gvid_t comm_min = 1;
  gvid_t comm_max = 0;        ///< 0 -> n/64
};

/// Half-open vertex-id range.
struct VidRange {
  gvid_t begin = 0, end = 0;
  gvid_t size() const { return end - begin; }
  bool contains(gvid_t v) const { return v >= begin && v < end; }
};

/// Generated graph plus the ground truth the tests validate against.
struct WebGraph {
  EdgeList graph;

  // Bow-tie segments, in id order: disc < in < core < out < tendril.
  VidRange disc, in, core, out, tendril;

  /// comm_of[v] = planted community id (communities are contiguous blocks).
  std::vector<std::uint32_t> comm_of;
  std::uint32_t num_communities = 0;

  /// Global hub vertices (all inside CORE).
  std::vector<gvid_t> hubs;
};

/// Generate the synthetic web crawl.  Deterministic in all params.
WebGraph webgraph(const WebGraphParams& params);

/// Human-readable synthetic URL for a vertex (hubs get recognizable names,
/// mirroring Table V's "representative vertex" column).
std::string webgraph_vertex_name(const WebGraph& wg, gvid_t v);

}  // namespace hpcgraph::gen
