#pragma once
/// \file rmat.hpp
/// R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos,
/// SDM'04 — the paper's reference [3]).  Used for Table IV, Figure 1 and
/// Figure 2 synthetic inputs; produces the heavy degree skew that drives the
/// paper's load-imbalance observations.

#include <cstdint>

#include "gen/edge_list.hpp"

namespace hpcgraph::gen {

struct RmatParams {
  unsigned scale = 16;       ///< n = 2^scale vertices
  double avg_degree = 16;    ///< m = n * avg_degree directed edges
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;  ///< Graph500 defaults
  std::uint64_t seed = 1;
  bool scramble_ids = true;  ///< permute ids so vertex order carries no info
};

/// Generate an R-MAT edge list.  Deterministic in all params.
EdgeList rmat(const RmatParams& params);

}  // namespace hpcgraph::gen
