#pragma once
/// \file social.hpp
/// Scaled-down stand-ins for the paper's real comparison graphs (Table I):
/// Twitter, LiveJournal, Google, and the Host/Pay aggregations of the WDC
/// crawl.  Each preset is a parameterization of one power-law digraph
/// generator, chosen to preserve the published size ordering
/// (Host > Twitter ~ Pay > LiveJournal > Google), average degree, and degree
/// skew of the originals at 1/64 of their scale — the properties that drive
/// the relative framework performance in Figure 4.

#include <cstdint>

#include "gen/edge_list.hpp"

namespace hpcgraph::gen {

struct SocialParams {
  gvid_t n = 1 << 16;
  double avg_degree = 14;
  double skew_alpha = 2.2;     ///< out-degree power-law exponent
  double reciprocity = 0.2;    ///< fraction of edges mirrored dst->src
  double locality = 0.5;       ///< fraction of edges within an id window
  gvid_t window = 4096;        ///< locality window width
  std::uint64_t seed = 1;
  const char* name = "social";
};

/// Generate a power-law social-style digraph.  Deterministic in all params.
EdgeList social(const SocialParams& params);

/// \name Table I presets (scaled by `scale_div`, default 64x smaller).
/// Published sizes: Twitter 53M/2.0B, LiveJournal 4.8M/69M, Google 875K/5.1M,
/// Host 89M/2.0B, Pay 39M/623M.
///@{
EdgeList twitter_like(unsigned scale_div = 64, std::uint64_t seed = 1);
EdgeList livejournal_like(unsigned scale_div = 64, std::uint64_t seed = 1);
EdgeList google_like(unsigned scale_div = 64, std::uint64_t seed = 1);
EdgeList host_like(unsigned scale_div = 64, std::uint64_t seed = 1);
EdgeList pay_like(unsigned scale_div = 64, std::uint64_t seed = 1);
///@}

}  // namespace hpcgraph::gen
