#include "gen/webgraph.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hpcgraph::gen {

namespace {

/// Discrete power-law sample in [lo, hi] with exponent alpha (>1), via
/// inverse-CDF of the continuous Pareto then truncation.
gvid_t powerlaw_sample(Rng& rng, double alpha, gvid_t lo, gvid_t hi) {
  HG_DCHECK(lo >= 1 && hi >= lo);
  const double u = rng.uniform();
  const double x =
      static_cast<double>(lo) / std::pow(1.0 - u, 1.0 / (alpha - 1.0));
  const gvid_t v = static_cast<gvid_t>(x);
  return std::min(std::max(v, lo), hi);
}

/// Skewed pick inside [r.begin, r.end): low offsets (community heads /
/// segment heads) are preferred, modelling preferential attachment.
gvid_t skewed_pick(Rng& rng, VidRange r) {
  HG_DCHECK(r.size() > 0);
  const double u = rng.uniform();
  return r.begin + static_cast<gvid_t>(u * u * static_cast<double>(r.size()));
}

const char* const kHubNames[] = {
    "creativecommons.org/",
    "wordpress.org/",
    "tripadvisor.com/",
    "gmpg.org/xfn/",
    "askville.amazon.com/",
    "youtube.com/",
    "en.wikipedia.org/",
    "twitter.com/",
    "facebook.com/",
    "google.com/",
    "blogspot.com/",
    "flickr.com/",
    "apache.org/",
    "w3.org/",
    "adobe.com/",
    "miibeian.gov.cn/",
};

}  // namespace

WebGraph webgraph(const WebGraphParams& p) {
  HG_CHECK(p.n >= 64);
  HG_CHECK(p.frac_disc + p.frac_in + p.frac_core + p.frac_out <= 1.0);
  WebGraph wg;
  wg.graph.n = p.n;
  wg.graph.name = "WC";

  // ---- Bow-tie segment layout (contiguous id ranges). ----
  const auto cut = [&](double f, gvid_t at) {
    return std::min<gvid_t>(p.n, at + static_cast<gvid_t>(f * p.n));
  };
  wg.disc = {0, cut(p.frac_disc, 0)};
  wg.in = {wg.disc.end, cut(p.frac_in, wg.disc.end)};
  wg.core = {wg.in.end, cut(p.frac_core, wg.in.end)};
  wg.out = {wg.core.end, cut(p.frac_out, wg.core.end)};
  wg.tendril = {wg.out.end, p.n};
  HG_CHECK(wg.core.size() > p.num_hubs);

  // ---- Planted communities: contiguous blocks with power-law sizes. ----
  Rng rng(p.seed ^ 0x57454243ULL /* "WEBC" */);
  const gvid_t comm_max = p.comm_max ? p.comm_max : std::max<gvid_t>(p.n / 64, 4);
  wg.comm_of.resize(p.n);
  {
    std::uint32_t comm = 0;
    gvid_t v = 0;
    const VidRange segments[] = {wg.disc, wg.in, wg.core, wg.out, wg.tendril};
    for (const VidRange& seg : segments) {
      v = seg.begin;
      while (v < seg.end) {
        // DISC islands stay small so they remain disconnected pieces.
        const gvid_t hi =
            (seg.begin == wg.disc.begin && seg.end == wg.disc.end)
                ? std::min<gvid_t>(comm_max, 32)
                : comm_max;
        gvid_t sz = powerlaw_sample(rng, p.comm_alpha, p.comm_min, hi);
        sz = std::min(sz, seg.end - v);
        for (gvid_t i = 0; i < sz; ++i) wg.comm_of[v + i] = comm;
        v += sz;
        ++comm;
      }
    }
    wg.num_communities = comm;
  }

  // Community ranges, for intra-community edge routing.
  std::vector<VidRange> comm_range(wg.num_communities);
  for (gvid_t v = 0; v < p.n; ++v) {
    VidRange& r = comm_range[wg.comm_of[v]];
    if (r.end == 0) r.begin = v;
    r.end = v + 1;
  }

  // ---- Hubs: the first vertices of CORE. ----
  const unsigned nhubs = std::min<unsigned>(
      p.num_hubs, sizeof(kHubNames) / sizeof(kHubNames[0]));
  for (unsigned h = 0; h < nhubs; ++h) wg.hubs.push_back(wg.core.begin + h);

  // ---- Per-vertex out-degrees: power-law weights scaled to hit m. ----
  const std::uint64_t m_target =
      static_cast<std::uint64_t>(p.avg_degree * static_cast<double>(p.n));
  std::vector<std::uint32_t> degree(p.n);
  {
    std::vector<double> w(p.n);
    double total = 0;
    for (gvid_t v = 0; v < p.n; ++v)
      total += (w[v] = static_cast<double>(
                    powerlaw_sample(rng, p.degree_alpha, 1, p.n / 16 + 1)));
    // Reserve ~0.5 edge/vertex of the budget for the CORE ring below.
    const double budget =
        static_cast<double>(m_target) - static_cast<double>(wg.core.size());
    const double scale = std::max(budget, 0.0) / total;
    for (gvid_t v = 0; v < p.n; ++v) {
      degree[v] = static_cast<std::uint32_t>(w[v] * scale + rng.uniform());
      // Everything outside DISC keeps at least one out-link so the giant
      // weak component spans IN+CORE+OUT+TENDRIL.
      if (degree[v] == 0 && v >= wg.in.begin) degree[v] = 1;
    }
  }

  std::uint64_t m_estimate = wg.core.size();
  for (gvid_t v = 0; v < p.n; ++v) m_estimate += degree[v];
  wg.graph.edges.reserve(m_estimate);

  // ---- Deterministic CORE ring: guarantees CORE is one SCC. ----
  for (gvid_t v = wg.core.begin; v < wg.core.end; ++v) {
    const gvid_t nxt = (v + 1 == wg.core.end) ? wg.core.begin : v + 1;
    wg.graph.edges.push_back({v, nxt});
  }

  // ---- Random edges per the routing rules. ----
  for (gvid_t v = 0; v < p.n; ++v) {
    const VidRange my_comm = comm_range[wg.comm_of[v]];
    const bool in_disc = wg.disc.contains(v);
    for (std::uint32_t e = 0; e < degree[v]; ++e) {
      gvid_t dst;
      const double roll = rng.uniform();
      if (in_disc) {
        // Islands link only inside their own community.
        dst = my_comm.begin + rng.below(my_comm.size());
      } else if (roll < p.p_intra && my_comm.size() > 1) {
        dst = skewed_pick(rng, my_comm);
      } else if (roll < p.p_intra + p.p_hub &&
                 (wg.in.contains(v) || wg.core.contains(v))) {
        // Hub links come only from IN/CORE: an OUT->hub edge would be a
        // back-edge into CORE and grow the SCC beyond the planted core,
        // destroying the ground truth tests rely on.
        dst = wg.hubs[rng.below(wg.hubs.size())];
      } else if (wg.in.contains(v)) {
        // IN links forward: mostly CORE, sometimes deeper into IN.
        dst = (rng.uniform() < 0.7) ? skewed_pick(rng, wg.core)
                                    : skewed_pick(rng, wg.in);
      } else if (wg.core.contains(v)) {
        // CORE links: mostly CORE, some leakage into OUT.
        dst = (rng.uniform() < 0.85) ? skewed_pick(rng, wg.core)
                                     : skewed_pick(rng, wg.out);
      } else if (wg.out.contains(v)) {
        dst = skewed_pick(rng, wg.out);
      } else {
        // TENDRIL: hangs off the OUT side, never reaches back.
        dst = skewed_pick(rng, wg.out);
      }
      wg.graph.edges.push_back({v, dst});
    }
  }

  return wg;
}

std::string webgraph_vertex_name(const WebGraph& wg, gvid_t v) {
  for (std::size_t h = 0; h < wg.hubs.size(); ++h)
    if (wg.hubs[h] == v) return kHubNames[h];
  const std::uint32_t c = wg.comm_of[v];
  // Find offset within the community block for a stable page path.
  gvid_t start = v;
  while (start > 0 && wg.comm_of[start - 1] == c) --start;
  return "site" + std::to_string(c) + ".example/page" +
         std::to_string(v - start);
}

}  // namespace hpcgraph::gen
