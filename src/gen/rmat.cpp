#include "gen/rmat.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hpcgraph::gen {

namespace {

/// Feistel-style id scrambler: a bijection on [0, 2^scale) so that the
/// natural vertex ordering of the recursive construction (which clusters
/// high-degree vertices at low ids) is destroyed, as Graph500 requires.
gvid_t scramble(gvid_t v, unsigned scale, std::uint64_t key) {
  const gvid_t mask = (scale >= 64) ? ~gvid_t{0} : ((gvid_t{1} << scale) - 1);
  // Two rounds of multiply-xorshift confined to `scale` bits.
  v = (v * 0x9e3779b97f4a7c15ULL + key) & mask;
  v ^= v >> (scale / 2 + 1);
  v = (v * 0xbf58476d1ce4e5b9ULL + (key >> 32)) & mask;
  v ^= v >> (scale / 2 + 1);
  v &= mask;
  return v;
}

}  // namespace

EdgeList rmat(const RmatParams& p) {
  HG_CHECK(p.scale >= 1 && p.scale <= 40);
  const double sum = p.a + p.b + p.c + p.d;
  HG_CHECK_MSG(sum > 0.999 && sum < 1.001, "R-MAT probabilities must sum to 1");

  EdgeList out;
  out.n = gvid_t{1} << p.scale;
  out.name = "R-MAT";
  const std::uint64_t m =
      static_cast<std::uint64_t>(p.avg_degree * static_cast<double>(out.n));
  out.edges.reserve(m);

  Rng rng(p.seed ^ 0x524d4154ULL /* "RMAT" */);
  const double ab = p.a + p.b;
  const double a_frac = p.a / ab;           // P(left | top)
  const double c_frac = p.c / (p.c + p.d);  // P(left | bottom)

  for (std::uint64_t e = 0; e < m; ++e) {
    gvid_t src = 0, dst = 0;
    for (unsigned bit = 0; bit < p.scale; ++bit) {
      const bool top = rng.uniform() < ab;
      const bool left = rng.uniform() < (top ? a_frac : c_frac);
      src = (src << 1) | (top ? 0 : 1);
      dst = (dst << 1) | (left ? 0 : 1);
    }
    if (p.scramble_ids) {
      src = scramble(src, p.scale, p.seed * 0x2545f4914f6cdd1dULL + 7);
      dst = scramble(dst, p.scale, p.seed * 0x2545f4914f6cdd1dULL + 7);
    }
    out.edges.push_back({src, dst});
  }
  return out;
}

}  // namespace hpcgraph::gen
