#include "gen/social.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hpcgraph::gen {

EdgeList social(const SocialParams& p) {
  HG_CHECK(p.n >= 2);
  EdgeList out;
  out.n = p.n;
  out.name = p.name;
  const std::uint64_t m_target =
      static_cast<std::uint64_t>(p.avg_degree * static_cast<double>(p.n));
  out.edges.reserve(
      static_cast<std::size_t>(m_target * (1.0 + p.reciprocity)));

  Rng rng(p.seed ^ 0x534f43ULL /* "SOC" */);

  // Power-law out-degree weights, scaled to hit m_target in expectation.
  std::vector<double> w(p.n);
  double total = 0;
  for (gvid_t v = 0; v < p.n; ++v) {
    const double u = rng.uniform();
    total += (w[v] = 1.0 / std::pow(1.0 - u, 1.0 / (p.skew_alpha - 1.0)));
  }
  const double scale = static_cast<double>(m_target) / total;

  // Destination sampling: preferential by the same weight family, via a
  // u^2-skewed pick over a degree-sorted shadow ordering.  We avoid an
  // explicit alias table by exploiting that vertex ids are already random
  // relative to weights: a skewed pick over ids biased through splitmix64
  // gives the heavy-tail in-degree the Figure-4 frameworks choke on.
  const auto pick_global = [&](Rng& r) -> gvid_t {
    const double u = r.uniform();
    // u^3 strongly favours the low end of a pseudo-random permutation.
    const gvid_t slot = static_cast<gvid_t>(u * u * u * static_cast<double>(p.n));
    return splitmix64(slot ^ (p.seed * 1315423911ULL)) % p.n;
  };

  for (gvid_t v = 0; v < p.n; ++v) {
    const std::uint32_t deg =
        static_cast<std::uint32_t>(w[v] * scale + rng.uniform());
    for (std::uint32_t e = 0; e < deg; ++e) {
      gvid_t dst;
      if (rng.uniform() < p.locality && p.window > 1) {
        // Neighbourhood link inside an id window (friends cluster).
        const gvid_t lo = (v > p.window / 2) ? v - p.window / 2 : 0;
        const gvid_t hi = std::min<gvid_t>(p.n, lo + p.window);
        dst = lo + rng.below(hi - lo);
      } else {
        dst = pick_global(rng);
      }
      out.edges.push_back({v, dst});
      if (rng.uniform() < p.reciprocity) out.edges.push_back({dst, v});
    }
  }
  return out;
}

namespace {
EdgeList preset(gvid_t n_published, double avg_degree, double skew,
                double reciprocity, const char* name, unsigned scale_div,
                std::uint64_t seed) {
  SocialParams p;
  p.n = std::max<gvid_t>(n_published / scale_div, 1024);
  p.avg_degree = avg_degree;
  p.skew_alpha = skew;
  p.reciprocity = reciprocity;
  p.window = std::max<gvid_t>(p.n / 256, 64);
  p.seed = seed;
  p.name = name;
  return social(p);
}
}  // namespace

EdgeList twitter_like(unsigned scale_div, std::uint64_t seed) {
  // 53 M vertices, 2.0 B edges, d_avg 38, extreme celebrity skew.
  return preset(53'000'000, 38, 1.9, 0.2, "Twitter", scale_div, seed);
}

EdgeList livejournal_like(unsigned scale_div, std::uint64_t seed) {
  // 4.8 M vertices, 69 M edges, d_avg 14, friend-graph reciprocity.
  return preset(4'800'000, 14, 2.3, 0.6, "LiveJournal", scale_div, seed);
}

EdgeList google_like(unsigned scale_div, std::uint64_t seed) {
  // 875 K vertices, 5.1 M edges, d_avg 5.8.
  return preset(875'000, 5.8, 2.4, 0.3, "Google", scale_div, seed);
}

EdgeList host_like(unsigned scale_div, std::uint64_t seed) {
  // WDC host-level: 89 M vertices, 2.0 B edges, d_avg 22.
  return preset(89'000'000, 22, 2.0, 0.25, "Host", scale_div, seed);
}

EdgeList pay_like(unsigned scale_div, std::uint64_t seed) {
  // WDC pay-level-domain: 39 M vertices, 623 M edges, d_avg 16.
  return preset(39'000'000, 16, 2.1, 0.3, "Pay", scale_div, seed);
}

}  // namespace hpcgraph::gen
