#pragma once
/// \file degree_tools.hpp
/// Degree computations over raw edge lists: used by edge-block partitioning
/// (which needs global out-degrees), harmonic-centrality vertex selection
/// ("top 1000 vertices ranked by their vertex degree"), and the structural
/// reports.

#include <cstdint>
#include <vector>

#include "gen/edge_list.hpp"

namespace hpcgraph::gen {

/// Out-degree of every vertex (indexed by global id).
std::vector<std::uint32_t> out_degrees(const EdgeList& g);

/// In-degree of every vertex (indexed by global id).
std::vector<std::uint32_t> in_degrees(const EdgeList& g);

/// Total degree (in + out) of every vertex.
std::vector<std::uint32_t> total_degrees(const EdgeList& g);

/// The k vertices with the highest total degree, descending; ties broken by
/// lower id first (deterministic).
std::vector<gvid_t> top_k_by_degree(const EdgeList& g, std::size_t k);

}  // namespace hpcgraph::gen
