#pragma once
/// \file aggregate.hpp
/// Graph aggregation: collapse groups of vertices into supernodes.
///
/// The paper's Host and Pay datasets *are* aggregations of the page-level
/// WDC crawl ("available at three levels of aggregation: at page level ...
/// at the granularity of subdomains or hosts ... and at the granularity of
/// pay-level-domain").  This transform produces the same kind of quotient
/// graph from any grouping — e.g. the communities Label Propagation finds,
/// enabling the analyze-communities-as-a-graph workflow.

#include <cstdint>
#include <span>
#include <vector>

#include "gen/edge_list.hpp"

namespace hpcgraph::gen {

struct AggregateOptions {
  bool keep_self_loops = false;  ///< keep intra-group edges as self loops
  bool dedup_edges = true;       ///< collapse parallel supernode edges
};

struct AggregatedGraph {
  /// The quotient graph; vertex ids are dense group indices.
  EdgeList graph;
  /// Per supernode: the original group label (ascending, so supernode ids
  /// are assigned in sorted-label order — deterministic).
  std::vector<std::uint64_t> group_label;
  /// Per original vertex: its supernode id.
  std::vector<gvid_t> group_of;
  /// Per supernode: number of original member vertices.
  std::vector<std::uint64_t> group_size;
};

/// Collapse `graph` by `labels` (one label per original vertex).
AggregatedGraph aggregate_graph(const EdgeList& graph,
                                std::span<const std::uint64_t> labels,
                                const AggregateOptions& opts = {});

}  // namespace hpcgraph::gen
