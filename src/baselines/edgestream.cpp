#include "baselines/edgestream.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcgraph::baselines {

EdgeStream::EdgeStream(std::string path, io::EdgeFormat format, gvid_t n)
    : mode_(StreamMode::kExternal),
      n_(n),
      m_(io::edge_count(path, format)),
      path_(std::move(path)),
      format_(format) {}

EdgeStream::EdgeStream(gen::EdgeList edges)
    : mode_(StreamMode::kStandalone),
      n_(edges.n),
      m_(edges.edges.size()),
      mem_(std::move(edges)) {}

std::vector<double> stream_pagerank(const EdgeStream& stream, int iterations,
                                    double damping) {
  const gvid_t n = stream.n();
  HG_CHECK(n > 0);
  const double nd = static_cast<double>(n);

  // Out-degrees: one initial pass over the stream.
  std::vector<std::uint32_t> odeg(n, 0);
  stream.for_each_edge([&](gvid_t src, gvid_t) { ++odeg[src]; });

  std::vector<double> rank(n, 1.0 / nd), next(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0;
    for (gvid_t v = 0; v < n; ++v)
      if (odeg[v] == 0) dangling += rank[v];
    const double base = (1.0 - damping) / nd + damping * dangling / nd;
    std::fill(next.begin(), next.end(), base);
    stream.for_each_edge([&](gvid_t src, gvid_t dst) {
      next[dst] += damping * rank[src] / static_cast<double>(odeg[src]);
    });
    rank.swap(next);
  }
  return rank;
}

std::vector<gvid_t> stream_wcc(const EdgeStream& stream, int* iterations_run) {
  const gvid_t n = stream.n();
  std::vector<gvid_t> label(n), next(n);
  for (gvid_t v = 0; v < n; ++v) label[v] = v;

  // Synchronous (two-buffer) undirected HashMin: every iteration reads the
  // previous labels and writes new ones — the update schedule vertex-centric
  // frameworks (FlashGraph's BSP engine included) execute, and the reason
  // traditional WCC needs diameter-many full edge scans.  (An in-place
  // single-array variant converges far faster but models a hand-tuned
  // sequential code, not a framework.)
  int iters = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++iters;
    next = label;
    stream.for_each_edge([&](gvid_t src, gvid_t dst) {
      const gvid_t m = std::min(label[src], label[dst]);
      if (m < next[src]) next[src] = m;
      if (m < next[dst]) next[dst] = m;
    });
    for (gvid_t v = 0; v < n; ++v) {
      if (next[v] != label[v]) {
        changed = true;
        break;
      }
    }
    label.swap(next);
  }
  if (iterations_run) *iterations_run = iters;
  return label;
}

}  // namespace hpcgraph::baselines
