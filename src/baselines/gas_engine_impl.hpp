#pragma once
/// \file gas_engine_impl.hpp
/// Template implementation of the miniGAS engine (see gas_engine.hpp).

#include "util/thread_queue.hpp"

namespace hpcgraph::baselines {

template <typename V, typename M>
std::vector<V> gas_run(const dgraph::DistGraph& g,
                       parcomm::Communicator& comm,
                       const GasProgram<V, M>& program, const GasOptions& opts,
                       GasStats* stats) {
  const int p = comm.size();

  std::vector<V> vdata(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    vdata[v] = program.init(g.global_id(v), g.out_degree(v), g.in_degree(v));

  struct Msg {
    gvid_t dst;
    M payload;
  };

  GasStats local_stats;
  std::vector<M> acc(g.n_loc());

  for (int step = 0; step < opts.max_supersteps; ++step) {
    ++local_stats.supersteps;
    for (lvid_t v = 0; v < g.n_loc(); ++v) acc[v] = program.gather_zero();

    // ---- Scatter: one message per edge, rebuilt from scratch (framework
    // generality: no retained queues, no per-vertex dedup). ----
    std::vector<std::uint64_t> counts(p, 0);
    const auto count_edge = [&](lvid_t u) {
      if (g.is_ghost(u))
        ++counts[g.owner_of(u)];
    };
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      for (const lvid_t u : g.out_neighbors(v)) count_edge(u);
      if (opts.direction == GasDirection::kUndirected)
        for (const lvid_t u : g.in_neighbors(v)) count_edge(u);
    }

    MultiQueue<Msg> q(counts);
    {
      typename MultiQueue<Msg>::Sink sink(q);
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        const M msg = program.scatter(vdata[v]);
        const auto deliver = [&](lvid_t u) {
          ++local_stats.messages_sent;
          if (g.is_ghost(u)) {
            sink.push(static_cast<std::uint32_t>(g.owner_of(u)),
                      Msg{g.global_id(u), msg});
          } else {
            acc[u] = program.gather(acc[u], msg);
          }
        };
        for (const lvid_t u : g.out_neighbors(v)) deliver(u);
        if (opts.direction == GasDirection::kUndirected)
          for (const lvid_t u : g.in_neighbors(v)) deliver(u);
      }
    }

    const std::vector<Msg> recv = comm.alltoallv<Msg>(q.buffer(), counts);

    // ---- Gather: decode global ids through the hash map, every step. ----
    for (const Msg& m : recv) {
      ++local_stats.hash_lookups;
      const lvid_t l = g.local_id_checked(m.dst);
      acc[l] = program.gather(acc[l], m.payload);
    }

    // ---- Apply. ----
    bool changed_local = false;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      bool changed = false;
      vdata[v] = program.apply(vdata[v], acc[v], changed);
      changed_local |= changed;
    }

    if (opts.run_to_convergence && !comm.allreduce_lor(changed_local)) break;
  }

  if (stats) *stats = local_stats;
  return vdata;
}

}  // namespace hpcgraph::baselines
