#pragma once
/// \file pregel_programs.hpp
/// The two vertex programs the paper's §V Giraph comparison runs:
/// PageRank and Label Propagation, written against the miniPregel API the
/// way the Giraph examples are written.

#include <algorithm>
#include <span>

#include "baselines/pregel_engine.hpp"
#include "util/label_counter.hpp"

namespace hpcgraph::baselines {

/// Pregel PageRank, with the out-degree carried in the vertex value (the
/// published Giraph example reads getNumEdges(); our value plays that
/// role).  Superstep 0 seeds 1/n and scatters; supersteps 1..k apply the
/// damped sum and scatter again; every vertex halts at k.  Framework
/// semantics: no dangling-mass redistribution, like the stock example.
struct PregelPrValue {
  double rank;
  double out_deg;
};

class PregelPageRank final : public PregelProgram<PregelPrValue, double> {
 public:
  PregelPageRank(gvid_t n_global, int iterations, double damping = 0.85)
      : n_(static_cast<double>(n_global)),
        iterations_(iterations),
        damping_(damping) {}

  PregelPrValue init(gvid_t, std::uint64_t out_deg,
                     std::uint64_t) const override {
    return {1.0 / n_, static_cast<double>(out_deg)};
  }

  void compute(int superstep, PregelPrValue& value,
               std::span<const double> messages,
               PregelContext<double>& ctx) const override {
    if (superstep >= 1) {
      double sum = 0;
      for (const double m : messages) sum += m;
      value.rank = (1.0 - damping_) / n_ + damping_ * sum;
    }
    if (superstep < iterations_) {
      if (value.out_deg > 0)
        ctx.send_to_out_neighbors(value.rank / value.out_deg);
    } else {
      ctx.vote_to_halt();
    }
  }

 private:
  double n_;
  int iterations_;
  double damping_;
};

/// Pregel Label Propagation over the undirected view: each superstep every
/// vertex adopts the plurality label among the messages from all its in-
/// and out-neighbours, then re-broadcasts.  Identical semantics (and
/// tie-break) to analytics::label_propagation's synchronous mode.
class PregelLabelProp final
    : public PregelProgram<std::uint64_t, std::uint64_t> {
 public:
  PregelLabelProp(int iterations, std::uint64_t tie_seed = 0)
      : iterations_(iterations), tie_seed_(tie_seed) {}

  std::uint64_t init(gvid_t gid, std::uint64_t,
                     std::uint64_t) const override {
    return gid;
  }

  void compute(int superstep, std::uint64_t& value,
               std::span<const std::uint64_t> messages,
               PregelContext<std::uint64_t>& ctx) const override {
    if (superstep >= 1) {
      LabelCounter lmap;
      for (const std::uint64_t m : messages) lmap.add(m);
      value = lmap.argmax(
          tie_seed_ + static_cast<std::uint64_t>(superstep - 1), value);
    }
    if (superstep < iterations_) {
      // Broadcast both directions: u's label must reach both u's in- and
      // out-neighbours (LP ignores edge direction).
      ctx.send_to_out_neighbors(value);
      ctx.send_to_in_neighbors(value);
    } else {
      ctx.vote_to_halt();
    }
  }

 private:
  int iterations_;
  std::uint64_t tie_seed_;
};

}  // namespace hpcgraph::baselines
