#pragma once
/// \file gas_programs.hpp
/// The two vertex programs the Figure-4 comparison runs on miniGAS:
/// PageRank and (weakly) connected components, matching "the supplied
/// implementations of PageRank and (weakly) connected components in each of
/// the frameworks".

#include <algorithm>

#include "baselines/gas_engine.hpp"

namespace hpcgraph::baselines {

/// Vertex state of GasPageRank: the rank plus a cached out-degree (needed
/// by scatter, which only sees vertex data).
struct PrVData {
  double rank;
  double out_deg;
};

/// PageRank the framework way: rank/outdeg along every out-edge, no
/// dangling-mass redistribution (as in the stock PowerGraph/GraphX
/// examples).
class GasPageRank final : public GasProgram<PrVData, double> {
 public:
  using VData = PrVData;

  GasPageRank(gvid_t n_global, double damping = 0.85)
      : n_(static_cast<double>(n_global)), damping_(damping) {}

  VData init(gvid_t, std::uint64_t out_deg, std::uint64_t) const override {
    return {1.0 / n_, static_cast<double>(out_deg)};
  }
  double gather_zero() const override { return 0.0; }
  double gather(const double& a, const double& b) const override {
    return a + b;
  }
  VData apply(const VData& cur, const double& acc,
              bool& changed) const override {
    const double next = (1.0 - damping_) / n_ + damping_ * acc;
    changed = next != cur.rank;
    return {next, cur.out_deg};
  }
  double scatter(const VData& v) const override {
    return v.out_deg > 0 ? v.rank / v.out_deg : 0.0;
  }

 private:
  double n_;
  double damping_;
};

/// Connected components by HashMin label propagation over the undirected
/// view (the standard framework CC example).  Run with
/// GasDirection::kUndirected and run_to_convergence = true.
class GasConnectedComponents final
    : public GasProgram<std::uint64_t, std::uint64_t> {
 public:
  std::uint64_t init(gvid_t gid, std::uint64_t, std::uint64_t) const override {
    return gid;
  }
  std::uint64_t gather_zero() const override { return ~std::uint64_t{0}; }
  std::uint64_t gather(const std::uint64_t& a,
                       const std::uint64_t& b) const override {
    return std::min(a, b);
  }
  std::uint64_t apply(const std::uint64_t& cur, const std::uint64_t& acc,
                      bool& changed) const override {
    const std::uint64_t next = std::min(cur, acc);
    changed = next != cur;
    return next;
  }
  std::uint64_t scatter(const std::uint64_t& v) const override { return v; }
};

}  // namespace hpcgraph::baselines
