#pragma once
/// \file pregel_engine.hpp
/// miniPregel: a Pregel/Giraph-style vertex-centric superstep engine — the
/// stand-in for the paper's §V "Further Comparisons" against Facebook's
/// Giraph ("a per-iteration time of 9.5 minutes for a Label Propagation
/// implementation ... 5 minutes for PageRank", vs the paper's 40 s / 4.4 s).
///
/// Faithful to the Pregel model (and intentionally paying its costs):
///   * user code is a per-vertex `compute(superstep, value, messages, ctx)`
///     invoked through virtual dispatch;
///   * messages are materialized per edge into *per-vertex inboxes*
///     (vector-of-vectors, the allocation pattern JVM frameworks exhibit);
///   * remote messages carry global ids decoded through the hash map every
///     superstep;
///   * halting is by vote: a vertex halts until a message re-activates it.
///
/// Contrast with baselines/gas_engine.hpp (PowerGraph model: combiner-based
/// gather, no inboxes) — together they bracket the framework designs the
/// paper compares against.

#include <cstdint>
#include <span>
#include <vector>

#include "dgraph/dist_graph.hpp"
#include "parcomm/comm.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::baselines {

/// Per-vertex send/halt interface handed to compute().
template <typename M>
class PregelContext {
 public:
  /// Send `msg` along every out-edge of the current vertex.
  virtual void send_to_out_neighbors(const M& msg) = 0;
  /// Send `msg` along every in-edge (to all vertices pointing here).
  virtual void send_to_in_neighbors(const M& msg) = 0;
  /// Halt; the vertex stays inactive until a message arrives.
  virtual void vote_to_halt() = 0;

 protected:
  ~PregelContext() = default;
};

/// A Pregel vertex program over vertex value V and message M.
template <typename V, typename M>
class PregelProgram {
 public:
  virtual ~PregelProgram() = default;

  /// Initial vertex value (before superstep 0).
  virtual V init(gvid_t gid, std::uint64_t out_deg,
                 std::uint64_t in_deg) const = 0;

  /// One vertex, one superstep.  `messages` holds everything received last
  /// superstep.  Unless the vertex votes to halt it stays active.
  virtual void compute(int superstep, V& value, std::span<const M> messages,
                       PregelContext<M>& ctx) const = 0;
};

struct PregelOptions {
  int max_supersteps = 30;
};

struct PregelStats {
  int supersteps = 0;
  std::uint64_t messages_sent = 0;  ///< this rank, cumulative
};

/// Collective.  Runs until every vertex is halted with no messages in
/// flight, or max_supersteps.  Returns final per-local-vertex values.
template <typename V, typename M>
std::vector<V> pregel_run(const dgraph::DistGraph& g,
                          parcomm::Communicator& comm,
                          const PregelProgram<V, M>& program,
                          const PregelOptions& opts,
                          PregelStats* stats = nullptr);

}  // namespace hpcgraph::baselines

#include "baselines/pregel_engine_impl.hpp"  // IWYU pragma: keep
