#pragma once
/// \file edgestream.hpp
/// Semi-external edge-streaming engine — the FlashGraph stand-in of the
/// Figure-4 comparison (see DESIGN.md §1).
///
/// Single process; per-vertex state lives in memory, the edge list is
/// scanned once per iteration:
///   * **kExternal**: edges are re-read from the binary file every
///     iteration (models FlashGraph pulling edge pages from SSD — "FG" in
///     Figure 4);
///   * **kStandalone**: edges are held in one in-memory array ("FG-SA").
///
/// Implements the same two kernels the comparison runs: PageRank and WCC
/// (HashMin to convergence).

#include <cstdint>
#include <string>
#include <vector>

#include "gen/edge_list.hpp"
#include "io/binary_edge_io.hpp"

namespace hpcgraph::baselines {

enum class StreamMode {
  kExternal,    ///< stream edges from disk every iteration
  kStandalone,  ///< edges resident in memory
};

/// Edge supplier abstraction over the two modes.
class EdgeStream {
 public:
  /// External mode: edges come from a binary edge file.
  EdgeStream(std::string path, io::EdgeFormat format, gvid_t n);
  /// Standalone mode: edges held in memory.
  explicit EdgeStream(gen::EdgeList edges);

  gvid_t n() const { return n_; }
  std::uint64_t m() const { return m_; }
  StreamMode mode() const { return mode_; }

  /// Invoke fn(src, dst) for every edge, in file order.  External mode
  /// reads the file in bounded batches (constant memory in m).
  template <typename F>
  void for_each_edge(F&& fn) const {
    if (mode_ == StreamMode::kStandalone) {
      for (const gen::Edge& e : mem_.edges) fn(e.src, e.dst);
      return;
    }
    constexpr std::uint64_t kBatch = 1 << 18;
    for (std::uint64_t at = 0; at < m_; at += kBatch) {
      const std::uint64_t take = std::min(kBatch, m_ - at);
      const std::vector<gen::Edge> batch =
          io::read_edge_chunk(path_, format_, at, take);
      for (const gen::Edge& e : batch) fn(e.src, e.dst);
    }
  }

 private:
  StreamMode mode_;
  gvid_t n_ = 0;
  std::uint64_t m_ = 0;
  std::string path_;
  io::EdgeFormat format_ = io::EdgeFormat::kU32;
  gen::EdgeList mem_;
};

/// PageRank over an edge stream (same semantics as the tuned code, including
/// dangling redistribution, so results are comparable).
std::vector<double> stream_pagerank(const EdgeStream& stream, int iterations,
                                    double damping = 0.85);

/// WCC by HashMin over the edge stream, iterated to convergence.
/// Returns canonical labels (min vertex id per component).
std::vector<gvid_t> stream_wcc(const EdgeStream& stream,
                               int* iterations_run = nullptr);

}  // namespace hpcgraph::baselines
