#include "baselines/singlestage_wcc.hpp"

#include "dgraph/ghost_exchange.hpp"

namespace hpcgraph::baselines {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

SingleStageWccResult wcc_singlestage(const DistGraph& g, Communicator& comm,
                                     const analytics::CommonOptions& opts) {
  SingleStageWccResult res;
  GhostExchange gx(g, comm, Adjacency::kBoth, opts.pool);

  std::vector<gvid_t> color(g.n_total());
  for (lvid_t l = 0; l < g.n_total(); ++l) color[l] = g.global_id(l);

  bool changed_global = true;
  while (changed_global) {
    ++res.iterations;
    bool changed_local = false;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      gvid_t m = color[v];
      for (const lvid_t u : g.out_neighbors(v)) m = std::min(m, color[u]);
      for (const lvid_t u : g.in_neighbors(v)) m = std::min(m, color[u]);
      if (m < color[v]) {
        color[v] = m;
        changed_local = true;
      }
    }
    gx.exchange<gvid_t>(color, comm);
    changed_global = comm.allreduce_lor(changed_local);
  }

  res.comp.assign(color.begin(), color.begin() + g.n_loc());
  return res;
}

}  // namespace hpcgraph::baselines
