#pragma once
/// \file singlestage_wcc.hpp
/// Traditional single-stage WCC: HashMin color propagation over the whole
/// graph, no Multistep BFS phase.  This is the approach the paper credits
/// its WCC speedups against ("our speedups for WCC are larger ... due to
/// our use of the efficient Multistep algorithm, instead of traditional
/// single-stage WCC approaches") — kept as an in-tree baseline so the claim
/// is directly measurable (bench/fig4_frameworks).

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::baselines {

struct SingleStageWccResult {
  /// Per local vertex: canonical component label (min global id).
  std::vector<gvid_t> comp;
  int iterations = 0;  ///< HashMin rounds to convergence
};

/// Collective.  Same output as analytics::wcc (labels are canonical), very
/// different iteration count on small-world graphs with a giant component.
SingleStageWccResult wcc_singlestage(const dgraph::DistGraph& g,
                                     parcomm::Communicator& comm,
                                     const analytics::CommonOptions& opts = {});

}  // namespace hpcgraph::baselines
