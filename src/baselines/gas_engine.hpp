#pragma once
/// \file gas_engine.hpp
/// miniGAS: a synchronous gather–apply–scatter vertex-program engine in the
/// style of PowerGraph/PowerLyra/GraphX — the stand-in for the frameworks of
/// the paper's Figure 4 comparison (see DESIGN.md §1).
///
/// The engine runs on the same communicator and distributed graph as the
/// tuned analytics, but deliberately pays the generality costs the paper
/// attributes to frameworks:
///
///   * one materialized message **per edge** per superstep (the tuned codes
///     send one value per boundary *vertex*);
///   * remote messages carry global vertex ids that are resolved through
///     the hash map **every superstep** (the tuned codes decode once and
///     retain local ids);
///   * send buffers are **rebuilt** every superstep (no retained queues);
///   * vertex programs are invoked through virtual dispatch.
///
/// This isolates the abstraction penalty on identical hardware, which is
/// the quantity Figure 4 measures across frameworks.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"
#include "dgraph/dist_graph.hpp"
#include "parcomm/comm.hpp"

namespace hpcgraph::baselines {

/// A gather-apply-scatter vertex program over vertex data V and message M.
template <typename V, typename M>
class GasProgram {
 public:
  virtual ~GasProgram() = default;

  /// Initial vertex state.
  virtual V init(gvid_t gid, std::uint64_t out_deg,
                 std::uint64_t in_deg) const = 0;

  /// Identity element of the gather combiner.
  virtual M gather_zero() const = 0;

  /// Commutative-associative message combiner.
  virtual M gather(const M& a, const M& b) const = 0;

  /// New vertex state from the gathered aggregate; set `changed` when the
  /// state moved (drives convergence detection).
  virtual V apply(const V& cur, const M& acc, bool& changed) const = 0;

  /// Message emitted along each out-edge (and each in-edge when the engine
  /// runs undirected).
  virtual M scatter(const V& v) const = 0;
};

enum class GasDirection { kOutEdges, kUndirected };

struct GasOptions {
  int max_supersteps = 10;
  GasDirection direction = GasDirection::kOutEdges;
  /// Stop when no vertex changed in a superstep (requires programs to
  /// report `changed` faithfully).
  bool run_to_convergence = false;
};

struct GasStats {
  int supersteps = 0;
  std::uint64_t messages_sent = 0;     ///< this rank, cumulative
  std::uint64_t hash_lookups = 0;      ///< this rank, cumulative
};

/// Collective.  Runs the program to completion; returns final per-local-
/// vertex states.
template <typename V, typename M>
std::vector<V> gas_run(const dgraph::DistGraph& g,
                       parcomm::Communicator& comm,
                       const GasProgram<V, M>& program,
                       const GasOptions& opts, GasStats* stats = nullptr);

}  // namespace hpcgraph::baselines

#include "baselines/gas_engine_impl.hpp"  // IWYU pragma: keep
