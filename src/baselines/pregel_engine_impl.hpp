#pragma once
/// \file pregel_engine_impl.hpp
/// Template implementation of miniPregel (see pregel_engine.hpp).

#include "util/error.hpp"

namespace hpcgraph::baselines {

namespace pregel_detail {

/// Context implementation: buffers the current vertex's sends.
template <typename M>
class ContextImpl final : public PregelContext<M> {
 public:
  ContextImpl(const dgraph::DistGraph& g, PregelStats& stats,
              std::vector<std::vector<M>>& local_inbox,
              std::vector<std::pair<gvid_t, M>>& remote_outbox)
      : g_(g),
        stats_(stats),
        local_inbox_(local_inbox),
        remote_outbox_(remote_outbox) {}

  void set_vertex(lvid_t v) { v_ = v; }
  bool halted() const { return halted_; }
  void reset_vote() { halted_ = false; }

  void send_to_out_neighbors(const M& msg) override {
    for (const lvid_t u : g_.out_neighbors(v_)) deliver(u, msg);
  }

  void send_to_in_neighbors(const M& msg) override {
    for (const lvid_t u : g_.in_neighbors(v_)) deliver(u, msg);
  }

  void vote_to_halt() override { halted_ = true; }

 private:
  void deliver(lvid_t u, const M& msg) {
    ++stats_.messages_sent;
    if (g_.is_ghost(u)) {
      remote_outbox_.emplace_back(g_.global_id(u), msg);
    } else {
      local_inbox_[u].push_back(msg);
    }
  }

  const dgraph::DistGraph& g_;
  PregelStats& stats_;
  std::vector<std::vector<M>>& local_inbox_;
  std::vector<std::pair<gvid_t, M>>& remote_outbox_;
  lvid_t v_ = 0;
  bool halted_ = false;
};

}  // namespace pregel_detail

template <typename V, typename M>
std::vector<V> pregel_run(const dgraph::DistGraph& g,
                          parcomm::Communicator& comm,
                          const PregelProgram<V, M>& program,
                          const PregelOptions& opts, PregelStats* stats) {
  const int p = comm.size();

  std::vector<V> value(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    value[v] = program.init(g.global_id(v), g.out_degree(v), g.in_degree(v));

  // Per-vertex inboxes, double-buffered (the Pregel model's materialized
  // message lists).
  std::vector<std::vector<M>> inbox(g.n_loc()), inbox_next(g.n_loc());
  std::vector<std::uint8_t> active(g.n_loc(), 1);

  struct WireMsg {
    gvid_t dst;
    M payload;
  };

  PregelStats local_stats;
  std::vector<std::pair<gvid_t, M>> remote_outbox;

  for (int step = 0; step < opts.max_supersteps; ++step) {
    ++local_stats.supersteps;
    remote_outbox.clear();
    pregel_detail::ContextImpl<M> ctx(g, local_stats, inbox_next,
                                      remote_outbox);

    std::uint64_t active_local = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      // A vertex computes if it is active or received messages.
      if (!active[v] && inbox[v].empty()) continue;
      ++active_local;
      ctx.set_vertex(v);
      ctx.reset_vote();
      program.compute(step, value[v], inbox[v], ctx);
      active[v] = ctx.halted() ? 0 : 1;
      inbox[v].clear();
    }

    // ---- Route remote messages through the Algorithm-3 queues. ----
    std::vector<std::uint64_t> counts(p, 0);
    for (const auto& [dst, msg] : remote_outbox)
      ++counts[g.owner_of_global(dst)];
    MultiQueue<WireMsg> q(counts);
    {
      typename MultiQueue<WireMsg>::Sink sink(q);
      for (const auto& [dst, msg] : remote_outbox)
        sink.push(static_cast<std::uint32_t>(g.owner_of_global(dst)),
                  WireMsg{dst, msg});
    }
    const std::vector<WireMsg> recv =
        comm.alltoallv<WireMsg>(q.buffer(), counts);
    std::uint64_t delivered = recv.size();
    for (const WireMsg& m : recv)
      inbox_next[g.local_id_checked(m.dst)].push_back(m.payload);

    std::swap(inbox, inbox_next);
    // Count local deliveries too: any nonempty inbox re-activates.
    for (const auto& box : inbox) delivered += box.size();
    (void)active_local;

    // Quiescence: nobody un-halted and no message in any inbox.
    std::uint64_t still_active = delivered;
    for (const auto a : active) still_active += a;
    if (comm.allreduce_sum(still_active) == 0) break;
  }

  if (stats) *stats = local_stats;
  return value;
}

}  // namespace hpcgraph::baselines
