#include "io/binary_edge_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace hpcgraph::io {

namespace {

/// RAII file descriptor.
class Fd {
 public:
  Fd(const std::string& path, int flags, mode_t mode = 0644)
      : fd_(::open(path.c_str(), flags, mode)) {
    HG_CHECK_MSG(fd_ >= 0,
                 "open(" << path << ") failed: " << std::strerror(errno));
  }
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

void write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    HG_CHECK_MSG(w > 0, "write failed: " << std::strerror(errno));
    p += w;
    len -= static_cast<std::size_t>(w);
  }
}

void pread_all(int fd, void* buf, std::size_t len, off_t offset) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t r = ::pread(fd, p, len, offset);
    HG_CHECK_MSG(r > 0, "pread failed: " << std::strerror(errno));
    p += r;
    offset += r;
    len -= static_cast<std::size_t>(r);
  }
}

}  // namespace

void write_edge_file(const std::string& path, const gen::EdgeList& graph,
                     EdgeFormat format) {
  Fd fd(path, O_WRONLY | O_CREAT | O_TRUNC);
  constexpr std::size_t kBatch = 1 << 16;

  if (format == EdgeFormat::kU32) {
    std::vector<std::uint32_t> buf;
    buf.reserve(kBatch * 2);
    for (const gen::Edge& e : graph.edges) {
      HG_CHECK_MSG(e.src <= 0xffffffffULL && e.dst <= 0xffffffffULL,
                   "vertex id exceeds u32 format");
      buf.push_back(static_cast<std::uint32_t>(e.src));
      buf.push_back(static_cast<std::uint32_t>(e.dst));
      if (buf.size() >= kBatch * 2) {
        write_all(fd.get(), buf.data(), buf.size() * sizeof(std::uint32_t));
        buf.clear();
      }
    }
    if (!buf.empty())
      write_all(fd.get(), buf.data(), buf.size() * sizeof(std::uint32_t));
  } else {
    std::vector<std::uint64_t> buf;
    buf.reserve(kBatch * 2);
    for (const gen::Edge& e : graph.edges) {
      buf.push_back(e.src);
      buf.push_back(e.dst);
      if (buf.size() >= kBatch * 2) {
        write_all(fd.get(), buf.data(), buf.size() * sizeof(std::uint64_t));
        buf.clear();
      }
    }
    if (!buf.empty())
      write_all(fd.get(), buf.data(), buf.size() * sizeof(std::uint64_t));
  }
}

std::uint64_t edge_count(const std::string& path, EdgeFormat format) {
  struct stat st{};
  HG_CHECK_MSG(::stat(path.c_str(), &st) == 0,
               "stat(" << path << ") failed: " << std::strerror(errno));
  const std::size_t bpe = bytes_per_edge(format);
  HG_CHECK_MSG(static_cast<std::uint64_t>(st.st_size) % bpe == 0,
               path << ": size not a whole number of edges");
  return static_cast<std::uint64_t>(st.st_size) / bpe;
}

std::vector<gen::Edge> read_edge_chunk(const std::string& path,
                                       EdgeFormat format, std::uint64_t first,
                                       std::uint64_t count) {
  Fd fd(path, O_RDONLY);
  const std::size_t bpe = bytes_per_edge(format);
  std::vector<gen::Edge> out(count);
  if (count == 0) return out;

  if (format == EdgeFormat::kU32) {
    std::vector<std::uint32_t> buf(count * 2);
    pread_all(fd.get(), buf.data(), count * bpe,
              static_cast<off_t>(first * bpe));
    for (std::uint64_t i = 0; i < count; ++i)
      out[i] = {buf[2 * i], buf[2 * i + 1]};
  } else {
    std::vector<std::uint64_t> buf(count * 2);
    pread_all(fd.get(), buf.data(), count * bpe,
              static_cast<off_t>(first * bpe));
    for (std::uint64_t i = 0; i < count; ++i)
      out[i] = {buf[2 * i], buf[2 * i + 1]};
  }
  return out;
}

std::pair<std::uint64_t, std::uint64_t> chunk_for_rank(std::uint64_t num_edges,
                                                       int rank, int nranks) {
  HG_CHECK(nranks >= 1 && rank >= 0 && rank < nranks);
  const std::uint64_t p = static_cast<std::uint64_t>(nranks);
  const std::uint64_t r = static_cast<std::uint64_t>(rank);
  const std::uint64_t base = num_edges / p;
  const std::uint64_t extra = num_edges % p;
  // The first `extra` ranks take one additional edge.
  const std::uint64_t first = r * base + std::min(r, extra);
  const std::uint64_t count = base + (r < extra ? 1 : 0);
  return {first, count};
}

}  // namespace hpcgraph::io
