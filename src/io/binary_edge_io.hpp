#pragma once
/// \file binary_edge_io.hpp
/// The paper's on-disk input format: a single binary file of directed edges,
/// "each directed edge ... represented using two 32-bit unsigned integers",
/// no header, no sorting.  A 64-bit variant is provided for graphs beyond
/// 2^32 vertices.
///
/// Reading is parallel and chunked exactly as in §III-A: every task reads a
/// contiguous byte range covering approximately the same number of edges
/// (via pread, so concurrent ranks never share file-descriptor state).

#include <cstdint>
#include <string>
#include <vector>

#include "gen/edge_list.hpp"

namespace hpcgraph::io {

enum class EdgeFormat {
  kU32,  ///< 8 bytes/edge — the paper's WC input format
  kU64,  ///< 16 bytes/edge
};

inline std::size_t bytes_per_edge(EdgeFormat f) {
  return f == EdgeFormat::kU32 ? 8 : 16;
}

/// Write `graph.edges` to `path` in the given format.  Throws CheckError on
/// I/O failure or (for kU32) on vertex ids >= 2^32.
void write_edge_file(const std::string& path, const gen::EdgeList& graph,
                     EdgeFormat format = EdgeFormat::kU32);

/// Number of edges in the file (from its size). Throws if the size is not a
/// whole number of edges.
std::uint64_t edge_count(const std::string& path,
                         EdgeFormat format = EdgeFormat::kU32);

/// Read edges [first, first + count) from the file.
std::vector<gen::Edge> read_edge_chunk(const std::string& path,
                                       EdgeFormat format, std::uint64_t first,
                                       std::uint64_t count);

/// The contiguous chunk assigned to `rank` of `nranks` when the file is
/// split as evenly as possible (the paper's ingestion decomposition).
/// Returns {first, count}.
std::pair<std::uint64_t, std::uint64_t> chunk_for_rank(std::uint64_t num_edges,
                                                       int rank, int nranks);

}  // namespace hpcgraph::io
