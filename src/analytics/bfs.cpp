#include "analytics/bfs.hpp"

#include <atomic>

#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"
#include "engine/superstep.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

namespace {

/// Status-array policy: plain stores for the single-thread fast path,
/// compare-exchange when several threads expand the frontier concurrently.
/// Claiming a vertex once per task is the paper's dedup device ("this first
/// update is done to signify that the vertex has either been added to the
/// local queue ... or the send queue ... so the exploration of subsequent
/// edges incident on the vertex don't end up re-queuing that vertex").
class PlainStatus {
 public:
  explicit PlainStatus(std::size_t n) : s_(n, kUnvisited) {}

  std::int64_t load(std::size_t i) const { return s_[i]; }
  void store(std::size_t i, std::int64_t v) { s_[i] = v; }

  bool claim(std::size_t i) {
    if (s_[i] != kUnvisited) return false;
    s_[i] = kQueued;
    return true;
  }

  bool pop_claim(std::size_t i, std::int64_t level) {
    if (s_[i] != kQueued) return false;
    s_[i] = level;
    return true;
  }

 private:
  std::vector<std::int64_t> s_;
};

class AtomicStatus {
 public:
  explicit AtomicStatus(std::size_t n) : s_(n) {
    for (auto& x : s_) x.store(kUnvisited, std::memory_order_relaxed);
  }

  std::int64_t load(std::size_t i) const {
    return s_[i].load(std::memory_order_relaxed);
  }
  void store(std::size_t i, std::int64_t v) {
    s_[i].store(v, std::memory_order_relaxed);
  }

  bool claim(std::size_t i) {
    std::int64_t expect = kUnvisited;
    return s_[i].compare_exchange_strong(expect, kQueued,
                                         std::memory_order_relaxed);
  }

  bool pop_claim(std::size_t i, std::int64_t level) {
    std::int64_t expect = kQueued;
    return s_[i].compare_exchange_strong(expect, level,
                                         std::memory_order_relaxed);
  }

 private:
  // Per-vertex CAS claims cannot hide behind a fold-style util helper; the
  // container itself must be atomic.  Reviewed: rank-private, pool-only.
  std::vector<std::atomic<std::int64_t>> s_;  // lint:allow(raw-sync: intra-rank frontier claims)
};

/// Traversal-direction degree of v (frontier edge weight for grids and the
/// direction-optimizing mode decision).
std::uint64_t dir_degree(const DistGraph& g, Dir dir, lvid_t v) {
  switch (dir) {
    case Dir::kOut: return g.out_degree(v);
    case Dir::kIn: return g.in_degree(v);
    case Dir::kBoth: return g.out_degree(v) + g.in_degree(v);
  }
  return 0;
}

/// Degree prefix (size q.size()+1) over the frontier, in traversal
/// direction — the weight array for edge-balanced expansion grids.
std::vector<std::uint64_t> frontier_degree_prefix(const DistGraph& g, Dir dir,
                                                  std::span<const lvid_t> q) {
  std::vector<std::uint64_t> p(q.size() + 1, 0);
  for (std::size_t i = 0; i < q.size(); ++i)
    p[i + 1] = p[i] + dir_degree(g, dir, q[i]);
  return p;
}

/// FrontierKernel: one level of the paper's Algorithm-2 traversal.  Threads
/// expand disjoint frontier spans, claiming neighbours through the status
/// array; ghost claims route to the owners through the frontier layer's
/// sharded Algorithm-3 producer.  Level stamps and frontier membership are
/// claim-order independent, so any chunking — and either frontier
/// representation — produces identical level[] outputs.
template <typename Status>
struct BfsLevelKernel {
  static constexpr bool kScheduleAware = true;

  const DistGraph& g;
  const BfsOptions& opts;
  Status status;
  engine::DistFrontier cur, next;
  // Per-thread scratch, reused across levels.
  std::vector<std::vector<lvid_t>> nexts, sends;

  BfsLevelKernel(const DistGraph& g_, const BfsOptions& o, ThreadPool& tp)
      : g(g_), opts(o), status(g_.n_total()), cur(g_.n_loc()),
        next(g_.n_loc()), nexts(tp.num_threads()), sends(tp.num_threads()) {}

  bool alive(lvid_t u) const {
    return opts.alive.empty() || opts.alive[u] != 0;
  }

  engine::DistFrontier* frontier() { return &cur; }

  std::uint64_t active_local() const { return cur.size(); }

  std::uint64_t degree_local() const {
    return cur.weight_sum([&](lvid_t v) { return dir_degree(g, opts.dir, v); });
  }

  void step(engine::FrontierStepContext& ctx) {
    ctx.touched_local = cur.size();
    const std::int64_t level = static_cast<std::int64_t>(ctx.superstep);
    const std::span<const lvid_t> q = cur.as_list();

    // ---- Expansion: pop the frontier, stamp levels, claim neighbours.
    // The edge-balanced grid weighs chunks by frontier degree (rebuilt per
    // level — the frontier changes every level).  ----
    const auto expand_span = [&](unsigned tid, std::uint64_t lo,
                                 std::uint64_t hi) {
      std::vector<lvid_t>& my_next = nexts[tid];
      std::vector<lvid_t>& my_send = sends[tid];
      for (std::uint64_t i = lo; i < hi; ++i) {
        const lvid_t v = q[i];
        // Claim the pop (duplicates can reach the queue via receives).
        if (!status.pop_claim(v, level)) continue;

        const auto explore = [&](lvid_t u) {
          if (g.is_ghost(u)) {
            if (status.claim(u)) my_send.push_back(u);
          } else if (alive(u) && status.claim(u)) {
            my_next.push_back(u);
          }
        };
        if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.out_neighbors(v)) explore(u);
        if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.in_neighbors(v)) explore(u);
      }
    };
    if (ctx.schedule == Schedule::kStatic) {
      ctx.pool.for_range(0, q.size(), expand_span);
    } else {
      std::vector<std::uint64_t> fprefix;
      if (ctx.schedule == Schedule::kEdgeBalanced)
        fprefix = frontier_degree_prefix(g, opts.dir, q);
      const ChunkGrid grid =
          make_grid(ctx.schedule, q.size(), fprefix, ctx.pool.num_threads());
      ctx.pool.for_ranges(grid, ctx.schedule, expand_span);
    }

    // ---- Ship claimed ghosts to their owners (Algorithm 2 lines 26-31):
    // concurrent per-thread Sinks; receivers are claim-based, so segment
    // permutation is immaterial. ----
    const std::vector<gvid_t> recv =
        engine::route_to_owners_sharded<gvid_t, lvid_t>(
            ctx.comm, ctx.pool, sends,
            [&](lvid_t u) { return g.owner_of(u); },
            [&](lvid_t u) { return g.global_id(u); }, opts.common.qsize);
    for (std::vector<lvid_t>& s : sends) s.clear();

    // ---- Assemble next frontier: local claims + received vertices. ----
    next.clear();
    for (std::vector<lvid_t>& t : nexts) {
      for (const lvid_t v : t) {
        next.push(v);
        ctx.degree_local += dir_degree(g, opts.dir, v);
      }
      t.clear();
    }
    for (const gvid_t gid : recv) {
      const lvid_t l = g.local_id_checked(gid);
      HG_DCHECK(!g.is_ghost(l));
      if (alive(l) && status.claim(l)) {
        next.push(l);
        ctx.degree_local += dir_degree(g, opts.dir, l);
      }
    }
    cur.swap(next);
  }
};

/// FrontierKernel: direction-optimizing traversal (hybrid top-down /
/// bottom-up).  The engine's frontier_decide replays the Beamer heuristics
/// on the fused-allreduce degree sum; a pull round publishes the dense
/// frontier over the ghost-exchange wire and scans for flagged parents.
/// Statuses are stamped with the level at frontier *insertion* time (both
/// modes), so the two schedules interleave freely and produce levels
/// identical to the reference traversal.
struct BfsDiroptKernel {
  static constexpr bool kScheduleAware = true;

  const DistGraph& g;
  const BfsOptions& opts;
  dgraph::GhostExchange gx;
  PlainStatus status;
  std::vector<std::uint8_t> flags;
  engine::DistFrontier cur, next;
  ChunkGrid bu_grid;  // bottom-up parent-scan grid (built on first use)

  BfsDiroptKernel(const DistGraph& g_, const BfsOptions& o,
                  Communicator& comm)
      // Frontier-flag propagation for bottom-up levels reuses the retained-
      // queue machinery; the adjacency mode mirrors the traversal direction
      // (a vertex's flag must reach every rank scanning it as a parent).
      : g(g_), opts(o),
        gx(g_, comm,
           o.dir == Dir::kOut  ? dgraph::Adjacency::kOut
           : o.dir == Dir::kIn ? dgraph::Adjacency::kIn
                               : dgraph::Adjacency::kBoth,
           o.common.pool),
        status(g_.n_total()), flags(g_.n_total(), 0), cur(g_.n_loc()),
        next(g_.n_loc()) {}

  bool alive(lvid_t u) const {
    return opts.alive.empty() || opts.alive[u] != 0;
  }

  engine::FrontierPolicy frontier_policy() const {
    engine::FrontierPolicy p;
    p.allow_pull = true;
    p.alpha = opts.alpha;
    p.beta = opts.beta;
    return p;
  }

  dgraph::GhostExchange* ghosts() { return &gx; }

  engine::DistFrontier* frontier() { return &cur; }

  std::uint64_t active_local() const { return cur.size(); }

  std::uint64_t degree_local() const {
    return cur.weight_sum([&](lvid_t v) { return dir_degree(g, opts.dir, v); });
  }

  void step(engine::FrontierStepContext& ctx) {
    ctx.touched_local = cur.size();
    const std::int64_t level = static_cast<std::int64_t>(ctx.superstep);
    const std::span<const lvid_t> q = cur.as_list();
    ThreadPool& tp = ctx.pool;
    const Schedule sched = ctx.schedule;

    next.clear();
    const auto accept = [&](lvid_t v) {
      next.push(v);
      ctx.degree_local += dir_degree(g, opts.dir, v);
    };
    if (ctx.dir == engine::FrontierDir::kPull) {
      // ---- Bottom-up: publish frontier flags, unvisited vertices look
      // for a flagged parent. ----
      tp.for_range(0, flags.size(), sched,
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     std::fill(flags.begin() + static_cast<std::ptrdiff_t>(lo),
                               flags.begin() + static_cast<std::ptrdiff_t>(hi),
                               std::uint8_t{0});
                   });
      tp.for_range(0, q.size(), sched,  // frontier is distinct: no races
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     for (std::uint64_t i = lo; i < hi; ++i) flags[q[i]] = 1;
                   });
      gx.exchange<std::uint8_t>(flags, ctx.comm);

      // Parent scan: each vertex touches only its own status slot and reads
      // the (fixed) flags array, so the scan chunks freely.  Per-chunk
      // accept lists concatenated in chunk order reproduce the serial
      // ascending-vertex next frontier exactly — the traversal is
      // bit-identical across schedules and thread counts.
      const auto scan_one = [&](lvid_t v) {
        if (status.load(v) != kUnvisited || !alive(v)) return false;
        // Parents sit in the *reverse* adjacency of the traversal.
        if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth) {
          for (const lvid_t u : g.in_neighbors(v))
            if (flags[u]) return true;
        }
        if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth) {
          for (const lvid_t u : g.out_neighbors(v))
            if (flags[u]) return true;
        }
        return false;
      };
      if (sched == Schedule::kStatic) {
        // Serial reference scan (the hybrid schedule's legacy path).
        for (lvid_t v = 0; v < g.n_loc(); ++v) {
          if (scan_one(v)) {
            status.store(v, level + 1);
            accept(v);
          }
        }
      } else {
        if (bu_grid.empty() && g.n_loc() > 0) {
          // Scan cost is bounded by reverse-adjacency degree.
          const std::vector<std::uint64_t> rev =
              opts.dir == Dir::kBoth ? both_degree_prefix(g)
              : opts.dir == Dir::kOut
                  ? std::vector<std::uint64_t>(g.in_index().begin(),
                                               g.in_index().end())
                  : std::vector<std::uint64_t>(g.out_index().begin(),
                                               g.out_index().end());
          bu_grid = make_grid(sched, g.n_loc(), rev, tp.num_threads());
        }
        std::vector<std::vector<lvid_t>> accepted(bu_grid.size());
        tp.for_chunks(bu_grid, sched,
                      [&](unsigned, std::uint64_t c, const Chunk& ck) {
                        for (std::uint64_t v = ck.begin; v < ck.end; ++v) {
                          if (!scan_one(static_cast<lvid_t>(v))) continue;
                          status.store(v, level + 1);
                          accepted[c].push_back(static_cast<lvid_t>(v));
                        }
                      });
        for (const std::vector<lvid_t>& list : accepted)
          for (const lvid_t v : list) accept(v);
      }
    } else {
      // ---- Top-down: as Algorithm 2, stamping at insertion. ----
      std::vector<lvid_t> send;
      for (const lvid_t v : q) {
        const auto explore = [&](lvid_t u) {
          if (g.is_ghost(u)) {
            if (status.claim(u))  // each ghost sent at most once per task
              send.push_back(u);
          } else if (alive(u) && status.load(u) == kUnvisited) {
            status.store(u, level + 1);
            accept(u);
          }
        };
        if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.out_neighbors(v)) explore(u);
        if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.in_neighbors(v)) explore(u);
      }

      const std::vector<gvid_t> recv = engine::route_to_owners<lvid_t>(
          ctx.comm, std::span<const lvid_t>(send),
          [&](lvid_t u) { return g.owner_of(u); },
          [&](lvid_t u) { return g.global_id(u); }, opts.common.qsize);
      for (const gvid_t gid : recv) {
        const lvid_t l = g.local_id_checked(gid);
        if (alive(l) && status.load(l) == kUnvisited) {
          status.store(l, level + 1);
          accept(l);
        }
      }
    }
    cur.swap(next);
  }
};

template <typename Kernel>
BfsResult run_bfs_kernel(const DistGraph& g, Communicator& comm,
                         Kernel& kernel, const BfsOptions& opts) {
  engine::SuperstepEngine eng(g, comm, engine_config(opts.common, "bfs"));
  const engine::EngineResult er = eng.run_frontier(kernel);

  BfsResult res;
  res.num_levels = static_cast<int>(er.supersteps);
  res.level.resize(g.n_loc());
  std::uint64_t visited_local = 0;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    res.level[v] = kernel.status.load(v);
    if (res.level[v] >= 0) ++visited_local;
  }
  res.visited = comm.allreduce_sum<std::uint64_t>(visited_local);
  return res;
}

template <typename Status>
BfsResult bfs_impl(const DistGraph& g, Communicator& comm, gvid_t root,
                   const BfsOptions& opts, ThreadPool& tp) {
  BfsLevelKernel<Status> kernel(g, opts, tp);
  if (g.owner_of_global(root) == comm.rank()) {
    const lvid_t l = g.local_id_checked(root);
    if (kernel.alive(l)) {
      kernel.status.store(l, kQueued);
      kernel.cur.push(l);
    }
  }
  return run_bfs_kernel(g, comm, kernel, opts);
}

BfsResult bfs_diropt_impl(const DistGraph& g, Communicator& comm, gvid_t root,
                          const BfsOptions& opts) {
  BfsDiroptKernel kernel(g, opts, comm);
  if (g.owner_of_global(root) == comm.rank()) {
    const lvid_t l = g.local_id_checked(root);
    if (kernel.alive(l)) {
      kernel.status.store(l, 0);
      kernel.cur.push(l);
    }
  }
  return run_bfs_kernel(g, comm, kernel, opts);
}

}  // namespace

BfsResult bfs(const DistGraph& g, Communicator& comm, gvid_t root,
              const BfsOptions& opts) {
  HG_CHECK(root < g.n_global());
  HG_CHECK(opts.alive.empty() || opts.alive.size() >= g.n_loc());

  ScopedPool pf(opts.common);
  ThreadPool& tp = pf.get();
  if (opts.direction_optimizing) {
    // The hybrid schedule expands top-down frontiers sequentially within a
    // rank; the pooled loops (flag fills, degree sums, and the bottom-up
    // parent scan under non-static schedules) each touch disjoint per-vertex
    // slots, so the plain status policy suffices.
    return bfs_diropt_impl(g, comm, root, opts);
  }
  if (tp.num_threads() == 1)
    return bfs_impl<PlainStatus>(g, comm, root, opts, tp);
  return bfs_impl<AtomicStatus>(g, comm, root, opts, tp);
}

}  // namespace hpcgraph::analytics
