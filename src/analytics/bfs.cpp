#include "analytics/bfs.hpp"

#include <atomic>
#include <optional>

#include "dgraph/ghost_exchange.hpp"
#include "engine/trace.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

namespace {

// BFS keeps its bespoke loop (the paper's Algorithm 2 is its own reference)
// but adopts the engine's telemetry sink: each level emits one
// SuperstepRecord through engine::RoundTrace, so --trace-json covers every
// analytic.

/// Status-array policy: plain stores for the single-thread fast path,
/// compare-exchange when several threads expand the frontier concurrently.
/// Claiming a vertex once per task is the paper's dedup device ("this first
/// update is done to signify that the vertex has either been added to the
/// local queue ... or the send queue ... so the exploration of subsequent
/// edges incident on the vertex don't end up re-queuing that vertex").
class PlainStatus {
 public:
  explicit PlainStatus(std::size_t n) : s_(n, kUnvisited) {}

  std::int64_t load(std::size_t i) const { return s_[i]; }
  void store(std::size_t i, std::int64_t v) { s_[i] = v; }

  bool claim(std::size_t i) {
    if (s_[i] != kUnvisited) return false;
    s_[i] = kQueued;
    return true;
  }

  bool pop_claim(std::size_t i, std::int64_t level) {
    if (s_[i] != kQueued) return false;
    s_[i] = level;
    return true;
  }

 private:
  std::vector<std::int64_t> s_;
};

class AtomicStatus {
 public:
  explicit AtomicStatus(std::size_t n) : s_(n) {
    for (auto& x : s_) x.store(kUnvisited, std::memory_order_relaxed);
  }

  std::int64_t load(std::size_t i) const {
    return s_[i].load(std::memory_order_relaxed);
  }
  void store(std::size_t i, std::int64_t v) {
    s_[i].store(v, std::memory_order_relaxed);
  }

  bool claim(std::size_t i) {
    std::int64_t expect = kUnvisited;
    return s_[i].compare_exchange_strong(expect, kQueued,
                                         std::memory_order_relaxed);
  }

  bool pop_claim(std::size_t i, std::int64_t level) {
    std::int64_t expect = kQueued;
    return s_[i].compare_exchange_strong(expect, level,
                                         std::memory_order_relaxed);
  }

 private:
  // Per-vertex CAS claims cannot hide behind a fold-style util helper; the
  // container itself must be atomic.  Reviewed: rank-private, pool-only.
  std::vector<std::atomic<std::int64_t>> s_;  // lint:allow(raw-sync: intra-rank frontier claims)
};

/// Traversal-direction degree of v (frontier edge weight for grids and the
/// direction-optimizing mode decision).
std::uint64_t dir_degree(const DistGraph& g, Dir dir, lvid_t v) {
  switch (dir) {
    case Dir::kOut: return g.out_degree(v);
    case Dir::kIn: return g.in_degree(v);
    case Dir::kBoth: return g.out_degree(v) + g.in_degree(v);
  }
  return 0;
}

/// Degree prefix (size q.size()+1) over the frontier, in traversal
/// direction — the weight array for edge-balanced expansion grids.
std::vector<std::uint64_t> frontier_degree_prefix(const DistGraph& g, Dir dir,
                                                  std::span<const lvid_t> q) {
  std::vector<std::uint64_t> p(q.size() + 1, 0);
  for (std::size_t i = 0; i < q.size(); ++i)
    p[i + 1] = p[i] + dir_degree(g, dir, q[i]);
  return p;
}

template <typename Status>
BfsResult bfs_impl(const DistGraph& g, Communicator& comm, gvid_t root,
                   const BfsOptions& opts, ThreadPool& tp) {
  const unsigned nt = tp.num_threads();
  const int p = comm.size();
  const int me = comm.rank();
  const Schedule sched = opts.common.schedule;

  Status status(g.n_total());
  const auto alive = [&](lvid_t u) {
    return opts.alive.empty() || opts.alive[u] != 0;
  };

  std::vector<lvid_t> q, q_next;
  if (g.owner_of_global(root) == me) {
    const lvid_t l = g.local_id_checked(root);
    if (alive(l)) {
      status.store(l, kQueued);
      q.push_back(l);
    }
  }

  std::int64_t level = 0;
  std::uint64_t global_size = comm.allreduce_sum<std::uint64_t>(q.size());
  int num_levels = 0;

  // Per-thread scratch, reused across levels.
  struct ThreadScratch {
    std::vector<lvid_t> next;  // local vertices for the next frontier
    std::vector<lvid_t> send;  // ghost local-ids to route to owners
    std::vector<std::uint64_t> send_counts;
  };
  std::vector<ThreadScratch> scratch(nt);
  for (auto& s : scratch) s.send_counts.assign(p, 0);

  engine::RoundTrace ltrace(opts.common.trace, comm, "bfs", &tp, sched);
  while (global_size != 0) {
    ++num_levels;
    const std::uint64_t processed = global_size;
    ltrace.begin();

    // ---- Expansion: pop the frontier, stamp levels, claim neighbours.
    // Level stamps and frontier membership are claim-order independent, so
    // any chunking of the frontier produces identical level[] outputs; the
    // edge-balanced grid weighs chunks by frontier degree (rebuilt per
    // level — the frontier changes every level).  ----
    const auto expand_span = [&](unsigned tid, std::uint64_t lo,
                                 std::uint64_t hi) {
      ThreadScratch& s = scratch[tid];
      for (std::uint64_t i = lo; i < hi; ++i) {
        const lvid_t v = q[i];
        // Claim the pop (duplicates can reach the queue via receives).
        if (!status.pop_claim(v, level)) continue;

        const auto explore = [&](lvid_t u) {
          if (g.is_ghost(u)) {
            if (status.claim(u)) {
              s.send.push_back(u);
              ++s.send_counts[g.owner_of(u)];
            }
          } else if (alive(u) && status.claim(u)) {
            s.next.push_back(u);
          }
        };
        if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.out_neighbors(v)) explore(u);
        if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.in_neighbors(v)) explore(u);
      }
    };
    if (sched == Schedule::kStatic) {
      tp.for_range(0, q.size(), expand_span);
    } else {
      std::vector<std::uint64_t> fprefix;
      if (sched == Schedule::kEdgeBalanced)
        fprefix = frontier_degree_prefix(g, opts.dir, q);
      const ChunkGrid grid =
          make_grid(sched, q.size(), fprefix, tp.num_threads());
      tp.for_ranges(grid, sched, expand_span);
    }

    // ---- Build the send queue (Algorithm 2 lines 26-31). ----
    std::vector<std::uint64_t> send_counts(p, 0);
    for (unsigned t = 0; t < nt; ++t)
      for (int r = 0; r < p; ++r) send_counts[r] += scratch[t].send_counts[r];

    MultiQueue<gvid_t> sendq(send_counts);
    tp.run([&](unsigned tid) {
      ThreadScratch& s = scratch[tid];
      MultiQueue<gvid_t>::Sink sink(sendq, opts.common.qsize);
      for (const lvid_t u : s.send)
        sink.push(static_cast<std::uint32_t>(g.owner_of(u)), g.global_id(u));
      s.send.clear();
      std::fill(s.send_counts.begin(), s.send_counts.end(), 0);
    });
    HG_DCHECK(sendq.complete());

    const std::vector<gvid_t> recv =
        comm.alltoallv<gvid_t>(sendq.buffer(), send_counts);

    // ---- Assemble next frontier: local claims + received vertices. ----
    q_next.clear();
    for (unsigned t = 0; t < nt; ++t) {
      q_next.insert(q_next.end(), scratch[t].next.begin(),
                    scratch[t].next.end());
      scratch[t].next.clear();
    }
    for (const gvid_t gid : recv) {
      const lvid_t l = g.local_id_checked(gid);
      HG_DCHECK(!g.is_ghost(l));
      if (alive(l) && status.claim(l)) q_next.push_back(l);
    }

    std::swap(q, q_next);
    global_size = comm.allreduce_sum<std::uint64_t>(q.size());
    ltrace.end(static_cast<std::uint64_t>(level), processed, global_size,
               "queue");
    ++level;
  }

  // ---- Collect results. ----
  BfsResult res;
  res.num_levels = num_levels;
  res.level.resize(g.n_loc());
  std::uint64_t visited_local = 0;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    res.level[v] = status.load(v);
    if (res.level[v] >= 0) ++visited_local;
  }
  res.visited = comm.allreduce_sum<std::uint64_t>(visited_local);
  return res;
}

/// Direction-optimizing traversal: hybrid top-down / bottom-up schedule.
/// Statuses are stamped with the level at frontier *insertion* time (both
/// modes), so the two schedules interleave freely and produce levels
/// identical to the reference traversal.
template <typename Status>
BfsResult bfs_diropt_impl(const DistGraph& g, Communicator& comm, gvid_t root,
                          const BfsOptions& opts, ThreadPool& tp) {
  const int p = comm.size();
  const int me = comm.rank();
  const Schedule sched = opts.common.schedule;

  // Frontier-flag propagation for bottom-up levels reuses the retained-
  // queue machinery; the adjacency mode mirrors the traversal direction
  // (a vertex's flag must reach every rank scanning it as a parent).
  const dgraph::Adjacency adj =
      opts.dir == Dir::kOut   ? dgraph::Adjacency::kOut
      : opts.dir == Dir::kIn  ? dgraph::Adjacency::kIn
                              : dgraph::Adjacency::kBoth;
  dgraph::GhostExchange gx(g, comm, adj, opts.common.pool);
  gx.set_schedule(sched);

  Status status(g.n_total());
  const auto alive = [&](lvid_t u) {
    return opts.alive.empty() || opts.alive[u] != 0;
  };

  std::vector<lvid_t> q, q_next;
  if (g.owner_of_global(root) == me) {
    const lvid_t l = g.local_id_checked(root);
    if (alive(l)) {
      status.store(l, 0);
      q.push_back(l);
    }
  }

  std::vector<std::uint8_t> flags(g.n_total(), 0);
  std::int64_t level = 0;
  std::uint64_t global_size = comm.allreduce_sum<std::uint64_t>(q.size());
  int num_levels = 0;
  bool bottom_up = false;
  std::vector<std::uint64_t> tedges(tp.num_threads());
  ChunkGrid bu_grid;  // bottom-up parent-scan grid (built on first use)

  engine::RoundTrace ltrace(opts.common.trace, comm, "bfs", &tp, sched);
  while (global_size != 0) {
    ++num_levels;
    const std::uint64_t processed = global_size;
    ltrace.begin();

    // ---- Mode decision (Beamer heuristics, collective). ----
    // Accumulate (not assign): a thread may run several chunks under the
    // non-static schedules.
    std::fill(tedges.begin(), tedges.end(), 0);
    tp.for_range(0, q.size(), sched,
                 [&](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
                   std::uint64_t sum = 0;
                   for (std::uint64_t i = lo; i < hi; ++i)
                     sum += dir_degree(g, opts.dir, q[i]);
                   tedges[tid] += sum;
                 });
    std::uint64_t frontier_edges_local = 0;
    for (const std::uint64_t e : tedges) frontier_edges_local += e;
    const std::uint64_t frontier_edges =
        comm.allreduce_sum<std::uint64_t>(frontier_edges_local);
    if (!bottom_up) {
      bottom_up = static_cast<double>(frontier_edges) >
                  static_cast<double>(g.m_global()) / opts.alpha;
    } else {
      bottom_up = static_cast<double>(global_size) >=
                  static_cast<double>(g.n_global()) / opts.beta;
    }

    q_next.clear();
    if (bottom_up) {
      // ---- Bottom-up: publish frontier flags, unvisited vertices look
      // for a flagged parent. ----
      tp.for_range(0, flags.size(), sched,
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     std::fill(flags.begin() + static_cast<std::ptrdiff_t>(lo),
                               flags.begin() + static_cast<std::ptrdiff_t>(hi),
                               std::uint8_t{0});
                   });
      tp.for_range(0, q.size(), sched,  // frontier is distinct: no races
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     for (std::uint64_t i = lo; i < hi; ++i) flags[q[i]] = 1;
                   });
      gx.exchange<std::uint8_t>(flags, comm);

      // Parent scan: each vertex touches only its own status slot and reads
      // the (fixed) flags array, so the scan chunks freely.  Per-chunk
      // accept lists concatenated in chunk order reproduce the serial
      // ascending-vertex q_next exactly — the traversal is bit-identical
      // across schedules and thread counts.
      const auto scan_one = [&](lvid_t v) {
        if (status.load(v) != kUnvisited || !alive(v)) return false;
        // Parents sit in the *reverse* adjacency of the traversal.
        if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth) {
          for (const lvid_t u : g.in_neighbors(v))
            if (flags[u]) return true;
        }
        if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth) {
          for (const lvid_t u : g.out_neighbors(v))
            if (flags[u]) return true;
        }
        return false;
      };
      if (sched == Schedule::kStatic) {
        // Serial reference scan (the hybrid schedule's legacy path).
        for (lvid_t v = 0; v < g.n_loc(); ++v) {
          if (scan_one(v)) {
            status.store(v, level + 1);
            q_next.push_back(v);
          }
        }
      } else {
        if (bu_grid.empty() && g.n_loc() > 0) {
          // Scan cost is bounded by reverse-adjacency degree.
          const std::vector<std::uint64_t> rev =
              opts.dir == Dir::kBoth ? both_degree_prefix(g)
              : opts.dir == Dir::kOut
                  ? std::vector<std::uint64_t>(g.in_index().begin(),
                                               g.in_index().end())
                  : std::vector<std::uint64_t>(g.out_index().begin(),
                                               g.out_index().end());
          bu_grid = make_grid(sched, g.n_loc(), rev, tp.num_threads());
        }
        std::vector<std::vector<lvid_t>> accepted(bu_grid.size());
        tp.for_chunks(bu_grid, sched,
                      [&](unsigned, std::uint64_t c, const Chunk& ck) {
                        for (std::uint64_t v = ck.begin; v < ck.end; ++v) {
                          if (!scan_one(static_cast<lvid_t>(v))) continue;
                          status.store(v, level + 1);
                          accepted[c].push_back(static_cast<lvid_t>(v));
                        }
                      });
        for (const std::vector<lvid_t>& list : accepted)
          q_next.insert(q_next.end(), list.begin(), list.end());
      }
    } else {
      // ---- Top-down: as Algorithm 2, stamping at insertion. ----
      std::vector<lvid_t> send;
      std::vector<std::uint64_t> send_counts(p, 0);
      for (const lvid_t v : q) {
        const auto explore = [&](lvid_t u) {
          if (g.is_ghost(u)) {
            if (status.claim(u)) {  // each ghost sent at most once per task
              send.push_back(u);
              ++send_counts[g.owner_of(u)];
            }
          } else if (alive(u) && status.load(u) == kUnvisited) {
            status.store(u, level + 1);
            q_next.push_back(u);
          }
        };
        if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.out_neighbors(v)) explore(u);
        if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
          for (const lvid_t u : g.in_neighbors(v)) explore(u);
      }

      MultiQueue<gvid_t> sendq(send_counts);
      {
        typename MultiQueue<gvid_t>::Sink sink(sendq, opts.common.qsize);
        for (const lvid_t u : send)
          sink.push(static_cast<std::uint32_t>(g.owner_of(u)),
                    g.global_id(u));
      }
      const std::vector<gvid_t> recv =
          comm.alltoallv<gvid_t>(sendq.buffer(), send_counts);
      for (const gvid_t gid : recv) {
        const lvid_t l = g.local_id_checked(gid);
        if (alive(l) && status.load(l) == kUnvisited) {
          status.store(l, level + 1);
          q_next.push_back(l);
        }
      }
    }

    std::swap(q, q_next);
    global_size = comm.allreduce_sum<std::uint64_t>(q.size());
    ltrace.end(static_cast<std::uint64_t>(level), processed, global_size,
               bottom_up ? "dense" : "queue");
    ++level;
  }

  BfsResult res;
  res.num_levels = num_levels;
  res.level.resize(g.n_loc());
  std::uint64_t visited_local = 0;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    res.level[v] = status.load(v);
    if (res.level[v] >= 0) ++visited_local;
  }
  res.visited = comm.allreduce_sum<std::uint64_t>(visited_local);
  return res;
}

}  // namespace

BfsResult bfs(const DistGraph& g, Communicator& comm, gvid_t root,
              const BfsOptions& opts) {
  HG_CHECK(root < g.n_global());
  HG_CHECK(opts.alive.empty() || opts.alive.size() >= g.n_loc());

  ScopedPool pf(opts.common);
  ThreadPool& tp = pf.get();
  if (opts.direction_optimizing) {
    // The hybrid schedule expands top-down frontiers sequentially within a
    // rank; the pooled loops (flag fills, degree sums, and the bottom-up
    // parent scan under non-static schedules) each touch disjoint per-vertex
    // slots, so the plain status policy suffices.
    return bfs_diropt_impl<PlainStatus>(g, comm, root, opts, tp);
  }
  if (tp.num_threads() == 1)
    return bfs_impl<PlainStatus>(g, comm, root, opts, tp);
  return bfs_impl<AtomicStatus>(g, comm, root, opts, tp);
}

}  // namespace hpcgraph::analytics
