#pragma once
/// \file wcc.hpp
/// Weakly connected components via the distributed Multistep algorithm
/// (Slota, Rajamanickam, Madduri, IPDPS'14 — the paper's [31]), the source
/// of the paper's WCC speedups over single-stage approaches:
///
///   1. **BFS step** (BFS-like class): one undirected BFS from the
///      highest-degree vertex sweeps up the giant component in a few
///      synchronous levels.
///   2. **Coloring step** (PageRank-like class): HashMin label propagation
///      over the leftover vertices until no color changes globally.
///
/// Labels are canonical: every component is named by the smallest global
/// vertex id it contains (the giant's BFS-root label is remapped at the
/// end), so results are directly comparable to the sequential reference.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

struct WccOptions {
  CommonOptions common;
};

struct WccResult {
  /// Per local vertex: component label = min global id in the component.
  std::vector<gvid_t> comp;
  gvid_t largest_label = kNullGvid;
  std::uint64_t largest_size = 0;
  int bfs_levels = 0;       ///< step-1 frontier expansions
  int coloring_iters = 0;   ///< step-2 iterations to convergence
};

/// Collective.
WccResult wcc(const dgraph::DistGraph& g, parcomm::Communicator& comm,
              const WccOptions& opts = {});

/// Collective helper: the global vertex with the maximum total degree
/// (ties to the smallest id) — the Multistep BFS root and the paper's
/// harmonic-centrality pivot family.
gvid_t max_degree_vertex(const dgraph::DistGraph& g,
                         parcomm::Communicator& comm);

}  // namespace hpcgraph::analytics
