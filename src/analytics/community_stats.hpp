#pragma once
/// \file community_stats.hpp
/// Community audit for Label Propagation output — the machinery behind
/// Table V (top communities with member/intra-edge/cut-edge counts and a
/// representative vertex) and Figure 5 (community size distribution).
///
/// Each rank classifies its local out-edges as intra- or inter-community
/// (ghost labels refreshed with one retained-queue exchange), aggregates
/// partial (label, n, m_in, m_cut, min-member) records, and routes each
/// record to owner(label) with one Alltoallv, where totals are finalized.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"
#include "util/histogram.hpp"

namespace hpcgraph::analytics {

/// Aggregate statistics of one community (Table V row).
struct CommunityRecord {
  std::uint64_t label = 0;        ///< community label (a global vertex id)
  std::uint64_t n_in = 0;         ///< member count
  std::uint64_t m_in = 0;         ///< intra-community directed edges
  std::uint64_t m_cut = 0;        ///< directed edges leaving the community
  gvid_t representative = kNullGvid;  ///< smallest member vertex id
};

struct CommunityStatsOptions {
  std::size_t top_k = 10;  ///< how many largest communities to report
  CommonOptions common;
};

struct CommunityStatsResult {
  /// The top_k communities by member count, descending (replicated on all
  /// ranks).
  std::vector<CommunityRecord> top;
  /// log2 histogram of community sizes (Figure 5), replicated.
  Log2Histogram size_histogram;
  std::uint64_t num_communities = 0;
};

/// Collective.  `labels` is this rank's per-local-vertex community labels
/// (as returned by label_propagation).
CommunityStatsResult community_stats(const dgraph::DistGraph& g,
                                     parcomm::Communicator& comm,
                                     std::span<const std::uint64_t> labels,
                                     const CommunityStatsOptions& opts = {});

}  // namespace hpcgraph::analytics
