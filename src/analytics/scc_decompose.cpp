#include "analytics/scc_decompose.hpp"

#include <unordered_map>

#include "analytics/bfs.hpp"
#include "analytics/scc.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"
#include "engine/superstep.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

namespace {

/// Canonicalize per-vertex labels so each class is named by its minimum
/// member gid, and compute class statistics.  Labels are vertex gids, so
/// the vertex partition shards the label space; each rank reduces the
/// classes it owns and answers every requester in place (the reply reuses
/// the request layout, so no requester bookkeeping is needed).
void canonicalize_and_count(const DistGraph& g, Communicator& comm,
                            std::vector<gvid_t>& comp,
                            SccDecomposeResult& res, std::size_t qsize) {
  struct Partial {
    gvid_t label;
    gvid_t min_member;
    std::uint64_t count;
  };

  // Local partials per label.
  std::unordered_map<gvid_t, Partial> partials;
  partials.reserve(g.n_loc() / 4 + 8);
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    auto [it, fresh] = partials.try_emplace(
        comp[v], Partial{comp[v], g.global_id(v), 0});
    it->second.min_member = std::min(it->second.min_member, g.global_id(v));
    ++it->second.count;
  }

  // Route to owner(label).
  std::vector<Partial> mine;
  mine.reserve(partials.size());
  for (const auto& [label, pr] : partials) mine.push_back(pr);
  std::vector<std::uint64_t> rcounts;
  const std::vector<Partial> recv = engine::route_to_owners<Partial>(
      comm, mine,
      [&](const Partial& pr) { return g.owner_of_global(pr.label); }, qsize,
      &rcounts);

  // Owner-side reduction.
  std::unordered_map<gvid_t, Partial> owned;
  owned.reserve(recv.size());
  for (const Partial& r : recv) {
    auto [it, fresh] = owned.try_emplace(r.label, r);
    if (!fresh) {
      it->second.min_member = std::min(it->second.min_member, r.min_member);
      it->second.count += r.count;
    }
  }

  // Global statistics.
  res.num_sccs = comm.allreduce_sum<std::uint64_t>(owned.size());
  struct Best {
    std::uint64_t size = 0;
    gvid_t label = kNullGvid;
  };
  Best best;
  for (const auto& [label, pr] : owned)
    if (pr.count > best.size ||
        (pr.count == best.size && pr.min_member < best.label))
      best = {pr.count, pr.min_member};
  best = comm.allreduce(best, [](Best a, Best b) {
    if (a.size != b.size) return a.size > b.size ? a : b;
    return a.label <= b.label ? a : b;
  });
  res.largest_size = best.size;
  res.largest_label = best.label;

  // Reply with the reduced min per request record, reusing the layout.
  std::vector<Partial> reply(recv.size());
  for (std::size_t i = 0; i < recv.size(); ++i)
    reply[i] = owned.at(recv[i].label);
  const std::vector<Partial> answers =
      comm.alltoallv<Partial>(reply, rcounts);

  std::unordered_map<gvid_t, gvid_t> canon;
  canon.reserve(answers.size());
  for (const Partial& a : answers) canon[a.label] = a.min_member;
  for (lvid_t v = 0; v < g.n_loc(); ++v) comp[v] = canon.at(comp[v]);
}

/// FrontierKernel: one backward-collection sweep of Orzan coloring.  From
/// each color root, in-edges are followed within the color class; every
/// vertex reached joins the root's SCC.  Remote visits carry (gid, color)
/// and route through engine::route_to_owners.  Assignments are
/// order-independent (each alive vertex has exactly one color per round),
/// so the hybrid policy may freely switch representation.
struct CollectKernel {
  const DistGraph& g;
  std::span<const gvid_t> color;
  std::vector<std::uint8_t>& alive;
  std::vector<gvid_t>& comp;
  std::uint64_t& assigned_local;
  std::size_t qsize;
  engine::DistFrontier cur, next;

  CollectKernel(const DistGraph& g_, std::span<const gvid_t> c,
                std::vector<std::uint8_t>& a, std::vector<gvid_t>& cp,
                std::uint64_t& asg, std::size_t qs)
      : g(g_), color(c), alive(a), comp(cp), assigned_local(asg), qsize(qs),
        cur(g_.n_loc()), next(g_.n_loc()) {}

  engine::DistFrontier* frontier() { return &cur; }

  std::uint64_t active_local() const { return cur.size(); }

  void step(engine::FrontierStepContext& ctx) {
    ctx.touched_local = cur.size();

    struct Visit {
      gvid_t gid;
      gvid_t color;
    };
    std::vector<Visit> remote;
    next.clear();
    const auto collect = [&](lvid_t u, gvid_t c) {
      comp[u] = c - 1;
      alive[u] = 0;
      ++assigned_local;
      next.push(u);
      ctx.degree_local += g.in_degree(u);
    };
    cur.for_each([&](lvid_t v) {
      const gvid_t my_color = color[v];
      for (const lvid_t u : g.in_neighbors(v)) {
        if (g.is_ghost(u)) {
          if (color[u] == my_color)  // cheap filter; owner re-checks
            remote.push_back({g.global_id(u), my_color});
        } else if (alive[u] && color[u] == my_color) {
          collect(u, my_color);
        }
      }
    });
    const std::vector<Visit> recv = engine::route_to_owners<Visit>(
        ctx.comm, remote,
        [&](const Visit& m) { return g.owner_of_global(m.gid); }, qsize);
    for (const Visit& m : recv) {
      const lvid_t l = g.local_id_checked(m.gid);
      if (alive[l] && color[l] == m.color) collect(l, m.color);
    }
    cur.swap(next);
  }
};

}  // namespace

SccDecomposeResult scc_decompose(const DistGraph& g, Communicator& comm,
                                 const SccDecomposeOptions& opts) {
  SccDecomposeResult res;
  res.comp.assign(g.n_loc(), kNullGvid);
  std::vector<std::uint8_t> alive(g.n_loc(), 1);

  // ---- Phase 1: trim singleton SCCs. ----
  const std::uint64_t trimmed_local =
      detail::trim_trivial_sccs(g, comm, alive, opts.common.qsize, nullptr);
  res.trimmed = comm.allreduce_sum(trimmed_local);
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    if (!alive[v]) res.comp[v] = g.global_id(v);

  // ---- Phase 2: FW-BW peels the giant SCC of the remainder. ----
  std::uint64_t alive_global =
      comm.allreduce_sum<std::uint64_t>(g.n_loc() - trimmed_local);
  if (alive_global > 0) {
    struct Pivot {
      std::uint64_t score = 0;
      gvid_t gid = kNullGvid;
    };
    Pivot best;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (!alive[v]) continue;
      const Pivot cand{(g.out_degree(v) + 1) * (g.in_degree(v) + 1),
                       g.global_id(v)};
      if (cand.score > best.score ||
          (cand.score == best.score && cand.gid < best.gid))
        best = cand;
    }
    best = comm.allreduce(best, [](Pivot a, Pivot b) {
      if (a.score != b.score) return a.score > b.score ? a : b;
      return a.gid <= b.gid ? a : b;
    });

    BfsOptions fw_opts;
    fw_opts.dir = Dir::kOut;
    fw_opts.alive = alive;
    fw_opts.common = opts.common;
    const BfsResult fw = bfs(g, comm, best.gid, fw_opts);
    BfsOptions bw_opts = fw_opts;
    bw_opts.dir = Dir::kIn;
    const BfsResult bw = bfs(g, comm, best.gid, bw_opts);

    gvid_t label_local = kNullGvid;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (fw.level[v] >= 0 && bw.level[v] >= 0)
        label_local = std::min(label_local, g.global_id(v));
    const gvid_t giant_label = comm.allreduce_min(label_local);
    std::uint64_t removed = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (fw.level[v] >= 0 && bw.level[v] >= 0) {
        res.comp[v] = giant_label;
        alive[v] = 0;
        ++removed;
      }
    alive_global -= comm.allreduce_sum(removed);
  }

  // ---- Phase 3: Orzan coloring rounds on the leftovers. ----
  // Colors are shifted gids (gid+1); dead vertices hold 0, so forward max
  // propagation ignores them without needing ghost aliveness flags.
  GhostExchange gx(g, comm, Adjacency::kBoth, opts.common.pool);
  std::vector<gvid_t> color(g.n_total(), 0);

  while (alive_global > 0) {
    ++res.coloring_rounds;

    // (a) Forward max coloring to a fixpoint.
    for (lvid_t l = 0; l < g.n_total(); ++l) color[l] = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (alive[v]) color[v] = g.global_id(v) + 1;
    gx.exchange<gvid_t>(color, comm);
    bool changed = true;
    while (changed) {
      bool changed_local = false;
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        if (!alive[v]) continue;
        gvid_t m = color[v];
        for (const lvid_t u : g.in_neighbors(v)) m = std::max(m, color[u]);
        if (m > color[v]) {
          color[v] = m;
          changed_local = true;
        }
      }
      gx.exchange<gvid_t>(color, comm);
      changed = comm.allreduce_lor(changed_local);
    }

    // (b) Backward collection: from each color root, sweep in-edges within
    // the color class; every vertex reached is in the root's SCC.  One
    // engine run per coloring round — the frontier layer owns the
    // queue -> Alltoallv -> scatter cycle.
    std::uint64_t assigned_local = 0;
    CollectKernel kernel(g, color, alive, res.comp, assigned_local,
                         opts.common.qsize);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (alive[v] && color[v] == g.global_id(v) + 1) {
        res.comp[v] = g.global_id(v);  // root labels its class (max member)
        alive[v] = 0;
        ++assigned_local;
        kernel.cur.push(v);
      }
    }
    engine::SuperstepEngine eng(g, comm, engine_config(opts.common, "scc"));
    eng.run_frontier(kernel);

    alive_global -= comm.allreduce_sum(assigned_local);
  }

  // ---- Canonicalize labels (min member per SCC) + statistics. ----
  canonicalize_and_count(g, comm, res.comp, res, opts.common.qsize);
  return res;
}

}  // namespace hpcgraph::analytics
