#include "analytics/scc_decompose.hpp"

#include <unordered_map>

#include "analytics/bfs.hpp"
#include "analytics/scc.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

namespace {

/// Canonicalize per-vertex labels so each class is named by its minimum
/// member gid, and compute class statistics.  Labels are vertex gids, so
/// the vertex partition shards the label space; each rank reduces the
/// classes it owns and answers every requester in place (the reply reuses
/// the request layout, so no requester bookkeeping is needed).
void canonicalize_and_count(const DistGraph& g, Communicator& comm,
                            std::vector<gvid_t>& comp,
                            SccDecomposeResult& res, std::size_t qsize) {
  struct Partial {
    gvid_t label;
    gvid_t min_member;
    std::uint64_t count;
  };
  const int p = comm.size();

  // Local partials per label.
  std::unordered_map<gvid_t, Partial> partials;
  partials.reserve(g.n_loc() / 4 + 8);
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    auto [it, fresh] = partials.try_emplace(
        comp[v], Partial{comp[v], g.global_id(v), 0});
    it->second.min_member = std::min(it->second.min_member, g.global_id(v));
    ++it->second.count;
  }

  // Route to owner(label).
  std::vector<std::uint64_t> counts(p, 0);
  for (const auto& [label, pr] : partials)
    ++counts[g.owner_of_global(label)];
  MultiQueue<Partial> q(counts);
  {
    MultiQueue<Partial>::Sink sink(q, qsize);
    for (const auto& [label, pr] : partials)
      sink.push(static_cast<std::uint32_t>(g.owner_of_global(label)), pr);
  }
  std::vector<std::uint64_t> rcounts;
  const std::vector<Partial> recv =
      comm.alltoallv<Partial>(q.buffer(), counts, &rcounts);

  // Owner-side reduction.
  std::unordered_map<gvid_t, Partial> owned;
  owned.reserve(recv.size());
  for (const Partial& r : recv) {
    auto [it, fresh] = owned.try_emplace(r.label, r);
    if (!fresh) {
      it->second.min_member = std::min(it->second.min_member, r.min_member);
      it->second.count += r.count;
    }
  }

  // Global statistics.
  res.num_sccs = comm.allreduce_sum<std::uint64_t>(owned.size());
  struct Best {
    std::uint64_t size = 0;
    gvid_t label = kNullGvid;
  };
  Best best;
  for (const auto& [label, pr] : owned)
    if (pr.count > best.size ||
        (pr.count == best.size && pr.min_member < best.label))
      best = {pr.count, pr.min_member};
  best = comm.allreduce(best, [](Best a, Best b) {
    if (a.size != b.size) return a.size > b.size ? a : b;
    return a.label <= b.label ? a : b;
  });
  res.largest_size = best.size;
  res.largest_label = best.label;

  // Reply with the reduced min per request record, reusing the layout.
  std::vector<Partial> reply(recv.size());
  for (std::size_t i = 0; i < recv.size(); ++i)
    reply[i] = owned.at(recv[i].label);
  const std::vector<Partial> answers =
      comm.alltoallv<Partial>(reply, rcounts);

  std::unordered_map<gvid_t, gvid_t> canon;
  canon.reserve(answers.size());
  for (const Partial& a : answers) canon[a.label] = a.min_member;
  for (lvid_t v = 0; v < g.n_loc(); ++v) comp[v] = canon.at(comp[v]);
}

}  // namespace

SccDecomposeResult scc_decompose(const DistGraph& g, Communicator& comm,
                                 const SccDecomposeOptions& opts) {
  const int p = comm.size();
  SccDecomposeResult res;
  res.comp.assign(g.n_loc(), kNullGvid);
  std::vector<std::uint8_t> alive(g.n_loc(), 1);

  // ---- Phase 1: trim singleton SCCs. ----
  const std::uint64_t trimmed_local =
      detail::trim_trivial_sccs(g, comm, alive, opts.common.qsize, nullptr);
  res.trimmed = comm.allreduce_sum(trimmed_local);
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    if (!alive[v]) res.comp[v] = g.global_id(v);

  // ---- Phase 2: FW-BW peels the giant SCC of the remainder. ----
  std::uint64_t alive_global =
      comm.allreduce_sum<std::uint64_t>(g.n_loc() - trimmed_local);
  if (alive_global > 0) {
    struct Pivot {
      std::uint64_t score = 0;
      gvid_t gid = kNullGvid;
    };
    Pivot best;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (!alive[v]) continue;
      const Pivot cand{(g.out_degree(v) + 1) * (g.in_degree(v) + 1),
                       g.global_id(v)};
      if (cand.score > best.score ||
          (cand.score == best.score && cand.gid < best.gid))
        best = cand;
    }
    best = comm.allreduce(best, [](Pivot a, Pivot b) {
      if (a.score != b.score) return a.score > b.score ? a : b;
      return a.gid <= b.gid ? a : b;
    });

    BfsOptions fw_opts;
    fw_opts.dir = Dir::kOut;
    fw_opts.alive = alive;
    fw_opts.common = opts.common;
    const BfsResult fw = bfs(g, comm, best.gid, fw_opts);
    BfsOptions bw_opts = fw_opts;
    bw_opts.dir = Dir::kIn;
    const BfsResult bw = bfs(g, comm, best.gid, bw_opts);

    gvid_t label_local = kNullGvid;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (fw.level[v] >= 0 && bw.level[v] >= 0)
        label_local = std::min(label_local, g.global_id(v));
    const gvid_t giant_label = comm.allreduce_min(label_local);
    std::uint64_t removed = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (fw.level[v] >= 0 && bw.level[v] >= 0) {
        res.comp[v] = giant_label;
        alive[v] = 0;
        ++removed;
      }
    alive_global -= comm.allreduce_sum(removed);
  }

  // ---- Phase 3: Orzan coloring rounds on the leftovers. ----
  // Colors are shifted gids (gid+1); dead vertices hold 0, so forward max
  // propagation ignores them without needing ghost aliveness flags.
  GhostExchange gx(g, comm, Adjacency::kBoth, opts.common.pool);
  std::vector<gvid_t> color(g.n_total(), 0);

  while (alive_global > 0) {
    ++res.coloring_rounds;

    // (a) Forward max coloring to a fixpoint.
    for (lvid_t l = 0; l < g.n_total(); ++l) color[l] = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (alive[v]) color[v] = g.global_id(v) + 1;
    gx.exchange<gvid_t>(color, comm);
    bool changed = true;
    while (changed) {
      bool changed_local = false;
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        if (!alive[v]) continue;
        gvid_t m = color[v];
        for (const lvid_t u : g.in_neighbors(v)) m = std::max(m, color[u]);
        if (m > color[v]) {
          color[v] = m;
          changed_local = true;
        }
      }
      gx.exchange<gvid_t>(color, comm);
      changed = comm.allreduce_lor(changed_local);
    }

    // (b) Backward collection: from each color root, sweep in-edges within
    // the color class; every vertex reached is in the root's SCC.
    std::vector<lvid_t> frontier, frontier_next;
    std::uint64_t assigned_local = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (alive[v] && color[v] == g.global_id(v) + 1) {
        res.comp[v] = g.global_id(v);  // root labels its class (max member)
        alive[v] = 0;
        ++assigned_local;
        frontier.push_back(v);
      }
    }

    struct Visit {
      gvid_t gid;
      gvid_t color;
    };
    for (;;) {
      std::vector<Visit> remote;
      frontier_next.clear();
      for (const lvid_t v : frontier) {
        const gvid_t my_color = color[v];
        for (const lvid_t u : g.in_neighbors(v)) {
          if (g.is_ghost(u)) {
            if (color[u] == my_color)  // cheap filter; owner re-checks
              remote.push_back({g.global_id(u), my_color});
          } else if (alive[u] && color[u] == my_color) {
            res.comp[u] = my_color - 1;
            alive[u] = 0;
            ++assigned_local;
            frontier_next.push_back(u);
          }
        }
      }
      std::vector<std::uint64_t> counts(p, 0);
      for (const Visit& m : remote) ++counts[g.owner_of_global(m.gid)];
      MultiQueue<Visit> q(counts);
      {
        MultiQueue<Visit>::Sink sink(q, opts.common.qsize);
        for (const Visit& m : remote)
          sink.push(static_cast<std::uint32_t>(g.owner_of_global(m.gid)), m);
      }
      const std::vector<Visit> recv =
          comm.alltoallv<Visit>(q.buffer(), counts);
      for (const Visit& m : recv) {
        const lvid_t l = g.local_id_checked(m.gid);
        if (alive[l] && color[l] == m.color) {
          res.comp[l] = m.color - 1;
          alive[l] = 0;
          ++assigned_local;
          frontier_next.push_back(l);
        }
      }
      std::swap(frontier, frontier_next);
      if (comm.allreduce_sum<std::uint64_t>(frontier.size()) == 0) break;
    }

    alive_global -= comm.allreduce_sum(assigned_local);
  }

  // ---- Canonicalize labels (min member per SCC) + statistics. ----
  canonicalize_and_count(g, comm, res.comp, res, opts.common.qsize);
  return res;
}

}  // namespace hpcgraph::analytics
