#include "analytics/kcore.hpp"

#include "analytics/bfs.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "engine/superstep.hpp"
#include "util/prefix_sum.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

namespace {

/// Shared peeling state for the approximate and exact k-core loops.
///
/// Cross-rank degree maintenance uses alive-flag mirroring instead of
/// routing one message per remote decrement: each sweep removes local
/// vertices below the limit, then a ghost exchange pushes the updated alive
/// flags (a one-byte value per vertex, so the adaptive sparse format kicks
/// in as soon as deaths get rare — which is most sweeps of most stages).
/// Receivers translate each *newly dead* ghost into degree decrements of the
/// local vertices incident to it via a ghost->locals incidence CSR built
/// once at setup, one entry per edge occurrence — exactly the multiplicity
/// the per-event scheme transmitted.  The peeling fixpoint is
/// order-independent, so results are identical.
///
/// The per-stage sweep-to-fixpoint loop itself runs on the SuperstepEngine
/// (one PeelKernel per stage borrows this state through the kernel's
/// `ghosts()` hook, so the exchange plan is built once for all stages).
struct Peeler {
  const DistGraph& g;
  GhostExchange gx;
  dgraph::GhostMode mode;
  std::vector<std::uint64_t> deg;       ///< remaining degree, locals only
  std::vector<std::uint8_t> alive;      ///< locals + ghost replicas
  std::vector<std::uint64_t> inc_offs;  ///< ghost -> incident locals (CSR)
  std::vector<lvid_t> inc_verts;
  std::vector<lvid_t> flipped;          ///< ghosts newly dead this sweep
  std::uint64_t alive_local;
  ChunkGrid scan_grid;                  ///< mark-scan grid (built lazily)

  Peeler(const DistGraph& g_, Communicator& comm, const CommonOptions& opts)
      : g(g_),
        gx(g_, comm, Adjacency::kBoth, opts.pool),
        mode(opts.ghost_mode),
        deg(g_.n_loc()),
        alive(g_.n_total(), 1),
        alive_local(g_.n_loc()) {
    const std::uint64_t n_loc = g.n_loc();
    const auto each_ghost = [&](lvid_t v, auto&& fn) {
      for (const lvid_t u : g.out_neighbors(v))
        if (g.is_ghost(u)) fn(u);
      for (const lvid_t u : g.in_neighbors(v))
        if (g.is_ghost(u)) fn(u);
    };
    std::vector<std::uint64_t> cnt(g.n_total() - n_loc, 0);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      deg[v] = g.out_degree(v) + g.in_degree(v);
      each_ghost(v, [&](lvid_t u) { ++cnt[u - n_loc]; });
    }
    inc_offs = csr_offsets(std::span<const std::uint64_t>(cnt));
    inc_verts.resize(inc_offs.back());
    std::vector<std::uint64_t> cur(inc_offs.begin(), inc_offs.end() - 1);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      each_ghost(v, [&](lvid_t u) { inc_verts[cur[u - n_loc]++] = v; });
  }

  /// Remove local vertices below the degree limit (marking them on the
  /// exchange plan); calls on_remove(v) per removal, returns the count.
  template <typename F>
  std::uint64_t remove_below(std::uint64_t limit, F&& on_remove) {
    std::uint64_t removed = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (!alive[v] || deg[v] >= limit) continue;
      alive[v] = 0;
      gx.mark_changed(v);
      on_remove(v);
      ++removed;
      --alive_local;
      const auto drop = [&](lvid_t u) {
        if (!g.is_ghost(u) && alive[u] && deg[u] > 0) --deg[u];
      };
      for (const lvid_t u : g.out_neighbors(v)) drop(u);
      for (const lvid_t u : g.in_neighbors(v)) drop(u);
    }
    return removed;
  }

  /// Schedule-aware variant of remove_below: a parallel read-only mark scan
  /// collects per-chunk candidate lists (alive vertices below the limit),
  /// then a serial apply in chunk order performs the removals and degree
  /// decrements.  Candidates are judged against the sweep-start degree
  /// snapshot, so the in-sweep cascade of the serial path (a removal
  /// dragging a later vertex below the limit within the same sweep) is
  /// deferred to the next sweep — possibly more sweeps to the same
  /// order-independent fixpoint, and bit-identical deg/alive/bound outputs.
  template <typename F>
  std::uint64_t remove_below_scheduled(std::uint64_t limit, F&& on_remove,
                                       ThreadPool& tp, Schedule sched) {
    // The scan is O(1) per vertex (no adjacency walk), so the grid is
    // uniform-weight; chunk geometry is a pure function of n_loc.
    if (scan_grid.empty() && g.n_loc() > 0)
      scan_grid = make_grid(sched, g.n_loc(), {}, tp.num_threads());
    std::vector<std::vector<lvid_t>> cand(scan_grid.size());
    tp.for_chunks(scan_grid, sched,
                  [&](unsigned, std::uint64_t c, const Chunk& ck) {
                    for (std::uint64_t v = ck.begin; v < ck.end; ++v)
                      if (alive[v] && deg[v] < limit)
                        cand[c].push_back(static_cast<lvid_t>(v));
                  });
    std::uint64_t removed = 0;
    for (const std::vector<lvid_t>& list : cand) {
      for (const lvid_t v : list) {
        alive[v] = 0;
        gx.mark_changed(v);
        on_remove(v);
        ++removed;
        --alive_local;
        const auto drop = [&](lvid_t u) {
          if (!g.is_ghost(u) && alive[u] && deg[u] > 0) --deg[u];
        };
        for (const lvid_t u : g.out_neighbors(v)) drop(u);
        for (const lvid_t u : g.in_neighbors(v)) drop(u);
      }
    }
    return removed;
  }

  /// Apply each newly dead ghost's incident edge occurrences as local
  /// degree decrements (post-exchange half of a sweep).
  void apply_flipped() {
    const std::uint64_t n_loc = g.n_loc();
    for (const lvid_t gl : flipped) {
      const std::uint64_t gi = gl - n_loc;
      for (std::uint64_t e = inc_offs[gi]; e < inc_offs[gi + 1]; ++e) {
        const lvid_t u = inc_verts[e];
        if (alive[u] && deg[u] > 0) --deg[u];
      }
    }
  }

  /// Alive mask restricted to local vertices (the BFS option view).
  std::span<const std::uint8_t> local_alive() const {
    return {alive.data(), static_cast<std::size_t>(g.n_loc())};
  }
};

/// ValueKernel: peel one stage (fixed degree limit) to its fixpoint.  The
/// exchanged value is the alive flag; the engine's changed_ghosts output
/// (newly dead replicas) drives the incidence-CSR degree decrements in the
/// apply hook.  A stage converges on the first sweep that removes nothing
/// anywhere — the engine's fused allreduce of the removal count replaces
/// the old per-sweep allreduce_sum.
template <typename F>
struct PeelKernel {
  using Value = std::uint8_t;
  // Schedule-aware: non-static schedules run the two-phase mark/apply sweep
  // (parallel candidate scan, serial chunk-order apply).  The peeling
  // fixpoint is order-independent, so bound[]/core[] are bit-identical;
  // only the unpinned per-stage sweep count may differ.
  static constexpr bool kScheduleAware = true;

  Peeler& p;
  std::uint64_t limit;
  F on_remove;
  std::uint64_t removed_total = 0;  ///< global removals over the stage

  GhostExchange* ghosts() { return &p.gx; }
  dgraph::GhostMode ghost_mode() const { return p.mode; }
  std::span<std::uint8_t> values() { return {p.alive}; }
  std::vector<lvid_t>* changed_ghosts() { return &p.flipped; }

  void compute(engine::StepContext& ctx) {
    if (ctx.schedule == Schedule::kStatic)
      ctx.active_local = p.remove_below(limit, on_remove);
    else
      ctx.active_local = p.remove_below_scheduled(limit, on_remove, ctx.pool,
                                                  ctx.schedule);
    ctx.touched_local = p.g.n_loc();
  }

  void apply(engine::StepContext&) { p.apply_flipped(); }

  bool converged(std::uint64_t active_global, double) {
    removed_total += active_global;
    return active_global == 0;
  }
};

/// Run one peel stage on the engine; returns (sweeps, global removals).
template <typename F>
std::pair<std::uint64_t, std::uint64_t> peel_stage(
    Peeler& peel, Communicator& comm, const CommonOptions& opts,
    std::uint64_t limit, F&& on_remove) {
  PeelKernel<F> kernel{peel, limit, std::forward<F>(on_remove)};
  engine::SuperstepEngine eng(peel.g, comm, engine_config(opts, "kcore"));
  const engine::EngineResult er = eng.run_value(kernel);
  return {er.supersteps, kernel.removed_total};
}

}  // namespace

KCoreResult kcore_approx(const DistGraph& g, Communicator& comm,
                         const KCoreOptions& opts) {
  KCoreResult res;
  res.bound.assign(g.n_loc(), std::uint64_t{1} << opts.max_i);

  Peeler peel(g, comm, opts.common);

  for (unsigned i = 1; i <= opts.max_i; ++i) {
    const std::uint64_t threshold = std::uint64_t{1} << i;
    KCoreStage stage;
    stage.i = i;
    stage.threshold = threshold;

    // ---- Peel to the 2^i-core fixpoint. ----
    const auto [sweeps, removed] = peel_stage(
        peel, comm, opts.common, threshold,
        [&](lvid_t v) { res.bound[v] = threshold; });
    stage.peel_sweeps = static_cast<int>(sweeps);
    stage.removed = removed;

    stage.alive_after = comm.allreduce_sum(peel.alive_local);

    // ---- Largest surviving component: one alive-masked BFS from the
    // highest-degree survivor (the paper's per-stage BFS). ----
    if (opts.track_components && stage.alive_after > 0) {
      struct Cand {
        std::uint64_t deg = 0;
        gvid_t gid = kNullGvid;
      };
      Cand best;
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        if (!peel.alive[v]) continue;
        if (peel.deg[v] > best.deg ||
            (peel.deg[v] == best.deg && g.global_id(v) < best.gid))
          best = {peel.deg[v], g.global_id(v)};
      }
      best = comm.allreduce(best, [](Cand a, Cand b) {
        if (a.deg != b.deg) return a.deg > b.deg ? a : b;
        return a.gid <= b.gid ? a : b;
      });
      BfsOptions bopts;
      bopts.dir = Dir::kBoth;
      bopts.alive = peel.local_alive();
      bopts.common = opts.common;
      const BfsResult cc = bfs(g, comm, best.gid, bopts);
      stage.largest_cc = cc.visited;
    }

    res.stages.push_back(stage);
    if (stage.alive_after == 0) break;
  }
  return res;
}

KCoreExactResult kcore_exact(const DistGraph& g, Communicator& comm,
                             const CommonOptions& opts) {
  KCoreExactResult res;
  res.core.assign(g.n_loc(), 0);

  Peeler peel(g, comm, opts);

  std::uint64_t k = 0;
  while (comm.allreduce_sum(peel.alive_local) > 0) {
    ++k;
    ++res.stages;
    // Peel to the k-core fixpoint; every vertex removed here survived the
    // (k-1)-core, so its coreness is exactly k-1.
    peel_stage(peel, comm, opts, k, [&](lvid_t v) { res.core[v] = k - 1; });
  }

  std::uint64_t max_local = 0;
  for (const std::uint64_t c : res.core) max_local = std::max(max_local, c);
  res.max_core = comm.allreduce_max(max_local);
  return res;
}

}  // namespace hpcgraph::analytics
