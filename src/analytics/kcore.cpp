#include "analytics/kcore.hpp"

#include "analytics/bfs.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

KCoreResult kcore_approx(const DistGraph& g, Communicator& comm,
                         const KCoreOptions& opts) {
  const int p = comm.size();
  KCoreResult res;
  res.bound.assign(g.n_loc(), std::uint64_t{1} << opts.max_i);

  std::vector<std::uint64_t> deg(g.n_loc());
  std::vector<std::uint8_t> alive(g.n_loc(), 1);
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    deg[v] = g.out_degree(v) + g.in_degree(v);
  std::uint64_t alive_local = g.n_loc();

  std::vector<gvid_t> ghost_decrements;  // one entry per remote decrement

  for (unsigned i = 1; i <= opts.max_i; ++i) {
    const std::uint64_t threshold = std::uint64_t{1} << i;
    KCoreStage stage;
    stage.i = i;
    stage.threshold = threshold;

    // ---- Peel to the 2^i-core fixpoint. ----
    for (;;) {
      ++stage.peel_sweeps;
      std::uint64_t removed_sweep = 0;
      ghost_decrements.clear();
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        if (!alive[v] || deg[v] >= threshold) continue;
        alive[v] = 0;
        res.bound[v] = threshold;
        ++removed_sweep;
        --alive_local;
        const auto notify = [&](lvid_t u) {
          if (g.is_ghost(u)) {
            ghost_decrements.push_back(g.global_id(u));
          } else if (alive[u] && deg[u] > 0) {
            --deg[u];
          }
        };
        for (const lvid_t u : g.out_neighbors(v)) notify(u);
        for (const lvid_t u : g.in_neighbors(v)) notify(u);
      }

      // Route remote decrements to the owners (BFS-like exchange).
      std::vector<std::uint64_t> counts(p, 0);
      for (const gvid_t gid : ghost_decrements)
        ++counts[g.owner_of_global(gid)];
      MultiQueue<gvid_t> q(counts);
      {
        MultiQueue<gvid_t>::Sink sink(q, opts.common.qsize);
        for (const gvid_t gid : ghost_decrements)
          sink.push(static_cast<std::uint32_t>(g.owner_of_global(gid)), gid);
      }
      const std::vector<gvid_t> recv =
          comm.alltoallv<gvid_t>(q.buffer(), counts);
      for (const gvid_t gid : recv) {
        const lvid_t l = g.local_id_checked(gid);
        if (alive[l] && deg[l] > 0) --deg[l];
      }

      const std::uint64_t removed_global =
          comm.allreduce_sum(removed_sweep);
      stage.removed += removed_global;
      if (removed_global == 0) break;
    }

    stage.alive_after = comm.allreduce_sum(alive_local);

    // ---- Largest surviving component: one alive-masked BFS from the
    // highest-degree survivor (the paper's per-stage BFS). ----
    if (opts.track_components && stage.alive_after > 0) {
      struct Cand {
        std::uint64_t deg = 0;
        gvid_t gid = kNullGvid;
      };
      Cand best;
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        if (!alive[v]) continue;
        if (deg[v] > best.deg || (deg[v] == best.deg && g.global_id(v) < best.gid))
          best = {deg[v], g.global_id(v)};
      }
      best = comm.allreduce(best, [](Cand a, Cand b) {
        if (a.deg != b.deg) return a.deg > b.deg ? a : b;
        return a.gid <= b.gid ? a : b;
      });
      BfsOptions bopts;
      bopts.dir = Dir::kBoth;
      bopts.alive = alive;
      bopts.common = opts.common;
      const BfsResult cc = bfs(g, comm, best.gid, bopts);
      stage.largest_cc = cc.visited;
    }

    res.stages.push_back(stage);
    if (stage.alive_after == 0) break;
  }
  return res;
}

KCoreExactResult kcore_exact(const DistGraph& g, Communicator& comm,
                             const CommonOptions& opts) {
  const int p = comm.size();
  KCoreExactResult res;
  res.core.assign(g.n_loc(), 0);

  std::vector<std::uint64_t> deg(g.n_loc());
  std::vector<std::uint8_t> alive(g.n_loc(), 1);
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    deg[v] = g.out_degree(v) + g.in_degree(v);
  std::uint64_t alive_local = g.n_loc();
  std::vector<gvid_t> ghost_decrements;

  std::uint64_t k = 0;
  while (comm.allreduce_sum(alive_local) > 0) {
    ++k;
    ++res.stages;
    // Peel to the k-core fixpoint; every vertex removed here survived the
    // (k-1)-core, so its coreness is exactly k-1.
    for (;;) {
      std::uint64_t removed_sweep = 0;
      ghost_decrements.clear();
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        if (!alive[v] || deg[v] >= k) continue;
        alive[v] = 0;
        res.core[v] = k - 1;
        ++removed_sweep;
        --alive_local;
        const auto notify = [&](lvid_t u) {
          if (g.is_ghost(u)) {
            ghost_decrements.push_back(g.global_id(u));
          } else if (alive[u] && deg[u] > 0) {
            --deg[u];
          }
        };
        for (const lvid_t u : g.out_neighbors(v)) notify(u);
        for (const lvid_t u : g.in_neighbors(v)) notify(u);
      }

      std::vector<std::uint64_t> counts(p, 0);
      for (const gvid_t gid : ghost_decrements)
        ++counts[g.owner_of_global(gid)];
      MultiQueue<gvid_t> q(counts);
      {
        MultiQueue<gvid_t>::Sink sink(q, opts.qsize);
        for (const gvid_t gid : ghost_decrements)
          sink.push(static_cast<std::uint32_t>(g.owner_of_global(gid)), gid);
      }
      const std::vector<gvid_t> recv =
          comm.alltoallv<gvid_t>(q.buffer(), counts);
      for (const gvid_t gid : recv) {
        const lvid_t l = g.local_id_checked(gid);
        if (alive[l] && deg[l] > 0) --deg[l];
      }

      if (comm.allreduce_sum(removed_sweep) == 0) break;
    }
  }

  std::uint64_t max_local = 0;
  for (const std::uint64_t c : res.core) max_local = std::max(max_local, c);
  res.max_core = comm.allreduce_max(max_local);
  return res;
}

}  // namespace hpcgraph::analytics
