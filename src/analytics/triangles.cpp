#include "analytics/triangles.hpp"

#include <algorithm>

#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

namespace {

/// Deduplicated undirected neighbour gids of a local vertex (self excluded).
std::vector<gvid_t> dedup_neighbors(const DistGraph& g, lvid_t v) {
  std::vector<gvid_t> nbrs;
  nbrs.reserve(g.out_degree(v) + g.in_degree(v));
  for (const lvid_t u : g.out_neighbors(v)) nbrs.push_back(g.global_id(u));
  for (const lvid_t u : g.in_neighbors(v)) nbrs.push_back(g.global_id(u));
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  const gvid_t self = g.global_id(v);
  nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), self), nbrs.end());
  return nbrs;
}

}  // namespace

TriangleResult triangle_count(const DistGraph& g, Communicator& comm,
                              const TriangleOptions& opts) {
  TriangleResult res;

  // ---- Deduplicated undirected degrees, ghosts filled by exchange. ----
  std::vector<std::vector<gvid_t>> nbrs(g.n_loc());
  std::vector<std::uint64_t> deg(g.n_total(), 0);
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    nbrs[v] = dedup_neighbors(g, v);
    deg[v] = nbrs[v].size();
  }
  GhostExchange gx(g, comm, Adjacency::kBoth, opts.common.pool);
  gx.exchange<std::uint64_t>(deg, comm);

  // Total order for the orientation: (dedup degree, gid) ascending.
  const auto rank_lt = [&](gvid_t a_gid, std::uint64_t a_deg, gvid_t b_gid,
                           std::uint64_t b_deg) {
    if (a_deg != b_deg) return a_deg < b_deg;
    return a_gid < b_gid;
  };
  const auto deg_of = [&](gvid_t gid) {
    // Any neighbour of a local vertex is local or ghost, so the lookup
    // always resolves.
    return deg[g.local_id_checked(gid)];
  };

  // ---- Oriented adjacency N+(v): higher-ranked dedup neighbours,
  // sorted by gid for binary search. ----
  std::vector<std::vector<gvid_t>> oriented(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    const gvid_t vg = g.global_id(v);
    for (const gvid_t u : nbrs[v])
      if (rank_lt(vg, deg[v], u, deg_of(u))) oriented[v].push_back(u);
    // nbrs was gid-sorted, so oriented stays gid-sorted.
  }

  // ---- Wedge enumeration and closure checks. ----
  struct Wedge {
    gvid_t a;  // lower-ranked oriented endpoint: "is b in N+(a)?"
    gvid_t b;
  };
  const auto closes_locally = [&](gvid_t a, gvid_t b) {
    const lvid_t la = g.local_id_checked(a);
    HG_DCHECK(!g.is_ghost(la));
    const auto& adj = oriented[la];
    return std::binary_search(adj.begin(), adj.end(), b);
  };

  std::uint64_t local_triangles = 0;
  std::uint64_t wedges_local = 0;
  std::vector<Wedge> remote;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    const auto& adj = oriented[v];
    for (std::size_t i = 0; i < adj.size(); ++i) {
      for (std::size_t j = 0; j < adj.size(); ++j) {
        if (i == j) continue;
        const gvid_t x = adj[i], y = adj[j];
        // Orient the wedge pair too: query only with rank(x) < rank(y).
        if (!rank_lt(x, deg_of(x), y, deg_of(y))) continue;
        ++wedges_local;
        if (g.owner_of_global(x) == comm.rank()) {
          if (closes_locally(x, y)) ++local_triangles;
        } else {
          remote.push_back({x, y});
        }
      }
    }
  }

  const std::vector<Wedge> recv = engine::route_to_owners<Wedge>(
      comm, remote,
      [&](const Wedge& w) { return g.owner_of_global(w.a); },
      opts.common.qsize);
  for (const Wedge& w : recv)
    if (closes_locally(w.a, w.b)) ++local_triangles;

  res.triangles = comm.allreduce_sum(local_triangles);
  res.wedges_checked = comm.allreduce_sum(wedges_local);
  return res;
}

}  // namespace hpcgraph::analytics
