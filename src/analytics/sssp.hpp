#pragma once
/// \file sssp.hpp
/// Single-source shortest paths — part of the paper's third §VII
/// future-work direction ("We also plan to extend this collection of
/// analytics with other implementations").
///
/// The input format carries no weights, so edge weights are synthesized
/// deterministically from the endpoint ids (both the distributed code and
/// the sequential reference compute the same function).  The algorithm is a
/// frontier-driven distributed Bellman–Ford: each round relaxes the
/// out-edges of vertices whose distance improved, routing cross-rank
/// relaxations as (vertex, candidate distance) pairs through the
/// Algorithm-3 queues + Alltoallv — the BFS-like communication class with
/// re-activation.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

inline constexpr std::uint64_t kInfDistance = ~std::uint64_t{0};

/// Deterministic synthetic weight of edge (u, v), in [1, max_weight].
inline std::uint64_t edge_weight(gvid_t u, gvid_t v,
                                 std::uint64_t max_weight) {
  return 1 + splitmix64(u * 0x9ddfea08eb382d69ULL + v) % max_weight;
}

struct SsspOptions {
  std::uint64_t max_weight = 64;  ///< weights drawn from [1, max_weight]
  CommonOptions common;
};

struct SsspResult {
  /// Per local vertex: distance from the root, or kInfDistance.
  std::vector<std::uint64_t> dist;
  std::uint64_t reached = 0;  ///< vertices with finite distance (global)
  int rounds = 0;             ///< relaxation rounds until quiescence
};

/// Collective.  Shortest paths along out-edges from `root`.
SsspResult sssp(const dgraph::DistGraph& g, parcomm::Communicator& comm,
                gvid_t root, const SsspOptions& opts = {});

}  // namespace hpcgraph::analytics
