#pragma once
/// \file common.hpp
/// Shared pieces of the analytics layer: traversal direction, result
/// gathering helpers, and the per-analytic option baseline.

#include <cstdint>
#include <span>
#include <vector>

#include "dgraph/dist_graph.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "engine/superstep.hpp"
#include "engine/trace.hpp"
#include "parcomm/comm.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

/// Which adjacency lists a traversal follows.
enum class Dir {
  kOut,   ///< out-edges (directed forward)
  kIn,    ///< in-edges (directed backward)
  kBoth,  ///< undirected view
};

/// Options common to every analytic.
struct CommonOptions {
  /// Intra-rank worker pool (null = 1 thread).  Honoured by the loops with
  /// data-parallel structure: BFS, PageRank, Label Propagation, and the
  /// ghost-exchange setup.  The sweep-to-fixpoint analytics (k-core
  /// peeling, WCC/SCC coloring, SSSP relaxation) run their sweeps serially
  /// per rank — their in-place updates are what make them converge fast,
  /// and rank-level parallelism is the paper's primary axis.
  ThreadPool* pool = nullptr;
  std::size_t qsize = kDefaultQSize;  ///< Algorithm-3 thread-queue capacity
  /// Ghost-exchange wire format for the convergent analytics (Label
  /// Propagation, WCC coloring, k-core peeling).  kAdaptive switches to the
  /// sparse (slot, value) format once few boundary vertices still change
  /// per round; PageRank ignores this (every rank value changes every
  /// iteration, so dense is always cheapest).
  dgraph::GhostMode ghost_mode = dgraph::GhostMode::kAdaptive;
  /// Per-superstep telemetry sink, or null for no tracing.  Shared by all
  /// ranks; the engine pushes records from rank 0 only.  Engine-ported
  /// analytics emit one SuperstepRecord per round; BFS emits one per level
  /// through the same sink.
  engine::SuperstepTrace* trace = nullptr;
  /// Run overlap-safe engine kernels (PageRank, Label Propagation, WCC
  /// coloring) on the overlapped round schedule: boundary sweep, launch the
  /// split-phase ghost exchange, interior sweep while the payload is in
  /// flight, then finish.  Results are identical to the blocking schedule;
  /// must be set the same on every rank.
  bool overlap = false;
};

/// Engine knobs shared by the ported analytics: pool + trace from the
/// common options, a per-analytic label, and an optional iteration cutoff.
inline engine::EngineConfig engine_config(
    const CommonOptions& o, const char* name,
    std::uint64_t max_supersteps = UINT64_MAX) {
  engine::EngineConfig cfg;
  cfg.pool = o.pool;
  cfg.max_supersteps = max_supersteps;
  cfg.trace = o.trace;
  cfg.name = name;
  cfg.overlap = o.overlap;
  return cfg;
}

/// The pool-or-inline fallback every analytic needs: resolves the options'
/// pool pointer to a usable ThreadPool reference.
class ScopedPool : public PoolFallback {
 public:
  explicit ScopedPool(const CommonOptions& o) : PoolFallback(o.pool) {}
};

/// Collective: gather a per-local-vertex array into a full n_global-length
/// array, replicated on every rank (test/report helper — not for use at
/// paper scale, where no single task can hold an n_global array).
template <typename T>
std::vector<T> gather_global(const dgraph::DistGraph& g,
                             parcomm::Communicator& comm,
                             std::span<const T> local_vals) {
  HG_CHECK(local_vals.size() == g.n_loc());
  struct Pair {
    gvid_t gid;
    T val;
  };
  std::vector<Pair> mine(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    mine[v] = {g.global_id(v), local_vals[v]};
  const std::vector<Pair> all = comm.allgatherv<Pair>(mine);
  std::vector<T> out(g.n_global());
  for (const Pair& p : all) out[p.gid] = p.val;
  return out;
}

}  // namespace hpcgraph::analytics
