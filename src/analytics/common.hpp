#pragma once
/// \file common.hpp
/// Shared pieces of the analytics layer: traversal direction, result
/// gathering helpers, and the per-analytic option baseline.

#include <cstdint>
#include <span>
#include <vector>

#include "dgraph/dist_graph.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"
#include "engine/superstep.hpp"
#include "engine/trace.hpp"
#include "parcomm/comm.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

/// Which adjacency lists a traversal follows.
enum class Dir {
  kOut,   ///< out-edges (directed forward)
  kIn,    ///< in-edges (directed backward)
  kBoth,  ///< undirected view
};

/// Options common to every analytic.
struct CommonOptions {
  /// Intra-rank worker pool (null = pool of HPCGRAPH_POOL_THREADS, default
  /// 1 thread).  Honoured by the loops with data-parallel structure: BFS,
  /// PageRank, Label Propagation, and the ghost-exchange setup.  Of the
  /// sweep-to-fixpoint analytics, WCC coloring and k-core peeling switch to
  /// deterministic chunk-parallel sweep variants under a non-static
  /// `schedule`; their default in-place serial sweeps are what make them
  /// converge fast, and rank-level parallelism is the paper's primary axis.
  ThreadPool* pool = nullptr;
  std::size_t qsize = kDefaultQSize;  ///< Algorithm-3 thread-queue capacity
  /// Ghost-exchange wire format for the convergent analytics (Label
  /// Propagation, WCC coloring, k-core peeling).  kAdaptive switches to the
  /// sparse (slot, value) format once few boundary vertices still change
  /// per round; PageRank ignores this (every rank value changes every
  /// iteration, so dense is always cheapest).
  dgraph::GhostMode ghost_mode = dgraph::GhostMode::kAdaptive;
  /// Per-superstep telemetry sink, or null for no tracing.  Shared by all
  /// ranks; the engine pushes records from rank 0 only.  Engine-ported
  /// analytics emit one SuperstepRecord per round; BFS emits one per level
  /// through the same sink.
  engine::SuperstepTrace* trace = nullptr;
  /// Run overlap-safe engine kernels (PageRank, Label Propagation, WCC
  /// coloring) on the overlapped round schedule: boundary sweep, launch the
  /// split-phase ghost exchange, interior sweep while the payload is in
  /// flight, then finish.  Results are identical to the blocking schedule;
  /// must be set the same on every rank.
  bool overlap = false;
  /// Intra-rank loop schedule for schedule-aware sweeps (see Schedule and
  /// DESIGN.md §10): kStatic keeps the legacy equal-count split, kDynamic
  /// work-steals over a uniform chunk grid, kEdgeBalanced places chunk
  /// boundaries along the CSR degree prefix.  Analytics outputs are
  /// bit-identical across all three; must be set the same on every rank.
  Schedule schedule = Schedule::kStatic;
  /// Frontier representation for the BFS-like analytics (see
  /// engine/frontier.hpp and DESIGN.md §11): kQueue/kBitmap force the
  /// sparse or dense representation, kHybrid (default) crosses over on the
  /// global frontier-degree sum.  Order-sensitive analytics (BFS parent
  /// trees, SSSP) pin the hybrid default to the queue so default runs
  /// reproduce the pre-frontier-layer outputs bit-for-bit; forcing kBitmap
  /// re-breaks their order-derived ties (documented per analytic).  Must be
  /// set the same on every rank.
  engine::FrontierMode frontier = engine::FrontierMode::kHybrid;
};

/// Engine knobs shared by the ported analytics: pool + trace from the
/// common options, a per-analytic label, and an optional iteration cutoff.
inline engine::EngineConfig engine_config(
    const CommonOptions& o, const char* name,
    std::uint64_t max_supersteps = UINT64_MAX) {
  engine::EngineConfig cfg;
  cfg.pool = o.pool;
  cfg.max_supersteps = max_supersteps;
  cfg.trace = o.trace;
  cfg.name = name;
  cfg.overlap = o.overlap;
  cfg.schedule = o.schedule;
  cfg.frontier = o.frontier;
  return cfg;
}

/// Elementwise sum of the out- and in-CSR prefix arrays: a weight prefix
/// over combined degree for edge-balanced grids on kBoth sweeps (the sum of
/// two prefix arrays is the prefix array of the summed degrees).
inline std::vector<std::uint64_t> both_degree_prefix(
    const dgraph::DistGraph& g) {
  const auto out = g.out_index();
  const auto in = g.in_index();
  std::vector<std::uint64_t> p(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) p[i] = out[i] + in[i];
  return p;
}

/// Degree prefix (size verts.size()+1) over an explicit vertex list: weight
/// i is the combined out+in degree of verts[i].  Builds edge-balanced grids
/// for boundary/interior list sweeps under the overlapped schedule.
inline std::vector<std::uint64_t> list_both_degree_prefix(
    const dgraph::DistGraph& g, std::span<const lvid_t> verts) {
  std::vector<std::uint64_t> p(verts.size() + 1, 0);
  for (std::size_t i = 0; i < verts.size(); ++i)
    p[i + 1] = p[i] + g.out_degree(verts[i]) + g.in_degree(verts[i]);
  return p;
}

/// The pool-or-inline fallback every analytic needs: resolves the options'
/// pool pointer to a usable ThreadPool reference.
class ScopedPool : public PoolFallback {
 public:
  explicit ScopedPool(const CommonOptions& o) : PoolFallback(o.pool) {}
};

/// Collective: gather a per-local-vertex array into a full n_global-length
/// array, replicated on every rank (test/report helper — not for use at
/// paper scale, where no single task can hold an n_global array).
template <typename T>
std::vector<T> gather_global(const dgraph::DistGraph& g,
                             parcomm::Communicator& comm,
                             std::span<const T> local_vals) {
  HG_CHECK(local_vals.size() == g.n_loc());
  struct Pair {
    gvid_t gid;
    T val;
  };
  std::vector<Pair> mine(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    mine[v] = {g.global_id(v), local_vals[v]};
  const std::vector<Pair> all = comm.allgatherv<Pair>(mine);
  std::vector<T> out(g.n_global());
  for (const Pair& p : all) out[p.gid] = p.val;
  return out;
}

}  // namespace hpcgraph::analytics
