#pragma once
/// \file degree_stats.hpp
/// Global degree-distribution statistics — the in-/out-degree frequency
/// plots of Meusel et al. that §VI compares Figure 5 against, computed
/// distributed (local log2 histograms + one reduction).

#include <cstdint>

#include "analytics/common.hpp"
#include "util/histogram.hpp"

namespace hpcgraph::analytics {

struct DegreeStats {
  Log2Histogram out_hist;  ///< out-degree frequency (log2 buckets)
  Log2Histogram in_hist;   ///< in-degree frequency
  std::uint64_t max_out = 0;
  std::uint64_t max_in = 0;
  std::uint64_t isolated = 0;  ///< vertices with no edges at all
  double avg_degree = 0;       ///< m / n
};

/// Collective; the result is replicated on every rank.
DegreeStats degree_stats(const dgraph::DistGraph& g,
                         parcomm::Communicator& comm);

}  // namespace hpcgraph::analytics
