#include "analytics/community_stats.hpp"

#include <algorithm>
#include <unordered_map>

#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

CommunityStatsResult community_stats(const DistGraph& g, Communicator& comm,
                                     std::span<const std::uint64_t> labels,
                                     const CommunityStatsOptions& opts) {
  HG_CHECK(labels.size() == g.n_loc());
  CommunityStatsResult res;

  // ---- Ghost labels: one exchange over the full label array. ----
  std::vector<std::uint64_t> full(g.n_total(), 0);
  std::copy(labels.begin(), labels.end(), full.begin());
  GhostExchange gx(g, comm, Adjacency::kBoth, opts.common.pool);
  gx.exchange<std::uint64_t>(full, comm);

  // ---- Local partial records per community. ----
  struct Partial {
    std::uint64_t n = 0, m_in = 0, m_cut = 0;
    gvid_t rep = kNullGvid;
  };
  std::unordered_map<std::uint64_t, Partial> partials;
  partials.reserve(g.n_loc() / 4 + 8);
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    Partial& pr = partials[labels[v]];
    ++pr.n;
    pr.rep = std::min(pr.rep, g.global_id(v));
    for (const lvid_t u : g.out_neighbors(v)) {
      if (full[u] == labels[v])
        ++pr.m_in;
      else
        ++pr.m_cut;
    }
  }

  // ---- Route records to owner(label) and finalize totals there. ----
  struct Record {
    std::uint64_t label;
    std::uint64_t n, m_in, m_cut;
    gvid_t rep;
  };
  const int p = comm.size();
  const auto owner_of_label = [&](std::uint64_t label) {
    // Labels are vertex ids, so the vertex partition also shards labels.
    return g.owner_of_global(static_cast<gvid_t>(label) % g.n_global());
  };
  std::vector<Record> mine;
  mine.reserve(partials.size());
  for (const auto& [label, pr] : partials)
    mine.push_back(Record{label, pr.n, pr.m_in, pr.m_cut, pr.rep});
  const std::vector<Record> recv = engine::route_to_owners<Record>(
      comm, mine, [&](const Record& r) { return owner_of_label(r.label); },
      opts.common.qsize);

  std::unordered_map<std::uint64_t, Partial> owned;
  owned.reserve(recv.size());
  for (const Record& r : recv) {
    Partial& pr = owned[r.label];
    pr.n += r.n;
    pr.m_in += r.m_in;
    pr.m_cut += r.m_cut;
    pr.rep = std::min(pr.rep, r.rep);
  }

  // ---- Size histogram (Figure 5): element-wise allreduce of buckets. ----
  {
    std::vector<std::uint64_t> buckets(64, 0);
    for (const auto& [label, pr] : owned)
      ++buckets[Log2Histogram::bucket_of(pr.n)];
    std::vector<std::uint64_t> gathered = comm.allgatherv<std::uint64_t>(buckets);
    for (int r = 0; r < p; ++r)
      for (unsigned b = 0; b < 64; ++b) {
        const std::uint64_t c = gathered[static_cast<std::size_t>(r) * 64 + b];
        if (c) res.size_histogram.add(std::uint64_t{1} << b, c);
      }
  }
  res.num_communities =
      comm.allreduce_sum<std::uint64_t>(owned.size());

  // ---- Top-k by size: local top-k candidates, merged everywhere. ----
  std::vector<CommunityRecord> local_top;
  local_top.reserve(owned.size());
  for (const auto& [label, pr] : owned)
    local_top.push_back({label, pr.n, pr.m_in, pr.m_cut, pr.rep});
  const auto by_size = [](const CommunityRecord& a, const CommunityRecord& b) {
    if (a.n_in != b.n_in) return a.n_in > b.n_in;
    return a.label < b.label;
  };
  const std::size_t keep = std::min(opts.top_k, local_top.size());
  std::partial_sort(local_top.begin(), local_top.begin() + keep,
                    local_top.end(), by_size);
  local_top.resize(keep);

  std::vector<CommunityRecord> all =
      comm.allgatherv<CommunityRecord>(local_top);
  std::sort(all.begin(), all.end(), by_size);
  if (all.size() > opts.top_k) all.resize(opts.top_k);
  res.top = std::move(all);
  return res;
}

}  // namespace hpcgraph::analytics
