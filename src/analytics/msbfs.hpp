#pragma once
/// \file msbfs.hpp
/// Bit-parallel multi-source BFS (MS-BFS) — the batching engine for the
/// BFS-like analytics class (harmonic centrality, WCC/SCC sweeps,
/// reachability probes).
///
/// The paper's BFS-like analytics pay one full distributed traversal per
/// root: `harmonic_top_k` with k = 64 runs 64 CSR sweeps and 64 sets of
/// per-level collectives.  MS-BFS packs up to 64 roots into one machine
/// word per vertex — `seen[v]` / `frontier[v]` are 64-bit visit masks, bit j
/// belonging to root j of the batch — so a single sweep serves the whole
/// batch:
///
///     next[u] |= frontier[v]        (push, per edge v->u)
///     newly    = next & ~seen       (per vertex, whole batch at once)
///
/// This is the multi-source lever of Buluç & Madduri's distributed BFS work
/// and GBBS's batched traversals: memory traffic over the CSR and the
/// per-level latency of the collectives are both amortized 64-ways.
///
/// ## Distributed schedule
///
/// Each level picks one of two schedules, globally (the decision is a pure
/// function of an allreduced frontier count, so ranks stay in lockstep):
///
///   * **sparse (push)** — scan only the active-vertex list; scatter
///     frontier masks into neighbour slots (atomic OR under threads).  Bits
///     destined to remote vertices accumulate on the local ghost replicas
///     and are merged into the owners' masks by one OR-`reduce` through the
///     retained-queue GhostExchange (the reverse, combining flow).
///   * **dense (pull)** — one forward ghost exchange publishes the frontier
///     masks, then every not-yet-saturated local vertex gathers
///     `OR frontier[parent]` over its reverse adjacency.  No atomics, no
///     per-edge scatter; wins once the frontier covers a sizable fraction
///     of the graph (Beamer's direction-optimizing insight, generalized to
///     64 simultaneous traversals).
///
/// The crossover is `MsBfsOptions::dense_threshold` (fraction of n_global
/// active).  Levels produced are identical to per-source `bfs()` for every
/// root in every schedule mix.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "analytics/bfs.hpp"
#include "analytics/common.hpp"

namespace hpcgraph::analytics {

/// Width of one visit mask = maximum roots per batch.
inline constexpr std::size_t kMsBfsMaxBatch = 64;

struct MsBfsOptions {
  Dir dir = Dir::kOut;
  /// Roots traversed per batch, in [1, kMsBfsMaxBatch].  More roots than
  /// this are processed in consecutive batches.
  std::size_t batch_size = kMsBfsMaxBatch;
  /// Dense/sparse frontier crossover: a level runs the dense (pull)
  /// schedule when the global count of frontier-active vertices exceeds
  /// dense_threshold * n_global; 1.0 forces pure push, 0.0 pure pull.
  double dense_threshold = 0.04;
  /// Optional pre-built exchange plan to reuse across calls (hoisted out of
  /// analytic candidate loops).  Must be constructed over the same graph
  /// with dgraph::Adjacency::kBoth; null = build one internally per call.
  dgraph::GhostExchange* exchange = nullptr;
  CommonOptions common;
};

struct MsBfsResult {
  /// Level stamps, one row per root: level[j * n_loc + v] is the BFS level
  /// of local vertex v from roots[j], or kUnvisited if unreached — bitwise
  /// identical to bfs(g, comm, roots[j]).level[v].
  std::vector<std::int64_t> level;
  std::size_t n_roots = 0;
  int num_levels = 0;         ///< max frontier expansions over all batches
  std::uint64_t visited = 0;  ///< sum over roots of global vertices reached
};

/// Per-level callback of the visitor-style driver.  `newly[v]` has bit j set
/// iff local vertex v was first reached at `level` by batch_roots[j];
/// `batch_begin` is the index of batch_roots[0] within the full root span.
/// Level 0 delivers the root masks themselves.
using MsBfsLevelVisitor =
    std::function<void(std::int64_t level, std::span<const std::uint64_t> newly,
                       std::span<const gvid_t> batch_roots,
                       std::size_t batch_begin)>;

/// Collective.  Batched traversal of all `roots` (any count; batched
/// internally by opts.batch_size), delivering per-level discovery masks to
/// `visit` instead of materializing stamp arrays — the streaming form the
/// analytics build on (harmonic accumulates 1/level on the fly).
/// Returns {max levels over batches, total visited} as a MsBfsResult with
/// an empty `level` array.
MsBfsResult msbfs_visit(const dgraph::DistGraph& g,
                        parcomm::Communicator& comm,
                        std::span<const gvid_t> roots,
                        const MsBfsOptions& opts,
                        const MsBfsLevelVisitor& visit);

/// Collective.  Full level stamps for every root (testing / tree-less
/// consumers); one batch of CSR sweeps per kMsBfsMaxBatch roots.
MsBfsResult msbfs(const dgraph::DistGraph& g, parcomm::Communicator& comm,
                  std::span<const gvid_t> roots, const MsBfsOptions& opts = {});

}  // namespace hpcgraph::analytics
