#pragma once
/// \file kcore.hpp
/// Approximate k-core decomposition — the paper's fifth analytic:
///
///   "we iteratively remove vertices that have degree less than 2^i, i
///    ranging from 1 to 27, and determine the largest connected component in
///    the pruned graph. The value 2^i thus gives a coreness upper bound for
///    all vertices in the component."
///
/// Each stage peels to the 2^i-core fixpoint (removal order cannot change
/// the fixpoint, so distributed and sequential results agree exactly), then
/// runs one alive-masked undirected BFS from the highest-degree surviving
/// vertex — the "27 iterations of BFS" the paper cites for Table IV's
/// k-core row.  Degree decrements crossing task boundaries travel as
/// ghost-id messages through Algorithm-3 thread queues + Alltoallv
/// (BFS-like communication class).
///
/// Figure 6 plots the CDF of the returned per-vertex bounds.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

struct KCoreOptions {
  unsigned max_i = 27;           ///< thresholds 2^1 .. 2^max_i
  bool track_components = true;  ///< per-stage largest-CC BFS (paper mode)
  CommonOptions common;
};

/// One peeling stage's global summary.
struct KCoreStage {
  unsigned i = 0;                ///< stage index (threshold = 2^i)
  std::uint64_t threshold = 0;
  std::uint64_t removed = 0;     ///< vertices peeled this stage
  std::uint64_t alive_after = 0; ///< survivors
  std::uint64_t largest_cc = 0;  ///< size of the surviving component swept
  int peel_sweeps = 0;           ///< sweeps to reach the stage fixpoint
};

struct KCoreResult {
  /// Per local vertex coreness upper bound: 2^i of the stage that removed
  /// it, or 2^max_i for survivors of every stage.
  std::vector<std::uint64_t> bound;
  std::vector<KCoreStage> stages;
};

/// Collective.
KCoreResult kcore_approx(const dgraph::DistGraph& g,
                         parcomm::Communicator& comm,
                         const KCoreOptions& opts = {});

struct KCoreExactResult {
  /// Per local vertex: exact coreness (total-degree convention: in + out
  /// edge instances, self loops counting twice).
  std::vector<std::uint64_t> core;
  std::uint64_t max_core = 0;  ///< degeneracy of the graph (global)
  int stages = 0;              ///< peel levels executed
};

/// Collective.  Exact coreness by distributed incremental peeling — the
/// refinement the paper points at: "The coreness upper bounds can be
/// refined, if required, to compute exact coreness values for each vertex."
/// Peels at k = 1, 2, 3, ... (unit steps instead of the approximate 2^i
/// thresholds); a vertex removed while peeling at level k has coreness k-1.
KCoreExactResult kcore_exact(const dgraph::DistGraph& g,
                             parcomm::Communicator& comm,
                             const CommonOptions& opts = {});

}  // namespace hpcgraph::analytics
