#include "analytics/wcc.hpp"

#include <unordered_map>

#include "analytics/bfs.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "engine/superstep.hpp"
#include "util/atomics.hpp"
#include "engine/frontier.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using parcomm::Communicator;

namespace {

/// (degree, id) pair ordered by higher degree, then smaller id.
struct DegVertex {
  std::uint64_t deg = 0;
  gvid_t gid = kNullGvid;

  static DegVertex better(DegVertex a, DegVertex b) {
    if (a.deg != b.deg) return a.deg > b.deg ? a : b;
    return a.gid <= b.gid ? a : b;
  }
};

/// ValueKernel: HashMin coloring of the non-giant leftovers (step 2).  The
/// init hook re-colors the BFS-swept giant members to the canonical label
/// and the engine pushes that seed through one exchange (kSeedExchange)
/// before round 0, because the ghost replicas still hold the id-init value.
struct WccColorKernel {
  using Value = gvid_t;
  static constexpr bool kSeedExchange = true;
  // Overlap-safe: HashMin converges to the unique per-component minimum
  // regardless of sweep order, so splitting the sweep into boundary and
  // interior phases changes (at most) the iteration count the equivalence
  // tests don't pin, never the fixpoint comp[] values.
  static constexpr bool kOverlapSafe = true;
  // Schedule-aware by the same argument: the non-static schedules switch to
  // a chunk-parallel Jacobi min-sweep over a snapshot — possibly different
  // iteration counts than the serial in-place sweep, same fixpoint.
  static constexpr bool kScheduleAware = true;

  const DistGraph& g;
  const WccOptions& opts;
  std::span<const std::int64_t> level;  // giant membership (BFS level >= 0)
  gvid_t giant_min;
  std::vector<gvid_t> color;
  std::vector<gvid_t> prev;  // pre-round snapshot (Jacobi variant reads it)
  ChunkGrid full_grid, bnd_grid, int_grid;  // degree-weighted (built lazily)

  WccColorKernel(const DistGraph& g_, const WccOptions& o,
                 std::span<const std::int64_t> lvl, gvid_t gmin)
      : g(g_), opts(o), level(lvl), giant_min(gmin), color(g_.n_total()) {
    for (lvid_t l = 0; l < g.n_total(); ++l) color[l] = g.global_id(l);
  }

  Adjacency adjacency() const { return Adjacency::kBoth; }
  dgraph::GhostMode ghost_mode() const { return opts.common.ghost_mode; }
  std::span<gvid_t> values() { return color; }

  void init(engine::StepContext& ctx) {
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (level[v] >= 0 && color[v] != giant_min) {
        color[v] = giant_min;
        ctx.gx->mark_changed(v);  // ghosts still hold the id-init value
      }
  }

  void compute(engine::StepContext& ctx) {
    if (ctx.schedule == Schedule::kStatic) {
      // Serial min-sweep: the in-place updates are what make HashMin
      // converge fast; rank-level parallelism is the primary axis (see
      // CommonOptions).
      std::uint64_t changed = 0;
      const auto sweep_one = [&](lvid_t v) {
        if (level[v] >= 0) return;  // giant members are settled
        gvid_t m = color[v];
        for (const lvid_t u : g.out_neighbors(v)) m = std::min(m, color[u]);
        for (const lvid_t u : g.in_neighbors(v)) m = std::min(m, color[u]);
        if (m < color[v]) {
          color[v] = m;
          ctx.gx->mark_changed(v);
          ++changed;
        }
      };
      if (ctx.sweep == engine::SweepPhase::kFull) {
        for (lvid_t v = 0; v < g.n_loc(); ++v) sweep_one(v);
        ctx.touched_local += g.n_loc();
      } else {
        for (const lvid_t v : ctx.sweep_vertices) sweep_one(v);
        ctx.touched_local += ctx.sweep_vertices.size();
      }
      ctx.active_local += changed;
      return;
    }

    // Non-static schedules: deterministic chunk-parallel Jacobi min-sweep.
    // Every vertex reads the pre-round snapshot, so chunks are independent
    // (no Gauss-Seidel propagation within a round — possibly more rounds to
    // the same fixpoint).  The snapshot is taken in the full sweep or the
    // boundary phase, never mid-round in the interior phase.
    if (ctx.sweep != engine::SweepPhase::kInterior)
      prev.assign(color.begin(), color.end());
    RelaxedCounter changed;
    const auto sweep_one = [&](lvid_t v, std::uint64_t& chg) {
      if (level[v] >= 0) return;  // giant members are settled
      gvid_t m = prev[v];
      for (const lvid_t u : g.out_neighbors(v)) m = std::min(m, prev[u]);
      for (const lvid_t u : g.in_neighbors(v)) m = std::min(m, prev[u]);
      if (m < color[v]) {
        color[v] = m;
        ctx.gx->mark_changed(v);
        ++chg;
      }
    };
    if (ctx.sweep == engine::SweepPhase::kFull) {
      if (full_grid.empty() && g.n_loc() > 0)
        full_grid = make_grid(ctx.schedule, g.n_loc(), both_degree_prefix(g),
                              ctx.pool.num_threads());
      ctx.pool.for_ranges(full_grid, ctx.schedule,
                          [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                            std::uint64_t chg = 0;
                            for (std::uint64_t v = lo; v < hi; ++v)
                              sweep_one(static_cast<lvid_t>(v), chg);
                            if (chg) changed.add(chg);
                          });
      ctx.touched_local += g.n_loc();
    } else {
      const std::span<const lvid_t> verts = ctx.sweep_vertices;
      ChunkGrid& grid =
          ctx.sweep == engine::SweepPhase::kBoundary ? bnd_grid : int_grid;
      if (grid.empty() && !verts.empty())
        grid = make_grid(ctx.schedule, verts.size(),
                         list_both_degree_prefix(g, verts),
                         ctx.pool.num_threads());
      ctx.pool.for_ranges(grid, ctx.schedule,
                          [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                            std::uint64_t chg = 0;
                            for (std::uint64_t i = lo; i < hi; ++i)
                              sweep_one(verts[i], chg);
                            if (chg) changed.add(chg);
                          });
      ctx.touched_local += verts.size();
    }
    ctx.active_local += changed.load();
  }

  bool converged(std::uint64_t active_global, double) const {
    return active_global == 0;
  }
};

}  // namespace

gvid_t max_degree_vertex(const DistGraph& g, Communicator& comm) {
  DegVertex best;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    const DegVertex cand{g.out_degree(v) + g.in_degree(v), g.global_id(v)};
    best = DegVertex::better(best, cand);
  }
  return comm.allreduce(best, DegVertex::better).gid;
}

WccResult wcc(const DistGraph& g, Communicator& comm, const WccOptions& opts) {
  WccResult res;

  // ---- Step 1 (BFS-like): sweep the giant component. ----
  const gvid_t root = max_degree_vertex(g, comm);
  BfsOptions bopts;
  bopts.dir = Dir::kBoth;
  bopts.common = opts.common;
  const BfsResult b = bfs(g, comm, root, bopts);
  res.bfs_levels = b.num_levels;

  // Canonical label of the giant = min global id among its members.
  gvid_t giant_min_local = kNullGvid;
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    if (b.level[v] >= 0)
      giant_min_local = std::min(giant_min_local, g.global_id(v));
  const gvid_t giant_min = comm.allreduce_min(giant_min_local);

  // ---- Step 2 (PageRank-like): HashMin coloring of the leftovers,
  // driven by the superstep engine (seed exchange + sweep-to-fixpoint). ----
  WccColorKernel kernel(g, opts, b.level, giant_min);
  engine::SuperstepEngine eng(g, comm, engine_config(opts.common, "wcc"));
  const engine::EngineResult er = eng.run_value(kernel);
  res.coloring_iters = static_cast<int>(er.supersteps);

  res.comp.assign(kernel.color.begin(), kernel.color.begin() + g.n_loc());

  // ---- Largest component: aggregate per-label counts at the label's
  // owner, then a global max-reduce. ----
  std::unordered_map<gvid_t, std::uint64_t> local_counts;
  local_counts.reserve(g.n_loc() / 4 + 8);
  for (lvid_t v = 0; v < g.n_loc(); ++v) ++local_counts[res.comp[v]];

  struct LabelCount {
    gvid_t label;
    std::uint64_t count;
  };
  std::vector<LabelCount> mine;
  mine.reserve(local_counts.size());
  for (const auto& [label, cnt] : local_counts)
    mine.push_back(LabelCount{label, cnt});
  const std::vector<LabelCount> recv = engine::route_to_owners<LabelCount>(
      comm, mine,
      [&](const LabelCount& lc) { return g.owner_of_global(lc.label); },
      opts.common.qsize);

  std::unordered_map<gvid_t, std::uint64_t> owned_totals;
  for (const LabelCount& lc : recv) owned_totals[lc.label] += lc.count;

  DegVertex best;  // reuse: deg = component size, gid = label
  for (const auto& [label, total] : owned_totals)
    best = DegVertex::better(best, DegVertex{total, label});
  best = comm.allreduce(best, DegVertex::better);
  res.largest_label = best.gid;
  res.largest_size = best.deg;
  return res;
}

}  // namespace hpcgraph::analytics
