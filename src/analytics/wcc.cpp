#include "analytics/wcc.hpp"

#include <unordered_map>

#include "analytics/bfs.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

namespace {

/// (degree, id) pair ordered by higher degree, then smaller id.
struct DegVertex {
  std::uint64_t deg = 0;
  gvid_t gid = kNullGvid;

  static DegVertex better(DegVertex a, DegVertex b) {
    if (a.deg != b.deg) return a.deg > b.deg ? a : b;
    return a.gid <= b.gid ? a : b;
  }
};

}  // namespace

gvid_t max_degree_vertex(const DistGraph& g, Communicator& comm) {
  DegVertex best;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    const DegVertex cand{g.out_degree(v) + g.in_degree(v), g.global_id(v)};
    best = DegVertex::better(best, cand);
  }
  return comm.allreduce(best, DegVertex::better).gid;
}

WccResult wcc(const DistGraph& g, Communicator& comm, const WccOptions& opts) {
  WccResult res;

  // ---- Step 1 (BFS-like): sweep the giant component. ----
  const gvid_t root = max_degree_vertex(g, comm);
  BfsOptions bopts;
  bopts.dir = Dir::kBoth;
  bopts.common = opts.common;
  const BfsResult b = bfs(g, comm, root, bopts);
  res.bfs_levels = b.num_levels;

  // Canonical label of the giant = min global id among its members.
  gvid_t giant_min_local = kNullGvid;
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    if (b.level[v] >= 0)
      giant_min_local = std::min(giant_min_local, g.global_id(v));
  const gvid_t giant_min = comm.allreduce_min(giant_min_local);

  // ---- Step 2 (PageRank-like): HashMin coloring of the leftovers. ----
  GhostExchange gx(g, comm, Adjacency::kBoth, opts.common.pool);
  const dgraph::GhostMode mode = opts.common.ghost_mode;
  std::vector<gvid_t> color(g.n_total());
  for (lvid_t l = 0; l < g.n_total(); ++l) color[l] = g.global_id(l);
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    if (b.level[v] >= 0 && color[v] != giant_min) {
      color[v] = giant_min;
      gx.mark_changed(v);  // ghosts still hold the id-init value
    }
  gx.exchange<gvid_t>(color, comm, mode);

  bool changed_global = true;
  while (changed_global) {
    ++res.coloring_iters;
    bool changed_local = false;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (b.level[v] >= 0) continue;  // giant members are settled
      gvid_t m = color[v];
      for (const lvid_t u : g.out_neighbors(v)) m = std::min(m, color[u]);
      for (const lvid_t u : g.in_neighbors(v)) m = std::min(m, color[u]);
      if (m < color[v]) {
        color[v] = m;
        gx.mark_changed(v);
        changed_local = true;
      }
    }
    gx.exchange<gvid_t>(color, comm, mode);
    changed_global = comm.allreduce_lor(changed_local);
  }

  res.comp.assign(color.begin(), color.begin() + g.n_loc());

  // ---- Largest component: aggregate per-label counts at the label's
  // owner, then a global max-reduce. ----
  std::unordered_map<gvid_t, std::uint64_t> local_counts;
  local_counts.reserve(g.n_loc() / 4 + 8);
  for (lvid_t v = 0; v < g.n_loc(); ++v) ++local_counts[res.comp[v]];

  struct LabelCount {
    gvid_t label;
    std::uint64_t count;
  };
  const int p = comm.size();
  std::vector<std::uint64_t> counts(p, 0);
  for (const auto& [label, cnt] : local_counts)
    ++counts[g.owner_of_global(label)];
  MultiQueue<LabelCount> q(counts);
  {
    MultiQueue<LabelCount>::Sink sink(q, opts.common.qsize);
    for (const auto& [label, cnt] : local_counts)
      sink.push(static_cast<std::uint32_t>(g.owner_of_global(label)),
                LabelCount{label, cnt});
  }
  const std::vector<LabelCount> recv =
      comm.alltoallv<LabelCount>(q.buffer(), counts);

  std::unordered_map<gvid_t, std::uint64_t> owned_totals;
  for (const LabelCount& lc : recv) owned_totals[lc.label] += lc.count;

  DegVertex best;  // reuse: deg = component size, gid = label
  for (const auto& [label, total] : owned_totals)
    best = DegVertex::better(best, DegVertex{total, label});
  best = comm.allreduce(best, DegVertex::better);
  res.largest_label = best.gid;
  res.largest_size = best.deg;
  return res;
}

}  // namespace hpcgraph::analytics
