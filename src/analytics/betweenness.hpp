#pragma once
/// \file betweenness.hpp
/// Approximate betweenness centrality by k-source Brandes — a further
/// §VII-style extension of the paper's centrality pillar (its harmonic
/// centrality faces the same all-sources cost wall; the paper's answer
/// there is top-k sources, the standard answer for betweenness is sampled
/// sources).
///
/// For each sampled source: a forward level-synchronous sweep counts
/// shortest paths (sigma) — the BFS-like class with (vertex, count)
/// accumulation messages — then a backward pass walks the level structure
/// deepest-first accumulating dependencies (delta), refreshing ghost
/// sigma/delta with retained-queue exchanges per level.  Scores are raw
/// dependency sums over the sampled sources (directed, endpoints excluded).

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

struct BetweennessOptions {
  /// Number of sampled sources (clamped to n). 0 = use every vertex
  /// (exact; only sensible on small graphs).
  std::size_t num_sources = 8;
  std::uint64_t seed = 1;
  CommonOptions common;
};

struct BetweennessResult {
  /// Per local vertex: accumulated dependency over the sampled sources.
  std::vector<double> score;
  std::vector<gvid_t> sources;  ///< the sources actually used
};

/// Deterministic source sample shared by the distributed code and the
/// sequential reference: k distinct vertices drawn by seeded hashing.
std::vector<gvid_t> betweenness_sources(gvid_t n, std::size_t k,
                                        std::uint64_t seed);

/// Collective.
BetweennessResult betweenness(const dgraph::DistGraph& g,
                              parcomm::Communicator& comm,
                              const BetweennessOptions& opts = {});

}  // namespace hpcgraph::analytics
