#include "analytics/scc.hpp"

#include "analytics/bfs.hpp"
#include "engine/frontier.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

namespace {

struct Pivot {
  std::uint64_t score = 0;
  gvid_t gid = kNullGvid;

  static Pivot better(Pivot a, Pivot b) {
    if (a.score != b.score) return a.score > b.score ? a : b;
    return a.gid <= b.gid ? a : b;
  }
};

}  // namespace

namespace detail {

std::uint64_t trim_trivial_sccs(const DistGraph& g, Communicator& comm,
                                std::vector<std::uint8_t>& alive,
                                std::size_t qsize, int* sweeps) {
  std::vector<std::uint64_t> in_deg(g.n_loc()), out_deg(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    in_deg[v] = g.in_degree(v);
    out_deg[v] = g.out_degree(v);
  }

  struct Dec {
    gvid_t gid;
    std::uint8_t which;  // 0: decrement in-degree, 1: decrement out-degree
  };

  std::uint64_t trimmed_local = 0;
  for (;;) {
    if (sweeps) ++(*sweeps);
    std::uint64_t removed_sweep = 0;
    std::vector<Dec> remote;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (!alive[v] || (in_deg[v] > 0 && out_deg[v] > 0)) continue;
      alive[v] = 0;
      ++removed_sweep;
      ++trimmed_local;
      for (const lvid_t u : g.out_neighbors(v)) {
        if (g.is_ghost(u))
          remote.push_back({g.global_id(u), 0});
        else if (alive[u] && in_deg[u] > 0)
          --in_deg[u];
      }
      for (const lvid_t u : g.in_neighbors(v)) {
        if (g.is_ghost(u))
          remote.push_back({g.global_id(u), 1});
        else if (alive[u] && out_deg[u] > 0)
          --out_deg[u];
      }
    }

    const std::vector<Dec> recv = engine::route_to_owners<Dec>(
        comm, remote,
        [&](const Dec& d) { return g.owner_of_global(d.gid); }, qsize);
    for (const Dec& d : recv) {
      const lvid_t l = g.local_id_checked(d.gid);
      if (!alive[l]) continue;
      auto& counter = d.which == 0 ? in_deg[l] : out_deg[l];
      if (counter > 0) --counter;
    }

    if (comm.allreduce_sum(removed_sweep) == 0) break;
  }
  return trimmed_local;
}

}  // namespace detail

SccResult largest_scc(const DistGraph& g, Communicator& comm,
                      const SccOptions& opts) {
  SccResult res;

  // ---- Optional trim of trivial SCCs. ----
  std::vector<std::uint8_t> alive;
  std::uint64_t alive_global = g.n_global();
  if (opts.trim) {
    alive.assign(g.n_loc(), 1);
    const std::uint64_t trimmed_local = detail::trim_trivial_sccs(
        g, comm, alive, opts.common.qsize, &res.trim_sweeps);
    res.trimmed = comm.allreduce_sum(trimmed_local);
    alive_global = g.n_global() - res.trimmed;
  }

  // ---- Pivot selection: max (out_deg+1)*(in_deg+1) among survivors. ----
  if (opts.pivot != kNullGvid) {
    res.pivot = opts.pivot;
  } else {
    Pivot best;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (!alive.empty() && !alive[v]) continue;
      const Pivot cand{(g.out_degree(v) + 1) * (g.in_degree(v) + 1),
                       g.global_id(v)};
      best = Pivot::better(best, cand);
    }
    best = comm.allreduce(best, Pivot::better);
    if (best.gid == kNullGvid || alive_global == 0) {
      // Everything trimmed: the graph is a DAG, every SCC is a singleton.
      // Report the global max-degree vertex as a representative size-1 SCC.
      Pivot any;
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        const Pivot cand{(g.out_degree(v) + 1) * (g.in_degree(v) + 1),
                         g.global_id(v)};
        any = Pivot::better(any, cand);
      }
      res.pivot = comm.allreduce(any, Pivot::better).gid;
      res.label = res.pivot;
      res.size = 1;
      res.member.assign(g.n_loc(), 0);
      for (lvid_t v = 0; v < g.n_loc(); ++v)
        if (g.global_id(v) == res.pivot) res.member[v] = 1;
      return res;
    }
    res.pivot = best.gid;
  }

  // ---- Forward and backward sweeps. ----
  BfsOptions fw_opts;
  fw_opts.dir = Dir::kOut;
  fw_opts.alive = alive;
  fw_opts.common = opts.common;
  const BfsResult fw = bfs(g, comm, res.pivot, fw_opts);

  BfsOptions bw_opts;
  bw_opts.dir = Dir::kIn;
  bw_opts.alive = alive;
  bw_opts.common = opts.common;
  const BfsResult bw = bfs(g, comm, res.pivot, bw_opts);

  res.fw_reached = fw.visited;
  res.bw_reached = bw.visited;
  res.fw_levels = fw.num_levels;
  res.bw_levels = bw.num_levels;

  // ---- Intersection = the pivot's SCC. ----
  res.member.assign(g.n_loc(), 0);
  std::uint64_t size_local = 0;
  gvid_t label_local = kNullGvid;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    if (fw.level[v] >= 0 && bw.level[v] >= 0) {
      res.member[v] = 1;
      ++size_local;
      label_local = std::min(label_local, g.global_id(v));
    }
  }
  res.size = comm.allreduce_sum(size_local);
  res.label = comm.allreduce_min(label_local);
  return res;
}

}  // namespace hpcgraph::analytics
