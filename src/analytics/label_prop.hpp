#pragma once
/// \file label_prop.hpp
/// Distributed Label Propagation community detection (Raghavan et al., the
/// paper's [25]) — Algorithm 1 of the paper, with the Algorithm-3
/// thread-queue scheme and retained send queues.
///
/// Labels start as global vertex ids; each iteration every vertex adopts the
/// most frequent label among its in- and out-neighbours (edge direction is
/// ignored, as in the paper), ties broken pseudo-randomly but
/// deterministically.  Ghost labels are refreshed once per iteration through
/// the retained queues.
///
/// Update schedule: by default updates are *synchronous* (all vertices read
/// the previous iteration's labels), which makes results independent of rank
/// count and bit-identical to the sequential reference.  The paper's
/// pseudocode updates local labels in place (Gauss-Seidel within a task,
/// stale across tasks); that mode is available via `in_place = true` for
/// faithfulness, at the cost of partition-dependent results (see DESIGN.md).

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"
#include "dgraph/ghost_exchange.hpp"

namespace hpcgraph::analytics {

struct LabelPropOptions {
  int iterations = 10;
  /// Stop early once no label changed globally ("a stopping criterion
  /// other than a fixed iteration count is also common" — §III-D1).
  bool stop_when_stable = false;
  std::uint64_t tie_seed = 0;
  bool in_place = false;      ///< paper-pseudocode update order (see above)
  bool retain_queues = true;  ///< §III-D1 ablation flag
  CommonOptions common;
};

struct LabelPropResult {
  /// Per local vertex community labels (label values are global vertex ids).
  std::vector<std::uint64_t> labels;
  int iterations_run = 0;
};

/// Collective.
LabelPropResult label_propagation(const dgraph::DistGraph& g,
                                  parcomm::Communicator& comm,
                                  const LabelPropOptions& opts = {});

}  // namespace hpcgraph::analytics
