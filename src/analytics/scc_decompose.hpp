#pragma once
/// \file scc_decompose.hpp
/// Full strongly-connected-component decomposition — the distributed
/// Multistep algorithm of the paper's reference [31] (Slota, Rajamanickam,
/// Madduri, IPDPS'14), of which the paper's SCC analytic ("a routine to
/// extract the largest strongly connected component") is the first phase:
///
///   1. **Trim**: iteratively discard vertices with zero in- or out-degree
///      in the remaining subgraph — singleton SCCs.
///   2. **FW-BW**: one forward + one backward sweep from a heavy pivot
///      peels the giant SCC.
///   3. **Coloring** (Orzan-style), for the leftovers: propagate the
///      maximum vertex id forward to a fixpoint; each color class has a
///      root (the vertex whose color is its own id), and the root's SCC is
///      exactly the backward-reachable set within its color.  Assign,
///      remove, repeat until nothing is left.
///
/// Labels are canonical (min global id per SCC), so results equal the
/// sequential Tarjan reference exactly.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

struct SccDecomposeOptions {
  CommonOptions common;
};

struct SccDecomposeResult {
  /// Per local vertex: SCC label = min global id in the component.
  std::vector<gvid_t> comp;
  std::uint64_t num_sccs = 0;
  std::uint64_t largest_size = 0;
  gvid_t largest_label = kNullGvid;
  std::uint64_t trimmed = 0;    ///< singleton SCCs removed by phase 1
  int coloring_rounds = 0;      ///< phase-3 outer iterations
};

/// Collective.
SccDecomposeResult scc_decompose(const dgraph::DistGraph& g,
                                 parcomm::Communicator& comm,
                                 const SccDecomposeOptions& opts = {});

}  // namespace hpcgraph::analytics
