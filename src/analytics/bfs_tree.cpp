#include "analytics/bfs_tree.hpp"

#include "engine/frontier.hpp"
#include "engine/superstep.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

namespace {

/// FrontierKernel: one parent-claiming BFS level.  Remote discoveries carry
/// the (child, parent) pair and route to the child's owner through
/// engine::route_to_owners; the first claimer wins in rank order.
///
/// Order-sensitive: the parent array is first-claimer-wins in frontier
/// iteration order, so the hybrid policy pins the queue representation to
/// keep default runs bit-identical with the pre-frontier-layer loop.
/// Forcing kBitmap yields a valid BFS tree with possibly different
/// order-derived parent ties.
struct BfsTreeKernel {
  const DistGraph& g;
  const BfsOptions& opts;
  BfsTreeResult& res;
  // Ghost dedup flags: each task claims/sends a ghost at most once.
  std::vector<std::uint8_t> ghost_claimed;
  engine::DistFrontier cur, next;

  BfsTreeKernel(const DistGraph& g_, const BfsOptions& o, BfsTreeResult& r)
      : g(g_), opts(o), res(r), ghost_claimed(g_.n_gst(), 0),
        cur(g_.n_loc()), next(g_.n_loc()) {}

  bool alive(lvid_t u) const {
    return opts.alive.empty() || opts.alive[u] != 0;
  }

  engine::FrontierPolicy frontier_policy() const {
    engine::FrontierPolicy p;
    p.order_sensitive = true;  // parent ties: first claimer wins
    return p;
  }

  engine::DistFrontier* frontier() { return &cur; }

  std::uint64_t active_local() const { return cur.size(); }

  void step(engine::FrontierStepContext& ctx) {
    ctx.touched_local = cur.size();
    const std::int64_t level = static_cast<std::int64_t>(ctx.superstep);

    struct Discovery {
      gvid_t child;
      gvid_t parent;
    };

    next.clear();
    std::vector<Discovery> remote;
    cur.for_each([&](lvid_t v) {
      const gvid_t vg = g.global_id(v);
      const auto explore = [&](lvid_t u) {
        if (g.is_ghost(u)) {
          std::uint8_t& claimed = ghost_claimed[u - g.n_loc()];
          if (!claimed) {
            claimed = 1;
            remote.push_back({g.global_id(u), vg});
          }
        } else if (alive(u) && res.level[u] == kUnvisited) {
          res.level[u] = level + 1;
          res.parent[u] = vg;
          next.push(u);
        }
      };
      if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
        for (const lvid_t u : g.out_neighbors(v)) explore(u);
      if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
        for (const lvid_t u : g.in_neighbors(v)) explore(u);
    });

    const std::vector<Discovery> recv = engine::route_to_owners<Discovery>(
        ctx.comm, remote,
        [&](const Discovery& d) { return g.owner_of_global(d.child); },
        opts.common.qsize);
    for (const Discovery& d : recv) {
      const lvid_t l = g.local_id_checked(d.child);
      if (alive(l) && res.level[l] == kUnvisited) {
        res.level[l] = level + 1;
        res.parent[l] = d.parent;  // first claimer wins (rank order)
        next.push(l);
      }
    }

    cur.swap(next);
  }
};

}  // namespace

BfsTreeResult bfs_tree(const DistGraph& g, Communicator& comm, gvid_t root,
                       const BfsOptions& opts) {
  HG_CHECK(root < g.n_global());

  BfsTreeResult res;
  res.level.assign(g.n_loc(), kUnvisited);
  res.parent.assign(g.n_loc(), kNullGvid);

  BfsTreeKernel kernel(g, opts, res);
  if (g.owner_of_global(root) == comm.rank()) {
    const lvid_t l = g.local_id_checked(root);
    if (kernel.alive(l)) {
      res.level[l] = 0;
      res.parent[l] = root;  // Graph500 convention: the root parents itself
      kernel.cur.push(l);
    }
  }

  engine::SuperstepEngine eng(g, comm, engine_config(opts.common, "bfs"));
  const engine::EngineResult er = eng.run_frontier(kernel);
  res.num_levels = static_cast<int>(er.supersteps);

  std::uint64_t visited_local = 0;
  for (const auto l : res.level)
    if (l >= 0) ++visited_local;
  res.visited = comm.allreduce_sum(visited_local);
  return res;
}

}  // namespace hpcgraph::analytics
