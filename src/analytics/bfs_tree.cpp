#include "analytics/bfs_tree.hpp"

#include "engine/trace.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

BfsTreeResult bfs_tree(const DistGraph& g, Communicator& comm, gvid_t root,
                       const BfsOptions& opts) {
  HG_CHECK(root < g.n_global());
  const int p = comm.size();
  const int me = comm.rank();

  BfsTreeResult res;
  res.level.assign(g.n_loc(), kUnvisited);
  res.parent.assign(g.n_loc(), kNullGvid);
  // Ghost dedup flags: each task claims/sends a ghost at most once.
  std::vector<std::uint8_t> ghost_claimed(g.n_gst(), 0);

  const auto alive = [&](lvid_t u) {
    return opts.alive.empty() || opts.alive[u] != 0;
  };

  std::vector<lvid_t> q, q_next;
  if (g.owner_of_global(root) == me) {
    const lvid_t l = g.local_id_checked(root);
    if (alive(l)) {
      res.level[l] = 0;
      res.parent[l] = root;  // Graph500 convention: the root parents itself
      q.push_back(l);
    }
  }

  struct Discovery {
    gvid_t child;
    gvid_t parent;
  };

  std::int64_t level = 0;
  std::uint64_t global_size = comm.allreduce_sum<std::uint64_t>(q.size());

  engine::RoundTrace ltrace(opts.common.trace, comm, "bfs");
  while (global_size != 0) {
    ++res.num_levels;
    const std::uint64_t processed = global_size;
    ltrace.begin();
    q_next.clear();
    std::vector<Discovery> remote;

    for (const lvid_t v : q) {
      const gvid_t vg = g.global_id(v);
      const auto explore = [&](lvid_t u) {
        if (g.is_ghost(u)) {
          std::uint8_t& claimed = ghost_claimed[u - g.n_loc()];
          if (!claimed) {
            claimed = 1;
            remote.push_back({g.global_id(u), vg});
          }
        } else if (alive(u) && res.level[u] == kUnvisited) {
          res.level[u] = level + 1;
          res.parent[u] = vg;
          q_next.push_back(u);
        }
      };
      if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
        for (const lvid_t u : g.out_neighbors(v)) explore(u);
      if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
        for (const lvid_t u : g.in_neighbors(v)) explore(u);
    }

    std::vector<std::uint64_t> counts(p, 0);
    for (const Discovery& d : remote) ++counts[g.owner_of_global(d.child)];
    MultiQueue<Discovery> sq(counts);
    {
      MultiQueue<Discovery>::Sink sink(sq, opts.common.qsize);
      for (const Discovery& d : remote)
        sink.push(static_cast<std::uint32_t>(g.owner_of_global(d.child)), d);
    }
    const std::vector<Discovery> recv =
        comm.alltoallv<Discovery>(sq.buffer(), counts);
    for (const Discovery& d : recv) {
      const lvid_t l = g.local_id_checked(d.child);
      if (alive(l) && res.level[l] == kUnvisited) {
        res.level[l] = level + 1;
        res.parent[l] = d.parent;  // first claimer wins (rank order)
        q_next.push_back(l);
      }
    }

    std::swap(q, q_next);
    global_size = comm.allreduce_sum<std::uint64_t>(q.size());
    ltrace.end(static_cast<std::uint64_t>(level), processed, global_size,
               "queue");
    ++level;
  }

  std::uint64_t visited_local = 0;
  for (const auto l : res.level)
    if (l >= 0) ++visited_local;
  res.visited = comm.allreduce_sum(visited_local);
  return res;
}

}  // namespace hpcgraph::analytics
