#include "analytics/degree_stats.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

DegreeStats degree_stats(const DistGraph& g, Communicator& comm) {
  constexpr unsigned kBuckets = 64;
  // Local bucket counts, reduced element-wise: [out buckets | in buckets].
  std::vector<std::uint64_t> local(2 * kBuckets, 0);
  std::uint64_t max_out = 0, max_in = 0, isolated = 0;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    const std::uint64_t od = g.out_degree(v), id = g.in_degree(v);
    ++local[Log2Histogram::bucket_of(od)];
    ++local[kBuckets + Log2Histogram::bucket_of(id)];
    max_out = std::max(max_out, od);
    max_in = std::max(max_in, id);
    if (od + id == 0) ++isolated;
  }

  const std::vector<std::uint64_t> all =
      comm.allgatherv<std::uint64_t>(local);
  DegreeStats out;
  for (int r = 0; r < comm.size(); ++r)
    for (unsigned b = 0; b < kBuckets; ++b) {
      const std::size_t base = static_cast<std::size_t>(r) * 2 * kBuckets;
      if (const auto c = all[base + b])
        out.out_hist.add(std::uint64_t{1} << b, c);
      if (const auto c = all[base + kBuckets + b])
        out.in_hist.add(std::uint64_t{1} << b, c);
    }
  out.max_out = comm.allreduce_max(max_out);
  out.max_in = comm.allreduce_max(max_in);
  out.isolated = comm.allreduce_sum(isolated);
  out.avg_degree = g.n_global()
                       ? static_cast<double>(g.m_global()) /
                             static_cast<double>(g.n_global())
                       : 0;
  return out;
}

}  // namespace hpcgraph::analytics
