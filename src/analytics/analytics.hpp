#pragma once
/// \file analytics.hpp
/// Umbrella header for the six graph analytics of the paper plus BFS and the
/// community audit.  See DESIGN.md for the algorithm-class taxonomy
/// (PageRank-like value propagation vs BFS-like frontier expansion).

#include "analytics/bfs.hpp"            // IWYU pragma: export
#include "analytics/betweenness.hpp"    // IWYU pragma: export
#include "analytics/bfs_tree.hpp"       // IWYU pragma: export
#include "analytics/community_stats.hpp"  // IWYU pragma: export
#include "analytics/harmonic.hpp"       // IWYU pragma: export
#include "analytics/kcore.hpp"          // IWYU pragma: export
#include "analytics/label_prop.hpp"     // IWYU pragma: export
#include "analytics/msbfs.hpp"          // IWYU pragma: export
#include "analytics/pagerank.hpp"       // IWYU pragma: export
#include "analytics/scc.hpp"            // IWYU pragma: export
#include "analytics/scc_decompose.hpp"  // IWYU pragma: export
#include "analytics/sssp.hpp"           // IWYU pragma: export
#include "analytics/triangles.hpp"      // IWYU pragma: export
#include "analytics/wcc.hpp"            // IWYU pragma: export
