#include "analytics/betweenness.hpp"

#include <algorithm>

#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"
#include "engine/superstep.hpp"
#include "util/rng.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

std::vector<gvid_t> betweenness_sources(gvid_t n, std::size_t k,
                                        std::uint64_t seed) {
  if (k == 0 || k >= n) {
    std::vector<gvid_t> all(n);
    for (gvid_t v = 0; v < n; ++v) all[v] = v;
    return all;
  }
  // Distinct draws by hashing an incrementing counter; collisions skipped.
  std::vector<gvid_t> out;
  out.reserve(k);
  std::uint64_t ctr = 0;
  while (out.size() < k) {
    const gvid_t v = splitmix64(seed ^ (0xbc5ULL + ctr++)) % n;
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

namespace {

constexpr std::int64_t kUnset = -1;

/// FrontierKernel: one level of Brandes's forward sigma sweep.  Remote path
/// counts route to the owners through engine::route_to_owners; the local
/// frontier of each level is recorded for the backward pass.
///
/// Order-independent: sigma values are integer shortest-path counts stored
/// in doubles, so contributions sum exactly in any order — the hybrid
/// policy may freely switch representation without perturbing scores.
struct BrandesForwardKernel {
  const DistGraph& g;
  std::vector<std::int64_t>& level;
  std::vector<double>& sigma;
  std::vector<double>& contrib;
  std::vector<std::vector<lvid_t>>& frontiers;  // per-level local frontiers
  std::size_t qsize;
  engine::DistFrontier cur, next;

  BrandesForwardKernel(const DistGraph& g_, std::vector<std::int64_t>& lv,
                       std::vector<double>& sg, std::vector<double>& cb,
                       std::vector<std::vector<lvid_t>>& fr, std::size_t qs)
      : g(g_), level(lv), sigma(sg), contrib(cb), frontiers(fr), qsize(qs),
        cur(g_.n_loc()), next(g_.n_loc()) {}

  engine::DistFrontier* frontier() { return &cur; }

  std::uint64_t active_local() const { return cur.size(); }

  std::uint64_t degree_local() const {
    return cur.weight_sum([&](lvid_t v) { return g.out_degree(v); });
  }

  void step(engine::FrontierStepContext& ctx) {
    ctx.touched_local = cur.size();
    const std::int64_t depth = static_cast<std::int64_t>(ctx.superstep);

    struct PathMsg {
      gvid_t gid;
      double paths;
    };

    frontiers.emplace_back();
    std::vector<lvid_t>& saved = frontiers.back();
    saved.reserve(cur.size());

    std::vector<PathMsg> remote;
    std::vector<lvid_t> touched;  // locals that received contributions
    cur.for_each([&](lvid_t u) {
      saved.push_back(u);
      for (const lvid_t v : g.out_neighbors(u)) {
        if (g.is_ghost(v)) {
          remote.push_back({g.global_id(v), sigma[u]});
        } else if (level[v] == kUnset) {
          if (contrib[v] == 0.0) touched.push_back(v);
          contrib[v] += sigma[u];
        }
      }
    });

    const std::vector<PathMsg> recv = engine::route_to_owners<PathMsg>(
        ctx.comm, remote,
        [&](const PathMsg& m) { return g.owner_of_global(m.gid); }, qsize);
    for (const PathMsg& m : recv) {
      const lvid_t v = g.local_id_checked(m.gid);
      if (level[v] == kUnset) {
        if (contrib[v] == 0.0) touched.push_back(v);
        contrib[v] += m.paths;
      }
    }

    next.clear();
    for (const lvid_t v : touched) {
      if (level[v] != kUnset || contrib[v] == 0.0) continue;
      level[v] = depth + 1;
      sigma[v] = contrib[v];
      contrib[v] = 0.0;
      next.push(v);
      ctx.degree_local += g.out_degree(v);
    }
    cur.swap(next);
  }
};

/// One Brandes source: forward sigma sweep + backward delta accumulation.
/// Adds each non-source vertex's dependency into `score`.
void accumulate_source(const DistGraph& g, Communicator& comm, gvid_t source,
                       GhostExchange& gx, std::vector<double>& score,
                       const CommonOptions& common) {
  const int me = comm.rank();

  std::vector<std::int64_t> level(g.n_loc(), kUnset);
  // sigma/delta cover ghosts: successors' values are read through out-edges.
  std::vector<double> sigma(g.n_total(), 0.0);
  std::vector<double> contrib(g.n_loc(), 0.0);

  std::vector<std::vector<lvid_t>> frontiers;  // per-level local frontiers
  BrandesForwardKernel kernel(g, level, sigma, contrib, frontiers,
                              common.qsize);
  if (g.owner_of_global(source) == me) {
    const lvid_t l = g.local_id_checked(source);
    level[l] = 0;
    sigma[l] = 1.0;
    kernel.cur.push(l);
  }

  // ---- Forward phase: level-synchronous shortest-path counting. ----
  engine::SuperstepEngine eng(g, comm, engine_config(common, "betweenness"));
  eng.run_frontier(kernel);

  // Successor sigma for the backward pass.
  gx.exchange<double>(sigma, comm);

  // ---- Backward phase: dependency accumulation, deepest level first. ----
  // delta over locals + ghosts (ghost slots refreshed per level).
  std::vector<double> delta(g.n_total(), 0.0);
  // Ghost levels: the backward rule needs "is v exactly one level deeper";
  // encode via sigma>0 plus a ghost level array exchanged once.
  std::vector<std::int64_t> level_all(g.n_total(), kUnset);
  std::copy(level.begin(), level.end(), level_all.begin());
  gx.exchange<std::int64_t>(level_all, comm);

  for (std::size_t li = frontiers.size(); li-- > 0;) {
    const std::int64_t l = static_cast<std::int64_t>(li);
    for (const lvid_t u : frontiers[li]) {
      double acc = 0;
      for (const lvid_t v : g.out_neighbors(u)) {
        if (level_all[v] != l + 1 || sigma[v] <= 0.0) continue;
        acc += sigma[u] / sigma[v] * (1.0 + delta[v]);
      }
      delta[u] = acc;
    }
    // Publish this level's deltas so the next (shallower) level can read
    // its ghost successors.
    gx.exchange<double>(delta, comm);
  }

  for (lvid_t v = 0; v < g.n_loc(); ++v)
    if (level[v] > 0)  // exclude the source itself
      score[v] += delta[v];
}

}  // namespace

BetweennessResult betweenness(const DistGraph& g, Communicator& comm,
                              const BetweennessOptions& opts) {
  BetweennessResult res;
  res.sources = betweenness_sources(g.n_global(), opts.num_sources, opts.seed);
  res.score.assign(g.n_loc(), 0.0);

  // Ghost value flow is owner -> tasks reading the vertex through out-edge
  // lists, i.e. the kIn adjacency marking (same mapping as PageRank's kOut,
  // mirrored: here readers scan *out*-neighbours).
  GhostExchange gx(g, comm, Adjacency::kIn, opts.common.pool);

  for (const gvid_t s : res.sources)
    accumulate_source(g, comm, s, gx, res.score, opts.common);
  return res;
}

}  // namespace hpcgraph::analytics
