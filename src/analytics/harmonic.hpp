#pragma once
/// \file harmonic.hpp
/// Harmonic Centrality (Boldi & Vigna's axioms-for-centrality measure — the
/// paper's [1]): HC(v) = sum over u != v of 1/d(v, u), computed with one
/// distributed BFS per vertex.  Exact all-vertices HC is O(nm) and
/// "prohibitively expensive for large graphs"; the paper instead scores the
/// top-k vertices ranked by degree (k = 1000 for WC) and reports the time of
/// a single-vertex evaluation.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

struct HarmonicOptions {
  CommonOptions common;
};

/// Collective.  Harmonic centrality of one vertex (distances along
/// out-edges; one BFS + one Allreduce).
double harmonic_centrality(const dgraph::DistGraph& g,
                           parcomm::Communicator& comm, gvid_t v,
                           const HarmonicOptions& opts = {});

struct ScoredVertex {
  gvid_t gid = kNullGvid;
  double score = 0;
};

/// Collective.  The paper's top-k protocol: select the k globally
/// highest-degree vertices (total degree, ties to smaller id), then compute
/// HC for each.  Returned in descending HC order.
std::vector<ScoredVertex> harmonic_top_k(const dgraph::DistGraph& g,
                                         parcomm::Communicator& comm,
                                         std::size_t k,
                                         const HarmonicOptions& opts = {});

}  // namespace hpcgraph::analytics
