#pragma once
/// \file harmonic.hpp
/// Harmonic Centrality (Boldi & Vigna's axioms-for-centrality measure — the
/// paper's [1]): HC(v) = sum over u != v of 1/d(v, u).  Exact all-vertices
/// HC is O(nm) and "prohibitively expensive for large graphs"; the paper
/// instead scores the top-k vertices ranked by degree (k = 1000 for WC) and
/// reports the time of a single-vertex evaluation.
///
/// Two engines compute the top-k scores:
///   * per-source — one distributed BFS per candidate (the paper's scheme);
///   * batched (default) — the bit-parallel multi-source BFS engine
///     (msbfs.hpp) traverses up to 64 candidates per CSR sweep, with one
///     retained ghost-exchange plan reused across every batch, and
///     accumulates each root's sum of 1/level from the per-level discovery
///     masks.  Scores are equal up to floating-point summation order.
///
/// `harmonic_approx` adds the sampled mode the paper's approximate-analytics
/// spirit calls for: estimate HC for *every* vertex from `n_samples` random
/// targets (one or two MS-BFS batches), unbiased with scale n/s; sampling
/// all n vertices reproduces the exact scores.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"
#include "analytics/msbfs.hpp"

namespace hpcgraph::analytics {

struct HarmonicOptions {
  /// Use the bit-parallel multi-source engine for top-k (false = one
  /// distributed BFS per candidate, the paper's original scheme).
  bool batched = true;
  /// Candidates per MS-BFS batch, in [1, kMsBfsMaxBatch].
  std::size_t batch_size = kMsBfsMaxBatch;
  /// Dense/sparse frontier crossover forwarded to the MS-BFS engine.
  double dense_threshold = 0.04;
  CommonOptions common;
};

/// Collective.  Harmonic centrality of one vertex (distances along
/// out-edges; one BFS + one Allreduce).
double harmonic_centrality(const dgraph::DistGraph& g,
                           parcomm::Communicator& comm, gvid_t v,
                           const HarmonicOptions& opts = {});

struct ScoredVertex {
  gvid_t gid = kNullGvid;
  double score = 0;
};

/// Collective.  The paper's top-k protocol: select the k globally
/// highest-degree vertices (total degree, ties to smaller id), then compute
/// HC for each — batched ⌈k/64⌉ MS-BFS sweeps by default.  Returned in
/// descending HC order.
std::vector<ScoredVertex> harmonic_top_k(const dgraph::DistGraph& g,
                                         parcomm::Communicator& comm,
                                         std::size_t k,
                                         const HarmonicOptions& opts = {});

struct HarmonicApproxOptions {
  /// Number of sampled targets (clamped to n; n_samples >= n degenerates to
  /// the exact computation — every vertex sampled exactly once).
  std::size_t n_samples = kMsBfsMaxBatch;
  std::uint64_t seed = 0x9a7c1eULL;
  std::size_t batch_size = kMsBfsMaxBatch;
  double dense_threshold = 0.04;
  CommonOptions common;
};

struct HarmonicApproxResult {
  /// Estimated HC(v) for every local vertex: (n/s) * sum over sampled
  /// targets u of 1/d(v, u).
  std::vector<double> score;
  /// The sampled target vertices (identical on every rank).
  std::vector<gvid_t> samples;
  int num_levels = 0;  ///< max MS-BFS levels over batches
};

/// Collective.  Sampled approximate harmonic centrality of *all* vertices:
/// distances toward the sampled targets come from reverse (in-edge) MS-BFS
/// traversals, so s samples cost ⌈s/64⌉ batched sweeps instead of n BFS
/// runs.  Deterministic for a fixed seed and rank count.
HarmonicApproxResult harmonic_approx(const dgraph::DistGraph& g,
                                     parcomm::Communicator& comm,
                                     const HarmonicApproxOptions& opts = {});

}  // namespace hpcgraph::analytics
