#include "analytics/pagerank.hpp"

#include <atomic>
#include <cmath>

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

PageRankResult pagerank(const DistGraph& g, Communicator& comm,
                        const PageRankOptions& opts) {
  ScopedPool pf(opts.common);
  ThreadPool& tp = pf.get();
  const double n = static_cast<double>(g.n_global());
  HG_CHECK(g.n_global() > 0);

  // A local vertex u is needed by exactly the owners of u's out-neighbours
  // (they read u's contribution through their in-edge lists).
  GhostExchange gx(g, comm, Adjacency::kOut, opts.common.pool);

  // contrib[l] = damping * rank(l) / outdeg(l); ghost slots filled by the
  // exchange.  rank[] covers locals only — ghost ranks are never needed.
  std::vector<double> rank(g.n_loc(), 1.0 / n);
  std::vector<double> next(g.n_loc());
  std::vector<double> contrib(g.n_total(), 0.0);

  PageRankResult res;
  for (int it = 0; it < opts.max_iterations; ++it) {
    // Dangling mass (vertices with no out-edges leak rank otherwise).
    double dangling_local = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (g.out_degree(v) == 0) dangling_local += rank[v];
    const double dangling = comm.allreduce_sum(dangling_local);
    const double base =
        (1.0 - opts.damping) / n + opts.damping * dangling / n;

    tp.for_range(0, g.n_loc(), [&](unsigned, std::uint64_t lo,
                                   std::uint64_t hi) {
      for (std::uint64_t v = lo; v < hi; ++v) {
        const std::uint64_t d = g.out_degree(static_cast<lvid_t>(v));
        contrib[v] = d ? opts.damping * rank[v] / static_cast<double>(d) : 0.0;
      }
    });

    if (opts.retain_queues) {
      gx.exchange<double>(contrib, comm);
    } else {
      // Ablation: pay the full setup cost every iteration.
      GhostExchange fresh(g, comm, Adjacency::kOut, opts.common.pool);
      fresh.exchange<double>(contrib, comm);
    }

    double delta_local = 0;
    tp.for_range(0, g.n_loc(), [&](unsigned, std::uint64_t lo,
                                   std::uint64_t hi) {
      double delta_chunk = 0;
      for (std::uint64_t v = lo; v < hi; ++v) {
        double sum = base;
        for (const lvid_t u : g.in_neighbors(static_cast<lvid_t>(v)))
          sum += contrib[u];
        next[v] = sum;
        delta_chunk += std::fabs(sum - rank[v]);
      }
      // Threads write distinct ranges; fold the partial delta atomically.
      static_assert(sizeof(double) == 8);
      std::atomic_ref<double>(delta_local)
          .fetch_add(delta_chunk, std::memory_order_relaxed);
    });
    rank.swap(next);
    ++res.iterations_run;

    res.l1_delta = comm.allreduce_sum(delta_local);
    if (opts.tolerance > 0 && res.l1_delta < opts.tolerance) break;
  }

  res.scores = std::move(rank);
  return res;
}

}  // namespace hpcgraph::analytics
