#include "analytics/pagerank.hpp"

#include <cmath>

#include "engine/superstep.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostMode;
using engine::StepContext;

namespace {

/// ValueKernel: one power-iteration round.  The exchanged value is the
/// per-vertex out-contribution `damping * rank(v) / outdeg(v)`; the apply
/// hook gathers in-neighbour contributions into the next rank vector and
/// accumulates the L1 delta the engine's fused allreduce turns into the
/// global residual.
struct PageRankKernel {
  using Value = double;
  // Overlap-safe: contrib[v] is a pure per-vertex function of rank[v], so
  // sweeping boundary and interior in separate calls fills the same bits,
  // and apply() reads ghosts only after the engine's exchange completes.
  static constexpr bool kOverlapSafe = true;
  // Schedule-aware: every sweep writes pure per-vertex values (bit-identical
  // under any chunking) and the L1 residual reduces per-chunk partials in
  // chunk order, so scores match across schedules and thread counts.
  static constexpr bool kScheduleAware = true;

  const DistGraph& g;
  const PageRankOptions& opts;
  double n;                      // n_global as double
  std::vector<double> rank;      // locals only
  std::vector<double> next;      // locals only
  std::vector<double> contrib;   // locals + ghosts (the exchanged array)
  double base = 0;               // this round's teleport + dangling share
  ChunkGrid gather_grid;         // in-degree-weighted grid (built lazily)

  PageRankKernel(const DistGraph& g_, const PageRankOptions& o)
      : g(g_),
        opts(o),
        n(static_cast<double>(g_.n_global())),
        rank(g_.n_loc(), 1.0 / n),
        next(g_.n_loc()),
        contrib(g_.n_total(), 0.0) {}

  Adjacency adjacency() const { return Adjacency::kOut; }
  // Every rank value changes every iteration, so dense is always cheapest;
  // the sparse/adaptive machinery is for the convergent analytics.
  GhostMode ghost_mode() const { return GhostMode::kDense; }
  bool retain_queues() const { return opts.retain_queues; }
  std::span<double> values() { return contrib; }

  void compute(StepContext& ctx) {
    // Dangling mass (vertices with no out-edges leak rank otherwise).  One
    // allreduce per round: it runs in the full sweep or the *boundary*
    // phase (which the overlapped schedule executes first, before any
    // exchange is in flight), never in the interior phase.  The scan stays
    // a full serial loop over all locals in either case, so the FP addition
    // order — and hence `base` — is bit-identical to the blocking schedule.
    if (ctx.sweep != engine::SweepPhase::kInterior) {
      double dangling_local = 0;
      for (lvid_t v = 0; v < g.n_loc(); ++v)
        if (g.out_degree(v) == 0) dangling_local += rank[v];
      const double dangling = ctx.comm.allreduce_sum(dangling_local);
      base = (1.0 - opts.damping) / n + opts.damping * dangling / n;
    }

    const auto fill = [&](lvid_t v) {
      const std::uint64_t d = g.out_degree(v);
      contrib[v] = d ? opts.damping * rank[v] / static_cast<double>(d) : 0.0;
    };
    if (ctx.sweep == engine::SweepPhase::kFull) {
      ctx.pool.for_range(0, g.n_loc(), ctx.schedule,
                         [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                           for (std::uint64_t v = lo; v < hi; ++v)
                             fill(static_cast<lvid_t>(v));
                         });
    } else {
      const std::span<const lvid_t> verts = ctx.sweep_vertices;
      ctx.pool.for_range(0, verts.size(), ctx.schedule,
                         [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                           for (std::uint64_t i = lo; i < hi; ++i)
                             fill(verts[i]);
                         });
    }
  }

  void apply(StepContext& ctx) {
    // The in-neighbour gather is the skew-sensitive loop: its cost per
    // vertex is in-degree, so the grid is built over the in-CSR prefix (one
    // hub-heavy static chunk otherwise serializes the sweep).  next[v] is a
    // pure per-vertex function — bit-identical under any chunking — and the
    // L1 delta folds per-chunk partials in chunk order, making the residual
    // a pure function of the grid.
    if (gather_grid.empty() && g.n_loc() > 0)
      gather_grid = make_grid(ctx.schedule, g.n_loc(), g.in_index(),
                              ctx.pool.num_threads());
    const double delta_local = ctx.pool.reduce_chunks(
        gather_grid, ctx.schedule, [&](const Chunk& ck) {
          double delta_chunk = 0;
          for (std::uint64_t v = ck.begin; v < ck.end; ++v) {
            double sum = base;
            for (const lvid_t u : g.in_neighbors(static_cast<lvid_t>(v)))
              sum += contrib[u];
            next[v] = sum;
            delta_chunk += std::fabs(sum - rank[v]);
          }
          return delta_chunk;
        });
    rank.swap(next);
    ctx.active_local = g.n_loc();
    ctx.touched_local = g.n_loc();
    ctx.residual_local = delta_local;
  }

  bool converged(std::uint64_t, double residual_global) const {
    return opts.tolerance > 0 && residual_global < opts.tolerance;
  }
};

}  // namespace

PageRankResult pagerank(const DistGraph& g, parcomm::Communicator& comm,
                        const PageRankOptions& opts) {
  HG_CHECK(g.n_global() > 0);

  PageRankKernel kernel(g, opts);
  engine::SuperstepEngine eng(
      g, comm,
      engine_config(opts.common, "pagerank",
                    static_cast<std::uint64_t>(opts.max_iterations)));
  const engine::EngineResult er = eng.run_value(kernel);

  PageRankResult res;
  res.iterations_run = static_cast<int>(er.supersteps);
  res.l1_delta = er.last_residual;
  res.scores = std::move(kernel.rank);
  return res;
}

}  // namespace hpcgraph::analytics
