#pragma once
/// \file bfs_tree.hpp
/// BFS with parent recording — the Graph500-style variant of Algorithm 2
/// (the paper positions its BFS relative to the Graph500 benchmark [12],
/// whose kernel output is a parent tree rather than levels).
///
/// Discovery messages carry (child, parent) pairs; each vertex records the
/// claimer that first reached it.  tests/test_bfs_tree.cpp validates the
/// Graph500 tree conditions: the root is its own parent, every tree edge
/// exists in the graph, and levels are consistent (level(v) ==
/// level(parent(v)) + 1).

#include <cstdint>
#include <vector>

#include "analytics/bfs.hpp"

namespace hpcgraph::analytics {

struct BfsTreeResult {
  /// Per local vertex: BFS level, or kUnvisited if unreached.
  std::vector<std::int64_t> level;
  /// Per local vertex: parent's global id; the root parents itself;
  /// kNullGvid if unreached.
  std::vector<gvid_t> parent;
  std::uint64_t visited = 0;
  int num_levels = 0;
};

/// Collective.  Directed (out-edge) BFS from `root` recording the tree.
BfsTreeResult bfs_tree(const dgraph::DistGraph& g,
                       parcomm::Communicator& comm, gvid_t root,
                       const BfsOptions& opts = {});

}  // namespace hpcgraph::analytics
