#pragma once
/// \file bfs.hpp
/// Distributed level-synchronous BFS — Algorithm 2 of the paper, the engine
/// behind the "BFS-like" analytics class (SCC, WCC step 1, Harmonic
/// Centrality, approximate k-core connectivity).
///
/// Per level: pop the task-local queue, stamp levels, explore adjacencies in
/// the requested direction; unvisited local targets go to the next local
/// queue, unvisited ghosts are marked (so they are sent at most once per
/// task) and routed to their owner through Algorithm-3 thread-local queues +
/// one Alltoallv; an Allreduce of the global frontier size decides
/// termination.  "We omit BFS-specific optimizations [direction-optimizing
/// etc.] ... and focus on those generalizable to all of the algorithms."

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

/// Status array encoding, as in Algorithm 2: kUnvisited, then kQueued when
/// first touched, then the BFS level once popped.
inline constexpr std::int64_t kUnvisited = -2;
inline constexpr std::int64_t kQueued = -1;

struct BfsOptions {
  Dir dir = Dir::kOut;
  /// Optional aliveness mask over local vertices (k-core's pruned-graph
  /// connectivity checks); null = all alive.
  std::span<const std::uint8_t> alive = {};

  /// Direction-optimizing traversal (Beamer-style top-down/bottom-up
  /// switching) — a BFS-specific optimization the paper deliberately omits
  /// ("we omit BFS-specific optimizations in our current work"), provided
  /// here as the extension it points at.  Levels are identical to the
  /// default traversal; only the work/communication schedule changes.
  /// Bottom-up levels exchange one frontier flag per boundary vertex
  /// through retained queues instead of per-discovery vertex messages.
  bool direction_optimizing = false;
  double alpha = 15.0;  ///< go bottom-up when frontier edges > m/alpha
  double beta = 20.0;   ///< return top-down when frontier < n/beta

  CommonOptions common;
};

struct BfsResult {
  /// Per local vertex: BFS level, or kUnvisited/kQueued if never reached.
  std::vector<std::int64_t> level;
  std::uint64_t visited = 0;  ///< global number of vertices reached
  int num_levels = 0;         ///< number of frontier expansions executed
};

/// Collective.  BFS from the (globally agreed) root vertex.
BfsResult bfs(const dgraph::DistGraph& g, parcomm::Communicator& comm,
              gvid_t root, const BfsOptions& opts = {});

}  // namespace hpcgraph::analytics
