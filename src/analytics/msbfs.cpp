#include "analytics/msbfs.hpp"

#include <algorithm>
#include <bit>
#include <optional>

#include "dgraph/ghost_exchange.hpp"
#include "engine/frontier.hpp"
#include "engine/trace.hpp"
#include "util/bitmask64.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

namespace {

/// One batch of <= kMsBfsMaxBatch roots.  Returns the number of frontier
/// expansions executed; adds the batch's global (root, vertex) reach count
/// to *visited.
int run_batch(const DistGraph& g, Communicator& comm, GhostExchange& gx,
              std::span<const gvid_t> batch, std::size_t batch_begin,
              const MsBfsOptions& opts, ThreadPool& tp,
              const MsBfsLevelVisitor& visit, std::uint64_t* visited) {
  const lvid_t n_loc = g.n_loc();
  const std::size_t n_total = g.n_total();
  const unsigned nt = tp.num_threads();
  const std::uint64_t full = bits::low_mask(batch.size());
  const Schedule sched = opts.common.schedule;

  const auto deg_dir = [&](lvid_t v) -> std::uint64_t {
    switch (opts.dir) {
      case Dir::kOut: return g.out_degree(v);
      case Dir::kIn: return g.in_degree(v);
      case Dir::kBoth: return g.out_degree(v) + g.in_degree(v);
    }
    return 0;
  };

  // Per-vertex visit masks over locals + ghosts; bit j belongs to batch[j].
  std::vector<std::uint64_t> seen(n_total, 0);
  std::vector<std::uint64_t> frontier(n_total, 0);
  std::vector<std::uint64_t> next(n_total, 0);
  std::vector<std::uint64_t> newly(n_loc, 0);

  std::vector<lvid_t> act;  // frontier-active local vertices
  for (std::size_t j = 0; j < batch.size(); ++j) {
    const gvid_t r = batch[j];
    HG_CHECK(r < g.n_global());
    if (g.owner_of_global(r) != comm.rank()) continue;
    const lvid_t l = g.local_id_checked(r);
    if (frontier[l] == 0) act.push_back(l);
    seen[l] |= bits::bit(j);
    frontier[l] |= bits::bit(j);
    newly[l] |= bits::bit(j);
  }
  if (!act.empty()) visit(0, newly, batch, batch_begin);

  // Finalize grid: chunk geometry over the locals; per-chunk active lists
  // concatenated in chunk order keep act[] (and hence every downstream
  // collective payload) bit-identical across schedules and thread counts.
  const ChunkGrid fin_grid = make_grid(sched, n_loc, {}, nt);
  std::vector<std::vector<lvid_t>> cact(fin_grid.size());
  ChunkGrid pull_grid;  // reverse-degree weighted, built on first pull level
  std::uint64_t active_global = comm.allreduce_sum<std::uint64_t>(act.size());
  std::int64_t level = 0;
  int num_levels = 0;

  // Push/pull crossover through the frontier layer's shared decision
  // function: the MS-BFS density rule on allreduced state — a pure function
  // evaluated identically on every rank, so the schedule stays lockstep.
  // The masks are the dense representation already; a forced --frontier
  // queue pins the push (scatter) path.
  engine::FrontierPolicy policy;
  policy.mode = opts.common.frontier;
  policy.allow_pull = true;
  policy.pull_density = opts.dense_threshold;
  engine::FrontierDir dir = engine::FrontierDir::kPush;

  engine::RoundTrace ltrace(opts.common.trace, comm, "msbfs", &tp, sched);
  while (active_global != 0) {
    ++num_levels;
    ltrace.begin();
    const std::uint64_t processed = active_global;
    const engine::FrontierDecision dec = engine::frontier_decide(
        policy, dir, active_global, 0, g.n_global(), g.m_global());
    const bool crossover = level > 0 && dec.dir != dir;
    dir = dec.dir;
    const bool pull = dir == engine::FrontierDir::kPull;

    if (pull) {
      // ---- Dense (pull): publish frontier masks, gather over the reverse
      // adjacency of every unsaturated vertex.  Writes are per-destination:
      // no atomics. ----
      gx.exchange(std::span<std::uint64_t>(frontier), comm);
      if (pull_grid.empty() && n_loc > 0) {
        // Gather cost is bounded by reverse-adjacency degree.
        std::vector<std::uint64_t> rev(n_loc + 1, 0);
        for (lvid_t v = 0; v < n_loc; ++v) {
          std::uint64_t d = 0;
          if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
            d += g.in_degree(v);
          if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
            d += g.out_degree(v);
          rev[v + 1] = rev[v] + d;
        }
        pull_grid = make_grid(sched, n_loc, rev, nt);
      }
      tp.for_ranges(pull_grid, sched, [&](unsigned, std::uint64_t lo,
                                          std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const lvid_t v = static_cast<lvid_t>(i);
          if ((~seen[v] & full) == 0) {  // already reached by every root
            next[v] = 0;
            continue;
          }
          std::uint64_t gather = 0;
          // Parents sit in the *reverse* adjacency of the traversal.
          if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
            for (const lvid_t u : g.in_neighbors(v)) gather |= frontier[u];
          if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
            for (const lvid_t u : g.out_neighbors(v)) gather |= frontier[u];
          next[v] = gather;
        }
      });
    } else {
      // ---- Sparse (push): scatter active masks along the traversal
      // adjacency; bits for remote vertices accumulate on ghost replicas
      // and OR-merge into the owners through the reverse exchange. ----
      tp.for_range(0, n_total, sched,
                   [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                     std::fill(next.begin() + static_cast<std::ptrdiff_t>(lo),
                               next.begin() + static_cast<std::ptrdiff_t>(hi),
                               std::uint64_t{0});
                   });
      const bool concurrent = nt > 1;
      // Scatter cost is the active vertex's traversal degree; the frontier
      // changes every level, so the edge-balanced grid is rebuilt per level.
      std::vector<std::uint64_t> aprefix;
      if (sched == Schedule::kEdgeBalanced) {
        aprefix.resize(act.size() + 1);
        aprefix[0] = 0;
        for (std::size_t i = 0; i < act.size(); ++i)
          aprefix[i + 1] = aprefix[i] + deg_dir(act[i]);
      }
      const ChunkGrid sgrid = make_grid(sched, act.size(), aprefix, nt);
      tp.for_ranges(sgrid, sched, [&](unsigned, std::uint64_t lo,
                                      std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          const lvid_t v = act[i];
          const std::uint64_t m = frontier[v];
          const auto scatter = [&](lvid_t u) {
            if (concurrent) {
              bits::atomic_or(next[u], m);
            } else {
              next[u] |= m;
            }
          };
          if (opts.dir == Dir::kOut || opts.dir == Dir::kBoth)
            for (const lvid_t u : g.out_neighbors(v)) scatter(u);
          if (opts.dir == Dir::kIn || opts.dir == Dir::kBoth)
            for (const lvid_t u : g.in_neighbors(v)) scatter(u);
        }
      });
      gx.reduce(std::span<std::uint64_t>(next), comm,
                [](std::uint64_t a, std::uint64_t b) { return a | b; });
    }

    // ---- Finalize the level: newly = next & ~seen, batch-wide at once. ----
    for (auto& cv : cact) cv.clear();
    tp.for_chunks(fin_grid, sched,
                  [&](unsigned, std::uint64_t c, const Chunk& ck) {
                    auto& mine = cact[c];
                    for (std::uint64_t i = ck.begin; i < ck.end; ++i) {
                      const lvid_t v = static_cast<lvid_t>(i);
                      const std::uint64_t nw = next[v] & ~seen[v];
                      newly[v] = nw;
                      frontier[v] = nw;
                      if (nw != 0) {
                        seen[v] |= nw;
                        mine.push_back(v);
                      }
                    }
                  });
    act.clear();
    concat_chunk_lists(cact, act);

    ++level;
    if (!act.empty()) visit(level, newly, batch, batch_begin);
    active_global = comm.allreduce_sum<std::uint64_t>(act.size());

    engine::FrontierRoundInfo finfo;
    finfo.rep = "bitmap";  // batch masks are always the dense representation
    finfo.dir = engine::frontier_dir_label(dir);
    finfo.density = g.n_global() > 0 ? static_cast<double>(processed) /
                                           static_cast<double>(g.n_global())
                                     : 0.0;
    finfo.crossover = crossover;
    ltrace.end(static_cast<std::uint64_t>(level - 1), processed,
               active_global, pull ? "dense" : "queue", finfo);
  }

  if (visited) {
    std::uint64_t local = 0;
    for (lvid_t v = 0; v < n_loc; ++v)
      local += static_cast<std::uint64_t>(std::popcount(seen[v]));
    *visited += comm.allreduce_sum(local);
  }
  return num_levels;
}

}  // namespace

MsBfsResult msbfs_visit(const DistGraph& g, Communicator& comm,
                        std::span<const gvid_t> roots,
                        const MsBfsOptions& opts,
                        const MsBfsLevelVisitor& visit) {
  HG_CHECK_MSG(opts.batch_size >= 1 && opts.batch_size <= kMsBfsMaxBatch,
               "MS-BFS batch size must be in [1, 64], got "
                   << opts.batch_size);
  HG_CHECK(opts.dense_threshold >= 0.0);

  ScopedPool pf(opts.common);
  ThreadPool& tp = pf.get();

  // One exchange plan serves every batch; callers looping over many calls
  // (harmonic_top_k, harmonic_approx) inject a longer-lived one instead.
  std::optional<GhostExchange> own;
  GhostExchange* gx = opts.exchange;
  if (gx != nullptr) {
    HG_CHECK_MSG(gx->adjacency() == dgraph::Adjacency::kBoth,
                 "reused MS-BFS exchange plan must be built with "
                 "Adjacency::kBoth");
  } else {
    own.emplace(g, comm, dgraph::Adjacency::kBoth, opts.common.pool);
    gx = &*own;
  }
  gx->set_schedule(opts.common.schedule);

  MsBfsResult res;
  res.n_roots = roots.size();
  for (std::size_t b = 0; b < roots.size(); b += opts.batch_size) {
    const std::size_t len = std::min(opts.batch_size, roots.size() - b);
    const int levels = run_batch(g, comm, *gx, roots.subspan(b, len), b, opts,
                                 tp, visit, &res.visited);
    res.num_levels = std::max(res.num_levels, levels);
  }
  return res;
}

MsBfsResult msbfs(const DistGraph& g, Communicator& comm,
                  std::span<const gvid_t> roots, const MsBfsOptions& opts) {
  const lvid_t n_loc = g.n_loc();
  std::vector<std::int64_t> level(roots.size() * n_loc, kUnvisited);
  MsBfsResult res = msbfs_visit(
      g, comm, roots, opts,
      [&](std::int64_t lv, std::span<const std::uint64_t> newly,
          std::span<const gvid_t>, std::size_t batch_begin) {
        for (lvid_t v = 0; v < n_loc; ++v) {
          bits::for_each_set_bit(newly[v], [&](std::size_t j) {
            level[(batch_begin + j) * n_loc + v] = lv;
          });
        }
      });
  res.level = std::move(level);
  return res;
}

}  // namespace hpcgraph::analytics
