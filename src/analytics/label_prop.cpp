#include "analytics/label_prop.hpp"

#include "engine/superstep.hpp"
#include "util/atomics.hpp"
#include "util/label_counter.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostMode;
using engine::StepContext;

namespace {

/// ValueKernel: one label-update sweep (paper Algorithm 1).  Exchanged value
/// is the per-vertex label; changed vertices are marked on the engine's
/// exchange plan to feed the sparse/adaptive wire format.
struct LabelPropKernel {
  const DistGraph& g;
  const LabelPropOptions& opts;
  std::vector<std::uint64_t> labels;  // locals + ghosts (exchanged)
  std::vector<std::uint64_t> prev;    // pre-round snapshot (Jacobi reads it)
  ChunkGrid full_grid, bnd_grid, int_grid;  // degree-weighted (built lazily)

  using Value = std::uint64_t;
  // Overlap-safe in the default Jacobi mode: every vertex's new label is a
  // pure function of the pre-round snapshot, so the boundary and interior
  // sweeps commute.  The in-place Gauss-Seidel sweep is order-dependent
  // (later vertices read earlier updates), so it vetoes at runtime.
  static constexpr bool kOverlapSafe = true;
  bool overlap_ok() const { return !opts.in_place; }
  // Schedule-aware in Jacobi mode for the same reason: the sweep is a pure
  // per-vertex function of the snapshot, so labels are bit-identical under
  // any chunk grid.  In-place Gauss-Seidel depends on sweep order and vetoes
  // (it keeps the legacy static split).
  static constexpr bool kScheduleAware = true;
  bool schedule_ok() const { return !opts.in_place; }

  LabelPropKernel(const DistGraph& g_, const LabelPropOptions& o)
      : g(g_), opts(o), labels(g_.n_total()) {
    for (lvid_t l = 0; l < g.n_total(); ++l) labels[l] = g.global_id(l);
  }

  // Labels flow both directions -> boundary set w.r.t. in+out adjacency.
  Adjacency adjacency() const { return Adjacency::kBoth; }
  GhostMode ghost_mode() const { return opts.common.ghost_mode; }
  bool retain_queues() const { return opts.retain_queues; }
  std::span<std::uint64_t> values() { return labels; }

  void compute(StepContext& ctx) {
    const std::uint64_t round_seed = opts.tie_seed + ctx.superstep;

    // Jacobi reads the pre-round snapshot (locals + ghosts) and writes
    // labels[] directly — equivalent to the classic next-buffer + copy, and
    // it keeps the freshly-written boundary labels visible to the engine's
    // exchange pack while the interior sweep still reads old values.  The
    // snapshot is taken once per round: in the full sweep, or the boundary
    // phase (which the overlapped schedule runs first).
    const bool jacobi = !opts.in_place;
    if (jacobi && ctx.sweep != engine::SweepPhase::kInterior)
      prev.assign(labels.begin(), labels.end());
    const std::vector<std::uint64_t>& read = jacobi ? prev : labels;

    RelaxedCounter changed;
    const auto sweep_one = [&](lvid_t v, LabelCounter& lmap,
                               std::uint64_t& changed_chunk) {
      lmap.clear();
      for (const lvid_t u : g.out_neighbors(v)) lmap.add(read[u]);
      for (const lvid_t u : g.in_neighbors(v)) lmap.add(read[u]);
      const std::uint64_t picked = lmap.argmax(round_seed, read[v]);
      if (picked != read[v]) {
        ++changed_chunk;
        ctx.gx->mark_changed(v);  // feeds the sparse/adaptive wire format
      }
      labels[v] = picked;  // Gauss-Seidel when read aliases labels
    };
    // Per-vertex sweep cost is out+in degree, so the grids are weighted by
    // the combined-degree prefix; one grid per sweep slice, built lazily
    // (the boundary/interior lists are fixed for the run).
    if (ctx.sweep == engine::SweepPhase::kFull) {
      if (full_grid.empty() && g.n_loc() > 0)
        full_grid = make_grid(ctx.schedule, g.n_loc(), both_degree_prefix(g),
                              ctx.pool.num_threads());
      ctx.pool.for_ranges(full_grid, ctx.schedule,
                          [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                            LabelCounter lmap;
                            std::uint64_t changed_chunk = 0;
                            for (std::uint64_t vi = lo; vi < hi; ++vi)
                              sweep_one(static_cast<lvid_t>(vi), lmap,
                                        changed_chunk);
                            if (changed_chunk) changed.add(changed_chunk);
                          });
      ctx.touched_local += g.n_loc();
    } else {
      const std::span<const lvid_t> verts = ctx.sweep_vertices;
      ChunkGrid& grid =
          ctx.sweep == engine::SweepPhase::kBoundary ? bnd_grid : int_grid;
      if (grid.empty() && !verts.empty())
        grid = make_grid(ctx.schedule, verts.size(),
                         list_both_degree_prefix(g, verts),
                         ctx.pool.num_threads());
      ctx.pool.for_ranges(grid, ctx.schedule,
                          [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                            LabelCounter lmap;
                            std::uint64_t changed_chunk = 0;
                            for (std::uint64_t i = lo; i < hi; ++i)
                              sweep_one(verts[i], lmap, changed_chunk);
                            if (changed_chunk) changed.add(changed_chunk);
                          });
      ctx.touched_local += verts.size();
    }

    ctx.active_local += changed.load();
  }

  bool converged(std::uint64_t active_global, double) const {
    return opts.stop_when_stable && active_global == 0;
  }
};

}  // namespace

LabelPropResult label_propagation(const DistGraph& g,
                                  parcomm::Communicator& comm,
                                  const LabelPropOptions& opts) {
  LabelPropKernel kernel(g, opts);
  engine::SuperstepEngine eng(
      g, comm,
      engine_config(opts.common, "label_prop",
                    static_cast<std::uint64_t>(opts.iterations)));
  const engine::EngineResult er = eng.run_value(kernel);

  LabelPropResult res;
  res.iterations_run = static_cast<int>(er.supersteps);
  res.labels.assign(kernel.labels.begin(), kernel.labels.begin() + g.n_loc());
  return res;
}

}  // namespace hpcgraph::analytics
