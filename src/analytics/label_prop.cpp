#include "analytics/label_prop.hpp"

#include "engine/superstep.hpp"
#include "util/atomics.hpp"
#include "util/label_counter.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostMode;
using engine::StepContext;

namespace {

/// ValueKernel: one label-update sweep (paper Algorithm 1).  Exchanged value
/// is the per-vertex label; changed vertices are marked on the engine's
/// exchange plan to feed the sparse/adaptive wire format.
struct LabelPropKernel {
  const DistGraph& g;
  const LabelPropOptions& opts;
  std::vector<std::uint64_t> labels;  // locals + ghosts (exchanged)
  std::vector<std::uint64_t> next;    // Jacobi buffer (opts.in_place == false)

  using Value = std::uint64_t;

  LabelPropKernel(const DistGraph& g_, const LabelPropOptions& o)
      : g(g_), opts(o), labels(g_.n_total()), next(g_.n_loc()) {
    for (lvid_t l = 0; l < g.n_total(); ++l) labels[l] = g.global_id(l);
  }

  // Labels flow both directions -> boundary set w.r.t. in+out adjacency.
  Adjacency adjacency() const { return Adjacency::kBoth; }
  GhostMode ghost_mode() const { return opts.common.ghost_mode; }
  bool retain_queues() const { return opts.retain_queues; }
  std::span<std::uint64_t> values() { return labels; }

  void compute(StepContext& ctx) {
    const std::uint64_t round_seed = opts.tie_seed + ctx.superstep;

    RelaxedCounter changed;
    ctx.pool.for_range(0, g.n_loc(), [&](unsigned, std::uint64_t lo,
                                         std::uint64_t hi) {
      LabelCounter lmap;
      std::uint64_t changed_chunk = 0;
      for (std::uint64_t vi = lo; vi < hi; ++vi) {
        const lvid_t v = static_cast<lvid_t>(vi);
        lmap.clear();
        for (const lvid_t u : g.out_neighbors(v)) lmap.add(labels[u]);
        for (const lvid_t u : g.in_neighbors(v)) lmap.add(labels[u]);
        const std::uint64_t picked = lmap.argmax(round_seed, labels[v]);
        if (picked != labels[v]) {
          ++changed_chunk;
          ctx.gx->mark_changed(v);  // feeds the sparse/adaptive wire format
        }
        if (opts.in_place) {
          labels[v] = picked;  // Gauss-Seidel within the task (paper Alg. 1)
        } else {
          next[vi] = picked;
        }
      }
      if (changed_chunk) changed.add(changed_chunk);
    });
    if (!opts.in_place)
      std::copy(next.begin(), next.end(), labels.begin());

    ctx.active_local = changed.load();
    ctx.touched_local = g.n_loc();
  }

  bool converged(std::uint64_t active_global, double) const {
    return opts.stop_when_stable && active_global == 0;
  }
};

}  // namespace

LabelPropResult label_propagation(const DistGraph& g,
                                  parcomm::Communicator& comm,
                                  const LabelPropOptions& opts) {
  LabelPropKernel kernel(g, opts);
  engine::SuperstepEngine eng(
      g, comm,
      engine_config(opts.common, "label_prop",
                    static_cast<std::uint64_t>(opts.iterations)));
  const engine::EngineResult er = eng.run_value(kernel);

  LabelPropResult res;
  res.iterations_run = static_cast<int>(er.supersteps);
  res.labels.assign(kernel.labels.begin(), kernel.labels.begin() + g.n_loc());
  return res;
}

}  // namespace hpcgraph::analytics
