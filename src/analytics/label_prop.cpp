#include "analytics/label_prop.hpp"

#include <atomic>

#include "util/label_counter.hpp"

namespace hpcgraph::analytics {

using dgraph::Adjacency;
using dgraph::DistGraph;
using dgraph::GhostExchange;
using parcomm::Communicator;

LabelPropResult label_propagation(const DistGraph& g, Communicator& comm,
                                  const LabelPropOptions& opts) {
  ScopedPool pf(opts.common);
  ThreadPool& tp = pf.get();

  // Labels flow both directions -> boundary set w.r.t. in+out adjacency.
  GhostExchange gx(g, comm, Adjacency::kBoth, opts.common.pool);

  std::vector<std::uint64_t> labels(g.n_total());
  for (lvid_t l = 0; l < g.n_total(); ++l) labels[l] = g.global_id(l);
  std::vector<std::uint64_t> next(g.n_loc());

  LabelPropResult res;
  for (int it = 0; it < opts.iterations; ++it) {
    const std::uint64_t round_seed =
        opts.tie_seed + static_cast<std::uint64_t>(it);

    std::atomic<bool> changed{false};
    tp.for_range(0, g.n_loc(), [&](unsigned, std::uint64_t lo,
                                   std::uint64_t hi) {
      LabelCounter lmap;
      bool changed_chunk = false;
      for (std::uint64_t vi = lo; vi < hi; ++vi) {
        const lvid_t v = static_cast<lvid_t>(vi);
        lmap.clear();
        for (const lvid_t u : g.out_neighbors(v)) lmap.add(labels[u]);
        for (const lvid_t u : g.in_neighbors(v)) lmap.add(labels[u]);
        const std::uint64_t picked = lmap.argmax(round_seed, labels[v]);
        if (picked != labels[v]) {
          changed_chunk = true;
          gx.mark_changed(v);  // feeds the sparse/adaptive wire format
        }
        if (opts.in_place) {
          labels[v] = picked;  // Gauss-Seidel within the task (paper Alg. 1)
        } else {
          next[vi] = picked;
        }
      }
      if (changed_chunk) changed.store(true, std::memory_order_relaxed);
    });
    if (!opts.in_place)
      std::copy(next.begin(), next.end(), labels.begin());

    if (opts.retain_queues) {
      gx.exchange<std::uint64_t>(labels, comm, opts.common.ghost_mode);
    } else {
      // Rebuild ablation: a fresh queue has no change history, so the
      // sparse contract (unmarked ghosts already mirror owners) cannot be
      // asserted; always go dense.
      GhostExchange fresh(g, comm, Adjacency::kBoth, opts.common.pool);
      fresh.exchange<std::uint64_t>(labels, comm);
    }
    ++res.iterations_run;

    if (opts.stop_when_stable &&
        !comm.allreduce_lor(changed.load(std::memory_order_relaxed)))
      break;
  }

  res.labels.assign(labels.begin(), labels.begin() + g.n_loc());
  return res;
}

}  // namespace hpcgraph::analytics
