#include "analytics/harmonic.hpp"

#include <algorithm>

#include "analytics/bfs.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

double harmonic_centrality(const DistGraph& g, Communicator& comm, gvid_t v,
                           const HarmonicOptions& opts) {
  BfsOptions bopts;
  bopts.dir = Dir::kOut;
  bopts.common = opts.common;
  const BfsResult b = bfs(g, comm, v, bopts);

  double sum_local = 0;
  for (lvid_t u = 0; u < g.n_loc(); ++u)
    if (b.level[u] > 0)  // level 0 is v itself
      sum_local += 1.0 / static_cast<double>(b.level[u]);
  return comm.allreduce_sum(sum_local);
}

std::vector<ScoredVertex> harmonic_top_k(const DistGraph& g,
                                         Communicator& comm, std::size_t k,
                                         const HarmonicOptions& opts) {
  // ---- Distributed top-k by total degree: local top-k, then a global
  // merge over the (k * nranks)-candidate union. ----
  struct DegGid {
    std::uint64_t deg;
    gvid_t gid;
  };
  std::vector<DegGid> local(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    local[v] = {g.out_degree(v) + g.in_degree(v), g.global_id(v)};
  const auto by_degree = [](const DegGid& a, const DegGid& b) {
    if (a.deg != b.deg) return a.deg > b.deg;
    return a.gid < b.gid;
  };
  const std::size_t keep = std::min(k, local.size());
  std::partial_sort(local.begin(), local.begin() + keep, local.end(),
                    by_degree);
  local.resize(keep);

  std::vector<DegGid> candidates = comm.allgatherv<DegGid>(local);
  std::sort(candidates.begin(), candidates.end(), by_degree);
  if (candidates.size() > k) candidates.resize(k);

  // ---- One BFS per selected vertex. ----
  std::vector<ScoredVertex> out;
  out.reserve(candidates.size());
  for (const DegGid& c : candidates)
    out.push_back({c.gid, harmonic_centrality(g, comm, c.gid, opts)});
  std::sort(out.begin(), out.end(),
            [](const ScoredVertex& a, const ScoredVertex& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.gid < b.gid;
            });
  return out;
}

}  // namespace hpcgraph::analytics
