#include "analytics/harmonic.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <unordered_set>

#include "analytics/bfs.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "util/bitmask64.hpp"
#include "util/rng.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

double harmonic_centrality(const DistGraph& g, Communicator& comm, gvid_t v,
                           const HarmonicOptions& opts) {
  BfsOptions bopts;
  bopts.dir = Dir::kOut;
  bopts.common = opts.common;
  const BfsResult b = bfs(g, comm, v, bopts);

  double sum_local = 0;
  for (lvid_t u = 0; u < g.n_loc(); ++u)
    if (b.level[u] > 0)  // level 0 is v itself
      sum_local += 1.0 / static_cast<double>(b.level[u]);
  return comm.allreduce_sum(sum_local);
}

namespace {

/// Batched scoring: ⌈k/64⌉ MS-BFS sweeps over the candidate roots, each
/// level's discovery masks contributing 1/level to their roots' sums.
/// One allgatherv folds all per-rank partial sums at the end.
std::vector<double> score_batched(const DistGraph& g, Communicator& comm,
                                  std::span<const gvid_t> roots,
                                  const HarmonicOptions& opts) {
  // The exchange plan is hoisted out of the batch loop: every batch (and
  // any caller reusing this plan) shares one retained-queue setup.
  dgraph::GhostExchange gx(g, comm, dgraph::Adjacency::kBoth,
                           opts.common.pool);
  MsBfsOptions mo;
  mo.dir = Dir::kOut;
  mo.batch_size = opts.batch_size;
  mo.dense_threshold = opts.dense_threshold;
  mo.exchange = &gx;
  mo.common = opts.common;

  std::vector<double> local(roots.size(), 0.0);
  msbfs_visit(g, comm, roots, mo,
              [&](std::int64_t level, std::span<const std::uint64_t> newly,
                  std::span<const gvid_t>, std::size_t batch_begin) {
                if (level == 0) return;  // the roots themselves
                const double inv = 1.0 / static_cast<double>(level);
                for (lvid_t v = 0; v < g.n_loc(); ++v)
                  bits::for_each_set_bit(newly[v], [&](std::size_t j) {
                    local[batch_begin + j] += inv;
                  });
              });

  const std::vector<double> all = comm.allgatherv<double>(local);
  std::vector<double> score(roots.size(), 0.0);
  for (int r = 0; r < comm.size(); ++r)
    for (std::size_t i = 0; i < score.size(); ++i)
      score[i] += all[static_cast<std::size_t>(r) * score.size() + i];
  return score;
}

}  // namespace

std::vector<ScoredVertex> harmonic_top_k(const DistGraph& g,
                                         Communicator& comm, std::size_t k,
                                         const HarmonicOptions& opts) {
  // ---- Distributed top-k by total degree: local top-k, then a global
  // merge over the (k * nranks)-candidate union. ----
  struct DegGid {
    std::uint64_t deg;
    gvid_t gid;
  };
  std::vector<DegGid> local(g.n_loc());
  for (lvid_t v = 0; v < g.n_loc(); ++v)
    local[v] = {g.out_degree(v) + g.in_degree(v), g.global_id(v)};
  const auto by_degree = [](const DegGid& a, const DegGid& b) {
    if (a.deg != b.deg) return a.deg > b.deg;
    return a.gid < b.gid;
  };
  const std::size_t keep = std::min(k, local.size());
  std::partial_sort(local.begin(), local.begin() + keep, local.end(),
                    by_degree);
  local.resize(keep);

  std::vector<DegGid> candidates = comm.allgatherv<DegGid>(local);
  std::sort(candidates.begin(), candidates.end(), by_degree);
  if (candidates.size() > k) candidates.resize(k);

  // ---- Score the selected vertices. ----
  std::vector<ScoredVertex> out;
  out.reserve(candidates.size());
  if (opts.batched && !candidates.empty()) {
    std::vector<gvid_t> roots(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
      roots[i] = candidates[i].gid;
    const std::vector<double> score = score_batched(g, comm, roots, opts);
    for (std::size_t i = 0; i < roots.size(); ++i)
      out.push_back({roots[i], score[i]});
  } else {
    // Per-source reference path: one BFS per selected vertex.
    for (const DegGid& c : candidates)
      out.push_back({c.gid, harmonic_centrality(g, comm, c.gid, opts)});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredVertex& a, const ScoredVertex& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.gid < b.gid;
            });
  return out;
}

HarmonicApproxResult harmonic_approx(const DistGraph& g, Communicator& comm,
                                     const HarmonicApproxOptions& opts) {
  HG_CHECK_MSG(opts.n_samples >= 1, "harmonic_approx needs >= 1 sample");
  HarmonicApproxResult res;
  res.score.assign(g.n_loc(), 0.0);
  const gvid_t n = g.n_global();
  if (n == 0) return res;
  const gvid_t s = std::min<gvid_t>(opts.n_samples, n);

  // ---- Rank 0 draws s distinct targets; everyone gets the same list. ----
  std::vector<gvid_t> samples;
  if (comm.rank() == 0) {
    Rng rng(opts.seed);
    if (s >= n) {
      samples.resize(n);
      std::iota(samples.begin(), samples.end(), gvid_t{0});
    } else if (s * 2 >= n) {
      // Dense draw: partial Fisher-Yates over the full id range.
      std::vector<gvid_t> pool(n);
      std::iota(pool.begin(), pool.end(), gvid_t{0});
      for (gvid_t i = 0; i < s; ++i)
        std::swap(pool[i], pool[i + rng.below(n - i)]);
      samples.assign(pool.begin(), pool.begin() + s);
    } else {
      // Sparse draw: rejection sampling (expected < 2 draws per sample).
      std::unordered_set<gvid_t> taken;
      while (samples.size() < s) {
        const gvid_t c = rng.below(n);
        if (taken.insert(c).second) samples.push_back(c);
      }
    }
  }
  res.samples = comm.broadcast_vec<gvid_t>(samples, 0);

  // ---- Distances *toward* each target: reverse (in-edge) MS-BFS, so bit j
  // reaching v at level L means d(v, sample_j) = L along out-edges. ----
  dgraph::GhostExchange gx(g, comm, dgraph::Adjacency::kBoth,
                           opts.common.pool);
  MsBfsOptions mo;
  mo.dir = Dir::kIn;
  mo.batch_size = opts.batch_size;
  mo.dense_threshold = opts.dense_threshold;
  mo.exchange = &gx;
  mo.common = opts.common;
  const MsBfsResult r = msbfs_visit(
      g, comm, res.samples, mo,
      [&](std::int64_t level, std::span<const std::uint64_t> newly,
          std::span<const gvid_t>, std::size_t) {
        if (level == 0) return;  // d(v, v) = 0 contributes nothing
        const double inv = 1.0 / static_cast<double>(level);
        for (lvid_t v = 0; v < g.n_loc(); ++v)
          if (newly[v] != 0)
            res.score[v] += inv * std::popcount(newly[v]);
      });
  res.num_levels = r.num_levels;

  // Unbiased estimator of sum over all u of 1/d(v, u): uniform targets,
  // scaled by n/s.  s == n degenerates to the exact sum (scale 1).
  const double scale = static_cast<double>(n) / static_cast<double>(s);
  for (double& x : res.score) x *= scale;
  return res;
}

}  // namespace hpcgraph::analytics
