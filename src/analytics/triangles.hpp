#pragma once
/// \file triangles.hpp
/// Distributed triangle counting — a further entry for the paper's §VII
/// "extend this collection of analytics" direction.
///
/// Counts distinct vertex triples {a, b, c} that are pairwise adjacent in
/// the *undirected, deduplicated* view (edge direction, parallel edges and
/// self loops ignored — the standard convention).
///
/// Algorithm: degree-ordered wedge checking.  Every undirected edge is
/// oriented from its lower-(degree, id) endpoint to the higher one; each
/// rank enumerates the oriented wedges (a, b) around its local vertices and
/// ships each to owner(a), which answers by binary-searching its own
/// oriented adjacency — so each triangle is counted exactly once, at its
/// lowest-ranked corner, and the wedge volume is bounded by the oriented
/// degree squared (small on skewed graphs thanks to the orientation).
/// Communication is one degree exchange plus one wedge Alltoallv — the
/// BFS-like class with payload (a, b) pairs.

#include <cstdint>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

struct TriangleOptions {
  CommonOptions common;
};

struct TriangleResult {
  std::uint64_t triangles = 0;      ///< global distinct-triple count
  std::uint64_t wedges_checked = 0; ///< global closing queries issued
};

/// Collective.
TriangleResult triangle_count(const dgraph::DistGraph& g,
                              parcomm::Communicator& comm,
                              const TriangleOptions& opts = {});

}  // namespace hpcgraph::analytics
