#pragma once
/// \file pagerank.hpp
/// Distributed PageRank by power iteration — the paper's prototypical
/// "PageRank-like" analytic (§III-D1).
///
/// Per iteration each owner computes, for every local vertex u, the
/// contribution d * rank(u) / outdeg(u) and pushes it to every task holding
/// u as an in-neighbour ghost, through the *retained* queues of
/// dgraph::GhostExchange (ids shipped once, values refreshed per iteration —
/// the paper's halve-the-bytes optimization).  Dangling mass is collected
/// with one Allreduce and redistributed uniformly.
///
/// Stopping: fixed iteration count or an L1-delta tolerance, whichever hits
/// first (the paper uses "a user-defined tolerance setting on error" and
/// reports per-iteration times).

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"
#include "dgraph/ghost_exchange.hpp"

namespace hpcgraph::analytics {

struct PageRankOptions {
  int max_iterations = 10;
  double damping = 0.85;
  /// Stop early when the global L1 change drops below this (0 = never).
  double tolerance = 0.0;
  /// Ablation: rebuild the send queues every iteration instead of retaining
  /// them (quantifies the §III-D1 optimization).
  bool retain_queues = true;
  CommonOptions common;
};

struct PageRankResult {
  /// Per local vertex scores; global sum ~= 1.
  std::vector<double> scores;
  int iterations_run = 0;
  double l1_delta = 0;  ///< L1 change of the final iteration
};

/// Collective.
PageRankResult pagerank(const dgraph::DistGraph& g,
                        parcomm::Communicator& comm,
                        const PageRankOptions& opts = {});

}  // namespace hpcgraph::analytics
