#pragma once
/// \file scc.hpp
/// Largest strongly connected component by the Forward–Backward method
/// (Fleischer, Hendrickson, Pinar — the paper's [9]): pick a pivot likely to
/// sit in the giant SCC (maximum in-degree × out-degree product), run one
/// forward BFS (out-edges) and one backward BFS (in-edges); the intersection
/// of the two reachability sets is exactly the SCC containing the pivot.
/// Both sweeps are instances of the Algorithm-2 BFS engine.

#include <cstdint>
#include <vector>

#include "analytics/common.hpp"

namespace hpcgraph::analytics {

struct SccOptions {
  /// Pivot override (kNullGvid = choose by max degree product).
  gvid_t pivot = kNullGvid;
  /// Trim step (Multistep-style, the paper's [31]): iteratively discard
  /// vertices with zero in- or zero out-degree in the remaining subgraph —
  /// all singleton SCCs — before pivot selection and the two sweeps.
  /// Shrinks the sweeps and keeps the pivot off trivial SCCs.
  bool trim = false;
  CommonOptions common;
};

struct SccResult {
  /// Per local vertex: 1 if in the pivot's SCC.
  std::vector<std::uint8_t> member;
  gvid_t pivot = kNullGvid;
  gvid_t label = kNullGvid;   ///< min global id in the SCC
  std::uint64_t size = 0;     ///< global SCC size
  std::uint64_t fw_reached = 0, bw_reached = 0;
  int fw_levels = 0, bw_levels = 0;
  std::uint64_t trimmed = 0;  ///< vertices discarded by the trim step
  int trim_sweeps = 0;
};

/// Collective.  Extracts the SCC containing the pivot (with the default
/// pivot heuristic, the largest SCC on web-like graphs).
SccResult largest_scc(const dgraph::DistGraph& g, parcomm::Communicator& comm,
                      const SccOptions& opts = {});

namespace detail {
/// Multistep-style trim shared by largest_scc and scc_decompose: discard
/// alive vertices whose in- or out-degree within the alive subgraph is zero
/// (each is a singleton SCC).  Updates `alive`; returns local removals.
std::uint64_t trim_trivial_sccs(const dgraph::DistGraph& g,
                                parcomm::Communicator& comm,
                                std::vector<std::uint8_t>& alive,
                                std::size_t qsize, int* sweeps);
}  // namespace detail

}  // namespace hpcgraph::analytics
