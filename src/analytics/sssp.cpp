#include "analytics/sssp.hpp"

#include "engine/frontier.hpp"
#include "engine/superstep.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

namespace {

/// FrontierKernel: one Bellman-Ford relaxation round.  The active set is a
/// DistFrontier plus a dense re-activation flag (vertices can re-activate,
/// unlike BFS, so the kQueued claim trick does not apply); remote
/// relaxations route to the owners through engine::route_to_owners.
///
/// Order-sensitive: the distance fixpoint is order-independent (exact
/// integer minima), but the *round count* depends on the relax order within
/// a round, so the hybrid policy pins the queue representation to keep
/// default runs bit-identical.  Forcing kBitmap keeps dist/reached exact
/// and may change `rounds`.
struct SsspKernel {
  const DistGraph& g;
  const SsspOptions& opts;
  std::vector<std::uint64_t>& dist;   // result array, locals only
  std::vector<std::uint8_t> active;
  engine::DistFrontier cur, next;

  SsspKernel(const DistGraph& g_, const SsspOptions& o,
             std::vector<std::uint64_t>& d)
      : g(g_), opts(o), dist(d), active(g_.n_loc(), 0),
        cur(g_.n_loc()), next(g_.n_loc()) {}

  engine::FrontierPolicy frontier_policy() const {
    engine::FrontierPolicy p;
    p.order_sensitive = true;  // round count depends on relax order
    return p;
  }

  engine::DistFrontier* frontier() { return &cur; }

  std::uint64_t active_local() const { return cur.size(); }

  void step(engine::FrontierStepContext& ctx) {
    ctx.touched_local = cur.size();

    struct Relax {
      gvid_t gid;
      std::uint64_t dist;
    };

    // ---- Relax out-edges of the frontier. ----
    std::vector<Relax> remote;
    next.clear();
    const auto relax_local = [&](lvid_t u, std::uint64_t cand) {
      if (cand < dist[u]) {
        dist[u] = cand;
        if (!active[u]) {
          active[u] = 1;
          next.push(u);
        }
      }
    };
    cur.for_each([&](lvid_t v) {
      active[v] = 0;
      const gvid_t vg = g.global_id(v);
      const std::uint64_t base = dist[v];
      for (const lvid_t u : g.out_neighbors(v)) {
        const gvid_t ug = g.global_id(u);
        const std::uint64_t cand = base + edge_weight(vg, ug, opts.max_weight);
        if (g.is_ghost(u)) {
          remote.push_back({ug, cand});
        } else {
          relax_local(u, cand);
        }
      }
    });
    // Frontier vertices may also appear in `next` (re-improved by a
    // same-round local relaxation) — handled by the active flag.

    // ---- Ship remote relaxations to the owners. ----
    const std::vector<Relax> recv = engine::route_to_owners<Relax>(
        ctx.comm, remote,
        [&](const Relax& r) { return g.owner_of_global(r.gid); },
        opts.common.qsize);
    for (const Relax& r : recv)
      relax_local(g.local_id_checked(r.gid), r.dist);

    cur.swap(next);
  }
};

}  // namespace

SsspResult sssp(const DistGraph& g, Communicator& comm, gvid_t root,
                const SsspOptions& opts) {
  HG_CHECK(root < g.n_global());

  SsspResult res;
  res.dist.assign(g.n_loc(), kInfDistance);

  SsspKernel kernel(g, opts, res.dist);
  if (g.owner_of_global(root) == comm.rank()) {
    const lvid_t l = g.local_id_checked(root);
    res.dist[l] = 0;
    kernel.active[l] = 1;
    kernel.cur.push(l);
  }

  engine::SuperstepEngine eng(g, comm, engine_config(opts.common, "sssp"));
  const engine::EngineResult er = eng.run_frontier(kernel);
  res.rounds = static_cast<int>(er.supersteps);

  std::uint64_t reached_local = 0;
  for (const std::uint64_t d : res.dist)
    if (d != kInfDistance) ++reached_local;
  res.reached = comm.allreduce_sum(reached_local);
  return res;
}

}  // namespace hpcgraph::analytics
