#include "analytics/sssp.hpp"

#include "engine/superstep.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

namespace {

/// FrontierKernel: one Bellman-Ford relaxation round.  The active set is a
/// dense flag + list (vertices can re-activate, unlike BFS, so the kQueued
/// claim trick does not apply); remote relaxations route to the owners
/// through Algorithm-3 thread-local queues + one Alltoallv.
struct SsspKernel {
  const DistGraph& g;
  const SsspOptions& opts;
  std::vector<std::uint64_t>& dist;   // result array, locals only
  std::vector<std::uint8_t> active;
  std::vector<lvid_t> frontier, frontier_next;

  SsspKernel(const DistGraph& g_, const SsspOptions& o,
             std::vector<std::uint64_t>& d)
      : g(g_), opts(o), dist(d), active(g_.n_loc(), 0) {}

  std::uint64_t active_local() const { return frontier.size(); }

  void step(engine::StepContext& ctx) {
    ctx.touched_local = frontier.size();
    const int p = ctx.comm.size();

    struct Relax {
      gvid_t gid;
      std::uint64_t dist;
    };

    // ---- Relax out-edges of the frontier. ----
    std::vector<Relax> remote;
    frontier_next.clear();
    const auto relax_local = [&](lvid_t u, std::uint64_t cand) {
      if (cand < dist[u]) {
        dist[u] = cand;
        if (!active[u]) {
          active[u] = 1;
          frontier_next.push_back(u);
        }
      }
    };
    for (const lvid_t v : frontier) {
      active[v] = 0;
      const gvid_t vg = g.global_id(v);
      const std::uint64_t base = dist[v];
      for (const lvid_t u : g.out_neighbors(v)) {
        const gvid_t ug = g.global_id(u);
        const std::uint64_t cand = base + edge_weight(vg, ug, opts.max_weight);
        if (g.is_ghost(u)) {
          remote.push_back({ug, cand});
        } else {
          relax_local(u, cand);
        }
      }
    }
    // Vertices in `frontier` may also appear in frontier_next (re-improved
    // by a same-round local relaxation) — handled by the active flag.

    // ---- Ship remote relaxations to the owners. ----
    std::vector<std::uint64_t> counts(p, 0);
    for (const Relax& r : remote) ++counts[g.owner_of_global(r.gid)];
    MultiQueue<Relax> q(counts);
    {
      MultiQueue<Relax>::Sink sink(q, opts.common.qsize);
      for (const Relax& r : remote)
        sink.push(static_cast<std::uint32_t>(g.owner_of_global(r.gid)), r);
    }
    const std::vector<Relax> recv =
        ctx.comm.alltoallv<Relax>(q.buffer(), counts);
    for (const Relax& r : recv)
      relax_local(g.local_id_checked(r.gid), r.dist);

    std::swap(frontier, frontier_next);
  }
};

}  // namespace

SsspResult sssp(const DistGraph& g, Communicator& comm, gvid_t root,
                const SsspOptions& opts) {
  HG_CHECK(root < g.n_global());

  SsspResult res;
  res.dist.assign(g.n_loc(), kInfDistance);

  SsspKernel kernel(g, opts, res.dist);
  if (g.owner_of_global(root) == comm.rank()) {
    const lvid_t l = g.local_id_checked(root);
    res.dist[l] = 0;
    kernel.active[l] = 1;
    kernel.frontier.push_back(l);
  }

  engine::SuperstepEngine eng(g, comm, engine_config(opts.common, "sssp"));
  const engine::EngineResult er = eng.run_frontier(kernel);
  res.rounds = static_cast<int>(er.supersteps);

  std::uint64_t reached_local = 0;
  for (const std::uint64_t d : res.dist)
    if (d != kInfDistance) ++reached_local;
  res.reached = comm.allreduce_sum(reached_local);
  return res;
}

}  // namespace hpcgraph::analytics
