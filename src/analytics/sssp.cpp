#include "analytics/sssp.hpp"

#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

using dgraph::DistGraph;
using parcomm::Communicator;

SsspResult sssp(const DistGraph& g, Communicator& comm, gvid_t root,
                const SsspOptions& opts) {
  HG_CHECK(root < g.n_global());
  const int p = comm.size();
  const int me = comm.rank();

  SsspResult res;
  res.dist.assign(g.n_loc(), kInfDistance);

  // Active set as a dense flag + list (vertices can re-activate, unlike
  // BFS, so the kQueued claim trick does not apply).
  std::vector<std::uint8_t> active(g.n_loc(), 0);
  std::vector<lvid_t> frontier, frontier_next;

  if (g.owner_of_global(root) == me) {
    const lvid_t l = g.local_id_checked(root);
    res.dist[l] = 0;
    active[l] = 1;
    frontier.push_back(l);
  }

  struct Relax {
    gvid_t gid;
    std::uint64_t dist;
  };

  std::uint64_t global_active = comm.allreduce_sum<std::uint64_t>(frontier.size());
  while (global_active != 0) {
    ++res.rounds;

    // ---- Relax out-edges of the frontier. ----
    std::vector<Relax> remote;
    frontier_next.clear();
    const auto relax_local = [&](lvid_t u, std::uint64_t cand) {
      if (cand < res.dist[u]) {
        res.dist[u] = cand;
        if (!active[u]) {
          active[u] = 1;
          frontier_next.push_back(u);
        }
      }
    };
    for (const lvid_t v : frontier) {
      active[v] = 0;
      const gvid_t vg = g.global_id(v);
      const std::uint64_t base = res.dist[v];
      for (const lvid_t u : g.out_neighbors(v)) {
        const gvid_t ug = g.global_id(u);
        const std::uint64_t cand = base + edge_weight(vg, ug, opts.max_weight);
        if (g.is_ghost(u)) {
          remote.push_back({ug, cand});
        } else {
          relax_local(u, cand);
        }
      }
    }
    // Vertices in `frontier` may also appear in frontier_next (re-improved
    // by a same-round local relaxation) — handled by the active flag.

    // ---- Ship remote relaxations to the owners. ----
    std::vector<std::uint64_t> counts(p, 0);
    for (const Relax& r : remote) ++counts[g.owner_of_global(r.gid)];
    MultiQueue<Relax> q(counts);
    {
      MultiQueue<Relax>::Sink sink(q, opts.common.qsize);
      for (const Relax& r : remote)
        sink.push(static_cast<std::uint32_t>(g.owner_of_global(r.gid)), r);
    }
    const std::vector<Relax> recv = comm.alltoallv<Relax>(q.buffer(), counts);
    for (const Relax& r : recv)
      relax_local(g.local_id_checked(r.gid), r.dist);

    std::swap(frontier, frontier_next);
    global_active = comm.allreduce_sum<std::uint64_t>(frontier.size());
  }

  std::uint64_t reached_local = 0;
  for (const std::uint64_t d : res.dist)
    if (d != kInfDistance) ++reached_local;
  res.reached = comm.allreduce_sum(reached_local);
  return res;
}

}  // namespace hpcgraph::analytics
