#pragma once
/// \file parallel_for.hpp
/// Intra-rank (shared-memory) worker pool and degree-aware loop scheduler.
///
/// Substitutes for the paper's OpenMP threading: each MPI-style rank can run
/// its vertex loops over several threads.  The pool is persistent (threads
/// are created once per rank, not per loop) because the paper's analytics
/// enter a parallel region every iteration and thread spawn cost would
/// dominate at small scale.
///
/// On scale-free inputs an equal-count static split serializes every sweep
/// behind the chunk that drew the hubs, so loops can instead run over a
/// deterministic ChunkGrid under one of three Schedule strategies:
///
///   kStatic        equal-count contiguous spans, one per thread (legacy).
///   kDynamic       fixed grain grid, chunks claimed via an atomic counter.
///   kEdgeBalanced  chunk boundaries walked along a CSR prefix array so each
///                  chunk carries ~equal edges; oversized hubs may be split
///                  into edge-slice sub-chunks.
///
/// Determinism contract: a grid is a pure function of (range, grain, prefix)
/// — never of which thread claims which chunk — and floating-point kernels
/// reduce per-chunk partials in chunk order (reduce_chunks), so results are
/// bit-identical across runs and across thread counts for the dynamic and
/// edge-balanced grids (whose geometry is thread-count independent).  The
/// static grid keeps the legacy one-chunk-per-thread geometry and is the
/// documented exception: deterministic per thread count, not across them.
/// See DESIGN.md §10.
///
/// With one thread the pool degenerates to inline execution in chunk order
/// with zero synchronization, which is the configuration used by default on
/// this single-core reproduction machine; multi-thread paths are exercised
/// by the test suite (and by CI with HPCGRAPH_POOL_THREADS=4).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace hpcgraph {

/// Loop-scheduling strategy, selectable per parallel sweep.
enum class Schedule : std::uint8_t {
  kStatic = 0,        ///< equal-count spans, one contiguous block per thread
  kDynamic = 1,       ///< fixed grain grid + atomic chunk counter
  kEdgeBalanced = 2,  ///< CSR-prefix-balanced chunks + atomic chunk counter
};

inline const char* schedule_label(Schedule s) {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kEdgeBalanced: return "edge";
  }
  return "?";
}

/// Parses "static" / "dynamic" / "edge" (alias "edge-balanced").
/// Returns false on unknown input, leaving *out untouched.
inline bool parse_schedule(std::string_view text, Schedule* out) {
  if (text == "static") { *out = Schedule::kStatic; return true; }
  if (text == "dynamic") { *out = Schedule::kDynamic; return true; }
  if (text == "edge" || text == "edge-balanced") {
    *out = Schedule::kEdgeBalanced;
    return true;
  }
  return false;
}

/// One schedulable unit: items [begin, end) carrying `weight()` units of
/// work.  For an edge-balanced grid built over a CSR prefix, w_begin/w_end
/// are edge offsets; a `partial` chunk covers an edge sub-range
/// [w_begin, w_end) of the single hub item `begin` (end == begin + 1).
struct Chunk {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t w_begin = 0;
  std::uint64_t w_end = 0;
  bool partial = false;

  std::uint64_t items() const { return end - begin; }
  std::uint64_t weight() const { return w_end - w_begin; }
  friend bool operator==(const Chunk&, const Chunk&) = default;
};

/// Deterministic decomposition of an index range into chunks.  Pure function
/// of its inputs: building the same grid twice — on any thread, with any
/// pool width — yields element-wise identical chunks.
class ChunkGrid {
 public:
  /// Auto-grain target: enough chunks for dynamic stealing to smooth load at
  /// any plausible thread count, few enough that per-chunk overhead stays
  /// negligible.  Grids are *not* sized from nthreads — that would leak the
  /// thread count into the geometry and break cross-thread determinism.
  static constexpr std::uint64_t kTargetChunks = 256;

  ChunkGrid() = default;

  /// Uniform item chunks over [0, n): each chunk holds `grain` items (auto:
  /// ~n/kTargetChunks).  Weight == item count.
  static ChunkGrid items(std::uint64_t n, std::uint64_t grain = 0) {
    ChunkGrid g;
    if (n == 0) return g;
    const std::uint64_t step = grain ? grain : auto_grain(n);
    for (std::uint64_t lo = 0; lo < n; lo += step) {
      const std::uint64_t hi = std::min(n, lo + step);
      g.chunks_.push_back({lo, hi, lo, hi, false});
    }
    g.finish();
    return g;
  }

  /// Uniform item chunks (same boundaries as items()) but with weights taken
  /// from a CSR prefix array of size n+1.  Used when the sweep cost tracks
  /// edges yet the chunk geometry must stay count-based.
  static ChunkGrid items_weighted(std::span<const std::uint64_t> prefix,
                                  std::uint64_t grain = 0) {
    HG_CHECK(!prefix.empty());
    const std::uint64_t n = prefix.size() - 1;
    ChunkGrid g;
    if (n == 0) return g;
    const std::uint64_t step = grain ? grain : auto_grain(n);
    for (std::uint64_t lo = 0; lo < n; lo += step) {
      const std::uint64_t hi = std::min(n, lo + step);
      g.chunks_.push_back({lo, hi, prefix[lo], prefix[hi], false});
    }
    g.finish();
    return g;
  }

  /// Edge-balanced chunks over the CSR prefix array (size n+1, prefix[0] may
  /// be nonzero for sub-range prefixes): boundaries are placed so each chunk
  /// carries <= grain edges (auto: ~total/kTargetChunks), with an item cap of
  /// ~n/kTargetChunks so stretches of zero-degree vertices still split.  When
  /// split_hubs is set, an item heavier than the grain becomes ceil(w/grain)
  /// partial sub-chunks over its edge range — callers must then handle
  /// Chunk::partial (plain item sweeps keep split_hubs=false).
  static ChunkGrid edges(std::span<const std::uint64_t> prefix,
                         std::uint64_t grain = 0, bool split_hubs = false) {
    HG_CHECK(!prefix.empty());
    const std::uint64_t n = prefix.size() - 1;
    ChunkGrid g;
    if (n == 0) return g;
    const std::uint64_t total = prefix[n] - prefix[0];
    const std::uint64_t gr = grain ? grain : auto_grain(total);
    const std::uint64_t item_cap = auto_grain(n);
    std::uint64_t v = 0;
    while (v < n) {
      std::uint64_t u = v + 1;  // at least one item per chunk
      while (u < n && prefix[u + 1] - prefix[v] <= gr && (u - v) < item_cap)
        ++u;
      const std::uint64_t w = prefix[u] - prefix[v];
      if (split_hubs && u == v + 1 && w > gr) {
        // Hub heavier than the grain: emit edge-slice sub-chunks.
        for (std::uint64_t e = prefix[v]; e < prefix[u]; e += gr)
          g.chunks_.push_back(
              {v, u, e, std::min(prefix[u], e + gr), true});
      } else {
        g.chunks_.push_back({v, u, prefix[v], prefix[u], false});
      }
      v = u;
    }
    g.finish();
    return g;
  }

  std::size_t size() const { return chunks_.size(); }
  bool empty() const { return chunks_.empty(); }
  const Chunk& operator[](std::size_t i) const { return chunks_[i]; }
  std::uint64_t items_total() const { return items_total_; }
  std::uint64_t weight_total() const { return weight_total_; }
  std::uint64_t max_chunk_weight() const { return max_weight_; }
  bool has_partial() const { return has_partial_; }
  friend bool operator==(const ChunkGrid&, const ChunkGrid&) = default;

 private:
  static std::uint64_t auto_grain(std::uint64_t total) {
    return std::max<std::uint64_t>(
        1, (total + kTargetChunks - 1) / kTargetChunks);
  }

  void finish() {
    for (const Chunk& c : chunks_) {
      if (!c.partial) items_total_ += c.items();
      weight_total_ += c.weight();
      max_weight_ = std::max(max_weight_, c.weight());
      has_partial_ = has_partial_ || c.partial;
    }
  }

  std::vector<Chunk> chunks_;
  std::uint64_t items_total_ = 0;
  std::uint64_t weight_total_ = 0;
  std::uint64_t max_weight_ = 0;
  bool has_partial_ = false;
};

/// Builds the grid for `sched` over [0, n) with optional CSR weights.
///
///   kStatic        nthreads equal-count spans (legacy geometry; weighted
///                  when a prefix is supplied so telemetry reports edges).
///   kDynamic       auto-grain uniform grid — nthreads-independent.
///   kEdgeBalanced  edge-balanced grid over the prefix (falls back to the
///                  dynamic grid when no prefix is available).
inline ChunkGrid make_grid(Schedule sched, std::uint64_t n,
                           std::span<const std::uint64_t> prefix,
                           unsigned nthreads, std::uint64_t grain = 0) {
  HG_DCHECK(prefix.empty() || prefix.size() == n + 1);
  switch (sched) {
    case Schedule::kStatic: {
      const std::uint64_t g =
          grain ? grain
                : std::max<std::uint64_t>(1, (n + nthreads - 1) / nthreads);
      return prefix.empty() ? ChunkGrid::items(n, g)
                            : ChunkGrid::items_weighted(prefix, g);
    }
    case Schedule::kDynamic:
      return prefix.empty() ? ChunkGrid::items(n, grain)
                            : ChunkGrid::items_weighted(prefix, grain);
    case Schedule::kEdgeBalanced:
      return prefix.empty() ? ChunkGrid::items(n, grain)
                            : ChunkGrid::edges(prefix, grain);
  }
  return ChunkGrid::items(n, grain);
}

/// Per-pool imbalance telemetry, accumulated over every scheduled loop run
/// since construction / the last snapshot.  busy_* are wall-seconds spent
/// inside loop bodies; work_* count chunk weight (edges when the grid was
/// built over a CSR prefix, items otherwise).
struct SweepStats {
  double busy_max = 0.0;    ///< sum over loops of max per-thread busy time
  double busy_total = 0.0;  ///< sum over loops of total busy time
  std::uint64_t work_max = 0;    ///< sum over loops of max per-thread weight
  std::uint64_t work_total = 0;  ///< sum over loops of total weight
  std::uint64_t loops = 0;       ///< scheduled loops executed

  /// max/mean work per thread: 1.0 == perfectly balanced.
  double imbalance(unsigned nthreads) const {
    if (work_total == 0 || nthreads == 0) return 1.0;
    const double mean =
        static_cast<double>(work_total) / static_cast<double>(nthreads);
    return static_cast<double>(work_max) / mean;
  }

  SweepStats operator-(const SweepStats& o) const {
    return {busy_max - o.busy_max, busy_total - o.busy_total,
            work_max - o.work_max, work_total - o.work_total,
            loops - o.loops};
  }
};

/// Host-independent max/mean weight-per-thread for a grid executed under
/// `sched` with `nthreads` workers.  A pure function of the grid geometry:
///
///   kStatic        chunk c runs on thread c (the one-span-per-thread
///                  legacy assignment), so per-thread load IS the chunk
///                  weight — this is the true edge imbalance of the span
///                  split.
///   kDynamic /     each chunk (in chunk order) goes to the currently
///   kEdgeBalanced  least-loaded thread — the load the atomic chunk-counter
///                  executor converges to when all workers make equal
///                  progress.
///
/// The pool's SweepStats report the *realized* assignment, which on hosts
/// with fewer cores than pool threads degenerates (one core drains the whole
/// chunk queue before the others are ever scheduled); this model is what the
/// ablation and tests pin because it does not depend on the machine the
/// suite happens to run on.
inline double grid_imbalance(const ChunkGrid& grid, Schedule sched,
                             unsigned nthreads) {
  if (nthreads == 0 || grid.empty() || grid.weight_total() == 0) return 1.0;
  std::vector<std::uint64_t> load(nthreads, 0);
  if (sched == Schedule::kStatic) {
    // make_grid(kStatic) emits at most `nthreads` chunks, chunk c -> thread
    // c; clamp anyway so hand-built grids cannot index out of range.
    for (std::size_t c = 0; c < grid.size(); ++c)
      load[std::min<std::size_t>(c, nthreads - 1)] += grid[c].weight();
  } else {
    for (std::size_t c = 0; c < grid.size(); ++c)
      *std::min_element(load.begin(), load.end()) += grid[c].weight();
  }
  const std::uint64_t mx = *std::max_element(load.begin(), load.end());
  const double mean = static_cast<double>(grid.weight_total()) /
                      static_cast<double>(nthreads);
  return static_cast<double>(mx) / mean;
}

/// Chunk-order emission assembly: append per-chunk output lists to `out`
/// in chunk order.  Because the grid is a pure function of (range, grain,
/// prefix) — never of the thread count — the concatenation is bit-identical
/// across thread counts and schedules; this is the deterministic frontier/
/// accept-list idiom used by the frontier layer, MS-BFS and the bottom-up
/// BFS scan.
template <typename T>
inline void concat_chunk_lists(const std::vector<std::vector<T>>& chunk_lists,
                               std::vector<T>& out) {
  for (const std::vector<T>& cl : chunk_lists)
    out.insert(out.end(), cl.begin(), cl.end());
}

/// Observability hook for chunked sweeps (installed by obs::Tracer, see
/// src/obs/ and DESIGN.md §13).  Kept as bare function pointers with an
/// opaque context so this header stays dependency-free: util cannot include
/// obs (obs builds on util).
///
/// `capture` runs on the thread constructing a ThreadPool and returns an
/// opaque per-rank context (nullptr disables sampling for that pool);
/// `sweep` runs on every participating thread at the end of each
/// `for_chunks` loop with that thread's chunk count, executed weight, and
/// busy seconds.  Both pointers are written once, by the host thread, before
/// rank threads spawn (tracer install/uninstall bracket the traced region),
/// so the traced threads only ever read them.
struct PoolObserver {
  const void* (*capture)(unsigned nthreads) = nullptr;
  void (*sweep)(const void* ctx, unsigned tid, std::uint64_t chunks,
                std::uint64_t weight, double busy_s) = nullptr;
};

inline PoolObserver& pool_observer() {
  static PoolObserver o;  // lint:allow(mutable-global: obs hook, see above)
  return o;
}

/// Persistent worker pool executing SPMD regions.
class ThreadPool {
 public:
  /// \param nthreads  Total threads participating in each region (>= 1).
  ///                  The calling thread participates as thread id 0, so only
  ///                  nthreads-1 OS threads are spawned.
  explicit ThreadPool(unsigned nthreads = 1) : nthreads_(nthreads) {
    HG_CHECK(nthreads >= 1);
    if (pool_observer().capture != nullptr)
      obs_ctx_ = pool_observer().capture(nthreads_);
    sweep_scratch_.resize(nthreads_);
    workers_.reserve(nthreads_ - 1);
    for (unsigned t = 1; t < nthreads_; ++t)
      workers_.emplace_back([this, t] { worker_loop(t); });
  }

  ~ThreadPool() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
      generation_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return nthreads_; }

  /// Run fn(thread_id) on all nthreads threads; returns when all are done.
  void run(const std::function<void(unsigned)>& fn) {
    if (nthreads_ == 1) {
      fn(0);
      return;
    }
    {
      std::lock_guard lk(mu_);
      job_ = &fn;
      pending_.store(static_cast<int>(nthreads_) - 1,
                     std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    fn(0);
    // Wait for workers to finish this generation: spin briefly (they almost
    // always finish within the launcher's own chunk cadence), then block.
    spin_until([this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }

  /// Statically-chunked parallel loop over [begin, end).
  /// fn(thread_id, i) is invoked for each index.
  template <typename F>
  void for_each(std::uint64_t begin, std::uint64_t end, F&& fn) {
    for_range(begin, end,
              [&fn](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
                for (std::uint64_t i = lo; i < hi; ++i) fn(tid, i);
              });
  }

  /// Statically-chunked parallel loop; fn(thread_id, lo, hi) gets one
  /// contiguous sub-range per thread.  Empty ranges return without calling
  /// fn, and threads whose span would be zero-width (n < nthreads) are
  /// skipped rather than handed an empty [lo, hi).
  template <typename F>
  void for_range(std::uint64_t begin, std::uint64_t end, F&& fn) {
    const std::uint64_t n = end - begin;
    if (n == 0) return;
    if (nthreads_ == 1) {
      fn(0u, begin, end);
      return;
    }
    run([&](unsigned tid) {
      const std::uint64_t chunk = (n + nthreads_ - 1) / nthreads_;
      const std::uint64_t lo = begin + std::min<std::uint64_t>(n, tid * chunk);
      const std::uint64_t hi =
          begin + std::min<std::uint64_t>(n, (tid + 1) * chunk);
      if (lo >= hi) return;
      fn(tid, lo, hi);
    });
  }

  /// Scheduled parallel loop over the chunks of a pre-built grid.
  /// fn(thread_id, chunk_id, chunk) is invoked once per chunk.  Assignment
  /// of chunks to threads follows `sched` (kStatic: contiguous chunk blocks;
  /// otherwise: atomic chunk counter), but the grid itself — and therefore
  /// any chunk-indexed result — is independent of the assignment.
  /// Per-thread busy time and executed weight are folded into sweep_stats().
  template <typename F>
  void for_chunks(const ChunkGrid& grid, Schedule sched, F&& fn) {
    const std::uint64_t nc = grid.size();
    if (nc == 0) return;
    if (nthreads_ == 1) {
      Timer t;
      std::uint64_t w = 0;
      for (std::uint64_t c = 0; c < nc; ++c) {
        fn(0u, c, grid[c]);
        w += grid[c].weight();
      }
      const double busy = t.elapsed();
      sweep_scratch_[0] = {busy, w};
      notify_sweep(0, nc, w, busy);
      fold_sweep_scratch();
      return;
    }
    std::atomic<std::uint64_t> next{0};
    run([&](unsigned tid) {
      Timer t;
      std::uint64_t w = 0;
      std::uint64_t done = 0;
      if (sched == Schedule::kStatic) {
        const std::uint64_t per = (nc + nthreads_ - 1) / nthreads_;
        const std::uint64_t lo = std::min<std::uint64_t>(nc, tid * per);
        const std::uint64_t hi = std::min<std::uint64_t>(nc, lo + per);
        for (std::uint64_t c = lo; c < hi; ++c) {
          fn(tid, c, grid[c]);
          w += grid[c].weight();
        }
        done = hi - lo;
      } else {
        for (;;) {
          const std::uint64_t c = next.fetch_add(1, std::memory_order_relaxed);
          if (c >= nc) break;
          fn(tid, c, grid[c]);
          w += grid[c].weight();
          ++done;
        }
      }
      const double busy = t.elapsed();
      sweep_scratch_[tid] = {busy, w};
      notify_sweep(tid, done, w, busy);
    });
    fold_sweep_scratch();
  }

  /// Scheduled loop adapter presenting each (non-partial) chunk as a
  /// contiguous [lo, hi) item span: fn(thread_id, lo, hi).
  template <typename F>
  void for_ranges(const ChunkGrid& grid, Schedule sched, F&& fn) {
    HG_DCHECK(!grid.has_partial());
    for_chunks(grid, sched, [&fn](unsigned tid, std::uint64_t /*chunk*/,
                                  const Chunk& c) {
      fn(tid, c.begin, c.end);
    });
  }

  /// Scheduled parallel loop over [begin, end) with no weight information:
  /// builds the matching grid internally (kStatic reproduces the legacy
  /// equal-count spans; kDynamic/kEdgeBalanced degrade to the uniform
  /// auto-grain grid).  fn(thread_id, lo, hi).
  template <typename F>
  void for_range(std::uint64_t begin, std::uint64_t end, Schedule sched,
                 F&& fn) {
    const std::uint64_t n = end - begin;
    if (n == 0) return;
    const ChunkGrid grid = make_grid(sched, n, {}, nthreads_);
    for_ranges(grid, sched,
               [&fn, begin](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
                 fn(tid, begin + lo, begin + hi);
               });
  }

  /// Deterministic floating-point reduction: fn(chunk) returns the chunk's
  /// partial; partials are folded serially in chunk order, so the result
  /// depends only on the grid — not on thread count or chunk assignment.
  /// With one thread and a single-chunk grid this is plain sequential
  /// accumulation.
  template <typename F>
  double reduce_chunks(const ChunkGrid& grid, Schedule sched, F&& fn) {
    if (grid.empty()) return 0.0;
    std::vector<double> partial(grid.size(), 0.0);
    for_chunks(grid, sched,
               [&fn, &partial](unsigned /*tid*/, std::uint64_t c,
                               const Chunk& ck) { partial[c] = fn(ck); });
    double sum = 0.0;
    for (const double p : partial) sum += p;
    return sum;
  }

  /// Cumulative scheduled-loop telemetry (see SweepStats).  Read on the
  /// calling thread after loops complete; callers snapshot-and-subtract to
  /// attribute stats to a region.
  const SweepStats& sweep_stats() const { return stats_; }

 private:
  struct SweepScratch {
    double busy = 0.0;
    std::uint64_t weight = 0;
  };

  // Called by the for_chunks caller after run() returns; run()'s join gives
  // acquire ordering on the workers' scratch writes, so no atomics needed.
  void fold_sweep_scratch() {
    double bmax = 0.0, btot = 0.0;
    std::uint64_t wmax = 0, wtot = 0;
    for (unsigned t = 0; t < nthreads_; ++t) {
      bmax = std::max(bmax, sweep_scratch_[t].busy);
      btot += sweep_scratch_[t].busy;
      wmax = std::max(wmax, sweep_scratch_[t].weight);
      wtot += sweep_scratch_[t].weight;
      sweep_scratch_[t] = {};
    }
    stats_.busy_max += bmax;
    stats_.busy_total += btot;
    stats_.work_max += wmax;
    stats_.work_total += wtot;
    stats_.loops += 1;
  }

  // Per-thread sweep sample to the observability hook (no-op unless an
  // obs::Tracer was installed before this pool was constructed).  Runs on
  // the sampled thread itself, so worker lanes are attributed correctly.
  void notify_sweep(unsigned tid, std::uint64_t chunks, std::uint64_t weight,
                    double busy_s) const {
    const PoolObserver& o = pool_observer();
    if (o.sweep != nullptr && obs_ctx_ != nullptr)
      o.sweep(obs_ctx_, tid, chunks, weight, busy_s);
  }

  // Bounded spin on a predicate before the caller falls back to a blocking
  // condition-variable wait.  A cv wakeup can cost upwards of a millisecond
  // on a loaded host — longer than an entire dynamic sweep — which would
  // serialize every short loop onto whichever thread noticed the job first.
  // Analytics issue loops back-to-back, so the next job almost always lands
  // within the spin window and workers join at full speed.
  template <typename Pred>
  static void spin_until(Pred&& pred) {
    const auto t0 = std::chrono::steady_clock::now();
    while (!pred() && std::chrono::steady_clock::now() - t0 <
                          std::chrono::microseconds(kSpinWaitUs)) {
    }
  }

  void worker_loop(unsigned tid) {
    std::uint64_t seen = 0;
    for (;;) {
      spin_until([&] {
        return generation_.load(std::memory_order_acquire) != seen;
      });
      const std::function<void(unsigned)>* job = nullptr;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] {
          return generation_.load(std::memory_order_relaxed) != seen;
        });
        seen = generation_.load(std::memory_order_relaxed);
        if (stop_) return;
        job = job_;
      }
      if (job) (*job)(tid);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lk(mu_);
        done_cv_.notify_all();
      }
    }
  }

  const unsigned nthreads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  /// Spin window before blocking waits fall back to the condition variable.
  static constexpr long kSpinWaitUs = 50;

  const std::function<void(unsigned)>* job_ = nullptr;
  // Job sequence number: bumped under mu_, but spin-polled lock-free by
  // parked workers (see spin_until).  Reviewed: rank-private pool plumbing.
  std::atomic<std::uint64_t> generation_{0};  // lint:allow(raw-sync: intra-rank pool wakeup)
  std::atomic<int> pending_{0};
  bool stop_ = false;
  std::vector<SweepScratch> sweep_scratch_;
  SweepStats stats_;
  /// Opaque obs rank context captured at construction (see PoolObserver).
  const void* obs_ctx_ = nullptr;
};

/// Pool width used when no explicit pool is supplied: the
/// HPCGRAPH_POOL_THREADS environment variable (clamped to [1, 64]), default
/// 1.  Lets CI run the whole test suite with fallback pools at 4 threads
/// without touching every call site.
inline unsigned default_pool_threads() {
  static const unsigned cached = [] {
    const char* env = std::getenv("HPCGRAPH_POOL_THREADS");
    if (!env) return 1u;
    const long v = std::strtol(env, nullptr, 10);
    return static_cast<unsigned>(std::clamp<long>(v, 1, 64));
  }();
  return cached;
}

/// Resolves an optional pool pointer to a usable reference, falling back to
/// a private inline pool sized by default_pool_threads().  Replaces the
/// `ThreadPool inline_pool(1); ThreadPool& tp = opt ? *opt : inline_pool;`
/// boilerplate that used to be pasted into every analytic.  The fallback
/// pool is constructed lazily so passing an explicit pool costs nothing.
class PoolFallback {
 public:
  explicit PoolFallback(ThreadPool* pool) : pool_(pool) {}
  ThreadPool& get() {
    if (pool_) return *pool_;
    if (!inline_) inline_ = std::make_unique<ThreadPool>(default_pool_threads());
    return *inline_;
  }
  operator ThreadPool&() { return get(); }

 private:
  ThreadPool* pool_;
  std::unique_ptr<ThreadPool> inline_;
};

}  // namespace hpcgraph
