#pragma once
/// \file parallel_for.hpp
/// Intra-rank (shared-memory) worker pool.
///
/// Substitutes for the paper's OpenMP threading: each MPI-style rank can run
/// its vertex loops over several threads.  The pool is persistent (threads
/// are created once per rank, not per loop) because the paper's analytics
/// enter a parallel region every iteration and thread spawn cost would
/// dominate at small scale.
///
/// With one thread the pool degenerates to inline execution with zero
/// synchronization, which is the configuration used by default on this
/// single-core reproduction machine; multi-thread paths are exercised by the
/// test suite.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hpcgraph {

/// Persistent worker pool executing SPMD regions.
class ThreadPool {
 public:
  /// \param nthreads  Total threads participating in each region (>= 1).
  ///                  The calling thread participates as thread id 0, so only
  ///                  nthreads-1 OS threads are spawned.
  explicit ThreadPool(unsigned nthreads = 1) : nthreads_(nthreads) {
    HG_CHECK(nthreads >= 1);
    workers_.reserve(nthreads_ - 1);
    for (unsigned t = 1; t < nthreads_; ++t)
      workers_.emplace_back([this, t] { worker_loop(t); });
  }

  ~ThreadPool() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return nthreads_; }

  /// Run fn(thread_id) on all nthreads threads; returns when all are done.
  void run(const std::function<void(unsigned)>& fn) {
    if (nthreads_ == 1) {
      fn(0);
      return;
    }
    {
      std::lock_guard lk(mu_);
      job_ = &fn;
      pending_.store(static_cast<int>(nthreads_) - 1,
                     std::memory_order_relaxed);
      ++generation_;
    }
    cv_.notify_all();
    fn(0);
    // Wait for workers to finish this generation.
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }

  /// Statically-chunked parallel loop over [begin, end).
  /// fn(thread_id, i) is invoked for each index.
  template <typename F>
  void for_each(std::uint64_t begin, std::uint64_t end, F&& fn) {
    for_range(begin, end,
              [&fn](unsigned tid, std::uint64_t lo, std::uint64_t hi) {
                for (std::uint64_t i = lo; i < hi; ++i) fn(tid, i);
              });
  }

  /// Statically-chunked parallel loop; fn(thread_id, lo, hi) gets one
  /// contiguous sub-range per thread.
  template <typename F>
  void for_range(std::uint64_t begin, std::uint64_t end, F&& fn) {
    const std::uint64_t n = end - begin;
    if (nthreads_ == 1 || n == 0) {
      fn(0u, begin, end);
      return;
    }
    run([&](unsigned tid) {
      const std::uint64_t chunk = (n + nthreads_ - 1) / nthreads_;
      const std::uint64_t lo = begin + std::min<std::uint64_t>(n, tid * chunk);
      const std::uint64_t hi =
          begin + std::min<std::uint64_t>(n, (tid + 1) * chunk);
      fn(tid, lo, hi);
    });
  }

 private:
  void worker_loop(unsigned tid) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* job = nullptr;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        job = job_;
      }
      if (job) (*job)(tid);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lk(mu_);
        done_cv_.notify_all();
      }
    }
  }

  const unsigned nthreads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::atomic<int> pending_{0};
  bool stop_ = false;
};

/// Resolves an optional pool pointer to a usable reference, falling back to
/// a private inline (1-thread, zero-spawn) pool.  Replaces the
/// `ThreadPool inline_pool(1); ThreadPool& tp = opt ? *opt : inline_pool;`
/// boilerplate that used to be pasted into every analytic.
class PoolFallback {
 public:
  explicit PoolFallback(ThreadPool* pool) : pool_(pool) {}
  ThreadPool& get() { return pool_ ? *pool_ : inline_; }
  operator ThreadPool&() { return get(); }

 private:
  ThreadPool* pool_;
  ThreadPool inline_{1};  // nthreads==1: no OS threads, inline execution
};

}  // namespace hpcgraph
