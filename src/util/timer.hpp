#pragma once
/// \file timer.hpp
/// Wall-clock timing utilities used by the construction/analytics stage
/// reports (Table III) and the per-phase breakdown (Figure 3).

#include <time.h>

#include <chrono>
#include <cstdint>

namespace hpcgraph {

/// CPU time consumed by the *calling thread*, in seconds.
///
/// On this single-core reproduction machine, simulated ranks (threads) are
/// timesliced, so wall-clock scaling curves are meaningless; the benches
/// instead report the maximum per-rank thread-CPU time, which is what the
/// wall time would be with one core per rank (network transfer excluded —
/// that is modelled separately from measured byte counts).  See DESIGN.md.
inline double thread_cpu_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Monotonic wall-clock timer with seconds resolution as double.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the timer; returns the elapsed time before the restart.
  double restart() {
    const auto now = clock::now();
    const double s = seconds_between(start_, now);
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or last restart().
  double elapsed() const { return seconds_between(start_, clock::now()); }

 private:
  using clock = std::chrono::steady_clock;

  static double seconds_between(clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }

  clock::time_point start_;
};

/// Accumulates elapsed time over multiple start/stop intervals.
/// Used for the comp/comm/idle accounting of Figure 3.
class AccumTimer {
 public:
  void start() { t_ = Timer{}; running_ = true; }

  /// Stop and fold the interval into the running total.
  /// Returns the interval length. No-op (returns 0) when not running.
  double stop() {
    if (!running_) return 0.0;
    const double s = t_.elapsed();
    total_ += s;
    running_ = false;
    return s;
  }

  void add(double seconds) { total_ += seconds; }
  void reset() { total_ = 0.0; running_ = false; }
  double total() const { return total_; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII wrapper: accumulates the scope's duration into an AccumTimer.
class ScopedAccum {
 public:
  explicit ScopedAccum(AccumTimer& acc) : acc_(acc) { acc_.start(); }
  ~ScopedAccum() { acc_.stop(); }
  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;

 private:
  AccumTimer& acc_;
};

}  // namespace hpcgraph
