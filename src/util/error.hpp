#pragma once
/// \file error.hpp
/// Fail-fast invariant checking.
///
/// Distributed graph code is dominated by index arithmetic; a silent
/// out-of-range access corrupts a neighbouring rank's result long before it
/// crashes.  HG_CHECK stays on in release builds (the cost is negligible next
/// to memory traffic), HG_DCHECK compiles out when NDEBUG is set.

#include <sstream>
#include <stdexcept>
#include <string>

namespace hpcgraph {

/// Thrown by HG_CHECK failures; carries file:line and the failed expression.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace hpcgraph

#define HG_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::hpcgraph::detail::check_failed(#expr, __FILE__, __LINE__, {});     \
  } while (0)

#define HG_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream hg_os_;                                           \
      hg_os_ << msg;                                                       \
      ::hpcgraph::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                       hg_os_.str());                      \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define HG_DCHECK(expr) ((void)0)
#else
#define HG_DCHECK(expr) HG_CHECK(expr)
#endif
