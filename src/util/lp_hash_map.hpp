#pragma once
/// \file lp_hash_map.hpp
/// Fast linear-probing hash map, global-id -> local-id.
///
/// This is the `map` structure of the paper's distributed graph
/// representation (Table II): it is consulted when decoding global vertex ids
/// received from neighbouring tasks, and when building send queues.  The
/// paper's optimization story hinges on touching this map rarely (ghost
/// relabeling + retained queues); when it *is* touched it must be fast, hence
/// open addressing with linear probing rather than std::unordered_map's
/// chained buckets.
///
/// Insert-only (graph construction inserts, analytics only look up), no
/// tombstones needed.  Capacity is a power of two; probing uses the high bits
/// of a SplitMix64 hash.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace hpcgraph {

/// Open-addressing hash map from gvid_t keys to a 32-bit value.
class LpHashMap {
 public:
  /// \param expected  Expected number of keys; the table is sized to keep
  ///                  the load factor below ~0.7 without growth.
  explicit LpHashMap(std::size_t expected = 0) { reserve(expected); }

  /// Re-initialize for `expected` keys, discarding all contents.
  void reserve(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 7 < (expected + 1) * 10) cap <<= 1;
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    mask_ = cap - 1;
    size_ = 0;
  }

  /// Insert key -> val.  If the key exists its value is overwritten.
  void insert(gvid_t key, std::uint32_t val) {
    HG_DCHECK(key != kEmpty);
    if ((size_ + 1) * 10 > capacity() * 7) grow();
    std::size_t i = slot(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) {
        vals_[i] = val;
        return;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = val;
    ++size_;
  }

  /// Look up a key; returns kNotFound when absent.
  std::uint32_t find(gvid_t key) const {
    std::size_t i = slot(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  /// Look up a key that must be present (checked).
  std::uint32_t at(gvid_t key) const {
    const std::uint32_t v = find(key);
    HG_CHECK_MSG(v != kNotFound, "LpHashMap: missing key " << key);
    return v;
  }

  bool contains(gvid_t key) const { return find(key) != kNotFound; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return keys_.size(); }

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

 private:
  // gvid_t(-1) is kNullGvid, never a real vertex id; reuse it as empty marker.
  static constexpr gvid_t kEmpty = kNullGvid;

  std::size_t slot(gvid_t key) const { return splitmix64(key) & mask_; }

  void grow() {
    std::vector<gvid_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    const std::size_t cap = old_keys.size() * 2;
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    mask_ = cap - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i)
      if (old_keys[i] != kEmpty) insert(old_keys[i], old_vals[i]);
  }

  std::vector<gvid_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hpcgraph
