#pragma once
/// \file bitmask64.hpp
/// Machine-word bit-mask helpers for the bit-parallel (multi-source) engines:
/// one std::uint64_t per vertex carries one bit per batched source, so a
/// single CSR sweep serves up to 64 traversals ("next |= adj & ~seen").
///
/// Kept deliberately tiny: a bit constructor, set-bit iteration via
/// countr_zero, and a relaxed atomic OR for concurrent frontier scatter
/// (std::atomic_ref, so the masks live in plain contiguous vectors and the
/// single-thread path pays nothing).

#include <atomic>
#include <bit>
#include <cstdint>

#include "util/error.hpp"

namespace hpcgraph::bits {

/// Mask with only bit j set (j < 64).
inline constexpr std::uint64_t bit(std::size_t j) {
  HG_DCHECK(j < 64);
  return std::uint64_t{1} << j;
}

/// Mask with the low `n` bits set (n <= 64); n == 64 yields all-ones.
inline constexpr std::uint64_t low_mask(std::size_t n) {
  HG_DCHECK(n <= 64);
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// Invoke fn(j) for every set bit position j of `mask`, ascending.
template <typename F>
inline void for_each_set_bit(std::uint64_t mask, F&& fn) {
  while (mask != 0) {
    const int j = std::countr_zero(mask);
    fn(static_cast<std::size_t>(j));
    mask &= mask - 1;  // clear lowest set bit
  }
}

/// Relaxed atomic word |= bits, for concurrent scatter into shared masks.
inline void atomic_or(std::uint64_t& word, std::uint64_t bits) {
  std::atomic_ref<std::uint64_t>(word).fetch_or(bits,
                                                std::memory_order_relaxed);
}

}  // namespace hpcgraph::bits
