#pragma once
/// \file types.hpp
/// Fundamental integer types used throughout hpcgraph.
///
/// The paper stores each directed edge as two 32-bit unsigned integers on
/// disk (the 2012 WDC crawl has 3.56 B vertices, which fits in uint32).  In
/// memory we use 64-bit global identifiers so the library is not limited to
/// 2^32 vertices, and 32-bit *local* identifiers: after ghost relabeling every
/// per-task vertex index is < n_loc + n_gst, which is far below 2^32 for any
/// realistic per-task partition.

#include <cstdint>

namespace hpcgraph {

/// Global vertex identifier (unique across all ranks).
using gvid_t = std::uint64_t;

/// Task-local vertex identifier after ghost relabeling.
/// Local vertices occupy [0, n_loc); ghosts occupy [n_loc, n_loc + n_gst).
using lvid_t = std::uint32_t;

/// Edge count type (global edge counts exceed 2^32 at paper scale).
using ecnt_t = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr gvid_t kNullGvid = static_cast<gvid_t>(-1);
inline constexpr lvid_t kNullLvid = static_cast<lvid_t>(-1);

}  // namespace hpcgraph
