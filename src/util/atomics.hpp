#pragma once
/// \file atomics.hpp
/// Sanctioned intra-rank atomic helpers.
///
/// Rank-isolation discipline (DESIGN.md §8): algorithm code under
/// src/analytics, src/engine and src/dgraph must not use raw std::thread /
/// std::mutex / std::atomic — cross-rank coordination goes through parcomm
/// collectives, and *intra-rank* worker-pool synchronization goes through
/// the helpers here (or util/parallel_for.hpp, util/thread_queue.hpp,
/// util/bitmask64.hpp).  Centralizing the memory-order reasoning in one
/// header keeps `tools/lint_discipline.py`'s raw-sync check meaningful: any
/// std::atomic token appearing in analytics code is either a reviewed
/// exception (`// lint:allow(raw-sync: why)`) or a bug.
///
/// Everything here is relaxed-order: these helpers fold thread-local partial
/// results where the enclosing ThreadPool::for_range / run call provides the
/// release/acquire edges at task start and join.

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace hpcgraph {

/// Relaxed accumulation counter for pool workers folding per-chunk tallies
/// (e.g. "vertices changed this superstep").  Read with load() after the
/// pool join.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  explicit RelaxedCounter(std::uint64_t init) : v_(init) {}

  void add(std::uint64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Relaxed fetch-add on a plain variable via std::atomic_ref — for folding
/// floating-point partials into a stack local that outlives the pool call.
/// (atomic_ref<double>::fetch_add is a C++20 library CAS loop.)
template <typename T>
inline void atomic_add_relaxed(T& target, T delta) {
  static_assert(std::is_arithmetic_v<T>);
  std::atomic_ref<T>(target).fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace hpcgraph
