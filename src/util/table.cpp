#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace hpcgraph {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      os << row[c];
      for (std::size_t k = row[c].size(); k < width[c]; ++k) os << ' ';
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string TablePrinter::fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (std::fabs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = " B";
  } else if (std::fabs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = " M";
  } else if (std::fabs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = " K";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", precision, scaled, suffix);
  return buf;
}

}  // namespace hpcgraph
