#pragma once
/// \file table.hpp
/// Fixed-width text table printer: the bench harnesses print the paper's
/// tables/figures as aligned rows, one binary per table.

#include <iosfwd>
#include <string>
#include <vector>

namespace hpcgraph {

/// Column-aligned table accumulated row-by-row, printed in one shot.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Add a row (cells are pre-formatted strings).
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator to `os`.
  void print(std::ostream& os) const;

  /// Helpers for formatting numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  /// Engineer-style count: 1234567 -> "1.23 M".
  static std::string fmt_si(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpcgraph
