#include "util/log.hpp"

namespace hpcgraph {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void log_emit(LogLevel level, const std::string& line) {
  if (level < log_level()) return;
  static std::mutex mu;
  std::lock_guard lk(mu);
  const char* tag = "";
  switch (level) {
    case LogLevel::kDebug: tag = "[debug] "; break;
    case LogLevel::kInfo: tag = "[info]  "; break;
    case LogLevel::kWarn: tag = "[warn]  "; break;
    case LogLevel::kError: tag = "[error] "; break;
  }
  std::cerr << tag << line << '\n';
}

}  // namespace hpcgraph
