#pragma once
/// \file cli.hpp
/// Minimal command-line flag parsing for the bench harnesses and examples.
/// Flags use the form --name=value or --name value; unknown flags are
/// reported.  No external dependency, per the paper's "no other external
/// library dependencies" stance.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hpcgraph {

/// Parsed command line: flag map plus positional arguments.
class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& dflt) const;
  std::int64_t get_int(const std::string& name, std::int64_t dflt) const;
  double get_double(const std::string& name, double dflt) const;
  bool get_bool(const std::string& name, bool dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line but never queried via get*/has.
  std::vector<std::string> unknown_flags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace hpcgraph
