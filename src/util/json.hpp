#pragma once
/// \file json.hpp
/// Minimal JSON emission + syntax validation.  No external dependency: the
/// engine's superstep trace needs a writer, and the tests need an in-process
/// way to assert "this file is well-formed JSON" without shelling out.
///
/// The writer is a push-style serializer: callers open objects/arrays and
/// push keyed values; the writer tracks nesting and comma placement.  It only
/// emits the subset of JSON the trace uses (objects, arrays, strings,
/// integers, doubles, bools), always escaped and locale-independent.

#include <cassert>
#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace hpcgraph::util {

/// Streaming JSON serializer into an in-memory string.
class JsonWriter {
 public:
  void begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(State::kObjectFirst);
  }
  void end_object() {
    assert(!stack_.empty());
    stack_.pop_back();
    out_ += '}';
    mark_value();
  }
  void begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(State::kArrayFirst);
  }
  void end_array() {
    assert(!stack_.empty());
    stack_.pop_back();
    out_ += ']';
    mark_value();
  }

  void key(std::string_view k) {
    comma();
    string_raw(k);
    out_ += ':';
    // The next value belongs to this key: suppress its leading comma.
    pending_key_ = true;
  }

  void value(std::string_view s) {
    comma();
    string_raw(s);
    mark_value();
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
    mark_value();
  }
  void value(double d) {
    comma();
    char buf[64];
    // %.17g round-trips every double; JSON has no inf/nan so clamp to null.
    if (d != d || d > 1.7e308 || d < -1.7e308) {
      std::snprintf(buf, sizeof buf, "null");
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", d);
    }
    out_ += buf;
    mark_value();
  }
  void value(std::uint64_t v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out_ += buf;
    mark_value();
  }
  void value(std::int64_t v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out_ += buf;
    mark_value();
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  /// key + value in one call, for the common case.
  template <class T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }

 private:
  enum class State { kObjectFirst, kObjectNext, kArrayFirst, kArrayNext };

  void comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::kObjectNext || s == State::kArrayNext) out_ += ',';
  }
  void mark_value() {
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::kObjectFirst) s = State::kObjectNext;
    if (s == State::kArrayFirst) s = State::kArrayNext;
  }
  void string_raw(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<State> stack_;
  bool pending_key_ = false;
};

/// Recursive-descent well-formedness check.  Accepts exactly the JSON value
/// grammar (RFC 8259 minus \uXXXX surrogate-pair pedantry); returns true iff
/// `text` is a single valid JSON value with nothing but whitespace after it.
/// Used by tests to validate --trace-json output without a JSON library.
class JsonChecker {
 public:
  static bool valid(std::string_view text) {
    JsonChecker c{text};
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(std::string_view t) : t_(t) {}

  void ws() {
    while (pos_ < t_.size() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                                t_[pos_] == '\n' || t_[pos_] == '\r'))
      ++pos_;
  }
  bool eat(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool lit(std::string_view s) {
    if (t_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  bool value() {
    ws();
    if (pos_ >= t_.size()) return false;
    switch (t_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }

  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < t_.size()) {
      char c = t_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= t_.size()) return false;
        char e = t_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= t_.size() || !std::isxdigit(static_cast<unsigned char>(t_[pos_])))
              return false;
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    std::size_t start = pos_;
    eat('-');
    if (eat('0')) {
      // leading zero must not be followed by digits
    } else {
      if (pos_ >= t_.size() || !std::isdigit(static_cast<unsigned char>(t_[pos_])))
        return false;
      while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_])))
        ++pos_;
    }
    if (eat('.')) {
      if (pos_ >= t_.size() || !std::isdigit(static_cast<unsigned char>(t_[pos_])))
        return false;
      while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_])))
        ++pos_;
    }
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      if (pos_ >= t_.size() || !std::isdigit(static_cast<unsigned char>(t_[pos_])))
        return false;
      while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_])))
        ++pos_;
    }
    return pos_ > start;
  }

  std::string_view t_;
  std::size_t pos_ = 0;
};

}  // namespace hpcgraph::util
