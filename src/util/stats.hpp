#pragma once
/// \file stats.hpp
/// Small statistics helpers for bench reporting: min/avg/max summaries
/// (Figure 3 reports per-task min/avg/max ratios) and geometric means
/// (the paper's framework-comparison speedups are geometric means).

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace hpcgraph {

/// Running min / max / mean / count accumulator.
class MinMaxMean {
 public:
  void add(double x) {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
    ++n_;
  }

  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  std::size_t count() const { return n_; }

 private:
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

/// Summary of a sample set.
struct Summary {
  double min = 0, mean = 0, max = 0;
  /// max/mean, the load-imbalance factor used throughout the scaling study.
  double imbalance() const { return mean > 0 ? max / mean : 0.0; }
};

inline Summary summarize(std::span<const double> xs) {
  MinMaxMean m;
  for (double x : xs) m.add(x);
  return {m.min(), m.mean(), m.max()};
}

/// Geometric mean of a positive sample set (0 if empty).
inline double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace hpcgraph
