#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace hpcgraph {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string Cli::get(const std::string& name, const std::string& dflt) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? dflt : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t dflt) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return dflt;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& name, double dflt) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return dflt;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool dflt) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return dflt;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> Cli::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_)
    if (!queried_.count(name)) out.push_back(name);
  return out;
}

}  // namespace hpcgraph
