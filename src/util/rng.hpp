#pragma once
/// \file rng.hpp
/// Deterministic, splittable random number generation.
///
/// Every generator and analytic in hpcgraph is seeded, so any distributed run
/// is bit-reproducible regardless of rank count.  SplitMix64 provides cheap
/// stateless hashing/seeding; Xoshiro256** is the workhorse stream generator
/// (fast, passes BigCrush, trivially splittable via SplitMix64-derived seeds).

#include <array>
#include <cstdint>

namespace hpcgraph {

/// One step of the SplitMix64 sequence starting at `x`.
/// Also serves as a high-quality 64-bit integer hash (used for random
/// vertex->task assignment, deterministic tie-breaking, etc.).
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256** PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t x = seed;
    for (auto& w : s_) w = (x = splitmix64(x));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply keeps the bias at most 2^-64 — ignorable here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// A statistically independent child stream (for per-rank/per-thread use).
  Rng split(std::uint64_t stream_id) {
    return Rng(splitmix64(s_[0] ^ splitmix64(stream_id + 0x9e3779b9ULL)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace hpcgraph
