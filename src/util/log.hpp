#pragma once
/// \file log.hpp
/// Tiny leveled logger.  Rank-0-only logging is handled at call sites (the
/// communicator exposes rank()); this logger just serializes concurrent
/// writers so interleaved rank output stays line-atomic.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace hpcgraph {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level (default Info). Not synchronized; set before
/// spawning ranks.
LogLevel& log_level();

/// Internal: emit one line under the global log mutex.
void log_emit(LogLevel level, const std::string& line);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hpcgraph

#define HG_LOG(level) ::hpcgraph::detail::LogLine(level)
#define HG_INFO() HG_LOG(::hpcgraph::LogLevel::kInfo)
#define HG_WARN() HG_LOG(::hpcgraph::LogLevel::kWarn)
#define HG_DEBUG() HG_LOG(::hpcgraph::LogLevel::kDebug)
