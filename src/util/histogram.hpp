#pragma once
/// \file histogram.hpp
/// Log-scale histograms and CDFs for the structural plots:
/// Figure 5 (community-size frequency, log-log) and Figure 6
/// (cumulative coreness distribution).

#include <cstdint>
#include <vector>

namespace hpcgraph {

/// Histogram over power-of-two buckets: bucket i counts values in
/// [2^i, 2^(i+1)), with value 0 counted in bucket 0 alongside value 1.
class Log2Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1) {
    const unsigned b = bucket_of(value);
    if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
    buckets_[b] += weight;
    total_ += weight;
  }

  static unsigned bucket_of(std::uint64_t value) {
    if (value <= 1) return 0;
    return 63u - static_cast<unsigned>(__builtin_clzll(value));
  }

  /// Lower edge of bucket b.
  static std::uint64_t bucket_lo(unsigned b) { return 1ULL << b; }

  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t count(unsigned b) const {
    return b < buckets_.size() ? buckets_[b] : 0;
  }
  std::uint64_t total() const { return total_; }

  /// Cumulative fraction of mass in buckets [0, b].
  double cdf(unsigned b) const {
    if (total_ == 0) return 0.0;
    std::uint64_t run = 0;
    for (unsigned i = 0; i <= b && i < buckets_.size(); ++i) run += buckets_[i];
    return static_cast<double>(run) / static_cast<double>(total_);
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Exact frequency counter over small integer keys (e.g. coreness exponents).
class ExactHistogram {
 public:
  explicit ExactHistogram(std::size_t max_key) : buckets_(max_key + 1, 0) {}

  void add(std::size_t key, std::uint64_t weight = 1) {
    if (key >= buckets_.size()) buckets_.resize(key + 1, 0);
    buckets_[key] += weight;
    total_ += weight;
  }

  std::uint64_t count(std::size_t key) const {
    return key < buckets_.size() ? buckets_[key] : 0;
  }

  std::size_t num_keys() const { return buckets_.size(); }
  std::uint64_t total() const { return total_; }

  /// Cumulative fraction of mass at keys <= key.
  double cdf(std::size_t key) const {
    if (total_ == 0) return 0.0;
    std::uint64_t run = 0;
    for (std::size_t i = 0; i <= key && i < buckets_.size(); ++i)
      run += buckets_[i];
    return static_cast<double>(run) / static_cast<double>(total_);
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace hpcgraph
