#pragma once
/// \file prefix_sum.hpp
/// Prefix sums over send-count arrays (Algorithm 1, line 12: the SendOffs
/// computation) and CSR index construction.

#include <cstddef>
#include <span>
#include <vector>

namespace hpcgraph {

/// Exclusive prefix sum: out[i] = sum(in[0..i)).  Returns the grand total.
template <typename T>
T exclusive_prefix_sum(std::span<const T> in, std::span<T> out) {
  T run{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const T v = in[i];
    out[i] = run;
    run += v;
  }
  return run;
}

/// In-place exclusive prefix sum; returns the grand total.
template <typename T>
T exclusive_prefix_sum(std::vector<T>& v) {
  return exclusive_prefix_sum(std::span<const T>(v), std::span<T>(v));
}

/// Convenience: exclusive prefix sums into a fresh vector with one extra
/// trailing element holding the total (CSR row-index layout).
template <typename T>
std::vector<T> csr_offsets(std::span<const T> counts) {
  std::vector<T> offs(counts.size() + 1);
  T run{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offs[i] = run;
    run += counts[i];
  }
  offs[counts.size()] = run;
  return offs;
}

}  // namespace hpcgraph
