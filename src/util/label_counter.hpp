#pragma once
/// \file label_counter.hpp
/// The `lmap` of the paper's Label Propagation inner loop (Algorithm 1,
/// line 32): for one vertex, count occurrences of each neighbour label and
/// return the most frequent one.
///
/// The map is rebuilt for every vertex, so clearing must be O(entries used),
/// not O(capacity).  We use open addressing plus an epoch counter: bumping
/// the epoch invalidates all slots in O(1).  Ties are broken by a caller-
/// supplied hash so results are deterministic yet unbiased ("ties are broken
/// randomly" in the paper).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hpcgraph {

/// Counting map keyed by 64-bit labels, with O(1) reset.
class LabelCounter {
 public:
  explicit LabelCounter(std::size_t capacity_hint = 64) {
    std::size_t cap = 16;
    while (cap < capacity_hint * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
  }

  /// Forget all counts in O(1).
  void clear() {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the expensive reset once per 2^32 clears
      for (auto& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
    used_ = 0;
  }

  /// Increment the count for `label` by `w`; returns the new count.
  std::uint64_t add(std::uint64_t label, std::uint64_t w = 1) {
    if ((used_ + 1) * 2 > slots_.size()) grow();
    std::size_t i = splitmix64(label) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.epoch = epoch_;
        s.label = label;
        s.count = w;
        ++used_;
        return w;
      }
      if (s.label == label) {
        s.count += w;
        return s.count;
      }
      i = (i + 1) & mask_;
    }
  }

  /// The label with the maximum count.  Ties are broken by (1) preferring
  /// `fallback` (the caller's current label) when it is among the maxima —
  /// the standard Label Propagation stabilization rule, without which
  /// synchronous updates can oscillate on tied neighbourhoods forever —
  /// then (2) comparing splitmix64(label ^ tie_seed), i.e. pseudo-randomly
  /// but deterministically for a given seed ("ties are broken randomly" in
  /// the paper).  Returns `fallback` when the counter is empty.
  std::uint64_t argmax(std::uint64_t tie_seed, std::uint64_t fallback) const {
    std::uint64_t best_label = fallback;
    std::uint64_t best_count = 0;
    std::uint64_t best_tie = 0;
    bool fallback_is_max = false;
    for (const auto& s : slots_) {
      if (s.epoch != epoch_) continue;
      if (s.count > best_count) fallback_is_max = false;
      if (s.label == fallback && s.count >= best_count) fallback_is_max = true;
      const std::uint64_t tie = splitmix64(s.label ^ tie_seed);
      if (s.count > best_count ||
          (s.count == best_count && tie > best_tie)) {
        best_count = s.count;
        best_label = s.label;
        best_tie = tie;
      }
    }
    return fallback_is_max ? fallback : best_label;
  }

  std::size_t distinct() const { return used_; }

 private:
  struct Slot {
    std::uint64_t label = 0;
    std::uint64_t count = 0;
    std::uint32_t epoch = 0;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    const std::uint32_t live = epoch_;
    epoch_ = 1;
    used_ = 0;
    for (const auto& s : old)
      if (s.epoch == live) {
        // re-insert preserving counts
        std::size_t i = splitmix64(s.label) & mask_;
        while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
        slots_[i] = Slot{s.label, s.count, epoch_};
        ++used_;
      }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t used_ = 0;
  std::uint32_t epoch_ = 1;
};

}  // namespace hpcgraph
