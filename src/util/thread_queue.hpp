#pragma once
/// \file thread_queue.hpp
/// Two-level send-queue machinery — the paper's Algorithm 3.
///
/// Threads never push single items into the shared per-task send queues;
/// instead each thread buffers up to QSIZE items locally, and on overflow (or
/// at the end of its loop range) reserves one contiguous region per
/// destination task with a single atomic capture, then scatters its buffered
/// items.  This "improves cache performance and greatly decreases
/// synchronization costs" (§III-D3); bench/micro_primitives quantifies the
/// claim against the naive one-atomic-per-item scheme.
///
/// MultiQueue<T> owns the shared buffer partitioned by destination task;
/// MultiQueue<T>::Sink is the per-thread handle.
///
/// This header is the *mechanism*; the sanctioned entry point for the full
/// count → queue → Alltoallv → scatter cycle is the frontier layer's
/// engine::route_to_owners (src/engine/frontier.hpp).  Pairing MultiQueue
/// with a raw Alltoallv outside that layer trips the
/// `raw-frontier-exchange` lint rule.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/prefix_sum.hpp"

namespace hpcgraph {

/// Default thread-local queue capacity (items).  Tunable per the paper; this
/// default keeps a queue of 16-byte records within a typical L1/L2 footprint.
inline constexpr std::size_t kDefaultQSize = 2048;

/// Shared multi-destination send buffer with per-task segments.
///
/// Lifecycle:  count items per task (algorithm-specific pass) ->
/// MultiQueue q(counts) -> threads push via Sink -> q.task_segment(t) or
/// q.buffer() feeds Alltoallv.
template <typename T>
class MultiQueue {
 public:
  /// \param counts  Exact number of items destined to each task.
  explicit MultiQueue(std::span<const std::uint64_t> counts)
      : ntasks_(counts.size()), offsets_(csr_offsets(counts)) {
    buffer_.resize(offsets_.back());
    cursors_ = std::vector<std::atomic<std::uint64_t>>(ntasks_);
    for (std::size_t t = 0; t < ntasks_; ++t)
      cursors_[t].store(offsets_[t], std::memory_order_relaxed);
  }

  std::size_t ntasks() const { return ntasks_; }
  std::uint64_t total() const { return offsets_.back(); }

  /// Items destined to task t (valid once all sinks have flushed).
  std::span<const T> task_segment(std::size_t t) const {
    return {buffer_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  std::span<T> mutable_task_segment(std::size_t t) {
    return {buffer_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  const std::vector<T>& buffer() const { return buffer_; }
  std::vector<T>& mutable_buffer() { return buffer_; }

  /// Per-task segment start offsets (CSR layout, ntasks+1 entries).
  std::span<const std::uint64_t> offsets() const { return offsets_; }

  /// Per-task item counts, convenient for Alltoallv.
  std::vector<std::uint64_t> counts() const {
    std::vector<std::uint64_t> c(ntasks_);
    for (std::size_t t = 0; t < ntasks_; ++t)
      c[t] = offsets_[t + 1] - offsets_[t];
    return c;
  }

  /// Verify every reserved slot was filled (all cursors at segment ends).
  bool complete() const {
    for (std::size_t t = 0; t < ntasks_; ++t)
      if (cursors_[t].load(std::memory_order_acquire) != offsets_[t + 1])
        return false;
    return true;
  }

  /// Thread-local buffered writer (one per thread).
  class Sink {
   public:
    Sink(MultiQueue& q, std::size_t qsize = kDefaultQSize)
        : q_(q), qsize_(qsize ? qsize : 1), counts_(q.ntasks(), 0) {
      items_.reserve(qsize_);
    }

    ~Sink() { flush(); }
    Sink(const Sink&) = delete;
    Sink& operator=(const Sink&) = delete;

    /// Buffer one item destined to `task`; flushes when the local queue
    /// reaches QSIZE.
    void push(std::uint32_t task, const T& item) {
      HG_DCHECK(task < q_.ntasks());
      items_.push_back(Entry{item, task});
      ++counts_[task];
      if (items_.size() >= qsize_) flush();
    }

    /// Drain the local queue into the shared buffer.
    void flush() {
      if (items_.empty()) return;
      // One atomic capture per destination task (Algorithm 3, line 22):
      // reserve [off, off+count) in task t's segment.
      std::vector<std::uint64_t>& offs = scratch_;
      offs.assign(q_.ntasks(), 0);
      for (std::size_t t = 0; t < q_.ntasks(); ++t) {
        if (counts_[t] == 0) continue;
        offs[t] = q_.cursors_[t].fetch_add(counts_[t],
                                           std::memory_order_relaxed);
        HG_DCHECK(offs[t] + counts_[t] <= q_.offsets_[t + 1]);
      }
      for (const Entry& e : items_) q_.buffer_[offs[e.task]++] = e.item;
      items_.clear();
      std::fill(counts_.begin(), counts_.end(), 0);
    }

   private:
    struct Entry {
      T item;
      std::uint32_t task;
    };

    MultiQueue& q_;
    const std::size_t qsize_;
    std::vector<Entry> items_;
    std::vector<std::uint64_t> counts_;
    std::vector<std::uint64_t> scratch_;
  };

  /// Ablation baseline: push one item with one atomic RMW, no thread-local
  /// buffering.  Used by bench/micro_primitives to measure what Algorithm 3
  /// buys.
  void push_shared(std::uint32_t task, const T& item) {
    const std::uint64_t off =
        cursors_[task].fetch_add(1, std::memory_order_relaxed);
    HG_DCHECK(off < offsets_[task + 1]);
    buffer_[off] = item;
  }

 private:
  std::size_t ntasks_;
  std::vector<std::uint64_t> offsets_;
  std::vector<T> buffer_;
  std::vector<std::atomic<std::uint64_t>> cursors_;
};

}  // namespace hpcgraph
