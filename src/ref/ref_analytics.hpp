#pragma once
/// \file ref_analytics.hpp
/// Sequential golden implementations of all six analytics.
///
/// These are the oracles the test suite compares the distributed codes
/// against (exact equality for discrete results, tolerance for floating
/// point).  They are deliberately simple and obviously-correct rather than
/// fast; use the distributed implementations (src/analytics) for any real
/// workload.

#include <cstdint>
#include <vector>

#include "ref/seq_graph.hpp"
#include "util/types.hpp"

namespace hpcgraph::ref {

/// Power-iteration PageRank with uniform teleport and dangling-mass
/// redistribution; synchronous updates.  Returns per-vertex scores summing
/// to ~1.
std::vector<double> pagerank(const SeqGraph& g, int iterations,
                             double damping = 0.85);

/// BFS levels from `root`; unreachable vertices get kUnreachableLevel.
/// \param directed  true: follow out-edges only; false: both directions.
inline constexpr std::int64_t kUnreachableLevel = -1;
std::vector<std::int64_t> bfs_levels(const SeqGraph& g, gvid_t root,
                                     bool directed = true);

/// Weakly connected components: comp[v] = smallest vertex id in v's
/// component (canonical labels).
std::vector<gvid_t> wcc(const SeqGraph& g);

/// Strongly connected components: comp[v] = smallest vertex id in v's SCC
/// (canonical labels).  Iterative Tarjan.
std::vector<gvid_t> scc(const SeqGraph& g);

/// Vertices of the largest SCC (by size; ties to the one whose canonical
/// label is smallest).
std::vector<gvid_t> largest_scc(const SeqGraph& g);

/// Harmonic centrality of one vertex: sum over u != v of 1/d(v, u), with
/// d measured along out-edges (Boldi-Vigna axioms; the paper's [1]).
double harmonic_centrality(const SeqGraph& g, gvid_t v);

/// The paper's *approximate* k-core: for i = 1..max_i, iteratively remove
/// vertices of total degree < 2^i; vertices removed at stage i get coreness
/// upper bound 2^i.  Returns per-vertex bounds (vertices surviving all
/// stages get 2^max_i... capped by the loop limit, matching the distributed
/// code).
std::vector<std::uint64_t> kcore_approx(const SeqGraph& g,
                                        unsigned max_i = 27);

/// Exact coreness via standard peeling (extension beyond the paper's
/// approximation; used to validate that approx bounds really are bounds).
std::vector<std::uint64_t> kcore_exact(const SeqGraph& g);

/// Synchronous Label Propagation over the undirected view; labels start as
/// vertex ids, ties broken by splitmix64(label ^ tie_seed).  Matches the
/// distributed implementation bit-for-bit for a given seed.
std::vector<std::uint64_t> label_propagation(const SeqGraph& g,
                                             int iterations,
                                             std::uint64_t tie_seed = 0);

/// Dijkstra shortest paths from `root` along out-edges, with the same
/// deterministic synthetic weights as analytics::sssp (weights in
/// [1, max_weight] derived from endpoint ids).  Unreachable vertices get
/// kInfDistance.
inline constexpr std::uint64_t kInfDistance = ~std::uint64_t{0};
std::vector<std::uint64_t> sssp_dijkstra(const SeqGraph& g, gvid_t root,
                                         std::uint64_t max_weight = 64);

/// Brandes betweenness dependencies accumulated over `sources` (directed,
/// unweighted, endpoints excluded; parallel edges count as distinct paths)
/// — oracle for analytics::betweenness.
std::vector<double> betweenness_brandes(const SeqGraph& g,
                                        std::span<const gvid_t> sources);

/// Distinct-triple triangle count over the undirected, deduplicated view
/// (direction, parallel edges and self loops ignored) — oracle for
/// analytics::triangle_count.
std::uint64_t triangle_count(const SeqGraph& g);

/// Canonicalize component/community labels: relabel so every class is named
/// by its smallest member vertex id.  Makes partitions comparable across
/// implementations that choose different representatives.
std::vector<std::uint64_t> normalize_labels(
    const std::vector<std::uint64_t>& labels);

}  // namespace hpcgraph::ref
