#pragma once
/// \file seq_graph.hpp
/// Compact single-process CSR graph used by the sequential reference
/// implementations (golden results for the test suite) and the
/// framework-baseline engines.

#include <cstdint>
#include <span>
#include <vector>

#include "gen/edge_list.hpp"
#include "util/types.hpp"

namespace hpcgraph::ref {

/// Immutable out+in CSR built from an edge list (edge order preserved).
class SeqGraph {
 public:
  static SeqGraph from(const gen::EdgeList& el);

  gvid_t n() const { return n_; }
  std::uint64_t m() const { return out_edges_.size(); }

  std::span<const gvid_t> out_neighbors(gvid_t v) const {
    return {out_edges_.data() + out_index_[v],
            out_index_[v + 1] - out_index_[v]};
  }
  std::span<const gvid_t> in_neighbors(gvid_t v) const {
    return {in_edges_.data() + in_index_[v], in_index_[v + 1] - in_index_[v]};
  }

  std::uint64_t out_degree(gvid_t v) const {
    return out_index_[v + 1] - out_index_[v];
  }
  std::uint64_t in_degree(gvid_t v) const {
    return in_index_[v + 1] - in_index_[v];
  }

 private:
  gvid_t n_ = 0;
  std::vector<std::uint64_t> out_index_, in_index_;
  std::vector<gvid_t> out_edges_, in_edges_;
};

}  // namespace hpcgraph::ref
