#include "ref/seq_graph.hpp"

#include "util/prefix_sum.hpp"

namespace hpcgraph::ref {

SeqGraph SeqGraph::from(const gen::EdgeList& el) {
  SeqGraph g;
  g.n_ = el.n;

  std::vector<std::uint64_t> odeg(el.n, 0), ideg(el.n, 0);
  for (const gen::Edge& e : el.edges) {
    ++odeg[e.src];
    ++ideg[e.dst];
  }
  g.out_index_ = csr_offsets(std::span<const std::uint64_t>(odeg));
  g.in_index_ = csr_offsets(std::span<const std::uint64_t>(ideg));
  g.out_edges_.resize(el.edges.size());
  g.in_edges_.resize(el.edges.size());

  std::vector<std::uint64_t> ocur(g.out_index_.begin(), g.out_index_.end() - 1);
  std::vector<std::uint64_t> icur(g.in_index_.begin(), g.in_index_.end() - 1);
  for (const gen::Edge& e : el.edges) {
    g.out_edges_[ocur[e.src]++] = e.dst;
    g.in_edges_[icur[e.dst]++] = e.src;
  }
  return g;
}

}  // namespace hpcgraph::ref
