#include "ref/ref_analytics.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>

#include "util/error.hpp"
#include "util/label_counter.hpp"
#include "util/rng.hpp"

namespace hpcgraph::ref {

std::vector<double> pagerank(const SeqGraph& g, int iterations,
                             double damping) {
  const gvid_t n = g.n();
  HG_CHECK(n > 0);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);

  for (int it = 0; it < iterations; ++it) {
    double dangling = 0;
    for (gvid_t v = 0; v < n; ++v)
      if (g.out_degree(v) == 0) dangling += rank[v];

    const double base =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (gvid_t u = 0; u < n; ++u) {
      const double share =
          g.out_degree(u) ? damping * rank[u] /
                                static_cast<double>(g.out_degree(u))
                          : 0.0;
      for (const gvid_t v : g.out_neighbors(u)) next[v] += share;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<std::int64_t> bfs_levels(const SeqGraph& g, gvid_t root,
                                     bool directed) {
  std::vector<std::int64_t> level(g.n(), kUnreachableLevel);
  std::deque<gvid_t> q;
  level[root] = 0;
  q.push_back(root);
  while (!q.empty()) {
    const gvid_t v = q.front();
    q.pop_front();
    const auto visit = [&](gvid_t u) {
      if (level[u] == kUnreachableLevel) {
        level[u] = level[v] + 1;
        q.push_back(u);
      }
    };
    for (const gvid_t u : g.out_neighbors(v)) visit(u);
    if (!directed)
      for (const gvid_t u : g.in_neighbors(v)) visit(u);
  }
  return level;
}

std::vector<gvid_t> wcc(const SeqGraph& g) {
  // Union-find with path halving; canonical label = min id in component.
  std::vector<gvid_t> parent(g.n());
  for (gvid_t v = 0; v < g.n(); ++v) parent[v] = v;

  const auto find = [&](gvid_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  const auto unite = [&](gvid_t a, gvid_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);  // keep the smaller id as root
    parent[b] = a;
  };

  for (gvid_t v = 0; v < g.n(); ++v)
    for (const gvid_t u : g.out_neighbors(v)) unite(v, u);

  std::vector<gvid_t> comp(g.n());
  for (gvid_t v = 0; v < g.n(); ++v) comp[v] = find(v);
  return comp;
}

std::vector<gvid_t> scc(const SeqGraph& g) {
  // Iterative Tarjan.
  const gvid_t n = g.n();
  constexpr std::uint64_t kUnset = ~std::uint64_t{0};
  std::vector<std::uint64_t> index(n, kUnset), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<gvid_t> stack;
  std::vector<gvid_t> comp(n, kNullGvid);
  std::uint64_t next_index = 0;

  struct Frame {
    gvid_t v;
    std::size_t edge_pos;
  };
  std::vector<Frame> call;

  for (gvid_t start = 0; start < n; ++start) {
    if (index[start] != kUnset) continue;
    call.push_back({start, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const gvid_t v = f.v;
      if (f.edge_pos == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      const auto nbrs = g.out_neighbors(v);
      while (f.edge_pos < nbrs.size()) {
        const gvid_t u = nbrs[f.edge_pos++];
        if (index[u] == kUnset) {
          call.push_back({u, 0});
          descended = true;
          break;
        }
        if (on_stack[u]) lowlink[v] = std::min(lowlink[v], index[u]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        // Root of an SCC: pop members; canonical label = min member id.
        gvid_t label = v;
        std::size_t first = stack.size();
        while (true) {
          --first;
          label = std::min(label, stack[first]);
          if (stack[first] == v) break;
        }
        for (std::size_t i = first; i < stack.size(); ++i) {
          comp[stack[i]] = label;
          on_stack[stack[i]] = false;
        }
        stack.resize(first);
      }
      call.pop_back();
      if (!call.empty()) {
        Frame& parent = call.back();
        lowlink[parent.v] = std::min(lowlink[parent.v], lowlink[v]);
      }
    }
  }
  return comp;
}

std::vector<gvid_t> largest_scc(const SeqGraph& g) {
  const std::vector<gvid_t> comp = scc(g);
  std::map<gvid_t, std::uint64_t> sizes;
  for (const gvid_t c : comp) ++sizes[c];
  gvid_t best = comp.empty() ? 0 : comp[0];
  std::uint64_t best_size = 0;
  for (const auto& [label, size] : sizes)
    if (size > best_size) {
      best_size = size;
      best = label;
    }
  std::vector<gvid_t> members;
  members.reserve(best_size);
  for (gvid_t v = 0; v < g.n(); ++v)
    if (comp[v] == best) members.push_back(v);
  return members;
}

double harmonic_centrality(const SeqGraph& g, gvid_t v) {
  const std::vector<std::int64_t> level = bfs_levels(g, v, /*directed=*/true);
  double sum = 0;
  for (gvid_t u = 0; u < g.n(); ++u)
    if (u != v && level[u] > 0)
      sum += 1.0 / static_cast<double>(level[u]);
  return sum;
}

std::vector<std::uint64_t> kcore_approx(const SeqGraph& g, unsigned max_i) {
  const gvid_t n = g.n();
  std::vector<std::uint64_t> bound(n, std::uint64_t{1} << max_i);
  std::vector<std::uint64_t> deg(n);
  std::vector<bool> alive(n, true);
  for (gvid_t v = 0; v < n; ++v) deg[v] = g.out_degree(v) + g.in_degree(v);

  for (unsigned i = 1; i <= max_i; ++i) {
    const std::uint64_t threshold = std::uint64_t{1} << i;
    bool changed = true;
    while (changed) {
      changed = false;
      for (gvid_t v = 0; v < n; ++v) {
        if (!alive[v] || deg[v] >= threshold) continue;
        alive[v] = false;
        bound[v] = threshold;
        changed = true;
        for (const gvid_t u : g.out_neighbors(v))
          if (alive[u] && deg[u] > 0) --deg[u];
        for (const gvid_t u : g.in_neighbors(v))
          if (alive[u] && deg[u] > 0) --deg[u];
      }
    }
    // Early out: everything removed.
    if (std::none_of(alive.begin(), alive.end(), [](bool a) { return a; }))
      break;
  }
  return bound;
}

std::vector<std::uint64_t> kcore_exact(const SeqGraph& g) {
  const gvid_t n = g.n();
  std::vector<std::uint64_t> deg(n), core(n, 0);
  std::vector<bool> removed(n, false);
  for (gvid_t v = 0; v < n; ++v) deg[v] = g.out_degree(v) + g.in_degree(v);

  // Peel in nondecreasing current-degree order (bucket-free O(n^2 worst),
  // fine at reference scale).  core(v) = the running max of the minimum
  // degree observed up to v's removal.
  std::uint64_t max_so_far = 0;
  for (gvid_t step = 0; step < n; ++step) {
    gvid_t pick = kNullGvid;
    std::uint64_t dmin = ~std::uint64_t{0};
    for (gvid_t v = 0; v < n; ++v)
      if (!removed[v] && deg[v] < dmin) {
        dmin = deg[v];
        pick = v;
      }
    if (pick == kNullGvid) break;
    removed[pick] = true;
    max_so_far = std::max(max_so_far, dmin);
    core[pick] = max_so_far;
    for (const gvid_t u : g.out_neighbors(pick))
      if (!removed[u] && deg[u] > 0) --deg[u];
    for (const gvid_t u : g.in_neighbors(pick))
      if (!removed[u] && deg[u] > 0) --deg[u];
  }
  return core;
}

std::vector<std::uint64_t> label_propagation(const SeqGraph& g,
                                             int iterations,
                                             std::uint64_t tie_seed) {
  const gvid_t n = g.n();
  std::vector<std::uint64_t> labels(n), next(n);
  for (gvid_t v = 0; v < n; ++v) labels[v] = v;

  LabelCounter lmap;
  for (int it = 0; it < iterations; ++it) {
    for (gvid_t v = 0; v < n; ++v) {
      lmap.clear();
      for (const gvid_t u : g.out_neighbors(v)) lmap.add(labels[u]);
      for (const gvid_t u : g.in_neighbors(v)) lmap.add(labels[u]);
      next[v] = lmap.argmax(tie_seed + static_cast<std::uint64_t>(it),
                            labels[v]);
    }
    labels.swap(next);
  }
  return labels;
}

std::vector<std::uint64_t> sssp_dijkstra(const SeqGraph& g, gvid_t root,
                                         std::uint64_t max_weight) {
  std::vector<std::uint64_t> dist(g.n(), kInfDistance);
  using Entry = std::pair<std::uint64_t, gvid_t>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[root] = 0;
  pq.push({0, root});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;  // stale entry
    for (const gvid_t u : g.out_neighbors(v)) {
      const std::uint64_t cand =
          d + hpcgraph::splitmix64(v * 0x9ddfea08eb382d69ULL + u) %
                  max_weight + 1;
      if (cand < dist[u]) {
        dist[u] = cand;
        pq.push({cand, u});
      }
    }
  }
  return dist;
}

std::vector<double> betweenness_brandes(const SeqGraph& g,
                                        std::span<const gvid_t> sources) {
  const gvid_t n = g.n();
  std::vector<double> score(n, 0.0);
  std::vector<std::int64_t> level(n);
  std::vector<double> sigma(n), delta(n);

  for (const gvid_t s : sources) {
    std::fill(level.begin(), level.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    level[s] = 0;
    sigma[s] = 1.0;

    // Level-synchronous forward sweep (multi-edges count as distinct
    // paths), recording per-level frontiers.
    std::vector<std::vector<gvid_t>> frontiers{{s}};
    while (!frontiers.back().empty()) {
      std::vector<gvid_t> next;
      const std::int64_t l = static_cast<std::int64_t>(frontiers.size()) - 1;
      for (const gvid_t u : frontiers.back())
        for (const gvid_t v : g.out_neighbors(u)) {
          if (level[v] == -1) {
            level[v] = l + 1;
            next.push_back(v);
          }
          if (level[v] == l + 1) sigma[v] += sigma[u];
        }
      frontiers.push_back(std::move(next));
    }

    // Backward dependency accumulation, deepest level first.
    for (std::size_t li = frontiers.size(); li-- > 0;) {
      const std::int64_t l = static_cast<std::int64_t>(li);
      for (const gvid_t u : frontiers[li]) {
        double acc = 0;
        for (const gvid_t v : g.out_neighbors(u))
          if (level[v] == l + 1 && sigma[v] > 0)
            acc += sigma[u] / sigma[v] * (1.0 + delta[v]);
        delta[u] = acc;
      }
    }
    for (gvid_t v = 0; v < n; ++v)
      if (v != s && level[v] > 0) score[v] += delta[v];
  }
  return score;
}

std::uint64_t triangle_count(const SeqGraph& g) {
  const gvid_t n = g.n();
  // Deduplicated undirected adjacency, self loops dropped.
  std::vector<std::vector<gvid_t>> nbrs(n);
  for (gvid_t v = 0; v < n; ++v) {
    auto& a = nbrs[v];
    for (const gvid_t u : g.out_neighbors(v)) a.push_back(u);
    for (const gvid_t u : g.in_neighbors(v)) a.push_back(u);
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    a.erase(std::remove(a.begin(), a.end(), v), a.end());
  }
  // Degree-ordered orientation, then sorted-list intersection per edge.
  const auto rank_lt = [&](gvid_t x, gvid_t y) {
    if (nbrs[x].size() != nbrs[y].size())
      return nbrs[x].size() < nbrs[y].size();
    return x < y;
  };
  std::vector<std::vector<gvid_t>> oriented(n);
  for (gvid_t v = 0; v < n; ++v)
    for (const gvid_t u : nbrs[v])
      if (rank_lt(v, u)) oriented[v].push_back(u);

  std::uint64_t triangles = 0;
  for (gvid_t v = 0; v < n; ++v)
    for (const gvid_t u : oriented[v]) {
      // |N+(v) ∩ N+(u)| closes triangles with v as the lowest corner.
      const auto& a = oriented[v];
      const auto& b = oriented[u];
      std::size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
          ++triangles;
          ++i;
          ++j;
        } else if (a[i] < b[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  return triangles;
}

std::vector<std::uint64_t> normalize_labels(
    const std::vector<std::uint64_t>& labels) {
  std::map<std::uint64_t, std::uint64_t> canon;  // label -> min vertex id
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const auto [it, inserted] = canon.emplace(labels[v], v);
    if (!inserted) it->second = std::min<std::uint64_t>(it->second, v);
  }
  std::vector<std::uint64_t> out(labels.size());
  for (std::size_t v = 0; v < labels.size(); ++v) out[v] = canon[labels[v]];
  return out;
}

}  // namespace hpcgraph::ref
