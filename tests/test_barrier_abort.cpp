/// \file test_barrier_abort.cpp
/// Abort propagation: one rank failing mid-collective must release every
/// peer from the barrier (WorldAborted), unwind all rank stacks cleanly, and
/// surface the root-cause exception from CommWorld::run — never a hang.
///
/// Covers the generation-counter edge in Barrier::wait (barrier.hpp:41): a
/// waiter whose generation already completed must NOT be retroactively
/// poisoned by a later abort, while waiters still parked in the aborted
/// generation must throw.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "parcomm/barrier.hpp"
#include "parcomm/comm.hpp"

namespace {

using hpcgraph::parcomm::Barrier;
using hpcgraph::parcomm::CommWorld;
using hpcgraph::parcomm::Communicator;
using hpcgraph::parcomm::WorldAborted;

// ---------------------------------------------------------------------------
// Barrier unit tests (no CommWorld).
// ---------------------------------------------------------------------------

TEST(BarrierAbort, WaitAfterAbortThrowsImmediately) {
  Barrier b(2);
  EXPECT_FALSE(b.aborted());
  b.abort();
  EXPECT_TRUE(b.aborted());
  EXPECT_THROW(b.wait(), WorldAborted);
  EXPECT_THROW(b.wait(), WorldAborted);  // abort is sticky
}

TEST(BarrierAbort, AbortReleasesParkedWaiters) {
  // 2 of 3 parties arrive and park; the barrier can never complete, so only
  // abort() can release them.  Both must observe WorldAborted (the
  // barrier.hpp:41 same-generation path: aborted_ set, generation unchanged).
  Barrier b(3);
  std::atomic<int> threw{0};
  std::atomic<int> entered{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&] {
      entered.fetch_add(1);
      try {
        b.wait();
      } catch (const WorldAborted&) {
        threw.fetch_add(1);
      }
    });
  }
  while (entered.load() < 2) std::this_thread::yield();
  b.abort();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(threw.load(), 2);
}

TEST(BarrierAbort, CompletedGenerationIsNotRetroactivelyPoisoned) {
  // The other side of barrier.hpp:41: a waiter released by a normal
  // generation bump may wake *after* a subsequent abort() has set aborted_.
  // Its own generation completed, so that wait() must succeed; only the next
  // wait() throws.
  Barrier b(2);
  std::atomic<bool> first_wait_ok{false};
  std::atomic<int> second_wait_threw{0};
  std::thread t([&] {
    b.wait();  // completes when the main thread arrives
    first_wait_ok.store(true);
    try {
      b.wait();  // parked alone in the new generation until abort
    } catch (const WorldAborted&) {
      second_wait_threw.fetch_add(1);
    }
  });
  b.wait();   // completes generation 0, releasing the thread
  b.abort();  // may race the thread's wake-up from generation 0 — that is
              // the point: line 41 must see generation_ != my_gen
  t.join();
  EXPECT_TRUE(first_wait_ok.load());
  EXPECT_EQ(second_wait_threw.load(), 1);
}

TEST(BarrierAbort, SingleSelfReleasingPartyUnaffectedUntilAbort) {
  Barrier b(1);
  EXPECT_NO_THROW(b.wait());
  EXPECT_NO_THROW(b.wait());
  b.abort();
  EXPECT_THROW(b.wait(), WorldAborted);
}

// ---------------------------------------------------------------------------
// CommWorld abort propagation: a throwing rank mid-collective.
// ---------------------------------------------------------------------------

/// Destructor-counted guard proving each rank's stack unwound normally.
class UnwindSentinel {
 public:
  explicit UnwindSentinel(std::atomic<int>& counter) : counter_(counter) {}
  ~UnwindSentinel() { counter_.fetch_add(1); }
  UnwindSentinel(const UnwindSentinel&) = delete;
  UnwindSentinel& operator=(const UnwindSentinel&) = delete;

 private:
  std::atomic<int>& counter_;
};

class CommWorldAbortTest : public ::testing::TestWithParam<int> {};

TEST_P(CommWorldAbortTest, ThrowingRankReleasesPeersStuckInBarrier) {
  const int nranks = GetParam();
  CommWorld world(nranks);
  std::atomic<int> unwound{0};
  try {
    world.run([&unwound](Communicator& comm) {
      const UnwindSentinel sentinel(unwound);
      if (comm.rank() == 1) throw std::runtime_error("rank 1 exploded");
      comm.barrier();  // without abort propagation this would hang forever
      (void)comm.allreduce_sum(std::uint64_t{1});
    });
    FAIL() << "the rank's exception must surface from run()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 exploded");
  }
  EXPECT_EQ(unwound.load(), nranks) << "every rank must unwind cleanly";
}

TEST_P(CommWorldAbortTest, ThrowAfterSuccessfulCollectiveMidAlltoallv) {
  const int nranks = GetParam();
  CommWorld world(nranks);
  std::atomic<int> unwound{0};
  std::vector<std::uint64_t> first_reduce(
      static_cast<std::size_t>(nranks), 0);
  try {
    world.run([&](Communicator& comm) {
      const UnwindSentinel sentinel(unwound);
      // One full collective succeeds on every rank first...
      first_reduce[static_cast<std::size_t>(comm.rank())] =
          comm.allreduce_sum(std::uint64_t{1});
      // ...then the last rank dies while the others enter an alltoallv.
      if (comm.rank() == comm.size() - 1)
        throw std::runtime_error("died between collectives");
      const std::vector<std::uint64_t> counts(
          static_cast<std::size_t>(comm.size()), 2);
      const std::vector<std::uint64_t> payload(
          static_cast<std::size_t>(2 * comm.size()),
          static_cast<std::uint64_t>(comm.rank()));
      (void)comm.alltoallv<std::uint64_t>(payload, counts);
    });
    FAIL() << "the rank's exception must surface from run()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "died between collectives");
  }
  EXPECT_EQ(unwound.load(), nranks);
  for (int r = 0; r < nranks; ++r)
    EXPECT_EQ(first_reduce[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(nranks))
        << "rank " << r;
}

TEST_P(CommWorldAbortTest, LowestRankRootCauseWinsOverLaterFailures) {
  const int nranks = GetParam();
  CommWorld world(nranks);
  try {
    world.run([](Communicator& comm) {
      // Two ranks fail independently; peers become WorldAborted casualties.
      if (comm.rank() == 1) throw std::runtime_error("boom from rank 1");
      if (comm.rank() == comm.size() - 1 && comm.rank() != 1)
        throw std::runtime_error("boom from last rank");
      comm.barrier();
    });
    FAIL() << "a rank exception must surface from run()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom from rank 1")
        << "run() must rethrow the lowest-rank root cause, "
           "never a WorldAborted casualty";
  }
}

TEST_P(CommWorldAbortTest, WorldIsReusableAfterAbort) {
  const int nranks = GetParam();
  CommWorld world(nranks);
  EXPECT_THROW(world.run([](Communicator& comm) {
    if (comm.rank() == 0) throw std::runtime_error("first run dies");
    comm.barrier();
  }),
               std::runtime_error);
  // run() re-arms the barrier (abort is sticky per-Barrier, not per-world).
  std::vector<std::uint64_t> out(static_cast<std::size_t>(nranks), 0);
  world.run([&out](Communicator& comm) {
    comm.barrier();
    out[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce_sum(std::uint64_t{2});
  });
  for (int r = 0; r < nranks; ++r)
    EXPECT_EQ(out[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(2 * nranks));
}

INSTANTIATE_TEST_SUITE_P(Worlds, CommWorldAbortTest, ::testing::Values(2, 4),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "ranks" + std::to_string(pinfo.param);
                         });

}  // namespace
