// The observability layer (DESIGN.md §13): lane ring-buffer semantics, span
// nesting and the no-tracer degradation, pool-worker lane attribution, the
// cross-rank clock-sync/gather finalize (rebased timestamps stay monotone
// per lane at 2-4 ranks), Chrome-trace JSON well-formedness, and the metrics
// registry — including the pinned dotted names: renaming one is a schema
// change that must show up here, not slip through as a refactor.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "parcomm/comm.hpp"
#include "util/json.hpp"
#include "util/parallel_for.hpp"

namespace hpcgraph::obs {
namespace {

using parcomm::CommWorld;
using parcomm::Communicator;

// ---- Lane ring buffer. ----

Event ev(const char* name, std::int64_t ts) {
  Event e;
  e.name = name;
  e.ts_ns = ts;
  e.dur_ns = 1;
  return e;
}

TEST(Lane, RetainsEverythingBelowCapacity) {
  Lane lane(0, 0, 8);
  for (int i = 0; i < 5; ++i) lane.push(ev("a", i));
  EXPECT_EQ(lane.recorded(), 5u);
  EXPECT_EQ(lane.dropped(), 0u);
  EXPECT_EQ(lane.size(), 5u);
  const std::vector<Event> snap = lane.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(snap[i].ts_ns, i);
}

TEST(Lane, WraparoundDropsOldestKeepsOrder) {
  Lane lane(0, 0, 4);
  for (int i = 0; i < 11; ++i) lane.push(ev("a", i));
  EXPECT_EQ(lane.recorded(), 11u);
  EXPECT_EQ(lane.dropped(), 7u);  // overflow overwrites, never stalls
  EXPECT_EQ(lane.size(), 4u);
  const std::vector<Event> snap = lane.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(snap[i].ts_ns, 7 + i);  // newest 4
}

// ---- Span / counter recording. ----

TEST(Span, UnboundThreadDegradesToTimer) {
  ASSERT_EQ(Tracer::current(), nullptr);
  Span sp("unbound");
  const double s = sp.close();
  EXPECT_GE(s, 0.0);
  EXPECT_GE(sp.close(), s);  // idempotent: keeps returning elapsed
  counter("unbound.counter", 1.0);  // no-op, must not crash
}

TEST(Span, NestedSpansRecordInCloseOrder) {
  Tracer tracer;
  tracer.install();
  {
    RankGuard guard(0);
    Span outer(span_name::kSuperstep);
    {
      Span inner(span_name::kGhostPack);
      EXPECT_GT(inner.close(), 0.0);
    }
    counter(counter_name::kFrontierActive, 42.0);
  }
  Tracer::uninstall();

  const std::vector<Event> events = tracer.rank_events(0);
  ASSERT_EQ(events.size(), 3u);
  // Inner closes first, then the counter, then the outer span's destructor.
  EXPECT_STREQ(events[0].name, span_name::kGhostPack);
  EXPECT_EQ(events[1].kind, EventKind::kCounter);
  EXPECT_EQ(events[1].value, 42.0);
  EXPECT_STREQ(events[2].name, span_name::kSuperstep);
  // Nesting: the outer span's window contains the inner's.
  EXPECT_LE(events[2].ts_ns, events[0].ts_ns);
  EXPECT_GE(events[2].ts_ns + events[2].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
}

TEST(Span, RankGuardRestoresPreviousBinding) {
  Tracer tracer;
  tracer.install();
  {
    RankGuard outer(0);
    Lane* lane0 = detail::tls_binding().lane;
    ASSERT_NE(lane0, nullptr);
    {
      RankGuard inner(1);
      EXPECT_NE(detail::tls_binding().lane, lane0);
    }
    EXPECT_EQ(detail::tls_binding().lane, lane0);
  }
  Tracer::uninstall();
  EXPECT_EQ(detail::tls_binding().lane, nullptr);
}

TEST(Tracer, PoolWorkersGetTheirOwnLanes) {
  Tracer tracer;
  tracer.install();
  {
    RankGuard guard(0);
    ThreadPool tp(3);  // constructed under the guard -> observer captures
    tp.for_range(0, 4096, Schedule::kStatic,
                 [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
                   volatile std::uint64_t sink = 0;
                   for (std::uint64_t i = lo; i < hi; ++i) sink = sink + i;
                 });
  }
  Tracer::uninstall();

  const std::vector<const Lane*> lanes = tracer.rank_lanes(0);
  ASSERT_GE(lanes.size(), 2u);  // main lane + at least one worker lane
  bool saw_sweep = false;
  for (const Lane* lane : lanes)
    for (const Event& e : lane->snapshot())
      if (std::string(e.name) == span_name::kPoolSweep) saw_sweep = true;
  EXPECT_TRUE(saw_sweep);
}

// ---- Cross-rank finalize: clock rebase + gather + Chrome JSON. ----

TEST(Finalize, RebasedTimelineIsMonotonePerLaneAcrossRanks) {
  for (const int nranks : {2, 4}) {
    SCOPED_TRACE(nranks);
    Tracer tracer;
    tracer.install();
    CommWorld world(nranks);
    world.run([&](Communicator& comm) {
      RankGuard guard(comm.rank());
      for (int i = 0; i < 3; ++i) {
        Span sp(span_name::kSuperstep);
        counter(counter_name::kWireBytes, static_cast<double>(i));
      }
      finalize_trace(tracer, comm);
    });
    Tracer::uninstall();

    const std::vector<MergedEvent>& merged = tracer.merged_events();
    // 3 spans + 3 counters per rank, all gathered onto rank 0.
    EXPECT_EQ(merged.size(), static_cast<std::size_t>(6 * nranks));
    for (int r = 0; r < nranks; ++r) {
      // Rank 0's offset is exactly 0; the others are the barrier exit skew.
      if (r == 0) {
        EXPECT_EQ(tracer.merged_clock_offset(0), 0);
      }
      std::int64_t prev = -1;
      for (const MergedEvent& e : merged) {
        if (e.rank != r || e.kind != EventKind::kSpan) continue;
        EXPECT_GE(e.ts_ns, prev);  // rebase preserves per-lane order
        EXPECT_GE(e.dur_ns, 0);
        prev = e.ts_ns;
      }
    }

    const std::string json = tracer.chrome_json();
    EXPECT_TRUE(util::JsonChecker::valid(json));
    EXPECT_NE(json.find("hpcgraph-trace-events-v1"), std::string::npos);
    for (int r = 0; r < nranks; ++r)
      EXPECT_NE(json.find("rank " + std::to_string(r)), std::string::npos);
    EXPECT_NE(json.find(span_name::kSuperstep), std::string::npos);
    EXPECT_NE(json.find(counter_name::kWireBytes), std::string::npos);
  }
}

TEST(Finalize, SerializeRoundTripsDropCounts) {
  Tracer tracer;
  TracerOptions small;
  small.ring_capacity = 4;
  Tracer tiny(small);
  Lane* lane = tiny.lane(3, 0);
  for (int i = 0; i < 10; ++i) lane->push(ev("x", i));
  const std::vector<std::uint8_t> blob = tiny.serialize_rank(3, 123);
  tracer.merge_serialized(blob.data(), blob.size());
  EXPECT_EQ(tracer.merged_clock_offset(3), 123);
  ASSERT_EQ(tracer.merged_events().size(), 4u);
  for (const MergedEvent& e : tracer.merged_events()) {
    EXPECT_EQ(e.rank, 3);
    EXPECT_EQ(tracer.merged_names()[e.name_id], "x");
  }
  // Drop totals surface in the exported document.
  EXPECT_NE(tracer.chrome_json().find("\"dropped_events\":6"),
            std::string::npos);
}

// ---- Metrics registry. ----

TEST(Registry, PinnedDottedNames) {
  parcomm::CommStats cs;
  cs.bytes_sent = 7;
  cs.ghost_bytes_saved = -3;
  parcomm::PhaseBreakdown pb;
  pb.comm = 1.5;
  pb.wait = 0.25;
  SweepStats sw;
  sw.busy_max = 0.5;
  sw.loops = 2;

  Registry reg;
  reg.absorb(cs);
  reg.absorb(pb);
  reg.absorb(sw);

  // The stable export names (DESIGN.md §13).  comm.* and phase.* come from
  // the comm_field/phase_field constants, so trace JSON and metrics JSON
  // can never drift apart; a rename must touch this list on purpose.
  for (const char* name :
       {"comm.bytes_sent", "comm.bytes_remote", "comm.bytes_self",
        "comm.bytes_received", "comm.collective_calls", "comm.barrier_calls",
        "comm.ghost_rounds_dense", "comm.ghost_rounds_sparse",
        "comm.ghost_rounds_reduce", "comm.ghost_rounds_async",
        "comm.ghost_bytes_saved", "phase.comp_s", "phase.comm_s",
        "phase.idle_s", "phase.pack_s", "phase.route_s", "phase.comm_wait_s",
        "phase.total_s", "sweep.busy_max_s", "sweep.busy_total_s",
        "sweep.work_max", "sweep.work_total", "sweep.loops"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("comm.bytes_sent")->count, 7u);
  EXPECT_EQ(reg.find("comm.ghost_bytes_saved")->gauge, -3.0);  // signed
  EXPECT_EQ(reg.find("phase.comm_wait_s")->gauge, 0.25);
  EXPECT_EQ(reg.find("sweep.loops")->count, 2u);
}

TEST(Registry, SerializeRoundTripAndJson) {
  Registry reg;
  reg.add_counter("a.count", 3);
  reg.add_counter("a.count", 4);
  reg.set_gauge("b.gauge", -1.5);
  reg.histogram("c.hist").add(1);
  reg.histogram("c.hist").add(100, 2);

  const std::vector<std::uint8_t> blob = reg.serialize();
  const Registry back = Registry::deserialize(blob.data(), blob.size());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.find("a.count")->count, 7u);
  EXPECT_EQ(back.find("b.gauge")->gauge, -1.5);
  EXPECT_EQ(back.find("c.hist")->hist.total(), 3u);
  EXPECT_EQ(back.to_json(), reg.to_json());
  EXPECT_TRUE(util::JsonChecker::valid(reg.to_json()));
}

TEST(Registry, KindMismatchIsFatal) {
  Registry reg;
  reg.add_counter("x", 1);
  EXPECT_THROW(reg.set_gauge("x", 1.0), CheckError);
}

TEST(Registry, ExportAggregatesAcrossRanks) {
  for (const int nranks : {2, 3}) {
    SCOPED_TRACE(nranks);
    std::string doc;
    CommWorld world(nranks);
    world.run([&](Communicator& comm) {
      Registry reg;
      reg.add_counter("t.count", static_cast<std::uint64_t>(comm.rank() + 1));
      reg.set_gauge("t.gauge", static_cast<double>(comm.rank()));
      reg.histogram("t.hist").add(1u << comm.rank());
      const std::string payload = export_metrics(reg, comm);
      if (comm.rank() == 0) doc = payload;
      EXPECT_EQ(payload.empty(), comm.rank() != 0);
    });

    ASSERT_FALSE(doc.empty());
    EXPECT_TRUE(util::JsonChecker::valid(doc));
    EXPECT_NE(doc.find("\"schema\":\"hpcgraph-metrics-v1\""),
              std::string::npos);
    // counter aggregate: sum = 1+..+n, max = n.
    const std::uint64_t sum =
        static_cast<std::uint64_t>(nranks) *
        static_cast<std::uint64_t>(nranks + 1) / 2;
    EXPECT_NE(doc.find("\"sum\":" + std::to_string(sum)),
              std::string::npos);
    EXPECT_NE(doc.find("\"max\":" + std::to_string(nranks)),
              std::string::npos);
  }
}

}  // namespace
}  // namespace hpcgraph::obs
