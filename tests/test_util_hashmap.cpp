// Tests for the linear-probing hash map (Table II `map`) and the label
// counter (`lmap` of Algorithm 1).

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "util/label_counter.hpp"
#include "util/lp_hash_map.hpp"
#include "util/rng.hpp"

namespace hpcgraph {
namespace {

// ---------- LpHashMap ----------

TEST(LpHashMap, EmptyFindsNothing) {
  LpHashMap m;
  EXPECT_EQ(m.find(0), LpHashMap::kNotFound);
  EXPECT_EQ(m.find(12345), LpHashMap::kNotFound);
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.size(), 0u);
}

TEST(LpHashMap, InsertThenFind) {
  LpHashMap m;
  m.insert(42, 7);
  EXPECT_EQ(m.find(42), 7u);
  EXPECT_EQ(m.at(42), 7u);
  EXPECT_TRUE(m.contains(42));
  EXPECT_EQ(m.size(), 1u);
}

TEST(LpHashMap, OverwriteExistingKey) {
  LpHashMap m;
  m.insert(5, 1);
  m.insert(5, 2);
  EXPECT_EQ(m.find(5), 2u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(LpHashMap, AtThrowsOnMissingKey) {
  LpHashMap m;
  m.insert(1, 1);
  EXPECT_THROW(m.at(2), CheckError);
}

TEST(LpHashMap, GrowsBeyondInitialCapacity) {
  LpHashMap m(4);
  const std::size_t initial_cap = m.capacity();
  for (std::uint64_t k = 0; k < 10000; ++k) m.insert(k * 3 + 1, static_cast<std::uint32_t>(k));
  EXPECT_GT(m.capacity(), initial_cap);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(m.find(k * 3 + 1), static_cast<std::uint32_t>(k)) << k;
  }
  EXPECT_EQ(m.size(), 10000u);
}

TEST(LpHashMap, MatchesStdUnorderedMapOnRandomWorkload) {
  LpHashMap m;
  std::unordered_map<std::uint64_t, std::uint32_t> oracle;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.below(5000) * 1315423911ULL;
    const auto val = static_cast<std::uint32_t>(rng.below(1 << 30));
    m.insert(key, val);
    oracle[key] = val;
  }
  EXPECT_EQ(m.size(), oracle.size());
  for (const auto& [k, v] : oracle) ASSERT_EQ(m.find(k), v);
  // Absent keys still miss.
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = (rng.below(5000) + 6000) * 1315423911ULL;
    if (!oracle.count(key)) {
      ASSERT_EQ(m.find(key), LpHashMap::kNotFound);
    }
  }
}

TEST(LpHashMap, ReserveResetsContents) {
  LpHashMap m;
  m.insert(1, 1);
  m.reserve(100);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), LpHashMap::kNotFound);
}

TEST(LpHashMap, HandlesAdversarialCollidingKeys) {
  // Keys chosen to collide in low bits; linear probing must still resolve.
  LpHashMap m(8);
  for (std::uint64_t k = 0; k < 512; ++k) m.insert(k << 32, static_cast<std::uint32_t>(k));
  for (std::uint64_t k = 0; k < 512; ++k)
    ASSERT_EQ(m.find(k << 32), static_cast<std::uint32_t>(k));
}

// ---------- LabelCounter ----------

TEST(LabelCounter, CountsOccurrences) {
  LabelCounter c;
  c.add(5);
  c.add(5);
  EXPECT_EQ(c.add(5), 3u);
  EXPECT_EQ(c.add(7), 1u);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(LabelCounter, ArgmaxPicksMostFrequent) {
  LabelCounter c;
  c.add(1);
  c.add(2);
  c.add(2);
  c.add(3);
  EXPECT_EQ(c.argmax(0, 999), 2u);
}

TEST(LabelCounter, ArgmaxFallbackWhenEmpty) {
  LabelCounter c;
  EXPECT_EQ(c.argmax(0, 42), 42u);
  c.add(1);
  c.clear();
  EXPECT_EQ(c.argmax(0, 43), 43u);
}

TEST(LabelCounter, ClearIsConstantTimeReset) {
  LabelCounter c;
  for (int round = 0; round < 1000; ++round) {
    c.clear();
    c.add(static_cast<std::uint64_t>(round));
    EXPECT_EQ(c.distinct(), 1u);
    EXPECT_EQ(c.argmax(0, 0), static_cast<std::uint64_t>(round));
  }
}

TEST(LabelCounter, TieBreakIsDeterministicPerSeed) {
  LabelCounter c;
  c.add(10);
  c.add(20);  // tie: both count 1
  const std::uint64_t pick1 = c.argmax(123, 0);
  const std::uint64_t pick2 = c.argmax(123, 0);
  EXPECT_EQ(pick1, pick2);
  EXPECT_TRUE(pick1 == 10 || pick1 == 20);
}

TEST(LabelCounter, TieBreakVariesWithSeed) {
  // With two tied labels, different seeds should pick both sides at least
  // once over many seeds.
  int picked10 = 0, picked20 = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    LabelCounter c;
    c.add(10);
    c.add(20);
    (c.argmax(seed, 0) == 10 ? picked10 : picked20)++;
  }
  EXPECT_GT(picked10, 0);
  EXPECT_GT(picked20, 0);
}

TEST(LabelCounter, WeightedAdds) {
  LabelCounter c;
  c.add(1, 5);
  c.add(2, 3);
  c.add(2, 3);
  EXPECT_EQ(c.argmax(0, 0), 2u);  // 6 > 5
}

TEST(LabelCounter, GrowsPastInitialCapacity) {
  LabelCounter c(4);
  for (std::uint64_t l = 0; l < 5000; ++l) c.add(l, l + 1);
  EXPECT_EQ(c.distinct(), 5000u);
  EXPECT_EQ(c.argmax(0, 0), 4999u);  // highest weight wins
}

TEST(LabelCounter, MatchesStdMapOracle) {
  LabelCounter c;
  std::map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t label = rng.below(100);
    c.add(label);
    ++oracle[label];
  }
  // The counter's argmax must be *an* oracle max (ties possible).
  std::uint64_t max_count = 0;
  for (const auto& [l, n] : oracle) max_count = std::max(max_count, n);
  const std::uint64_t picked = c.argmax(0, 0);
  EXPECT_EQ(oracle[picked], max_count);
}

}  // namespace
}  // namespace hpcgraph
