// Tests for the graph generators: determinism, target sizes, degree skew,
// and — for the webgraph WC substitute — the planted structural ground
// truth the analytics tests rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "gen/degree_tools.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/social.hpp"
#include "gen/webgraph.hpp"

namespace hpcgraph::gen {
namespace {

// ---------- R-MAT ----------

TEST(Rmat, SizesMatchParameters) {
  RmatParams p;
  p.scale = 12;
  p.avg_degree = 8;
  const EdgeList g = rmat(p);
  EXPECT_EQ(g.n, 1u << 12);
  EXPECT_EQ(g.m(), (1u << 12) * 8u);
  for (const Edge& e : g.edges) {
    ASSERT_LT(e.src, g.n);
    ASSERT_LT(e.dst, g.n);
  }
}

TEST(Rmat, DeterministicForSeed) {
  RmatParams p;
  p.scale = 10;
  p.seed = 5;
  const EdgeList a = rmat(p), b = rmat(p);
  EXPECT_EQ(a.edges, b.edges);
  p.seed = 6;
  const EdgeList c = rmat(p);
  EXPECT_NE(a.edges, c.edges);
}

TEST(Rmat, ProducesDegreeSkew) {
  RmatParams p;
  p.scale = 14;
  p.avg_degree = 16;
  const EdgeList g = rmat(p);
  const auto deg = out_degrees(g);
  const std::uint32_t dmax = *std::max_element(deg.begin(), deg.end());
  // R-MAT with Graph500 parameters is strongly skewed: the max degree is
  // far above the average.
  EXPECT_GT(dmax, 16u * 8u);
}

TEST(Rmat, ScrambleChangesIdsNotCount) {
  RmatParams p;
  p.scale = 10;
  p.scramble_ids = false;
  const EdgeList plain = rmat(p);
  p.scramble_ids = true;
  const EdgeList scrambled = rmat(p);
  EXPECT_EQ(plain.m(), scrambled.m());
  EXPECT_NE(plain.edges, scrambled.edges);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.9;  // sums to > 1 with defaults
  EXPECT_THROW(rmat(p), CheckError);
}

// ---------- Erdős–Rényi ----------

TEST(ErdosRenyi, SizesAndRange) {
  ErParams p;
  p.n = 5000;
  p.m = 40000;
  const EdgeList g = erdos_renyi(p);
  EXPECT_EQ(g.n, 5000u);
  EXPECT_EQ(g.m(), 40000u);
  for (const Edge& e : g.edges) {
    ASSERT_LT(e.src, g.n);
    ASSERT_LT(e.dst, g.n);
  }
}

TEST(ErdosRenyi, Deterministic) {
  ErParams p;
  p.seed = 9;
  EXPECT_EQ(erdos_renyi(p).edges, erdos_renyi(p).edges);
}

TEST(ErdosRenyi, DegreesConcentrateAroundMean) {
  ErParams p;
  p.n = 1 << 14;
  p.m = (1u << 14) * 16;
  const EdgeList g = erdos_renyi(p);
  const auto deg = out_degrees(g);
  const std::uint32_t dmax = *std::max_element(deg.begin(), deg.end());
  // Poisson(16) tail: max degree stays within a small factor of the mean —
  // the defining contrast with R-MAT.
  EXPECT_LT(dmax, 16u * 4u);
}

// ---------- webgraph (WC substitute) ----------

class WebGraphTest : public ::testing::Test {
 protected:
  static WebGraph make(gvid_t n = 1 << 14) {
    WebGraphParams p;
    p.n = n;
    p.avg_degree = 12;
    p.seed = 3;
    return webgraph(p);
  }
};

TEST_F(WebGraphTest, SegmentsPartitionIdSpace) {
  const WebGraph wg = make();
  EXPECT_EQ(wg.disc.begin, 0u);
  EXPECT_EQ(wg.disc.end, wg.in.begin);
  EXPECT_EQ(wg.in.end, wg.core.begin);
  EXPECT_EQ(wg.core.end, wg.out.begin);
  EXPECT_EQ(wg.out.end, wg.tendril.begin);
  EXPECT_EQ(wg.tendril.end, wg.graph.n);
  EXPECT_GT(wg.core.size(), wg.graph.n / 3);
}

TEST_F(WebGraphTest, Deterministic) {
  const WebGraph a = make(), b = make();
  EXPECT_EQ(a.graph.edges, b.graph.edges);
  EXPECT_EQ(a.comm_of, b.comm_of);
}

TEST_F(WebGraphTest, EdgeCountNearTarget) {
  const WebGraph wg = make();
  const double avg = wg.graph.avg_degree();
  EXPECT_GT(avg, 9.0);
  EXPECT_LT(avg, 15.0);
}

TEST_F(WebGraphTest, CoreRingPresent) {
  const WebGraph wg = make();
  // The deterministic ring guarantees the core is one SCC: every core
  // vertex must have an out-edge to its ring successor.
  std::set<std::pair<gvid_t, gvid_t>> edges;
  for (const Edge& e : wg.graph.edges) edges.insert({e.src, e.dst});
  for (gvid_t v = wg.core.begin; v < wg.core.end; ++v) {
    const gvid_t nxt = (v + 1 == wg.core.end) ? wg.core.begin : v + 1;
    ASSERT_TRUE(edges.count({v, nxt})) << "missing ring edge at " << v;
  }
}

TEST_F(WebGraphTest, DiscIslandsAreClosed) {
  const WebGraph wg = make();
  for (const Edge& e : wg.graph.edges) {
    const bool src_disc = wg.disc.contains(e.src);
    const bool dst_disc = wg.disc.contains(e.dst);
    // No edge crosses the DISC boundary in either direction.
    ASSERT_EQ(src_disc, dst_disc) << e.src << "->" << e.dst;
    if (src_disc) {
      ASSERT_EQ(wg.comm_of[e.src], wg.comm_of[e.dst]);
    }
  }
}

TEST_F(WebGraphTest, NoEdgesBackIntoCoreFromOutOrTendril) {
  const WebGraph wg = make();
  for (const Edge& e : wg.graph.edges) {
    if (wg.out.contains(e.src) || wg.tendril.contains(e.src)) {
      ASSERT_FALSE(wg.core.contains(e.dst))
          << "SCC-breaking back edge " << e.src << "->" << e.dst;
      ASSERT_FALSE(wg.in.contains(e.dst));
    }
  }
}

TEST_F(WebGraphTest, InSegmentNeverReceivesFromCore) {
  const WebGraph wg = make();
  for (const Edge& e : wg.graph.edges) {
    if (wg.core.contains(e.src)) {
      ASSERT_FALSE(wg.in.contains(e.dst));
    }
  }
}

TEST_F(WebGraphTest, CommunitiesAreContiguousBlocks) {
  const WebGraph wg = make();
  for (gvid_t v = 1; v < wg.graph.n; ++v) {
    const auto a = wg.comm_of[v - 1], b = wg.comm_of[v];
    ASSERT_TRUE(b == a || b == a + 1) << "non-contiguous community at " << v;
  }
  EXPECT_EQ(wg.comm_of.back() + 1, wg.num_communities);
}

TEST_F(WebGraphTest, HubsLiveInCoreAndAreHot) {
  const WebGraph wg = make();
  const auto indeg = in_degrees(wg.graph);
  double hub_avg = 0;
  for (const gvid_t h : wg.hubs) {
    ASSERT_TRUE(wg.core.contains(h));
    hub_avg += indeg[h];
  }
  hub_avg /= static_cast<double>(wg.hubs.size());
  const double overall_avg =
      static_cast<double>(wg.graph.m()) / static_cast<double>(wg.graph.n);
  EXPECT_GT(hub_avg, overall_avg * 20);  // hubs dominate in-degree
}

TEST_F(WebGraphTest, VertexNamesAreStable) {
  const WebGraph wg = make();
  EXPECT_EQ(webgraph_vertex_name(wg, wg.hubs[0]), "creativecommons.org/");
  const gvid_t v = wg.in.begin;
  EXPECT_EQ(webgraph_vertex_name(wg, v), webgraph_vertex_name(wg, v));
  EXPECT_NE(webgraph_vertex_name(wg, v).find("site"), std::string::npos);
}

TEST_F(WebGraphTest, HasSmallCommunities) {
  // Figure 5's head: communities of size 1 and 2 must exist.
  const WebGraph wg = make(1 << 15);
  std::vector<std::uint64_t> sizes(wg.num_communities, 0);
  for (const auto c : wg.comm_of) ++sizes[c];
  EXPECT_TRUE(std::find(sizes.begin(), sizes.end(), 1u) != sizes.end());
  EXPECT_TRUE(std::find(sizes.begin(), sizes.end(), 2u) != sizes.end());
}

// ---------- social presets ----------

TEST(Social, PresetSizeOrderingMatchesTableI) {
  const EdgeList tw = twitter_like(256);
  const EdgeList lj = livejournal_like(256);
  const EdgeList gg = google_like(256);
  const EdgeList host = host_like(256);
  const EdgeList pay = pay_like(256);
  // Published vertex ordering: Host > Twitter > Pay > LiveJournal > Google.
  EXPECT_GT(host.n, tw.n);
  EXPECT_GT(tw.n, pay.n);
  EXPECT_GT(pay.n, lj.n);
  EXPECT_GE(lj.n, gg.n);
}

TEST(Social, Deterministic) {
  EXPECT_EQ(google_like(64, 7).edges, google_like(64, 7).edges);
}

TEST(Social, EdgesInRange) {
  const EdgeList g = livejournal_like(256);
  for (const Edge& e : g.edges) {
    ASSERT_LT(e.src, g.n);
    ASSERT_LT(e.dst, g.n);
  }
}

TEST(Social, TwitterSkewExceedsGoogleSkew) {
  const EdgeList tw = twitter_like(512);
  const EdgeList gg = google_like(64);
  const auto dtw = in_degrees(tw);
  const auto dgg = in_degrees(gg);
  const double tw_max_ratio =
      static_cast<double>(*std::max_element(dtw.begin(), dtw.end())) /
      (static_cast<double>(tw.m()) / tw.n);
  const double gg_max_ratio =
      static_cast<double>(*std::max_element(dgg.begin(), dgg.end())) /
      (static_cast<double>(gg.m()) / gg.n);
  EXPECT_GT(tw_max_ratio, gg_max_ratio);
}

// ---------- degree tools ----------

TEST(DegreeTools, CountsMatchHandGraph) {
  EdgeList g;
  g.n = 4;
  g.edges = {{0, 1}, {0, 2}, {1, 2}, {3, 3}};
  EXPECT_EQ(out_degrees(g), (std::vector<std::uint32_t>{2, 1, 0, 1}));
  EXPECT_EQ(in_degrees(g), (std::vector<std::uint32_t>{0, 1, 2, 1}));
  EXPECT_EQ(total_degrees(g), (std::vector<std::uint32_t>{2, 2, 2, 2}));
}

TEST(DegreeTools, TopKByDegree) {
  EdgeList g;
  g.n = 5;
  // degrees (total): v0=3, v1=1, v2=2, v3=0, v4=2
  g.edges = {{0, 1}, {0, 2}, {0, 4}, {2, 4}};
  const auto top = top_k_by_degree(g, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 2u);  // tie with v4 broken by lower id
  EXPECT_EQ(top[2], 4u);
}

TEST(DegreeTools, TopKClampsToN) {
  EdgeList g;
  g.n = 3;
  g.edges = {{0, 1}};
  EXPECT_EQ(top_k_by_degree(g, 100).size(), 3u);
}

}  // namespace
}  // namespace hpcgraph::gen
