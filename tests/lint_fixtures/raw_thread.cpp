// Fixture: raw std::thread / std::mutex in algorithm code.  Cross-rank
// coordination must go through parcomm collectives; intra-rank pool sync
// through the util helpers.
// EXPECT-LINT: raw-sync

#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcgraph::analytics {

struct DegreeSum {
  std::mutex mu;            // raw lock in analytics code
  std::uint64_t total = 0;

  void accumulate(const std::vector<std::uint64_t>& degs) {
    std::thread worker([this, &degs] {
      std::uint64_t local = 0;
      for (const auto d : degs) local += d;
      const std::lock_guard<std::mutex> lk(mu);
      total += local;
    });
    worker.join();
  }
};

}  // namespace hpcgraph::analytics
