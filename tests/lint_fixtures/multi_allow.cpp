// Fixture: one lint:allow comment suppressing two rules that fire on the
// same line — a namespace-scope std::atomic trips both mutable-global and
// raw-sync, and the comma-separated allow must cover both.
// EXPECT-CLEAN

#include <atomic>

namespace hpcgraph::analytics {

// lint:allow(raw-sync, mutable-global: fixture exercising comma-separated allows)
std::atomic<int> poll_epoch{0};

}  // namespace hpcgraph::analytics
