// Fixture: template function ships T through a collective without asserting
// std::is_trivially_copyable_v<T> in its own body.  The communicator
// asserts internally, but the error then points at comm.hpp instead of
// this call layer.
// EXPECT-LINT: missing-trivially-copyable-assert

#include <cstdint>
#include <span>
#include <vector>

namespace hpcgraph::analytics {

template <typename Comm, typename T>
std::vector<T> rotate_values(Comm& comm, std::span<const T> vals,
                             std::span<const std::uint64_t> counts) {
  return comm.template alltoallv<T>(vals, counts);
}

}  // namespace hpcgraph::analytics
