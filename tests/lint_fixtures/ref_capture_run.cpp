// Fixture: [&] default capture on a per-rank entry lambda.  Every local in
// the enclosing scope silently becomes cross-rank shared state; captures
// into rank entry points must be spelled out.
// EXPECT-LINT: ref-capture-entry

#include <cstdint>
#include <vector>

namespace hpcgraph::parcomm {
class Communicator {
 public:
  int rank() const { return 0; }
};
class CommWorld {
 public:
  template <typename F>
  void run(F&& fn) {
    Communicator c;
    fn(c);
  }
};
}  // namespace hpcgraph::parcomm

namespace hpcgraph::analytics {

std::uint64_t launch(parcomm::CommWorld& world) {
  std::uint64_t scratch = 0;  // captured by reference on every rank below
  world.run([&](parcomm::Communicator& comm) {
    scratch += static_cast<std::uint64_t>(comm.rank());  // racy
  });
  return scratch;
}

}  // namespace hpcgraph::analytics
