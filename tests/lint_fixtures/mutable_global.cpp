// Fixture: mutable state at namespace scope.  Every rank thread sees this
// one object — a hidden cross-rank channel the collectives never mediate.
// EXPECT-LINT: mutable-global

#include <cstdint>
#include <vector>

namespace hpcgraph::analytics {

std::uint64_t g_total_edges_seen = 0;  // shared by all rank threads!

constexpr std::uint64_t kChunk = 4096;         // fine: constexpr
const char* const kPhaseName = "relaxation";   // fine: const pointer to const

void tally(const std::vector<std::uint64_t>& degs) {
  for (const auto d : degs) g_total_edges_seen += d;
}

}  // namespace hpcgraph::analytics
