// Fixture: mutable function-local static.  Looks innocent, but the single
// instance is shared by every rank thread that calls the function.
// EXPECT-LINT: mutable-global

#include <cstdint>

namespace hpcgraph::analytics {

std::uint64_t next_query_id() {
  static std::uint64_t counter = 0;  // one counter for ALL ranks
  return ++counter;
}

double scale_factor() {
  static constexpr double kFactor = 1.5;  // fine: constexpr static
  return kFactor;
}

}  // namespace hpcgraph::analytics
