// Fixture: bespoke count-pack-exchange frontier loop in analytic code.  A
// MultiQueue packed by hand and drained into .alltoallv() is exactly the
// Algorithm-2/3 exchange the frontier layer owns; routing must go through
// engine::route_to_owners (or route_to_owners_sharded) so the wire payload
// stays deterministic, the route phase is timed, and frontier.* remains
// the single exchange path.
// EXPECT-LINT: raw-frontier-exchange

#include <cstdint>
#include <span>
#include <vector>

#include "parcomm/comm.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph::analytics {

inline std::vector<std::uint64_t> scatter_frontier(
    parcomm::Communicator& comm, std::span<const std::uint64_t> gids,
    std::span<const int> owner) {
  const int p = comm.size();
  std::vector<std::uint64_t> counts(p, 0);
  for (std::size_t i = 0; i < gids.size(); ++i) ++counts[owner[i]];
  MultiQueue<std::uint64_t> q(counts);
  {
    MultiQueue<std::uint64_t>::Sink sink(q, 1024);
    for (std::size_t i = 0; i < gids.size(); ++i)
      sink.push(static_cast<std::uint32_t>(owner[i]), gids[i]);
  }
  return comm.alltoallv<std::uint64_t>(q.buffer(), counts);
}

}  // namespace hpcgraph::analytics
