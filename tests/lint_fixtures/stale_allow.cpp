// Fixture: a lint:allow whose rule no longer fires anywhere near its line.
// The dead suppression must surface as stale-suppression instead of
// lingering as a silent escape hatch.
// EXPECT-LINT: stale-suppression

#include <cstdint>

namespace hpcgraph::analytics {

// lint:allow(raw-sync: the atomic this excused was removed long ago)
inline std::uint64_t bump(std::uint64_t v) { return v + 1; }

}  // namespace hpcgraph::analytics
