// Fixture: switch on a rank-derived value with per-case collectives.  Ranks
// landing in different cases issue different sequences; the if-only regex
// lint never looks at switch statements.
// EXPECT-LINT: flow-path-divergent-collectives
// EXPECT-LINT: rank-divergent-collective

#include <cstdint>
#include <vector>

namespace hpcgraph::analytics {

struct Comm {
  int rank();
  void barrier();
  std::vector<std::uint64_t> allgather(std::uint64_t v);
};

void stagger(Comm& comm, std::uint64_t v) {
  switch (comm.rank() % 3) {
    case 0:
      comm.barrier();
      break;
    case 1:
      comm.allgather(v);
      break;
    default:
      break;
  }
}

}  // namespace hpcgraph::analytics
