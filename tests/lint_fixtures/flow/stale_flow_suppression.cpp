// Fixture: a lint:allow for a flow rule that no longer fires anywhere near
// its line.  The suppression must be reported as stale instead of rotting
// silently.
// EXPECT-LINT: stale-suppression

#include <cstdint>

namespace hpcgraph::analytics {

struct Comm {
  std::uint64_t allreduce_sum(std::uint64_t v);
};

std::uint64_t plain(Comm& comm, std::uint64_t v) {
  // lint:allow(flow-collective-under-worker: leftover from a removed sweep)
  return comm.allreduce_sum(v);
}

}  // namespace hpcgraph::analytics
