// Fixture: an overlap-window violation silenced by a reasoned lint:allow on
// the comment line directly above the call.  The allow both suppresses the
// finding and is counted as used (no stale-suppression).
// EXPECT-CLEAN

#include <cstdint>
#include <span>

namespace hpcgraph::analytics {

struct Comm {
  std::uint64_t allreduce_sum(std::uint64_t v);
};

struct Ghosts {
  void exchange_start(std::span<double> vals, Comm& comm);
  void exchange_finish(std::span<double> vals, Comm& comm);
};

void round(Comm& comm, Ghosts& gx, std::span<double> vals) {
  gx.exchange_start(vals, comm);
  // lint:allow(flow-collective-in-overlap-window: fixture exercising the suppression path)
  comm.allreduce_sum(vals.size());
  gx.exchange_finish(vals, comm);
}

}  // namespace hpcgraph::analytics
