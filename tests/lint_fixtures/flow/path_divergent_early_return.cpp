// Fixture: rank-dependent early return skips a collective.  Rank 0 leaves
// before the reduction every other rank enters — the regex lint cannot see
// this (no collective inside the branch), the CFG path enumeration can.
// EXPECT-LINT: flow-path-divergent-collectives
// EXPECT-LINT: rank-divergent-collective

#include <cstdint>

namespace hpcgraph::analytics {

struct Comm {
  int rank();
  std::uint64_t allreduce_sum(std::uint64_t v);
};

std::uint64_t tally(Comm& comm, std::uint64_t local) {
  if (comm.rank() == 0) return local;  // head rank skips the reduction
  return comm.allreduce_sum(local);
}

}  // namespace hpcgraph::analytics
