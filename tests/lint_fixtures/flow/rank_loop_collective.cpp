// Fixture: a collective inside a loop whose trip count is the local vertex
// count.  Every rank owns a different slice, so each would run a different
// number of allreduce rounds — the ranks desynchronize immediately.
// EXPECT-LINT: flow-rank-dependent-loop-collective

#include <cstdint>

namespace hpcgraph::analytics {

struct Comm {
  std::uint64_t allreduce_max(std::uint64_t v);
};

struct Graph {
  std::uint64_t n_loc() const;
};

void relax(Comm& comm, const Graph& g) {
  for (std::uint64_t i = 0; i < g.n_loc(); ++i)
    comm.allreduce_max(i);  // per-rank trip count
}

}  // namespace hpcgraph::analytics
