// Fixture: a ternary on a rank-dependent condition picks between two
// different collectives.  No if statement anywhere, so the branch-regex
// lint is blind to it.
// EXPECT-LINT: flow-path-divergent-collectives
// EXPECT-LINT: rank-divergent-collective

#include <cstdint>

namespace hpcgraph::analytics {

struct Comm {
  int rank();
  std::uint64_t allreduce_sum(std::uint64_t v);
  std::uint64_t allreduce_max(std::uint64_t v);
};

std::uint64_t pick(Comm& comm, std::uint64_t v) {
  const bool head = comm.rank() == 0;
  return head ? comm.allreduce_sum(v) : comm.allreduce_max(v);
}

}  // namespace hpcgraph::analytics
