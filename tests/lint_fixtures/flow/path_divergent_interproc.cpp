// Fixture: the divergent collective sits two calls below the rank-dependent
// branch.  Only the interprocedural effect summaries connect the `if` to
// the allreduce inside level2().
// EXPECT-LINT: flow-path-divergent-collectives
// EXPECT-LINT: rank-divergent-collective

#include <cstdint>

namespace hpcgraph::analytics {

struct Comm {
  int rank();
  std::uint64_t allreduce_sum(std::uint64_t v);
};

void level2(Comm& comm) { comm.allreduce_sum(1); }

void level1(Comm& comm) { level2(comm); }

void entry(Comm& comm) {
  if (comm.rank() == 0) level1(comm);  // only rank 0 reaches the allreduce
}

}  // namespace hpcgraph::analytics
