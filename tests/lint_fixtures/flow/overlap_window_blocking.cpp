// Fixture: a blocking collective between exchange_start and
// exchange_finish.  The static form of the runtime pending_depth_ check:
// the allreduce would rendezvous while the split-phase boards are mid
// flight.
// EXPECT-LINT: flow-collective-in-overlap-window

#include <cstdint>
#include <span>

namespace hpcgraph::analytics {

struct Comm {
  std::uint64_t allreduce_sum(std::uint64_t v);
};

struct Ghosts {
  void exchange_start(std::span<double> vals, Comm& comm);
  void exchange_finish(std::span<double> vals, Comm& comm);
};

void round(Comm& comm, Ghosts& gx, std::span<double> vals) {
  gx.exchange_start(vals, comm);
  comm.allreduce_sum(vals.size());  // blocking inside the open window
  gx.exchange_finish(vals, comm);
}

}  // namespace hpcgraph::analytics
