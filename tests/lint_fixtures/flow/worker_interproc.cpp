// Fixture: the worker functor reaches a collective through a helper call.
// Only the interprocedural may-issue summary connects the for_ranges
// lambda to the barrier inside flush().
// EXPECT-LINT: flow-collective-under-worker

#include <cstdint>

namespace hpcgraph::analytics {

struct Comm {
  void barrier();
};

struct Pool {
  template <typename F>
  void for_ranges(std::uint64_t lo, std::uint64_t hi, F&& f);
};

void flush(Comm& comm) { comm.barrier(); }

void sweep(Comm& comm, Pool& pool, std::uint64_t n) {
  pool.for_ranges(0, n, [&](unsigned, std::uint64_t, std::uint64_t) {
    flush(comm);  // barrier two frames down, on a pool thread
  });
}

}  // namespace hpcgraph::analytics
