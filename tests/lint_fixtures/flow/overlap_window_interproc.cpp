// Fixture: the blocking collective inside the overlap window hides in a
// callee.  The CFG replays tally()'s effect summary op by op, so the
// allreduce is seen even though this function never names it.
// EXPECT-LINT: flow-collective-in-overlap-window

#include <cstdint>
#include <span>

namespace hpcgraph::analytics {

struct Comm {
  std::uint64_t allreduce_sum(std::uint64_t v);
};

struct Ghosts {
  void exchange_start(std::span<double> vals, Comm& comm);
  void exchange_finish(std::span<double> vals, Comm& comm);
};

std::uint64_t tally(Comm& comm, std::uint64_t v) {
  return comm.allreduce_sum(v);
}

void round(Comm& comm, Ghosts& gx, std::span<double> vals) {
  gx.exchange_start(vals, comm);
  tally(comm, vals.size());  // allreduce one frame down
  gx.exchange_finish(vals, comm);
}

}  // namespace hpcgraph::analytics
