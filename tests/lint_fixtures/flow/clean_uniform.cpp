// Fixture: the near-miss shapes that must NOT fire — uniform early return,
// allreduce-laundered trip count, identical collective in both arms of a
// rank branch, collective-free worker lambda, and the owner-skip `continue`
// idiom from msbfs.  A flow analyzer that flags any of these is useless on
// the real tree.
// EXPECT-CLEAN

#include <cstdint>
#include <span>
#include <vector>

namespace hpcgraph::analytics {

struct Comm {
  int rank();
  void barrier();
  std::uint64_t allreduce_sum(std::uint64_t v);
  std::uint64_t allreduce_max(std::uint64_t v);
  void alltoallv(std::span<const std::uint64_t> v);
};

struct Chunk {
  std::uint64_t begin, end;
};

struct Pool {
  template <typename F>
  void for_chunks(int grid, F&& f);
};

struct Graph {
  std::uint64_t n_loc() const;
  int owner_of(std::uint64_t v) const;
};

// Uniform early return: n_global is the same on every rank, so either all
// ranks take the reduction or none do.
std::uint64_t total(Comm& comm, std::uint64_t n_global, std::uint64_t local) {
  if (n_global == 0) return 0;
  return comm.allreduce_sum(local);
}

// Allreduce-laundered trip count: every rank runs the same number of
// alltoallv rounds because the bound came out of a collective.
void rounds(Comm& comm, std::uint64_t depth_local,
            std::span<const std::uint64_t> payload) {
  const std::uint64_t depth = comm.allreduce_max(depth_local);
  for (std::uint64_t i = 0; i < depth; ++i) comm.alltoallv(payload);
}

// Rank branch with identical collective sequences in both arms: the paths
// diverge but the wire traffic does not.
void both_arms(Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();
  } else {
    comm.barrier();
  }
}

// Worker lambda doing purely local arithmetic.
void local_sweep(Pool& pool, std::vector<std::uint64_t>& acc) {
  pool.for_chunks(0, [&](const Chunk& ck) {
    for (std::uint64_t v = ck.begin; v < ck.end; ++v) acc[v] += v;
  });
}

// Owner-skip continue: non-owners skip purely local work, never a
// collective, so the early iteration exit is harmless.
void owner_skip(Comm& comm, const Graph& g,
                std::vector<std::uint64_t>& dist) {
  for (std::uint64_t v = 0; v < dist.size(); ++v) {
    if (g.owner_of(v) != comm.rank()) continue;
    dist[v] = 0;
  }
}

}  // namespace hpcgraph::analytics
