// Fixture: a collective issued from a ThreadPool worker functor.  The
// lambda runs once per pool thread, so the allreduce would be issued
// num_threads times per rank — the rendezvous counts can never line up.
// EXPECT-LINT: flow-collective-under-worker

#include <cstdint>

namespace hpcgraph::analytics {

struct Comm {
  std::uint64_t allreduce_sum(std::uint64_t v);
};

struct Chunk {
  std::uint64_t begin, end;
};

struct Pool {
  template <typename F>
  void for_chunks(int grid, F&& f);
};

void sweep(Comm& comm, Pool& pool) {
  pool.for_chunks(0, [&](const Chunk& ck) {
    comm.allreduce_sum(ck.end - ck.begin);  // on a pool thread
  });
}

}  // namespace hpcgraph::analytics
