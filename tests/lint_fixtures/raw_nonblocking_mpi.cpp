// Fixture: raw MPI nonblocking primitives in algorithm code.  Split-phase
// communication must go through parcomm::Communicator::ialltoallv and
// PendingExchange::wait — a raw MPI_Ialltoallv/MPI_Wait bypasses the
// request pool, the pending-depth discipline check, and the PARCOMM_VERIFY
// fingerprint rendezvous.
// EXPECT-LINT: raw-nonblocking-mpi

#include <cstdint>
#include <vector>

namespace hpcgraph::analytics {

void overlap_exchange(const std::vector<std::uint8_t>& payload,
                      const std::vector<int>& counts,
                      const std::vector<int>& displs,
                      std::vector<std::uint8_t>& recv) {
  MPI_Request req;  // raw nonblocking handle in analytics code
  MPI_Ialltoallv(payload.data(), counts.data(), displs.data(), MPI_BYTE,
                 recv.data(), counts.data(), displs.data(), MPI_BYTE,
                 MPI_COMM_WORLD, &req);
  // ... interior compute would go here ...
  MPI_Wait(&req, MPI_STATUS_IGNORE);
}

}  // namespace hpcgraph::analytics
