// Fixture: raw timing primitive inside a hot loop.  Per-iteration timing in
// algorithm code must go through obs::Span so the elapsed seconds still feed
// PhaseTimer (Span::close()) AND the measurement lands on the
// --trace-events timeline; a bare util::Timer is invisible to the tracer.
// EXPECT-LINT: raw-timer-in-hot-loop

#include <cstdint>
#include <vector>

#include "util/timer.hpp"

namespace hpcgraph::analytics {

inline double time_rounds(const std::vector<std::uint64_t>& work) {
  double pack_s = 0;
  // A region-level timer OUTSIDE the loop is fine — only the in-loop
  // declaration below is a finding.
  Timer region;
  for (std::size_t round = 0; round < work.size(); ++round) {
    Timer t;  // per-round timing bypasses the span tracer
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < work[round]; ++i) sink = sink + i;
    pack_s += t.elapsed();
  }
  return pack_s + region.elapsed();
}

}  // namespace hpcgraph::analytics
