// Fixture: mismatched collective — the statically visible form.  Rank 0
// calls allreduce_sum while everyone else calls allgather: in real MPI this
// deadlocks or corrupts; in the simulated runtime the exchange boards are
// silently misread.  (The dynamic form — ranks diverging at runtime — is
// caught by the PARCOMM_VERIFY fingerprint rendezvous; see
// tests/test_verify.cpp.)
// EXPECT-LINT: rank-divergent-collective
// EXPECT-LINT: flow-path-divergent-collectives

#include <cstdint>
#include <vector>

namespace hpcgraph::analytics {

template <typename Comm>
std::uint64_t broken_total(Comm& comm, std::uint64_t local) {
  static_assert(std::is_trivially_copyable_v<std::uint64_t>);
  if (comm.rank() == 0) {
    return comm.allreduce_sum(local);      // rank 0: allreduce...
  }
  const std::vector<std::uint64_t> all =
      comm.allgather(local);               // ...everyone else: allgather
  std::uint64_t total = 0;
  for (const auto v : all) total += v;
  return total;
}

}  // namespace hpcgraph::analytics
