// Fixture: hand-rolled thread-id partitioning in algorithm code.  Loop
// decomposition must go through ThreadPool::for_chunks / for_ranges over a
// ChunkGrid so sweeps honor the selected Schedule, feed the imbalance
// telemetry, and keep the deterministic chunk-order reduction contract.
// EXPECT-LINT: raw-parallel-chunking

#include <cstdint>
#include <vector>

namespace hpcgraph::analytics {

inline std::uint64_t sum_degrees(const std::vector<std::uint64_t>& deg,
                                 unsigned tid, unsigned nthreads) {
  // Equal-count split computed by hand: thread `tid` takes
  // [tid * per, (tid + 1) * per).  On a scale-free degree array this
  // serializes the sweep behind whichever span drew the hubs, and the
  // scheduler's telemetry never sees the loop.
  const std::uint64_t per = (deg.size() + nthreads - 1) / nthreads;
  const std::uint64_t lo = tid * per;
  const std::uint64_t hi = std::min<std::uint64_t>(deg.size(), lo + per);
  std::uint64_t total = 0;
  for (std::uint64_t i = lo; i < hi; ++i) total += deg[i];
  return total;
}

}  // namespace hpcgraph::analytics
