// Fixture: disciplined code that must produce NO findings — the
// false-positive guard for every rule.
// EXPECT-CLEAN

#include <atomic>  // include alone is fine; the std::atomic use is below
#include <cstdint>
#include <span>
#include <vector>

namespace hpcgraph::analytics {

constexpr std::uint64_t kBatchWidth = 64;        // constexpr global: fine
const double kDampingDefault = 0.85;             // const global: fine

// Reviewed raw-sync exception with the mandatory reason:
using Slot = std::atomic<std::uint64_t>;  // lint:allow(raw-sync: fixture example)

template <typename Comm, typename T>
std::vector<T> rotate_values(Comm& comm, std::span<const T> vals,
                             std::span<const std::uint64_t> counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  return comm.template alltoallv<T>(vals, counts);
}

template <typename Comm>
std::uint64_t disciplined_total(Comm& comm, std::uint64_t local) {
  // Same collective on every rank; rank-conditional code only *uses* the
  // result differently — that is fine.  The explicit element type documents
  // what crosses the wire (deduced-T calls need an assert instead).
  const std::uint64_t total =
      comm.template allreduce_sum<std::uint64_t>(local);
  if (comm.rank() == 0) {
    return total * 2;
  }
  return total;
}

// Explicit-capture per-rank entry: fine.
template <typename World, typename Communicator>
void launch(World& world, std::vector<std::uint64_t>& out) {
  world.run([&out](Communicator& comm) { out[comm.rank()] = 1; });
}

}  // namespace hpcgraph::analytics
