// Distributed Harmonic Centrality vs the sequential reference, plus the
// top-k-by-degree selection protocol.

#include <gtest/gtest.h>

#include "analytics/harmonic.hpp"
#include "gen/degree_tools.hpp"
#include "gen/rmat.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

class HarmonicParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(HarmonicParam, SingleVertexMatchesReference) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    for (const gvid_t v : {gvid_t{0}, gvid_t{7}, gvid_t{100}}) {
      const double want = ref::harmonic_centrality(sg, v);
      const double got = harmonic_centrality(g, comm, v);
      ASSERT_NEAR(got, want, want * 1e-10 + 1e-12) << "vertex " << v;
    }
  });
}

TEST_P(HarmonicParam, PathValuesExact) {
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    EXPECT_NEAR(harmonic_centrality(g, comm, 0), 1.0 + 0.5 + 1.0 / 3.0,
                1e-12);
    EXPECT_NEAR(harmonic_centrality(g, comm, 3), 0.0, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HarmonicParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& info) {
      return info.param.label();
    });

TEST(Harmonic, TopKSelectsHighestDegreeVertices) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want_ids = gen::top_k_by_degree(el, 5);
  const auto deg = gen::total_degrees(el);

  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const auto scored = harmonic_top_k(g, comm, 5);
                    ASSERT_EQ(scored.size(), 5u);
                    // The same *degree multiset* must be selected (ties can
                    // reorder equal-degree ids deterministically by id, so
                    // compare degree values).
                    std::multiset<std::uint32_t> want_degs, got_degs;
                    for (const gvid_t v : want_ids) want_degs.insert(deg[v]);
                    for (const auto& s : scored) got_degs.insert(deg[s.gid]);
                    EXPECT_EQ(got_degs, want_degs);
                  });
}

TEST(Harmonic, TopKScoresAreDescendingAndCorrect) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const auto scored = harmonic_top_k(g, comm, 4);
                    for (std::size_t i = 1; i < scored.size(); ++i)
                      ASSERT_GE(scored[i - 1].score, scored[i].score);
                    for (const auto& s : scored)
                      ASSERT_NEAR(s.score,
                                  ref::harmonic_centrality(sg, s.gid),
                                  1e-9);
                  });
}

TEST(Harmonic, KLargerThanNClamps) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const auto scored = harmonic_top_k(g, comm, 100);
                    EXPECT_EQ(scored.size(), el.n);
                  });
}

TEST(Harmonic, IsolatedVertexScoresZero) {
  const gen::EdgeList el = tiny_graph();  // vertex 9 isolated
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    EXPECT_DOUBLE_EQ(harmonic_centrality(g, comm, 9), 0.0);
                  });
}

}  // namespace
}  // namespace hpcgraph::analytics
