// Distributed Harmonic Centrality vs the sequential reference, plus the
// top-k-by-degree selection protocol.

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "analytics/harmonic.hpp"
#include "gen/degree_tools.hpp"
#include "gen/rmat.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

class HarmonicParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(HarmonicParam, SingleVertexMatchesReference) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    for (const gvid_t v : {gvid_t{0}, gvid_t{7}, gvid_t{100}}) {
      const double want = ref::harmonic_centrality(sg, v);
      const double got = harmonic_centrality(g, comm, v);
      ASSERT_NEAR(got, want, want * 1e-10 + 1e-12) << "vertex " << v;
    }
  });
}

TEST_P(HarmonicParam, PathValuesExact) {
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    EXPECT_NEAR(harmonic_centrality(g, comm, 0), 1.0 + 0.5 + 1.0 / 3.0,
                1e-12);
    EXPECT_NEAR(harmonic_centrality(g, comm, 3), 0.0, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HarmonicParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Harmonic, TopKSelectsHighestDegreeVertices) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want_ids = gen::top_k_by_degree(el, 5);
  const auto deg = gen::total_degrees(el);

  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const auto scored = harmonic_top_k(g, comm, 5);
                    ASSERT_EQ(scored.size(), 5u);
                    // The same *degree multiset* must be selected (ties can
                    // reorder equal-degree ids deterministically by id, so
                    // compare degree values).
                    std::multiset<std::uint32_t> want_degs, got_degs;
                    for (const gvid_t v : want_ids) want_degs.insert(deg[v]);
                    for (const auto& s : scored) got_degs.insert(deg[s.gid]);
                    EXPECT_EQ(got_degs, want_degs);
                  });
}

TEST(Harmonic, TopKScoresAreDescendingAndCorrect) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const auto scored = harmonic_top_k(g, comm, 4);
                    for (std::size_t i = 1; i < scored.size(); ++i)
                      ASSERT_GE(scored[i - 1].score, scored[i].score);
                    for (const auto& s : scored)
                      ASSERT_NEAR(s.score,
                                  ref::harmonic_centrality(sg, s.gid),
                                  1e-9);
                  });
}

// The batched (MS-BFS) engine must reproduce the per-source scores for a
// full 64-root batch on multiple ranks, up to FP summation order.
TEST(Harmonic, BatchedTopKMatchesPerSource) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  for (const DistConfig cfg : {DistConfig{2, dgraph::PartitionKind::kVertexBlock},
                               DistConfig{3, dgraph::PartitionKind::kRandom}}) {
    with_dist_graph(el, cfg, [&](const DistGraph& g,
                                 parcomm::Communicator& comm) {
      HarmonicOptions per_source;
      per_source.batched = false;
      const auto want = harmonic_top_k(g, comm, 64, per_source);
      for (const std::size_t bs : {std::size_t{64}, std::size_t{10}}) {
        HarmonicOptions batched;
        batched.batch_size = bs;
        auto got = harmonic_top_k(g, comm, 64, batched);
        ASSERT_EQ(got.size(), want.size()) << cfg.label();
        // Compare per-vertex (near-tied scores may legally reorder between
        // engines; the candidate *sets* must be identical).
        auto by_gid = [](const ScoredVertex& a, const ScoredVertex& b) {
          return a.gid < b.gid;
        };
        auto w = want;
        std::sort(got.begin(), got.end(), by_gid);
        std::sort(w.begin(), w.end(), by_gid);
        for (std::size_t i = 0; i < w.size(); ++i) {
          ASSERT_EQ(got[i].gid, w[i].gid)
              << cfg.label() << " batch=" << bs << " entry " << i;
          ASSERT_NEAR(got[i].score, w[i].score, w[i].score * 1e-12 + 1e-12)
              << cfg.label() << " batch=" << bs << " vertex " << got[i].gid;
        }
      }
    });
  }
}

// Sampling every vertex degenerates the estimator to the exact scores.
TEST(Harmonic, ApproxWithFullSamplingIsExact) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    HarmonicApproxOptions opts;
                    opts.n_samples = el.n;  // clamped; scale becomes 1
                    const HarmonicApproxResult res =
                        harmonic_approx(g, comm, opts);
                    ASSERT_EQ(res.samples.size(), el.n);
                    ASSERT_EQ(res.score.size(), g.n_loc());
                    for (lvid_t v = 0; v < g.n_loc(); ++v) {
                      const double want =
                          ref::harmonic_centrality(sg, g.global_id(v));
                      ASSERT_NEAR(res.score[v], want, want * 1e-12 + 1e-12)
                          << "vertex " << g.global_id(v);
                    }
                  });
}

// Fixed seed => identical sample set and identical per-vertex estimates on
// every rank count (the estimator's accumulation order is rank-independent).
TEST(Harmonic, ApproxDeterministicAcrossRankCounts) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);

  const auto run = [&](const DistConfig& cfg) {
    std::vector<double> by_gid(el.n, 0.0);
    std::vector<gvid_t> samples;
    with_dist_graph(el, cfg, [&](const DistGraph& g,
                                 parcomm::Communicator& comm) {
      HarmonicApproxOptions opts;
      opts.n_samples = 48;
      const HarmonicApproxResult res = harmonic_approx(g, comm, opts);
      // Distinct samples, clamped size.
      EXPECT_EQ(res.samples.size(), 48u);
      std::set<gvid_t> uniq(res.samples.begin(), res.samples.end());
      EXPECT_EQ(uniq.size(), res.samples.size());
      if (comm.rank() == 0) samples = res.samples;
      for (lvid_t v = 0; v < g.n_loc(); ++v)  // disjoint gids per rank
        by_gid[g.global_id(v)] = res.score[v];
    });
    return std::pair(by_gid, samples);
  };

  const auto [one_rank, one_samples] =
      run({1, dgraph::PartitionKind::kVertexBlock});
  const auto [four_rank, four_samples] =
      run({4, dgraph::PartitionKind::kRandom});
  EXPECT_EQ(one_samples, four_samples);
  for (gvid_t v = 0; v < el.n; ++v)
    ASSERT_DOUBLE_EQ(one_rank[v], four_rank[v]) << "vertex " << v;
}

TEST(Harmonic, KLargerThanNClamps) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const auto scored = harmonic_top_k(g, comm, 100);
                    EXPECT_EQ(scored.size(), el.n);
                  });
}

TEST(Harmonic, IsolatedVertexScoresZero) {
  const gen::EdgeList el = tiny_graph();  // vertex 9 isolated
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    EXPECT_DOUBLE_EQ(harmonic_centrality(g, comm, 9), 0.0);
                  });
}

}  // namespace
}  // namespace hpcgraph::analytics
