// Distributed PageRank vs the sequential reference: tolerance equality,
// mass conservation, dangling handling, ablations, early stopping.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analytics/pagerank.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

void expect_scores_match(const DistGraph& g, std::span<const double> got,
                         const std::vector<double>& want, double rel_tol) {
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    const gvid_t gid = g.global_id(v);
    ASSERT_NEAR(got[v], want[gid], want[gid] * rel_tol + 1e-15)
        << "vertex " << gid;
  }
}

class PageRankParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(PageRankParam, MatchesReferenceOnRmat) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::pagerank(ref::SeqGraph::from(el), 10);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    PageRankOptions opts;
    opts.max_iterations = 10;
    const PageRankResult res = pagerank(g, comm, opts);
    EXPECT_EQ(res.iterations_run, 10);
    expect_scores_match(g, res.scores, want, 1e-10);
  });
}

TEST_P(PageRankParam, MassConservedWithDanglingVertices) {
  const gen::EdgeList el = tiny_graph();  // has dangling + isolated vertices
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    PageRankOptions opts;
    opts.max_iterations = 25;
    const PageRankResult res = pagerank(g, comm, opts);
    const double local =
        std::accumulate(res.scores.begin(), res.scores.end(), 0.0);
    const double total = comm.allreduce_sum(local);
    EXPECT_NEAR(total, 1.0, 1e-10);
  });
}

TEST_P(PageRankParam, ScoresArePositive) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const PageRankResult res = pagerank(g, comm, {});
    for (const double s : res.scores) ASSERT_GT(s, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PageRankParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(PageRank, RebuildAblationGivesSameScores) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    PageRankOptions opts;
                    opts.retain_queues = true;
                    const auto a = pagerank(g, comm, opts);
                    opts.retain_queues = false;
                    const auto b = pagerank(g, comm, opts);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      ASSERT_DOUBLE_EQ(a.scores[v], b.scores[v]);
                  });
}

TEST(PageRank, ToleranceStopsEarly) {
  // A cycle converges immediately (uniform is the fixed point).
  gen::EdgeList el;
  el.n = 64;
  for (gvid_t v = 0; v < el.n; ++v) el.edges.push_back({v, (v + 1) % el.n});
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    PageRankOptions opts;
                    opts.max_iterations = 100;
                    opts.tolerance = 1e-9;
                    const PageRankResult res = pagerank(g, comm, opts);
                    EXPECT_LT(res.iterations_run, 5);
                    EXPECT_LT(res.l1_delta, 1e-9);
                  });
}

TEST(PageRank, DampingParameterRespected) {
  // With damping 0, every score is exactly 1/n regardless of structure.
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    PageRankOptions opts;
                    opts.damping = 0.0;
                    opts.max_iterations = 3;
                    const PageRankResult res = pagerank(g, comm, opts);
                    for (const double s : res.scores)
                      ASSERT_DOUBLE_EQ(s, 1.0 / 10.0);
                  });
}

TEST(PageRank, HubsOutrankLeavesOnWebGraph) {
  gen::WebGraphParams wp;
  wp.n = 1 << 12;
  wp.avg_degree = 10;
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {4, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const PageRankResult res = pagerank(g, comm, {});
                    // Globally: every hub must score above the global mean.
                    const double mean = 1.0 / static_cast<double>(g.n_global());
                    for (lvid_t v = 0; v < g.n_loc(); ++v) {
                      const gvid_t gid = g.global_id(v);
                      for (const gvid_t h : wg.hubs) {
                        if (gid == h) {
                          ASSERT_GT(res.scores[v], mean * 10) << "hub " << h;
                        }
                      }
                    }
                  });
}

TEST(PageRank, ThreadedMatchesReference) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::pagerank(ref::SeqGraph::from(el), 8);
  parcomm::CommWorld world(2);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph g = dgraph::Builder::from_edge_list(
        comm, el, dgraph::PartitionKind::kVertexBlock);
    ThreadPool pool(4);
    PageRankOptions opts;
    opts.max_iterations = 8;
    opts.common.pool = &pool;
    const PageRankResult res = pagerank(g, comm, opts);
    expect_scores_match(g, res.scores, want, 1e-10);
  });
}

TEST(PageRank, EdgelessGraphIsUniform) {
  gen::EdgeList el;
  el.n = 8;
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const PageRankResult res = pagerank(g, comm, {});
                    for (const double s : res.scores)
                      ASSERT_NEAR(s, 1.0 / 8.0, 1e-12);
                  });
}

}  // namespace
}  // namespace hpcgraph::analytics
