// Randomized property suites: seed-parameterized sweeps that cross-check
// the distributed pipeline against the sequential oracles on arbitrary
// graphs (duplicates, self loops, isolated vertices, skew), plus fuzzed
// collectives and queues.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "analytics/analytics.hpp"
#include "baselines/edgestream.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hpcgraph {
namespace {

using dgraph::DistGraph;
using dgraph::PartitionKind;
using hpcgraph::testing::with_dist_graph;

/// Arbitrary messy digraph: random density, guaranteed self loops,
/// duplicates, and isolated vertices.
gen::EdgeList messy_graph(std::uint64_t seed) {
  Rng rng(seed * 77 + 5);
  gen::EdgeList g;
  g.n = 64 + rng.below(512);
  const std::uint64_t m = rng.below(g.n * 6);
  for (std::uint64_t e = 0; e < m; ++e)
    g.edges.push_back({rng.below(g.n), rng.below(g.n)});
  if (g.n > 4) {
    g.edges.push_back({3, 3});            // self loop
    g.edges.push_back({1, 2});            // duplicate pair
    g.edges.push_back({1, 2});
  }
  return g;
}

/// A random distributed configuration derived from the seed.
hpcgraph::testing::DistConfig config_for(std::uint64_t seed) {
  Rng rng(seed * 31 + 9);
  const int ranks[] = {1, 2, 3, 4, 5, 8};
  const PartitionKind kinds[] = {PartitionKind::kVertexBlock,
                                 PartitionKind::kEdgeBlock,
                                 PartitionKind::kRandom};
  return {ranks[rng.below(6)], kinds[rng.below(3)]};
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, WccMatchesOracleOnMessyGraph) {
  const gen::EdgeList el = messy_graph(GetParam());
  const auto want = ref::wcc(ref::SeqGraph::from(el));
  with_dist_graph(el, config_for(GetParam()),
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const auto res = analytics::wcc(g, comm);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.comp[v], want[g.global_id(v)]);
  });
}

TEST_P(FuzzSeed, BfsMatchesOracleOnMessyGraph) {
  const gen::EdgeList el = messy_graph(GetParam());
  Rng rng(GetParam());
  const gvid_t root = rng.below(el.n);
  const auto want = ref::bfs_levels(ref::SeqGraph::from(el), root, true);
  with_dist_graph(el, config_for(GetParam() + 1),
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    analytics::BfsOptions opts;
    const auto res = analytics::bfs(g, comm, root, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const std::int64_t got = res.level[v] >= 0 ? res.level[v] : -1;
      ASSERT_EQ(got, want[g.global_id(v)]);
    }
  });
}

TEST_P(FuzzSeed, SccMembershipMatchesTarjan) {
  const gen::EdgeList el = messy_graph(GetParam());
  const auto tarjan = ref::scc(ref::SeqGraph::from(el));
  with_dist_graph(el, config_for(GetParam() + 2),
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const auto res = analytics::largest_scc(g, comm);
    const gvid_t cls = tarjan[res.pivot];
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.member[v] != 0, tarjan[g.global_id(v)] == cls);
  });
}

TEST_P(FuzzSeed, KcoreBoundsMatchOracle) {
  const gen::EdgeList el = messy_graph(GetParam());
  const auto want = ref::kcore_approx(ref::SeqGraph::from(el), 16);
  with_dist_graph(el, config_for(GetParam() + 3),
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    analytics::KCoreOptions opts;
    opts.max_i = 16;
    opts.track_components = false;
    const auto res = analytics::kcore_approx(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.bound[v], want[g.global_id(v)]);
  });
}

TEST_P(FuzzSeed, SsspMatchesDijkstra) {
  const gen::EdgeList el = messy_graph(GetParam());
  Rng rng(GetParam() + 7);
  const gvid_t root = rng.below(el.n);
  const auto want = ref::sssp_dijkstra(ref::SeqGraph::from(el), root, 32);
  with_dist_graph(el, config_for(GetParam() + 4),
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    analytics::SsspOptions opts;
    opts.max_weight = 32;
    const auto res = analytics::sssp(g, comm, root, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const auto w = want[g.global_id(v)];
      ASSERT_EQ(res.dist[v],
                w == ref::kInfDistance ? analytics::kInfDistance : w);
    }
  });
}

TEST_P(FuzzSeed, PagerankMassConservedAndMatchesStream) {
  const gen::EdgeList el = messy_graph(GetParam());
  const auto stream = baselines::stream_pagerank(baselines::EdgeStream(el), 8);
  with_dist_graph(el, config_for(GetParam() + 5),
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    analytics::PageRankOptions opts;
    opts.max_iterations = 8;
    const auto res = analytics::pagerank(g, comm, opts);
    double local = std::accumulate(res.scores.begin(), res.scores.end(), 0.0);
    ASSERT_NEAR(comm.allreduce_sum(local), 1.0, 1e-9);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_NEAR(res.scores[v], stream[g.global_id(v)], 1e-10);
  });
}

TEST_P(FuzzSeed, LabelPropMatchesOracleExactly) {
  const gen::EdgeList el = messy_graph(GetParam());
  const auto want =
      ref::label_propagation(ref::SeqGraph::from(el), 4, GetParam());
  with_dist_graph(el, config_for(GetParam() + 6),
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    analytics::LabelPropOptions opts;
    opts.iterations = 4;
    opts.tie_seed = GetParam();
    const auto res = analytics::label_propagation(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.labels[v], want[g.global_id(v)]);
  });
}

TEST_P(FuzzSeed, AlltoallvMatchesOracleExchange) {
  // Random payload sizes per (src, dst) pair, validated against a directly
  // computed expectation.
  Rng rng(GetParam() * 13 + 1);
  const int p = 2 + static_cast<int>(rng.below(6));
  // counts[s][d], payload value = s * 1000003 + d * 997 + k.
  std::vector<std::vector<std::uint64_t>> counts(
      p, std::vector<std::uint64_t>(p));
  for (int s = 0; s < p; ++s)
    for (int d = 0; d < p; ++d) counts[s][d] = rng.below(50);

  parcomm::CommWorld world(p);
  world.run([&](parcomm::Communicator& comm) {
    const int me = comm.rank();
    std::vector<std::uint64_t> send;
    for (int d = 0; d < p; ++d)
      for (std::uint64_t k = 0; k < counts[me][d]; ++k)
        send.push_back(static_cast<std::uint64_t>(me) * 1000003 +
                       static_cast<std::uint64_t>(d) * 997 + k);
    std::vector<std::uint64_t> rcounts;
    const auto recv =
        comm.alltoallv<std::uint64_t>(send, counts[me], &rcounts);
    std::size_t at = 0;
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(rcounts[s], counts[s][me]);
      for (std::uint64_t k = 0; k < counts[s][me]; ++k)
        ASSERT_EQ(recv[at++], static_cast<std::uint64_t>(s) * 1000003 +
                                  static_cast<std::uint64_t>(me) * 997 + k);
    }
    ASSERT_EQ(at, recv.size());
  });
}

TEST_P(FuzzSeed, PartitionsCoverIdSpaceExactlyOnce) {
  Rng rng(GetParam() * 17 + 3);
  const gvid_t n = 1 + rng.below(3000);
  const int p = 1 + static_cast<int>(rng.below(12));
  for (const auto& part :
       {dgraph::Partition::vertex_block(n, p),
        dgraph::Partition::random(n, p, GetParam())}) {
    std::uint64_t total = 0;
    for (int r = 0; r < p; ++r) {
      for (const gvid_t v : part.owned_vertices(r))
        ASSERT_EQ(part.owner(v), r);
      total += part.num_owned(r);
    }
    ASSERT_EQ(total, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hpcgraph
