// Distributed BFS (Algorithm 2) vs the sequential reference, across rank
// counts, partitionings, directions, masks and thread counts.

#include <gtest/gtest.h>

#include "analytics/bfs.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

void expect_levels_match(const DistGraph& g, const BfsResult& got,
                         const std::vector<std::int64_t>& want) {
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    const gvid_t gid = g.global_id(v);
    const std::int64_t dist_level = got.level[v] >= 0 ? got.level[v] : -1;
    ASSERT_EQ(dist_level, want[gid]) << "vertex " << gid;
  }
}

class BfsParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(BfsParam, DirectedLevelsMatchReference) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);
  const gvid_t root = 5;
  const auto want = ref::bfs_levels(sg, root, /*directed=*/true);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    BfsOptions opts;
    opts.dir = Dir::kOut;
    const BfsResult res = bfs(g, comm, root, opts);
    expect_levels_match(g, res, want);
    std::uint64_t want_visited = 0;
    for (const auto l : want)
      if (l >= 0) ++want_visited;
    EXPECT_EQ(res.visited, want_visited);
  });
}

TEST_P(BfsParam, UndirectedLevelsMatchReference) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 4;
  const gen::EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);
  const gvid_t root = 17;
  const auto want = ref::bfs_levels(sg, root, /*directed=*/false);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    BfsOptions opts;
    opts.dir = Dir::kBoth;
    const BfsResult res = bfs(g, comm, root, opts);
    expect_levels_match(g, res, want);
  });
}

TEST_P(BfsParam, BackwardBfsEqualsReferenceOnReversedGraph) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  gen::EdgeList reversed;
  reversed.n = el.n;
  for (const gen::Edge& e : el.edges) reversed.edges.push_back({e.dst, e.src});
  const auto want =
      ref::bfs_levels(ref::SeqGraph::from(reversed), 3, /*directed=*/true);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    BfsOptions opts;
    opts.dir = Dir::kIn;
    const BfsResult res = bfs(g, comm, 3, opts);
    expect_levels_match(g, res, want);
  });
}

TEST_P(BfsParam, UnreachableVerticesStayUnvisited) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    BfsOptions opts;
    opts.dir = Dir::kOut;
    const BfsResult res = bfs(g, comm, 0, opts);  // component {0..4} forward
    EXPECT_EQ(res.visited, 5u);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      if (gid >= 5) {
        ASSERT_LT(res.level[v], 0) << gid;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BfsParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Bfs, AliveMaskRestrictsTraversal) {
  // Path 0->1->2->3; mask out vertex 1: BFS from 0 reaches only {0}.
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    std::vector<std::uint8_t> alive(g.n_loc(), 1);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      if (g.global_id(v) == 1) alive[v] = 0;
                    BfsOptions opts;
                    opts.dir = Dir::kOut;
                    opts.alive = alive;
                    const BfsResult res = bfs(g, comm, 0, opts);
                    EXPECT_EQ(res.visited, 1u);
                  });
}

TEST(Bfs, DeadRootVisitsNothing) {
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}};
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    std::vector<std::uint8_t> alive(g.n_loc(), 1);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      if (g.global_id(v) == 0) alive[v] = 0;
                    BfsOptions opts;
                    opts.alive = alive;
                    const BfsResult res = bfs(g, comm, 0, opts);
                    EXPECT_EQ(res.visited, 0u);
                    EXPECT_EQ(res.num_levels, 0);
                  });
}

TEST(Bfs, ThreadedMatchesSerial) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want =
      ref::bfs_levels(ref::SeqGraph::from(el), 1, /*directed=*/true);
  parcomm::CommWorld world(2);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph g = dgraph::Builder::from_edge_list(
        comm, el, dgraph::PartitionKind::kRandom);
    ThreadPool pool(4);
    BfsOptions opts;
    opts.dir = Dir::kOut;
    opts.common.pool = &pool;
    const BfsResult res = bfs(g, comm, 1, opts);
    expect_levels_match(g, res, want);
  });
}

TEST(Bfs, SelfLoopRootTerminates) {
  gen::EdgeList el;
  el.n = 2;
  el.edges = {{0, 0}};
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const BfsResult res = bfs(g, comm, 0);
                    EXPECT_EQ(res.visited, 1u);
                  });
}

TEST(Bfs, NumLevelsMatchesEccentricityPlusOne) {
  // Path graph: BFS from one end runs exactly n frontier expansions.
  gen::EdgeList el;
  el.n = 6;
  for (gvid_t v = 0; v + 1 < el.n; ++v) el.edges.push_back({v, v + 1});
  with_dist_graph(el, {3, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const BfsResult res = bfs(g, comm, 0);
                    EXPECT_EQ(res.num_levels, 6);
                    EXPECT_EQ(res.visited, 6u);
                  });
}

// ---------- direction-optimizing traversal (extension) ----------

class DirOptParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(DirOptParam, LevelsIdenticalToTopDown) {
  gen::WebGraphParams wp;
  wp.n = 1 << 12;
  wp.avg_degree = 12;
  const gen::WebGraph wg = gen::webgraph(wp);
  const gvid_t root = wg.core.begin;  // giant-frontier traversal

  with_dist_graph(wg.graph, GetParam(), [&](const DistGraph& g,
                                            parcomm::Communicator& comm) {
    for (const Dir dir : {Dir::kOut, Dir::kIn, Dir::kBoth}) {
      BfsOptions plain;
      plain.dir = dir;
      const BfsResult a = bfs(g, comm, root, plain);
      BfsOptions dopt = plain;
      dopt.direction_optimizing = true;
      const BfsResult b = bfs(g, comm, root, dopt);
      ASSERT_EQ(a.visited, b.visited);
      ASSERT_EQ(a.num_levels, b.num_levels);
      for (lvid_t v = 0; v < g.n_loc(); ++v) {
        const std::int64_t la = a.level[v] >= 0 ? a.level[v] : -1;
        const std::int64_t lb = b.level[v] >= 0 ? b.level[v] : -1;
        ASSERT_EQ(la, lb) << "vertex " << g.global_id(v);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DirOptParam,
    ::testing::ValuesIn(hpcgraph::testing::small_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(DirOptBfs, ForcedBottomUpStillCorrect) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::bfs_levels(ref::SeqGraph::from(el), 2, true);
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    BfsOptions opts;
    opts.dir = Dir::kOut;
    opts.direction_optimizing = true;
    opts.alpha = 1e12;  // never leave top-down
    const BfsResult a = bfs(g, comm, 2, opts);
    expect_levels_match(g, a, want);
    opts.alpha = 1e-12;  // go bottom-up immediately
    opts.beta = 1e-12;   // and never come back
    const BfsResult b = bfs(g, comm, 2, opts);
    expect_levels_match(g, b, want);
  });
}

TEST(DirOptBfs, RespectsAliveMask) {
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    std::vector<std::uint8_t> alive(g.n_loc(), 1);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (g.global_id(v) == 1) alive[v] = 0;
    BfsOptions opts;
    opts.direction_optimizing = true;
    opts.alpha = 1e-12;  // force bottom-up scanning
    opts.alive = alive;
    const BfsResult res = bfs(g, comm, 0, opts);
    EXPECT_EQ(res.visited, 1u);
  });
}

}  // namespace
}  // namespace hpcgraph::analytics
