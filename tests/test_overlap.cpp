// The overlapped superstep schedule (DESIGN.md §9): boundary/interior
// vertex classification, equivalence of the overlapped schedule against the
// blocking one for every overlap-safe analytic (PageRank bit-for-bit, LP
// labels and WCC components exact) across rank counts and wire formats,
// the Gauss-Seidel runtime veto, and the overlap telemetry in the trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analytics/analytics.hpp"
#include "dgraph/ghost_exchange.hpp"
#include "dgraph/snapshot.hpp"
#include "engine/superstep.hpp"
#include "engine/trace.hpp"
#include "gen/rmat.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace hpcgraph::engine {
namespace {

using dgraph::DistGraph;
using dgraph::GhostMode;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::small_configs;
using hpcgraph::testing::with_dist_graph;
using parcomm::Communicator;

gen::EdgeList test_graph() {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  return gen::rmat(rp);
}

// ---- Boundary/interior classification. ----

// Every local vertex lands in exactly one class; interior vertices touch no
// ghost through either CSR (so an exchange launched after the boundary
// sweep can never carry a value an interior vertex still has to produce,
// and the interior sweep can never read a slot the exchange writes).
TEST(BoundaryInterior, ClassesPartitionLocalsByGhostAdjacency) {
  const gen::EdgeList el = test_graph();
  for (const DistConfig& cfg : small_configs()) {
    SCOPED_TRACE(cfg.label());
    with_dist_graph(el, cfg, [&](const DistGraph& g, Communicator& comm) {
      const std::span<const lvid_t> bnd = g.boundary_locals();
      const std::span<const lvid_t> intr = g.interior_locals();
      ASSERT_EQ(bnd.size() + intr.size(), g.n_loc());
      EXPECT_TRUE(std::is_sorted(bnd.begin(), bnd.end()));
      EXPECT_TRUE(std::is_sorted(intr.begin(), intr.end()));

      const auto touches_ghost = [&](lvid_t v) {
        for (const lvid_t u : g.out_neighbors(v))
          if (u >= g.n_loc()) return true;
        for (const lvid_t u : g.in_neighbors(v))
          if (u >= g.n_loc()) return true;
        return false;
      };
      for (const lvid_t v : bnd) {
        ASSERT_LT(v, g.n_loc());
        EXPECT_TRUE(touches_ghost(v)) << "boundary vertex " << g.global_id(v)
                                      << " has no ghost neighbour";
      }
      for (const lvid_t v : intr) {
        ASSERT_LT(v, g.n_loc());
        EXPECT_FALSE(touches_ghost(v)) << "interior vertex " << g.global_id(v)
                                       << " touches a ghost";
      }
      (void)comm;
    });
  }
}

TEST(BoundaryInterior, SnapshotReloadRebuildsTheClasses) {
  const gen::EdgeList el = test_graph();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "hpcgraph_overlap_snap")
          .string();
  with_dist_graph(el, {3, dgraph::PartitionKind::kEdgeBlock},
                  [&](const DistGraph& g, Communicator& comm) {
                    dgraph::save_snapshot(g, comm, prefix);
                    const DistGraph loaded = dgraph::load_snapshot(comm,
                                                                   prefix);
                    const auto eq = [](std::span<const lvid_t> a,
                                       std::span<const lvid_t> b) {
                      return std::equal(a.begin(), a.end(), b.begin(),
                                        b.end());
                    };
                    EXPECT_TRUE(eq(loaded.boundary_locals(),
                                   g.boundary_locals()));
                    EXPECT_TRUE(eq(loaded.interior_locals(),
                                   g.interior_locals()));
                    std::filesystem::remove(prefix + "." +
                                            std::to_string(comm.rank()));
                  });
}

// ---- Overlapped vs blocking equivalence. ----

/// The pre-engine PageRank loop, frozen verbatim (same pin test_engine.cpp
/// holds against the blocking engine): the overlapped schedule must still
/// reproduce it bit-for-bit at the same configuration.
std::vector<double> handrolled_pagerank(const DistGraph& g, Communicator& comm,
                                        int iters) {
  const double n = static_cast<double>(g.n_global());
  dgraph::GhostExchange gx(g, comm, dgraph::Adjacency::kOut, nullptr);
  std::vector<double> rank(g.n_loc(), 1.0 / n);
  std::vector<double> next(g.n_loc());
  std::vector<double> contrib(g.n_total(), 0.0);
  constexpr double damping = 0.85;
  for (int it = 0; it < iters; ++it) {
    double dangling_local = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      if (g.out_degree(v) == 0) dangling_local += rank[v];
    const double dangling = comm.allreduce_sum(dangling_local);
    const double base = (1.0 - damping) / n + damping * dangling / n;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const std::uint64_t d = g.out_degree(v);
      contrib[v] = d ? damping * rank[v] / static_cast<double>(d) : 0.0;
    }
    gx.exchange<double>(contrib, comm);
    double delta_local = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      double sum = base;
      for (const lvid_t u : g.in_neighbors(v)) sum += contrib[u];
      next[v] = sum;
      delta_local += std::abs(sum - rank[v]);
    }
    rank.swap(next);
    (void)comm.allreduce_sum(delta_local);
  }
  return rank;
}

struct GlobalResults {
  std::vector<double> pr;
  std::vector<std::uint64_t> lp;
  std::vector<gvid_t> wcc_comp;
  std::uint64_t wcc_largest = 0;
};

GlobalResults run_overlap_safe(const gen::EdgeList& el, const DistConfig& cfg,
                               GhostMode mode, bool overlap) {
  GlobalResults r;
  r.pr.assign(el.n, 0.0);
  r.lp.assign(el.n, 0);
  r.wcc_comp.assign(el.n, 0);
  with_dist_graph(el, cfg, [&](const DistGraph& g, Communicator& comm) {
    analytics::PageRankOptions po;
    po.max_iterations = 10;
    po.common.overlap = overlap;
    const auto pr = analytics::pagerank(g, comm, po);
    if (overlap) {
      // Frozen pin: the overlapped rounds keep the FP order of the
      // pre-engine loop exactly (full serial dangling scan, pure per-vertex
      // contrib fill), so this holds bit-for-bit, not just within an ulp.
      const std::vector<double> old_pr = handrolled_pagerank(g, comm, 10);
      ASSERT_EQ(pr.scores.size(), old_pr.size());
      EXPECT_EQ(std::memcmp(pr.scores.data(), old_pr.data(),
                            old_pr.size() * sizeof(double)),
                0)
          << "overlapped PageRank diverged from the pre-engine loop";
    }

    analytics::LabelPropOptions lo;
    lo.iterations = 10;
    lo.common.ghost_mode = mode;
    lo.common.overlap = overlap;
    const auto lp = analytics::label_propagation(g, comm, lo);

    analytics::WccOptions wo;
    wo.common.ghost_mode = mode;
    wo.common.overlap = overlap;
    const auto wc = analytics::wcc(g, comm, wo);

    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      r.pr[gid] = pr.scores[v];
      r.lp[gid] = lp.labels[v];
      r.wcc_comp[gid] = wc.comp[v];
    }
    if (comm.rank() == 0) r.wcc_largest = wc.largest_size;
  });
  return r;
}

TEST(OverlapEquivalence, MatchesBlockingAcrossRanksAndWireFormats) {
  const gen::EdgeList el = test_graph();
  for (const int p : {1, 2, 4}) {
    for (const auto mode :
         {GhostMode::kDense, GhostMode::kSparse, GhostMode::kAdaptive}) {
      SCOPED_TRACE("p=" + std::to_string(p) + " mode=" +
                   dgraph::ghost_mode_label(mode));
      const GlobalResults blocking = run_overlap_safe(
          el, {p, dgraph::PartitionKind::kVertexBlock}, mode, false);
      const GlobalResults overlapped = run_overlap_safe(
          el, {p, dgraph::PartitionKind::kVertexBlock}, mode, true);
      // PageRank: bit-for-bit at the same configuration (the schedules run
      // the same collectives in the same FP order).
      EXPECT_EQ(std::memcmp(overlapped.pr.data(), blocking.pr.data(),
                            blocking.pr.size() * sizeof(double)),
                0)
          << "overlapped PageRank is not bit-identical to blocking";
      EXPECT_EQ(overlapped.lp, blocking.lp);
      // WCC: the HashMin fixpoint is sweep-order independent, so comp[] is
      // exact; the iteration *count* may legitimately differ under the
      // boundary-first sweep order and is deliberately not compared.
      EXPECT_EQ(overlapped.wcc_comp, blocking.wcc_comp);
      EXPECT_EQ(overlapped.wcc_largest, blocking.wcc_largest);
    }
  }
}

TEST(OverlapEquivalence, RandomPartitionMatchesBlocking) {
  const gen::EdgeList el = test_graph();
  const DistConfig cfg{4, dgraph::PartitionKind::kRandom};
  const GlobalResults blocking =
      run_overlap_safe(el, cfg, GhostMode::kAdaptive, false);
  const GlobalResults overlapped =
      run_overlap_safe(el, cfg, GhostMode::kAdaptive, true);
  EXPECT_EQ(std::memcmp(overlapped.pr.data(), blocking.pr.data(),
                        blocking.pr.size() * sizeof(double)),
            0);
  EXPECT_EQ(overlapped.lp, blocking.lp);
  EXPECT_EQ(overlapped.wcc_comp, blocking.wcc_comp);
}

// The in-place Gauss-Seidel LP sweep is order-dependent, so the kernel's
// overlap_ok() must veto the split schedule: --overlap changes nothing, and
// no split-phase rounds run.
TEST(OverlapEquivalence, GaussSeidelLpVetoesTheOverlappedSchedule) {
  const gen::EdgeList el = test_graph();
  const auto run_gs = [&](bool overlap, SuperstepTrace* trace) {
    std::vector<std::uint64_t> labels(el.n, 0);
    with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                    [&](const DistGraph& g, Communicator& comm) {
                      analytics::LabelPropOptions lo;
                      lo.iterations = 8;
                      lo.in_place = true;
                      lo.common.overlap = overlap;
                      lo.common.trace = trace;
                      const auto lp =
                          analytics::label_propagation(g, comm, lo);
                      for (lvid_t v = 0; v < g.n_loc(); ++v)
                        labels[g.global_id(v)] = lp.labels[v];
                    });
    return labels;
  };
  SuperstepTrace trace;
  const auto blocking = run_gs(false, nullptr);
  const auto vetoed = run_gs(true, &trace);
  EXPECT_EQ(vetoed, blocking);
  ASSERT_FALSE(trace.empty());
  for (const SuperstepRecord& rec : trace.records()) {
    EXPECT_EQ(rec.overlap_us, 0u);
    EXPECT_EQ(rec.comm.ghost_rounds_async, 0u);
  }
}

// ---- Telemetry. ----

TEST(OverlapTrace, OverlapFieldsVisibleInRecordsAndJson) {
  gen::RmatParams rp;
  rp.scale = 10;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);

  const auto run_traced = [&](bool overlap, SuperstepTrace* trace) {
    with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                    [&](const DistGraph& g, Communicator& comm) {
                      analytics::PageRankOptions po;
                      po.max_iterations = 5;
                      po.common.overlap = overlap;
                      po.common.trace = trace;
                      (void)analytics::pagerank(g, comm, po);
                    });
  };

  SuperstepTrace blocking;
  run_traced(false, &blocking);
  ASSERT_EQ(blocking.size(), 5u);
  for (const SuperstepRecord& rec : blocking.records()) {
    EXPECT_EQ(rec.comm.ghost_rounds_async, 0u);
    EXPECT_EQ(rec.overlap_us, 0u);
    EXPECT_DOUBLE_EQ(rec.comm_hidden(), 0.0);
  }

  SuperstepTrace overlapped;
  run_traced(true, &overlapped);
  ASSERT_EQ(overlapped.size(), 5u);
  std::uint64_t exch_total = 0, ovl_total = 0;
  for (const SuperstepRecord& rec : overlapped.records()) {
    EXPECT_EQ(rec.wire, "dense");  // the wire format is unchanged
    // Exactly one split-phase round per superstep, counted both as a dense
    // round (wire) and as an async round (schedule).
    EXPECT_EQ(rec.comm.ghost_rounds_async, 1u);
    EXPECT_EQ(rec.comm.ghost_rounds_dense, 1u);
    EXPECT_GE(rec.comm_hidden(), 0.0);
    EXPECT_LE(rec.comm_hidden(), 1.0);
    exch_total += rec.exchange_us;
    ovl_total += rec.overlap_us;
  }
  // Rounds at this scale take well over a microsecond: the timers must
  // actually be populated, not just present.
  EXPECT_GT(exch_total + ovl_total, 0u);

  const std::string json = overlapped.to_json();
  EXPECT_TRUE(util::JsonChecker::valid(json)) << json.substr(0, 200);
  for (const char* key :
       {"\"exchange_us\"", "\"overlap_us\"", "\"comm_hidden\"",
        "\"ghost_rounds_async\"", "\"comm_wait_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace hpcgraph::engine
