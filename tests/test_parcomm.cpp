// Tests for the simulated message-passing runtime: every collective across
// several world sizes, abort propagation, statistics, and phase timing.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parcomm/comm.hpp"

namespace hpcgraph::parcomm {
namespace {

class WorldParam : public ::testing::TestWithParam<int> {};

TEST_P(WorldParam, RanksSeeCorrectIdentity) {
  const int p = GetParam();
  CommWorld world(p);
  std::vector<int> seen(p, -1);
  world.run([&](Communicator& comm) {
    EXPECT_EQ(comm.size(), p);
    seen[comm.rank()] = comm.rank();
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(seen[r], r);
}

TEST_P(WorldParam, BarrierSynchronizes) {
  const int p = GetParam();
  CommWorld world(p);
  std::atomic<int> phase_counter{0};
  world.run([&](Communicator& comm) {
    phase_counter.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all p arrivals.
    EXPECT_EQ(phase_counter.load(), p);
  });
}

TEST_P(WorldParam, AllreduceSumMaxMin) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduce_sum(r), p * (p - 1) / 2);
    EXPECT_EQ(comm.allreduce_max(r), p - 1);
    EXPECT_EQ(comm.allreduce_min(r), 0);
    EXPECT_TRUE(comm.allreduce_lor(r == p - 1));
    EXPECT_FALSE(comm.allreduce_lor(false));
  });
}

TEST_P(WorldParam, AllreduceCustomCombinerRankOrder) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    // Non-commutative combiner exposes reduction order: must be rank order.
    const std::uint64_t out = comm.allreduce<std::uint64_t>(
        comm.rank() + 1,
        [](std::uint64_t a, std::uint64_t b) { return a * 10 + b; });
    std::uint64_t expect = 1;
    for (int r = 1; r < p; ++r) expect = expect * 10 + (r + 1);
    EXPECT_EQ(out, expect);
  });
}

TEST_P(WorldParam, AllgatherCollectsInRankOrder) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    const auto all = comm.allgather(comm.rank() * 3);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[r], r * 3);
  });
}

TEST_P(WorldParam, AllgathervVariableLengths) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    // Rank r contributes r items of value r.
    std::vector<int> mine(comm.rank(), comm.rank());
    std::vector<std::uint64_t> counts;
    const auto all = comm.allgatherv<int>(mine, &counts);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
    std::size_t at = 0;
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(counts[r], static_cast<std::uint64_t>(r));
      for (int i = 0; i < r; ++i) EXPECT_EQ(all[at++], r);
    }
    EXPECT_EQ(at, all.size());
  });
}

TEST_P(WorldParam, AlltoallvPersonalizedExchange) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    const int me = comm.rank();
    // Send (me*100 + dst) repeated (dst+1) times to each dst.
    std::vector<int> send;
    std::vector<std::uint64_t> counts(p);
    for (int dst = 0; dst < p; ++dst) {
      counts[dst] = dst + 1;
      for (int i = 0; i <= dst; ++i) send.push_back(me * 100 + dst);
    }
    std::vector<std::uint64_t> rcounts;
    const auto recv = comm.alltoallv<int>(send, counts, &rcounts);
    // From each source we receive (me+1) copies of src*100+me, rank order.
    ASSERT_EQ(rcounts.size(), static_cast<std::size_t>(p));
    std::size_t at = 0;
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(rcounts[src], static_cast<std::uint64_t>(me + 1));
      for (int i = 0; i <= me; ++i) EXPECT_EQ(recv[at++], src * 100 + me);
    }
    EXPECT_EQ(at, recv.size());
  });
}

TEST_P(WorldParam, AlltoallvEmptySegmentsAreFine) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    // Only rank 0 sends, and only to the last rank.
    std::vector<std::uint64_t> counts(p, 0);
    std::vector<double> send;
    if (comm.rank() == 0) {
      counts[p - 1] = 2;
      send = {1.5, 2.5};
    }
    const auto recv = comm.alltoallv<double>(send, counts);
    if (comm.rank() == p - 1) {
      ASSERT_EQ(recv.size(), 2u);
      EXPECT_DOUBLE_EQ(recv[0], 1.5);
      EXPECT_DOUBLE_EQ(recv[1], 2.5);
    } else {
      EXPECT_TRUE(recv.empty());
    }
  });
}

TEST_P(WorldParam, AlltoallFixedSize) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    std::vector<int> send(p);
    for (int d = 0; d < p; ++d) send[d] = comm.rank() * p + d;
    const auto recv = comm.alltoall<int>(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) EXPECT_EQ(recv[s], s * p + comm.rank());
  });
}

TEST_P(WorldParam, BroadcastScalarAndVector) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    const int root = p - 1;
    const double v = (comm.rank() == root) ? 2.75 : -1.0;
    EXPECT_DOUBLE_EQ(comm.broadcast(v, root), 2.75);

    std::vector<std::uint32_t> payload;
    if (comm.rank() == root) payload = {10, 20, 30};
    const auto got = comm.broadcast_vec<std::uint32_t>(payload, root);
    EXPECT_EQ(got, (std::vector<std::uint32_t>{10, 20, 30}));
  });
}

TEST_P(WorldParam, GathervCollectsAtRootOnly) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    std::vector<int> mine{comm.rank(), comm.rank()};
    std::vector<std::uint64_t> counts;
    const auto got = comm.gatherv<int>(mine, 0, &counts);
    if (comm.rank() == 0) {
      ASSERT_EQ(got.size(), static_cast<std::size_t>(2 * p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(got[2 * r], r);
        EXPECT_EQ(got[2 * r + 1], r);
        EXPECT_EQ(counts[r], 2u);
      }
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, WorldParam, ::testing::Values(1, 2, 3, 4, 8));

TEST(CommWorld, RejectsZeroRanks) {
  EXPECT_THROW(CommWorld(0), CheckError);
}

TEST(CommWorld, RankExceptionPropagatesAndReleasesPeers) {
  CommWorld world(4);
  EXPECT_THROW(
      world.run([&](Communicator& comm) {
        if (comm.rank() == 2) throw std::runtime_error("rank 2 failed");
        // Peers park in a barrier; the abort must release them.
        comm.barrier();
        comm.barrier();
      }),
      std::runtime_error);
}

TEST(CommWorld, ReusableAfterAbort) {
  CommWorld world(2);
  EXPECT_THROW(world.run([](Communicator&) {
    throw std::logic_error("boom");
  }),
               std::logic_error);
  // A fresh run must work.
  world.run([](Communicator& comm) { comm.barrier(); });
}

TEST(CommWorld, SequentialRunsOnSameWorld) {
  CommWorld world(3);
  for (int round = 0; round < 5; ++round) {
    world.run([&](Communicator& comm) {
      EXPECT_EQ(comm.allreduce_sum(1), 3);
    });
  }
}

TEST(CommStats, CountsBytesAndCalls) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    std::vector<std::uint64_t> counts{1, 1};
    const std::vector<std::uint32_t> send{1u, 2u};
    (void)comm.alltoallv<std::uint32_t>(send, counts);
    const CommStats& s = comm.stats();
    EXPECT_EQ(s.collective_calls, 1u);
    EXPECT_EQ(s.bytes_sent, 8u);            // 2 items * 4 bytes
    EXPECT_EQ(s.bytes_remote, 4u);          // 1 item to the peer
    EXPECT_EQ(s.bytes_received, 8u);
  });
  // Stats captured per rank at world level.
  ASSERT_EQ(world.last_stats().size(), 2u);
  EXPECT_EQ(world.last_stats()[0].collective_calls, 1u);
}

TEST(CommStats, SelfBytesAreNeverRemote) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    // One item kept, one shipped: the self segment must land in bytes_self.
    std::vector<std::uint64_t> counts{1, 1};
    const std::vector<std::uint32_t> send{1u, 2u};
    (void)comm.alltoallv<std::uint32_t>(send, counts);
    const CommStats& s = comm.stats();
    EXPECT_EQ(s.bytes_self, 4u);
    EXPECT_EQ(s.bytes_remote, 4u);
    EXPECT_EQ(s.bytes_received, s.bytes_remote + s.bytes_self);
  });
}

// The conservation law every collective must satisfy under the unified
// accounting rules: globally, everything received was delivered either
// remotely or to self.  Exercises every collective in one region, with
// asymmetric payloads so miscounting any rank's share breaks the sums.
TEST(CommStats, ReceivedEqualsRemotePlusSelfAcrossCollectives) {
  for (const int p : {1, 2, 3, 4}) {
    CommWorld world(p);
    world.run([&](Communicator& comm) {
      const int me = comm.rank();
      // alltoallv with ragged counts: rank r sends r+1 items to each rank.
      std::vector<std::uint64_t> counts(p,
                                        static_cast<std::uint64_t>(me) + 1);
      std::vector<std::uint32_t> payload(
          static_cast<std::size_t>(p) * (me + 1),
          static_cast<std::uint32_t>(me));
      (void)comm.alltoallv<std::uint32_t>(payload, counts);
      (void)comm.allreduce_sum(static_cast<std::uint64_t>(me));
      (void)comm.allgather(me);
      // Ragged allgatherv: rank r contributes r+1 doubles.
      (void)comm.allgatherv<double>(std::vector<double>(me + 1, 1.5));
      int bval = me == 0 ? 42 : 0;
      comm.broadcast(bval, 0);
      std::vector<std::uint16_t> bvec;
      if (me == 0) bvec.assign(5, 7);
      comm.broadcast_vec<std::uint16_t>(bvec, 0);
      (void)comm.gatherv<std::uint8_t>(
          std::vector<std::uint8_t>(2 * me + 1, 9), 0);
    });
    std::uint64_t received = 0, remote = 0, self = 0;
    for (const CommStats& s : world.last_stats()) {
      received += s.bytes_received;
      remote += s.bytes_remote;
      self += s.bytes_self;
    }
    EXPECT_EQ(received, remote + self) << "p=" << p;
    if (p == 1) {
      EXPECT_EQ(remote, 0u) << "single rank sends nothing remote";
    }
  }
}

TEST(CommStats, DeltaSubtractsEveryCounter) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    std::vector<std::uint64_t> counts{1, 1};
    const std::vector<std::uint32_t> send{1u, 2u};
    (void)comm.alltoallv<std::uint32_t>(send, counts);
    const CommStats before = comm.stats();
    (void)comm.alltoallv<std::uint32_t>(send, counts);
    (void)comm.allreduce_sum(1);
    comm.barrier();
    const CommStats d = comm.stats().delta(before);
    // The delta sees only the second region: one alltoallv (8 B sent,
    // 4 B remote / 4 B self each way), one allreduce, one barrier.
    EXPECT_EQ(d.collective_calls, 2u);
    EXPECT_EQ(d.barrier_calls, 1u);
    EXPECT_EQ(d.bytes_remote, 4u + sizeof(int));  // alltoallv + allreduce
    EXPECT_EQ(d.bytes_self, 4u + sizeof(int));
    // operator- and delta() agree.
    const CommStats d2 = comm.stats() - before;
    EXPECT_EQ(d2.bytes_sent, d.bytes_sent);
    EXPECT_EQ(d2.bytes_received, d.bytes_received);
  });
}

// Conservation must hold on deltas too: subtraction is field-wise, so the
// law received == remote + self carries over to any [t0, t1) window by
// linearity.  Regression guard for per-superstep telemetry, which reports
// exactly such windows.
TEST(CommStats, ConservationHoldsOnDeltas) {
  for (const int p : {1, 2, 3, 4}) {
    CommWorld world(p);
    std::vector<CommStats> deltas(p);
    world.run([&](Communicator& comm) {
      const int me = comm.rank();
      // Pollute the pre-window counters with an asymmetric collective.
      (void)comm.allgatherv<double>(std::vector<double>(me + 1, 0.5));
      const CommStats before = comm.stats();
      std::vector<std::uint64_t> counts(p,
                                        static_cast<std::uint64_t>(me) + 1);
      std::vector<std::uint32_t> payload(
          static_cast<std::size_t>(p) * (me + 1),
          static_cast<std::uint32_t>(me));
      (void)comm.alltoallv<std::uint32_t>(payload, counts);
      (void)comm.allreduce_sum(static_cast<std::uint64_t>(me));
      (void)comm.allgather(me);
      deltas[me] = comm.stats().delta(before);
    });
    std::uint64_t received = 0, remote = 0, self = 0;
    for (const CommStats& s : deltas) {
      received += s.bytes_received;
      remote += s.bytes_remote;
      self += s.bytes_self;
    }
    EXPECT_EQ(received, remote + self) << "p=" << p;
    EXPECT_GT(received, 0u) << "p=" << p;
  }
}

TEST(PhaseTimer, BreakdownComponentsSumToTotal) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    comm.phase_timer().reset();
    // Unbalanced compute: rank 1 works, rank 0 idles at the barrier.
    if (comm.rank() == 1) {
      volatile double sink = 0;
      for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
    }
    comm.barrier();
    const PhaseBreakdown b = comm.phase_timer().snapshot();
    EXPECT_GE(b.total, b.comm + b.idle - 1e-9);
    EXPECT_GE(b.comp, 0.0);
    EXPECT_NEAR(b.comp_ratio() + b.comm_ratio() + b.idle_ratio(), 1.0, 1e-6);
    if (comm.rank() == 0) {
      // The idle rank spent most of its region waiting.
      EXPECT_GT(b.idle, 0.0);
    }
  });
}

TEST(PhaseTimer, CommTimeAttributedDuringExchange) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    comm.phase_timer().reset();
    std::vector<std::uint64_t> counts{1u << 18, 1u << 18};
    std::vector<std::uint64_t> send(1u << 19, comm.rank());
    (void)comm.alltoallv<std::uint64_t>(send, counts);
    const PhaseBreakdown b = comm.phase_timer().snapshot();
    EXPECT_GT(b.comm, 0.0);  // 4 MiB copied
  });
}

// ---- Split-phase alltoallv (ialltoallv / PendingExchange). ----

TEST_P(WorldParam, IalltoallvMatchesBlockingAlltoallv) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    const int me = comm.rank();
    std::vector<int> send;
    std::vector<std::uint64_t> counts(p);
    for (int dst = 0; dst < p; ++dst) {
      counts[dst] = dst + 1;
      for (int i = 0; i <= dst; ++i) send.push_back(me * 100 + dst);
    }
    std::vector<std::uint64_t> rc_block;
    const auto ref = comm.alltoallv<int>(send, counts, &rc_block);

    PendingExchange<int> pe = comm.ialltoallv<int>(send, counts);
    EXPECT_TRUE(pe.valid());
    // The counts buffer may be reused the moment initiation returns (the
    // runtime snapshots it); only the payload must stay alive until wait.
    std::fill(counts.begin(), counts.end(), 9999);
    // Arbitrary local compute while the exchange is in flight.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<unsigned>(i);
    (void)sink;
    std::vector<std::uint64_t> rc_split;
    const auto got = pe.wait(&rc_split);
    EXPECT_FALSE(pe.valid());
    EXPECT_EQ(got, ref);
    EXPECT_EQ(rc_split, rc_block);
  });
}

TEST_P(WorldParam, IalltoallvHandleIsReusableAcrossRounds) {
  const int p = GetParam();
  CommWorld world(p);
  world.run([&](Communicator& comm) {
    const int me = comm.rank();
    const std::vector<std::uint64_t> counts(p, 2);
    for (std::uint64_t round = 0; round < 3; ++round) {
      std::vector<std::uint64_t> send(2 * static_cast<std::size_t>(p));
      for (std::size_t i = 0; i < send.size(); ++i)
        send[i] = me * 1000 + round * 10 + i;
      auto pe = comm.ialltoallv<std::uint64_t>(send, counts);
      const auto recv = pe.wait();
      ASSERT_EQ(recv.size(), 2 * static_cast<std::size_t>(p));
      for (int src = 0; src < p; ++src) {
        EXPECT_EQ(recv[2 * src],
                  static_cast<std::uint64_t>(src) * 1000 + round * 10 +
                      2 * static_cast<std::uint64_t>(me));
      }
    }
  });
}

// While a split-phase exchange is pending every other collective must be
// rejected — this is the dynamic form of the "no collectives between
// exchange_start and exchange_finish" rule the overlapped engine relies on.
TEST(PendingExchange, OutstandingExchangeBlocksOtherCollectives) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    const std::vector<std::uint64_t> counts{1, 1};
    const std::vector<std::uint32_t> send{7u, 8u};
    auto pe = comm.ialltoallv<std::uint32_t>(send, counts);
    EXPECT_THROW(comm.barrier(), CheckError);
    EXPECT_THROW((void)comm.allreduce_sum(1), CheckError);
    EXPECT_THROW((void)comm.alltoallv<std::uint32_t>(send, counts),
                 CheckError);
    EXPECT_THROW((void)comm.ialltoallv<std::uint32_t>(send, counts),
                 CheckError);
    const auto recv = pe.wait();
    ASSERT_EQ(recv.size(), 2u);
    comm.barrier();  // completed: collectives work again
    // A consumed handle cannot be waited on twice.
    EXPECT_THROW((void)pe.wait(), CheckError);
  });
}

TEST(CommStats, ConservationAndCountersCoverSplitPhase) {
  for (const int p : {1, 2, 4}) {
    CommWorld world(p);
    std::vector<CommStats> deltas(p);
    world.run([&](Communicator& comm) {
      const int me = comm.rank();
      const CommStats before = comm.stats();
      std::vector<std::uint64_t> counts(p,
                                        static_cast<std::uint64_t>(me) + 1);
      std::vector<std::uint32_t> payload(
          static_cast<std::size_t>(p) * (me + 1),
          static_cast<std::uint32_t>(me));
      auto pe = comm.ialltoallv<std::uint32_t>(payload, counts);
      (void)pe.wait();
      deltas[me] = comm.stats().delta(before);
      // Initiation and completion are two collective entries.
      EXPECT_EQ(deltas[me].collective_calls, 2u);
    });
    std::uint64_t received = 0, remote = 0, self = 0;
    for (const CommStats& s : deltas) {
      received += s.bytes_received;
      remote += s.bytes_remote;
      self += s.bytes_self;
    }
    EXPECT_EQ(received, remote + self) << "p=" << p;
    EXPECT_GT(received, 0u) << "p=" << p;
    if (p == 1) EXPECT_EQ(remote, 0u);
  }
}

TEST(CommStats, ArithmeticCoversAsyncRoundCounter) {
  CommStats a, b;
  a.ghost_rounds_async = 5;
  b.ghost_rounds_async = 2;
  EXPECT_EQ((a - b).ghost_rounds_async, 3u);
  CommStats acc;
  acc += a;
  acc += b;
  EXPECT_EQ(acc.ghost_rounds_async, 7u);
}

TEST(PhaseTimer, WaitAttributedDuringSplitPhaseCompletion) {
  CommWorld world(2);
  world.run([&](Communicator& comm) {
    comm.phase_timer().reset();
    const std::vector<std::uint64_t> counts{1u << 18, 1u << 18};
    const std::vector<std::uint64_t> send(1u << 19, comm.rank());
    auto pe = comm.ialltoallv<std::uint64_t>(send, counts);
    const PhaseBreakdown at_start = comm.phase_timer().snapshot();
    EXPECT_DOUBLE_EQ(at_start.wait, 0.0);  // nothing completed yet
    (void)pe.wait();
    const PhaseBreakdown b = comm.phase_timer().snapshot();
    EXPECT_GT(b.wait, 0.0);  // 4 MiB copied inside wait()
    // `wait` is an overlay like `pack`: the copy seconds also appear in
    // comm, so the primary comp/comm/idle split still covers the total.
    EXPECT_GE(b.comm, 0.0);
    const PhaseBreakdown d = b - at_start;
    EXPECT_GT(d.wait, 0.0);  // operator- carries the field
  });
}

}  // namespace
}  // namespace hpcgraph::parcomm
