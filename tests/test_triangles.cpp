// Distributed triangle counting vs the sequential oracle, plus hand-counted
// fixtures exercising the dedup/self-loop/direction conventions.

#include <gtest/gtest.h>

#include "analytics/triangles.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::with_dist_graph;

TEST(RefTriangles, HandCountedFixtures) {
  // Directed triangle counts once regardless of edge orientations.
  gen::EdgeList tri;
  tri.n = 3;
  tri.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_EQ(ref::triangle_count(ref::SeqGraph::from(tri)), 1u);

  // Duplicates, reverse edges and self loops do not inflate the count.
  gen::EdgeList messy;
  messy.n = 3;
  messy.edges = {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {0, 0}, {0, 1}};
  EXPECT_EQ(ref::triangle_count(ref::SeqGraph::from(messy)), 1u);

  // K4 has 4 triangles.
  gen::EdgeList k4;
  k4.n = 4;
  for (gvid_t a = 0; a < 4; ++a)
    for (gvid_t b = a + 1; b < 4; ++b) k4.edges.push_back({a, b});
  EXPECT_EQ(ref::triangle_count(ref::SeqGraph::from(k4)), 4u);

  // A path has none.
  gen::EdgeList path;
  path.n = 4;
  path.edges = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(ref::triangle_count(ref::SeqGraph::from(path)), 0u);
}

class TriangleParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(TriangleParam, MatchesOracleOnRmat) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const std::uint64_t want = ref::triangle_count(ref::SeqGraph::from(el));
  ASSERT_GT(want, 0u);  // R-MAT is triangle-rich

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const TriangleResult res = triangle_count(g, comm);
    EXPECT_EQ(res.triangles, want);
    EXPECT_GE(res.wedges_checked, res.triangles);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TriangleParam,
    ::testing::ValuesIn(hpcgraph::testing::standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Triangles, K5AcrossRankBoundaries) {
  gen::EdgeList k5;
  k5.n = 5;
  for (gvid_t a = 0; a < 5; ++a)
    for (gvid_t b = a + 1; b < 5; ++b) k5.edges.push_back({a, b});
  // C(5,3) = 10 triangles, split across ranks.
  for (const int p : {1, 2, 5}) {
    with_dist_graph(k5, {p, dgraph::PartitionKind::kVertexBlock},
                    [&](const DistGraph& g, parcomm::Communicator& comm) {
      EXPECT_EQ(triangle_count(g, comm).triangles, 10u);
    });
  }
}

TEST(Triangles, FuzzAgainstOracle) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    Rng rng(seed);
    gen::EdgeList el;
    el.n = 40 + rng.below(200);
    const std::uint64_t m = rng.below(el.n * 5);
    for (std::uint64_t e = 0; e < m; ++e)
      el.edges.push_back({rng.below(el.n), rng.below(el.n)});
    const std::uint64_t want = ref::triangle_count(ref::SeqGraph::from(el));
    with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                    [&](const DistGraph& g, parcomm::Communicator& comm) {
      ASSERT_EQ(triangle_count(g, comm).triangles, want) << "seed " << seed;
    });
  }
}

TEST(Triangles, WebGraphCommunityStructureIsTriangleRich) {
  gen::WebGraphParams wp;
  wp.n = 1 << 11;
  const gen::WebGraph wg = gen::webgraph(wp);
  const std::uint64_t want =
      ref::triangle_count(ref::SeqGraph::from(wg.graph));
  with_dist_graph(wg.graph, {4, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const TriangleResult res = triangle_count(g, comm);
    EXPECT_EQ(res.triangles, want);
    EXPECT_GT(res.triangles, wg.graph.n);  // community-rich => clustered
  });
}

TEST(Triangles, EdgelessGraphHasNone) {
  gen::EdgeList el;
  el.n = 10;
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    EXPECT_EQ(triangle_count(g, comm).triangles, 0u);
    EXPECT_EQ(triangle_count(g, comm).wedges_checked, 0u);
  });
}

}  // namespace
}  // namespace hpcgraph::analytics
