// Distributed SSSP (frontier Bellman-Ford) vs the sequential Dijkstra
// reference on identical synthetic weights.

#include <gtest/gtest.h>

#include "analytics/sssp.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

TEST(SsspWeights, DeterministicAndInRange) {
  for (gvid_t u = 0; u < 50; ++u)
    for (gvid_t v = 0; v < 50; ++v) {
      const auto w = edge_weight(u, v, 64);
      ASSERT_GE(w, 1u);
      ASSERT_LE(w, 64u);
      ASSERT_EQ(w, edge_weight(u, v, 64));
    }
  // Directionality matters: w(u,v) generally != w(v,u).
  int asymmetric = 0;
  for (gvid_t u = 0; u < 20; ++u)
    for (gvid_t v = u + 1; v < 20; ++v)
      if (edge_weight(u, v, 64) != edge_weight(v, u, 64)) ++asymmetric;
  EXPECT_GT(asymmetric, 100);
}

class SsspParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(SsspParam, DistancesMatchDijkstra) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::sssp_dijkstra(ref::SeqGraph::from(el), 3, 64);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    SsspOptions opts;
    opts.max_weight = 64;
    const SsspResult res = sssp(g, comm, 3, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      const std::uint64_t want_d =
          want[gid] == ref::kInfDistance ? kInfDistance : want[gid];
      ASSERT_EQ(res.dist[v], want_d) << "vertex " << gid;
    }
  });
}

TEST_P(SsspParam, ReachabilityMatchesBfs) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const SsspResult res = sssp(g, comm, 0);
    // Forward-reachable set from 0 is {0..4}.
    EXPECT_EQ(res.reached, 5u);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      ASSERT_EQ(res.dist[v] != kInfDistance, gid <= 4) << gid;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SsspParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Sssp, UnitWeightsReduceToBfsLevels) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  const auto levels =
      ref::bfs_levels(ref::SeqGraph::from(el), 1, /*directed=*/true);
  with_dist_graph(el, {4, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    SsspOptions opts;
    opts.max_weight = 1;  // every edge weighs exactly 1
    const SsspResult res = sssp(g, comm, 1, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      if (levels[gid] < 0) {
        ASSERT_EQ(res.dist[v], kInfDistance);
      } else {
        ASSERT_EQ(res.dist[v], static_cast<std::uint64_t>(levels[gid]));
      }
    }
  });
}

TEST(Sssp, TriangleInequalityOnEdges) {
  // Property: for every edge (u, v), dist[v] <= dist[u] + w(u, v).
  gen::WebGraphParams wp;
  wp.n = 1 << 11;
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {3, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const gvid_t root = wg.core.begin;  // a hub inside the SCC
    SsspOptions opts;
    const SsspResult res = sssp(g, comm, root, opts);
    // Check local->local edges (cross edges would need a ghost gather).
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (res.dist[v] == kInfDistance) continue;
      for (const lvid_t u : g.out_neighbors(v)) {
        if (g.is_ghost(u)) continue;
        const auto w =
            edge_weight(g.global_id(v), g.global_id(u), opts.max_weight);
        ASSERT_LE(res.dist[u], res.dist[v] + w);
      }
    }
  });
}

TEST(Sssp, RootDistanceZeroAndRoundsBounded) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const SsspResult res = sssp(g, comm, 5);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (g.global_id(v) == 5) {
        ASSERT_EQ(res.dist[v], 0u);
      }
    }
    EXPECT_GT(res.rounds, 0);
    EXPECT_LE(res.rounds, static_cast<int>(el.n) + 1);
  });
}

}  // namespace
}  // namespace hpcgraph::analytics
