// Sanity tests for the sequential golden implementations on hand-verified
// graphs.  These are the oracles the distributed suites compare against, so
// they get their own careful scrutiny.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/rmat.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::ref {
namespace {

using gen::EdgeList;

SeqGraph path3() {
  // 0 -> 1 -> 2
  EdgeList g;
  g.n = 3;
  g.edges = {{0, 1}, {1, 2}};
  return SeqGraph::from(g);
}

SeqGraph cycle4() {
  EdgeList g;
  g.n = 4;
  g.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  return SeqGraph::from(g);
}

// ---------- SeqGraph ----------

TEST(SeqGraph, BuildsCsrBothDirections) {
  const SeqGraph g = path3();
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 2u);
  ASSERT_EQ(g.out_neighbors(0).size(), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  ASSERT_EQ(g.in_neighbors(2).size(), 1u);
  EXPECT_EQ(g.in_neighbors(2)[0], 1u);
  EXPECT_EQ(g.out_degree(2), 0u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(SeqGraph, PreservesDuplicatesAndSelfLoops) {
  EdgeList el;
  el.n = 2;
  el.edges = {{0, 1}, {0, 1}, {1, 1}};
  const SeqGraph g = SeqGraph::from(el);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 3u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

// ---------- PageRank ----------

TEST(RefPageRank, SumsToOne) {
  const SeqGraph g = SeqGraph::from(hpcgraph::testing::tiny_graph());
  const auto pr = pagerank(g, 20);
  const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(RefPageRank, UniformOnCycle) {
  const auto pr = pagerank(cycle4(), 50);
  for (const double s : pr) EXPECT_NEAR(s, 0.25, 1e-12);
}

TEST(RefPageRank, SinkAccumulatesOnPath) {
  // On 0->1->2, rank must be increasing along the path.
  const auto pr = pagerank(path3(), 50);
  EXPECT_LT(pr[0], pr[1]);
  EXPECT_LT(pr[1], pr[2]);
}

TEST(RefPageRank, DanglingMassRedistributed) {
  // Star into a dangling center: mass must not leak (sum stays 1).
  EdgeList el;
  el.n = 4;
  el.edges = {{1, 0}, {2, 0}, {3, 0}};  // vertex 0 dangles
  const auto pr = pagerank(SeqGraph::from(el), 30);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-12);
  EXPECT_GT(pr[0], pr[1]);
}

TEST(RefPageRank, ZeroIterationsIsUniform) {
  const auto pr = pagerank(cycle4(), 0);
  for (const double s : pr) EXPECT_DOUBLE_EQ(s, 0.25);
}

// ---------- BFS ----------

TEST(RefBfs, DirectedLevels) {
  const auto lvl = bfs_levels(path3(), 0, true);
  EXPECT_EQ(lvl, (std::vector<std::int64_t>{0, 1, 2}));
  const auto lvl2 = bfs_levels(path3(), 2, true);
  EXPECT_EQ(lvl2, (std::vector<std::int64_t>{-1, -1, 0}));
}

TEST(RefBfs, UndirectedReachesBackwards) {
  const auto lvl = bfs_levels(path3(), 2, false);
  EXPECT_EQ(lvl, (std::vector<std::int64_t>{2, 1, 0}));
}

TEST(RefBfs, SelfLoopDoesNotInflateLevels) {
  EdgeList el;
  el.n = 2;
  el.edges = {{0, 0}, {0, 1}};
  const auto lvl = bfs_levels(SeqGraph::from(el), 0, true);
  EXPECT_EQ(lvl, (std::vector<std::int64_t>{0, 1}));
}

// ---------- WCC ----------

TEST(RefWcc, TinyGraphComponents) {
  const SeqGraph g = SeqGraph::from(hpcgraph::testing::tiny_graph());
  const auto comp = wcc(g);
  // {0,1,2,3,4} | {5,6,7} | {8} | {9}
  EXPECT_EQ(comp[0], 0u);
  EXPECT_EQ(comp[4], 0u);
  EXPECT_EQ(comp[5], 5u);
  EXPECT_EQ(comp[7], 5u);
  EXPECT_EQ(comp[8], 8u);
  EXPECT_EQ(comp[9], 9u);
}

TEST(RefWcc, DirectionIgnored) {
  EdgeList el;
  el.n = 3;
  el.edges = {{1, 0}, {1, 2}};  // weakly connected despite directions
  const auto comp = wcc(SeqGraph::from(el));
  EXPECT_EQ(comp, (std::vector<gvid_t>{0, 0, 0}));
}

// ---------- SCC ----------

TEST(RefScc, TinyGraphSccs) {
  const SeqGraph g = SeqGraph::from(hpcgraph::testing::tiny_graph());
  const auto comp = scc(g);
  // SCCs: {0,1,2}, {3}, {4}, {5,6}, {7}, {8}, {9}
  EXPECT_EQ(comp[0], 0u);
  EXPECT_EQ(comp[1], 0u);
  EXPECT_EQ(comp[2], 0u);
  EXPECT_EQ(comp[3], 3u);
  EXPECT_EQ(comp[4], 4u);
  EXPECT_EQ(comp[5], 5u);
  EXPECT_EQ(comp[6], 5u);
  EXPECT_EQ(comp[7], 7u);
  EXPECT_EQ(comp[8], 8u);
  EXPECT_EQ(comp[9], 9u);
}

TEST(RefScc, LargestSccOfTinyGraph) {
  const SeqGraph g = SeqGraph::from(hpcgraph::testing::tiny_graph());
  const auto members = largest_scc(g);
  EXPECT_EQ(members, (std::vector<gvid_t>{0, 1, 2}));
}

TEST(RefScc, WholeCycleIsOneScc) {
  const auto comp = scc(cycle4());
  for (const auto c : comp) EXPECT_EQ(c, 0u);
}

TEST(RefScc, DagIsAllSingletons) {
  const auto comp = scc(path3());
  EXPECT_EQ(comp, (std::vector<gvid_t>{0, 1, 2}));
}

TEST(RefScc, HandlesDeepRecursionIteratively) {
  // A 60k-vertex path would blow the stack with recursive Tarjan.
  EdgeList el;
  el.n = 60000;
  for (gvid_t v = 0; v + 1 < el.n; ++v) el.edges.push_back({v, v + 1});
  const auto comp = scc(SeqGraph::from(el));
  EXPECT_EQ(comp[0], 0u);
  EXPECT_EQ(comp[59999], 59999u);
}

// ---------- Harmonic centrality ----------

TEST(RefHarmonic, PathValues) {
  // From 0 on 0->1->2: 1/1 + 1/2 = 1.5
  EXPECT_DOUBLE_EQ(harmonic_centrality(path3(), 0), 1.5);
  // From 2: nothing reachable.
  EXPECT_DOUBLE_EQ(harmonic_centrality(path3(), 2), 0.0);
}

TEST(RefHarmonic, CycleSymmetric) {
  const SeqGraph g = cycle4();
  const double h0 = harmonic_centrality(g, 0);
  for (gvid_t v = 1; v < 4; ++v)
    EXPECT_DOUBLE_EQ(harmonic_centrality(g, v), h0);
  EXPECT_DOUBLE_EQ(h0, 1.0 + 0.5 + 1.0 / 3.0);
}

// ---------- k-core ----------

TEST(RefKcore, ApproxBoundsOnClique) {
  // K5 (directed both ways): every vertex has total degree 8; peeling at
  // threshold 2^i removes all of K5 once 2^i > 8, i.e. stage i=4 (16).
  EdgeList el;
  el.n = 5;
  for (gvid_t a = 0; a < 5; ++a)
    for (gvid_t b = 0; b < 5; ++b)
      if (a != b) el.edges.push_back({a, b});
  const auto bound = kcore_approx(SeqGraph::from(el), 10);
  for (const auto b : bound) EXPECT_EQ(b, 16u);
}

TEST(RefKcore, PathPeeledImmediately) {
  // Path vertices have degree <= 2 < 2^2: ends removed at stage 1 cascade.
  const auto bound = kcore_approx(path3(), 5);
  for (const auto b : bound) EXPECT_LE(b, 4u);
}

TEST(RefKcore, ApproxIsUpperBoundOfExact) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const SeqGraph g = SeqGraph::from(gen::rmat(rp));
  const auto approx = kcore_approx(g, 20);
  const auto exact = kcore_exact(g);
  for (gvid_t v = 0; v < g.n(); ++v)
    ASSERT_GE(approx[v], exact[v]) << "bound violated at " << v;
}

TEST(RefKcore, ExactOnClique) {
  // K4 directed both ways: coreness (total-degree convention) = 6.
  EdgeList el;
  el.n = 4;
  for (gvid_t a = 0; a < 4; ++a)
    for (gvid_t b = 0; b < 4; ++b)
      if (a != b) el.edges.push_back({a, b});
  const auto core = kcore_exact(SeqGraph::from(el));
  for (const auto c : core) EXPECT_EQ(c, 6u);
}

// ---------- Label propagation ----------

TEST(RefLabelProp, ZeroIterationsKeepsIds) {
  const auto labels = label_propagation(path3(), 0);
  EXPECT_EQ(labels, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(RefLabelProp, TwoCliquesSeparate) {
  // Two directed 4-cliques joined by one edge: LP must find two communities.
  EdgeList el;
  el.n = 8;
  for (gvid_t base : {gvid_t{0}, gvid_t{4}})
    for (gvid_t a = 0; a < 4; ++a)
      for (gvid_t b = 0; b < 4; ++b)
        if (a != b) el.edges.push_back({base + a, base + b});
  el.edges.push_back({0, 4});
  const auto labels =
      normalize_labels(label_propagation(SeqGraph::from(el), 10));
  for (gvid_t v = 0; v < 4; ++v) EXPECT_EQ(labels[v], labels[0]);
  for (gvid_t v = 4; v < 8; ++v) EXPECT_EQ(labels[v], labels[4]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST(RefLabelProp, DeterministicForSeed) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const SeqGraph g = SeqGraph::from(gen::rmat(rp));
  EXPECT_EQ(label_propagation(g, 5, 1), label_propagation(g, 5, 1));
}

TEST(RefLabelProp, IsolatedVertexKeepsOwnLabel) {
  EdgeList el;
  el.n = 3;
  el.edges = {{0, 1}};
  const auto labels = label_propagation(SeqGraph::from(el), 5);
  EXPECT_EQ(labels[2], 2u);
}

// ---------- normalize_labels ----------

TEST(NormalizeLabels, CanonicalizesToMinMember) {
  const std::vector<std::uint64_t> raw{7, 7, 3, 3, 7};
  const auto norm = normalize_labels(raw);
  EXPECT_EQ(norm, (std::vector<std::uint64_t>{0, 0, 2, 2, 0}));
}

TEST(NormalizeLabels, EmptyOk) {
  EXPECT_TRUE(normalize_labels({}).empty());
}

}  // namespace
}  // namespace hpcgraph::ref
