// Tests for the binary edge file format and parallel chunked reads.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/erdos_renyi.hpp"
#include "util/error.hpp"
#include "io/binary_edge_io.hpp"

namespace hpcgraph::io {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hgio_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(IoTest, RoundTripU32) {
  gen::EdgeList g;
  g.n = 100;
  g.edges = {{0, 1}, {5, 99}, {99, 0}, {7, 7}};
  write_edge_file(path("g.bin"), g, EdgeFormat::kU32);
  EXPECT_EQ(edge_count(path("g.bin"), EdgeFormat::kU32), 4u);
  const auto back = read_edge_chunk(path("g.bin"), EdgeFormat::kU32, 0, 4);
  EXPECT_EQ(back, g.edges);
}

TEST_F(IoTest, RoundTripU64) {
  gen::EdgeList g;
  g.n = gvid_t{1} << 40;
  g.edges = {{0, (gvid_t{1} << 36) + 5}, {gvid_t{1} << 39, 2}};
  write_edge_file(path("g64.bin"), g, EdgeFormat::kU64);
  EXPECT_EQ(edge_count(path("g64.bin"), EdgeFormat::kU64), 2u);
  const auto back = read_edge_chunk(path("g64.bin"), EdgeFormat::kU64, 0, 2);
  EXPECT_EQ(back, g.edges);
}

TEST_F(IoTest, U32RejectsOversizeIds) {
  gen::EdgeList g;
  g.n = gvid_t{1} << 40;
  g.edges = {{gvid_t{1} << 35, 0}};
  EXPECT_THROW(write_edge_file(path("bad.bin"), g, EdgeFormat::kU32),
               CheckError);
}

TEST_F(IoTest, FileSizeIsExact) {
  gen::EdgeList g;
  g.n = 10;
  g.edges.assign(1000, {1, 2});
  write_edge_file(path("g.bin"), g, EdgeFormat::kU32);
  EXPECT_EQ(fs::file_size(path("g.bin")), 1000u * 8u);
}

TEST_F(IoTest, ChunkedReadsReassembleWholeFile) {
  gen::ErParams p;
  p.n = 1000;
  p.m = 7777;  // deliberately not divisible by typical rank counts
  const gen::EdgeList g = gen::erdos_renyi(p);
  write_edge_file(path("g.bin"), g, EdgeFormat::kU32);

  for (const int nranks : {1, 2, 3, 4, 7, 16}) {
    std::vector<gen::Edge> assembled;
    std::uint64_t covered = 0;
    for (int r = 0; r < nranks; ++r) {
      const auto [first, count] = chunk_for_rank(g.m(), r, nranks);
      EXPECT_EQ(first, covered);  // chunks are contiguous, in order
      covered += count;
      const auto chunk =
          read_edge_chunk(path("g.bin"), EdgeFormat::kU32, first, count);
      assembled.insert(assembled.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(covered, g.m());
    EXPECT_EQ(assembled, g.edges) << "nranks=" << nranks;
  }
}

TEST_F(IoTest, ChunksAreBalanced) {
  for (const std::uint64_t m : {0ull, 1ull, 99ull, 100ull, 101ull}) {
    for (const int p : {1, 3, 8}) {
      std::uint64_t total = 0, cmax = 0, cmin = ~0ull;
      for (int r = 0; r < p; ++r) {
        const auto [first, count] = chunk_for_rank(m, r, p);
        (void)first;
        total += count;
        cmax = std::max(cmax, count);
        cmin = std::min(cmin, count);
      }
      EXPECT_EQ(total, m);
      EXPECT_LE(cmax - cmin, 1u) << "m=" << m << " p=" << p;
    }
  }
}

TEST_F(IoTest, EmptyChunkReadIsEmpty) {
  gen::EdgeList g;
  g.n = 2;
  g.edges = {{0, 1}};
  write_edge_file(path("g.bin"), g);
  EXPECT_TRUE(read_edge_chunk(path("g.bin"), EdgeFormat::kU32, 1, 0).empty());
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(edge_count(path("nope.bin")), CheckError);
  EXPECT_THROW(read_edge_chunk(path("nope.bin"), EdgeFormat::kU32, 0, 1),
               CheckError);
}

TEST_F(IoTest, TruncatedFileThrows) {
  std::ofstream f(path("trunc.bin"), std::ios::binary);
  f.write("abc", 3);  // not a multiple of 8
  f.close();
  EXPECT_THROW(edge_count(path("trunc.bin")), CheckError);
}

TEST_F(IoTest, OverwriteReplacesContent) {
  gen::EdgeList a;
  a.n = 2;
  a.edges.assign(100, {0, 1});
  write_edge_file(path("g.bin"), a);
  gen::EdgeList b;
  b.n = 2;
  b.edges = {{1, 0}};
  write_edge_file(path("g.bin"), b);
  EXPECT_EQ(edge_count(path("g.bin")), 1u);
}

}  // namespace
}  // namespace hpcgraph::io
