// Distributed Label Propagation (Algorithm 1 + 3) vs the sequential
// reference: bit-exact label equality in synchronous mode, invariants in
// the paper's in-place mode, planted-community recovery.

#include <gtest/gtest.h>

#include <set>

#include "analytics/label_prop.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

class LabelPropParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(LabelPropParam, SynchronousModeMatchesReferenceExactly) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want =
      ref::label_propagation(ref::SeqGraph::from(el), 6, /*tie_seed=*/42);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    LabelPropOptions opts;
    opts.iterations = 6;
    opts.tie_seed = 42;
    const LabelPropResult res = label_propagation(g, comm, opts);
    EXPECT_EQ(res.iterations_run, 6);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.labels[v], want[g.global_id(v)])
          << "vertex " << g.global_id(v);
  });
}

TEST_P(LabelPropParam, ResultIndependentOfRankCount) {
  // Synchronous LP must give the same labels for any distribution; compare
  // this config's output against the 1-rank run.
  const gen::EdgeList el = tiny_graph();
  std::vector<std::uint64_t> single(el.n);
  with_dist_graph(el, {1, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator&) {
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      single[g.global_id(v)] = 0;  // placeholder init
                  });
  LabelPropOptions opts;
  opts.iterations = 4;
  opts.tie_seed = 7;
  with_dist_graph(el, {1, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const auto res = label_propagation(g, comm, opts);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      single[g.global_id(v)] = res.labels[v];
                  });
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const auto res = label_propagation(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.labels[v], single[g.global_id(v)]);
  });
}

TEST_P(LabelPropParam, InPlaceModeLabelsAreValidVertexIds) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    LabelPropOptions opts;
    opts.iterations = 5;
    opts.in_place = true;
    const auto res = label_propagation(g, comm, opts);
    for (const auto l : res.labels) ASSERT_LT(l, el.n);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LabelPropParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(LabelProp, RecoversPlantedCliqueCommunities) {
  // Two directed 5-cliques, one weak bridge: LP should separate them.
  gen::EdgeList el;
  el.n = 10;
  for (gvid_t base : {gvid_t{0}, gvid_t{5}})
    for (gvid_t a = 0; a < 5; ++a)
      for (gvid_t b = 0; b < 5; ++b)
        if (a != b) el.edges.push_back({base + a, base + b});
  el.edges.push_back({2, 7});
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    LabelPropOptions opts;
                    opts.iterations = 10;
                    const auto res = label_propagation(g, comm, opts);
                    // Within each clique all local members share one label;
                    // check consistency via a global gather.
                    const auto global = gather_global<std::uint64_t>(
                        g, comm, res.labels);
                    for (gvid_t v = 1; v < 5; ++v)
                      ASSERT_EQ(global[v], global[0]);
                    for (gvid_t v = 6; v < 10; ++v)
                      ASSERT_EQ(global[v], global[5]);
                    ASSERT_NE(global[0], global[5]);
                  });
}

TEST(LabelProp, MostPlantedWebCommunitiesRecovered) {
  gen::WebGraphParams wp;
  wp.n = 1 << 12;
  wp.avg_degree = 12;
  wp.p_intra = 0.8;  // strong communities for a clean recovery signal
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    LabelPropOptions opts;
                    opts.iterations = 10;
                    const auto res = label_propagation(g, comm, opts);
                    const auto global =
                        gather_global<std::uint64_t>(g, comm, res.labels);
                    // Count planted communities (size >= 4) whose members
                    // ended with one dominant label.
                    std::map<std::uint32_t, std::map<std::uint64_t, int>>
                        votes;
                    std::map<std::uint32_t, int> sizes;
                    for (gvid_t v = 0; v < wg.graph.n; ++v) {
                      ++votes[wg.comm_of[v]][global[v]];
                      ++sizes[wg.comm_of[v]];
                    }
                    int pure = 0, eligible = 0;
                    for (const auto& [c, tally] : votes) {
                      if (sizes[c] < 4) continue;
                      ++eligible;
                      int best = 0;
                      for (const auto& [l, n] : tally) best = std::max(best, n);
                      if (best * 2 >= sizes[c]) ++pure;  // dominant label
                    }
                    ASSERT_GT(eligible, 10);
                    EXPECT_GT(static_cast<double>(pure) / eligible, 0.6);
                  });
}

TEST(LabelProp, ThreadedMatchesSerial) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  std::vector<std::uint64_t> serial(el.n);
  parcomm::CommWorld world(2);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph g = dgraph::Builder::from_edge_list(
        comm, el, dgraph::PartitionKind::kVertexBlock);
    LabelPropOptions opts;
    opts.iterations = 5;
    const auto a = label_propagation(g, comm, opts);
    ThreadPool pool(4);
    opts.common.pool = &pool;
    const auto b = label_propagation(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(a.labels[v], b.labels[v]);
  });
}

TEST(LabelProp, RebuildAblationGivesSameLabels) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, {2, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    LabelPropOptions opts;
                    opts.retain_queues = true;
                    const auto a = label_propagation(g, comm, opts);
                    opts.retain_queues = false;
                    const auto b = label_propagation(g, comm, opts);
                    EXPECT_EQ(a.labels, b.labels);
                  });
}

TEST(LabelProp, GhostModesProduceIdenticalLabels) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    LabelPropOptions opts;
                    opts.iterations = 10;
                    opts.common.ghost_mode = dgraph::GhostMode::kDense;
                    const auto dense = label_propagation(g, comm, opts);
                    opts.common.ghost_mode = dgraph::GhostMode::kSparse;
                    const auto sparse = label_propagation(g, comm, opts);
                    opts.common.ghost_mode = dgraph::GhostMode::kAdaptive;
                    const auto adaptive = label_propagation(g, comm, opts);
                    EXPECT_EQ(dense.labels, sparse.labels);
                    EXPECT_EQ(dense.labels, adaptive.labels);
                  });
}

TEST(LabelProp, ZeroIterationsKeepsInitialLabels) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    LabelPropOptions opts;
                    opts.iterations = 0;
                    const auto res = label_propagation(g, comm, opts);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      ASSERT_EQ(res.labels[v], g.global_id(v));
                  });
}

}  // namespace
}  // namespace hpcgraph::analytics
