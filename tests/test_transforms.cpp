// Tests for the offline graph transforms: vertex reordering (§III-B's
// "computed ordering") and aggregation (the WDC host/pay quotient levels),
// plus the LP convergence-stop option they compose with.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "analytics/label_prop.hpp"
#include "analytics/pagerank.hpp"
#include "gen/aggregate.hpp"
#include "gen/degree_tools.hpp"
#include "gen/reorder.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::gen {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

// ---------- reordering ----------

void expect_is_permutation(const std::vector<gvid_t>& p, gvid_t n) {
  ASSERT_EQ(p.size(), n);
  std::vector<bool> seen(n, false);
  for (const gvid_t x : p) {
    ASSERT_LT(x, n);
    ASSERT_FALSE(seen[x]) << "duplicate image " << x;
    seen[x] = true;
  }
}

TEST(Reorder, PermutationsAreValid) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 6;
  const EdgeList g = rmat(rp);
  expect_is_permutation(reorder_permutation(g, ReorderKind::kBfs), g.n);
  expect_is_permutation(reorder_permutation(g, ReorderKind::kDegree), g.n);
}

TEST(Reorder, DegreeOrderSortsByDegree) {
  const EdgeList g = tiny_graph();
  const auto perm = reorder_permutation(g, ReorderKind::kDegree);
  const auto deg = total_degrees(g);
  // new id 0 must be a max-degree vertex; degrees nonincreasing in new ids.
  std::vector<std::uint32_t> deg_by_new(g.n);
  for (gvid_t v = 0; v < g.n; ++v) deg_by_new[perm[v]] = deg[v];
  for (gvid_t i = 1; i < g.n; ++i)
    ASSERT_GE(deg_by_new[i - 1], deg_by_new[i]);
}

TEST(Reorder, PreservesGraphStructure) {
  // Analytics results are permutation-equivariant: PageRank scores of the
  // reordered graph are the permuted original scores.
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const EdgeList g = rmat(rp);
  const auto perm = reorder_permutation(g, ReorderKind::kBfs);
  const EdgeList rg = apply_permutation(g, perm);
  EXPECT_EQ(rg.m(), g.m());

  const auto pr = ref::pagerank(ref::SeqGraph::from(g), 8);
  const auto rpr = ref::pagerank(ref::SeqGraph::from(rg), 8);
  for (gvid_t v = 0; v < g.n; ++v)
    ASSERT_NEAR(rpr[perm[v]], pr[v], 1e-12) << v;
}

TEST(Reorder, BfsOrderImprovesBlockLocalityOnScrambledGraph) {
  // The point of the feature: a computed ordering restores the locality
  // block partitioning needs.  Compare ghost totals on scrambled R-MAT.
  gen::RmatParams rp;
  rp.scale = 12;
  rp.avg_degree = 8;
  rp.scramble_ids = true;
  const EdgeList scrambled = rmat(rp);
  const EdgeList ordered = reorder(scrambled, ReorderKind::kBfs);

  std::uint64_t ghosts_scrambled = 0, ghosts_ordered = 0;
  parcomm::CommWorld world(8);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph a = dgraph::Builder::from_edge_list(
        comm, scrambled, dgraph::PartitionKind::kVertexBlock);
    const DistGraph b = dgraph::Builder::from_edge_list(
        comm, ordered, dgraph::PartitionKind::kVertexBlock);
    const auto ga = comm.allreduce_sum<std::uint64_t>(a.n_gst());
    const auto gb = comm.allreduce_sum<std::uint64_t>(b.n_gst());
    if (comm.rank() == 0) {
      ghosts_scrambled = ga;
      ghosts_ordered = gb;
    }
  });
  EXPECT_LT(ghosts_ordered, ghosts_scrambled);
}

TEST(Reorder, BfsOrderIsContiguousPerComponent) {
  // Two components: ids of one component form a contiguous range.
  EdgeList g;
  g.n = 6;
  g.edges = {{0, 2}, {2, 4}, {1, 3}, {3, 5}};  // evens | odds
  const auto perm = reorder_permutation(g, ReorderKind::kBfs);
  std::set<gvid_t> evens{perm[0], perm[2], perm[4]};
  const gvid_t lo = *evens.begin(), hi = *evens.rbegin();
  EXPECT_EQ(hi - lo, 2u);  // contiguous block of 3
}

// ---------- aggregation ----------

TEST(Aggregate, QuotientOfPlantedGroups) {
  // 6 vertices in 3 groups {0,1} {2,3} {4,5}; edges within and across.
  EdgeList g;
  g.n = 6;
  g.edges = {{0, 1}, {1, 0},          // intra group 0
             {0, 2}, {1, 3},          // group 0 -> group 1 (parallel)
             {3, 4},                  // group 1 -> group 2
             {5, 0}};                 // group 2 -> group 0
  const std::vector<std::uint64_t> labels{7, 7, 9, 9, 11, 11};
  const AggregatedGraph agg = aggregate_graph(g, labels);

  EXPECT_EQ(agg.graph.n, 3u);
  EXPECT_EQ(agg.group_label, (std::vector<std::uint64_t>{7, 9, 11}));
  EXPECT_EQ(agg.group_size, (std::vector<std::uint64_t>{2, 2, 2}));
  // Dedup + no self loops: exactly {0->1, 1->2, 2->0}.
  std::multiset<std::pair<gvid_t, gvid_t>> got;
  for (const Edge& e : agg.graph.edges) got.insert({e.src, e.dst});
  EXPECT_EQ(got, (std::multiset<std::pair<gvid_t, gvid_t>>{
                     {0, 1}, {1, 2}, {2, 0}}));
}

TEST(Aggregate, SelfLoopAndDedupOptions) {
  EdgeList g;
  g.n = 4;
  g.edges = {{0, 1}, {0, 1}, {2, 3}};
  const std::vector<std::uint64_t> labels{1, 1, 2, 2};
  AggregateOptions opts;
  opts.keep_self_loops = true;
  opts.dedup_edges = false;
  const AggregatedGraph agg = aggregate_graph(g, labels, opts);
  EXPECT_EQ(agg.graph.m(), 3u);  // two parallel self loops at 0, one at 1
  for (const Edge& e : agg.graph.edges) EXPECT_EQ(e.src, e.dst);
}

TEST(Aggregate, CommunityGraphWorkflow) {
  // The paper's host-level workflow: run LP on the page graph, aggregate by
  // communities, and analyze the (much smaller) community graph.
  gen::WebGraphParams wp;
  wp.n = 1 << 11;
  const WebGraph wc = webgraph(wp);

  std::vector<std::uint64_t> labels(wc.graph.n);
  with_dist_graph(wc.graph, {4, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    analytics::LabelPropOptions lp;
    lp.iterations = 10;
    const auto res = analytics::label_propagation(g, comm, lp);
    const auto global =
        analytics::gather_global<std::uint64_t>(g, comm, res.labels);
    if (comm.rank() == 0) labels = global;
  });

  const AggregatedGraph host = aggregate_graph(wc.graph, labels);
  EXPECT_LT(host.graph.n, wc.graph.n / 2);  // real aggregation happened
  EXPECT_GT(host.graph.n, 16u);
  // Member counts add back up to n.
  EXPECT_EQ(std::accumulate(host.group_size.begin(), host.group_size.end(),
                            std::uint64_t{0}),
            wc.graph.n);
  // The quotient is itself a valid analytics input.
  with_dist_graph(host.graph, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const auto pr = analytics::pagerank(g, comm, {});
    double mass = 0;
    for (const double s : pr.scores) mass += s;
    EXPECT_NEAR(comm.allreduce_sum(mass), 1.0, 1e-9);
  });
}

// ---------- LP convergence stop ----------

TEST(LabelPropStop, StableGraphStopsEarly) {
  // Two disjoint directed 3-cliques converge in a couple of rounds.
  EdgeList g;
  g.n = 6;
  for (gvid_t base : {gvid_t{0}, gvid_t{3}})
    for (gvid_t a = 0; a < 3; ++a)
      for (gvid_t b = 0; b < 3; ++b)
        if (a != b) g.edges.push_back({base + a, base + b});
  with_dist_graph(g, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& dg, parcomm::Communicator& comm) {
    analytics::LabelPropOptions lp;
    lp.iterations = 100;
    lp.stop_when_stable = true;
    const auto res = analytics::label_propagation(dg, comm, lp);
    EXPECT_LT(res.iterations_run, 10);
  });
}

TEST(LabelPropStop, EdgelessGraphStopsAfterOneIteration) {
  EdgeList g;
  g.n = 8;
  with_dist_graph(g, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& dg, parcomm::Communicator& comm) {
    analytics::LabelPropOptions lp;
    lp.iterations = 50;
    lp.stop_when_stable = true;
    const auto res = analytics::label_propagation(dg, comm, lp);
    EXPECT_EQ(res.iterations_run, 1);
    for (lvid_t v = 0; v < dg.n_loc(); ++v)
      ASSERT_EQ(res.labels[v], dg.global_id(v));
  });
}

}  // namespace
}  // namespace hpcgraph::gen
