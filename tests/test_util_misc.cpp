// Tests for prefix sums, timers, statistics, histograms, CLI parsing, and
// the table printer.

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <thread>

#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/prefix_sum.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hpcgraph {
namespace {

// ---------- prefix sums ----------

TEST(PrefixSum, ExclusiveBasics) {
  std::vector<std::uint64_t> v{3, 1, 4, 1, 5};
  const std::uint64_t total = exclusive_prefix_sum(v);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, EmptyInput) {
  std::vector<std::uint64_t> v;
  EXPECT_EQ(exclusive_prefix_sum(v), 0u);
}

TEST(PrefixSum, SingleElement) {
  std::vector<std::uint64_t> v{7};
  EXPECT_EQ(exclusive_prefix_sum(v), 7u);
  EXPECT_EQ(v[0], 0u);
}

TEST(PrefixSum, CsrOffsetsAppendTotal) {
  const std::vector<std::uint64_t> counts{2, 0, 3};
  const auto offs = csr_offsets(std::span<const std::uint64_t>(counts));
  EXPECT_EQ(offs, (std::vector<std::uint64_t>{0, 2, 2, 5}));
}

TEST(PrefixSum, CsrOffsetsEmpty) {
  const std::vector<std::uint64_t> counts;
  const auto offs = csr_offsets(std::span<const std::uint64_t>(counts));
  ASSERT_EQ(offs.size(), 1u);
  EXPECT_EQ(offs[0], 0u);
}

// ---------- timers ----------

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.elapsed(), 0.015);
  EXPECT_LT(t.elapsed(), 5.0);
}

TEST(Timer, RestartReturnsAndResets) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double first = t.restart();
  EXPECT_GE(first, 0.005);
  EXPECT_LT(t.elapsed(), first);  // fresh window
}

TEST(AccumTimer, AccumulatesIntervals) {
  AccumTimer a;
  a.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  a.stop();
  a.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  a.stop();
  EXPECT_GE(a.total(), 0.015);
}

TEST(AccumTimer, StopWithoutStartIsNoop) {
  AccumTimer a;
  EXPECT_EQ(a.stop(), 0.0);
  EXPECT_EQ(a.total(), 0.0);
}

TEST(AccumTimer, AddAndReset) {
  AccumTimer a;
  a.add(1.5);
  a.add(0.5);
  EXPECT_DOUBLE_EQ(a.total(), 2.0);
  a.reset();
  EXPECT_EQ(a.total(), 0.0);
}

TEST(ScopedAccum, AccumulatesScopeDuration) {
  AccumTimer a;
  {
    ScopedAccum s(a);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(a.total(), 0.005);
}

// ---------- stats ----------

TEST(Stats, MinMaxMean) {
  MinMaxMean m;
  for (double x : {3.0, 1.0, 2.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_EQ(m.count(), 3u);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  MinMaxMean m;
  EXPECT_EQ(m.min(), 0.0);
  EXPECT_EQ(m.max(), 0.0);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(Stats, SummarizeAndImbalance) {
  const std::array<double, 4> xs{1.0, 1.0, 1.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 2.5);
}

TEST(Stats, GeometricMean) {
  const std::array<double, 3> xs{1.0, 10.0, 100.0};
  EXPECT_NEAR(geometric_mean(xs), 10.0, 1e-9);
  EXPECT_EQ(geometric_mean(std::span<const double>{}), 0.0);
}

// ---------- histograms ----------

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 9u);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 10u);
}

TEST(Log2Histogram, CountsAndCdf) {
  Log2Histogram h;
  h.add(1);      // bucket 0
  h.add(2);      // bucket 1
  h.add(3);      // bucket 1
  h.add(100);    // bucket 6
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(6), 1u);
  EXPECT_DOUBLE_EQ(h.cdf(1), 0.75);
  EXPECT_DOUBLE_EQ(h.cdf(6), 1.0);
}

TEST(ExactHistogram, CountsAndCdf) {
  ExactHistogram h(10);
  h.add(0, 2);
  h.add(3);
  h.add(10);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_DOUBLE_EQ(h.cdf(3), 0.75);
  EXPECT_DOUBLE_EQ(h.cdf(10), 1.0);
}

TEST(ExactHistogram, GrowsOnDemand) {
  ExactHistogram h(1);
  h.add(100);
  EXPECT_EQ(h.count(100), 1u);
}

// ---------- CLI ----------

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--scale=18", "--ranks", "8", "--verbose"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("scale", 0), 18);
  EXPECT_EQ(cli.get_int("ranks", 0), 8);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "input.bin", "--x=1", "output.bin"};
  Cli cli(4, const_cast<char**>(argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.bin");
  EXPECT_EQ(cli.positional()[1], "output.bin");
}

TEST(Cli, DoubleAndStringAndBool) {
  const char* argv[] = {"prog", "--d=0.85", "--name=web", "--flag=false"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("d", 0), 0.85);
  EXPECT_EQ(cli.get("name", ""), "web");
  EXPECT_FALSE(cli.get_bool("flag", true));
}

TEST(Cli, ReportsUnknownFlags) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  Cli cli(3, const_cast<char**>(argv));
  (void)cli.get_int("known", 0);
  const auto unknown = cli.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

// ---------- table printer ----------

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TablePrinter, NumericFormatters) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_int(-42), "-42");
  EXPECT_EQ(TablePrinter::fmt_si(3'560'000'000.0, 2), "3.56 B");
  EXPECT_EQ(TablePrinter::fmt_si(1'500.0, 1), "1.5 K");
  EXPECT_EQ(TablePrinter::fmt_si(12.0, 0), "12");
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

}  // namespace
}  // namespace hpcgraph
