// Snapshot save/load round trip: the reloaded distributed graph must be
// indistinguishable from the freshly built one, for every partitioning —
// including explicit PuLP maps — and reject corrupt/mismatched files.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "analytics/pagerank.hpp"
#include "analytics/wcc.hpp"
#include "dgraph/pulp_partition.hpp"
#include "dgraph/snapshot.hpp"
#include "gen/rmat.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::dgraph {
namespace {

using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;

class SnapshotTest : public ::testing::TestWithParam<DistConfig> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hgsnap_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string prefix() const { return (dir_ / "snap").string(); }
  std::filesystem::path dir_;
};

void expect_graphs_equal(const DistGraph& a, const DistGraph& b) {
  ASSERT_EQ(a.n_global(), b.n_global());
  ASSERT_EQ(a.m_global(), b.m_global());
  ASSERT_EQ(a.n_loc(), b.n_loc());
  ASSERT_EQ(a.n_gst(), b.n_gst());
  ASSERT_EQ(a.m_out(), b.m_out());
  ASSERT_EQ(a.m_in(), b.m_in());
  for (lvid_t l = 0; l < a.n_total(); ++l) {
    ASSERT_EQ(a.global_id(l), b.global_id(l));
    ASSERT_EQ(a.owner_of(l), b.owner_of(l));
    ASSERT_EQ(b.local_id(a.global_id(l)), l);
  }
  for (lvid_t v = 0; v < a.n_loc(); ++v) {
    const auto ao = a.out_neighbors(v), bo = b.out_neighbors(v);
    ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()));
    const auto ai = a.in_neighbors(v), bi = b.in_neighbors(v);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()));
  }
}

TEST_P(SnapshotTest, RoundTripIdenticalGraph) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const DistConfig cfg = GetParam();

  parcomm::CommWorld world(cfg.nranks);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph built = Builder::from_edge_list(comm, el, cfg.kind);
    save_snapshot(built, comm, prefix());
    const DistGraph loaded = load_snapshot(comm, prefix());
    expect_graphs_equal(built, loaded);
    // Partition function restored (owners agree on foreign vertices too).
    for (gvid_t v = 0; v < el.n; v += 7)
      ASSERT_EQ(loaded.owner_of_global(v), built.owner_of_global(v));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SnapshotTest,
    ::testing::ValuesIn(hpcgraph::testing::small_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST_F(SnapshotTest, AnalyticsOnReloadedGraphMatch) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  parcomm::CommWorld world(3);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph built =
        Builder::from_edge_list(comm, el, PartitionKind::kRandom);
    save_snapshot(built, comm, prefix());
    const DistGraph loaded = load_snapshot(comm, prefix());

    analytics::PageRankOptions pr_opts;
    pr_opts.max_iterations = 8;
    const auto pr_a = analytics::pagerank(built, comm, pr_opts);
    const auto pr_b = analytics::pagerank(loaded, comm, pr_opts);
    for (lvid_t v = 0; v < built.n_loc(); ++v)
      ASSERT_DOUBLE_EQ(pr_a.scores[v], pr_b.scores[v]);

    const auto wcc_a = analytics::wcc(built, comm);
    const auto wcc_b = analytics::wcc(loaded, comm);
    ASSERT_EQ(wcc_a.comp, wcc_b.comp);
  });
}

TEST_F(SnapshotTest, ExplicitPulpPartitionSurvives) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  const int nranks = 4;
  auto owner = std::make_shared<std::vector<std::int32_t>>(
      pulp_partition(el, nranks));
  const Partition part = Partition::explicit_map(el.n, nranks, owner);

  parcomm::CommWorld world(nranks);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph built = Builder::from_edge_list(comm, el, part);
    save_snapshot(built, comm, prefix());
    const DistGraph loaded = load_snapshot(comm, prefix());
    expect_graphs_equal(built, loaded);
    for (gvid_t v = 0; v < el.n; ++v)
      ASSERT_EQ(loaded.owner_of_global(v), (*owner)[v]);
  });
}

TEST_F(SnapshotTest, RejectsWrongRankCount) {
  const gen::EdgeList el = hpcgraph::testing::tiny_graph();
  {
    parcomm::CommWorld world(2);
    world.run([&](parcomm::Communicator& comm) {
      const DistGraph g =
          Builder::from_edge_list(comm, el, PartitionKind::kVertexBlock);
      save_snapshot(g, comm, prefix());
    });
  }
  parcomm::CommWorld world(1);
  EXPECT_THROW(world.run([&](parcomm::Communicator& comm) {
    (void)load_snapshot(comm, prefix());
  }),
               CheckError);
}

TEST_F(SnapshotTest, RejectsGarbageFile) {
  std::ofstream f(prefix() + ".0", std::ios::binary);
  f << "this is not a snapshot at all, but it is long enough to read";
  f.close();
  parcomm::CommWorld world(1);
  EXPECT_THROW(world.run([&](parcomm::Communicator& comm) {
    (void)load_snapshot(comm, prefix());
  }),
               CheckError);
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  const gen::EdgeList el = hpcgraph::testing::tiny_graph();
  parcomm::CommWorld world(1);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph g =
        Builder::from_edge_list(comm, el, PartitionKind::kVertexBlock);
    save_snapshot(g, comm, prefix());
  });
  std::filesystem::resize_file(prefix() + ".0", 64);
  EXPECT_THROW(world.run([&](parcomm::Communicator& comm) {
    (void)load_snapshot(comm, prefix());
  }),
               CheckError);
}

}  // namespace
}  // namespace hpcgraph::dgraph
