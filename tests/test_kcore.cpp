// Distributed approximate k-core vs the sequential reference: exact bound
// equality (the stage fixpoints are order-independent), upper-bound
// property against exact coreness, and per-stage statistics.

#include <gtest/gtest.h>

#include "analytics/kcore.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

class KcoreParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(KcoreParam, BoundsMatchReferenceExactly) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::kcore_approx(ref::SeqGraph::from(el), 20);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    KCoreOptions opts;
    opts.max_i = 20;
    opts.track_components = false;  // faster; components tested separately
    const KCoreResult res = kcore_approx(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.bound[v], want[g.global_id(v)])
          << "vertex " << g.global_id(v);
  });
}

TEST_P(KcoreParam, BoundsDominateExactCoreness) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  const auto exact = ref::kcore_exact(ref::SeqGraph::from(el));

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    KCoreOptions opts;
    opts.max_i = 20;
    opts.track_components = false;
    const KCoreResult res = kcore_approx(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_GE(res.bound[v], exact[g.global_id(v)]);
  });
}

TEST_P(KcoreParam, StageStatisticsAreCoherent) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 8;
  const gen::EdgeList el = gen::rmat(rp);
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    KCoreOptions opts;
    opts.max_i = 20;
    const KCoreResult res = kcore_approx(g, comm, opts);
    std::uint64_t prev_alive = el.n;
    std::uint64_t removed_total = 0;
    for (const KCoreStage& s : res.stages) {
      EXPECT_EQ(s.threshold, std::uint64_t{1} << s.i);
      EXPECT_EQ(s.alive_after, prev_alive - s.removed);
      EXPECT_LE(s.largest_cc, s.alive_after);
      EXPECT_GE(s.peel_sweeps, 1);
      prev_alive = s.alive_after;
      removed_total += s.removed;
    }
    EXPECT_LE(removed_total, el.n);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KcoreParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Kcore, CliqueSurvivesUntilThresholdExceedsDegree) {
  // Directed K6 both ways: total degree 10; removed when 2^i > 10 => i=4.
  gen::EdgeList el;
  el.n = 6;
  for (gvid_t a = 0; a < 6; ++a)
    for (gvid_t b = 0; b < 6; ++b)
      if (a != b) el.edges.push_back({a, b});
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    KCoreOptions opts;
                    opts.max_i = 8;
                    const KCoreResult res = kcore_approx(g, comm, opts);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      ASSERT_EQ(res.bound[v], 16u);
                    // Stages 1..3 remove nothing; stage 4 removes all 6.
                    ASSERT_GE(res.stages.size(), 4u);
                    EXPECT_EQ(res.stages[0].removed, 0u);
                    EXPECT_EQ(res.stages[3].removed, 6u);
                    EXPECT_EQ(res.stages[3].alive_after, 0u);
                  });
}

TEST(Kcore, LargestCcTrackedPerStage) {
  // Two cliques of different sizes: after peeling the small one away, the
  // largest CC equals the big clique.
  gen::EdgeList el;
  el.n = 12;
  // K8 on 0..7 (total degree 14), K4 on 8..11 (total degree 6).
  for (gvid_t a = 0; a < 8; ++a)
    for (gvid_t b = 0; b < 8; ++b)
      if (a != b) el.edges.push_back({a, b});
  for (gvid_t a = 8; a < 12; ++a)
    for (gvid_t b = 8; b < 12; ++b)
      if (a != b) el.edges.push_back({a, b});
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    KCoreOptions opts;
    opts.max_i = 6;
    const KCoreResult res = kcore_approx(g, comm, opts);
    // Stage 3 (threshold 8): K4 (degree 6) peeled, K8 survives whole.
    ASSERT_GE(res.stages.size(), 3u);
    EXPECT_EQ(res.stages[2].alive_after, 8u);
    EXPECT_EQ(res.stages[2].largest_cc, 8u);
  });
}

TEST(Kcore, IsolatedAndSelfLoopVertices) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    KCoreOptions opts;
    opts.max_i = 10;
    const KCoreResult res = kcore_approx(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      if (gid == 9) {  // isolated: degree 0, removed at stage 1
        ASSERT_EQ(res.bound[v], 2u);
      }
      if (gid == 8) {  // self loop: degree 2, survives stage 1, gone at 2
        ASSERT_EQ(res.bound[v], 4u);
      }
    }
  });
}

TEST(Kcore, WebGraphCdfShapeMatchesPaper) {
  // Figure 6's qualitative claim: the overwhelming majority of vertices
  // have small coreness bounds.
  gen::WebGraphParams wp;
  wp.n = 1 << 13;
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    KCoreOptions opts;
    opts.max_i = 20;
    opts.track_components = false;
    const KCoreResult res = kcore_approx(g, comm, opts);
    std::uint64_t small_local = 0;
    for (const auto b : res.bound)
      if (b <= 64) ++small_local;
    const auto small_total = comm.allreduce_sum(small_local);
    EXPECT_GT(static_cast<double>(small_total) / wg.graph.n, 0.5);
  });
}

// ---------- exact coreness refinement (paper §VI: "can be refined") ------

class KcoreExactParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(KcoreExactParam, MatchesSequentialPeeling) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::kcore_exact(ref::SeqGraph::from(el));
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const KCoreExactResult res = kcore_exact(g, comm);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.core[v], want[g.global_id(v)])
          << "vertex " << g.global_id(v);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KcoreExactParam,
    ::testing::ValuesIn(hpcgraph::testing::small_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(KcoreExact, GhostModesProduceIdenticalCoreness) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    CommonOptions opts;
                    opts.ghost_mode = dgraph::GhostMode::kDense;
                    const auto dense = kcore_exact(g, comm, opts);
                    opts.ghost_mode = dgraph::GhostMode::kSparse;
                    const auto sparse = kcore_exact(g, comm, opts);
                    opts.ghost_mode = dgraph::GhostMode::kAdaptive;
                    const auto adaptive = kcore_exact(g, comm, opts);
                    EXPECT_EQ(dense.core, sparse.core);
                    EXPECT_EQ(dense.core, adaptive.core);
                    EXPECT_EQ(dense.stages, sparse.stages);
                    EXPECT_EQ(dense.stages, adaptive.stages);
                  });
}

TEST(KcoreExact, CliqueCorenessExact) {
  // Directed K5 both ways: coreness (total-degree convention) = 8.
  gen::EdgeList el;
  el.n = 5;
  for (gvid_t a = 0; a < 5; ++a)
    for (gvid_t b = 0; b < 5; ++b)
      if (a != b) el.edges.push_back({a, b});
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const KCoreExactResult res = kcore_exact(g, comm);
    for (lvid_t v = 0; v < g.n_loc(); ++v) ASSERT_EQ(res.core[v], 8u);
    EXPECT_EQ(res.max_core, 8u);
  });
}

TEST(KcoreExact, RefinesApproximateBounds) {
  // The paper's remark: the 2^i bounds dominate the exact coreness.
  gen::WebGraphParams wp;
  wp.n = 1 << 11;
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    KCoreOptions aopts;
    aopts.max_i = 20;
    aopts.track_components = false;
    const KCoreResult approx = kcore_approx(g, comm, aopts);
    const KCoreExactResult exact = kcore_exact(g, comm);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_GE(approx.bound[v], exact.core[v]);
  });
}

TEST(KcoreExact, IsolatedVerticesHaveCoreZero) {
  gen::EdgeList el;
  el.n = 6;
  el.edges = {{0, 1}, {1, 0}};
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    const KCoreExactResult res = kcore_exact(g, comm);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      ASSERT_EQ(res.core[v], gid <= 1 ? 2u : 0u);
    }
  });
}

}  // namespace
}  // namespace hpcgraph::analytics
