// Degree-skew-aware scheduling (DESIGN.md §10): ChunkGrid purity, coverage
// and balance on randomized scale-free CSRs; hub splitting; the modeled
// imbalance; pool loop determinism across thread counts; and the headline
// acceptance pin — PageRank bit-identical across schedules x threads x ranks.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "analytics/pagerank.hpp"
#include "dgraph/builder.hpp"
#include "gen/rmat.hpp"
#include "test_helpers.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace hpcgraph {
namespace {

constexpr Schedule kAllSchedules[] = {Schedule::kStatic, Schedule::kDynamic,
                                      Schedule::kEdgeBalanced};

/// Synthetic scale-free-ish degree prefix: most vertices light, a few heavy
/// hubs, degree drawn from a truncated power-ish law.  Deterministic in
/// `seed`.
std::vector<std::uint64_t> random_prefix(std::uint64_t n, std::uint64_t seed) {
  Rng r(seed);
  std::vector<std::uint64_t> prefix(n + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t roll = r.below(1000);
    std::uint64_t deg;
    if (roll < 700) {
      deg = r.below(4);  // the long light tail
    } else if (roll < 990) {
      deg = 4 + r.below(28);
    } else {
      deg = 256 + r.below(2048);  // hubs
    }
    prefix[v + 1] = prefix[v] + deg;
  }
  return prefix;
}

/// Every item in [0, n) appears in exactly one non-partial chunk, in
/// ascending order, and weights agree with the prefix.
void expect_grid_covers(const ChunkGrid& grid,
                        std::span<const std::uint64_t> prefix) {
  const std::uint64_t n = prefix.size() - 1;
  std::uint64_t next_item = 0;
  std::uint64_t covered_weight = 0;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    const Chunk& ck = grid[c];
    ASSERT_LT(ck.begin, ck.end);
    covered_weight += ck.weight();
    if (ck.partial) {
      ASSERT_EQ(ck.end, ck.begin + 1);  // partials slice a single hub
      next_item = ck.end;               // hub consumed by its slice run
      continue;
    }
    ASSERT_EQ(ck.begin, next_item) << "gap/overlap before chunk " << c;
    ASSERT_EQ(ck.w_begin, prefix[ck.begin]);
    ASSERT_EQ(ck.w_end, prefix[ck.end]);
    next_item = ck.end;
  }
  ASSERT_EQ(next_item, n);
  ASSERT_EQ(covered_weight, prefix[n] - prefix[0]);
}

TEST(ChunkGrid, RandomizedEdgeGridsCoverAndBalance) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto prefix = random_prefix(5000, seed);
    const ChunkGrid grid = ChunkGrid::edges(prefix);
    expect_grid_covers(grid, prefix);
    EXPECT_FALSE(grid.has_partial());
    // Every chunk obeys the grain unless it is a single (unsplit) hub.
    const std::uint64_t total = prefix.back();
    const std::uint64_t grain =
        std::max<std::uint64_t>(1, (total + ChunkGrid::kTargetChunks - 1) /
                                       ChunkGrid::kTargetChunks);
    for (std::size_t c = 0; c < grid.size(); ++c) {
      if (grid[c].items() > 1) {
        EXPECT_LE(grid[c].weight(), grain);
      }
    }
  }
}

TEST(ChunkGrid, PureFunctionOfInputs) {
  const auto prefix = random_prefix(3000, 99);
  const ChunkGrid a = ChunkGrid::edges(prefix);
  const ChunkGrid b = ChunkGrid::edges(prefix);
  EXPECT_EQ(a, b);
  // make_grid for the nthreads-independent schedules ignores the pool width.
  for (const Schedule s : {Schedule::kDynamic, Schedule::kEdgeBalanced})
    for (const unsigned nt : {2u, 3u, 8u})
      EXPECT_EQ(make_grid(s, 3000, prefix, 1), make_grid(s, 3000, prefix, nt))
          << schedule_label(s) << " nt=" << nt;
}

TEST(ChunkGrid, HubSplittingCapsChunkWeight) {
  // One monster hub owning ~90% of all edges.
  std::vector<std::uint64_t> prefix(1001, 0);
  for (std::uint64_t v = 0; v < 1000; ++v)
    prefix[v + 1] = prefix[v] + (v == 500 ? 90000 : 10);
  const ChunkGrid whole = ChunkGrid::edges(prefix);
  const ChunkGrid split = ChunkGrid::edges(prefix, 0, /*split_hubs=*/true);
  const std::uint64_t grain =
      std::max<std::uint64_t>(1, (prefix.back() + ChunkGrid::kTargetChunks -
                                  1) /
                                     ChunkGrid::kTargetChunks);
  EXPECT_GT(whole.max_chunk_weight(), grain);  // the unsplit hub dominates
  EXPECT_FALSE(whole.has_partial());
  EXPECT_TRUE(split.has_partial());
  EXPECT_LE(split.max_chunk_weight(), grain);
  // The hub's partial slices tile its edge range exactly.
  std::uint64_t hub_weight = 0;
  for (std::size_t c = 0; c < split.size(); ++c)
    if (split[c].partial) {
      EXPECT_EQ(split[c].begin, 500u);
      hub_weight += split[c].weight();
    }
  EXPECT_EQ(hub_weight, 90000u);
  EXPECT_EQ(split.weight_total(), whole.weight_total());
}

TEST(ChunkGrid, EmptyAndTinyRanges) {
  EXPECT_TRUE(ChunkGrid::items(0).empty());
  std::vector<std::uint64_t> p0 = {0};
  EXPECT_TRUE(ChunkGrid::edges(p0).empty());
  const ChunkGrid one = ChunkGrid::items(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].items(), 1u);
  // n < nthreads: static grid emits only as many chunks as items.
  const ChunkGrid tiny = make_grid(Schedule::kStatic, 3, {}, 8);
  EXPECT_LE(tiny.size(), 3u);
  EXPECT_EQ(tiny.items_total(), 3u);
}

TEST(ChunkGrid, ParseAndLabelRoundTrip) {
  Schedule s = Schedule::kStatic;
  EXPECT_TRUE(parse_schedule("dynamic", &s));
  EXPECT_EQ(s, Schedule::kDynamic);
  EXPECT_TRUE(parse_schedule("edge-balanced", &s));
  EXPECT_EQ(s, Schedule::kEdgeBalanced);
  EXPECT_TRUE(parse_schedule("edge", &s));
  EXPECT_EQ(s, Schedule::kEdgeBalanced);
  EXPECT_FALSE(parse_schedule("guided", &s));
  EXPECT_EQ(s, Schedule::kEdgeBalanced);  // untouched on failure
  for (const Schedule x : kAllSchedules) {
    Schedule back = Schedule::kDynamic;
    EXPECT_TRUE(parse_schedule(schedule_label(x), &back));
    EXPECT_EQ(back, x);
  }
}

TEST(GridImbalance, StaticSeesSkewBalancedGridsDoNot) {
  // Hubs at low indices: the first static span eats them all.
  std::vector<std::uint64_t> prefix(4097, 0);
  for (std::uint64_t v = 0; v < 4096; ++v)
    prefix[v + 1] = prefix[v] + (v < 64 ? 1024 : 4);
  const unsigned nt = 4;
  const double st = grid_imbalance(
      make_grid(Schedule::kStatic, 4096, prefix, nt), Schedule::kStatic, nt);
  const double eb =
      grid_imbalance(make_grid(Schedule::kEdgeBalanced, 4096, prefix, nt),
                     Schedule::kEdgeBalanced, nt);
  const double dy = grid_imbalance(
      make_grid(Schedule::kDynamic, 4096, prefix, nt), Schedule::kDynamic, nt);
  EXPECT_GT(st, 2.0);
  EXPECT_LE(eb, 1.15);
  EXPECT_LE(dy, 1.15);
}

// ---- Pool execution determinism --------------------------------------------

class ScheduleParam
    : public ::testing::TestWithParam<std::tuple<Schedule, unsigned>> {};

TEST_P(ScheduleParam, ForChunksVisitsEveryChunkOnce) {
  const auto [sched, nt] = GetParam();
  const auto prefix = random_prefix(2000, 5);
  const ChunkGrid grid = make_grid(sched, 2000, prefix, nt);
  ThreadPool pool(nt);
  std::vector<std::atomic<int>> hits(grid.size());
  for (auto& h : hits) h = 0;
  std::vector<char> item(2000, 0);
  pool.for_chunks(grid, sched, [&](unsigned, std::uint64_t c, const Chunk& ck) {
    hits[c].fetch_add(1);
    for (std::uint64_t i = ck.begin; i < ck.end; ++i) item[i] = 1;
  });
  for (std::size_t c = 0; c < grid.size(); ++c) ASSERT_EQ(hits[c].load(), 1);
  for (const char x : item) ASSERT_EQ(x, 1);
  const SweepStats s = pool.sweep_stats();
  EXPECT_EQ(s.loops, 1u);
  EXPECT_EQ(s.work_total, grid.weight_total());
}

TEST_P(ScheduleParam, ReduceChunksIsBitIdentical) {
  const auto [sched, nt] = GetParam();
  const auto prefix = random_prefix(3000, 11);
  // Awkward FP values whose sum is order-sensitive: any reassociation would
  // flip low bits, so bit-equality across pools proves chunk-order folding.
  Rng r(13);
  std::vector<double> vals(3000);
  for (double& v : vals)
    v = (static_cast<double>(r.below(1000000)) + 0.1) * 1e-7;
  const auto body = [&](const Chunk& ck) {
    double acc = 0.0;
    for (std::uint64_t i = ck.begin; i < ck.end; ++i) acc += vals[i];
    return acc;
  };
  ThreadPool ref(1);
  const ChunkGrid rgrid = make_grid(sched, 3000, prefix, 1);
  const double want = ref.reduce_chunks(
      rgrid, sched, [&](const Chunk& ck) { return body(ck); });
  ThreadPool pool(nt);
  const ChunkGrid grid = make_grid(sched, 3000, prefix, nt);
  const double got = pool.reduce_chunks(
      grid, sched, [&](const Chunk& ck) { return body(ck); });
  if (sched == Schedule::kStatic && nt != 1) {
    // Static geometry depends on nthreads; only the weight total is pinned.
    EXPECT_EQ(grid.weight_total(), rgrid.weight_total());
  } else {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(want))
        << schedule_label(sched) << " nt=" << nt;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, ScheduleParam,
    ::testing::Combine(::testing::ValuesIn(kAllSchedules),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& inf) {
      return std::string(schedule_label(std::get<0>(inf.param))) + "_nt" +
             std::to_string(std::get<1>(inf.param));
    });

// ---- The acceptance pin ----------------------------------------------------

/// Bit-pattern checksum of the distributed PageRank scores: equal checksums
/// mean every vertex score is bit-identical (sums of bit patterns collide
/// only adversarially, and the runs differ solely in loop scheduling).
std::uint64_t pagerank_checksum(const gen::EdgeList& el, int nranks,
                                unsigned nthreads, Schedule sched) {
  std::atomic<std::uint64_t> sum{0};
  parcomm::CommWorld world(nranks);
  world.run([&](parcomm::Communicator& comm) {
    const dgraph::DistGraph g = dgraph::Builder::from_edge_list(
        comm, el, dgraph::PartitionKind::kVertexBlock);
    ThreadPool pool(nthreads);
    analytics::PageRankOptions o;
    o.max_iterations = 8;
    o.common.pool = &pool;
    o.common.schedule = sched;
    const auto res = analytics::pagerank(g, comm, o);
    std::uint64_t local = 0;
    for (const double s : res.scores)
      local += std::bit_cast<std::uint64_t>(s);
    const std::uint64_t total = comm.allreduce_sum(local);
    if (comm.rank() == 0) sum = total;
  });
  return sum.load();
}

TEST(ScheduleDeterminism, PageRankBitIdenticalAcrossEverything) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 8;
  rp.scramble_ids = false;  // keep the hubs clustered: worst case for static
  const gen::EdgeList el = gen::rmat(rp);
  for (const int nranks : {1, 2, 4}) {
    // The cross-rank reduction tree depends on the rank count (FP allreduce
    // association), so each rank count pins its own baseline: the legacy
    // static single-thread run.  Scheduling must never perturb it.
    const std::uint64_t want =
        pagerank_checksum(el, nranks, 1, Schedule::kStatic);
    ASSERT_NE(want, 0u);
    for (const Schedule sched : kAllSchedules) {
      for (const unsigned nt : {1u, 2u, 4u, 8u}) {
        EXPECT_EQ(pagerank_checksum(el, nranks, nt, sched), want)
            << "ranks=" << nranks << " sched=" << schedule_label(sched)
            << " nt=" << nt;
      }
    }
  }
}

}  // namespace
}  // namespace hpcgraph
