// Larger-scale stress pass: the full analytic battery on a 2^15-vertex web
// crawl at 8 ranks — an order of magnitude above the unit suites — checking
// the planted ground truth, oracle agreement where the oracle is affordable,
// and cross-analytic invariants where it is not.

#include <gtest/gtest.h>

#include <numeric>

#include "analytics/analytics.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph {
namespace {

using dgraph::DistGraph;
using dgraph::PartitionKind;

class StressWebGraph : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::WebGraphParams wp;
    wp.n = 1 << 15;
    wp.avg_degree = 14;
    wg_ = new gen::WebGraph(gen::webgraph(wp));
  }
  static void TearDownTestSuite() {
    delete wg_;
    wg_ = nullptr;
  }
  static gen::WebGraph* wg_;
};

gen::WebGraph* StressWebGraph::wg_ = nullptr;

TEST_F(StressWebGraph, FullBatteryAtScale) {
  const gen::WebGraph& wg = *wg_;
  const ref::SeqGraph sg = ref::SeqGraph::from(wg.graph);
  const auto ref_wcc = ref::wcc(sg);
  std::map<gvid_t, std::uint64_t> wcc_sizes;
  for (const gvid_t c : ref_wcc) ++wcc_sizes[c];
  std::uint64_t ref_largest_wcc = 0;
  for (const auto& [c, s] : wcc_sizes)
    ref_largest_wcc = std::max(ref_largest_wcc, s);
  const std::uint64_t ref_triangles = ref::triangle_count(sg);

  parcomm::CommWorld world(8);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph g = dgraph::Builder::from_edge_list(
        comm, wg.graph, PartitionKind::kRandom);

    // SCC is exactly the planted core.
    const auto scc = analytics::largest_scc(g, comm);
    ASSERT_EQ(scc.size, wg.core.size());

    // Full decomposition agrees on the giant.
    const auto decomp = analytics::scc_decompose(g, comm);
    ASSERT_EQ(decomp.largest_size, wg.core.size());
    ASSERT_EQ(decomp.largest_label, scc.label);

    // WCC matches the union-find oracle exactly.
    const auto wcc = analytics::wcc(g, comm);
    ASSERT_EQ(wcc.largest_size, ref_largest_wcc);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(wcc.comp[v], ref_wcc[g.global_id(v)]);

    // PageRank conserves mass; hubs rank high.
    analytics::PageRankOptions pr_opts;
    pr_opts.max_iterations = 15;
    const auto pr = analytics::pagerank(g, comm, pr_opts);
    const double mass = comm.allreduce_sum(
        std::accumulate(pr.scores.begin(), pr.scores.end(), 0.0));
    ASSERT_NEAR(mass, 1.0, 1e-9);

    // Triangles match the oracle.
    const auto tri = analytics::triangle_count(g, comm);
    ASSERT_EQ(tri.triangles, ref_triangles);

    // k-core approx bounds dominate the exact distributed coreness, and
    // both agree on which vertices are removed first.
    analytics::KCoreOptions kc_opts;
    kc_opts.max_i = 18;
    kc_opts.track_components = false;
    const auto approx = analytics::kcore_approx(g, comm, kc_opts);
    const auto exact = analytics::kcore_exact(g, comm);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_GE(approx.bound[v], exact.core[v]);

    // SSSP distances obey the BFS lower bound (hops <= weighted distance
    // with weights >= 1) from the same root.
    const gvid_t root = wg.hubs[0];
    const auto levels = analytics::bfs(g, comm, root);
    const auto paths = analytics::sssp(g, comm, root);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      if (levels.level[v] >= 0) {
        ASSERT_NE(paths.dist[v], analytics::kInfDistance);
        ASSERT_GE(paths.dist[v],
                  static_cast<std::uint64_t>(levels.level[v]));
      } else {
        ASSERT_EQ(paths.dist[v], analytics::kInfDistance);
      }
    }
  });
}

TEST_F(StressWebGraph, LabelPropIdenticalAcrossAllPartitionings) {
  const gen::WebGraph& wg = *wg_;
  std::vector<std::vector<std::uint64_t>> results;
  for (const auto kind : {PartitionKind::kVertexBlock,
                          PartitionKind::kEdgeBlock, PartitionKind::kRandom}) {
    std::vector<std::uint64_t> global(wg.graph.n);
    parcomm::CommWorld world(6);
    world.run([&](parcomm::Communicator& comm) {
      const DistGraph g =
          dgraph::Builder::from_edge_list(comm, wg.graph, kind);
      analytics::LabelPropOptions lp;
      lp.iterations = 8;
      const auto res = analytics::label_propagation(g, comm, lp);
      const auto all =
          analytics::gather_global<std::uint64_t>(g, comm, res.labels);
      if (comm.rank() == 0) global = all;
    });
    results.push_back(std::move(global));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

}  // namespace
}  // namespace hpcgraph
