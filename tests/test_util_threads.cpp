// Tests for the worker pool (OpenMP substitute) and the Algorithm-3
// two-level queue machinery, including multi-thread races.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "util/parallel_for.hpp"
#include "util/thread_queue.hpp"

namespace hpcgraph {
namespace {

// ---------- ThreadPool ----------

class ThreadPoolParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadPoolParam, ForEachCoversEveryIndexExactlyOnce) {
  ThreadPool tp(GetParam());
  constexpr std::uint64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  tp.for_each(0, kN, [&](unsigned, std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ThreadPoolParam, ForRangeChunksArePartition) {
  ThreadPool tp(GetParam());
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks;
  tp.for_range(5, 105, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
    std::lock_guard lk(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::uint64_t covered = 0;
  std::uint64_t expect_lo = 5;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_GE(lo, expect_lo);
    EXPECT_LE(lo, hi);
    covered += hi - lo;
    expect_lo = hi;
  }
  EXPECT_EQ(covered, 100u);
}

TEST_P(ThreadPoolParam, RunInvokesEveryThreadOnce) {
  ThreadPool tp(GetParam());
  std::vector<std::atomic<int>> calls(tp.num_threads());
  tp.run([&](unsigned tid) {
    calls[tid].fetch_add(1, std::memory_order_relaxed);
  });
  for (unsigned t = 0; t < tp.num_threads(); ++t)
    EXPECT_EQ(calls[t].load(), 1);
}

TEST_P(ThreadPoolParam, ReusableAcrossManyRegions) {
  ThreadPool tp(GetParam());
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round)
    tp.for_each(0, 100, [&](unsigned, std::uint64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  EXPECT_EQ(sum.load(), 50u * 4950u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

// Satellite edge cases: empty ranges never call fn, and n < nthreads never
// hands a thread a zero-width [lo, hi) span.

TEST_P(ThreadPoolParam, EmptyRangeNeverCallsBody) {
  ThreadPool tp(GetParam());
  std::atomic<int> calls{0};
  tp.for_range(10, 10, [&](unsigned, std::uint64_t, std::uint64_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
  tp.for_each(7, 7, [&](unsigned, std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  for (const Schedule s :
       {Schedule::kStatic, Schedule::kDynamic, Schedule::kEdgeBalanced}) {
    tp.for_range(3, 3, s, [&](unsigned, std::uint64_t, std::uint64_t) {
      calls.fetch_add(1);
    });
  }
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(ThreadPoolParam, SingleElementRangeRunsExactlyOnce) {
  ThreadPool tp(GetParam());
  std::atomic<int> calls{0};
  tp.for_range(42, 43, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
    calls.fetch_add(1);
    EXPECT_EQ(lo, 42u);
    EXPECT_EQ(hi, 43u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST_P(ThreadPoolParam, RangeSmallerThanPoolSkipsEmptySpans) {
  ThreadPool tp(GetParam());
  // n = 3 items across up to 8 threads: every invocation must carry work.
  std::atomic<int> calls{0};
  std::atomic<std::uint64_t> covered{0};
  tp.for_range(100, 103, [&](unsigned, std::uint64_t lo, std::uint64_t hi) {
    EXPECT_LT(lo, hi);
    calls.fetch_add(1);
    covered.fetch_add(hi - lo);
  });
  EXPECT_EQ(covered.load(), 3u);
  EXPECT_LE(calls.load(), 3);
}

// ---------- MultiQueue ----------

struct Item {
  std::uint64_t value;
  std::uint32_t origin;
};

class MultiQueueParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(MultiQueueParam, AllItemsLandInCorrectSegments) {
  const auto [nthreads, qsize] = GetParam();
  constexpr std::uint32_t kTasks = 5;
  constexpr std::uint64_t kPerThread = 4000;

  ThreadPool tp(nthreads);
  // Destination of item i from thread t: (i * 7 + t) % kTasks.
  std::vector<std::uint64_t> counts(kTasks, 0);
  for (unsigned t = 0; t < nthreads; ++t)
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      ++counts[(i * 7 + t) % kTasks];

  MultiQueue<Item> q(counts);
  tp.run([&](unsigned tid) {
    MultiQueue<Item>::Sink sink(q, qsize);
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      sink.push((i * 7 + tid) % kTasks, Item{i, tid});
  });

  EXPECT_TRUE(q.complete());
  EXPECT_EQ(q.total(), nthreads * kPerThread);

  // Every pushed item appears exactly once, in its destination's segment.
  std::vector<std::vector<int>> seen(nthreads,
                                     std::vector<int>(kPerThread, 0));
  for (std::uint32_t task = 0; task < kTasks; ++task) {
    for (const Item& it : q.task_segment(task)) {
      ASSERT_LT(it.origin, nthreads);
      ASSERT_LT(it.value, kPerThread);
      ASSERT_EQ((it.value * 7 + it.origin) % kTasks, task);
      ++seen[it.origin][it.value];
    }
  }
  for (unsigned t = 0; t < nthreads; ++t)
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      ASSERT_EQ(seen[t][i], 1);
}

INSTANTIATE_TEST_SUITE_P(
    Queues, MultiQueueParam,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{2048})));

TEST(MultiQueue, CountsAndOffsetsConsistent) {
  const std::vector<std::uint64_t> counts{3, 0, 2};
  MultiQueue<int> q(counts);
  EXPECT_EQ(q.ntasks(), 3u);
  EXPECT_EQ(q.total(), 5u);
  EXPECT_EQ(q.counts(), counts);
  const auto offs = q.offsets();
  EXPECT_EQ(offs[0], 0u);
  EXPECT_EQ(offs[1], 3u);
  EXPECT_EQ(offs[2], 3u);
  EXPECT_EQ(offs[3], 5u);
}

TEST(MultiQueue, IncompleteUntilAllPushed) {
  const std::vector<std::uint64_t> counts{2};
  MultiQueue<int> q(counts);
  EXPECT_FALSE(q.complete());
  q.push_shared(0, 1);
  EXPECT_FALSE(q.complete());
  q.push_shared(0, 2);
  EXPECT_TRUE(q.complete());
}

TEST(MultiQueue, SharedPushAblationPathWorks) {
  constexpr std::uint32_t kTasks = 3;
  const std::vector<std::uint64_t> counts{10, 10, 10};
  MultiQueue<std::uint64_t> q(counts);
  ThreadPool tp(4);
  std::atomic<std::uint64_t> next{0};
  tp.run([&](unsigned) {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1);
      if (i >= 30) break;
      q.push_shared(static_cast<std::uint32_t>(i % kTasks), i);
    }
  });
  EXPECT_TRUE(q.complete());
  for (std::uint32_t t = 0; t < kTasks; ++t) {
    auto seg = q.task_segment(t);
    ASSERT_EQ(seg.size(), 10u);
    for (const auto v : seg) EXPECT_EQ(v % kTasks, t);
  }
}

TEST(MultiQueue, SinkFlushOnDestruction) {
  const std::vector<std::uint64_t> counts{1};
  MultiQueue<int> q(counts);
  {
    MultiQueue<int>::Sink sink(q, 1000);  // large qsize: no auto-flush
    sink.push(0, 42);
  }  // destructor flushes
  EXPECT_TRUE(q.complete());
  EXPECT_EQ(q.task_segment(0)[0], 42);
}

}  // namespace
}  // namespace hpcgraph
