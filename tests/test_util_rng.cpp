// Tests for util/rng.hpp: determinism, range guarantees, distribution
// sanity, and stream splitting.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace hpcgraph {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
}

TEST(SplitMix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10000u);  // no collisions on a small dense range
}

TEST(SplitMix64, AvalanchesLowBits) {
  // Consecutive inputs should flip roughly half of the output bits.
  int total_flips = 0;
  for (std::uint64_t i = 0; i < 1000; ++i)
    total_flips += __builtin_popcountll(splitmix64(i) ^ splitmix64(i + 1));
  const double avg = total_flips / 1000.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng base(23);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (s1() == s2()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(23), b(23);
  Rng sa = a.split(5), sb = b.split(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sa(), sb());
}

}  // namespace
}  // namespace hpcgraph
