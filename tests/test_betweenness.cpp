// Distributed k-source Brandes betweenness vs the sequential reference,
// plus hand-verified exact values on small graphs.

#include <gtest/gtest.h>

#include "analytics/betweenness.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::with_dist_graph;

TEST(BetweennessSources, DeterministicDistinctAndClamped) {
  const auto a = betweenness_sources(100, 8, 7);
  const auto b = betweenness_sources(100, 8, 7);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 8u);
  std::set<gvid_t> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (const gvid_t v : a) EXPECT_LT(v, 100u);
  // k >= n or k == 0 -> every vertex.
  EXPECT_EQ(betweenness_sources(5, 100, 1).size(), 5u);
  EXPECT_EQ(betweenness_sources(5, 0, 1).size(), 5u);
}

TEST(RefBetweenness, PathExactValues) {
  // Directed path 0->1->2->3, all sources: BC(v) = #(s,t) pairs through v.
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  const auto sources = betweenness_sources(4, 0, 1);
  const auto bc =
      ref::betweenness_brandes(ref::SeqGraph::from(el), sources);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 2.0);  // (0,2), (0,3)... via 1: pairs (0,2),(0,3)
  EXPECT_DOUBLE_EQ(bc[2], 2.0);  // (0,3), (1,3)
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(RefBetweenness, DiamondSplitsDependency) {
  // 0 -> {1,2} -> 3: two equal shortest paths; BC(1) = BC(2) = 0.5.
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const auto bc = ref::betweenness_brandes(
      ref::SeqGraph::from(el), betweenness_sources(4, 0, 1));
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

class BetweennessParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(BetweennessParam, MatchesBrandesReference) {
  gen::RmatParams rp;
  rp.scale = 7;
  rp.avg_degree = 6;
  const gen::EdgeList el = gen::rmat(rp);
  BetweennessOptions opts;
  opts.num_sources = 6;
  opts.seed = 11;
  const auto sources = betweenness_sources(el.n, 6, 11);
  const auto want =
      ref::betweenness_brandes(ref::SeqGraph::from(el), sources);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const BetweennessResult res = betweenness(g, comm, opts);
    ASSERT_EQ(res.sources, sources);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const double w = want[g.global_id(v)];
      ASSERT_NEAR(res.score[v], w, std::abs(w) * 1e-9 + 1e-9)
          << "vertex " << g.global_id(v);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BetweennessParam,
    ::testing::ValuesIn(hpcgraph::testing::standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Betweenness, ExactModeOnTinyGraph) {
  // tiny_graph path component: exact all-sources run distributed.
  const gen::EdgeList el = hpcgraph::testing::tiny_graph();
  const auto sources = betweenness_sources(el.n, 0, 1);
  const auto want =
      ref::betweenness_brandes(ref::SeqGraph::from(el), sources);
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    BetweennessOptions opts;
    opts.num_sources = 0;  // exact
    const auto res = betweenness(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_NEAR(res.score[v], want[g.global_id(v)], 1e-9);
  });
}

TEST(Betweenness, HubsDominateOnWebGraph) {
  gen::WebGraphParams wp;
  wp.n = 1 << 10;
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    BetweennessOptions opts;
    opts.num_sources = 16;
    const auto res = betweenness(g, comm, opts);
    // Global mean score vs hub scores.
    double local_sum = 0;
    for (const double s : res.score) local_sum += s;
    const double mean =
        comm.allreduce_sum(local_sum) / static_cast<double>(g.n_global());
    double hub_local = 0;
    std::uint64_t hub_count_local = 0;
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      for (const gvid_t h : wg.hubs)
        if (g.global_id(v) == h) {
          hub_local += res.score[v];
          ++hub_count_local;
        }
    const double hub_mean = comm.allreduce_sum(hub_local) /
                            static_cast<double>(comm.allreduce_sum(hub_count_local));
    EXPECT_GT(hub_mean, mean * 5);
  });
}

TEST(Betweenness, DisconnectedSourceContributesNothing) {
  gen::EdgeList el;
  el.n = 4;
  el.edges = {{0, 1}, {1, 2}};  // vertex 3 isolated
  with_dist_graph(el, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
    BetweennessOptions opts;
    opts.num_sources = 0;
    const auto res = betweenness(g, comm, opts);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      if (gid == 1) {
        ASSERT_DOUBLE_EQ(res.score[v], 1.0);  // pair (0,2)
      } else {
        ASSERT_DOUBLE_EQ(res.score[v], 0.0);
      }
    }
  });
}

}  // namespace
}  // namespace hpcgraph::analytics
