// Distributed Multistep WCC vs the sequential union-find reference, plus
// the single-stage baseline equivalence and webgraph ground truth.

#include <gtest/gtest.h>

#include <map>

#include "analytics/wcc.hpp"
#include "gen/degree_tools.hpp"
#include "baselines/singlestage_wcc.hpp"
#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "ref/ref_analytics.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::analytics {
namespace {

using dgraph::DistGraph;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

class WccParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(WccParam, ComponentsMatchReferenceOnRmat) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 4;  // sparse enough to leave several components
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::wcc(ref::SeqGraph::from(el));

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const WccResult res = wcc(g, comm);
    // Labels are canonical (min member id) on both sides: exact equality.
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.comp[v], want[g.global_id(v)])
          << "vertex " << g.global_id(v);
  });
}

TEST_P(WccParam, TinyGraphComponentsExact) {
  const gen::EdgeList el = tiny_graph();
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const WccResult res = wcc(g, comm);
    const std::map<gvid_t, gvid_t> expect{{0, 0}, {1, 0}, {2, 0}, {3, 0},
                                          {4, 0}, {5, 5}, {6, 5}, {7, 5},
                                          {8, 8}, {9, 9}};
    for (lvid_t v = 0; v < g.n_loc(); ++v)
      ASSERT_EQ(res.comp[v], expect.at(g.global_id(v)));
    EXPECT_EQ(res.largest_size, 5u);
    EXPECT_EQ(res.largest_label, 0u);
  });
}

TEST_P(WccParam, LargestComponentSizeMatchesReference) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 4;
  const gen::EdgeList el = gen::rmat(rp);
  const auto want = ref::wcc(ref::SeqGraph::from(el));
  std::map<gvid_t, std::uint64_t> sizes;
  for (const gvid_t c : want) ++sizes[c];
  std::uint64_t want_largest = 0;
  for (const auto& [c, n] : sizes) want_largest = std::max(want_largest, n);

  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const WccResult res = wcc(g, comm);
    EXPECT_EQ(res.largest_size, want_largest);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WccParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Wcc, WebGraphGroundTruth) {
  gen::WebGraphParams wp;
  wp.n = 1 << 13;
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {4, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const WccResult res = wcc(g, comm);
                    // The giant weak component contains the whole CORE.
                    EXPECT_GE(res.largest_size, wg.core.size());
                    // DISC vertices never share the giant's label.
                    for (lvid_t v = 0; v < g.n_loc(); ++v) {
                      if (wg.disc.contains(g.global_id(v))) {
                        ASSERT_NE(res.comp[v], res.largest_label);
                      }
                    }
                  });
}

TEST(Wcc, MaxDegreeVertexIsGlobalArgmax) {
  const gen::EdgeList el = tiny_graph();
  // Total degrees: v2 and v6 have 4 each (v2: out {0->..}, compute by hand):
  // v0: out2+in1=3, v1: out1+in2=3, v2: out2+in2=4 (out: 0, 3; in: 1,1? ...)
  // Rather than hand-count, compare against degree tools.
  const auto deg = gen::total_degrees(el);
  gvid_t want = 0;
  for (gvid_t v = 1; v < el.n; ++v)
    if (deg[v] > deg[want]) want = v;
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const gvid_t got = max_degree_vertex(g, comm);
                    EXPECT_EQ(deg[got], deg[want]);  // an argmax (ties by id)
                  });
}

TEST(Wcc, SingleStageBaselineAgreesWithMultistep) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 4;
  const gen::EdgeList el = gen::rmat(rp);
  with_dist_graph(el, {3, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const WccResult ms = wcc(g, comm);
                    const auto ss = baselines::wcc_singlestage(g, comm);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      ASSERT_EQ(ms.comp[v], ss.comp[v]);
                  });
}

TEST(Wcc, MultistepColoringConvergesFasterThanSingleStageOnGiant) {
  // On a web-like graph the single-stage HashMin needs many rounds to
  // propagate through the giant component; Multistep's coloring step only
  // handles the small leftovers.
  gen::WebGraphParams wp;
  wp.n = 1 << 12;
  const gen::WebGraph wg = gen::webgraph(wp);
  with_dist_graph(wg.graph, {2, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const WccResult ms = wcc(g, comm);
                    const auto ss = baselines::wcc_singlestage(g, comm);
                    EXPECT_LT(ms.coloring_iters, ss.iterations);
                  });
}

TEST(Wcc, GhostModesProduceIdenticalComponents) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 4;
  const gen::EdgeList el = gen::rmat(rp);
  with_dist_graph(el, {3, dgraph::PartitionKind::kRandom},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    WccOptions opts;
                    opts.common.ghost_mode = dgraph::GhostMode::kDense;
                    const auto dense = wcc(g, comm, opts);
                    opts.common.ghost_mode = dgraph::GhostMode::kSparse;
                    const auto sparse = wcc(g, comm, opts);
                    opts.common.ghost_mode = dgraph::GhostMode::kAdaptive;
                    const auto adaptive = wcc(g, comm, opts);
                    EXPECT_EQ(dense.comp, sparse.comp);
                    EXPECT_EQ(dense.comp, adaptive.comp);
                    EXPECT_EQ(dense.largest_size, sparse.largest_size);
                    EXPECT_EQ(dense.largest_size, adaptive.largest_size);
                  });
}

TEST(Wcc, EdgelessGraphAllSingletons) {
  gen::EdgeList el;
  el.n = 12;
  with_dist_graph(el, {3, dgraph::PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator& comm) {
                    const WccResult res = wcc(g, comm);
                    for (lvid_t v = 0; v < g.n_loc(); ++v)
                      ASSERT_EQ(res.comp[v], g.global_id(v));
                    EXPECT_EQ(res.largest_size, 1u);
                  });
}

}  // namespace
}  // namespace hpcgraph::analytics
