// Tests for distributed graph construction: the built DistGraph must encode
// exactly the input edge list (verified against the sequential CSR) and
// satisfy every Table II invariant, across rank counts and partitionings.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>

#include "gen/rmat.hpp"
#include "gen/webgraph.hpp"
#include "io/binary_edge_io.hpp"
#include "test_helpers.hpp"

namespace hpcgraph::dgraph {
namespace {

using gen::Edge;
using gen::EdgeList;
using hpcgraph::testing::DistConfig;
using hpcgraph::testing::standard_configs;
using hpcgraph::testing::tiny_graph;
using hpcgraph::testing::with_dist_graph;

/// Collects every out/in edge of the distributed graph as global-id pairs.
struct GlobalEdges {
  std::multiset<std::pair<gvid_t, gvid_t>> out, in;
};

GlobalEdges collect_edges(const DistGraph& g) {
  GlobalEdges ge;
  for (lvid_t v = 0; v < g.n_loc(); ++v) {
    for (const lvid_t u : g.out_neighbors(v))
      ge.out.insert({g.global_id(v), g.global_id(u)});
    for (const lvid_t u : g.in_neighbors(v))
      ge.in.insert({g.global_id(v), g.global_id(u)});
  }
  return ge;
}

class BuilderParam : public ::testing::TestWithParam<DistConfig> {};

TEST_P(BuilderParam, TableIIScalarInvariants) {
  const EdgeList el = tiny_graph();
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    EXPECT_EQ(g.n_global(), el.n);
    EXPECT_EQ(g.m_global(), el.m());
    EXPECT_EQ(g.rank(), comm.rank());
    EXPECT_EQ(g.nranks(), comm.size());
    EXPECT_EQ(g.n_total(), g.n_loc() + g.n_gst());
    // Local vertex counts across ranks sum to n.
    EXPECT_EQ(comm.allreduce_sum<std::uint64_t>(g.n_loc()), el.n);
    // Out- and in-edge instances each appear exactly once globally.
    EXPECT_EQ(comm.allreduce_sum<std::uint64_t>(g.m_out()), el.m());
    EXPECT_EQ(comm.allreduce_sum<std::uint64_t>(g.m_in()), el.m());
  });
}

TEST_P(BuilderParam, MapAndUnmapAreInverse) {
  with_dist_graph(tiny_graph(), GetParam(), [&](const DistGraph& g,
                                                parcomm::Communicator&) {
    for (lvid_t l = 0; l < g.n_total(); ++l) {
      const gvid_t gid = g.global_id(l);
      ASSERT_EQ(g.local_id(gid), l);
      ASSERT_EQ(g.local_id_checked(gid), l);
    }
  });
}

TEST_P(BuilderParam, LocalsOwnedGhostsForeign) {
  with_dist_graph(tiny_graph(), GetParam(), [&](const DistGraph& g,
                                                parcomm::Communicator& comm) {
    for (lvid_t l = 0; l < g.n_loc(); ++l) {
      ASSERT_FALSE(g.is_ghost(l));
      ASSERT_EQ(g.owner_of(l), comm.rank());
      ASSERT_EQ(g.owner_of_global(g.global_id(l)), comm.rank());
    }
    for (lvid_t l = g.n_loc(); l < g.n_total(); ++l) {
      ASSERT_TRUE(g.is_ghost(l));
      ASSERT_NE(g.owner_of(l), comm.rank());
      // Cached ghost owner must agree with the partition function.
      ASSERT_EQ(g.owner_of(l), g.owner_of_global(g.global_id(l)));
    }
  });
}

TEST_P(BuilderParam, GhostsAreExactlyRemoteAdjacentVertices) {
  with_dist_graph(tiny_graph(), GetParam(), [&](const DistGraph& g,
                                                parcomm::Communicator&) {
    std::set<gvid_t> adjacent_remote;
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      for (const lvid_t u : g.out_neighbors(v))
        if (g.is_ghost(u)) adjacent_remote.insert(g.global_id(u));
      for (const lvid_t u : g.in_neighbors(v))
        if (g.is_ghost(u)) adjacent_remote.insert(g.global_id(u));
    }
    const auto ghosts = g.ghost_globals();
    const std::set<gvid_t> ghost_set(ghosts.begin(), ghosts.end());
    EXPECT_EQ(ghost_set, adjacent_remote);
    EXPECT_EQ(ghost_set.size(), g.n_gst());
  });
}

TEST_P(BuilderParam, EdgesMatchInputExactly) {
  const EdgeList el = tiny_graph();
  // Expected multisets from the raw edge list.
  std::multiset<std::pair<gvid_t, gvid_t>> expect_out, expect_in;
  for (const Edge& e : el.edges) {
    expect_out.insert({e.src, e.dst});
    expect_in.insert({e.dst, e.src});
  }
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator& comm) {
    const GlobalEdges mine = collect_edges(g);
    // Gather all ranks' edges (as flat pairs) and compare on rank 0.
    struct P {
      gvid_t a, b;
    };
    std::vector<P> out_flat, in_flat;
    for (const auto& [a, b] : mine.out) out_flat.push_back({a, b});
    for (const auto& [a, b] : mine.in) in_flat.push_back({a, b});
    const auto all_out = comm.gatherv<P>(out_flat, 0);
    const auto all_in = comm.gatherv<P>(in_flat, 0);
    if (comm.rank() == 0) {
      std::multiset<std::pair<gvid_t, gvid_t>> got_out, got_in;
      for (const P& p : all_out) got_out.insert({p.a, p.b});
      for (const P& p : all_in) got_in.insert({p.a, p.b});
      EXPECT_EQ(got_out, expect_out);
      EXPECT_EQ(got_in, expect_in);
    }
  });
}

TEST_P(BuilderParam, DegreesMatchSequentialReference) {
  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 6;
  const EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator&) {
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      ASSERT_EQ(g.out_degree(v), sg.out_degree(gid)) << gid;
      ASSERT_EQ(g.in_degree(v), sg.in_degree(gid)) << gid;
    }
  });
}

TEST_P(BuilderParam, AdjacencySetsMatchSequentialReference) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.avg_degree = 5;
  const EdgeList el = gen::rmat(rp);
  const ref::SeqGraph sg = ref::SeqGraph::from(el);
  with_dist_graph(el, GetParam(), [&](const DistGraph& g,
                                      parcomm::Communicator&) {
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      const gvid_t gid = g.global_id(v);
      std::multiset<gvid_t> got, want;
      for (const lvid_t u : g.out_neighbors(v)) got.insert(g.global_id(u));
      for (const gvid_t u : sg.out_neighbors(gid)) want.insert(u);
      ASSERT_EQ(got, want) << "out adjacency of " << gid;
      got.clear();
      want.clear();
      for (const lvid_t u : g.in_neighbors(v)) got.insert(g.global_id(u));
      for (const gvid_t u : sg.in_neighbors(gid)) want.insert(u);
      ASSERT_EQ(got, want) << "in adjacency of " << gid;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BuilderParam, ::testing::ValuesIn(standard_configs()),
    [](const ::testing::TestParamInfo<DistConfig>& pinfo) {
      return pinfo.param.label();
    });

TEST(Builder, FromFileMatchesFromEdgeList) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("hgbuild_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "g.bin").string();

  gen::RmatParams rp;
  rp.scale = 9;
  rp.avg_degree = 8;
  const EdgeList el = gen::rmat(rp);
  io::write_edge_file(path, el, io::EdgeFormat::kU32);

  parcomm::CommWorld world(4);
  world.run([&](parcomm::Communicator& comm) {
    BuildTiming timing;
    const DistGraph from_file = Builder::from_file(
        comm, path, io::EdgeFormat::kU32, PartitionKind::kVertexBlock, el.n,
        &timing);
    const DistGraph from_mem =
        Builder::from_edge_list(comm, el, PartitionKind::kVertexBlock);
    EXPECT_EQ(from_file.n_loc(), from_mem.n_loc());
    EXPECT_EQ(from_file.m_out(), from_mem.m_out());
    EXPECT_EQ(from_file.m_in(), from_mem.m_in());
    EXPECT_EQ(from_file.n_gst(), from_mem.n_gst());
    EXPECT_GT(timing.read, 0.0);
    EXPECT_GT(timing.exchange, 0.0);
    EXPECT_GT(timing.lconv, 0.0);
  });
  fs::remove_all(dir);
}

TEST(Builder, DerivesVertexCountWhenUnknown) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("hgbuild2_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "g.bin").string();

  EdgeList el;
  el.n = 1000;  // but max id seen is 41
  el.edges = {{0, 41}, {7, 3}};
  io::write_edge_file(path, el);

  parcomm::CommWorld world(2);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph g = Builder::from_file(
        comm, path, io::EdgeFormat::kU32, PartitionKind::kVertexBlock,
        /*n_global=*/0);
    EXPECT_EQ(g.n_global(), 42u);
  });
  fs::remove_all(dir);
}

TEST(Builder, EmptyGraphBuilds) {
  EdgeList el;
  el.n = 16;  // vertices, no edges
  parcomm::CommWorld world(3);
  world.run([&](parcomm::Communicator& comm) {
    const DistGraph g =
        Builder::from_edge_list(comm, el, PartitionKind::kVertexBlock);
    EXPECT_EQ(g.m_global(), 0u);
    EXPECT_EQ(g.n_gst(), 0u);
    EXPECT_EQ(comm.allreduce_sum<std::uint64_t>(g.n_loc()), 16u);
    for (lvid_t v = 0; v < g.n_loc(); ++v) {
      EXPECT_EQ(g.out_degree(v), 0u);
      EXPECT_EQ(g.in_degree(v), 0u);
    }
  });
}

TEST(Builder, MemoryFootprintReported) {
  with_dist_graph(tiny_graph(), {2, PartitionKind::kVertexBlock},
                  [&](const DistGraph& g, parcomm::Communicator&) {
                    EXPECT_GT(g.memory_bytes(), 0u);
                  });
}

}  // namespace
}  // namespace hpcgraph::dgraph
